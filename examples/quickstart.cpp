// Quickstart: parse tree patterns, evaluate them on trees, and decide
// containment with and without schema information.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "base/label.h"
#include "contain/containment.h"
#include "dtd/dtd.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"
#include "schema/schema_engine.h"
#include "tree/tree_parser.h"

using namespace tpc;

int main() {
  LabelPool pool;

  // --- Evaluate a pattern on a tree (Definition 2.1 / Figure 1). ---------
  Tree t = MustParseTree("a(b,a(b,d(c)))", &pool);
  Tpq q = MustParseTpq("a[b]//c", &pool);
  std::printf("tree    t = %s\n", t.ToString(pool).c_str());
  std::printf("pattern q = %s\n", q.ToString(pool).c_str());
  std::printf("t in L_w(q): %s, t in L_s(q): %s\n\n",
              MatchesWeak(q, t) ? "yes" : "no",
              MatchesStrong(q, t) ? "yes" : "no");

  // --- Containment without schema (Section 3). ---------------------------
  struct {
    const char* p;
    const char* q;
  } pairs[] = {
      {"a/b", "a//b"},        // child edge implies descendant edge
      {"a//b", "a/b"},        // ... but not vice versa
      {"a/*//b", "a//*/b"},   // equivalent, yet no homomorphism exists
      {"a[b]/c", "a/c"},      // dropping a branch weakens the pattern
  };
  for (const auto& pair : pairs) {
    Tpq p = MustParseTpq(pair.p, &pool);
    Tpq r = MustParseTpq(pair.q, &pool);
    ContainmentResult res = Contains(p, r, Mode::kWeak, &pool);
    std::printf("L_w(%-8s) ⊆ L_w(%-8s)?  %-3s", pair.p, pair.q,
                res.contained ? "yes" : "no");
    if (res.counterexample.has_value()) {
      std::printf("   counterexample: %s",
                  res.counterexample->ToString(pool).c_str());
    }
    std::printf("\n");
  }

  // --- Containment with a DTD (Section 6). --------------------------------
  // Under this schema every <a> has a <b> child, so a//c ⊆ a/b holds even
  // though it fails without the schema.
  Dtd d = MustParseDtd("root: a; a -> b c?; b -> eps; c -> eps;", &pool);
  Tpq p = MustParseTpq("a//c", &pool);
  Tpq r = MustParseTpq("a/b", &pool);
  std::printf("\nwith DTD {a -> b c?}:\n");
  std::printf("  schema-free: a//c ⊆ a/b?  %s\n",
              Contains(p, r, Mode::kWeak, &pool).contained ? "yes" : "no");
  std::printf("  with schema: a//c ⊆ a/b?  %s\n",
              ContainedWithDtd(p, r, Mode::kWeak, d).yes ? "yes" : "no");

  // --- Satisfiability and validity (Sections 4, 5). -----------------------
  SchemaDecision sat =
      SatisfiableWithDtd(MustParseTpq("a[b][c]", &pool), Mode::kWeak, d);
  std::printf("\na[b][c] satisfiable w.r.t. the DTD? %s",
              sat.yes ? "yes" : "no");
  if (sat.witness.has_value()) {
    std::printf("   witness: %s", sat.witness->ToString(pool).c_str());
  }
  SchemaDecision valid =
      ValidWithDtd(MustParseTpq("a/b", &pool), Mode::kStrong, d);
  std::printf("\na/b valid w.r.t. the DTD? %s\n", valid.yes ? "yes" : "no");
  return 0;
}
