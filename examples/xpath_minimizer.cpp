// XPath/tree-pattern minimizer: removes redundant branches from patterns
// using containment tests (the Related Work application of [21, 29]).
//
// Usage:  ./build/examples/xpath_minimizer ['pattern' ...]
// With no arguments, a demonstration set is minimized.

#include <cstdio>
#include <vector>

#include "base/label.h"
#include "contain/minimize.h"
#include "pattern/tpq_parser.h"

using namespace tpc;

namespace {

void Minimize(const char* source, LabelPool* pool) {
  ParseResult<Tpq> parsed = ParseTpq(source, pool);
  if (!parsed.ok()) {
    std::printf("%-28s  parse error: %s\n", source, parsed.error().c_str());
    return;
  }
  const Tpq& q = parsed.value();
  Tpq min = MinimizeTpq(q, Mode::kWeak, pool);
  std::printf("%-28s  ->  %-20s (%d -> %d nodes)%s\n", source,
              min.ToString(*pool).c_str(), q.size(), min.size(),
              min.size() == q.size() ? "   [already minimal]" : "");
}

}  // namespace

int main(int argc, char** argv) {
  LabelPool pool;
  if (argc > 1) {
    for (int i = 1; i < argc; ++i) Minimize(argv[i], &pool);
    return 0;
  }
  const char* demos[] = {
      "a[b][b/c]",             // b is implied by b/c
      "a[*]/b",                // the wildcard branch is witnessed by b
      "a[//b][//c//b]",        // //b is implied by //c//b
      "a[b][c]//d",            // already minimal
      "r[a/*][a/b]//c",        // a/* subsumed by a/b
      "x[*//y][//y]",          // //y subsumed by *//y
      "a[b[c][*]][b/c]/d",     // nested redundancy
  };
  std::printf("Tree pattern minimization via containment "
              "(weak semantics):\n\n");
  for (const char* demo : demos) Minimize(demo, &pool);
  return 0;
}
