// The containment daemon: serves the query service (verdict cache,
// prefilters, compiled programs, subsumption lattice, snapshots) over a
// Unix-domain or loopback TCP socket with multi-tenant admission control,
// fair-share scheduling and graceful drain.  Protocol: src/serve/protocol.h;
// architecture and invariants: DESIGN.md "Containment daemon".
//
// Usage:
//   tpc_serve --unix /tmp/tpc.sock [flags]
//   tpc_serve --port 7411 [flags]
//
// Flags:
//   --unix <path>       listen on a Unix-domain socket (preferred)
//   --port <n>          listen on loopback TCP instead (0 = ephemeral)
//   --workers <n>       serve workers (default 2)
//   --drain-ms <n>      grace between SIGTERM and budget cancellation
//   --tenant <id>=<steps>:<deadline_ms>:<memory>:<weight>:<outstanding>
//                       register a tenant quota (repeatable; 0 = unlimited
//                       for the budget triple)
//   --default-steps/--default-deadline/--default-memory <n>
//                       quota for unregistered tenants
//   --require-registered  reject tenants that were not --tenant-registered
//   --max-queued <n>    global scheduler backlog cap (shed above)
//   --snapshot-load <f> warm-start the service before listening
//   --snapshot-save <f> flush the warm tier after the drain completes
//   --no-cache / --no-prefilter / --no-lattice / --no-compile
//                       service A/B switches (as in tpc_cli --batch)
//   --group-window <n>  coalesce up to n same-tenant requests sharing the
//                       head's (pattern p, mode) key into one grouped
//                       canonical sweep at dequeue (default 4; 1 disables)
//   --no-group-sweep    A/B twin: window 1 AND independent containment
//                       calls inside the service (grouped_sweep off)
//   --fault-exhaust-at / --fault-alloc-at / --fault-cancel-at <n>
//                       per-worker deterministic fault injection (drills)
//
// SIGTERM or SIGINT begins the graceful drain: accepts stop, the admitted
// backlog drains (until --drain-ms, then budgets are cancelled and the rest
// is answered CANCELLED_DRAIN), the snapshot is flushed, and the process
// exits 0 having sent exactly one response for every accepted request.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "base/label.h"
#include "engine/engine.h"
#include "serve/server.h"
#include "serve/signals.h"
#include "service/query_service.h"

using namespace tpc;

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: tpc_serve (--unix <path> | --port <n>) [flags]\n"
      "  --workers <n>          serve workers (default 2)\n"
      "  --drain-ms <n>         drain grace in ms (default 2000)\n"
      "  --tenant <id>=<steps>:<deadline_ms>:<memory>:<weight>:<outstanding>\n"
      "  --default-steps <n>    per-request step quota for default tenants\n"
      "  --default-deadline <n> per-request deadline (ms) for default "
      "tenants\n"
      "  --default-memory <n>   per-request memory quota for default tenants\n"
      "  --require-registered   reject unregistered tenants\n"
      "  --max-queued <n>       global backlog cap (default 4096)\n"
      "  --snapshot-load <f>    warm-start from a snapshot\n"
      "  --snapshot-save <f>    flush the warm tier on drain\n"
      "  --no-cache | --no-prefilter | --no-lattice | --no-compile\n"
      "  --group-window <n>     coalescing window for the grouped sweep\n"
      "                         (default 4; 1 disables)\n"
      "  --no-group-sweep       window 1 + independent containment calls\n"
      "  --fault-exhaust-at <n> | --fault-alloc-at <k> | --fault-cancel-at "
      "<n>\n");
  return 2;
}

int64_t ParseCountOrDie(const char* flag, const char* arg) {
  char* end = nullptr;
  long long v = std::strtoll(arg, &end, 10);
  if (end == arg || *end != '\0' || v < 0) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, arg);
    std::exit(2);
  }
  return static_cast<int64_t>(v);
}

/// Parses "<id>=<steps>:<deadline_ms>:<memory>:<weight>:<outstanding>".
bool ParseTenantSpec(const char* spec, std::string* id,
                     serve::TenantQuota* quota) {
  const char* eq = std::strchr(spec, '=');
  if (eq == nullptr || eq == spec) return false;
  id->assign(spec, static_cast<size_t>(eq - spec));
  long long fields[5] = {0, 0, 0, 1, 64};
  const char* cursor = eq + 1;
  for (int i = 0; i < 5; ++i) {
    char* end = nullptr;
    fields[i] = std::strtoll(cursor, &end, 10);
    if (end == cursor || fields[i] < 0) return false;
    cursor = end;
    if (i < 4) {
      if (*cursor != ':') return false;
      ++cursor;
    }
  }
  if (*cursor != '\0' || fields[3] < 1 || fields[4] < 1) return false;
  quota->step_limit = fields[0];
  quota->deadline_ms = fields[1];
  quota->memory_limit = fields[2];
  quota->weight = static_cast<uint32_t>(fields[3]);
  quota->max_outstanding = static_cast<int32_t>(fields[4]);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  serve::ServerOptions options;
  ServiceOptions service_options;
  const char* snapshot_load = nullptr;
  std::vector<std::pair<std::string, serve::TenantQuota>> tenant_specs;

  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--unix") == 0) {
      options.unix_path = next("--unix");
    } else if (std::strcmp(argv[i], "--port") == 0) {
      options.tcp_port =
          static_cast<int>(ParseCountOrDie("--port", next("--port")));
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.workers =
          static_cast<int>(ParseCountOrDie("--workers", next("--workers")));
    } else if (std::strcmp(argv[i], "--drain-ms") == 0) {
      options.drain_ms = ParseCountOrDie("--drain-ms", next("--drain-ms"));
    } else if (std::strcmp(argv[i], "--tenant") == 0) {
      std::string id;
      serve::TenantQuota quota;
      if (!ParseTenantSpec(next("--tenant"), &id, &quota)) {
        std::fprintf(stderr, "bad --tenant spec '%s'\n", argv[i]);
        return 2;
      }
      tenant_specs.emplace_back(std::move(id), quota);
    } else if (std::strcmp(argv[i], "--default-steps") == 0) {
      options.default_quota.step_limit =
          ParseCountOrDie("--default-steps", next("--default-steps"));
    } else if (std::strcmp(argv[i], "--default-deadline") == 0) {
      options.default_quota.deadline_ms =
          ParseCountOrDie("--default-deadline", next("--default-deadline"));
    } else if (std::strcmp(argv[i], "--default-memory") == 0) {
      options.default_quota.memory_limit =
          ParseCountOrDie("--default-memory", next("--default-memory"));
    } else if (std::strcmp(argv[i], "--require-registered") == 0) {
      options.require_registered = true;
    } else if (std::strcmp(argv[i], "--max-queued") == 0) {
      options.max_queued =
          ParseCountOrDie("--max-queued", next("--max-queued"));
    } else if (std::strcmp(argv[i], "--snapshot-load") == 0) {
      snapshot_load = next("--snapshot-load");
    } else if (std::strcmp(argv[i], "--snapshot-save") == 0) {
      options.snapshot_path = next("--snapshot-save");
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      service_options.use_cache = false;
    } else if (std::strcmp(argv[i], "--no-prefilter") == 0) {
      service_options.use_prefilters = false;
    } else if (std::strcmp(argv[i], "--no-lattice") == 0) {
      service_options.use_lattice = false;
    } else if (std::strcmp(argv[i], "--no-compile") == 0) {
      service_options.containment.compiled_matcher = false;
    } else if (std::strcmp(argv[i], "--group-window") == 0) {
      options.group_window = static_cast<int>(
          ParseCountOrDie("--group-window", next("--group-window")));
    } else if (std::strcmp(argv[i], "--no-group-sweep") == 0) {
      options.group_window = 1;
      service_options.containment.grouped_sweep = false;
    } else if (std::strcmp(argv[i], "--fault-exhaust-at") == 0) {
      options.worker_config.fault_plan.exhaust_at_charge =
          ParseCountOrDie("--fault-exhaust-at", next("--fault-exhaust-at"));
    } else if (std::strcmp(argv[i], "--fault-alloc-at") == 0) {
      options.worker_config.fault_plan.fail_alloc_at =
          ParseCountOrDie("--fault-alloc-at", next("--fault-alloc-at"));
    } else if (std::strcmp(argv[i], "--fault-cancel-at") == 0) {
      options.worker_config.fault_plan.cancel_at_charge =
          ParseCountOrDie("--fault-cancel-at", next("--fault-cancel-at"));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return Usage();
    }
  }
  if (options.unix_path.empty() && options.tcp_port == 0) return Usage();

  LabelPool pool;
  EngineContext service_ctx;  // unlimited: holds the shared warm tier
  QueryService service(&pool, &service_ctx, service_options);
  if (snapshot_load != nullptr) {
    std::string error;
    if (!service.LoadSnapshot(snapshot_load, &error)) {
      std::fprintf(stderr, "warning: %s: %s (starting cold)\n", snapshot_load,
                   error.c_str());
    }
  }

  serve::Server server(&service, &pool, options);
  for (const auto& [id, quota] : tenant_specs) {
    if (!server.tenants().Register(id, quota)) {
      std::fprintf(stderr, "cannot register tenant '%s'\n", id.c_str());
      return 2;
    }
  }
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "tpc_serve: %s\n", error.c_str());
    return 1;
  }
  serve::InstallDrainOnSignals(server.wake_fd());
  if (!options.unix_path.empty()) {
    std::fprintf(stderr, "tpc_serve: listening on %s\n",
                 options.unix_path.c_str());
  } else {
    std::fprintf(stderr, "tpc_serve: listening on 127.0.0.1:%d\n",
                 server.port());
  }

  // Block until a drain signal lands and the drain completes.  The IO
  // thread notices DrainSignalled() on its own; Wait() joins everything.
  const serve::DrainReport report = server.Wait();
  std::fprintf(stderr,
               "tpc_serve: drained (accepted %lld, responded %lld, "
               "drain-cancelled %lld)\n",
               static_cast<long long>(report.accepted),
               static_cast<long long>(report.responded),
               static_cast<long long>(report.drain_cancelled));
  if (!options.snapshot_path.empty()) {
    if (report.snapshot_saved) {
      std::fprintf(stderr, "tpc_serve: snapshot saved to %s\n",
                   options.snapshot_path.c_str());
    } else {
      std::fprintf(stderr, "tpc_serve: snapshot NOT saved: %s\n",
                   report.snapshot_error.c_str());
      return 1;
    }
  }
  // Exit 0 on a clean drain: every accepted request got its one response.
  return report.accepted == report.responded ? 0 : 1;
}
