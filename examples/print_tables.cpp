// Prints the library's rendition of the paper's Table 1: for every fragment
// pair (rows = left pattern fragment, columns = right pattern fragment),
// which decision procedure the dispatcher uses and whether that route is
// polynomial.  The routing is fragment-level: a cell is polynomial when one
// of the Theorem 3.1/3.2 conditions applies to every instance of the pair;
// the remaining cells run the canonical-model enumeration, matching the
// coNP-complete region of Theorem 3.3.
//
// Usage:  ./build/examples/print_tables

#include <cstdio>
#include <vector>

#include "pattern/tpq.h"

using namespace tpc;

namespace {

struct NamedFragment {
  const char* name;
  Fragment fragment;
};

const NamedFragment kFragments[] = {
    {"PQ(/)", fragments::kPqChild},
    {"PQ(//)", fragments::kPqDesc},
    {"PQ(/,*)", fragments::kPqChildStar},
    {"PQ(//,*)", fragments::kPqDescStar},
    {"PQ(/,//,*)", fragments::kPqFull},
    {"TPQ(/)", fragments::kTpqChild},
    {"TPQ(//)", fragments::kTpqDesc},
    {"TPQ(/,//)", fragments::kTpqChildDesc},
    {"TPQ(/,*)", fragments::kTpqChildStar},
    {"TPQ(//,*)", fragments::kTpqDescStar},
    {"TPQ(/,//,*)", fragments::kTpqFull},
};

/// Fragment-level dispatcher route (mirrors Contains() in src/contain).
const char* Route(const Fragment& left, const Fragment& right) {
  if (!right.wildcard) return "P:hom";            // homomorphism test
  if (!right.child_edges) return "P:minCan";      // Thm 3.2(3)
  if (!left.descendant_edges) return "P:oneCan";  // Thm 3.1(2)/3.2(4)
  if (!left.branching) return "P:path";           // Thm 3.2(1)
  if (!left.child_edges) return "P:chFree";       // Thm 3.2(2)
  return "coNP:enum";                             // Thm 3.3 region
}

}  // namespace

int main() {
  std::printf("Table 1 (containment without schema): dispatcher route per "
              "fragment pair\n");
  std::printf("rows: left pattern p; columns: right pattern q\n\n");
  std::printf("%-12s", "");
  for (const auto& col : kFragments) std::printf("%-11s", col.name);
  std::printf("\n");
  int poly = 0, conp = 0;
  for (const auto& row : kFragments) {
    std::printf("%-12s", row.name);
    for (const auto& col : kFragments) {
      const char* route = Route(row.fragment, col.fragment);
      std::printf("%-11s", route);
      (route[0] == 'P' ? poly : conp) += 1;
    }
    std::printf("\n");
  }
  std::printf(
      "\n%d fragment pairs routed to polynomial algorithms, %d to the\n"
      "canonical-model enumeration (the coNP-complete region of Theorem "
      "3.3).\n"
      "Strong containment reduces to weak by root relabelling (Obs. 2.3),\n"
      "so the same grid applies to both modes.\n",
      poly, conp);
  std::printf(
      "\nLegend: P:hom     homomorphism test (q wildcard-free)\n"
      "        P:minCan  minimal canonical tree (q child-edge-free)\n"
      "        P:oneCan  unique canonical tree (p descendant-free)\n"
      "        P:path    island recursion, Thm 3.2(1) (p a path)\n"
      "        P:chFree  singular-pattern DP, Thm 3.2(2) (p child-free)\n"
      "        coNP:enum bounded canonical-model enumeration\n");
  return 0;
}
