// Section 7 walkthrough: tree patterns over graph databases.
//
// Builds the social-network typed graph of Figure 4 / Example 7.3, checks
// it against a graph DTD under nodes/edges semantics, translates it to the
// node-labelled graph G^N, and runs TPQ queries over it — illustrating that
// the tree-pattern machinery transfers to graphs (Propositions 7.1-7.4).
//
// Usage:  ./build/examples/graph_social

#include <cstdio>

#include "base/label.h"
#include "dtd/dtd.h"
#include "graphdb/graph.h"
#include "graphdb/graph_dtd.h"
#include "graphdb/graph_match.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"

using namespace tpc;

int main() {
  LabelPool pool;
  LabelId person = pool.Intern("person");
  LabelId message = pool.Intern("message");
  LabelId date = pool.Intern("date");
  LabelId pname = pool.Intern("pname");
  LabelId text = pool.Intern("text");
  LabelId born = pool.Intern("born");
  LabelId name = pool.Intern("name");
  LabelId posted = pool.Intern("posted");
  LabelId likes = pool.Intern("likes");
  LabelId content = pool.Intern("content");

  // The graph DTD of Example 7.3.
  Dtd dtd;
  dtd.SetRule(person,
              Regex::Concat({
                  Regex::Letter(PairType(born, date, &pool)),
                  Regex::Letter(PairType(name, pname, &pool)),
                  Regex::Star(Regex::Letter(PairType(posted, message, &pool))),
                  Regex::Star(Regex::Letter(PairType(likes, message, &pool))),
                  Regex::Star(Regex::Letter(PairType(likes, person, &pool))),
              }));
  dtd.SetRule(PairType(born, date, &pool), Regex::Letter(date));
  dtd.SetRule(PairType(name, pname, &pool), Regex::Letter(pname));
  dtd.SetRule(PairType(posted, message, &pool), Regex::Letter(message));
  dtd.SetRule(PairType(likes, message, &pool), Regex::Letter(message));
  dtd.SetRule(PairType(likes, person, &pool), Regex::Letter(person));
  dtd.SetRule(message, Regex::Letter(PairType(content, text, &pool)));
  dtd.SetRule(PairType(content, text, &pool), Regex::Letter(text));
  dtd.AddStart(person);

  // The typed graph of Figure 4: Marie likes John's "I think I like John"
  // message, and likes John.
  TypedGraph g;
  NodeId marie = g.AddNode(person);
  NodeId john = g.AddNode(person);
  NodeId msg = g.AddNode(message);
  NodeId d1 = g.AddNode(date);
  NodeId n1 = g.AddNode(pname);
  NodeId d2 = g.AddNode(date);
  NodeId n2 = g.AddNode(pname);
  NodeId body = g.AddNode(text);
  g.AddEdge(marie, born, d1);
  g.AddEdge(marie, name, n1);
  g.AddEdge(marie, likes, msg);
  g.AddEdge(marie, likes, john);
  g.AddEdge(john, born, d2);
  g.AddEdge(john, name, n2);
  g.AddEdge(john, posted, msg);
  g.AddEdge(msg, content, body);
  g.SetRoot(marie);

  std::printf("typed graph satisfies the graph DTD (nodes/edges semantics): "
              "%s\n",
              TypedGraphSatisfiesDtd(g, dtd, &pool) ? "yes" : "no");

  // Translate to the node-labelled graph G^N and query it with TPQs.
  Graph gn = g.ToNodeLabelled(&pool);
  const char* queries[] = {
      // Someone likes a person who posted a message.
      "person/likes:person/person/posted:message",
      // Some liked message has text content.
      "person/likes:message/message/content:text/text",
      // Transitive: a person reaches some text through any edges.
      "person//text",
      // Two likes hops person-to-person (fails: Marie -> John only).
      "person/likes:person/person/likes:person/person",
  };
  std::printf("\nqueries over G^N (weak semantics):\n");
  for (const char* src : queries) {
    Tpq q = MustParseTpq(src, &pool);
    std::printf("  %-58s %s\n", src,
                MatchesWeakGraph(q, gn) ? "match" : "no match");
  }

  // Proposition 7.1 in action: the unfolding of G^N from Marie matches the
  // same patterns as the graph does.
  Tree unfolding = gn.Unfold(gn.root(), 12);
  std::printf("\nunfolding from Marie has %d nodes; person//text on it: %s\n",
              unfolding.size(),
              MatchesWeak(MustParseTpq("person//text", &pool), unfolding)
                  ? "match"
                  : "no match");
  return 0;
}
