// Command-line front end to the library's decision procedures.
//
// Usage:
//   tpc_cli [flags] contain  <p> <q> [weak|strong]
//   tpc_cli [flags] contain  <p> <q> <dtd> [weak|strong]
//   tpc_cli [flags] sat      <p> <dtd> [weak|strong]
//   tpc_cli [flags] valid    <q> <dtd> [weak|strong]
//   tpc_cli [flags] minimize <q>
//   tpc_cli [flags] match    <q> <tree> [weak|strong]
//   tpc_cli [flags] --batch  <file>
//
// Batch mode decides one containment pair per line of <file> ("<p> <q>
// [weak|strong]"; blank lines and #-comments skipped) through the query
// service (src/service): canonical-hash verdict cache, prefilter cascade,
// duplicate folding, and a parallel fan-out under --threads.  One verdict is
// printed per line; the exit status is 0 when every pair was decided
// (regardless of verdicts), 3 when any was undecided.
//
// Flags (anywhere on the command line):
//   --stats          print the engine's instrumentation counters as JSON
//                    (includes steps/bytes used and the exhaustion reason)
//   --batch <file>   decide many pairs through the query service
//   --no-cache       batch A/B: disable minimize+hash+verdict-cache layer
//   --no-prefilter   batch A/B: disable homomorphism/probe prefilters
//   --timeout <ms>   wall-clock budget; exceeding it exits 3 (UNDECIDED)
//   --steps <n>      step budget; exceeding it exits 3 (UNDECIDED)
//   --memory <bytes> tracked-memory budget; exceeding it exits 3 (UNDECIDED)
//   --threads <n>    worker threads for canonical sweeps and schema rounds
//   --no-antichain   disable the schema engine's subsumption pruning (A/B)
//   --no-word-parallel  scalar embedding-DP fill instead of the word-parallel
//                    kernel (A/B: verdicts must be identical)
//   --no-compile     never lower patterns to flat matcher programs
//                    (src/compile/); always use the generic embedding DP
//                    (A/B: verdicts must be identical)
//   --no-group-sweep batch A/B: decide every pair by an independent
//                    containment call instead of grouping pairs that share
//                    the enumeration-side pattern into one canonical-model
//                    sweep (verdicts and attribution must be identical);
//                    with --stats the batch run also prints one coalescing
//                    summary line (groups formed, mean size, early-retire
//                    rate) before the counter JSON
//   --fault-exhaust-at <n> / --fault-alloc-at <k> / --fault-cancel-at <n>
//                    deterministic fault injection (chaos drills): force
//                    budget exhaustion at the nth charge, fail the kth
//                    tracked allocation, or cancel at the nth charge
//
// SIGINT (Ctrl-C) and SIGTERM request cooperative cancellation: the decision
// in flight unwinds at its next budget charge and the run exits 3 with
// reason "cancelled" instead of dying mid-computation (the same helper wires
// tpc_serve's graceful drain; see serve/signals.h).  UNDECIDED lines carry
// the stable wire code and retryable bit from the error-code table in
// README.md, so scripts driving the CLI and clients of the daemon key retry
// policies on the same numbers.
//
// Malformed patterns/trees/DTDs exit 2 with a line/column diagnostic.
//
// Patterns use XPath-like syntax (a/b//*[c]); trees use term syntax
// (a(b,c(d))); DTDs use clause syntax ("root: a; a -> b c*; b -> eps;").
//
// Examples:
//   tpc_cli contain 'a/b' 'a//b'
//   tpc_cli contain 'a//c' 'a/b' 'root: a; a -> b c?; b -> eps; c -> eps;'
//   tpc_cli sat 'a[b][c]' 'root: a; a -> b | c;'
//   tpc_cli --stats --threads 4 contain 'a//b//c//d' 'a//b//c//d'
//   tpc_cli minimize 'a[b][b/c]'
//   tpc_cli --stats --threads 4 --batch pairs.txt

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "contain/minimize.h"
#include "dtd/dtd.h"
#include "engine/engine.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"
#include "schema/schema_engine.h"
#include "serve/protocol.h"
#include "serve/signals.h"
#include "service/query_service.h"
#include "tree/tree_parser.h"

using namespace tpc;

namespace {

/// Exit status for a run that hit its resource budget before the answer was
/// certain (distinct from yes=0 / no=1 / usage-or-parse-error=2).
constexpr int kExitUndecided = 3;

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tpc_cli [flags] contain  <p> <q> [<dtd>] [weak|strong]\n"
               "  tpc_cli [flags] sat      <p> <dtd> [weak|strong]\n"
               "  tpc_cli [flags] valid    <q> <dtd> [weak|strong]\n"
               "  tpc_cli [flags] minimize <q>\n"
               "  tpc_cli [flags] match    <q> <tree> [weak|strong]\n"
               "  tpc_cli [flags] --batch  <file>\n"
               "flags:\n"
               "  --stats          print engine counters as JSON\n"
               "  --batch <file>   decide '<p> <q> [weak|strong]' pairs, one\n"
               "                   per line, through the query service\n"
               "  --no-cache       batch: disable the verdict-cache layer\n"
               "  --no-prefilter   batch: disable the prefilter cascade\n"
               "  --no-lattice     batch: disable the subsumption lattice\n"
               "                   (stitch/borrow derivation of cache misses)\n"
               "  --snapshot-load <file>  batch: warm-start the service from\n"
               "                   a snapshot before deciding (a bad file\n"
               "                   warns and starts cold)\n"
               "  --snapshot-save <file>  batch: persist the warm tier after\n"
               "                   deciding (verdicts, patterns, hot keys)\n"
               "  --timeout <ms>   wall-clock budget (exit 3 when exceeded)\n"
               "  --steps <n>      step budget (exit 3 when exceeded)\n"
               "  --memory <bytes> tracked-memory budget (exit 3 when "
               "exceeded)\n"
               "  --threads <n>    worker threads (canonical sweeps and\n"
               "                   schema-engine saturation rounds)\n"
               "  --no-antichain   disable schema-engine subsumption pruning\n"
               "  --no-word-parallel  scalar embedding-DP fill (A/B)\n"
               "  --no-compile     disable compiled matcher programs (A/B)\n"
               "  --no-group-sweep batch: decide pairs independently instead\n"
               "                   of sharing one canonical sweep per\n"
               "                   enumeration-side pattern (A/B)\n"
               "  --fault-exhaust-at <n>  force exhaustion at the nth charge\n"
               "  --fault-alloc-at <k>    fail the kth tracked allocation\n"
               "  --fault-cancel-at <n>   cancel at the nth charge\n");
  return 2;
}

Mode ParseMode(const char* arg) {
  return std::strcmp(arg, "strong") == 0 ? Mode::kStrong : Mode::kWeak;
}

bool IsModeWord(const char* arg) {
  return std::strcmp(arg, "weak") == 0 || std::strcmp(arg, "strong") == 0;
}

Tpq ParsePatternOrExit(const char* src, LabelPool* pool) {
  ParseDiagnostic diag;
  std::optional<Tpq> q = ParseTpqChecked(src, pool, &diag);
  if (!q.has_value()) {
    std::fprintf(stderr, "bad pattern '%s': %s\n", src,
                 diag.ToString().c_str());
    std::exit(2);
  }
  return std::move(*q);
}

Dtd ParseDtdOrExit(const char* src, LabelPool* pool) {
  ParseDiagnostic diag;
  std::optional<Dtd> d = ParseDtdChecked(src, pool, &diag);
  if (!d.has_value()) {
    std::fprintf(stderr, "bad DTD: %s\n", diag.ToString().c_str());
    std::exit(2);
  }
  return std::move(*d);
}

int64_t ParseCountOrDie(const char* flag, const char* arg) {
  char* end = nullptr;
  long long v = std::strtoll(arg, &end, 10);
  if (end == arg || *end != '\0' || v < 0) {
    std::fprintf(stderr, "bad value for %s: '%s'\n", flag, arg);
    std::exit(2);
  }
  return static_cast<int64_t>(v);
}

/// Prints the stats block (when requested) and translates an undecided
/// outcome into the UNDECIDED exit status, naming the exhausted resource.
/// `reason` is the result's captured reason — authoritative at decision
/// time, unlike the budget, whose exhaustion may already be cleared for
/// context reuse.
int Finish(EngineContext* ctx, bool print_stats, bool undecided,
           ExhaustionReason reason, int decided_status) {
  if (print_stats) std::printf("%s\n", ctx->StatsJson().c_str());
  if (undecided) {
    if (reason == ExhaustionReason::kNone) reason = ExhaustionReason::kSteps;
    // The wire code and retryable bit come from the frozen table shared
    // with tpc_serve (README "Error codes"), so a script wrapping the CLI
    // and a client of the daemon retry on identical grounds.
    const serve::WireStatus status = serve::WireStatusForReason(reason);
    std::printf("UNDECIDED (resource budget exhausted: %s; wire code %d %s, "
                "%s)\n",
                ExhaustionReasonName(reason), static_cast<int>(status),
                serve::WireStatusName(status),
                serve::WireStatusRetryable(status) ? "retryable"
                                                   : "not retryable");
    return kExitUndecided;
  }
  return decided_status;
}

}  // namespace

int main(int argc, char** argv) {
  EngineConfig config;
  bool print_stats = false;
  SchemaEngineOptions schema_options;
  ServiceOptions service_options;
  ContainmentOptions contain_options;
  const char* batch_file = nullptr;
  const char* snapshot_load = nullptr;
  const char* snapshot_save = nullptr;
  std::vector<char*> args;  // positional arguments, flags stripped
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--stats") == 0) {
      print_stats = true;
    } else if (std::strcmp(argv[i], "--no-antichain") == 0) {
      schema_options.antichain = false;
    } else if (std::strcmp(argv[i], "--no-word-parallel") == 0) {
      contain_options.word_parallel = false;
      service_options.containment.word_parallel = false;
    } else if (std::strcmp(argv[i], "--no-compile") == 0) {
      contain_options.compiled_matcher = false;
      service_options.containment.compiled_matcher = false;
    } else if (std::strcmp(argv[i], "--no-group-sweep") == 0) {
      contain_options.grouped_sweep = false;
      service_options.containment.grouped_sweep = false;
    } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
      batch_file = argv[++i];
    } else if (std::strcmp(argv[i], "--no-cache") == 0) {
      service_options.use_cache = false;
    } else if (std::strcmp(argv[i], "--no-lattice") == 0) {
      service_options.use_lattice = false;
    } else if (std::strcmp(argv[i], "--snapshot-load") == 0 && i + 1 < argc) {
      snapshot_load = argv[++i];
    } else if (std::strcmp(argv[i], "--snapshot-save") == 0 && i + 1 < argc) {
      snapshot_save = argv[++i];
    } else if (std::strcmp(argv[i], "--no-prefilter") == 0) {
      service_options.use_prefilters = false;
    } else if (std::strcmp(argv[i], "--timeout") == 0 && i + 1 < argc) {
      config.deadline_ms = ParseCountOrDie("--timeout", argv[++i]);
    } else if (std::strcmp(argv[i], "--steps") == 0 && i + 1 < argc) {
      config.step_limit = ParseCountOrDie("--steps", argv[++i]);
    } else if (std::strcmp(argv[i], "--memory") == 0 && i + 1 < argc) {
      config.memory_limit = ParseCountOrDie("--memory", argv[++i]);
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      config.threads =
          static_cast<int>(ParseCountOrDie("--threads", argv[++i]));
    } else if (std::strcmp(argv[i], "--fault-exhaust-at") == 0 &&
               i + 1 < argc) {
      config.fault_plan.exhaust_at_charge =
          ParseCountOrDie("--fault-exhaust-at", argv[++i]);
    } else if (std::strcmp(argv[i], "--fault-alloc-at") == 0 && i + 1 < argc) {
      config.fault_plan.fail_alloc_at =
          ParseCountOrDie("--fault-alloc-at", argv[++i]);
    } else if (std::strcmp(argv[i], "--fault-cancel-at") == 0 &&
               i + 1 < argc) {
      config.fault_plan.cancel_at_charge =
          ParseCountOrDie("--fault-cancel-at", argv[++i]);
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return Usage();
    } else {
      args.push_back(argv[i]);
    }
  }
  if (batch_file == nullptr && args.size() < 2) return Usage();
  EngineContext ctx(config);
  serve::InstallCancelOnSignals(&ctx);  // SIGINT and SIGTERM both cancel
  LabelPool pool;

  if (batch_file != nullptr) {
    std::ifstream in(batch_file);
    if (!in) {
      std::fprintf(stderr, "cannot open batch file '%s'\n", batch_file);
      return 2;
    }
    std::vector<QueryService::BatchItem> items;
    std::vector<int> item_line;  // file line of each item, for the report
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const size_t comment = line.find('#');
      if (comment != std::string::npos) line.resize(comment);
      std::istringstream tokens(line);
      std::string p_src, q_src, word;
      if (!(tokens >> p_src)) continue;  // blank or comment-only line
      if (!(tokens >> q_src)) {
        std::fprintf(stderr, "%s:%d: expected '<p> <q> [weak|strong]'\n",
                     batch_file, lineno);
        return 2;
      }
      Mode mode = Mode::kWeak;
      if (tokens >> word) {
        if (!IsModeWord(word.c_str()) || (tokens >> word)) {
          std::fprintf(stderr, "%s:%d: expected '<p> <q> [weak|strong]'\n",
                       batch_file, lineno);
          return 2;
        }
        mode = ParseMode(word.c_str());
      }
      QueryService::BatchItem item;
      ParseDiagnostic diag;
      std::optional<Tpq> p = ParseTpqChecked(p_src.c_str(), &pool, &diag);
      std::optional<Tpq> q =
          p.has_value() ? ParseTpqChecked(q_src.c_str(), &pool, &diag)
                        : std::nullopt;
      if (!p.has_value() || !q.has_value()) {
        std::fprintf(stderr, "%s:%d: bad pattern '%s': %s\n", batch_file,
                     lineno, p.has_value() ? q_src.c_str() : p_src.c_str(),
                     diag.ToString().c_str());
        return 2;
      }
      item.p = std::move(*p);
      item.q = std::move(*q);
      item.mode = mode;
      items.push_back(std::move(item));
      item_line.push_back(lineno);
    }
    QueryService service(&pool, &ctx, service_options);
    if (snapshot_load != nullptr) {
      std::string error;
      if (!service.LoadSnapshot(snapshot_load, &error)) {
        // A rejected snapshot (corrupt, truncated, version skew, budget)
        // costs warmth, not correctness: warn and decide cold.
        std::fprintf(stderr, "warning: %s: %s (starting cold)\n",
                     snapshot_load, error.c_str());
      }
    }
    std::vector<ContainmentResult> results = service.ContainsBatch(items);
    if (snapshot_save != nullptr) {
      std::string error;
      if (!service.SaveSnapshot(snapshot_save, &error)) {
        std::fprintf(stderr, "warning: %s: %s (snapshot not written)\n",
                     snapshot_save, error.c_str());
      }
    }
    bool any_undecided = false;
    ExhaustionReason reason = ExhaustionReason::kNone;
    for (size_t i = 0; i < results.size(); ++i) {
      const ContainmentResult& r = results[i];
      if (r.outcome != Outcome::kDecided) {
        any_undecided = true;
        reason = r.reason;
        std::printf("%d: UNDECIDED (%s)\n", item_line[i],
                    ExhaustionReasonName(r.reason));
      } else {
        std::printf("%d: %s\n", item_line[i],
                    r.contained ? "contained" : "NOT contained");
      }
    }
    if (print_stats) {
      // Coalescing summary for the grouped canonical sweep (one line; the
      // full counter JSON from Finish carries the raw values too).
      const EngineStats& s = ctx.stats();
      const long long groups =
          s.sweep_groups_formed.load(std::memory_order_relaxed);
      const long long members =
          s.sweep_group_members.load(std::memory_order_relaxed);
      const long long retired =
          s.group_members_retired_early.load(std::memory_order_relaxed);
      std::printf("group sweep: %lld groups, mean size %.2f, "
                  "early-retire rate %.2f\n",
                  groups,
                  groups > 0 ? static_cast<double>(members) / groups : 0.0,
                  members > 0 ? static_cast<double>(retired) / members : 0.0);
    }
    // Exit status reports decidability, not verdicts — a batch mixes both
    // answers, so per-line output carries them.
    return Finish(&ctx, print_stats, any_undecided, reason, 0);
  }

  std::string command = args[0];

  if (command == "contain") {
    if (args.size() < 3) return Usage();
    Tpq p = ParsePatternOrExit(args[1], &pool);
    Tpq q = ParsePatternOrExit(args[2], &pool);
    Mode mode = Mode::kWeak;
    const char* dtd_src = nullptr;
    for (size_t i = 3; i < args.size(); ++i) {
      if (IsModeWord(args[i])) {
        mode = ParseMode(args[i]);
      } else {
        dtd_src = args[i];
      }
    }
    if (dtd_src == nullptr) {
      ContainmentResult r = Contains(p, q, mode, &pool, &ctx, contain_options);
      if (r.outcome == Outcome::kDecided) {
        std::printf("%s\n", r.contained ? "contained" : "NOT contained");
        if (r.counterexample.has_value()) {
          std::printf("counterexample: %s\n",
                      r.counterexample->ToString(pool).c_str());
        }
        if (r.counterexample_lengths.has_value()) {
          std::printf("counterexample chain lengths:");
          for (int32_t len : *r.counterexample_lengths) {
            std::printf(" %d", len);
          }
          std::printf("\n");
        }
      }
      return Finish(&ctx, print_stats, r.outcome != Outcome::kDecided,
                    r.reason, r.contained ? 0 : 1);
    }
    Dtd d = ParseDtdOrExit(dtd_src, &pool);
    SchemaDecision r =
        ContainedWithDtd(p, q, mode, d, &ctx, EngineLimits{}, schema_options);
    if (r.decided) {
      std::printf("%s (w.r.t. the DTD)\n",
                  r.yes ? "contained" : "NOT contained");
      if (r.witness.has_value()) {
        std::printf("counterexample: %s\n", r.witness->ToString(pool).c_str());
      }
    }
    return Finish(&ctx, print_stats, !r.decided, r.reason, r.yes ? 0 : 1);
  }

  if (command == "sat" || command == "valid") {
    if (args.size() < 3) return Usage();
    Tpq q = ParsePatternOrExit(args[1], &pool);
    Dtd d = ParseDtdOrExit(args[2], &pool);
    Mode mode = args.size() > 3 && IsModeWord(args[3]) ? ParseMode(args[3])
                                                       : Mode::kWeak;
    SchemaDecision r =
        command == "sat"
            ? SatisfiableWithDtd(q, mode, d, &ctx, EngineLimits{},
                                 schema_options)
            : ValidWithDtd(q, mode, d, &ctx, EngineLimits{}, schema_options);
    if (r.decided) {
      std::printf("%s\n", command == "sat"
                              ? (r.yes ? "satisfiable" : "NOT satisfiable")
                              : (r.yes ? "valid" : "NOT valid"));
      if (r.witness.has_value()) {
        std::printf("%s: %s\n",
                    command == "sat" ? "witness" : "counterexample",
                    r.witness->ToString(pool).c_str());
      }
    }
    return Finish(&ctx, print_stats, !r.decided, r.reason, r.yes ? 0 : 1);
  }

  if (command == "minimize") {
    Tpq q = ParsePatternOrExit(args[1], &pool);
    Tpq min = MinimizeTpq(q, Mode::kWeak, &pool);
    std::printf("%s\n", min.ToString(pool).c_str());
    return Finish(&ctx, print_stats, false, ExhaustionReason::kNone, 0);
  }

  if (command == "match") {
    if (args.size() < 3) return Usage();
    Tpq q = ParsePatternOrExit(args[1], &pool);
    ParseDiagnostic diag;
    std::optional<Tree> t = ParseTreeChecked(args[2], &pool, &diag);
    if (!t.has_value()) {
      std::fprintf(stderr, "bad tree '%s': %s\n", args[2],
                   diag.ToString().c_str());
      return 2;
    }
    Mode mode = args.size() > 3 && IsModeWord(args[3]) ? ParseMode(args[3])
                                                       : Mode::kWeak;
    Matcher matcher(q, *t, &ctx.stats(), contain_options.word_parallel);
    bool matches =
        mode == Mode::kStrong ? matcher.MatchesStrong() : matcher.MatchesWeak();
    std::printf("%s\n", matches ? "match" : "no match");
    return Finish(&ctx, print_stats, false, ExhaustionReason::kNone,
                  matches ? 0 : 1);
  }
  return Usage();
}
