// Command-line front end to the library's decision procedures.
//
// Usage:
//   tpc_cli contain  <p> <q> [weak|strong]
//   tpc_cli contain  <p> <q> <dtd> [weak|strong]
//   tpc_cli sat      <p> <dtd> [weak|strong]
//   tpc_cli valid    <q> <dtd> [weak|strong]
//   tpc_cli minimize <q>
//   tpc_cli match    <q> <tree> [weak|strong]
//
// Patterns use XPath-like syntax (a/b//*[c]); trees use term syntax
// (a(b,c(d))); DTDs use clause syntax ("root: a; a -> b c*; b -> eps;").
//
// Examples:
//   tpc_cli contain 'a/b' 'a//b'
//   tpc_cli contain 'a//c' 'a/b' 'root: a; a -> b c?; b -> eps; c -> eps;'
//   tpc_cli sat 'a[b][c]' 'root: a; a -> b | c;'
//   tpc_cli minimize 'a[b][b/c]'

#include <cstdio>
#include <cstring>
#include <string>

#include "base/label.h"
#include "contain/containment.h"
#include "contain/minimize.h"
#include "dtd/dtd.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"
#include "schema/schema_engine.h"
#include "tree/tree_parser.h"

using namespace tpc;

namespace {

int Usage() {
  std::fprintf(stderr,
               "usage:\n"
               "  tpc_cli contain  <p> <q> [<dtd>] [weak|strong]\n"
               "  tpc_cli sat      <p> <dtd> [weak|strong]\n"
               "  tpc_cli valid    <q> <dtd> [weak|strong]\n"
               "  tpc_cli minimize <q>\n"
               "  tpc_cli match    <q> <tree> [weak|strong]\n");
  return 2;
}

Mode ParseMode(const char* arg) {
  return std::strcmp(arg, "strong") == 0 ? Mode::kStrong : Mode::kWeak;
}

bool IsModeWord(const char* arg) {
  return std::strcmp(arg, "weak") == 0 || std::strcmp(arg, "strong") == 0;
}

Tpq ParsePatternOrDie(const char* src, LabelPool* pool) {
  ParseResult<Tpq> r = ParseTpq(src, pool);
  if (!r.ok()) {
    std::fprintf(stderr, "bad pattern '%s': %s (offset %zu)\n", src,
                 r.error().c_str(), r.error_offset());
    std::exit(2);
  }
  return std::move(r.value());
}

Dtd ParseDtdOrDie(const char* src, LabelPool* pool) {
  ParseResult<Dtd> r = ParseDtd(src, pool);
  if (!r.ok()) {
    std::fprintf(stderr, "bad DTD: %s (offset %zu)\n", r.error().c_str(),
                 r.error_offset());
    std::exit(2);
  }
  return std::move(r.value());
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  LabelPool pool;
  std::string command = argv[1];

  if (command == "contain") {
    if (argc < 4) return Usage();
    Tpq p = ParsePatternOrDie(argv[2], &pool);
    Tpq q = ParsePatternOrDie(argv[3], &pool);
    Mode mode = Mode::kWeak;
    const char* dtd_src = nullptr;
    for (int i = 4; i < argc; ++i) {
      if (IsModeWord(argv[i])) {
        mode = ParseMode(argv[i]);
      } else {
        dtd_src = argv[i];
      }
    }
    if (dtd_src == nullptr) {
      ContainmentResult r = Contains(p, q, mode, &pool);
      std::printf("%s\n", r.contained ? "contained" : "NOT contained");
      if (r.counterexample.has_value()) {
        std::printf("counterexample: %s\n",
                    r.counterexample->ToString(pool).c_str());
      }
      return r.contained ? 0 : 1;
    }
    Dtd d = ParseDtdOrDie(dtd_src, &pool);
    SchemaDecision r = ContainedWithDtd(p, q, mode, d);
    std::printf("%s (w.r.t. the DTD)\n",
                r.yes ? "contained" : "NOT contained");
    if (r.witness.has_value()) {
      std::printf("counterexample: %s\n", r.witness->ToString(pool).c_str());
    }
    return r.yes ? 0 : 1;
  }

  if (command == "sat" || command == "valid") {
    if (argc < 4) return Usage();
    Tpq q = ParsePatternOrDie(argv[2], &pool);
    Dtd d = ParseDtdOrDie(argv[3], &pool);
    Mode mode = argc > 4 && IsModeWord(argv[4]) ? ParseMode(argv[4])
                                                : Mode::kWeak;
    SchemaDecision r = command == "sat" ? SatisfiableWithDtd(q, mode, d)
                                        : ValidWithDtd(q, mode, d);
    std::printf("%s\n", command == "sat"
                            ? (r.yes ? "satisfiable" : "NOT satisfiable")
                            : (r.yes ? "valid" : "NOT valid"));
    if (r.witness.has_value()) {
      std::printf("%s: %s\n", command == "sat" ? "witness" : "counterexample",
                  r.witness->ToString(pool).c_str());
    }
    return r.yes ? 0 : 1;
  }

  if (command == "minimize") {
    Tpq q = ParsePatternOrDie(argv[2], &pool);
    Tpq min = MinimizeTpq(q, Mode::kWeak, &pool);
    std::printf("%s\n", min.ToString(pool).c_str());
    return 0;
  }

  if (command == "match") {
    if (argc < 4) return Usage();
    Tpq q = ParsePatternOrDie(argv[2], &pool);
    ParseResult<Tree> t = ParseTree(argv[3], &pool);
    if (!t.ok()) {
      std::fprintf(stderr, "bad tree '%s': %s\n", argv[3],
                   t.error().c_str());
      return 2;
    }
    Mode mode = argc > 4 && IsModeWord(argv[4]) ? ParseMode(argv[4])
                                                : Mode::kWeak;
    bool matches = mode == Mode::kStrong ? MatchesStrong(q, t.value())
                                         : MatchesWeak(q, t.value());
    std::printf("%s\n", matches ? "match" : "no match");
    return matches ? 0 : 1;
  }
  return Usage();
}
