// Schema linter: given a DTD and a workload of tree pattern queries, report
// for each query whether it is satisfiable, valid, and which other queries
// it is contained in — the Sections 4-6 decision problems as a tool.
//
// Usage:  ./build/examples/schema_lint
// (Runs on a built-in document-management schema; edit below to experiment.)

#include <cstdio>
#include <string>
#include <vector>

#include "base/label.h"
#include "contain/minimize.h"
#include "dtd/dtd.h"
#include "pattern/tpq_parser.h"
#include "schema/schema_engine.h"

using namespace tpc;

int main() {
  LabelPool pool;
  // A small document-management DTD: articles with sections, sections with
  // titles and paragraphs, optional appendix; notes may nest.
  Dtd dtd = MustParseDtd(
      "root: article;"
      "article -> meta section section* appendix?;"
      "meta -> author author* date;"
      "section -> title par* note*;"
      "note -> par note?;"
      "appendix -> section*;"
      "author -> eps; date -> eps; title -> eps; par -> eps;",
      &pool);
  std::printf("Schema:\n%s\n", dtd.ToString(pool).c_str());

  std::vector<std::string> queries = {
      "article/section/title",      // valid: every article has a section
      "article//par",               // satisfiable, not valid
      "article/meta/date",          // valid
      "article//note//note",        // nested notes
      "section/note/par",           // satisfiable
      "article/par",                // unsatisfiable: par is never a child
      "note[par]//par",             // redundancy: par branch implied
      "article//title",             // valid
      "appendix//title",            // weakly satisfiable only
  };

  std::printf("%-24s %5s %5s %6s   notes\n", "query", "sat?", "valid",
              "min");
  for (const std::string& src : queries) {
    Tpq q = MustParseTpq(src, &pool);
    SchemaDecision sat = SatisfiableWithDtd(q, Mode::kWeak, dtd);
    SchemaDecision valid = ValidWithDtd(q, Mode::kWeak, dtd);
    Tpq min = MinimizeTpq(q, Mode::kWeak, &pool);
    std::string note;
    if (!sat.yes) {
      note = "dead query (never matches any document)";
    } else if (valid.yes) {
      note = "tautology (matches every document)";
    } else if (sat.witness.has_value()) {
      note = "e.g. " + sat.witness->ToString(pool);
    }
    std::printf("%-24s %5s %5s %3d/%-3d  %s\n", src.c_str(),
                sat.yes ? "yes" : "no", valid.yes ? "yes" : "no", min.size(),
                q.size(), note.c_str());
  }

  // Pairwise containment report (with schema): which queries subsume which?
  std::printf("\nContainment matrix w.r.t. the schema "
              "(row ⊆ column = 'Y'):\n    ");
  for (size_t j = 0; j < queries.size(); ++j) std::printf("%2zu ", j);
  std::printf("\n");
  for (size_t i = 0; i < queries.size(); ++i) {
    Tpq p = MustParseTpq(queries[i], &pool);
    std::printf("%2zu  ", i);
    for (size_t j = 0; j < queries.size(); ++j) {
      Tpq q = MustParseTpq(queries[j], &pool);
      bool contained = ContainedWithDtd(p, q, Mode::kWeak, dtd).yes;
      std::printf("%2s ", contained ? "Y" : ".");
    }
    std::printf("  %s\n", queries[i].c_str());
  }
  return 0;
}
