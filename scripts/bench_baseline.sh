#!/usr/bin/env bash
# Records the benchmark baselines: builds the release preset and runs
#   * bench_table1_containment (the P/coNP grid, the chunked-parallel sweep
#     and the incremental-sweep A/B — which now also twins the word-parallel
#     vs scalar DP fill, reporting the `dp_words_folded`/`dp_rows_skipped`
#     kernel counters) into BENCH_table1.json, and
#   * bench_table45_schema_containment (the schema-aware P/coNP/EXPTIME
#     cells, including the antichain on/off A/B twins) into
#     BENCH_table45.json, and
#   * bench_service (the query-service fast path: zipf stream baseline vs
#     cold vs warm cache — the warm run now twinned with a no-compile axis
#     (BM_Service_ZipfWarmNoCompile) so the compiled matcher programs'
#     contribution is separable — and the probe-prefilter vs sweep A/B on
#     the coNP refutation family, with `dp_words_folded` and the
#     `programs_compiled`/`program_exec_hits` counters recorded per run)
#     into BENCH_service.json, and
#   * bench_compile (pattern compilation: compile latency, the compiled vs
#     generic per-decision DP work units — `folded_per_decision` must be
#     >= 5x smaller compiled — and the zipf steady state, which must report
#     `programs_compiled_steady` == 0, i.e. compile cost fully amortized
#     into warmup) into BENCH_compile.json, and
#   * bench_persist (the warm-start tier: cold vs warm time-to-first-verdict
#     — the warm restart must win by >= 10x — the transitive-chain stitch
#     conversion with its 30% floor enforced in-bench, the mmap-open vs
#     heap-rebuild twin, and the non-identity remap load: the same snapshot
#     adopted into a shifted label pool must still serve cache hits with
#     snapshot_trees_mapped == 0) into BENCH_persist.json, and
#   * bench_group (the grouped canonical sweep: grouped vs independent
#     rebuilds-per-decision across group sizes — the in-bench amortization
#     floor skips-with-error unless the group-of-8 reduction is >= 5x —
#     the mixed early-retire family, and the daemon coalescing-window
#     round-trip floor) into BENCH_group.json, and
#   * bench_serve (the daemon under adversarial multi-tenancy: the PTIME
#     wire floor solo vs with a coNP aggressor window — the in-bench
#     isolation assert skips-with-error if the light tenant's p95 degrades
#     to the aggressor's whole backlog, i.e. FIFO behaviour — plus the O(1)
#     admission-shed round-trip) into BENCH_serve.json
# at the repo root, for before/after comparison across PRs.
#
# Baselines from non-optimized builds are worse than useless — they look
# like regressions to the next PR — so the script refuses to run unless the
# release preset's cache really selected an optimized CMAKE_BUILD_TYPE.
# (The system Google Benchmark library reports library_build_type=debug no
# matter what, so the check reads the repo's own cache instead; the real
# build type is also stamped into every JSON as tpc_build_type.)
#
# Usage: scripts/bench_baseline.sh [benchmark_filter_regex]
# The optional regex is passed to --benchmark_filter of both suites
# (default: all).
set -euo pipefail
cd "$(dirname "$0")/.."

filter="${1:-.}"

cmake --preset release

build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[A-Z]*=//p' build/CMakeCache.txt)"
case "$build_type" in
  Release|RelWithDebInfo) ;;
  *)
    echo "error: refusing to record baselines from a '$build_type' build;" >&2
    echo "       the release preset must select Release or RelWithDebInfo" >&2
    exit 1
    ;;
esac

cmake --build --preset release -j "$(nproc)" \
  --target bench_table1_containment \
  --target bench_table45_schema_containment \
  --target bench_service \
  --target bench_compile \
  --target bench_persist \
  --target bench_group \
  --target bench_serve

run_suite() {
  local bin="$1" out="$2"
  "./build/bench/$bin" \
    --benchmark_filter="$filter" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_format=console \
    --benchmark_context=tpc_build_type="$build_type"
  echo "wrote $(pwd)/$out"
}

run_suite bench_table1_containment BENCH_table1.json
run_suite bench_table45_schema_containment BENCH_table45.json
run_suite bench_service BENCH_service.json
run_suite bench_compile BENCH_compile.json
run_suite bench_persist BENCH_persist.json
run_suite bench_group BENCH_group.json
run_suite bench_serve BENCH_serve.json
