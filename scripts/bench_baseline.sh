#!/usr/bin/env bash
# Records the benchmark baselines: builds the release preset and runs
#   * bench_table1_containment (the P/coNP grid, the chunked-parallel sweep
#     and the incremental-sweep A/B — which now also twins the word-parallel
#     vs scalar DP fill, reporting the `dp_words_folded`/`dp_rows_skipped`
#     kernel counters) into BENCH_table1.json, and
#   * bench_table45_schema_containment (the schema-aware P/coNP/EXPTIME
#     cells, including the antichain on/off A/B twins) into
#     BENCH_table45.json, and
#   * bench_service (the query-service fast path: zipf stream baseline vs
#     cold vs warm cache — the warm run now twinned with a no-compile axis
#     (BM_Service_ZipfWarmNoCompile) so the compiled matcher programs'
#     contribution is separable — and the probe-prefilter vs sweep A/B on
#     the coNP refutation family, with `dp_words_folded` and the
#     `programs_compiled`/`program_exec_hits` counters recorded per run)
#     into BENCH_service.json, and
#   * bench_compile (pattern compilation: compile latency, the compiled vs
#     generic per-decision DP work units — `folded_per_decision` must be
#     >= 5x smaller compiled — and the zipf steady state, which must report
#     `programs_compiled_steady` == 0, i.e. compile cost fully amortized
#     into warmup) into BENCH_compile.json
# at the repo root, for before/after comparison across PRs.
#
# Usage: scripts/bench_baseline.sh [benchmark_filter_regex]
# The optional regex is passed to --benchmark_filter of both suites
# (default: all).
set -euo pipefail
cd "$(dirname "$0")/.."

filter="${1:-.}"

cmake --preset release
cmake --build --preset release -j "$(nproc)" \
  --target bench_table1_containment \
  --target bench_table45_schema_containment \
  --target bench_service \
  --target bench_compile

./build/bench/bench_table1_containment \
  --benchmark_filter="$filter" \
  --benchmark_out=BENCH_table1.json \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote $(pwd)/BENCH_table1.json"

./build/bench/bench_table45_schema_containment \
  --benchmark_filter="$filter" \
  --benchmark_out=BENCH_table45.json \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote $(pwd)/BENCH_table45.json"

./build/bench/bench_service \
  --benchmark_filter="$filter" \
  --benchmark_out=BENCH_service.json \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote $(pwd)/BENCH_service.json"

./build/bench/bench_compile \
  --benchmark_filter="$filter" \
  --benchmark_out=BENCH_compile.json \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote $(pwd)/BENCH_compile.json"
