#!/usr/bin/env bash
# Records the Table-1 benchmark baseline: builds the release preset and runs
# the containment benches (the P/coNP grid, the chunked-parallel sweep and
# the incremental-sweep A/B) with JSON output into BENCH_table1.json at the
# repo root, for before/after comparison across PRs.
#
# Usage: scripts/bench_baseline.sh [benchmark_filter_regex]
# The optional regex is passed to --benchmark_filter (default: all).
set -euo pipefail
cd "$(dirname "$0")/.."

filter="${1:-.}"

cmake --preset release
cmake --build --preset release -j "$(nproc)" --target bench_table1_containment

./build/bench/bench_table1_containment \
  --benchmark_filter="$filter" \
  --benchmark_out=BENCH_table1.json \
  --benchmark_out_format=json \
  --benchmark_format=console

echo "wrote $(pwd)/BENCH_table1.json"
