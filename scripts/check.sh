#!/usr/bin/env bash
# Sanitizer gate: configure + build the asan preset and run the test suite
# under AddressSanitizer/UBSan.  Pass `tsan` as the first argument to run the
# ThreadSanitizer preset instead (exercises the engine thread pool).
set -euo pipefail
cd "$(dirname "$0")/.."

preset="${1:-asan}"
case "$preset" in
  asan|tsan|release) ;;
  *) echo "usage: $0 [asan|tsan|release]" >&2; exit 2 ;;
esac

cmake --preset "$preset"
cmake --build --preset "$preset" -j "$(nproc)"
ctest --preset "$preset" -j "$(nproc)"
