#!/usr/bin/env bash
# Regression gate: configure + build + ctest one or more presets, failing on
# the first preset whose tests regress.  With no argument the tier-1 gate
# runs — release, asan (AddressSanitizer/UBSan) and tsan (ThreadSanitizer,
# exercising the engine thread pool and the parallel schema rounds).
#
# Usage:
#   scripts/check.sh                 tier-1 gate (release, asan, tsan)
#   scripts/check.sh <preset>        one preset (release|asan|tsan|ubsan)
#   scripts/check.sh faults          the failure-model gate: the fault
#                                    matrix, exhaustion audit, parser
#                                    mutation and daemon fault suites under
#                                    asan AND tsan (leaks + races of every
#                                    injected-fault unwind path)
#   scripts/check.sh layout          the columnar-layout gate: the TreeView
#                                    property sweep, the word-parallel vs
#                                    scalar agreement suite and the matcher
#                                    property suite under asan AND ubsan
#                                    (out-of-bounds column reads and shift
#                                    UB in the fold kernels)
#   scripts/check.sh compile         the pattern-compilation gate: the
#                                    compiled-vs-generic agreement suite and
#                                    the program-cache suite under asan AND
#                                    ubsan (bit/shift UB in the fused ops,
#                                    lifetime bugs in the shared programs)
#   scripts/check.sh serve           the daemon gate: the wire-protocol
#                                    mutation matrix, the fair-scheduler
#                                    invariants and the end-to-end fault /
#                                    drain / disconnect suite under asan AND
#                                    tsan (the server is the most
#                                    thread-shaped subsystem in the repo:
#                                    IO thread + runner + workers + client
#                                    threads all live in these tests)
#   scripts/check.sh persist         the persistence gate: the snapshot
#                                    round-trip/corruption suite, the
#                                    lattice agreement suite and the service
#                                    fault matrix under asan AND ubsan
#                                    (mmap lifetime/out-of-bounds reads over
#                                    the mapped columns, unaligned-load UB
#                                    in the record cursors)
#   scripts/check.sh group           the grouped-sweep gate: the 500-instance
#                                    grouped-vs-independent agreement suite
#                                    and the member fault matrix under asan
#                                    AND tsan (the parallel sweep shares one
#                                    undecided mask across worker threads,
#                                    and a faulted member's unwind must
#                                    never touch a groupmate's attribution)
set -euo pipefail
cd "$(dirname "$0")/.."

FAULT_TESTS='fault_injection_test|exhaustion_audit_test|parser_mutation_test|service_fault_test|serve_fault_test'
LAYOUT_TESTS='tree_view_test|word_parallel_agreement_test|matcher_property_test'
COMPILE_TESTS='compiled_agreement_test|program_cache_test'
PERSIST_TESTS='snapshot_roundtrip_test|lattice_agreement_test|service_fault_test'
SERVE_TESTS='serve_protocol_test|serve_scheduler_test|serve_fault_test'
GROUP_TESTS='group_agreement_test|group_fault_test'

run_preset() {
  local preset="$1"; shift
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)" "$@"
}

if [[ $# -eq 0 ]]; then
  presets=(release asan tsan)
elif [[ $1 == faults ]]; then
  echo "== failure-model gate (fault matrix under asan + tsan) =="
  for preset in asan tsan; do
    run_preset "$preset" -R "$FAULT_TESTS"
  done
  exit 0
elif [[ $1 == layout ]]; then
  echo "== columnar-layout gate (view + kernel agreement under asan + ubsan) =="
  for preset in asan ubsan; do
    run_preset "$preset" -R "$LAYOUT_TESTS"
  done
  exit 0
elif [[ $1 == compile ]]; then
  echo "== pattern-compilation gate (compiled-vs-generic under asan + ubsan) =="
  for preset in asan ubsan; do
    run_preset "$preset" -R "$COMPILE_TESTS"
  done
  exit 0
elif [[ $1 == serve ]]; then
  echo "== daemon gate (protocol + scheduler + e2e faults under asan + tsan) =="
  for preset in asan tsan; do
    run_preset "$preset" -R "$SERVE_TESTS"
  done
  exit 0
elif [[ $1 == persist ]]; then
  echo "== persistence gate (snapshot + lattice + faults under asan + ubsan) =="
  for preset in asan ubsan; do
    run_preset "$preset" -R "$PERSIST_TESTS"
  done
  exit 0
elif [[ $1 == group ]]; then
  echo "== grouped-sweep gate (agreement + member faults under asan + tsan) =="
  for preset in asan tsan; do
    run_preset "$preset" -R "$GROUP_TESTS"
  done
  exit 0
else
  presets=("$1")
fi

for preset in "${presets[@]}"; do
  case "$preset" in
    asan|tsan|ubsan|release) ;;
    *) echo "usage: $0 [asan|tsan|ubsan|release|faults|layout|compile|persist|serve|group]" >&2; exit 2 ;;
  esac
done

for preset in "${presets[@]}"; do
  run_preset "$preset"
done
