#!/usr/bin/env bash
# Regression gate: configure + build + ctest one or more presets, failing on
# the first preset whose tests regress.  With no argument the tier-1 gate
# runs — release, asan (AddressSanitizer/UBSan) and tsan (ThreadSanitizer,
# exercising the engine thread pool and the parallel schema rounds).
# Pass `asan`, `tsan` or `release` to run a single preset.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -eq 0 ]]; then
  presets=(release asan tsan)
else
  presets=("$1")
fi

for preset in "${presets[@]}"; do
  case "$preset" in
    asan|tsan|release) ;;
    *) echo "usage: $0 [asan|tsan|release]" >&2; exit 2 ;;
  esac
done

for preset in "${presets[@]}"; do
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)"
done
