#!/usr/bin/env bash
# Regression gate: configure + build + ctest one or more presets, failing on
# the first preset whose tests regress.  With no argument the tier-1 gate
# runs — the release preset and the asan (AddressSanitizer/UBSan) preset.
# Pass `asan`, `tsan` or `release` to run a single preset (tsan exercises
# the engine thread pool under ThreadSanitizer).
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ $# -eq 0 ]]; then
  presets=(release asan)
else
  presets=("$1")
fi

for preset in "${presets[@]}"; do
  case "$preset" in
    asan|tsan|release) ;;
    *) echo "usage: $0 [asan|tsan|release]" >&2; exit 2 ;;
  esac
done

for preset in "${presets[@]}"; do
  echo "== preset: $preset =="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" -j "$(nproc)"
done
