# Empty compiler generated dependencies file for schema_lint.
# This may be replaced when dependencies are built.
