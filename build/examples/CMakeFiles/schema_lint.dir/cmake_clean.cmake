file(REMOVE_RECURSE
  "CMakeFiles/schema_lint.dir/schema_lint.cpp.o"
  "CMakeFiles/schema_lint.dir/schema_lint.cpp.o.d"
  "schema_lint"
  "schema_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
