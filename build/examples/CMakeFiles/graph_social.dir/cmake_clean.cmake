file(REMOVE_RECURSE
  "CMakeFiles/graph_social.dir/graph_social.cpp.o"
  "CMakeFiles/graph_social.dir/graph_social.cpp.o.d"
  "graph_social"
  "graph_social.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_social.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
