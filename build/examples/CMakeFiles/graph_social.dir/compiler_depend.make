# Empty compiler generated dependencies file for graph_social.
# This may be replaced when dependencies are built.
