# Empty compiler generated dependencies file for print_tables.
# This may be replaced when dependencies are built.
