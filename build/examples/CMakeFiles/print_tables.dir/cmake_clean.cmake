file(REMOVE_RECURSE
  "CMakeFiles/print_tables.dir/print_tables.cpp.o"
  "CMakeFiles/print_tables.dir/print_tables.cpp.o.d"
  "print_tables"
  "print_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/print_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
