# Empty dependencies file for xpath_minimizer.
# This may be replaced when dependencies are built.
