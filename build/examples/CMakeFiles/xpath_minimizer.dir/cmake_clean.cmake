file(REMOVE_RECURSE
  "CMakeFiles/xpath_minimizer.dir/xpath_minimizer.cpp.o"
  "CMakeFiles/xpath_minimizer.dir/xpath_minimizer.cpp.o.d"
  "xpath_minimizer"
  "xpath_minimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xpath_minimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
