# Empty compiler generated dependencies file for tpc_cli.
# This may be replaced when dependencies are built.
