file(REMOVE_RECURSE
  "CMakeFiles/tpc_cli.dir/tpc_cli.cpp.o"
  "CMakeFiles/tpc_cli.dir/tpc_cli.cpp.o.d"
  "tpc_cli"
  "tpc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tpc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
