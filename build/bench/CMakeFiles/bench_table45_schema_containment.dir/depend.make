# Empty dependencies file for bench_table45_schema_containment.
# This may be replaced when dependencies are built.
