file(REMOVE_RECURSE
  "CMakeFiles/bench_table45_schema_containment.dir/bench_table45_schema_containment.cc.o"
  "CMakeFiles/bench_table45_schema_containment.dir/bench_table45_schema_containment.cc.o.d"
  "bench_table45_schema_containment"
  "bench_table45_schema_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table45_schema_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
