file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_containment.dir/bench_table1_containment.cc.o"
  "CMakeFiles/bench_table1_containment.dir/bench_table1_containment.cc.o.d"
  "bench_table1_containment"
  "bench_table1_containment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
