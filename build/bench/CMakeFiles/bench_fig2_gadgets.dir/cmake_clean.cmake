file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_gadgets.dir/bench_fig2_gadgets.cc.o"
  "CMakeFiles/bench_fig2_gadgets.dir/bench_fig2_gadgets.cc.o.d"
  "bench_fig2_gadgets"
  "bench_fig2_gadgets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_gadgets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
