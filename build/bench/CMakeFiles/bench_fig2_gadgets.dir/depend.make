# Empty dependencies file for bench_fig2_gadgets.
# This may be replaced when dependencies are built.
