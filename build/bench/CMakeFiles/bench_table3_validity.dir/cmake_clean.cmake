file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_validity.dir/bench_table3_validity.cc.o"
  "CMakeFiles/bench_table3_validity.dir/bench_table3_validity.cc.o.d"
  "bench_table3_validity"
  "bench_table3_validity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_validity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
