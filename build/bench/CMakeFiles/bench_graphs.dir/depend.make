# Empty dependencies file for bench_graphs.
# This may be replaced when dependencies are built.
