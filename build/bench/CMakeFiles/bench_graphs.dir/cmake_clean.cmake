file(REMOVE_RECURSE
  "CMakeFiles/bench_graphs.dir/bench_graphs.cc.o"
  "CMakeFiles/bench_graphs.dir/bench_graphs.cc.o.d"
  "bench_graphs"
  "bench_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
