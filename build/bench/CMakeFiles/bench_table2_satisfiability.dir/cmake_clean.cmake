file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_satisfiability.dir/bench_table2_satisfiability.cc.o"
  "CMakeFiles/bench_table2_satisfiability.dir/bench_table2_satisfiability.cc.o.d"
  "bench_table2_satisfiability"
  "bench_table2_satisfiability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_satisfiability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
