# Empty dependencies file for bench_fig6_blowup.
# This may be replaced when dependencies are built.
