file(REMOVE_RECURSE
  "CMakeFiles/dtd_property_test.dir/dtd_property_test.cc.o"
  "CMakeFiles/dtd_property_test.dir/dtd_property_test.cc.o.d"
  "dtd_property_test"
  "dtd_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dtd_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
