# Empty dependencies file for dtd_property_test.
# This may be replaced when dependencies are built.
