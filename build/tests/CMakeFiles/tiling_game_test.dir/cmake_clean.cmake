file(REMOVE_RECURSE
  "CMakeFiles/tiling_game_test.dir/tiling_game_test.cc.o"
  "CMakeFiles/tiling_game_test.dir/tiling_game_test.cc.o.d"
  "tiling_game_test"
  "tiling_game_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_game_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
