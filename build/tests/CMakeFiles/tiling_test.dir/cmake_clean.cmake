file(REMOVE_RECURSE
  "CMakeFiles/tiling_test.dir/tiling_test.cc.o"
  "CMakeFiles/tiling_test.dir/tiling_test.cc.o.d"
  "tiling_test"
  "tiling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tiling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
