file(REMOVE_RECURSE
  "CMakeFiles/nta_satisfiability_test.dir/nta_satisfiability_test.cc.o"
  "CMakeFiles/nta_satisfiability_test.dir/nta_satisfiability_test.cc.o.d"
  "nta_satisfiability_test"
  "nta_satisfiability_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nta_satisfiability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
