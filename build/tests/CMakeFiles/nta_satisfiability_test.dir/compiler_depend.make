# Empty compiler generated dependencies file for nta_satisfiability_test.
# This may be replaced when dependencies are built.
