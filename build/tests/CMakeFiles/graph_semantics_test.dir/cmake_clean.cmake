file(REMOVE_RECURSE
  "CMakeFiles/graph_semantics_test.dir/graph_semantics_test.cc.o"
  "CMakeFiles/graph_semantics_test.dir/graph_semantics_test.cc.o.d"
  "graph_semantics_test"
  "graph_semantics_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/graph_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
