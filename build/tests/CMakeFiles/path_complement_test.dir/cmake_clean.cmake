file(REMOVE_RECURSE
  "CMakeFiles/path_complement_test.dir/path_complement_test.cc.o"
  "CMakeFiles/path_complement_test.dir/path_complement_test.cc.o.d"
  "path_complement_test"
  "path_complement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_complement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
