# Empty compiler generated dependencies file for path_complement_test.
# This may be replaced when dependencies are built.
