# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for contain_extra_test.
