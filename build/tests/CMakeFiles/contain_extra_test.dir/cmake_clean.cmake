file(REMOVE_RECURSE
  "CMakeFiles/contain_extra_test.dir/contain_extra_test.cc.o"
  "CMakeFiles/contain_extra_test.dir/contain_extra_test.cc.o.d"
  "contain_extra_test"
  "contain_extra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contain_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
