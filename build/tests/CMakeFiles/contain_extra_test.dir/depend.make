# Empty dependencies file for contain_extra_test.
# This may be replaced when dependencies are built.
