file(REMOVE_RECURSE
  "CMakeFiles/engine_limits_test.dir/engine_limits_test.cc.o"
  "CMakeFiles/engine_limits_test.dir/engine_limits_test.cc.o.d"
  "engine_limits_test"
  "engine_limits_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
