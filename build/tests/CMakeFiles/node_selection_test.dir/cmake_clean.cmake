file(REMOVE_RECURSE
  "CMakeFiles/node_selection_test.dir/node_selection_test.cc.o"
  "CMakeFiles/node_selection_test.dir/node_selection_test.cc.o.d"
  "node_selection_test"
  "node_selection_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
