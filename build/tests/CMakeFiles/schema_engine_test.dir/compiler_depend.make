# Empty compiler generated dependencies file for schema_engine_test.
# This may be replaced when dependencies are built.
