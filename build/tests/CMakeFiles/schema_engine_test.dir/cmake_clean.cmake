file(REMOVE_RECURSE
  "CMakeFiles/schema_engine_test.dir/schema_engine_test.cc.o"
  "CMakeFiles/schema_engine_test.dir/schema_engine_test.cc.o.d"
  "schema_engine_test"
  "schema_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
