file(REMOVE_RECURSE
  "CMakeFiles/nta_test.dir/nta_test.cc.o"
  "CMakeFiles/nta_test.dir/nta_test.cc.o.d"
  "nta_test"
  "nta_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nta_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
