# Empty dependencies file for nta_test.
# This may be replaced when dependencies are built.
