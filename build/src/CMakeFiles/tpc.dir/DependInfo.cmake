
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automata/nta.cc" "src/CMakeFiles/tpc.dir/automata/nta.cc.o" "gcc" "src/CMakeFiles/tpc.dir/automata/nta.cc.o.d"
  "/root/repo/src/automata/path_complement.cc" "src/CMakeFiles/tpc.dir/automata/path_complement.cc.o" "gcc" "src/CMakeFiles/tpc.dir/automata/path_complement.cc.o.d"
  "/root/repo/src/automata/path_word.cc" "src/CMakeFiles/tpc.dir/automata/path_word.cc.o" "gcc" "src/CMakeFiles/tpc.dir/automata/path_word.cc.o.d"
  "/root/repo/src/automata/tpq_det.cc" "src/CMakeFiles/tpc.dir/automata/tpq_det.cc.o" "gcc" "src/CMakeFiles/tpc.dir/automata/tpq_det.cc.o.d"
  "/root/repo/src/base/label.cc" "src/CMakeFiles/tpc.dir/base/label.cc.o" "gcc" "src/CMakeFiles/tpc.dir/base/label.cc.o.d"
  "/root/repo/src/contain/childfree_in_tpq.cc" "src/CMakeFiles/tpc.dir/contain/childfree_in_tpq.cc.o" "gcc" "src/CMakeFiles/tpc.dir/contain/childfree_in_tpq.cc.o.d"
  "/root/repo/src/contain/containment.cc" "src/CMakeFiles/tpc.dir/contain/containment.cc.o" "gcc" "src/CMakeFiles/tpc.dir/contain/containment.cc.o.d"
  "/root/repo/src/contain/homomorphism.cc" "src/CMakeFiles/tpc.dir/contain/homomorphism.cc.o" "gcc" "src/CMakeFiles/tpc.dir/contain/homomorphism.cc.o.d"
  "/root/repo/src/contain/minimize.cc" "src/CMakeFiles/tpc.dir/contain/minimize.cc.o" "gcc" "src/CMakeFiles/tpc.dir/contain/minimize.cc.o.d"
  "/root/repo/src/contain/obs23.cc" "src/CMakeFiles/tpc.dir/contain/obs23.cc.o" "gcc" "src/CMakeFiles/tpc.dir/contain/obs23.cc.o.d"
  "/root/repo/src/contain/path_in_tpq.cc" "src/CMakeFiles/tpc.dir/contain/path_in_tpq.cc.o" "gcc" "src/CMakeFiles/tpc.dir/contain/path_in_tpq.cc.o.d"
  "/root/repo/src/dtd/dtd.cc" "src/CMakeFiles/tpc.dir/dtd/dtd.cc.o" "gcc" "src/CMakeFiles/tpc.dir/dtd/dtd.cc.o.d"
  "/root/repo/src/gen/random_instances.cc" "src/CMakeFiles/tpc.dir/gen/random_instances.cc.o" "gcc" "src/CMakeFiles/tpc.dir/gen/random_instances.cc.o.d"
  "/root/repo/src/graphdb/graph.cc" "src/CMakeFiles/tpc.dir/graphdb/graph.cc.o" "gcc" "src/CMakeFiles/tpc.dir/graphdb/graph.cc.o.d"
  "/root/repo/src/graphdb/graph_dtd.cc" "src/CMakeFiles/tpc.dir/graphdb/graph_dtd.cc.o" "gcc" "src/CMakeFiles/tpc.dir/graphdb/graph_dtd.cc.o.d"
  "/root/repo/src/graphdb/graph_match.cc" "src/CMakeFiles/tpc.dir/graphdb/graph_match.cc.o" "gcc" "src/CMakeFiles/tpc.dir/graphdb/graph_match.cc.o.d"
  "/root/repo/src/match/embedding.cc" "src/CMakeFiles/tpc.dir/match/embedding.cc.o" "gcc" "src/CMakeFiles/tpc.dir/match/embedding.cc.o.d"
  "/root/repo/src/match/node_selection.cc" "src/CMakeFiles/tpc.dir/match/node_selection.cc.o" "gcc" "src/CMakeFiles/tpc.dir/match/node_selection.cc.o.d"
  "/root/repo/src/pattern/canonical.cc" "src/CMakeFiles/tpc.dir/pattern/canonical.cc.o" "gcc" "src/CMakeFiles/tpc.dir/pattern/canonical.cc.o.d"
  "/root/repo/src/pattern/normalize.cc" "src/CMakeFiles/tpc.dir/pattern/normalize.cc.o" "gcc" "src/CMakeFiles/tpc.dir/pattern/normalize.cc.o.d"
  "/root/repo/src/pattern/tpq.cc" "src/CMakeFiles/tpc.dir/pattern/tpq.cc.o" "gcc" "src/CMakeFiles/tpc.dir/pattern/tpq.cc.o.d"
  "/root/repo/src/pattern/tpq_parser.cc" "src/CMakeFiles/tpc.dir/pattern/tpq_parser.cc.o" "gcc" "src/CMakeFiles/tpc.dir/pattern/tpq_parser.cc.o.d"
  "/root/repo/src/reductions/hardness_families.cc" "src/CMakeFiles/tpc.dir/reductions/hardness_families.cc.o" "gcc" "src/CMakeFiles/tpc.dir/reductions/hardness_families.cc.o.d"
  "/root/repo/src/reductions/partition.cc" "src/CMakeFiles/tpc.dir/reductions/partition.cc.o" "gcc" "src/CMakeFiles/tpc.dir/reductions/partition.cc.o.d"
  "/root/repo/src/regex/nfa.cc" "src/CMakeFiles/tpc.dir/regex/nfa.cc.o" "gcc" "src/CMakeFiles/tpc.dir/regex/nfa.cc.o.d"
  "/root/repo/src/regex/regex.cc" "src/CMakeFiles/tpc.dir/regex/regex.cc.o" "gcc" "src/CMakeFiles/tpc.dir/regex/regex.cc.o.d"
  "/root/repo/src/schema/nta_satisfiability.cc" "src/CMakeFiles/tpc.dir/schema/nta_satisfiability.cc.o" "gcc" "src/CMakeFiles/tpc.dir/schema/nta_satisfiability.cc.o.d"
  "/root/repo/src/schema/schema_engine.cc" "src/CMakeFiles/tpc.dir/schema/schema_engine.cc.o" "gcc" "src/CMakeFiles/tpc.dir/schema/schema_engine.cc.o.d"
  "/root/repo/src/tiling/reduction.cc" "src/CMakeFiles/tpc.dir/tiling/reduction.cc.o" "gcc" "src/CMakeFiles/tpc.dir/tiling/reduction.cc.o.d"
  "/root/repo/src/tiling/tiling.cc" "src/CMakeFiles/tpc.dir/tiling/tiling.cc.o" "gcc" "src/CMakeFiles/tpc.dir/tiling/tiling.cc.o.d"
  "/root/repo/src/tree/tree.cc" "src/CMakeFiles/tpc.dir/tree/tree.cc.o" "gcc" "src/CMakeFiles/tpc.dir/tree/tree.cc.o.d"
  "/root/repo/src/tree/tree_parser.cc" "src/CMakeFiles/tpc.dir/tree/tree_parser.cc.o" "gcc" "src/CMakeFiles/tpc.dir/tree/tree_parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
