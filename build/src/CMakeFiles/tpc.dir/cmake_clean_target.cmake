file(REMOVE_RECURSE
  "libtpc.a"
)
