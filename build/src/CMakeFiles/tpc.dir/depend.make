# Empty dependencies file for tpc.
# This may be replaced when dependencies are built.
