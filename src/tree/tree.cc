#include "tree/tree.h"

#include <algorithm>
#include <cassert>

namespace tpc {

NodeId Tree::AddRoot(LabelId label) {
  assert(empty());
  labels_.push_back(label);
  parents_.push_back(kNoNode);
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  ++version_;
  return 0;
}

NodeId Tree::AddChild(NodeId parent, LabelId label) {
  assert(parent >= 0 && parent < size());
  NodeId v = size();
  labels_.push_back(label);
  parents_.push_back(parent);
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  if (first_child_[parent] == kNoNode) {
    first_child_[parent] = v;
  } else {
    next_sibling_[last_child_[parent]] = v;
  }
  last_child_[parent] = v;
  ++version_;
  return v;
}

bool Tree::IsDfsOrdered() const {
  const int32_t n = size();
  if (n <= 1) return true;
  // Subtree sizes and maximum descendant ids in one reverse pass (parents
  // precede children); the layout is depth-first iff every subtree occupies
  // exactly the id range [v, v + size(v)).
  std::vector<int32_t> sz(n, 1);
  std::vector<NodeId> max_id(n);
  for (NodeId v = 0; v < n; ++v) max_id[v] = v;
  for (NodeId v = n - 1; v >= 1; --v) {
    NodeId p = parents_[v];
    sz[p] += sz[v];
    max_id[p] = std::max(max_id[p], max_id[v]);
  }
  for (NodeId v = 0; v < n; ++v) {
    if (max_id[v] != v + sz[v] - 1) return false;
  }
  return true;
}

void Tree::TruncateTo(int32_t new_size) {
  assert(new_size >= 0 && new_size <= size());
  assert(IsDfsOrdered() &&
         "Tree::TruncateTo requires depth-first creation order; truncating "
         "any other layout would cut through subtrees and corrupt links");
  if (new_size == size()) return;
  if (new_size == 0) {
    Clear();
    return;
  }
  labels_.resize(new_size);
  parents_.resize(new_size);
  first_child_.resize(new_size);
  next_sibling_.resize(new_size);
  last_child_.resize(new_size);
  // In depth-first layout the retained nodes whose links can point into the
  // removed suffix are exactly the last retained node and its ancestors: a
  // node's subtree is a contiguous range, so any node with a child or next
  // sibling at id >= new_size has a range straddling the cut.
  NodeId v = new_size - 1;
  first_child_[v] = kNoNode;  // its children, if any, were v+1.. — removed
  last_child_[v] = kNoNode;
  while (v != 0) {
    if (next_sibling_[v] >= new_size) next_sibling_[v] = kNoNode;
    NodeId parent = parents_[v];
    // v is the last retained child of its parent: any later sibling's
    // subtree would start past the cut.
    if (last_child_[parent] >= new_size) last_child_[parent] = v;
    v = parent;
  }
  ++version_;
}

void Tree::RebuildPostorder() const {
  const int32_t n = size();
  post_of_.resize(n);
  node_at_post_.resize(n);
  size_at_post_.resize(n);
  label_at_post_.resize(n);
  columns_version_ = version_;
  if (n == 0) return;
  // Mirror-preorder emitted at descending positions is postorder: pop v,
  // place it at the highest free slot, push its children left-to-right so
  // subtrees are visited rightmost-first.  Read ascending, the result lists
  // every child subtree left-to-right before its parent.
  dfs_stack_.clear();
  dfs_stack_.push_back(0);
  int32_t next = n - 1;
  while (!dfs_stack_.empty()) {
    NodeId v = dfs_stack_.back();
    dfs_stack_.pop_back();
    post_of_[v] = next;
    node_at_post_[next] = v;
    label_at_post_[next] = labels_[v];
    --next;
    for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) {
      dfs_stack_.push_back(c);
    }
  }
  assert(next == -1 && "postorder pass must visit every node");
  // Subtree sizes in one reverse pass over ids (parents precede children),
  // using the DFS stack buffer as by-id scratch before scattering into
  // postorder coordinates.
  dfs_stack_.assign(n, 1);
  for (NodeId v = n - 1; v >= 1; --v) dfs_stack_[parents_[v]] += dfs_stack_[v];
  for (NodeId v = 0; v < n; ++v) size_at_post_[post_of_[v]] = dfs_stack_[v];
}

NodeId Tree::Graft(NodeId parent, const Tree& subtree, NodeId subtree_root) {
  NodeId copied_root;
  if (parent == kNoNode) {
    copied_root = AddRoot(subtree.Label(subtree_root));
  } else {
    copied_root = AddChild(parent, subtree.Label(subtree_root));
  }
  // Copy descendants in pre-order; keep a map from source to target ids.
  std::vector<std::pair<NodeId, NodeId>> stack;  // (source node, target parent)
  for (NodeId c = subtree.FirstChild(subtree_root); c != kNoNode;
       c = subtree.NextSibling(c)) {
    stack.emplace_back(c, copied_root);
  }
  // Process in order: use an explicit queue preserving sibling order.
  std::vector<std::pair<NodeId, NodeId>> queue = std::move(stack);
  for (size_t i = 0; i < queue.size(); ++i) {
    auto [src, dst_parent] = queue[i];
    NodeId dst = AddChild(dst_parent, subtree.Label(src));
    for (NodeId c = subtree.FirstChild(src); c != kNoNode;
         c = subtree.NextSibling(c)) {
      queue.emplace_back(c, dst);
    }
  }
  return copied_root;
}

std::vector<NodeId> Tree::Children(NodeId v) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) {
    out.push_back(c);
  }
  return out;
}

int32_t Tree::NumChildren(NodeId v) const {
  int32_t n = 0;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) ++n;
  return n;
}

int32_t Tree::Depth(NodeId v) const {
  int32_t d = 0;
  for (NodeId u = parents_[v]; u != kNoNode; u = parents_[u]) ++d;
  return d;
}

int32_t Tree::depth() const {
  if (empty()) return -1;
  // Node depths can be computed in one pass because parents precede children.
  std::vector<int32_t> depth(size(), 0);
  int32_t max_depth = 0;
  for (NodeId v = 1; v < size(); ++v) {
    depth[v] = depth[parents_[v]] + 1;
    max_depth = std::max(max_depth, depth[v]);
  }
  return max_depth;
}

bool Tree::IsProperAncestor(NodeId ancestor, NodeId v) const {
  // When the postorder index is current this is a span-inclusion test;
  // otherwise walk the parent chain rather than paying an O(n) rebuild for
  // one query.
  if (columns_version_ == version_) {
    return View().IsProperAncestor(ancestor, v);
  }
  for (NodeId u = parents_[v]; u != kNoNode; u = parents_[u]) {
    if (u == ancestor) return true;
  }
  return false;
}

Tree Tree::Subtree(NodeId v) const {
  Tree out;
  out.Graft(kNoNode, *this, v);
  return out;
}

bool Tree::operator==(const Tree& other) const {
  if (size() != other.size()) return false;
  // Node ids are assigned in creation order, which need not coincide for
  // structurally equal trees built differently, so compare recursively in
  // sibling order via an explicit stack.
  if (empty()) return true;
  std::vector<std::pair<NodeId, NodeId>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [v, w] = stack.back();
    stack.pop_back();
    if (labels_[v] != other.labels_[w]) return false;
    NodeId c1 = first_child_[v];
    NodeId c2 = other.first_child_[w];
    while (c1 != kNoNode && c2 != kNoNode) {
      stack.emplace_back(c1, c2);
      c1 = next_sibling_[c1];
      c2 = other.next_sibling_[c2];
    }
    if (c1 != kNoNode || c2 != kNoNode) return false;
  }
  return true;
}

bool Tree::EqualsUnorderedAt(NodeId v, const Tree& other, NodeId w) const {
  if (labels_[v] != other.labels_[w]) return false;
  std::vector<NodeId> cs1 = Children(v);
  std::vector<NodeId> cs2 = other.Children(w);
  if (cs1.size() != cs2.size()) return false;
  // Greedy bipartite matching by backtracking; fine for the small fan-outs in
  // tests.  Unordered equality is only used for verification, never on hot
  // paths.
  std::vector<bool> used(cs2.size(), false);
  // Recursive lambda over positions of cs1.
  auto match = [&](auto&& self, size_t i) -> bool {
    if (i == cs1.size()) return true;
    for (size_t j = 0; j < cs2.size(); ++j) {
      if (used[j]) continue;
      if (EqualsUnorderedAt(cs1[i], other, cs2[j])) {
        used[j] = true;
        if (self(self, i + 1)) return true;
        used[j] = false;
      }
    }
    return false;
  };
  return match(match, 0);
}

bool Tree::EqualsUnordered(const Tree& other) const {
  if (size() != other.size()) return false;
  if (empty()) return true;
  return EqualsUnorderedAt(0, other, 0);
}

void Tree::AppendTerm(NodeId v, const LabelPool& pool, std::string* out) const {
  out->append(pool.Name(labels_[v]));
  NodeId c = first_child_[v];
  if (c == kNoNode) return;
  out->push_back('(');
  bool first = true;
  for (; c != kNoNode; c = next_sibling_[c]) {
    if (!first) out->push_back(',');
    first = false;
    AppendTerm(c, pool, out);
  }
  out->push_back(')');
}

std::string Tree::ToString(const LabelPool& pool) const {
  if (empty()) return "<empty>";
  std::string out;
  AppendTerm(0, pool, &out);
  return out;
}

}  // namespace tpc
