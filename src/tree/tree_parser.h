// Parser for trees in term syntax: `a(b, c(d, e))`.
//
// Labels are identifiers over [A-Za-z0-9_#'] (so gadget alphabets like `#`,
// `b_2`, or `f1` parse directly); whitespace is insignificant.  Trees never
// carry the wildcard `*` (it is rejected).

#ifndef TPC_TREE_TREE_PARSER_H_
#define TPC_TREE_TREE_PARSER_H_

#include <optional>
#include <string_view>

#include "base/label.h"
#include "base/parse_result.h"
#include "tree/tree.h"

namespace tpc {

/// Parses `input` as a tree in term syntax, interning labels into `pool`.
/// Nesting depth is capped so adversarial `a(a(a(...` input is rejected
/// instead of overflowing the stack.
ParseResult<Tree> ParseTree(std::string_view input, LabelPool* pool);

/// Non-aborting parse for untrusted input: on failure returns std::nullopt
/// and fills `*diag` with the message and 1-based line/column.
std::optional<Tree> ParseTreeChecked(std::string_view input, LabelPool* pool,
                                     ParseDiagnostic* diag);

/// Convenience: parses or aborts.  For tests and examples on trusted input.
Tree MustParseTree(std::string_view input, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_TREE_TREE_PARSER_H_
