// Parser for trees in term syntax: `a(b, c(d, e))`.
//
// Labels are identifiers over [A-Za-z0-9_#'] (so gadget alphabets like `#`,
// `b_2`, or `f1` parse directly); whitespace is insignificant.  Trees never
// carry the wildcard `*` (it is rejected).

#ifndef TPC_TREE_TREE_PARSER_H_
#define TPC_TREE_TREE_PARSER_H_

#include <string_view>

#include "base/label.h"
#include "base/parse_result.h"
#include "tree/tree.h"

namespace tpc {

/// Parses `input` as a tree in term syntax, interning labels into `pool`.
ParseResult<Tree> ParseTree(std::string_view input, LabelPool* pool);

/// Convenience: parses or aborts.  For tests and examples on trusted input.
Tree MustParseTree(std::string_view input, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_TREE_TREE_PARSER_H_
