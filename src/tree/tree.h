// Node-labelled, rooted, unranked, ordered trees (Section 2.1 of the paper).
//
// Trees are stored in a flat arena: node 0 is the root and every node records
// its parent, first child and next sibling.  Nodes are created in document
// order (a parent is always created before its children), which many
// algorithms in this library exploit: iterating node ids `0..size()-1` is a
// pre-order traversal, iterating them backwards visits children before
// parents (bottom-up).

#ifndef TPC_TREE_TREE_H_
#define TPC_TREE_TREE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/label.h"

namespace tpc {

/// Index of a node within a `Tree`.
using NodeId = int32_t;

inline constexpr NodeId kNoNode = -1;

/// A finite node-labelled ordered tree.
///
/// Invariants: node 0 is the root; `Parent(v) < v` for every non-root node;
/// children of each node are ordered by creation (left to right).
class Tree {
 public:
  Tree() = default;

  /// Creates a one-node tree labelled `root_label`.
  explicit Tree(LabelId root_label) { AddRoot(root_label); }

  /// Adds the root.  Precondition: the tree is empty.  Returns node 0.
  NodeId AddRoot(LabelId label);

  /// Removes every node but keeps the arena capacity, so a tree can serve
  /// as a reusable scratch buffer in enumeration hot loops.
  void Clear() {
    labels_.clear();
    parents_.clear();
    first_child_.clear();
    next_sibling_.clear();
    last_child_.clear();
  }

  /// Adds a new rightmost child of `parent`.  Returns its id.
  NodeId AddChild(NodeId parent, LabelId label);

  /// Removes every node with id >= `new_size`, keeping the arena capacity.
  /// Precondition: nodes were added in depth-first (document) order, so that
  /// every subtree occupies a contiguous id range — then the removed ids are
  /// whole subtrees and the only dangling links are on the ancestor path of
  /// the cut, which this repairs in O(depth).  `CanonicalTreeBuilder` emits
  /// trees this way; trees built in other orders must not be truncated.
  void TruncateTo(int32_t new_size);

  /// Grafts a copy of `subtree` as a new rightmost child of `parent`
  /// (or as the root if the tree is empty and `parent == kNoNode`).
  /// Returns the id of the copied root.
  NodeId Graft(NodeId parent, const Tree& subtree, NodeId subtree_root = 0);

  int32_t size() const { return static_cast<int32_t>(labels_.size()); }
  bool empty() const { return labels_.empty(); }

  LabelId Label(NodeId v) const { return labels_[v]; }
  void SetLabel(NodeId v, LabelId label) { labels_[v] = label; }
  NodeId Parent(NodeId v) const { return parents_[v]; }
  NodeId FirstChild(NodeId v) const { return first_child_[v]; }
  NodeId NextSibling(NodeId v) const { return next_sibling_[v]; }
  bool IsLeaf(NodeId v) const { return first_child_[v] == kNoNode; }

  /// Children of `v`, left to right.
  std::vector<NodeId> Children(NodeId v) const;
  int32_t NumChildren(NodeId v) const;

  /// Length of the path from the root to `v` (root has depth 0).
  int32_t Depth(NodeId v) const;

  /// Maximum node depth; -1 for the empty tree.
  int32_t depth() const;

  /// True iff `ancestor` is a proper ancestor of `v`.
  bool IsProperAncestor(NodeId ancestor, NodeId v) const;

  /// Extracts `subtree^t(v)` as a standalone tree.
  Tree Subtree(NodeId v) const;

  /// Structural equality as *ordered* trees.
  bool operator==(const Tree& other) const;

  /// Structural equality as *unordered* trees (sibling order ignored).
  bool EqualsUnordered(const Tree& other) const;

  /// Serializes in term syntax, e.g. `a(b,c(d))`, using `pool` spellings.
  std::string ToString(const LabelPool& pool) const;

 private:
  bool EqualsUnorderedAt(NodeId v, const Tree& other, NodeId w) const;
  void AppendTerm(NodeId v, const LabelPool& pool, std::string* out) const;

  std::vector<LabelId> labels_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> last_child_;  // for O(1) AddChild
};

}  // namespace tpc

#endif  // TPC_TREE_TREE_H_
