// Node-labelled, rooted, unranked, ordered trees (Section 2.1 of the paper),
// stored as postorder-indexable columnar arrays.
//
// Trees are stored as a struct-of-arrays arena: node 0 is the root and every
// node records its parent, first child and next sibling in parallel columns.
// Nodes are created parents-before-children, which many algorithms exploit:
// iterating node ids `size()-1..0` visits children before parents
// (bottom-up).  Builders that emit depth-first (document) order — the
// canonical-model builder, the tree parser — additionally get contiguous
// subtree id ranges, which `TruncateTo` relies on.
//
// On top of the creation-order columns the tree maintains a *postorder
// index*: derived columns mapping node ids to postorder positions and back,
// with per-position subtree sizes and labels.  In postorder coordinates the
// subtree of the node at position `i` is exactly the contiguous span
// `[i - subtree_size + 1, i]`, so bottom-up dynamic programs (the embedding
// matcher, NTA runs) stream the tree linearly instead of chasing
// first-child/next-sibling pointers, and ancestor tests become O(1) span
// inclusions.  The index is computed lazily by `View()` and invalidated by
// every mutation; `TreeView` exposes it as raw spans.
//
// `View()` is lazy and cached: the *first* call after a mutation writes the
// cache, so it is not safe to race.  Callers that share a const tree across
// threads must call `View()` (or run any evaluation) once before publishing
// the tree; every subsequent concurrent `View()` is a pure read.

#ifndef TPC_TREE_TREE_H_
#define TPC_TREE_TREE_H_

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "base/label.h"

namespace tpc {

/// Index of a node within a `Tree`.
using NodeId = int32_t;

inline constexpr NodeId kNoNode = -1;

/// Read-only raw-span view of a tree's columns plus its postorder index.
/// Invalidated by any mutation of the owning tree (re-obtain via
/// `Tree::View()`); cheap to copy (pointers + size).
///
/// Two coordinate systems coexist: *node ids* (creation order, what the
/// `Tree` API speaks) and *postorder positions* `0..size()-1` (leaves before
/// parents, root last).  `PostOf` / `NodeAtPost` translate between them.
class TreeView {
 public:
  int32_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Postorder position of node `v`.
  int32_t PostOf(NodeId v) const { return post_of_[v]; }
  /// Node id occupying postorder position `i`.
  NodeId NodeAtPost(int32_t i) const { return node_at_post_[i]; }
  /// Number of nodes in the subtree rooted at the node at position `i`.
  int32_t SubtreeSizeAtPost(int32_t i) const { return size_at_post_[i]; }
  /// Number of nodes in `subtree(v)`.
  int32_t SubtreeSize(NodeId v) const { return size_at_post_[post_of_[v]]; }
  /// Label of the node at postorder position `i`.
  LabelId LabelAtPost(int32_t i) const { return label_at_post_[i]; }
  /// Parent of node `v` (kNoNode for the root).
  NodeId Parent(NodeId v) const { return parent_[v]; }
  LabelId Label(NodeId v) const { return labels_[v]; }

  /// First position of the subtree span ending at position `i`:
  /// `subtree` = `[SpanBegin(i), i]`, with `i` the subtree's root.
  int32_t SpanBegin(int32_t i) const { return i - size_at_post_[i] + 1; }

  /// O(1) ancestorship via span inclusion: `v` is in `subtree(a)` iff its
  /// postorder position falls inside a's span.
  bool IsAncestorOrSelf(NodeId a, NodeId v) const {
    int32_t pa = post_of_[a];
    int32_t pv = post_of_[v];
    return SpanBegin(pa) <= pv && pv <= pa;
  }
  bool IsProperAncestor(NodeId a, NodeId v) const {
    return a != v && IsAncestorOrSelf(a, v);
  }

  /// Iterates the child *roots* of the subtree span ending at `i`, right to
  /// left: the last child's root sits at `i-1`, and each previous sibling's
  /// root is found by skipping the intervening subtree span.  Usage:
  ///   for (int32_t c = view.LastChild(i); c >= view.SpanBegin(i);
  ///        c = view.PrevSibling(c)) { ... }
  int32_t LastChild(int32_t i) const { return i - 1; }
  int32_t PrevSibling(int32_t c) const { return c - size_at_post_[c]; }

  /// Adopts externally-owned columns — the zero-copy path of the snapshot
  /// tier (src/persist): a `SnapshotReader` validates the mapped spans of a
  /// serialized tree against every `Tree` invariant (parents precede
  /// children, post_of/node_at_post mutually inverse, subtree sizes and
  /// label mirrors consistent) and then adopts them directly, so a
  /// warm-started server evaluates patterns against on-disk trees without
  /// rebuilding an arena.  Preconditions: all six spans have length `n` and
  /// satisfy the invariants `Tree::View()` guarantees; the spans must
  /// outlive the view.  Callers other than a validating reader should go
  /// through `Tree::View()`.
  static TreeView Adopt(const LabelId* labels, const NodeId* parent,
                        const int32_t* post_of, const NodeId* node_at_post,
                        const int32_t* size_at_post,
                        const LabelId* label_at_post, int32_t n) {
    TreeView view;
    view.labels_ = labels;
    view.parent_ = parent;
    view.post_of_ = post_of;
    view.node_at_post_ = node_at_post;
    view.size_at_post_ = size_at_post;
    view.label_at_post_ = label_at_post;
    view.n_ = n;
    return view;
  }

  /// Bytes of the six columns a view of `n` nodes spans — the
  /// `TrackedBytes` charge of an adopted (mapped) view, mirroring
  /// `Tree::ColumnBytes` minus the creation-order-only columns a mapped
  /// tree does not carry.
  static int64_t AdoptedBytes(int32_t n) {
    return static_cast<int64_t>(n) *
           static_cast<int64_t>(2 * sizeof(NodeId) + 2 * sizeof(LabelId) +
                                2 * sizeof(int32_t));
  }

  // Raw spans (length `size()`), for kernels that index directly.
  const LabelId* labels() const { return labels_; }
  const NodeId* parent() const { return parent_; }
  const int32_t* post_of() const { return post_of_; }
  const NodeId* node_at_post() const { return node_at_post_; }
  const int32_t* size_at_post() const { return size_at_post_; }
  const LabelId* label_at_post() const { return label_at_post_; }

 private:
  friend class Tree;
  const LabelId* labels_ = nullptr;
  const NodeId* parent_ = nullptr;
  const int32_t* post_of_ = nullptr;
  const NodeId* node_at_post_ = nullptr;
  const int32_t* size_at_post_ = nullptr;
  const LabelId* label_at_post_ = nullptr;
  int32_t n_ = 0;
};

/// A finite node-labelled ordered tree.
///
/// Invariants: node 0 is the root; `Parent(v) < v` for every non-root node;
/// children of each node are ordered by creation (left to right).
class Tree {
 public:
  Tree() = default;

  /// Creates a one-node tree labelled `root_label`.
  explicit Tree(LabelId root_label) { AddRoot(root_label); }

  /// Adds the root.  Precondition: the tree is empty.  Returns node 0.
  NodeId AddRoot(LabelId label);

  /// Removes every node but keeps the arena capacity, so a tree can serve
  /// as a reusable scratch buffer in enumeration hot loops.
  void Clear() {
    labels_.clear();
    parents_.clear();
    first_child_.clear();
    next_sibling_.clear();
    last_child_.clear();
    ++version_;
  }

  /// Adds a new rightmost child of `parent`.  Returns its id.
  NodeId AddChild(NodeId parent, LabelId label);

  /// Removes every node with id >= `new_size`, keeping the arena capacity.
  /// Precondition: nodes were added in depth-first (document) order, so that
  /// every subtree occupies a contiguous id range — then the removed ids are
  /// whole subtrees and the only dangling links are on the ancestor path of
  /// the cut, which this repairs in O(depth).  `CanonicalTreeBuilder` emits
  /// trees this way; trees built in other orders must not be truncated.
  /// Debug builds validate the precondition (`IsDfsOrdered`) and abort on
  /// violation instead of silently corrupting sibling links.
  void TruncateTo(int32_t new_size);

  /// Grafts a copy of `subtree` as a new rightmost child of `parent`
  /// (or as the root if the tree is empty and `parent == kNoNode`).
  /// Returns the id of the copied root.
  NodeId Graft(NodeId parent, const Tree& subtree, NodeId subtree_root = 0);

  int32_t size() const { return static_cast<int32_t>(labels_.size()); }
  bool empty() const { return labels_.empty(); }

  LabelId Label(NodeId v) const { return labels_[v]; }
  void SetLabel(NodeId v, LabelId label) {
    labels_[v] = label;
    ++version_;  // the postorder label column mirrors labels_
  }
  NodeId Parent(NodeId v) const { return parents_[v]; }
  NodeId FirstChild(NodeId v) const { return first_child_[v]; }
  NodeId NextSibling(NodeId v) const { return next_sibling_[v]; }
  bool IsLeaf(NodeId v) const { return first_child_[v] == kNoNode; }

  /// The postorder index over the current tree, computed on first use after
  /// a mutation and cached (see the thread-safety note in the file header).
  /// Returned by value — a handful of span pointers — so the view survives
  /// copies/moves of the `Tree`; its *pointers* are invalidated by the next
  /// mutation (or destruction) of this tree.
  TreeView View() const {
    if (columns_version_ != version_) RebuildPostorder();
    TreeView view;
    view.labels_ = labels_.data();
    view.parent_ = parents_.data();
    view.post_of_ = post_of_.data();
    view.node_at_post_ = node_at_post_.data();
    view.size_at_post_ = size_at_post_.data();
    view.label_at_post_ = label_at_post_.data();
    view.n_ = size();
    return view;
  }

  /// Bytes occupied by the columnar storage — creation-order columns plus
  /// the derived postorder columns — for `TrackedBytes` accounting by
  /// consumers that evaluate against this tree under a memory budget (the
  /// matcher charges this alongside its DP tables).
  int64_t ColumnBytes() const {
    return static_cast<int64_t>(size()) *
           static_cast<int64_t>(5 * sizeof(NodeId) + 2 * sizeof(LabelId) +
                                2 * sizeof(int32_t));
  }

  /// True iff nodes were created in depth-first (document) order, i.e. every
  /// subtree occupies a contiguous id range.  O(size); the `TruncateTo`
  /// precondition, debug-asserted there.
  bool IsDfsOrdered() const;

  /// Children of `v`, left to right.
  std::vector<NodeId> Children(NodeId v) const;
  int32_t NumChildren(NodeId v) const;

  /// Length of the path from the root to `v` (root has depth 0).
  int32_t Depth(NodeId v) const;

  /// Maximum node depth; -1 for the empty tree.
  int32_t depth() const;

  /// True iff `ancestor` is a proper ancestor of `v`.
  bool IsProperAncestor(NodeId ancestor, NodeId v) const;

  /// Extracts `subtree^t(v)` as a standalone tree.
  Tree Subtree(NodeId v) const;

  /// Structural equality as *ordered* trees.
  bool operator==(const Tree& other) const;

  /// Structural equality as *unordered* trees (sibling order ignored).
  bool EqualsUnordered(const Tree& other) const;

  /// Serializes in term syntax, e.g. `a(b,c(d))`, using `pool` spellings.
  std::string ToString(const LabelPool& pool) const;

 private:
  bool EqualsUnorderedAt(NodeId v, const Tree& other, NodeId w) const;
  void AppendTerm(NodeId v, const LabelPool& pool, std::string* out) const;
  void RebuildPostorder() const;

  // Creation-order columns (index = node id).
  std::vector<LabelId> labels_;
  std::vector<NodeId> parents_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> last_child_;  // for O(1) AddChild

  // Derived postorder columns, rebuilt lazily by View().  `version_` bumps
  // on every mutation; `columns_version_` records the version the cache was
  // built at.  Mutable: View() is logically const.
  mutable std::vector<int32_t> post_of_;      // node id -> postorder position
  mutable std::vector<NodeId> node_at_post_;  // postorder position -> node id
  mutable std::vector<int32_t> size_at_post_;  // subtree size, by position
  mutable std::vector<LabelId> label_at_post_;  // label, by position
  mutable std::vector<NodeId> dfs_stack_;       // RebuildPostorder scratch
  mutable uint64_t columns_version_ = 0;
  uint64_t version_ = 1;
};

}  // namespace tpc

#endif  // TPC_TREE_TREE_H_
