#include "tree/tree_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tpc {
namespace {

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' || c == ':' ||
         c == '\'' || c == '-' || c == '.';
}

/// Recursion cap: one level per `(`, so deep `a(a(a(...` input is rejected
/// with a diagnostic instead of overflowing the stack.
constexpr int kMaxDepth = 256;

class TreeParser {
 public:
  TreeParser(std::string_view input, LabelPool* pool)
      : input_(input), pool_(pool) {}

  ParseResult<Tree> Parse() {
    Tree tree;
    if (!ParseNode(&tree, kNoNode)) return ParseResult<Tree>::Error(error_, pos_);
    SkipSpace();
    if (pos_ != input_.size()) {
      return ParseResult<Tree>::Error("trailing input after tree", pos_);
    }
    return ParseResult<Tree>::Ok(std::move(tree));
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const char* message) {
    error_ = message;
    return false;
  }

  bool ParseNode(Tree* tree, NodeId parent) {
    if (++depth_ > kMaxDepth) return Fail("tree nesting too deep");
    bool ok = ParseNodeInner(tree, parent);
    --depth_;
    return ok;
  }

  bool ParseNodeInner(Tree* tree, NodeId parent) {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < input_.size() && IsLabelChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Fail("expected a label");
    std::string_view name = input_.substr(start, pos_ - start);
    LabelId label = pool_->Intern(name);
    if (label == kWildcard) return Fail("trees cannot contain the wildcard");
    NodeId v = parent == kNoNode ? tree->AddRoot(label)
                                 : tree->AddChild(parent, label);
    SkipSpace();
    if (pos_ < input_.size() && input_[pos_] == '(') {
      ++pos_;
      while (true) {
        if (!ParseNode(tree, v)) return false;
        SkipSpace();
        if (pos_ >= input_.size()) return Fail("unterminated child list");
        if (input_[pos_] == ',') {
          ++pos_;
          continue;
        }
        if (input_[pos_] == ')') {
          ++pos_;
          break;
        }
        return Fail("expected ',' or ')'");
      }
    }
    return true;
  }

  std::string_view input_;
  LabelPool* pool_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

ParseResult<Tree> ParseTree(std::string_view input, LabelPool* pool) {
  return TreeParser(input, pool).Parse();
}

std::optional<Tree> ParseTreeChecked(std::string_view input, LabelPool* pool,
                                     ParseDiagnostic* diag) {
  ParseResult<Tree> result = ParseTree(input, pool);
  if (!result.ok()) {
    *diag = DiagnoseAt(input, result.error(), result.error_offset());
    return std::nullopt;
  }
  return std::move(result.value());
}

Tree MustParseTree(std::string_view input, LabelPool* pool) {
  ParseResult<Tree> result = ParseTree(input, pool);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseTree(\"%.*s\"): %s (at offset %zu)\n",
                 static_cast<int>(input.size()), input.data(),
                 result.error().c_str(), result.error_offset());
    std::abort();
  }
  return std::move(result.value());
}

}  // namespace tpc
