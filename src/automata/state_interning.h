// Hash-consed state sets for the schema-aware decision engines.
//
// The engines of Sections 4–6 explore configurations whose payload is a
// handful of subsets of Nodes(q) (the Sat/Below components of deterministic
// pattern-automaton states, and the unions accumulated along horizontal
// searches).  Materializing those sets per search node is what made the
// EXPTIME benchmarks allocation-bound: the same few hundred distinct sets
// are copied and compared millions of times.
//
// `StateSetInterner` stores each distinct set once, as uint64 words in a
// chunked arena, and hands out canonical small-int ids: equality becomes id
// comparison, a horizontal search node shrinks to five ints, and pairwise
// unions are memoized under their (id, id) key.  `DetSide` wraps one lazy
// `TpqDetAutomaton` together with its interner and memoizes the resolution
// (label, children-union ids) -> det state, which replaces the repeated
// `StateForUnion` recomputation in the engine's hot loop.

#ifndef TPC_AUTOMATA_STATE_INTERNING_H_
#define TPC_AUTOMATA_STATE_INTERNING_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/tpq_det.h"
#include "base/label.h"
#include "engine/tracked.h"
#include "pattern/tpq.h"

namespace tpc {

/// FNV-style hash for small fixed arrays of ids, shared by the engines'
/// horizontal-search dedup tables.
template <size_t N>
struct IntArrayHash {
  size_t operator()(const std::array<int32_t, N>& key) const {
    uint64_t h = 0xcbf29ce484222325ull;
    for (int32_t v : key) {
      h ^= static_cast<uint32_t>(v);
      h *= 0x100000001b3ull;
    }
    return static_cast<size_t>(h ^ (h >> 32));
  }
};

/// An arena interning fixed-width bitsets under canonical ids.
///
/// Thread-safe for `Intern`/`Union` (one mutex; the schema engine's parallel
/// rounds funnel all set creation through `Union`).  `Words`/`Superset` read
/// without the mutex: chunks never move once allocated and the chunk table
/// is pre-sized, so any id published to a caller stays readable — callers
/// only pass ids they obtained from this interner earlier on their own
/// thread or across a synchronization point (the engine's round barrier).
class StateSetInterner {
 public:
  /// Id of the empty set, interned at construction.
  static constexpr int32_t kEmptySetId = 0;
  /// Returned by `Intern`/`Union` when the arena is full — or when the
  /// budget refuses a chunk allocation (memory limit / injected alloc
  /// fault); callers treat it like a resource-limit hit (the engine reports
  /// kResourceExhausted).
  static constexpr int32_t kFull = -1;

  /// `budget` (optional) accounts the chunk arenas through
  /// `Budget::ChargeBytes`; a refused chunk surfaces as `kFull`.  The bytes
  /// are released when the interner is destroyed.
  explicit StateSetInterner(int32_t num_bits, Budget* budget = nullptr);

  int32_t num_bits() const { return num_bits_; }
  int32_t num_words() const { return num_words_; }

  /// Canonical id of the set held in `words` (`num_words()` words).
  int32_t Intern(const uint64_t* words);

  /// Canonical id of set(a) ∪ set(b), memoized pairwise.  Propagates kFull.
  int32_t Union(int32_t a, int32_t b);

  /// The words of set `id`.  Null for a zero-width interner.
  const uint64_t* Words(int32_t id) const {
    if (num_words_ == 0) return nullptr;
    return chunks_[id >> kLogChunkSets].get() +
           static_cast<size_t>(id & (kChunkSets - 1)) * num_words_;
  }

  /// Is set(a) ⊇ set(b)?  Canonical ids make the a==b and b==∅ cases O(1).
  bool Superset(int32_t a, int32_t b) const;

  /// Distinct sets interned so far (feeds `state_sets_interned`).
  int64_t num_interned() const {
    return num_sets_.load(std::memory_order_relaxed);
  }
  /// Unions answered from the pairwise memo table (`unions_memoized`).
  int64_t unions_memoized() const {
    return memo_hits_.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int kLogChunkSets = 12;  // 4096 sets per chunk
  static constexpr int32_t kChunkSets = 1 << kLogChunkSets;
  static constexpr int32_t kMaxChunks = 1 << 12;  // caps the arena at ~16.7M

  int32_t InternLocked(const uint64_t* words);

  const int32_t num_bits_;
  const int32_t num_words_;
  mutable std::mutex mu_;
  /// Pre-sized so the vector itself never reallocates: `Words` may read the
  /// table without `mu_`.
  std::vector<std::unique_ptr<uint64_t[]>> chunks_;
  std::unordered_multimap<uint64_t, int32_t> dedup_;   // word hash -> ids
  std::unordered_map<uint64_t, int32_t> union_cache_;  // packed (a,b) -> id
  std::vector<uint64_t> scratch_;                      // guarded by mu_
  TrackedBytes tracked_;                               // chunk-arena bytes
  std::atomic<int32_t> num_sets_{0};
  std::atomic<int64_t> memo_hits_{0};
};

/// One pattern side of a product search: the lazily determinized pattern
/// automaton (absent when the decision has no pattern on this side), the
/// interned Sat/Below ids of every materialized det state, and the memoized
/// resolution (label, children-union ids) -> det state.
///
/// `interner()` may be shared with concurrent horizontal searches;
/// `Resolve`/`StateSetIds` mutate the lazy automaton and must only run in
/// the engine's sequential merge phase.
class DetSide {
 public:
  explicit DetSide(const Tpq* pattern, Budget* budget = nullptr)
      : interner_(pattern != nullptr ? pattern->size() : 0, budget) {
    if (pattern != nullptr) det_.emplace(*pattern);
  }

  bool present() const { return det_.has_value(); }
  StateSetInterner& interner() { return interner_; }
  const StateSetInterner& interner() const { return interner_; }

  /// Det state reached by a node with `label` whose children's Sat/Below
  /// unions are the interned sets `sat_id`/`below_id`; -1 for an absent
  /// side.
  int32_t Resolve(LabelId label, int32_t sat_id, int32_t below_id);

  /// Interned ids of (Sat(state), Below(state)); empty-set ids for -1.
  /// Either id may be kFull when the arena overflowed.
  std::pair<int32_t, int32_t> StateSetIds(int32_t state);

  bool AcceptsStrong(int32_t state) const { return det_->AcceptsStrong(state); }
  bool AcceptsWeak(int32_t state) const { return det_->AcceptsWeak(state); }

  int32_t num_materialized() const {
    return det_.has_value() ? det_->num_materialized() : 0;
  }

 private:
  std::optional<TpqDetAutomaton> det_;
  StateSetInterner interner_;
  std::vector<std::pair<int32_t, int32_t>> state_ids_;  // state -> (sat, below)
  std::unordered_map<std::array<int32_t, 3>, int32_t, IntArrayHash<3>>
      resolve_cache_;
};

}  // namespace tpc

#endif  // TPC_AUTOMATA_STATE_INTERNING_H_
