#include "automata/tpq_det.h"

namespace tpc {

TpqDetAutomaton::TpqDetAutomaton(const Tpq& q) : q_(q) {}

TpqDetAutomaton::StateId TpqDetAutomaton::Intern(State state) {
  auto key = std::make_pair(state.sat, state.below);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  StateId id = static_cast<StateId>(states_.size());
  states_.push_back(std::move(state));
  ids_.emplace(std::move(key), id);
  return id;
}

TpqDetAutomaton::StateId TpqDetAutomaton::StateFor(
    LabelId label, const std::vector<StateId>& children) {
  NodeBitset sat_union(q_.size());
  NodeBitset below_union(q_.size());
  for (StateId c : children) {
    sat_union.UnionWith(states_[c].sat);
    below_union.UnionWith(states_[c].below);
  }
  return StateForUnion(label, sat_union, below_union);
}

TpqDetAutomaton::StateId TpqDetAutomaton::StateForUnion(
    LabelId label, const NodeBitset& children_sat,
    const NodeBitset& children_below) {
  return StateForUnion(label, children_sat.words(), children_below.words());
}

TpqDetAutomaton::StateId TpqDetAutomaton::StateForUnion(
    LabelId label, const uint64_t* children_sat,
    const uint64_t* children_below) {
  State state{NodeBitset(q_.size()), NodeBitset(q_.size())};
  // Pattern children have larger ids than parents, so one backwards pass
  // computes Sat bottom-up over the pattern.
  for (NodeId v = q_.size() - 1; v >= 0; --v) {
    bool ok = q_.IsWildcard(v) || q_.Label(v) == label;
    for (NodeId z = q_.FirstChild(v); z != kNoNode && ok;
         z = q_.NextSibling(z)) {
      ok = q_.Edge(z) == EdgeKind::kChild ? TestWordBit(children_sat, z)
                                          : TestWordBit(children_below, z);
    }
    if (ok) state.sat.Set(v);
    if (ok || TestWordBit(children_below, v)) state.below.Set(v);
  }
  return Intern(std::move(state));
}

}  // namespace tpc
