#include "automata/path_word.h"

#include <cassert>

namespace tpc {

Nfa PathQueryWordNfa(const Tpq& q, const std::vector<LabelId>& sigma) {
  assert(IsPathQuery(q));
  // States 0..m: state i = "the first i pattern nodes are matched"; the
  // initial state loops on Σ (the Σ* prefix); descendant edges add a
  // skipping loop before consuming the next pattern node.
  int32_t m = q.size();
  Nfa nfa;
  nfa.num_states = m + 1;
  nfa.initial = 0;
  nfa.accepting.assign(m + 1, false);
  nfa.accepting[m] = true;
  nfa.transitions.resize(m + 1);
  for (LabelId s : sigma) nfa.transitions[0].emplace_back(s, 0);
  for (NodeId v = 0; v < m; ++v) {
    // Consume node v: from state v to state v+1.
    if (q.IsWildcard(v)) {
      for (LabelId s : sigma) nfa.transitions[v].emplace_back(s, v + 1);
    } else {
      nfa.transitions[v].emplace_back(q.Label(v), v + 1);
    }
    // A descendant edge to node v (v >= 1) allows extra letters before it:
    // loop on the state *preceding* the consumption of v.
    if (v >= 1 && q.Edge(v) == EdgeKind::kDescendant) {
      for (LabelId s : sigma) nfa.transitions[v].emplace_back(s, v);
    }
  }
  return nfa;
}

int32_t MinimalWatchDfaSize(const Tpq& q, const std::vector<LabelId>& sigma) {
  Nfa nfa = PathQueryWordNfa(q, sigma);
  std::vector<Symbol> extra(sigma.begin(), sigma.end());
  Dfa dfa = Dfa::Determinize(nfa, extra);
  return dfa.Minimize().num_states;
}

}  // namespace tpc
