#include "automata/state_interning.h"

#include <cstring>

namespace tpc {

namespace {

uint64_t HashWords(const uint64_t* words, int32_t n) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (int32_t i = 0; i < n; ++i) {
    h ^= words[i];
    h *= 0x100000001b3ull;
    h ^= h >> 29;
  }
  return h;
}

}  // namespace

StateSetInterner::StateSetInterner(int32_t num_bits, Budget* budget)
    : num_bits_(num_bits),
      num_words_((num_bits + 63) / 64),
      chunks_(kMaxChunks),
      scratch_(num_words_, 0),
      tracked_(budget) {
  // The empty set takes id 0; no contention during construction.
  if (num_words_ > 0) InternLocked(scratch_.data());
}

int32_t StateSetInterner::InternLocked(const uint64_t* words) {
  const uint64_t h = HashWords(words, num_words_);
  auto [lo, hi] = dedup_.equal_range(h);
  for (auto it = lo; it != hi; ++it) {
    if (std::memcmp(Words(it->second), words,
                    static_cast<size_t>(num_words_) * sizeof(uint64_t)) == 0) {
      return it->second;
    }
  }
  const int32_t id = num_sets_.load(std::memory_order_relaxed);
  if (id >= kMaxChunks * kChunkSets) return kFull;
  const int32_t chunk = id >> kLogChunkSets;
  if (chunks_[chunk] == nullptr) {
    const int64_t chunk_bytes = static_cast<int64_t>(kChunkSets) *
                                num_words_ * sizeof(uint64_t);
    if (!tracked_.Charge(chunk_bytes)) return kFull;
    chunks_[chunk] = std::make_unique<uint64_t[]>(
        static_cast<size_t>(kChunkSets) * num_words_);
  }
  std::memcpy(chunks_[chunk].get() +
                  static_cast<size_t>(id & (kChunkSets - 1)) * num_words_,
              words, static_cast<size_t>(num_words_) * sizeof(uint64_t));
  dedup_.emplace(h, id);
  num_sets_.store(id + 1, std::memory_order_relaxed);
  return id;
}

int32_t StateSetInterner::Intern(const uint64_t* words) {
  if (num_words_ == 0) return kEmptySetId;
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(words);
}

int32_t StateSetInterner::Union(int32_t a, int32_t b) {
  if (a == kFull || b == kFull) return kFull;
  if (num_words_ == 0 || a == b || b == kEmptySetId) return a;
  if (a == kEmptySetId) return b;
  if (a > b) std::swap(a, b);
  const uint64_t key =
      (static_cast<uint64_t>(static_cast<uint32_t>(a)) << 32) |
      static_cast<uint32_t>(b);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = union_cache_.find(key);
  if (it != union_cache_.end()) {
    memo_hits_.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  const uint64_t* wa = Words(a);
  const uint64_t* wb = Words(b);
  for (int32_t w = 0; w < num_words_; ++w) scratch_[w] = wa[w] | wb[w];
  const int32_t id = InternLocked(scratch_.data());
  if (id != kFull) union_cache_.emplace(key, id);
  return id;
}

bool StateSetInterner::Superset(int32_t a, int32_t b) const {
  if (a == b || b == kEmptySetId || num_words_ == 0) return true;
  if (a == kEmptySetId) return false;  // canonical ids: b is nonempty
  const uint64_t* wa = Words(a);
  const uint64_t* wb = Words(b);
  for (int32_t w = 0; w < num_words_; ++w) {
    if (wb[w] & ~wa[w]) return false;
  }
  return true;
}

int32_t DetSide::Resolve(LabelId label, int32_t sat_id, int32_t below_id) {
  if (!det_.has_value()) return -1;
  const std::array<int32_t, 3> key{static_cast<int32_t>(label), sat_id,
                                   below_id};
  auto it = resolve_cache_.find(key);
  if (it != resolve_cache_.end()) return it->second;
  const int32_t state = det_->StateForUnion(label, interner_.Words(sat_id),
                                            interner_.Words(below_id));
  resolve_cache_.emplace(key, state);
  return state;
}

std::pair<int32_t, int32_t> DetSide::StateSetIds(int32_t state) {
  if (!det_.has_value() || state < 0) {
    return {StateSetInterner::kEmptySetId, StateSetInterner::kEmptySetId};
  }
  while (static_cast<int32_t>(state_ids_.size()) <= state) {
    const int32_t s = static_cast<int32_t>(state_ids_.size());
    state_ids_.emplace_back(interner_.Intern(det_->Sat(s).words()),
                            interner_.Intern(det_->Below(s).words()));
  }
  return state_ids_[state];
}

}  // namespace tpc
