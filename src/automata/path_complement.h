// Complement automata for path-query languages (Observation 6.2(1) and
// Lemma E.1 of the paper).
//
// For a path query q, membership of a tree in L_s(q) (resp. L_w(q)) only
// depends on its root-to-node label paths: t ∈ L_s(q) iff some root path
// lies in the word language W(q) (with `//` = gaps, `*` = any letter), and
// t ∈ L_w(q) iff some root path lies in Σ*·W(q).  Lemma E.1 turns the DFA
// for that word language into a polynomial NTA for the trees with *no*
// accepted path: a run labels every node with the DFA state reached above
// it, requires the successor state to be non-accepting, and passes it to
// all children.
//
// For wildcard-free q the DFA is small and the whole pipeline is the
// polynomial upper-bound machinery of Theorems 5.1/6.1(1); with wildcards
// the determinization can blow up exponentially — which is exactly the
// Figure 6 lower bound.

#ifndef TPC_AUTOMATA_PATH_COMPLEMENT_H_
#define TPC_AUTOMATA_PATH_COMPLEMENT_H_

#include <vector>

#include "automata/nta.h"
#include "base/label.h"
#include "contain/containment.h"  // Mode
#include "dtd/dtd.h"
#include "pattern/tpq.h"

namespace tpc {

/// The NTA accepting { t over `sigma` : t ∉ L_s(q) } (or L_w with
/// Mode::kWeak).  Precondition: IsPathQuery(q); `sigma` must contain every
/// letter of q.  Polynomial for wildcard-free q; worst-case exponential in
/// the wildcard chains of q (Figure 6).
Nta ComplementOfPathQueryNta(const Tpq& q, const std::vector<LabelId>& sigma,
                             Mode mode);

/// Theorem 6.1(1) via automata: decides L(p) ∩ L(d) ⊆ L(q) for path
/// queries p, q by emptiness of d ∩ p ∩ ¬q.  Returns the decision and a
/// counterexample tree when containment fails.
struct AutomataContainmentResult {
  bool contained = false;
  std::optional<Tree> counterexample;
  int32_t product_states = 0;
};

AutomataContainmentResult ContainedPathInPathViaAutomata(const Tpq& p,
                                                         const Tpq& q,
                                                         Mode mode,
                                                         const Dtd& dtd);

/// Validity of a path query w.r.t. a DTD via ¬q ∩ d emptiness
/// (the Theorem 5.1 cases for paths).
AutomataContainmentResult ValidPathViaAutomata(const Tpq& q, Mode mode,
                                               const Dtd& dtd);

}  // namespace tpc

#endif  // TPC_AUTOMATA_PATH_COMPLEMENT_H_
