// Nondeterministic unranked tree automata (NTAs).
//
// An NTA has vertical states 0..num_states-1; a transition (q, a, H) says a
// node labelled `a` may be assigned state `q` if the left-to-right word of
// its children's states belongs to the horizontal language H (an NFA over
// state ids).  A tree is accepted if some run assigns a final state to the
// root.  A transition whose label is `kWildcard` applies to every label.
//
// The paper uses NTAs for DTDs, for (complements of) pattern languages
// (Observation 6.2), and as the common currency of the P upper bounds in
// Section 6 (product + emptiness).

#ifndef TPC_AUTOMATA_NTA_H_
#define TPC_AUTOMATA_NTA_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/label.h"
#include "dtd/dtd.h"
#include "pattern/tpq.h"
#include "regex/nfa.h"
#include "tree/tree.h"

namespace tpc {

/// A nondeterministic unranked tree automaton.
class Nta {
 public:
  struct Transition {
    int32_t state;
    LabelId label;  // kWildcard = applies to any label
    Nfa horizontal;
  };

  int32_t num_states() const { return num_states_; }
  const std::vector<Transition>& transitions() const { return transitions_; }
  const std::vector<bool>& final_states() const { return final_; }

  int32_t AddState(bool is_final = false);
  void SetFinal(int32_t state, bool is_final) { final_[state] = is_final; }
  void AddTransition(int32_t state, LabelId label, Nfa horizontal);

  /// Declares `label` part of the label universe (used to materialize
  /// witnesses for wildcard transitions).
  void AddAlphabetLabel(LabelId label);
  const std::vector<LabelId>& alphabet() const { return alphabet_; }

  /// True iff some run assigns a final state to the root of `t`.
  bool Accepts(const Tree& t) const;

  /// True iff the accepted language is empty.  Polynomial time.
  bool IsEmpty() const;

  /// A smallest accepted tree, or nullopt if the language is empty.
  /// Wildcard transitions are materialized with the first alphabet label
  /// (a fresh one must be registered by the caller if needed).
  std::optional<Tree> SmallestWitness() const;

  /// Product automaton accepting the intersection of the two languages.
  static Nta Intersect(const Nta& a, const Nta& b);

  /// The NTA of a DTD: states are alphabet symbols, horizontal languages are
  /// the content models, final states are the start symbols.
  static Nta FromDtd(const Dtd& dtd);

  /// A polynomial-size NTA for L_s(p) (`strong`) or L_w(p) of a *path* query
  /// p ∈ PQ(/,//,*).  Precondition: IsPathQuery(p).
  static Nta FromPathQuery(const Tpq& p, bool strong);

 private:
  /// States of `t`'s nodes under all runs (bottom-up simulation), as packed
  /// uint64-word bitsets streamed over `t.View()`'s postorder columns: the
  /// node at postorder position i has its set in words
  /// [i * stride, (i+1) * stride) with stride = ceil(num_states / 64); the
  /// root's set is the last row.
  std::vector<uint64_t> RunSets(const Tree& t) const;

  int32_t num_states_ = 0;
  std::vector<bool> final_;
  std::vector<Transition> transitions_;
  std::vector<LabelId> alphabet_;  // sorted
};

}  // namespace tpc

#endif  // TPC_AUTOMATA_NTA_H_
