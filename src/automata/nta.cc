#include "automata/nta.h"

#include <algorithm>
#include <cassert>
#include <limits>
#include <queue>
#include <set>

#include "automata/tpq_det.h"  // TestWordBit / SetWordBit

namespace tpc {

namespace {

constexpr int64_t kInfCost = std::numeric_limits<int64_t>::max() / 4;

/// True iff `nfa` accepts some word whose symbols all satisfy `ok`.
template <typename Pred>
bool AcceptsSomeWordWhere(const Nfa& nfa, Pred ok) {
  std::vector<bool> visited(nfa.num_states, false);
  std::vector<int32_t> stack = {nfa.initial};
  visited[nfa.initial] = true;
  while (!stack.empty()) {
    int32_t q = stack.back();
    stack.pop_back();
    if (nfa.accepting[q]) return true;
    for (const auto& [s, t] : nfa.transitions[q]) {
      if (!visited[t] && ok(s)) {
        visited[t] = true;
        stack.push_back(t);
      }
    }
  }
  return false;
}

/// NFA accepting `pad* mid pad*` (or `pad*` if mid < 0).
Nfa PaddedOne(Symbol pad, int64_t mid) {
  Nfa nfa;
  if (mid < 0) {
    nfa.num_states = 1;
    nfa.initial = 0;
    nfa.accepting = {true};
    nfa.transitions.resize(1);
    nfa.transitions[0].emplace_back(pad, 0);
    return nfa;
  }
  nfa.num_states = 2;
  nfa.initial = 0;
  nfa.accepting = {false, true};
  nfa.transitions.resize(2);
  nfa.transitions[0].emplace_back(pad, 0);
  nfa.transitions[0].emplace_back(static_cast<Symbol>(mid), 1);
  nfa.transitions[1].emplace_back(pad, 1);
  return nfa;
}

}  // namespace

int32_t Nta::AddState(bool is_final) {
  final_.push_back(is_final);
  return num_states_++;
}

void Nta::AddTransition(int32_t state, LabelId label, Nfa horizontal) {
  assert(state >= 0 && state < num_states_);
  if (label != kWildcard) AddAlphabetLabel(label);
  transitions_.push_back({state, label, std::move(horizontal)});
}

void Nta::AddAlphabetLabel(LabelId label) {
  auto it = std::lower_bound(alphabet_.begin(), alphabet_.end(), label);
  if (it == alphabet_.end() || *it != label) alphabet_.insert(it, label);
}

std::vector<uint64_t> Nta::RunSets(const Tree& t) const {
  const size_t stride = (static_cast<size_t>(num_states_) + 63) >> 6;
  const TreeView view = t.View();
  const int32_t n = view.size();
  std::vector<uint64_t> states(static_cast<size_t>(n) * stride, 0);
  std::vector<int32_t> children;  // child positions, reused across nodes
  std::vector<uint64_t> current, next;
  // One ascending sweep over postorder positions: child rows are finished
  // before their parent's.  The span walk yields children right-to-left;
  // the horizontal NFA consumes them left-to-right, so reverse.
  for (int32_t i = 0; i < n; ++i) {
    children.clear();
    for (int32_t c = view.LastChild(i); c >= view.SpanBegin(i);
         c = view.PrevSibling(c)) {
      children.push_back(c);
    }
    std::reverse(children.begin(), children.end());
    uint64_t* row = states.data() + static_cast<size_t>(i) * stride;
    for (const Transition& tr : transitions_) {
      if (tr.label != kWildcard && tr.label != view.LabelAtPost(i)) continue;
      if (TestWordBit(row, tr.state)) continue;
      // Does some choice of child states form a word in tr.horizontal?
      const size_t hwords =
          (static_cast<size_t>(tr.horizontal.num_states) + 63) >> 6;
      current.assign(hwords, 0);
      SetWordBit(current.data(), tr.horizontal.initial);
      for (int32_t c : children) {
        next.assign(hwords, 0);
        const uint64_t* child_row =
            states.data() + static_cast<size_t>(c) * stride;
        for (int32_t h = 0; h < tr.horizontal.num_states; ++h) {
          if (!TestWordBit(current.data(), h)) continue;
          for (const auto& [s, h2] : tr.horizontal.transitions[h]) {
            if (s < static_cast<Symbol>(num_states_) &&
                TestWordBit(child_row, static_cast<int32_t>(s))) {
              SetWordBit(next.data(), h2);
            }
          }
        }
        current.swap(next);
      }
      for (int32_t h = 0; h < tr.horizontal.num_states; ++h) {
        if (TestWordBit(current.data(), h) && tr.horizontal.accepting[h]) {
          SetWordBit(row, tr.state);
          break;
        }
      }
    }
  }
  return states;
}

bool Nta::Accepts(const Tree& t) const {
  if (t.empty()) return false;
  std::vector<uint64_t> states = RunSets(t);
  // The root occupies the last postorder position.
  const size_t stride = (static_cast<size_t>(num_states_) + 63) >> 6;
  const uint64_t* root_row =
      states.data() + static_cast<size_t>(t.size() - 1) * stride;
  for (int32_t q = 0; q < num_states_; ++q) {
    if (final_[q] && TestWordBit(root_row, q)) return true;
  }
  return false;
}

bool Nta::IsEmpty() const {
  std::vector<uint64_t> nonempty((static_cast<size_t>(num_states_) + 63) >> 6,
                                 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& tr : transitions_) {
      if (TestWordBit(nonempty.data(), tr.state)) continue;
      if (AcceptsSomeWordWhere(tr.horizontal, [&](Symbol s) {
            return s < static_cast<Symbol>(num_states_) &&
                   TestWordBit(nonempty.data(), static_cast<int32_t>(s));
          })) {
        SetWordBit(nonempty.data(), tr.state);
        changed = true;
      }
    }
  }
  for (int32_t q = 0; q < num_states_; ++q) {
    if (final_[q] && TestWordBit(nonempty.data(), q)) return false;
  }
  return true;
}

std::optional<Tree> Nta::SmallestWitness() const {
  // cost[q] = size of the smallest tree admitting a run ending in q.
  std::vector<int64_t> cost(num_states_, kInfCost);
  bool changed = true;
  while (changed) {
    changed = false;
    for (const Transition& tr : transitions_) {
      // Cheapest accepting word of tr.horizontal, weights = cost of states.
      const Nfa& h = tr.horizontal;
      std::vector<int64_t> dist(h.num_states, kInfCost);
      dist[h.initial] = 0;
      using Entry = std::pair<int64_t, int32_t>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
      pq.emplace(0, h.initial);
      int64_t best = kInfCost;
      while (!pq.empty()) {
        auto [d, s] = pq.top();
        pq.pop();
        if (d > dist[s]) continue;
        if (h.accepting[s]) best = std::min(best, d);
        for (const auto& [sym, s2] : h.transitions[s]) {
          if (sym >= static_cast<Symbol>(num_states_)) continue;
          int64_t w = cost[sym];
          if (w >= kInfCost) continue;
          if (d + w < dist[s2]) {
            dist[s2] = d + w;
            pq.emplace(dist[s2], s2);
          }
        }
      }
      if (best < kInfCost && best + 1 < cost[tr.state]) {
        cost[tr.state] = best + 1;
        changed = true;
      }
    }
  }
  int32_t root_state = -1;
  for (int32_t q = 0; q < num_states_; ++q) {
    if (final_[q] && cost[q] < kInfCost &&
        (root_state < 0 || cost[q] < cost[root_state])) {
      root_state = q;
    }
  }
  if (root_state < 0) return std::nullopt;

  // Expand: for each state, find the transition and children word realizing
  // its cost; materialize recursively.
  LabelId wildcard_label = alphabet_.empty() ? kWildcard : alphabet_[0];
  Tree t;
  // Worklist of (tree parent, state to realize); root first.
  std::vector<std::pair<NodeId, int32_t>> work = {{kNoNode, root_state}};
  while (!work.empty()) {
    auto [parent, state] = work.back();
    work.pop_back();
    // Find a transition realizing cost[state].
    const Transition* chosen = nullptr;
    std::vector<int32_t> word;
    for (const Transition& tr : transitions_) {
      if (tr.state != state) continue;
      const Nfa& h = tr.horizontal;
      std::vector<int64_t> dist(h.num_states, kInfCost);
      std::vector<std::pair<int32_t, int32_t>> parent_ptr(h.num_states,
                                                          {-1, -1});
      dist[h.initial] = 0;
      using Entry = std::pair<int64_t, int32_t>;
      std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
      pq.emplace(0, h.initial);
      int32_t best_state = -1;
      int64_t best = kInfCost;
      while (!pq.empty()) {
        auto [d, s] = pq.top();
        pq.pop();
        if (d > dist[s]) continue;
        if (h.accepting[s] && d < best) {
          best = d;
          best_state = s;
        }
        for (const auto& [sym, s2] : h.transitions[s]) {
          if (sym >= static_cast<Symbol>(num_states_)) continue;
          int64_t w = cost[sym];
          if (w >= kInfCost) continue;
          if (d + w < dist[s2]) {
            dist[s2] = d + w;
            parent_ptr[s2] = {s, static_cast<int32_t>(sym)};
            pq.emplace(dist[s2], s2);
          }
        }
      }
      if (best + 1 == cost[state]) {
        chosen = &tr;
        for (int32_t s = best_state; parent_ptr[s].first >= 0;
             s = parent_ptr[s].first) {
          word.push_back(parent_ptr[s].second);
        }
        std::reverse(word.begin(), word.end());
        break;
      }
    }
    assert(chosen != nullptr && "cost fixpoint inconsistent");
    LabelId label =
        chosen->label == kWildcard ? wildcard_label : chosen->label;
    NodeId node = parent == kNoNode ? t.AddRoot(label)
                                    : t.AddChild(parent, label);
    // Push children in reverse so they are expanded left-to-right.
    for (auto it = word.rbegin(); it != word.rend(); ++it) {
      work.emplace_back(node, *it);
    }
  }
  return t;
}

Nta Nta::Intersect(const Nta& a, const Nta& b) {
  Nta out;
  int32_t nb = b.num_states_;
  for (int32_t qa = 0; qa < a.num_states_; ++qa) {
    for (int32_t qb = 0; qb < nb; ++qb) {
      out.AddState(a.final_[qa] && b.final_[qb]);
    }
  }
  for (LabelId l : a.alphabet_) out.AddAlphabetLabel(l);
  for (LabelId l : b.alphabet_) out.AddAlphabetLabel(l);
  for (const Transition& ta : a.transitions_) {
    for (const Transition& tb : b.transitions_) {
      LabelId label;
      if (ta.label == kWildcard) {
        label = tb.label;
      } else if (tb.label == kWildcard || tb.label == ta.label) {
        label = ta.label;
      } else {
        continue;
      }
      // Horizontal product over pair symbols (sa * nb + sb).
      const Nfa& ha = ta.horizontal;
      const Nfa& hb = tb.horizontal;
      Nfa h;
      h.num_states = ha.num_states * hb.num_states;
      h.initial = ha.initial * hb.num_states + hb.initial;
      h.accepting.assign(h.num_states, false);
      h.transitions.resize(h.num_states);
      for (int32_t sa = 0; sa < ha.num_states; ++sa) {
        for (int32_t sb = 0; sb < hb.num_states; ++sb) {
          int32_t s = sa * hb.num_states + sb;
          h.accepting[s] = ha.accepting[sa] && hb.accepting[sb];
          for (const auto& [syma, ta2] : ha.transitions[sa]) {
            if (syma >= static_cast<Symbol>(a.num_states_)) continue;
            for (const auto& [symb, tb2] : hb.transitions[sb]) {
              if (symb >= static_cast<Symbol>(b.num_states_)) continue;
              Symbol pair_sym = syma * nb + symb;
              h.transitions[s].emplace_back(pair_sym,
                                            ta2 * hb.num_states + tb2);
            }
          }
        }
      }
      out.transitions_.push_back({ta.state * nb + tb.state, label,
                                  std::move(h)});
    }
  }
  return out;
}

Nta Nta::FromDtd(const Dtd& dtd) {
  Nta out;
  const std::vector<LabelId>& sigma = dtd.alphabet();
  // State i corresponds to sigma[i].
  for (LabelId a : sigma) out.AddState(dtd.IsStart(a));
  auto index_of = [&](LabelId l) {
    return static_cast<int32_t>(
        std::lower_bound(sigma.begin(), sigma.end(), l) - sigma.begin());
  };
  for (size_t i = 0; i < sigma.size(); ++i) {
    const Nfa& rule = dtd.RuleNfa(sigma[i]);
    Nfa h = rule;
    // Remap symbols from label ids to state ids.
    for (auto& ts : h.transitions) {
      for (auto& [sym, tgt] : ts) {
        sym = static_cast<Symbol>(index_of(sym));
      }
    }
    out.AddTransition(static_cast<int32_t>(i), sigma[i], std::move(h));
  }
  return out;
}

Nta Nta::FromPathQuery(const Tpq& p, bool strong) {
  assert(IsPathQuery(p));
  int32_t m = p.size();  // nodes are v_0..v_{m-1} in a chain
  Nta out;
  // State layout: 0 = Top; 1..m = S_i (subpath from v_i strongly embeds
  // here); m+1..2m = G_i (subpath from v_i embeds here or below).
  int32_t top = out.AddState(false);
  std::vector<int32_t> s_state(m), g_state(m);
  for (int32_t i = 0; i < m; ++i) s_state[i] = out.AddState(false);
  for (int32_t i = 0; i < m; ++i) g_state[i] = out.AddState(false);
  out.SetFinal(strong ? s_state[0] : g_state[0], true);

  // Top: any label, all children Top.
  out.AddTransition(top, kWildcard, PaddedOne(top, -1));
  for (int32_t i = 0; i < m; ++i) {
    LabelId label = p.IsWildcard(i) ? kWildcard : p.Label(i);
    Nfa h;
    if (i + 1 == m) {
      h = PaddedOne(top, -1);
    } else if (p.Edge(i + 1) == EdgeKind::kChild) {
      h = PaddedOne(top, s_state[i + 1]);
    } else {
      h = PaddedOne(top, g_state[i + 1]);
    }
    out.AddTransition(s_state[i], label, h);
    out.AddTransition(g_state[i], label, std::move(h));
    // G_i also holds if some child has G_i, regardless of the label.
    out.AddTransition(g_state[i], kWildcard, PaddedOne(top, g_state[i]));
  }
  return out;
}

}  // namespace tpc
