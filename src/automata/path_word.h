// Word automata of path queries, used by the Figure 6 reproduction.
//
// Interpreted over a single downward path, a path query q ∈ PQ(/,//,*)
// denotes a word language W(q) over Σ: letters must match, `*` matches any
// letter and `//` skips one or more letters.  A tree weakly matches q iff
// some root-to-node label sequence has a suffix... more precisely, iff some
// root-to-node prefix of the tree lies in Σ* · W(q).
//
// Figure 6 of the paper exhibits q_n = a/*^{2n-?}-style patterns whose
// complement automaton requires exponentially many states; the benchmark
// reproduces this as the minimal-DFA size of Σ* · W(q) for the family
// q = a/*^n/b, which is the classical "a exactly n+1 positions before the
// end-marker b" language with 2^n states after minimization.

#ifndef TPC_AUTOMATA_PATH_WORD_H_
#define TPC_AUTOMATA_PATH_WORD_H_

#include <vector>

#include "base/label.h"
#include "pattern/tpq.h"
#include "regex/nfa.h"

namespace tpc {

/// Builds the NFA for Σ* · W(q) over the alphabet `sigma` (which must
/// include every letter of q).  Precondition: IsPathQuery(q).
Nfa PathQueryWordNfa(const Tpq& q, const std::vector<LabelId>& sigma);

/// Number of states of the minimal complete DFA for Σ* · W(q) — the cost of
/// deterministically "watching" for q along a path, and a lower bound on
/// any deterministic automaton for the complement of L_w(q).
int32_t MinimalWatchDfaSize(const Tpq& q, const std::vector<LabelId>& sigma);

}  // namespace tpc

#endif  // TPC_AUTOMATA_PATH_WORD_H_
