#include "automata/path_complement.h"

#include <cassert>
#include <set>

namespace tpc {

namespace {

/// Word NFA of a path query: `anchored` matches from the first letter
/// (strong semantics), otherwise a Σ* prefix is allowed (weak semantics).
Nfa PathWordNfa(const Tpq& q, const std::vector<LabelId>& sigma,
                bool anchored) {
  assert(IsPathQuery(q));
  int32_t m = q.size();
  Nfa nfa;
  nfa.num_states = m + 1;
  nfa.initial = 0;
  nfa.accepting.assign(m + 1, false);
  nfa.accepting[m] = true;
  nfa.transitions.resize(m + 1);
  if (!anchored) {
    for (LabelId s : sigma) nfa.transitions[0].emplace_back(s, 0);
  }
  for (NodeId v = 0; v < m; ++v) {
    if (q.IsWildcard(v)) {
      for (LabelId s : sigma) nfa.transitions[v].emplace_back(s, v + 1);
    } else {
      nfa.transitions[v].emplace_back(q.Label(v), v + 1);
    }
    if (v >= 1 && q.Edge(v) == EdgeKind::kDescendant) {
      for (LabelId s : sigma) nfa.transitions[v].emplace_back(s, v);
    }
  }
  return nfa;
}

/// One-state NFA accepting (symbol)*.
Nfa StarOf(Symbol symbol) {
  Nfa nfa;
  nfa.num_states = 1;
  nfa.initial = 0;
  nfa.accepting = {true};
  nfa.transitions.resize(1);
  nfa.transitions[0].emplace_back(symbol, 0);
  return nfa;
}

}  // namespace

Nta ComplementOfPathQueryNta(const Tpq& q, const std::vector<LabelId>& sigma,
                             Mode mode) {
  Nfa word_nfa = PathWordNfa(q, sigma, mode == Mode::kStrong);
  std::vector<Symbol> extra(sigma.begin(), sigma.end());
  Dfa dfa = Dfa::Determinize(word_nfa, extra);
  // Lemma E.1: a run assigns each node the DFA state above it; the state
  // after reading the node's label must be non-accepting and is passed to
  // all children.
  Nta out;
  for (int32_t s = 0; s < dfa.num_states; ++s) {
    out.AddState(s == dfa.initial);
  }
  for (LabelId a : sigma) out.AddAlphabetLabel(a);
  for (int32_t s = 0; s < dfa.num_states; ++s) {
    for (LabelId a : sigma) {
      int32_t next = dfa.StepState(s, a);
      if (dfa.accepting[next]) continue;  // an accepted path would complete
      out.AddTransition(s, a, StarOf(static_cast<Symbol>(next)));
    }
  }
  return out;
}

AutomataContainmentResult ContainedPathInPathViaAutomata(const Tpq& p,
                                                         const Tpq& q,
                                                         Mode mode,
                                                         const Dtd& dtd) {
  assert(IsPathQuery(p) && IsPathQuery(q));
  std::set<LabelId> sigma_set(dtd.alphabet().begin(), dtd.alphabet().end());
  for (NodeId v = 0; v < q.size(); ++v) {
    if (!q.IsWildcard(v)) sigma_set.insert(q.Label(v));
  }
  for (NodeId v = 0; v < p.size(); ++v) {
    if (!p.IsWildcard(v)) sigma_set.insert(p.Label(v));
  }
  std::vector<LabelId> sigma(sigma_set.begin(), sigma_set.end());
  Nta product = Nta::Intersect(
      Nta::Intersect(dtd.Automaton(),
                     Nta::FromPathQuery(p, mode == Mode::kStrong)),
      ComplementOfPathQueryNta(q, sigma, mode));
  AutomataContainmentResult out;
  out.product_states = product.num_states();
  std::optional<Tree> witness = product.SmallestWitness();
  out.contained = !witness.has_value();
  out.counterexample = std::move(witness);
  return out;
}

AutomataContainmentResult ValidPathViaAutomata(const Tpq& q, Mode mode,
                                               const Dtd& dtd) {
  assert(IsPathQuery(q));
  std::set<LabelId> sigma_set(dtd.alphabet().begin(), dtd.alphabet().end());
  for (NodeId v = 0; v < q.size(); ++v) {
    if (!q.IsWildcard(v)) sigma_set.insert(q.Label(v));
  }
  std::vector<LabelId> sigma(sigma_set.begin(), sigma_set.end());
  Nta product = Nta::Intersect(dtd.Automaton(),
                               ComplementOfPathQueryNta(q, sigma, mode));
  AutomataContainmentResult out;
  out.product_states = product.num_states();
  std::optional<Tree> witness = product.SmallestWitness();
  out.contained = !witness.has_value();  // valid iff no counterexample
  out.counterexample = std::move(witness);
  return out;
}

}  // namespace tpc
