// Lazy deterministic bottom-up automaton of a tree pattern query.
//
// For a TPQ q, the canonical deterministic bottom-up automaton has states
// (Sat, Below) ⊆ Nodes(q) × Nodes(q): at a tree node y, `Sat` is the set of
// pattern nodes x whose subquery strongly embeds at y, and `Below` the set
// whose subquery embeds somewhere in subtree(y).  Both sets are determined
// by y's label and the *unions* of the children's Sat/Below sets (embedding
// requirements are existential and non-injective).
//
// The full automaton has up to 4^|q| states (this is unavoidable: the paper
// shows complementation of TPQ languages is inherently exponential, cf.
// Figure 6), so states are materialized lazily and interned.  This class is
// the workhorse of the general schema-aware decision procedures (Sections
// 4-6): satisfiability, validity and containment with DTDs all reduce to
// reachability analyses over (DTD symbol, pattern state) configurations.

#ifndef TPC_AUTOMATA_TPQ_DET_H_
#define TPC_AUTOMATA_TPQ_DET_H_

#include <cstdint>
#include <map>
#include <vector>

#include "base/label.h"
#include "pattern/tpq.h"

namespace tpc {

/// Tests bit `i` of a packed uint64-word bitset.  The shared primitive of
/// every word-packed set representation in the library (`NodeBitset`,
/// `MatcherWorkspace` rows, `StateSetInterner` arenas, NTA run sets).
inline bool TestWordBit(const uint64_t* words, int32_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

/// Sets bit `i` of a packed uint64-word bitset.
inline void SetWordBit(uint64_t* words, int32_t i) {
  words[i >> 6] |= uint64_t{1} << (i & 63);
}

/// A fixed-width bitset over pattern nodes.
class NodeBitset {
 public:
  NodeBitset() = default;
  explicit NodeBitset(int32_t num_bits)
      : words_((num_bits + 63) / 64, 0) {}

  bool Test(int32_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  void Set(int32_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void UnionWith(const NodeBitset& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }
  bool operator==(const NodeBitset&) const = default;
  bool operator<(const NodeBitset& other) const {
    return words_ < other.words_;
  }
  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  /// Raw word access for interning (see automata/state_interning.h).
  const uint64_t* words() const { return words_.data(); }
  int32_t num_words() const { return static_cast<int32_t>(words_.size()); }

 private:
  std::vector<uint64_t> words_;
};

/// Lazily materialized deterministic bottom-up TPQ automaton.
class TpqDetAutomaton {
 public:
  using StateId = int32_t;

  explicit TpqDetAutomaton(const Tpq& q);

  const Tpq& query() const { return q_; }

  /// State of a node with `label` whose children carry `children` states.
  StateId StateFor(LabelId label, const std::vector<StateId>& children);

  /// State of a node with `label` given the unions of children Sat/Below
  /// sets (for callers that accumulate unions incrementally).
  StateId StateForUnion(LabelId label, const NodeBitset& children_sat,
                        const NodeBitset& children_below);

  /// Same, over raw uint64 words (⌈|q|/64⌉ words each) — the engines keep
  /// the unions interned and never materialize `NodeBitset`s in hot loops.
  StateId StateForUnion(LabelId label, const uint64_t* children_sat,
                        const uint64_t* children_below);

  const NodeBitset& Sat(StateId s) const { return states_[s].sat; }
  const NodeBitset& Below(StateId s) const { return states_[s].below; }

  /// True iff a tree reaching this state at its root is in L_s(q) / L_w(q).
  bool AcceptsStrong(StateId s) const { return Sat(s).Test(0); }
  bool AcceptsWeak(StateId s) const { return Below(s).Test(0); }

  /// Number of states materialized so far (grows as StateFor is called);
  /// reported by the Figure-6 style blowup benchmarks.
  int32_t num_materialized() const {
    return static_cast<int32_t>(states_.size());
  }

 private:
  struct State {
    NodeBitset sat;
    NodeBitset below;
  };

  StateId Intern(State state);

  Tpq q_;
  std::vector<State> states_;
  std::map<std::pair<NodeBitset, NodeBitset>, StateId> ids_;
};

}  // namespace tpc

#endif  // TPC_AUTOMATA_TPQ_DET_H_
