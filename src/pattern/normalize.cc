#include "pattern/normalize.h"

#include <cassert>
#include <map>

namespace tpc {

namespace {

/// True iff `v` has no child attached with a child edge (it is a leaf of its
/// island).
bool IsIslandLeaf(const Tpq& q, NodeId v) {
  for (NodeId c = q.FirstChild(v); c != kNoNode; c = q.NextSibling(c)) {
    if (q.Edge(c) == EdgeKind::kChild) return false;
  }
  return true;
}

}  // namespace

Tpq Normalize(const Tpq& q) {
  Tpq out = q;
  // Flipping an edge can expose the parent as a new island leaf, so iterate
  // bottom-up; since children have larger ids, one backwards pass suffices.
  for (NodeId v = out.size() - 1; v >= 1; --v) {
    if (out.IsWildcard(v) && out.Edge(v) == EdgeKind::kChild &&
        IsIslandLeaf(out, v)) {
      out.SetEdge(v, EdgeKind::kDescendant);
    }
  }
  return out;
}

bool IsNormalized(const Tpq& q) {
  for (NodeId v = 1; v < q.size(); ++v) {
    if (q.IsWildcard(v) && q.Edge(v) == EdgeKind::kChild &&
        IsIslandLeaf(q, v)) {
      return false;
    }
  }
  return true;
}

IslandDecomposition Islands(const Tpq& q) {
  IslandDecomposition d;
  d.island_of.assign(q.size(), -1);
  for (NodeId v = 0; v < q.size(); ++v) {
    if (v == 0 || q.Edge(v) == EdgeKind::kDescendant) {
      d.island_of[v] = static_cast<int32_t>(d.roots.size());
      d.roots.push_back(v);
    } else {
      d.island_of[v] = d.island_of[q.Parent(v)];  // parent id < v
    }
  }
  return d;
}

namespace {

/// Recursively rebuilds `q` below `src` into `out` below `dst_parent`,
/// merging equal-labelled siblings with equal edge kinds.
void MergeInto(const Tpq& q, NodeId src, Tpq* out, NodeId dst) {
  // Group the children of src by (edge kind, label); within one group all
  // grandchildren lists are concatenated under a single merged node.
  std::map<std::pair<int, LabelId>, NodeId> merged;
  std::map<std::pair<int, LabelId>, std::vector<NodeId>> sources;
  for (NodeId c = q.FirstChild(src); c != kNoNode; c = q.NextSibling(c)) {
    sources[{static_cast<int>(q.Edge(c)), q.Label(c)}].push_back(c);
  }
  for (const auto& [key, group] : sources) {
    NodeId m = out->AddChild(dst, key.second, static_cast<EdgeKind>(key.first));
    merged[key] = m;
    // Merge recursively: treat the union of all grandchildren of the group as
    // the children of a virtual node.  We emulate this by building an
    // intermediate pattern that concatenates the subqueries.
    Tpq virtual_node(key.second);
    for (NodeId g : group) {
      for (NodeId gc = q.FirstChild(g); gc != kNoNode;
           gc = q.NextSibling(gc)) {
        virtual_node.Graft(0, q.Edge(gc), q, gc);
      }
    }
    MergeInto(virtual_node, 0, out, m);
  }
}

}  // namespace

Tpq MergeEqualSiblings(const Tpq& q) {
  if (q.empty()) return q;
  Tpq out(q.Label(0));
  MergeInto(q, 0, &out, 0);
  return out;
}

Tpq PrependWildcards(const Tpq& p, int32_t k) {
  if (k <= 0) return p;
  Tpq out(kWildcard);
  NodeId v = 0;
  for (int32_t i = 1; i < k; ++i) v = out.AddChild(v, kWildcard, EdgeKind::kChild);
  out.Graft(v, EdgeKind::kChild, p, 0);
  return out;
}

}  // namespace tpc
