// Parser for tree pattern queries in XPath-like syntax.
//
// Grammar:
//   pattern   := step (sep step)*
//   step      := label predicate*
//   predicate := '[' sep? pattern ']'
//   sep       := '/' | '//'
//   label     := identifier | '*'
//
// `/` is a child edge, `//` a proper-descendant edge.  A predicate attaches a
// branch below the current node; the optional separator at the start of a
// predicate gives the edge kind of the branch root (child by default).
//
// Examples: `a/b//c`, `a[b][//c/d]/*`, `*//a`.

#ifndef TPC_PATTERN_TPQ_PARSER_H_
#define TPC_PATTERN_TPQ_PARSER_H_

#include <optional>
#include <string_view>

#include "base/label.h"
#include "base/parse_result.h"
#include "pattern/tpq.h"

namespace tpc {

/// Parses `input` as a TPQ, interning labels into `pool`.  Rejects (never
/// crashes on) malformed input, including pathological nesting: predicate
/// depth is capped (see `kMaxParseDepth` in parse_result usage notes).
ParseResult<Tpq> ParseTpq(std::string_view input, LabelPool* pool);

/// Non-aborting parse for untrusted input: on failure returns std::nullopt
/// and fills `*diag` with the message and 1-based line/column.
std::optional<Tpq> ParseTpqChecked(std::string_view input, LabelPool* pool,
                                   ParseDiagnostic* diag);

/// Convenience: parses or aborts.  For tests and examples on trusted input.
Tpq MustParseTpq(std::string_view input, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_PATTERN_TPQ_PARSER_H_
