// Tree pattern queries with child edges, descendant edges and wildcards
// (Definition 2.1 of the paper).
//
// A `Tpq` is a tree whose nodes carry a label (possibly the wildcard) and
// whose non-root nodes record the kind of edge connecting them to their
// parent: a child edge (`/`) or a proper-descendant edge (`//`).
//
// The paper's fragments TPQ(/), TPQ(//), PQ(/,*), ... are not distinct types;
// `FragmentOf()` inspects which features a pattern actually uses, and the
// containment dispatcher routes on that.

#ifndef TPC_PATTERN_TPQ_H_
#define TPC_PATTERN_TPQ_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/label.h"
#include "tree/tree.h"

namespace tpc {

/// Kind of the edge between a pattern node and its parent.
enum class EdgeKind : uint8_t {
  kChild,       // `/`  — image must be a child of the parent's image
  kDescendant,  // `//` — image must be a proper descendant of it
};

/// A tree pattern query.  Node 0 is the root; parents precede children in id
/// order, matching the `Tree` invariants.
class Tpq {
 public:
  Tpq() = default;

  /// Creates a one-node pattern.
  explicit Tpq(LabelId root_label) { AddRoot(root_label); }

  NodeId AddRoot(LabelId label);
  NodeId AddChild(NodeId parent, LabelId label, EdgeKind edge);

  /// Grafts a copy of `sub` (rooted at `sub_root`) below `parent` via `edge`.
  /// With `parent == kNoNode` the copy becomes the root of an empty pattern.
  NodeId Graft(NodeId parent, EdgeKind edge, const Tpq& sub,
               NodeId sub_root = 0);

  int32_t size() const { return static_cast<int32_t>(labels_.size()); }
  bool empty() const { return labels_.empty(); }

  LabelId Label(NodeId v) const { return labels_[v]; }
  void SetLabel(NodeId v, LabelId label) { labels_[v] = label; }
  bool IsWildcard(NodeId v) const { return labels_[v] == kWildcard; }
  NodeId Parent(NodeId v) const { return parents_[v]; }
  /// Edge kind between `v` and its parent.  Precondition: `v != 0`.
  EdgeKind Edge(NodeId v) const { return edges_[v]; }
  void SetEdge(NodeId v, EdgeKind edge) { edges_[v] = edge; }
  NodeId FirstChild(NodeId v) const { return first_child_[v]; }
  NodeId NextSibling(NodeId v) const { return next_sibling_[v]; }
  bool IsLeaf(NodeId v) const { return first_child_[v] == kNoNode; }

  std::vector<NodeId> Children(NodeId v) const;
  int32_t NumChildren(NodeId v) const;

  /// Number of edges on the root-to-`v` path (root has depth 0).
  int32_t Depth(NodeId v) const;

  /// Maximum node depth (counting both edge kinds as one step).
  int32_t depth() const;

  /// Extracts `subquery^q(v)` as a standalone pattern.
  Tpq Subquery(NodeId v) const;

  /// Structural equality as ordered trees with edge kinds.
  bool operator==(const Tpq& other) const;

  /// Serializes in the XPath-like syntax of `ParseTpq`, e.g. `a[b//c]/*`.
  std::string ToString(const LabelPool& pool) const;

 private:
  void AppendPath(NodeId v, const LabelPool& pool, std::string* out) const;

  std::vector<LabelId> labels_;
  std::vector<NodeId> parents_;
  std::vector<EdgeKind> edges_;
  std::vector<NodeId> first_child_;
  std::vector<NodeId> next_sibling_;
  std::vector<NodeId> last_child_;
};

/// Which of the four features a pattern uses (Section 1: child edges,
/// descendant edges, wildcards, branching).
struct Fragment {
  bool child_edges = false;
  bool descendant_edges = false;
  bool wildcard = false;
  bool branching = false;

  bool operator==(const Fragment&) const = default;

  /// True if this fragment uses no feature outside `allowed`.
  bool Within(const Fragment& allowed) const;

  std::string ToString() const;  // e.g. "TPQ(/,//,*)" or "PQ(/)"
};

/// Inspects which features `q` uses.
Fragment FragmentOf(const Tpq& q);

/// True iff `q` has no branching node (`q` is a path query, PQ).
bool IsPathQuery(const Tpq& q);

namespace fragments {
// Named fragments from the paper, for dispatcher queries and tests.
inline constexpr Fragment kPqChild{true, false, false, false};
inline constexpr Fragment kPqDesc{false, true, false, false};
inline constexpr Fragment kPqChildStar{true, false, true, false};
inline constexpr Fragment kPqDescStar{false, true, true, false};
inline constexpr Fragment kPqFull{true, true, true, false};
inline constexpr Fragment kTpqChild{true, false, false, true};
inline constexpr Fragment kTpqDesc{false, true, false, true};
inline constexpr Fragment kTpqChildDesc{true, true, false, true};
inline constexpr Fragment kTpqChildStar{true, false, true, true};
inline constexpr Fragment kTpqDescStar{false, true, true, true};
inline constexpr Fragment kTpqFull{true, true, true, true};
}  // namespace fragments

}  // namespace tpc

#endif  // TPC_PATTERN_TPQ_H_
