// Pattern normal forms and island decomposition (Appendix B.1.1).
//
// An *island* of a pattern is a maximal set of nodes connected by child
// edges.  A pattern is *normalized* if every leaf of every island either is
// the root of its island or is labelled by a letter (not a wildcard):
// a wildcard island-leaf hanging on a child edge can equivalently hang on a
// descendant edge.

#ifndef TPC_PATTERN_NORMALIZE_H_
#define TPC_PATTERN_NORMALIZE_H_

#include <vector>

#include "pattern/tpq.h"

namespace tpc {

/// Returns an equivalent normalized copy of `q` (same node ids, possibly
/// different edge kinds).  Idempotent.
Tpq Normalize(const Tpq& q);

/// True iff `q` is normalized.
bool IsNormalized(const Tpq& q);

/// Island decomposition of a pattern.
struct IslandDecomposition {
  /// island_of[v] = id of the island containing node v.  Island ids are dense
  /// and the island of the pattern root has id 0.
  std::vector<int32_t> island_of;
  /// roots[i] = the topmost node of island i.
  std::vector<NodeId> roots;

  int32_t num_islands() const { return static_cast<int32_t>(roots.size()); }
};

/// Computes the islands of `q`.  Island roots are the pattern root and every
/// node reached by a descendant edge.
IslandDecomposition Islands(const Tpq& q);

/// Merges, repeatedly, any two sibling nodes carrying the same label and the
/// same edge kind to the parent (first stage of Theorem 6.1(4)).  Merging
/// unions the children lists.  For TPQ(/) patterns this preserves the
/// containment question even though it changes L_w(q).
Tpq MergeEqualSiblings(const Tpq& q);

/// Returns the pattern `*^k(p)`: a chain of `k` wildcard nodes prepended
/// above the root of `p` with child edges (Appendix B.1.1).
Tpq PrependWildcards(const Tpq& p, int32_t k);

}  // namespace tpc

#endif  // TPC_PATTERN_NORMALIZE_H_
