#include "pattern/canonical.h"

#include <cassert>
#include <cmath>

namespace tpc {

namespace {

constexpr size_t kNoSpine = static_cast<size_t>(-1);

/// Document (DFS) order of the pattern nodes.  Node ids are only guaranteed
/// to put parents before children; siblings' subtrees may interleave (the
/// random generators attach children to arbitrary earlier nodes), so the
/// document order must be recovered explicitly.
std::vector<NodeId> DocumentOrder(const Tpq& p) {
  std::vector<NodeId> order;
  order.reserve(p.size());
  std::vector<NodeId> stack;
  if (!p.empty()) stack.push_back(0);
  std::vector<NodeId> children;  // reversal scratch
  while (!stack.empty()) {
    NodeId v = stack.back();
    stack.pop_back();
    order.push_back(v);
    children.clear();
    for (NodeId c = p.FirstChild(v); c != kNoNode; c = p.NextSibling(c)) {
      children.push_back(c);
    }
    for (size_t i = children.size(); i-- > 0;) stack.push_back(children[i]);
  }
  return order;
}

}  // namespace

std::vector<NodeId> DescendantEdges(const Tpq& p) {
  std::vector<NodeId> out;
  for (NodeId v : DocumentOrder(p)) {
    if (v != 0 && p.Edge(v) == EdgeKind::kDescendant) out.push_back(v);
  }
  return out;
}

CanonicalTreeBuilder::CanonicalTreeBuilder(const Tpq& p, LabelId bottom)
    : p_(p), bottom_(bottom) {
  assert(!p.empty());
  emit_label_.resize(p.size());
  for (NodeId v = 0; v < p.size(); ++v) {
    emit_label_[v] = p.IsWildcard(v) ? bottom : p.Label(v);
  }
  dfs_order_ = DocumentOrder(p);
  spine_of_dfs_.assign(dfs_order_.size(), kNoSpine);
  for (size_t j = 0; j < dfs_order_.size(); ++j) {
    NodeId v = dfs_order_[j];
    if (v != 0 && p.Edge(v) == EdgeKind::kDescendant) {
      spine_of_dfs_[j] = spine_dfs_pos_.size();
      spine_dfs_pos_.push_back(j);
    }
  }
  image_.assign(p.size(), kNoNode);
  spine_start_.assign(spine_dfs_pos_.size(), kNoNode);
}

void CanonicalTreeBuilder::Emit(const std::vector<int32_t>& lengths,
                                size_t dfs_begin, Tree* out) {
  assert(lengths.size() == spine_dfs_pos_.size());
  for (size_t j = dfs_begin; j < dfs_order_.size(); ++j) {
    NodeId v = dfs_order_[j];
    if (v == 0) {
      image_[v] = out->AddRoot(emit_label_[v]);
      continue;
    }
    NodeId attach = image_[p_.Parent(v)];
    size_t s = spine_of_dfs_[j];
    if (s != kNoSpine) {
      spine_start_[s] = out->size();
      for (int32_t i = 0; i < lengths[s]; ++i) {
        attach = out->AddChild(attach, bottom_);
      }
    }
    image_[v] = out->AddChild(attach, emit_label_[v]);
  }
}

void CanonicalTreeBuilder::BuildFull(const std::vector<int32_t>& lengths,
                                     Tree* out) {
  out->Clear();
  Emit(lengths, 0, out);
}

void CanonicalTreeBuilder::BuildSuffix(const std::vector<int32_t>& lengths,
                                       size_t first_changed, Tree* out) {
  if (first_changed >= spine_dfs_pos_.size()) return;  // nothing varies
  NodeId cut = spine_start_[first_changed];
  assert(cut != kNoNode && cut <= out->size());
  out->TruncateTo(cut);
  Emit(lengths, spine_dfs_pos_[first_changed], out);
}

Tree CanonicalTree(const Tpq& p, const std::vector<int32_t>& lengths,
                   LabelId bottom) {
  Tree t;
  CanonicalTreeInto(p, lengths, bottom, &t);
  return t;
}

void CanonicalTreeInto(const Tpq& p, const std::vector<int32_t>& lengths,
                       LabelId bottom, Tree* out) {
  assert(!p.empty());
  CanonicalTreeBuilder builder(p, bottom);
  builder.BuildFull(lengths, out);
}

Tree MinimalCanonicalTree(const Tpq& p, LabelId bottom) {
  return CanonicalTree(p, std::vector<int32_t>(DescendantEdges(p).size(), 0),
                       bottom);
}

int32_t LongestWildcardChain(const Tpq& q) {
  // chain[v] = length of the longest run of wildcard nodes ending at v and
  // connected by child edges.
  std::vector<int32_t> chain(q.size(), 0);
  int32_t best = 0;
  for (NodeId v = 0; v < q.size(); ++v) {
    if (!q.IsWildcard(v)) continue;
    chain[v] = 1;
    if (v != 0 && q.Edge(v) == EdgeKind::kChild && q.IsWildcard(q.Parent(v))) {
      chain[v] = chain[q.Parent(v)] + 1;
    }
    if (chain[v] > best) best = chain[v];
  }
  return best;
}

bool CanonicalLengthEnumerator::Next() {
  for (size_t i = lengths_.size(); i-- > 0;) {
    if (lengths_[i] < max_len_) {
      ++lengths_[i];
      for (size_t j = i + 1; j < lengths_.size(); ++j) lengths_[j] = 0;
      first_changed_ = i;
      return true;
    }
  }
  first_changed_ = 0;
  return false;
}

void CanonicalLengthEnumerator::SeekTo(uint64_t index) {
  uint64_t radix = static_cast<uint64_t>(max_len_) + 1;
  for (size_t i = lengths_.size(); i-- > 0;) {
    lengths_[i] = static_cast<int32_t>(index % radix);
    index /= radix;
  }
  first_changed_ = 0;
}

double CanonicalLengthEnumerator::TotalCount() const {
  return std::pow(static_cast<double>(max_len_) + 1.0,
                  static_cast<double>(lengths_.size()));
}

std::optional<uint64_t> CanonicalLengthEnumerator::TotalCountExact() const {
  uint64_t radix = static_cast<uint64_t>(max_len_) + 1;
  uint64_t total = 1;
  for (size_t i = 0; i < lengths_.size(); ++i) {
    if (total > UINT64_MAX / radix) return std::nullopt;
    total *= radix;
  }
  return total;
}

}  // namespace tpc
