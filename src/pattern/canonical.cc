#include "pattern/canonical.h"

#include <cassert>
#include <cmath>

namespace tpc {

std::vector<NodeId> DescendantEdges(const Tpq& p) {
  std::vector<NodeId> out;
  for (NodeId v = 1; v < p.size(); ++v) {
    if (p.Edge(v) == EdgeKind::kDescendant) out.push_back(v);
  }
  return out;
}

Tree CanonicalTree(const Tpq& p, const std::vector<int32_t>& lengths,
                   LabelId bottom) {
  Tree t;
  CanonicalTreeInto(p, lengths, bottom, &t);
  return t;
}

void CanonicalTreeInto(const Tpq& p, const std::vector<int32_t>& lengths,
                       LabelId bottom, Tree* out) {
  assert(!p.empty());
  out->Clear();
  Tree& t = *out;
  // Pattern node -> tree node; thread_local so the enumeration hot loops do
  // not reallocate it per canonical tree.
  thread_local std::vector<NodeId> image;
  image.assign(p.size(), kNoNode);
  size_t edge_index = 0;
  for (NodeId v = 0; v < p.size(); ++v) {
    LabelId label = p.IsWildcard(v) ? bottom : p.Label(v);
    if (v == 0) {
      image[v] = t.AddRoot(label);
      continue;
    }
    NodeId attach = image[p.Parent(v)];
    if (p.Edge(v) == EdgeKind::kDescendant) {
      assert(edge_index < lengths.size());
      int32_t len = lengths[edge_index++];
      for (int32_t i = 0; i < len; ++i) attach = t.AddChild(attach, bottom);
    }
    image[v] = t.AddChild(attach, label);
  }
  assert(edge_index == lengths.size());
}

Tree MinimalCanonicalTree(const Tpq& p, LabelId bottom) {
  return CanonicalTree(p, std::vector<int32_t>(DescendantEdges(p).size(), 0),
                       bottom);
}

int32_t LongestWildcardChain(const Tpq& q) {
  // chain[v] = length of the longest run of wildcard nodes ending at v and
  // connected by child edges.
  std::vector<int32_t> chain(q.size(), 0);
  int32_t best = 0;
  for (NodeId v = 0; v < q.size(); ++v) {
    if (!q.IsWildcard(v)) continue;
    chain[v] = 1;
    if (v != 0 && q.Edge(v) == EdgeKind::kChild && q.IsWildcard(q.Parent(v))) {
      chain[v] = chain[q.Parent(v)] + 1;
    }
    if (chain[v] > best) best = chain[v];
  }
  return best;
}

bool CanonicalLengthEnumerator::Next() {
  for (size_t i = 0; i < lengths_.size(); ++i) {
    if (lengths_[i] < max_len_) {
      ++lengths_[i];
      for (size_t j = 0; j < i; ++j) lengths_[j] = 0;
      return true;
    }
  }
  return false;
}

void CanonicalLengthEnumerator::SeekTo(uint64_t index) {
  uint64_t radix = static_cast<uint64_t>(max_len_) + 1;
  for (size_t i = 0; i < lengths_.size(); ++i) {
    lengths_[i] = static_cast<int32_t>(index % radix);
    index /= radix;
  }
}

double CanonicalLengthEnumerator::TotalCount() const {
  return std::pow(static_cast<double>(max_len_) + 1.0,
                  static_cast<double>(lengths_.size()));
}

std::optional<uint64_t> CanonicalLengthEnumerator::TotalCountExact() const {
  uint64_t radix = static_cast<uint64_t>(max_len_) + 1;
  uint64_t total = 1;
  for (size_t i = 0; i < lengths_.size(); ++i) {
    if (total > UINT64_MAX / radix) return std::nullopt;
    total *= radix;
  }
  return total;
}

}  // namespace tpc
