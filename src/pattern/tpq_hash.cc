#include "pattern/tpq_hash.h"

#include <algorithm>
#include <vector>

namespace tpc {
namespace {

/// splitmix64 finalizer: a cheap full-avalanche mix.
uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent fold (applied to child digests only after sorting them).
uint64_t Fold(uint64_t h, uint64_t v) {
  return Mix(h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2)));
}

// Domain-separation tags so a label can never be confused with a child
// digest or an edge kind.
constexpr uint64_t kNodeTag = 0x746e70635f6e6f64ULL;
constexpr uint64_t kChildEdgeTag = 0x2f;
constexpr uint64_t kDescendantEdgeTag = 0x2f2f;

}  // namespace

uint64_t CanonicalTpqHash(const Tpq& q) {
  if (q.empty()) return 0;
  const int32_t n = q.size();
  std::vector<uint64_t> digest(n);
  std::vector<uint64_t> child_digests;
  // Children have larger ids than their parent, so a reverse id scan is a
  // bottom-up traversal.
  for (NodeId v = n - 1; v >= 0; --v) {
    child_digests.clear();
    for (NodeId c = q.FirstChild(v); c != kNoNode; c = q.NextSibling(c)) {
      const uint64_t edge_tag = q.Edge(c) == EdgeKind::kChild
                                    ? kChildEdgeTag
                                    : kDescendantEdgeTag;
      child_digests.push_back(Mix(digest[c] ^ Mix(edge_tag)));
    }
    std::sort(child_digests.begin(), child_digests.end());
    uint64_t h = Mix(kNodeTag ^ static_cast<uint64_t>(q.Label(v)));
    h = Fold(h, static_cast<uint64_t>(child_digests.size()));
    for (uint64_t c : child_digests) h = Fold(h, c);
    digest[v] = h;
  }
  return digest[0];
}

TpqDigest CanonicalTpqDigest(const Tpq& q) {
  if (q.empty()) return {};
  const int32_t n = q.size();
  // The hi lane repeats the lo-lane construction under a different node tag
  // (domain separation), so the lanes are independent mixes of the same
  // structure.  Child digests are sorted as (lo, hi) pairs: where lo values
  // differ the order matches the lo-only sort, and where they tie the lo
  // fold is order-independent (equal values), so the lo lane reproduces
  // `CanonicalTpqHash` bit for bit.
  constexpr uint64_t kNodeTagHi = 0x746e70635f686933ULL;
  std::vector<std::pair<uint64_t, uint64_t>> digest(n);
  std::vector<std::pair<uint64_t, uint64_t>> child_digests;
  for (NodeId v = n - 1; v >= 0; --v) {
    child_digests.clear();
    for (NodeId c = q.FirstChild(v); c != kNoNode; c = q.NextSibling(c)) {
      const uint64_t edge_tag = q.Edge(c) == EdgeKind::kChild
                                    ? kChildEdgeTag
                                    : kDescendantEdgeTag;
      child_digests.emplace_back(Mix(digest[c].first ^ Mix(edge_tag)),
                                 Mix(digest[c].second ^ Mix(edge_tag * 33)));
    }
    std::sort(child_digests.begin(), child_digests.end());
    uint64_t lo = Mix(kNodeTag ^ static_cast<uint64_t>(q.Label(v)));
    uint64_t hi = Mix(kNodeTagHi ^ static_cast<uint64_t>(q.Label(v)));
    lo = Fold(lo, static_cast<uint64_t>(child_digests.size()));
    hi = Fold(hi, static_cast<uint64_t>(child_digests.size()));
    for (const auto& [clo, chi] : child_digests) {
      lo = Fold(lo, clo);
      hi = Fold(hi, chi);
    }
    digest[v] = {lo, hi};
  }
  return {digest[0].first, digest[0].second};
}

}  // namespace tpc
