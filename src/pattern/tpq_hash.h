// Canonical structural hashing of tree pattern queries.
//
// Tree pattern semantics never constrain sibling order (an embedding maps
// each pattern child independently — Definition 2.1), so two patterns that
// differ only in the order of siblings denote the same language.  The
// canonical hash makes such patterns collide on purpose: it is computed
// bottom-up over interned labels and edge kinds with every node's child
// digests sorted before mixing.  The query service hashes *minimized*
// patterns (contain/minimize.h), so queries that are equivalent via
// redundant-subtree removal collide too.
//
// Hashes are relative to a `LabelPool`: two patterns hash equal only if
// their labels were interned in pools assigning the same ids (the service
// keys one cache per pool).  Equal hashes do not *prove* structural
// equality — consumers that must be sound against collisions revalidate
// (the verdict cache replays refutation witnesses; see DESIGN.md).

#ifndef TPC_PATTERN_TPQ_HASH_H_
#define TPC_PATTERN_TPQ_HASH_H_

#include <cstdint>

#include "pattern/tpq.h"

namespace tpc {

/// Child-order-canonicalized structural hash of `q` (0 for the empty
/// pattern).  Invariant under sibling permutation; sensitive to labels,
/// wildcards, edge kinds and tree shape.
uint64_t CanonicalTpqHash(const Tpq& q);

/// 128-bit widening of `CanonicalTpqHash`: two independently-mixed 64-bit
/// lanes computed in one bottom-up pass, with child digests sorted as
/// (lo, hi) pairs so both lanes stay sibling-order invariant.  `lo` equals
/// `CanonicalTpqHash(q)` exactly (pair order and lo order fold lo
/// identically: ties in lo commute), so the 64-bit value remains the
/// in-memory fast-path key while `hi` shrinks the residual collision risk on
/// trusted "contained" entries to 2^-128 for the persistent tiers — the
/// subsumption lattice keys its nodes on the full digest, and snapshot
/// loading re-checks every reconstructed pattern against its stored digest.
struct TpqDigest {
  uint64_t lo = 0;
  uint64_t hi = 0;

  bool operator==(const TpqDigest& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

struct TpqDigestHash {
  size_t operator()(const TpqDigest& d) const {
    return static_cast<size_t>(d.lo ^ (d.hi * 0x9e3779b97f4a7c15ULL));
  }
};

TpqDigest CanonicalTpqDigest(const Tpq& q);

}  // namespace tpc

#endif  // TPC_PATTERN_TPQ_HASH_H_
