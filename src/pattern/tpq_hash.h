// Canonical structural hashing of tree pattern queries.
//
// Tree pattern semantics never constrain sibling order (an embedding maps
// each pattern child independently — Definition 2.1), so two patterns that
// differ only in the order of siblings denote the same language.  The
// canonical hash makes such patterns collide on purpose: it is computed
// bottom-up over interned labels and edge kinds with every node's child
// digests sorted before mixing.  The query service hashes *minimized*
// patterns (contain/minimize.h), so queries that are equivalent via
// redundant-subtree removal collide too.
//
// Hashes are relative to a `LabelPool`: two patterns hash equal only if
// their labels were interned in pools assigning the same ids (the service
// keys one cache per pool).  Equal hashes do not *prove* structural
// equality — consumers that must be sound against collisions revalidate
// (the verdict cache replays refutation witnesses; see DESIGN.md).

#ifndef TPC_PATTERN_TPQ_HASH_H_
#define TPC_PATTERN_TPQ_HASH_H_

#include <cstdint>

#include "pattern/tpq.h"

namespace tpc {

/// Child-order-canonicalized structural hash of `q` (0 for the empty
/// pattern).  Invariant under sibling permutation; sensitive to labels,
/// wildcards, edge kinds and tree shape.
uint64_t CanonicalTpqHash(const Tpq& q);

}  // namespace tpc

#endif  // TPC_PATTERN_TPQ_HASH_H_
