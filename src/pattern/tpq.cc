#include "pattern/tpq.h"

#include <algorithm>
#include <cassert>

namespace tpc {

NodeId Tpq::AddRoot(LabelId label) {
  assert(empty());
  labels_.push_back(label);
  parents_.push_back(kNoNode);
  edges_.push_back(EdgeKind::kChild);  // unused for the root
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  return 0;
}

NodeId Tpq::AddChild(NodeId parent, LabelId label, EdgeKind edge) {
  assert(parent >= 0 && parent < size());
  NodeId v = size();
  labels_.push_back(label);
  parents_.push_back(parent);
  edges_.push_back(edge);
  first_child_.push_back(kNoNode);
  next_sibling_.push_back(kNoNode);
  last_child_.push_back(kNoNode);
  if (first_child_[parent] == kNoNode) {
    first_child_[parent] = v;
  } else {
    next_sibling_[last_child_[parent]] = v;
  }
  last_child_[parent] = v;
  return v;
}

NodeId Tpq::Graft(NodeId parent, EdgeKind edge, const Tpq& sub,
                  NodeId sub_root) {
  NodeId copied_root = parent == kNoNode
                           ? AddRoot(sub.Label(sub_root))
                           : AddChild(parent, sub.Label(sub_root), edge);
  std::vector<std::pair<NodeId, NodeId>> queue;  // (source, target parent)
  for (NodeId c = sub.FirstChild(sub_root); c != kNoNode;
       c = sub.NextSibling(c)) {
    queue.emplace_back(c, copied_root);
  }
  for (size_t i = 0; i < queue.size(); ++i) {
    auto [src, dst_parent] = queue[i];
    NodeId dst = AddChild(dst_parent, sub.Label(src), sub.Edge(src));
    for (NodeId c = sub.FirstChild(src); c != kNoNode; c = sub.NextSibling(c)) {
      queue.emplace_back(c, dst);
    }
  }
  return copied_root;
}

std::vector<NodeId> Tpq::Children(NodeId v) const {
  std::vector<NodeId> out;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) {
    out.push_back(c);
  }
  return out;
}

int32_t Tpq::NumChildren(NodeId v) const {
  int32_t n = 0;
  for (NodeId c = first_child_[v]; c != kNoNode; c = next_sibling_[c]) ++n;
  return n;
}

int32_t Tpq::Depth(NodeId v) const {
  int32_t d = 0;
  for (NodeId u = parents_[v]; u != kNoNode; u = parents_[u]) ++d;
  return d;
}

int32_t Tpq::depth() const {
  if (empty()) return -1;
  std::vector<int32_t> depth(size(), 0);
  int32_t max_depth = 0;
  for (NodeId v = 1; v < size(); ++v) {
    depth[v] = depth[parents_[v]] + 1;
    max_depth = std::max(max_depth, depth[v]);
  }
  return max_depth;
}

Tpq Tpq::Subquery(NodeId v) const {
  Tpq out;
  out.Graft(kNoNode, EdgeKind::kChild, *this, v);
  return out;
}

bool Tpq::operator==(const Tpq& other) const {
  if (size() != other.size()) return false;
  if (empty()) return true;
  std::vector<std::pair<NodeId, NodeId>> stack = {{0, 0}};
  while (!stack.empty()) {
    auto [v, w] = stack.back();
    stack.pop_back();
    if (labels_[v] != other.labels_[w]) return false;
    if (v != 0 && edges_[v] != other.edges_[w]) return false;
    NodeId c1 = first_child_[v];
    NodeId c2 = other.first_child_[w];
    while (c1 != kNoNode && c2 != kNoNode) {
      stack.emplace_back(c1, c2);
      c1 = next_sibling_[c1];
      c2 = other.next_sibling_[c2];
    }
    if (c1 != kNoNode || c2 != kNoNode) return false;
  }
  return true;
}

void Tpq::AppendPath(NodeId v, const LabelPool& pool, std::string* out) const {
  out->append(pool.Name(labels_[v]));
  std::vector<NodeId> children = Children(v);
  if (children.empty()) return;
  // All children but the last are printed as bracketed predicates; the last
  // continues the main path.  This round-trips through ParseTpq.
  for (size_t i = 0; i + 1 < children.size(); ++i) {
    NodeId c = children[i];
    out->push_back('[');
    if (Edge(c) == EdgeKind::kDescendant) out->append("//");
    AppendPath(c, pool, out);
    out->push_back(']');
  }
  NodeId last = children.back();
  out->append(Edge(last) == EdgeKind::kDescendant ? "//" : "/");
  AppendPath(last, pool, out);
}

std::string Tpq::ToString(const LabelPool& pool) const {
  if (empty()) return "<empty>";
  std::string out;
  AppendPath(0, pool, &out);
  return out;
}

bool Fragment::Within(const Fragment& allowed) const {
  return (!child_edges || allowed.child_edges) &&
         (!descendant_edges || allowed.descendant_edges) &&
         (!wildcard || allowed.wildcard) && (!branching || allowed.branching);
}

std::string Fragment::ToString() const {
  std::string out = branching ? "TPQ(" : "PQ(";
  bool first = true;
  auto add = [&](const char* feature) {
    if (!first) out.push_back(',');
    out.append(feature);
    first = false;
  };
  if (child_edges) add("/");
  if (descendant_edges) add("//");
  if (wildcard) add("*");
  out.push_back(')');
  return out;
}

Fragment FragmentOf(const Tpq& q) {
  Fragment f;
  for (NodeId v = 0; v < q.size(); ++v) {
    if (q.IsWildcard(v)) f.wildcard = true;
    if (v != 0) {
      if (q.Edge(v) == EdgeKind::kChild) f.child_edges = true;
      if (q.Edge(v) == EdgeKind::kDescendant) f.descendant_edges = true;
    }
    if (q.NumChildren(v) > 1) f.branching = true;
  }
  return f;
}

bool IsPathQuery(const Tpq& q) { return !FragmentOf(q).branching; }

}  // namespace tpc
