#include "pattern/tpq_parser.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tpc {
namespace {

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' || c == ':' ||
         c == '\'' || c == '-' || c == '.';
}

/// Recursion cap for nested predicates: `a[a[a[...` otherwise recurses once
/// per bracket and overflows the stack on adversarial input long before any
/// semantic limit applies.
constexpr int kMaxDepth = 256;

class TpqParser {
 public:
  TpqParser(std::string_view input, LabelPool* pool)
      : input_(input), pool_(pool) {}

  ParseResult<Tpq> Parse() {
    Tpq q;
    if (!ParsePattern(&q, kNoNode, EdgeKind::kChild)) {
      return ParseResult<Tpq>::Error(error_, pos_);
    }
    SkipSpace();
    if (pos_ != input_.size()) {
      return ParseResult<Tpq>::Error("trailing input after pattern", pos_);
    }
    return ParseResult<Tpq>::Ok(std::move(q));
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const char* message) {
    error_ = message;
    return false;
  }

  /// Parses an optional separator.  Returns true and sets `*edge` if present.
  bool TrySeparator(EdgeKind* edge) {
    SkipSpace();
    if (pos_ >= input_.size() || input_[pos_] != '/') return false;
    ++pos_;
    if (pos_ < input_.size() && input_[pos_] == '/') {
      ++pos_;
      *edge = EdgeKind::kDescendant;
    } else {
      *edge = EdgeKind::kChild;
    }
    return true;
  }

  /// Parses `step (sep step)*`, attaching the first step below `parent` with
  /// `first_edge` (or as root if `parent == kNoNode`).
  bool ParsePattern(Tpq* q, NodeId parent, EdgeKind first_edge) {
    if (++depth_ > kMaxDepth) return Fail("pattern nesting too deep");
    NodeId current;
    bool ok = ParseStep(q, parent, first_edge, &current);
    EdgeKind edge;
    while (ok && TrySeparator(&edge)) {
      ok = ParseStep(q, current, edge, &current);
    }
    --depth_;
    return ok;
  }

  bool ParseStep(Tpq* q, NodeId parent, EdgeKind edge, NodeId* out) {
    SkipSpace();
    LabelId label;
    if (pos_ < input_.size() && input_[pos_] == '*') {
      ++pos_;
      label = kWildcard;
    } else {
      size_t start = pos_;
      while (pos_ < input_.size() && IsLabelChar(input_[pos_])) ++pos_;
      if (pos_ == start) return Fail("expected a label or '*'");
      label = pool_->Intern(input_.substr(start, pos_ - start));
    }
    NodeId v = parent == kNoNode ? q->AddRoot(label)
                                 : q->AddChild(parent, label, edge);
    // Predicates.
    SkipSpace();
    while (pos_ < input_.size() && input_[pos_] == '[') {
      ++pos_;
      EdgeKind branch_edge = EdgeKind::kChild;
      TrySeparator(&branch_edge);
      if (!ParsePattern(q, v, branch_edge)) return false;
      SkipSpace();
      if (pos_ >= input_.size() || input_[pos_] != ']') {
        return Fail("expected ']'");
      }
      ++pos_;
      SkipSpace();
    }
    *out = v;
    return true;
  }

  std::string_view input_;
  LabelPool* pool_;
  size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

}  // namespace

ParseResult<Tpq> ParseTpq(std::string_view input, LabelPool* pool) {
  return TpqParser(input, pool).Parse();
}

std::optional<Tpq> ParseTpqChecked(std::string_view input, LabelPool* pool,
                                   ParseDiagnostic* diag) {
  ParseResult<Tpq> result = ParseTpq(input, pool);
  if (!result.ok()) {
    *diag = DiagnoseAt(input, result.error(), result.error_offset());
    return std::nullopt;
  }
  return std::move(result.value());
}

Tpq MustParseTpq(std::string_view input, LabelPool* pool) {
  ParseResult<Tpq> result = ParseTpq(input, pool);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseTpq(\"%.*s\"): %s (at offset %zu)\n",
                 static_cast<int>(input.size()), input.data(),
                 result.error().c_str(), result.error_offset());
    std::abort();
  }
  return std::move(result.value());
}

}  // namespace tpc
