// Canonical trees (canonical models) of a pattern, after Miklau & Suciu [34]
// and Appendix B.1.1 of the paper.
//
// A canonical tree of p is obtained by (a) replacing every wildcard by a
// fresh letter `⊥` and (b) replacing every descendant edge by a chain of
// zero or more `⊥`-nodes followed by a child edge.  Canonical trees
// characterize containment: L_w(p) ⊆ L_w(q) iff every canonical tree of p is
// in L_w(q), and it suffices to consider chains of length at most
// w(q) + 1, where w(q) is the longest run of consecutive wildcard nodes
// connected by child edges in q [34].

#ifndef TPC_PATTERN_CANONICAL_H_
#define TPC_PATTERN_CANONICAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/label.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Ids (in pattern pre-order) of the descendant edges of `p`; entry i is the
/// pattern node whose incoming edge is the i-th descendant edge.
std::vector<NodeId> DescendantEdges(const Tpq& p);

/// Builds the canonical tree of `p` where the i-th descendant edge is
/// expanded by a chain of `lengths[i]` nodes labelled `bottom`, and every
/// wildcard becomes `bottom`.  `lengths.size()` must equal the number of
/// descendant edges of `p`.
Tree CanonicalTree(const Tpq& p, const std::vector<int32_t>& lengths,
                   LabelId bottom);

/// As `CanonicalTree`, but builds into `*out` (cleared first).  The
/// enumeration hot loops reuse one scratch tree this way instead of
/// allocating a fresh arena per length vector.
void CanonicalTreeInto(const Tpq& p, const std::vector<int32_t>& lengths,
                       LabelId bottom, Tree* out);

/// The canonical tree with all chains of length zero.
Tree MinimalCanonicalTree(const Tpq& p, LabelId bottom);

/// Longest run of consecutive wildcard nodes connected by child edges in `q`.
int32_t LongestWildcardChain(const Tpq& q);

/// Enumerates all length vectors in {0..max_len}^k for the k descendant
/// edges of a pattern.  Usage:
///   CanonicalLengthEnumerator e(k, max_len);
///   do { ... e.lengths() ... } while (e.Next());
class CanonicalLengthEnumerator {
 public:
  CanonicalLengthEnumerator(size_t num_edges, int32_t max_len)
      : lengths_(num_edges, 0), max_len_(max_len) {}

  const std::vector<int32_t>& lengths() const { return lengths_; }

  /// Advances to the next vector; returns false after the last one.
  bool Next();

  /// Jumps to the `index`-th vector of the enumeration order (the vector is
  /// a little-endian base-(max_len+1) counter), so the space can be
  /// partitioned into contiguous chunks for parallel sweeps.
  /// Precondition: `index < TotalCountExact()` when the latter is finite.
  void SeekTo(uint64_t index);

  /// Total number of vectors ((max_len+1)^num_edges) as double, for planning.
  double TotalCount() const;

  /// Exact total when it fits in uint64; nullopt on overflow (such spaces
  /// cannot be swept anyway — the budget stops them first).
  std::optional<uint64_t> TotalCountExact() const;

 private:
  std::vector<int32_t> lengths_;
  int32_t max_len_;
};

}  // namespace tpc

#endif  // TPC_PATTERN_CANONICAL_H_
