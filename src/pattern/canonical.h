// Canonical trees (canonical models) of a pattern, after Miklau & Suciu [34]
// and Appendix B.1.1 of the paper.
//
// A canonical tree of p is obtained by (a) replacing every wildcard by a
// fresh letter `⊥` and (b) replacing every descendant edge by a chain of
// zero or more `⊥`-nodes followed by a child edge.  Canonical trees
// characterize containment: L_w(p) ⊆ L_w(q) iff every canonical tree of p is
// in L_w(q), and it suffices to consider chains of length at most
// w(q) + 1, where w(q) is the longest run of consecutive wildcard nodes
// connected by child edges in q [34].
//
// The enumeration hot loops of the coNP procedure are *incremental*: the
// length-vector enumerator reports the lowest spine (descendant edge) whose
// chain length changed, and `CanonicalTreeBuilder` lays trees out spine-major
// (document/DFS order), so the tree prefix before the first changed spine
// keeps identical node ids and labels across consecutive iterations and only
// the suffix needs rebuilding.

#ifndef TPC_PATTERN_CANONICAL_H_
#define TPC_PATTERN_CANONICAL_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/label.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Ids of the pattern nodes whose incoming edge is a descendant edge, in
/// document (DFS) order — the spine order used by `CanonicalTreeBuilder`
/// and by the `lengths` vectors below.  (For patterns whose node ids are
/// already in document order this coincides with id order.)
std::vector<NodeId> DescendantEdges(const Tpq& p);

/// Builds the canonical tree of `p` where the i-th descendant edge (in the
/// `DescendantEdges` order) is expanded by a chain of `lengths[i]` nodes
/// labelled `bottom`, and every wildcard becomes `bottom`.  `lengths.size()`
/// must equal the number of descendant edges of `p`.
Tree CanonicalTree(const Tpq& p, const std::vector<int32_t>& lengths,
                   LabelId bottom);

/// As `CanonicalTree`, but builds into `*out` (cleared first).  The
/// enumeration hot loops reuse one scratch tree this way instead of
/// allocating a fresh arena per length vector.
void CanonicalTreeInto(const Tpq& p, const std::vector<int32_t>& lengths,
                       LabelId bottom, Tree* out);

/// The canonical tree with all chains of length zero.
Tree MinimalCanonicalTree(const Tpq& p, LabelId bottom);

/// Longest run of consecutive wildcard nodes connected by child edges in `q`.
int32_t LongestWildcardChain(const Tpq& q);

/// Spine-major canonical tree construction for the enumeration hot loops.
///
/// The builder fixes the document (DFS) order of the pattern once and always
/// emits canonical-tree nodes in that order, expanding the i-th descendant
/// edge met in document order by `lengths[i]` ⊥-nodes.  Two invariants
/// follow (see DESIGN.md, "Incremental sweep"):
///   * every subtree of the emitted tree occupies a contiguous node-id range
///     (the precondition of `Tree::TruncateTo`);
///   * the tree prefix laid out before the chain of spine s depends only on
///     `lengths[0..s-1]`, so when an enumeration step changes only spines
///     >= s (`CanonicalLengthEnumerator::first_changed`), that prefix keeps
///     identical node ids, labels and structure, and `BuildSuffix` rebuilds
///     just the tail.
class CanonicalTreeBuilder {
 public:
  CanonicalTreeBuilder(const Tpq& p, LabelId bottom);

  /// Number of descendant edges (spines) of the pattern.
  size_t num_spines() const { return spine_dfs_pos_.size(); }

  /// Rebuilds the whole canonical tree for `lengths` into `*out`.
  void BuildFull(const std::vector<int32_t>& lengths, Tree* out);

  /// Truncates `*out` to the prefix unaffected by spines >= `first_changed`
  /// and re-emits the rest.  Precondition: the previous `Build*` call on the
  /// same `*out` used lengths agreeing on every spine < `first_changed`.
  void BuildSuffix(const std::vector<int32_t>& lengths, size_t first_changed,
                   Tree* out);

  /// Tree node id where spine `s`'s chain begins in the last built tree —
  /// the first node whose identity may depend on `lengths[s..]`.  Only valid
  /// after a `Build*` call whose lengths cover spine `s`.
  NodeId spine_start(size_t s) const { return spine_start_[s]; }

 private:
  void Emit(const std::vector<int32_t>& lengths, size_t dfs_begin, Tree* out);

  const Tpq& p_;
  std::vector<LabelId> emit_label_;    // per pattern node; ⊥ for wildcards
  std::vector<NodeId> dfs_order_;      // pattern nodes in document order
  std::vector<size_t> spine_of_dfs_;   // dfs position -> spine index or npos
  std::vector<size_t> spine_dfs_pos_;  // spine -> dfs position of its target
  std::vector<NodeId> image_;          // pattern node -> tree node (persisted
                                       // across builds; prefix entries stay
                                       // valid under suffix rebuilds)
  std::vector<NodeId> spine_start_;    // spine -> first tree id of its chain
  LabelId bottom_;
};

/// Enumerates all length vectors in {0..max_len}^k for the k descendant
/// edges of a pattern.  Usage:
///   CanonicalLengthEnumerator e(k, max_len);
///   do { ... e.lengths() ... } while (e.Next());
///
/// The counter is big-endian: the LAST index is least significant, so
/// consecutive vectors differ only in a suffix of spine indices — the
/// property the incremental sweep relies on.
class CanonicalLengthEnumerator {
 public:
  CanonicalLengthEnumerator(size_t num_edges, int32_t max_len)
      : lengths_(num_edges, 0), max_len_(max_len) {}

  const std::vector<int32_t>& lengths() const { return lengths_; }

  /// Advances to the next vector; returns false after the last one.
  bool Next();

  /// Lowest spine index changed by the last `Next()`; every spine >= this
  /// index may have changed, every spine below it is untouched.  0 after
  /// construction or `SeekTo` (everything counts as fresh).
  size_t first_changed() const { return first_changed_; }

  /// Jumps to the `index`-th vector of the enumeration order (the vector is
  /// a big-endian base-(max_len+1) counter), so the space can be
  /// partitioned into contiguous chunks for parallel sweeps.
  /// Precondition: `index < TotalCountExact()` when the latter is finite.
  void SeekTo(uint64_t index);

  /// Total number of vectors ((max_len+1)^num_edges) as double, for planning.
  double TotalCount() const;

  /// Exact total when it fits in uint64; nullopt on overflow (such spaces
  /// cannot be swept anyway — the budget stops them first).
  std::optional<uint64_t> TotalCountExact() const;

 private:
  std::vector<int32_t> lengths_;
  int32_t max_len_;
  size_t first_changed_ = 0;
};

}  // namespace tpc

#endif  // TPC_PATTERN_CANONICAL_H_
