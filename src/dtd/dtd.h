// Document Type Definitions, abstracted as extended context-free grammars
// (Definition 2.2 of the paper).
//
// A DTD maps each alphabet symbol to a regular expression over the alphabet
// and designates a set of start symbols.  A tree satisfies the DTD if its
// root is labelled by a start symbol and, at every node, the left-to-right
// word of children labels is in the language of the node label's rule.
//
// As in the paper, all algorithms assume *reduced* DTDs: every alphabet
// symbol occurs in some tree of L(d).  `Reduce()` computes the reduction in
// polynomial time.

#ifndef TPC_DTD_DTD_H_
#define TPC_DTD_DTD_H_

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <string>
#include <vector>

#include "base/label.h"
#include "base/parse_result.h"
#include "regex/nfa.h"
#include "regex/regex.h"
#include "tree/tree.h"

namespace tpc {

class Nta;  // automata/nta.h; kept incomplete here to avoid a header cycle

/// A DTD (Σ, d, S_d).  Symbols without an explicit rule implicitly map to ε
/// (they must be leaves), following the convention of Example 7.3.
class Dtd {
 public:
  Dtd() = default;

  /// Declares `symbol` part of the alphabet (idempotent).
  void AddSymbol(LabelId symbol);

  /// Sets the rule `symbol -> content`.  Adds `symbol` and all labels of
  /// `content` to the alphabet.
  void SetRule(LabelId symbol, Regex content);

  /// Adds a start symbol (and puts it in the alphabet).
  void AddStart(LabelId symbol);

  const std::vector<LabelId>& alphabet() const { return alphabet_; }
  const std::vector<LabelId>& start() const { return start_; }
  bool IsStart(LabelId symbol) const;
  bool InAlphabet(LabelId symbol) const;

  /// The rule for `symbol` (ε if none was set).
  const Regex& Rule(LabelId symbol) const;

  /// The compiled (Glushkov) automaton of `symbol`'s rule, cached.
  const Nfa& RuleNfa(LabelId symbol) const;

  /// The tree automaton `Nta::FromDtd(*this)`, built once per Dtd instance
  /// and invalidated by the mutators.  Callers that intersect or complement
  /// against the same DTD repeatedly share one build.
  const Nta& Automaton() const;

  /// True iff `t` satisfies this DTD (root label in S_d, all content models
  /// respected).
  bool Satisfies(const Tree& t) const;

  /// Like `Satisfies` but ignores the start-symbol requirement on the root.
  bool SatisfiesRules(const Tree& t) const;

  /// The DTD `d^a`: same rules, start set {a} (Appendix notation).
  Dtd WithStart(LabelId a) const;

  /// Computes the reduced, equivalent DTD: only symbols that are both
  /// generating (derive a finite tree) and reachable from a generating start
  /// symbol remain; dead letters are pruned from the rules.
  Dtd Reduce() const;

  /// True iff every alphabet symbol occurs in some tree of L(d).
  bool IsReduced() const;

  /// Symbols that can derive a finite tree.
  std::vector<LabelId> GeneratingSymbols() const;

  /// True iff L(d) is empty (no start symbol is generating).
  bool IsEmptyLanguage() const;

  /// A smallest tree in L(d^a), if `a` is generating.
  /// Returns an empty tree otherwise.
  Tree SmallestTree(LabelId a) const;

  /// Samples a random tree from L(d), biased to at most ~`size_budget`
  /// nodes (hard bounds enforced by steering derivations toward short
  /// completions).  Precondition: L(d) is nonempty.
  Tree SampleTree(std::mt19937* rng, int32_t size_budget) const;

  /// Total size |Σ| + |S_d| + Σ|d(a)| as defined in the paper.
  int32_t Size() const;

  std::string ToString(const LabelPool& pool) const;

 private:
  /// Expands one symbol during sampling: appends children of `node`.
  void SampleChildren(NodeId node, Tree* t, std::mt19937* rng,
                      int32_t* budget) const;

  std::vector<LabelId> alphabet_;  // sorted
  std::vector<LabelId> start_;     // sorted
  std::map<LabelId, Regex> rules_;
  mutable std::map<LabelId, Nfa> nfa_cache_;
  mutable std::map<LabelId, int64_t> cost_cache_;  // min tree size per symbol
  // shared_ptr (not unique_ptr): Nta is incomplete here, and copied Dtds may
  // share the cache until a mutator resets it.
  mutable std::shared_ptr<const Nta> nta_cache_;
};

/// Parses a DTD.  Concrete syntax (whitespace insignificant):
///   root: a | b ;
///   a -> b c* ;
///   b -> eps ;
/// Each clause ends with `;`.  `root:` may appear once with a `|`-separated
/// list of start symbols.  Symbols without rules default to ε.
ParseResult<Dtd> ParseDtd(std::string_view input, LabelPool* pool);

/// Non-aborting parse for untrusted input: on failure returns std::nullopt
/// and fills `*diag` with the message and 1-based line/column.
std::optional<Dtd> ParseDtdChecked(std::string_view input, LabelPool* pool,
                                   ParseDiagnostic* diag);

/// Parses or aborts; for trusted inputs in tests and examples.
Dtd MustParseDtd(std::string_view input, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_DTD_DTD_H_
