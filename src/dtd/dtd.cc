#include "dtd/dtd.h"

#include <algorithm>

#include "automata/nta.h"
#include <cassert>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>
#include <set>

namespace tpc {

namespace {

constexpr int64_t kInfCost = std::numeric_limits<int64_t>::max() / 4;

const Regex& EpsilonRule() {
  static const Regex* kEpsilon = new Regex(Regex::Epsilon());
  return *kEpsilon;
}

/// Replaces letters outside `allowed` by the empty set and simplifies.
Regex RestrictRegex(const Regex& r, const std::set<LabelId>& allowed) {
  switch (r.kind()) {
    case Regex::Kind::kEmptySet:
    case Regex::Kind::kEpsilon:
      return r.kind() == Regex::Kind::kEmptySet ? Regex::EmptySet()
                                                : Regex::Epsilon();
    case Regex::Kind::kLetter:
      return allowed.count(r.letter()) ? Regex::Letter(r.letter())
                                       : Regex::EmptySet();
    case Regex::Kind::kConcat: {
      std::vector<Regex> parts;
      for (const Regex& c : r.children()) {
        Regex rc = RestrictRegex(c, allowed);
        if (rc.kind() == Regex::Kind::kEmptySet) return Regex::EmptySet();
        if (rc.kind() == Regex::Kind::kEpsilon) continue;
        parts.push_back(std::move(rc));
      }
      return Regex::Concat(std::move(parts));
    }
    case Regex::Kind::kUnion: {
      std::vector<Regex> parts;
      for (const Regex& c : r.children()) {
        Regex rc = RestrictRegex(c, allowed);
        if (rc.kind() == Regex::Kind::kEmptySet) continue;
        parts.push_back(std::move(rc));
      }
      return Regex::Union(std::move(parts));
    }
    case Regex::Kind::kStar: {
      Regex rc = RestrictRegex(r.children()[0], allowed);
      if (rc.kind() == Regex::Kind::kEmptySet ||
          rc.kind() == Regex::Kind::kEpsilon) {
        return Regex::Epsilon();
      }
      return Regex::Star(std::move(rc));
    }
    case Regex::Kind::kPlus: {
      Regex rc = RestrictRegex(r.children()[0], allowed);
      if (rc.kind() == Regex::Kind::kEmptySet) return Regex::EmptySet();
      return Regex::Plus(std::move(rc));
    }
    case Regex::Kind::kOptional: {
      Regex rc = RestrictRegex(r.children()[0], allowed);
      if (rc.kind() == Regex::Kind::kEmptySet) return Regex::Epsilon();
      return Regex::Optional(std::move(rc));
    }
  }
  return Regex::EmptySet();
}

/// True iff the NFA accepts some word over `allowed` symbols.
bool AcceptsSomeWordOver(const Nfa& nfa, const std::set<LabelId>& allowed) {
  std::vector<bool> visited(nfa.num_states, false);
  std::vector<int32_t> stack = {nfa.initial};
  visited[nfa.initial] = true;
  while (!stack.empty()) {
    int32_t q = stack.back();
    stack.pop_back();
    if (nfa.accepting[q]) return true;
    for (const auto& [s, target] : nfa.transitions[q]) {
      if (!visited[target] && allowed.count(s)) {
        visited[target] = true;
        stack.push_back(target);
      }
    }
  }
  return false;
}

}  // namespace

void Dtd::AddSymbol(LabelId symbol) {
  auto it = std::lower_bound(alphabet_.begin(), alphabet_.end(), symbol);
  if (it == alphabet_.end() || *it != symbol) {
    alphabet_.insert(it, symbol);
    nta_cache_.reset();
  }
}

void Dtd::SetRule(LabelId symbol, Regex content) {
  AddSymbol(symbol);
  for (LabelId l : content.Labels()) AddSymbol(l);
  nfa_cache_.clear();
  cost_cache_.clear();
  nta_cache_.reset();
  rules_.insert_or_assign(symbol, std::move(content));
}

void Dtd::AddStart(LabelId symbol) {
  AddSymbol(symbol);
  auto it = std::lower_bound(start_.begin(), start_.end(), symbol);
  if (it == start_.end() || *it != symbol) {
    start_.insert(it, symbol);
    nta_cache_.reset();
  }
}

bool Dtd::IsStart(LabelId symbol) const {
  return std::binary_search(start_.begin(), start_.end(), symbol);
}

bool Dtd::InAlphabet(LabelId symbol) const {
  return std::binary_search(alphabet_.begin(), alphabet_.end(), symbol);
}

const Regex& Dtd::Rule(LabelId symbol) const {
  auto it = rules_.find(symbol);
  return it == rules_.end() ? EpsilonRule() : it->second;
}

const Nfa& Dtd::RuleNfa(LabelId symbol) const {
  auto it = nfa_cache_.find(symbol);
  if (it == nfa_cache_.end()) {
    it = nfa_cache_.emplace(symbol, Nfa::FromRegex(Rule(symbol))).first;
  }
  return it->second;
}

const Nta& Dtd::Automaton() const {
  if (!nta_cache_) {
    nta_cache_ = std::make_shared<const Nta>(Nta::FromDtd(*this));
  }
  return *nta_cache_;
}

bool Dtd::SatisfiesRules(const Tree& t) const {
  if (t.empty()) return false;
  const TreeView view = t.View();
  std::vector<Symbol> word;
  for (int32_t i = 0; i < view.size(); ++i) {
    const LabelId label = view.LabelAtPost(i);
    if (!InAlphabet(label)) return false;
    // Child roots via span jumps, right-to-left; the content-model word
    // reads left-to-right, so reverse.
    word.clear();
    for (int32_t c = view.LastChild(i); c >= view.SpanBegin(i);
         c = view.PrevSibling(c)) {
      word.push_back(view.LabelAtPost(c));
    }
    std::reverse(word.begin(), word.end());
    if (!RuleNfa(label).Accepts(word)) return false;
  }
  return true;
}

bool Dtd::Satisfies(const Tree& t) const {
  if (t.empty() || !IsStart(t.Label(0))) return false;
  return SatisfiesRules(t);
}

Dtd Dtd::WithStart(LabelId a) const {
  Dtd out = *this;
  out.start_.clear();
  out.AddStart(a);
  return out;
}

std::vector<LabelId> Dtd::GeneratingSymbols() const {
  std::set<LabelId> generating;
  bool changed = true;
  while (changed) {
    changed = false;
    for (LabelId a : alphabet_) {
      if (generating.count(a)) continue;
      if (AcceptsSomeWordOver(RuleNfa(a), generating)) {
        generating.insert(a);
        changed = true;
      }
    }
  }
  return {generating.begin(), generating.end()};
}

bool Dtd::IsEmptyLanguage() const {
  std::vector<LabelId> gen = GeneratingSymbols();
  for (LabelId s : start_) {
    if (std::binary_search(gen.begin(), gen.end(), s)) return false;
  }
  return true;
}

Dtd Dtd::Reduce() const {
  std::vector<LabelId> gen_vec = GeneratingSymbols();
  std::set<LabelId> generating(gen_vec.begin(), gen_vec.end());
  // Reachability through generating contexts: a symbol b is reachable if it
  // labels a node of some tree in L(d).  Start from generating start symbols;
  // from a reachable a, the letters usable in a word of L(d(a)) over
  // generating symbols are those on a path from a forward-reachable state to
  // a backward-coreachable state.
  std::set<LabelId> reachable;
  std::vector<LabelId> frontier;
  for (LabelId s : start_) {
    if (generating.count(s) && reachable.insert(s).second) {
      frontier.push_back(s);
    }
  }
  while (!frontier.empty()) {
    LabelId a = frontier.back();
    frontier.pop_back();
    const Nfa& nfa = RuleNfa(a);
    // Forward-reachable states over generating symbols.
    std::vector<bool> fwd(nfa.num_states, false);
    std::vector<int32_t> stack = {nfa.initial};
    fwd[nfa.initial] = true;
    while (!stack.empty()) {
      int32_t q = stack.back();
      stack.pop_back();
      for (const auto& [s, t] : nfa.transitions[q]) {
        if (generating.count(s) && !fwd[t]) {
          fwd[t] = true;
          stack.push_back(t);
        }
      }
    }
    // Backward-coreachable states (to accepting) over generating symbols.
    std::vector<std::vector<int32_t>> rev(nfa.num_states);
    for (int32_t q = 0; q < nfa.num_states; ++q) {
      for (const auto& [s, t] : nfa.transitions[q]) {
        if (generating.count(s)) rev[t].push_back(q);
      }
    }
    std::vector<bool> bwd(nfa.num_states, false);
    for (int32_t q = 0; q < nfa.num_states; ++q) {
      if (nfa.accepting[q] && !bwd[q]) {
        bwd[q] = true;
        stack.push_back(q);
      }
    }
    while (!stack.empty()) {
      int32_t q = stack.back();
      stack.pop_back();
      for (int32_t p : rev[q]) {
        if (!bwd[p]) {
          bwd[p] = true;
          stack.push_back(p);
        }
      }
    }
    // Letters on useful paths.
    for (int32_t q = 0; q < nfa.num_states; ++q) {
      if (!fwd[q]) continue;
      for (const auto& [s, t] : nfa.transitions[q]) {
        if (generating.count(s) && bwd[t] && reachable.insert(s).second) {
          frontier.push_back(s);
        }
      }
    }
  }

  Dtd out;
  for (LabelId a : reachable) {
    out.AddSymbol(a);
    out.SetRule(a, RestrictRegex(Rule(a), reachable));
  }
  for (LabelId s : start_) {
    if (reachable.count(s)) out.AddStart(s);
  }
  return out;
}

bool Dtd::IsReduced() const {
  Dtd reduced = Reduce();
  return reduced.alphabet() == alphabet_ && reduced.start() == start_;
}

Tree Dtd::SmallestTree(LabelId a) const {
  // Fixpoint: cost(b) = 1 + min over accepting NFA paths of sum of costs.
  if (cost_cache_.empty()) {
    for (LabelId b : alphabet_) cost_cache_[b] = kInfCost;
    bool changed = true;
    while (changed) {
      changed = false;
      for (LabelId b : alphabet_) {
        const Nfa& nfa = RuleNfa(b);
        // Dijkstra over NFA states, edge weight = current cost of symbol.
        std::vector<int64_t> dist(nfa.num_states, kInfCost);
        dist[nfa.initial] = 0;
        using Entry = std::pair<int64_t, int32_t>;
        std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
        pq.emplace(0, nfa.initial);
        int64_t best = kInfCost;
        while (!pq.empty()) {
          auto [d, q] = pq.top();
          pq.pop();
          if (d > dist[q]) continue;
          if (nfa.accepting[q]) best = std::min(best, d);
          for (const auto& [s, t] : nfa.transitions[q]) {
            int64_t w = cost_cache_[s];
            if (w >= kInfCost) continue;
            if (d + w < dist[t]) {
              dist[t] = d + w;
              pq.emplace(dist[t], t);
            }
          }
        }
        int64_t new_cost = best >= kInfCost ? kInfCost : best + 1;
        if (new_cost < cost_cache_[b]) {
          cost_cache_[b] = new_cost;
          changed = true;
        }
      }
    }
  }
  if (!InAlphabet(a) || cost_cache_[a] >= kInfCost) return Tree();
  // Reconstruct: expand each node with its cheapest word.
  Tree t(a);
  for (NodeId v = 0; v < t.size(); ++v) {
    LabelId b = t.Label(v);
    const Nfa& nfa = RuleNfa(b);
    // Dijkstra with parent pointers to extract the cheapest accepting word.
    std::vector<int64_t> dist(nfa.num_states, kInfCost);
    std::vector<std::pair<int32_t, LabelId>> parent(nfa.num_states,
                                                    {-1, kNoLabel});
    dist[nfa.initial] = 0;
    using Entry = std::pair<int64_t, int32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    pq.emplace(0, nfa.initial);
    int32_t best_state = -1;
    int64_t best = kInfCost;
    while (!pq.empty()) {
      auto [d, q] = pq.top();
      pq.pop();
      if (d > dist[q]) continue;
      if (nfa.accepting[q] && d < best) {
        best = d;
        best_state = q;
      }
      for (const auto& [s, tgt] : nfa.transitions[q]) {
        int64_t w = cost_cache_[s];
        if (w >= kInfCost) continue;
        if (d + w < dist[tgt]) {
          dist[tgt] = d + w;
          parent[tgt] = {q, s};
          pq.emplace(dist[tgt], tgt);
        }
      }
    }
    assert(best_state >= 0);
    std::vector<LabelId> word;
    for (int32_t q = best_state; parent[q].first >= 0; q = parent[q].first) {
      word.push_back(parent[q].second);
    }
    std::reverse(word.begin(), word.end());
    for (LabelId c : word) t.AddChild(v, c);
  }
  return t;
}

void Dtd::SampleChildren(NodeId node, Tree* t, std::mt19937* rng,
                         int32_t* budget) const {
  LabelId a = t->Label(node);
  const Nfa& nfa = RuleNfa(a);
  // Min completion cost from each NFA state (in tree nodes), via backward
  // Dijkstra over reversed transitions weighted by symbol costs.
  SmallestTree(a);  // ensure cost_cache_ is populated
  std::vector<int64_t> completion(nfa.num_states, kInfCost);
  {
    std::vector<std::vector<std::pair<Symbol, int32_t>>> rev(nfa.num_states);
    for (int32_t q = 0; q < nfa.num_states; ++q) {
      for (const auto& [s, tgt] : nfa.transitions[q]) {
        rev[tgt].emplace_back(s, q);
      }
    }
    using Entry = std::pair<int64_t, int32_t>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    for (int32_t q = 0; q < nfa.num_states; ++q) {
      if (nfa.accepting[q]) {
        completion[q] = 0;
        pq.emplace(0, q);
      }
    }
    while (!pq.empty()) {
      auto [d, q] = pq.top();
      pq.pop();
      if (d > completion[q]) continue;
      for (const auto& [s, p] : rev[q]) {
        int64_t w = cost_cache_.at(s);
        if (w >= kInfCost) continue;
        if (d + w < completion[p]) {
          completion[p] = d + w;
          pq.emplace(completion[p], p);
        }
      }
    }
  }
  int32_t state = nfa.initial;
  while (true) {
    // Candidate moves that still admit completion within a sane bound.
    std::vector<std::pair<Symbol, int32_t>> moves;
    for (const auto& [s, tgt] : nfa.transitions[state]) {
      int64_t w = cost_cache_.at(s);
      if (w >= kInfCost || completion[tgt] >= kInfCost) continue;
      if (w + completion[tgt] <= std::max<int64_t>(*budget, 0)) {
        moves.emplace_back(s, tgt);
      }
    }
    bool can_stop = nfa.accepting[state];
    if (moves.empty() && can_stop) break;
    if (moves.empty()) {
      // Must continue along the cheapest completion even over budget.
      Symbol best_s = 0;
      int32_t best_t = -1;
      int64_t best_cost = kInfCost;
      for (const auto& [s, tgt] : nfa.transitions[state]) {
        int64_t w = cost_cache_.at(s);
        if (w >= kInfCost || completion[tgt] >= kInfCost) continue;
        if (w + completion[tgt] < best_cost) {
          best_cost = w + completion[tgt];
          best_s = s;
          best_t = tgt;
        }
      }
      assert(best_t >= 0);
      NodeId child = t->AddChild(node, best_s);
      *budget -= static_cast<int32_t>(cost_cache_.at(best_s));
      state = best_t;
      (void)child;
      continue;
    }
    // Randomly stop (if allowed) or take a random feasible move.
    std::uniform_int_distribution<size_t> pick(0, moves.size() - (can_stop ? 0 : 1));
    size_t i = pick(*rng);
    if (can_stop && i == moves.size()) break;
    auto [s, tgt] = moves[i];
    t->AddChild(node, s);
    *budget -= static_cast<int32_t>(cost_cache_.at(s));
    state = tgt;
  }
}

Tree Dtd::SampleTree(std::mt19937* rng, int32_t size_budget) const {
  std::vector<LabelId> gen = GeneratingSymbols();
  std::vector<LabelId> candidates;
  for (LabelId s : start_) {
    if (std::binary_search(gen.begin(), gen.end(), s)) candidates.push_back(s);
  }
  assert(!candidates.empty() && "SampleTree requires a nonempty language");
  std::uniform_int_distribution<size_t> pick(0, candidates.size() - 1);
  Tree t(candidates[pick(*rng)]);
  int32_t budget = size_budget - 1;
  // Expand breadth-first; node ids grow, so a single pass visits all nodes.
  for (NodeId v = 0; v < t.size(); ++v) {
    SampleChildren(v, &t, rng, &budget);
  }
  return t;
}

int32_t Dtd::Size() const {
  int32_t n = static_cast<int32_t>(alphabet_.size() + start_.size());
  for (const auto& [a, r] : rules_) n += r.Size();
  return n;
}

std::string Dtd::ToString(const LabelPool& pool) const {
  std::string out = "root:";
  for (size_t i = 0; i < start_.size(); ++i) {
    out += (i ? " | " : " ") + pool.Name(start_[i]);
  }
  out += ";\n";
  for (const auto& [a, r] : rules_) {
    out += pool.Name(a) + " -> " + r.ToString(pool) + ";\n";
  }
  return out;
}

namespace {

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '\'' || c == '-';
}

}  // namespace

ParseResult<Dtd> ParseDtd(std::string_view input, LabelPool* pool) {
  Dtd dtd;
  size_t pos = 0;
  auto skip = [&] {
    while (pos < input.size() &&
           std::isspace(static_cast<unsigned char>(input[pos]))) {
      ++pos;
    }
  };
  auto read_ident = [&]() -> std::string_view {
    skip();
    size_t start = pos;
    while (pos < input.size() && IsLabelChar(input[pos])) ++pos;
    return input.substr(start, pos - start);
  };
  bool saw_root = false;
  while (true) {
    skip();
    if (pos >= input.size()) break;
    size_t clause_start = pos;
    std::string_view ident = read_ident();
    if (ident.empty()) {
      return ParseResult<Dtd>::Error("expected a symbol or 'root'", pos);
    }
    skip();
    if (ident == "root" && pos < input.size() && input[pos] == ':') {
      if (saw_root) {
        return ParseResult<Dtd>::Error("duplicate root clause", clause_start);
      }
      saw_root = true;
      ++pos;
      while (true) {
        std::string_view s = read_ident();
        if (s.empty()) {
          return ParseResult<Dtd>::Error("expected a start symbol", pos);
        }
        dtd.AddStart(pool->Intern(s));
        skip();
        if (pos < input.size() && input[pos] == '|') {
          ++pos;
          continue;
        }
        break;
      }
    } else if (pos + 1 < input.size() && input[pos] == '-' &&
               input[pos + 1] == '>') {
      pos += 2;
      size_t body_start = pos;
      while (pos < input.size() && input[pos] != ';') ++pos;
      ParseResult<Regex> body =
          ParseRegex(input.substr(body_start, pos - body_start), pool);
      if (!body.ok()) {
        return ParseResult<Dtd>::Error("in rule body: " + body.error(),
                                       body_start + body.error_offset());
      }
      dtd.SetRule(pool->Intern(ident), std::move(body.value()));
    } else {
      return ParseResult<Dtd>::Error("expected ':' (after root) or '->'", pos);
    }
    skip();
    if (pos >= input.size() || input[pos] != ';') {
      return ParseResult<Dtd>::Error("expected ';'", pos);
    }
    ++pos;
  }
  if (dtd.start().empty()) {
    return ParseResult<Dtd>::Error("missing root clause", 0);
  }
  return ParseResult<Dtd>::Ok(std::move(dtd));
}

std::optional<Dtd> ParseDtdChecked(std::string_view input, LabelPool* pool,
                                   ParseDiagnostic* diag) {
  ParseResult<Dtd> result = ParseDtd(input, pool);
  if (!result.ok()) {
    *diag = DiagnoseAt(input, result.error(), result.error_offset());
    return std::nullopt;
  }
  return std::move(result.value());
}

Dtd MustParseDtd(std::string_view input, LabelPool* pool) {
  ParseResult<Dtd> result = ParseDtd(input, pool);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseDtd: %s (at offset %zu)\n",
                 result.error().c_str(), result.error_offset());
    std::abort();
  }
  return std::move(result.value());
}

}  // namespace tpc
