// The reduction from Line Triomino Tiling to containment w.r.t. a fixed DTD
// (Appendix E.1.2), and its game variant (Appendix E.1.3) used in the proof
// of Theorem 6.6: W-Containment of PQ(/) in PQ(/,*) w.r.t. a fixed DTD is
// EXPTIME-complete.
//
// Given a triomino system S and an initial row s of length n, the reduction
// produces
//   * a DTD d whose size depends only on S (the *fixed* DTD of the theorem),
//   * a left pattern  p = # a w_{s_1} ... w_{s_n}  ∈ PQ(/) spelling the
//     encodings of the initial row on the trunk, and
//   * a right pattern q = a *^{kn+2} b ∈ PQ(/,*),
// such that  L_w(p) ∩ L(d) ⊄ L_w(q)  iff the LTT instance has a solution
// (iff CONSTRUCTOR wins, for the game variant).  Trees in the difference
// encode (strategies of) valid tilings: tiles are words of length k = |T|+4
// written on a trunk, and branch gadgets (g_j / d_(x,y) families) emit
// b-nodes at calibrated depths so that q — which forbids an `a` exactly
// kn+3 levels above a `b` — rules out exactly the ill-formed trees.

#ifndef TPC_TILING_REDUCTION_H_
#define TPC_TILING_REDUCTION_H_

#include <string>
#include <vector>

#include "base/label.h"
#include "dtd/dtd.h"
#include "pattern/tpq.h"
#include "tiling/tiling.h"
#include "tree/tree.h"

namespace tpc {

/// A containment-with-DTD instance produced by the reduction.
struct TilingContainmentInstance {
  Dtd dtd;
  Tpq p;  // PQ(/)
  Tpq q;  // PQ(/,*)
  int32_t k = 0;  // |T| + 4, the tile-encoding length
  int32_t n = 0;  // length of the initial row
};

/// Builds the E.1.2 instance: the containment L_w(p) ∩ L(d) ⊆ L_w(q) fails
/// iff `SolveLineTiling(system, initial_row)` has a solution.
/// If `game_variant` is true, builds the E.1.3 instance instead, whose
/// containment fails iff CONSTRUCTOR wins the tiling game.
TilingContainmentInstance BuildTilingReduction(
    const TriominoSystem& system, const std::vector<Tile>& initial_row,
    LabelPool* pool, bool game_variant = false);

/// Materializes the encoding tree of a full tiling line (E.1.2 variant):
/// the trunk spells the tile encodings, every mandatory branch gadget is
/// attached, and each gadget's nondeterministic choice (g_j side, d_(x,z,y)
/// exemption) is resolved consistently with the actual `a`-positions.
/// The result satisfies the DTD, weakly matches p, and — iff the line is a
/// valid solution — avoids q.  Used to validate the reduction end-to-end.
Tree EncodeTilingTree(const TilingContainmentInstance& instance,
                      const TriominoSystem& system,
                      const std::vector<Tile>& line, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_TILING_REDUCTION_H_
