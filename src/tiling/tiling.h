// Line Triomino Tiling (LTT) and its two-player game variant (LTTG),
// Section 6.2 and Appendix E.1.1 of the paper.
//
// A triomino tiling system has tiles T, triomino constraints C ⊆ T³ and two
// final tiles.  An instance is an initial row s ∈ T*; a solution extends s
// to a longer line λ(1..m) such that every triple (λ(i), λ(i+1), λ(i+n)),
// n = |s|, lies in C and the last tile is final.  The intuition: the line
// spells a rectangle of width n written row by row, and one triomino checks
// the horizontal and vertical constraints of a cell simultaneously — the
// property that drives the EXPTIME-hardness reduction of Theorem 6.6.
//
// In the game variant, CONSTRUCTOR repeatedly offers two distinct tiles and
// SPOILER places one of them; CONSTRUCTOR wins when all placed tiles satisfy
// the constraints and a final tile is placed.  LTT is PSPACE-complete and
// LTTG EXPTIME-complete for suitable fixed systems (Remark E.8/Thm E.9).

#ifndef TPC_TILING_TILING_H_
#define TPC_TILING_TILING_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace tpc {

using Tile = int32_t;

/// A triomino tiling system.  Tiles are 0..num_tiles-1; by the convention of
/// the containment reduction (Appendix E.1.2), the two *final* tiles are the
/// last two (num_tiles-2 and num_tiles-1).
struct TriominoSystem {
  int32_t num_tiles = 0;
  /// Allowed triples (left, right, up): placing tile `up` at position i+n is
  /// legal iff (λ(i), λ(i+1), up) ∈ constraints.
  std::vector<std::array<Tile, 3>> constraints;

  bool IsFinal(Tile t) const { return t >= num_tiles - 2; }
  bool Allows(Tile left, Tile right, Tile up) const;
};

/// Decides whether the LTT instance (system, initial row) has a solution;
/// returns the full solution line if so.  Explores the reachable window
/// graph (worst case |T|^n states).
std::optional<std::vector<Tile>> SolveLineTiling(
    const TriominoSystem& system, const std::vector<Tile>& initial_row,
    int64_t max_states = 1 << 20);

/// Decides whether CONSTRUCTOR wins the LTT game from the initial row
/// (least-fixpoint attractor over the reachable window graph).
bool ConstructorWinsGame(const TriominoSystem& system,
                         const std::vector<Tile>& initial_row,
                         int64_t max_states = 1 << 20);

/// Validates a full line against the system (constraints + final last tile).
bool IsValidSolution(const TriominoSystem& system,
                     const std::vector<Tile>& initial_row,
                     const std::vector<Tile>& line);

}  // namespace tpc

#endif  // TPC_TILING_TILING_H_
