#include "tiling/tiling.h"

#include <algorithm>
#include <map>

namespace tpc {

bool TriominoSystem::Allows(Tile left, Tile right, Tile up) const {
  for (const auto& c : constraints) {
    if (c[0] == left && c[1] == right && c[2] == up) return true;
  }
  return false;
}

namespace {

/// Legal next tiles from a window of the last n tiles.  For n == 1 the
/// "right" neighbour of position i is position i+n itself.
bool LegalAppend(const TriominoSystem& system, const std::vector<Tile>& window,
                 Tile t) {
  Tile left = window[0];
  Tile right = window.size() == 1 ? t : window[1];
  return system.Allows(left, right, t);
}

std::vector<Tile> Shift(const std::vector<Tile>& window, Tile t) {
  std::vector<Tile> next(window.begin() + 1, window.end());
  next.push_back(t);
  return next;
}

}  // namespace

std::optional<std::vector<Tile>> SolveLineTiling(
    const TriominoSystem& system, const std::vector<Tile>& initial_row,
    int64_t max_states) {
  if (initial_row.empty()) return std::nullopt;
  if (system.IsFinal(initial_row.back())) return initial_row;
  // BFS over windows with parent pointers for reconstruction.
  std::map<std::vector<Tile>, int32_t> ids;
  std::vector<std::vector<Tile>> windows;
  std::vector<std::pair<int32_t, Tile>> parent;  // (id, appended tile)
  ids.emplace(initial_row, 0);
  windows.push_back(initial_row);
  parent.emplace_back(-1, -1);
  for (size_t i = 0; i < windows.size(); ++i) {
    if (static_cast<int64_t>(windows.size()) > max_states) return std::nullopt;
    for (Tile t = 0; t < system.num_tiles; ++t) {
      if (!LegalAppend(system, windows[i], t)) continue;
      std::vector<Tile> next = Shift(windows[i], t);
      auto [it, inserted] =
          ids.emplace(next, static_cast<int32_t>(windows.size()));
      if (!inserted) continue;
      windows.push_back(next);
      parent.emplace_back(static_cast<int32_t>(i), t);
      if (system.IsFinal(t)) {
        // Reconstruct the appended suffix.
        std::vector<Tile> suffix;
        for (int32_t w = it->second; parent[w].first >= 0;
             w = parent[w].first) {
          suffix.push_back(parent[w].second);
        }
        std::reverse(suffix.begin(), suffix.end());
        std::vector<Tile> line = initial_row;
        line.insert(line.end(), suffix.begin(), suffix.end());
        return line;
      }
    }
  }
  return std::nullopt;
}

bool ConstructorWinsGame(const TriominoSystem& system,
                         const std::vector<Tile>& initial_row,
                         int64_t max_states) {
  if (initial_row.empty()) return false;
  if (system.IsFinal(initial_row.back())) return true;
  // Forward closure of legally reachable windows.
  std::map<std::vector<Tile>, int32_t> ids;
  std::vector<std::vector<Tile>> windows;
  ids.emplace(initial_row, 0);
  windows.push_back(initial_row);
  for (size_t i = 0; i < windows.size(); ++i) {
    if (static_cast<int64_t>(windows.size()) > max_states) return false;
    for (Tile t = 0; t < system.num_tiles; ++t) {
      if (!LegalAppend(system, windows[i], t)) continue;
      std::vector<Tile> next = Shift(windows[i], t);
      if (ids.emplace(next, static_cast<int32_t>(windows.size())).second) {
        windows.push_back(next);
      }
    }
  }
  // Least fixpoint: CONSTRUCTOR wins at w iff he can offer two distinct
  // legal tiles, each either final or leading to a winning window.
  std::vector<bool> win(windows.size(), false);
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < windows.size(); ++i) {
      if (win[i]) continue;
      int32_t good = 0;
      for (Tile t = 0; t < system.num_tiles && good < 2; ++t) {
        if (!LegalAppend(system, windows[i], t)) continue;
        if (system.IsFinal(t)) {
          ++good;
          continue;
        }
        auto it = ids.find(Shift(windows[i], t));
        if (it != ids.end() && win[it->second]) ++good;
      }
      if (good >= 2) {
        win[i] = true;
        changed = true;
      }
    }
  }
  return win[0];
}

bool IsValidSolution(const TriominoSystem& system,
                     const std::vector<Tile>& initial_row,
                     const std::vector<Tile>& line) {
  size_t n = initial_row.size();
  if (line.size() < n || n == 0) return false;
  if (!std::equal(initial_row.begin(), initial_row.end(), line.begin())) {
    return false;
  }
  if (!system.IsFinal(line.back())) return false;
  for (size_t i = 0; i + n < line.size(); ++i) {
    if (!system.Allows(line[i], line[i + 1], line[i + n])) return false;
  }
  return true;
}

}  // namespace tpc
