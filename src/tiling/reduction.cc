#include "tiling/reduction.h"

#include <cassert>
#include <set>
#include <string>

namespace tpc {

namespace {

/// Interned label names for the fixed alphabet of the reduction.  Names are
/// deterministic in k, so the same pool can host several instances of the
/// same system.
struct Alphabet {
  LabelId hash;                  // '#'
  LabelId a;
  LabelId b;
  std::vector<LabelId> c;        // c[1..k-4]
  std::vector<LabelId> d;        // d[1..k-5]
  std::vector<LabelId> e;        // e[1..k-4]
  LabelId f1, f2;
  std::vector<LabelId> bn;       // b[1..2k-4]

  LabelId C(int32_t i) const { return c[i]; }
  LabelId D(int32_t i) const { return d[i]; }
  LabelId E(int32_t i) const { return e[i]; }
  LabelId B(int32_t i) const { return bn[i]; }
};

Alphabet MakeAlphabet(int32_t k, LabelPool* pool) {
  Alphabet al;
  al.hash = pool->Intern("#");
  al.a = pool->Intern("a");
  al.b = pool->Intern("b");
  al.c.resize(k - 3);
  al.d.resize(std::max(k - 4, 1));
  al.e.resize(k - 3);
  for (int32_t i = 1; i <= k - 4; ++i) {
    al.c[i] = pool->Intern("c" + std::to_string(i));
    al.e[i] = pool->Intern("e" + std::to_string(i));
  }
  for (int32_t i = 1; i <= k - 5; ++i) {
    al.d[i] = pool->Intern("d" + std::to_string(i));
  }
  al.f1 = pool->Intern("f1");
  al.f2 = pool->Intern("f2");
  al.bn.resize(2 * k - 3);
  for (int32_t i = 1; i <= 2 * k - 4; ++i) {
    al.bn[i] = pool->Intern("b" + std::to_string(i));
  }
  return al;
}

LabelId DxyLabel(int32_t x, int32_t y, LabelPool* pool) {
  return pool->Intern("D_" + std::to_string(x) + "_" + std::to_string(y));
}

LabelId DxzyLabel(int32_t x, int32_t z, int32_t y, LabelPool* pool) {
  return pool->Intern("D_" + std::to_string(x) + "_" + std::to_string(z) +
                      "_" + std::to_string(y));
}

LabelId GLabel(const char* prefix, int32_t j1, int32_t j2, int32_t j3,
               LabelPool* pool) {
  return pool->Intern(std::string(prefix) + "_" + std::to_string(j1) + "_" +
                      std::to_string(j2) + "_" + std::to_string(j3));
}

/// The encoding word w_i of tile with 1-based index `ip` (Appendix E.1.2).
/// `t` is the total number of tiles (so k = t + 4); the final tiles are
/// t_{|T|-1} and t_{|T|}.
std::vector<LabelId> TileWord(const Alphabet& al, int32_t k, int32_t t,
                              int32_t ip) {
  std::vector<LabelId> w;
  w.push_back(al.C(ip));
  for (int32_t i = ip - 1; i >= 1; --i) w.push_back(al.D(i));
  w.push_back(al.a);
  if (ip == t) {
    w.push_back(al.f1);
  } else if (ip == t - 1) {
    w.push_back(al.f2);
  } else {
    for (int32_t i = k - ip - 3; i >= 1; --i) w.push_back(al.E(i));
    w.push_back(al.a);
    w.push_back(al.a);
  }
  return w;
}

/// All forbidden triples (1-based) of the system: T³ \ C.
std::vector<std::array<int32_t, 3>> ForbiddenTriples(
    const TriominoSystem& system) {
  std::vector<std::array<int32_t, 3>> out;
  for (Tile x = 0; x < system.num_tiles; ++x) {
    for (Tile y = 0; y < system.num_tiles; ++y) {
      for (Tile z = 0; z < system.num_tiles; ++z) {
        if (!system.Allows(x, y, z)) out.push_back({x + 1, y + 1, z + 1});
      }
    }
  }
  return out;
}

}  // namespace

TilingContainmentInstance BuildTilingReduction(
    const TriominoSystem& system, const std::vector<Tile>& initial_row,
    LabelPool* pool, bool game_variant) {
  int32_t t = system.num_tiles;
  int32_t k = t + 4;
  int32_t n = static_cast<int32_t>(initial_row.size());
  assert(t >= 2 && n >= 1);
  Alphabet al = MakeAlphabet(k, pool);
  auto forbidden = ForbiddenTriples(system);

  TilingContainmentInstance out;
  out.k = k;
  out.n = n;
  Dtd& dtd = out.dtd;
  dtd.AddStart(al.hash);
  dtd.SetRule(al.hash, Regex::Letter(al.a));

  // Trunk chains.
  for (int32_t i = 2; i <= k - 5; ++i) {
    dtd.SetRule(al.D(i), Regex::Letter(al.D(i - 1)));
  }
  if (k - 5 >= 1) dtd.SetRule(al.D(1), Regex::Letter(al.a));
  for (int32_t i = 2; i <= k - 4; ++i) {
    dtd.SetRule(al.E(i), Regex::Letter(al.E(i - 1)));
  }
  dtd.SetRule(al.E(1), Regex::Letter(al.a));
  dtd.SetRule(al.f1, Regex::Epsilon());
  dtd.SetRule(al.f2, Regex::Epsilon());

  // c_i -> (d_{i-1} | a) s_i, where s_i lists the g_j gadgets of all
  // forbidden triples with third component i.
  for (int32_t i = 1; i <= k - 4; ++i) {
    std::vector<Regex> parts;
    parts.push_back(i > 1 ? Regex::Letter(al.D(i - 1))
                          : Regex::Letter(al.a));
    for (const auto& j : forbidden) {
      if (j[2] == i) {
        parts.push_back(Regex::Letter(GLabel("G", j[0], j[1], j[2], pool)));
      }
    }
    dtd.SetRule(al.C(i), Regex::Concat(std::move(parts)));
  }

  // Constraint gadgets: g_j chooses to forbid tile j1 exactly n tiles above
  // (a b at depth j1+1 below) or tile j2 exactly n-1 tiles above.
  for (const auto& j : forbidden) {
    LabelId g = GLabel("G", j[0], j[1], j[2], pool);
    LabelId g1 = GLabel("G1", j[0], j[1], j[2], pool);
    LabelId g2 = GLabel("G2", j[0], j[1], j[2], pool);
    dtd.SetRule(g, Regex::Union({Regex::Letter(g1), Regex::Letter(g2)}));
    dtd.SetRule(g1, Regex::Letter(al.B(j[0])));
    dtd.SetRule(g2, Regex::Letter(al.B(k + j[1])));
  }

  // b-chains.
  for (int32_t i = 2; i <= 2 * k - 4; ++i) {
    dtd.SetRule(al.B(i), Regex::Letter(al.B(i - 1)));
  }
  dtd.SetRule(al.B(1), Regex::Letter(al.b));
  dtd.SetRule(al.b, Regex::Epsilon());

  // Freeness gadgets D_(x,y) for the (x,y) pairs the a-rule uses.
  std::set<std::pair<int32_t, int32_t>> xy_pairs;
  xy_pairs.emplace(1, k - 2);
  xy_pairs.emplace(0, k - 3);
  for (int32_t i = 1; i <= k - 4; ++i) xy_pairs.emplace(i + 2, k + i - 1);
  for (auto [x, y] : xy_pairs) {
    std::vector<Regex> choices;
    for (int32_t z = x; z <= y; ++z) {
      LabelId dxzy = DxzyLabel(x, z, y, pool);
      std::vector<Regex> row;
      for (int32_t i = x + 1; i <= y + 1; ++i) {
        if (i == z + 1) continue;
        row.push_back(Regex::Letter(al.B(i)));
      }
      dtd.SetRule(dxzy, Regex::Concat(std::move(row)));
      choices.push_back(Regex::Letter(dxzy));
    }
    dtd.SetRule(DxyLabel(x, y, pool), Regex::Union(std::move(choices)));
  }

  // The a-rule.
  std::vector<Regex> a_options;
  a_options.push_back(Regex::Concat(
      {Regex::Letter(al.a), Regex::Letter(DxyLabel(1, k - 2, pool))}));
  if (!game_variant) {
    for (int32_t i = 1; i <= k - 4; ++i) {
      a_options.push_back(Regex::Concat(
          {Regex::Letter(al.C(i)), Regex::Letter(DxyLabel(0, k - 3, pool))}));
    }
  } else {
    // Game variant (Appendix E.1.3): the trunk branches into two different
    // tiles (CONSTRUCTOR's offer); a single tile continuation is only
    // allowed near the top, guarded by a b_2 branch.
    for (int32_t i = 1; i <= k - 4; ++i) {
      for (int32_t j = 1; j <= k - 4; ++j) {
        if (i == j) continue;
        a_options.push_back(Regex::Concat(
            {Regex::Letter(al.C(i)), Regex::Letter(al.C(j)),
             Regex::Letter(DxyLabel(0, k - 3, pool))}));
      }
      a_options.push_back(Regex::Concat(
          {Regex::Letter(al.C(i)), Regex::Letter(al.B(2))}));
    }
  }
  for (int32_t i = 3; i <= k - 4; ++i) {
    a_options.push_back(Regex::Concat(
        {Regex::Letter(al.E(i)),
         Regex::Letter(DxyLabel(i + 2, k + i - 1, pool))}));
  }
  a_options.push_back(Regex::Concat(
      {Regex::Letter(al.f1), Regex::Letter(DxyLabel(3, k, pool))}));
  a_options.push_back(Regex::Concat(
      {Regex::Letter(al.f2), Regex::Letter(DxyLabel(4, k + 1, pool))}));
  dtd.SetRule(al.a, Regex::Union(std::move(a_options)));

  // Left pattern p = # a w_{s_1} ... w_{s_n}, all child edges.
  Tpq p(al.hash);
  NodeId v = p.AddChild(0, al.a, EdgeKind::kChild);
  for (Tile tile : initial_row) {
    for (LabelId l : TileWord(al, k, t, tile + 1)) {
      v = p.AddChild(v, l, EdgeKind::kChild);
    }
  }
  out.p = std::move(p);

  // Right pattern q = a *^{kn+2} b, all child edges.
  Tpq q(al.a);
  v = 0;
  for (int32_t i = 0; i < k * n + 2; ++i) {
    v = q.AddChild(v, kWildcard, EdgeKind::kChild);
  }
  q.AddChild(v, al.b, EdgeKind::kChild);
  out.q = std::move(q);
  return out;
}

namespace {

/// Attaches the b-chain b_j -> b_{j-1} -> ... -> b_1 -> b below `parent`.
void AttachBChain(Tree* tree, NodeId parent, int32_t j, const Alphabet& al) {
  NodeId v = tree->AddChild(parent, al.B(j));
  for (int32_t i = j - 1; i >= 1; --i) v = tree->AddChild(v, al.B(i));
  tree->AddChild(v, al.b);
}

}  // namespace

Tree EncodeTilingTree(const TilingContainmentInstance& instance,
                      const TriominoSystem& system,
                      const std::vector<Tile>& line, LabelPool* pool) {
  int32_t k = instance.k;
  int32_t n = instance.n;
  int32_t t = system.num_tiles;
  Alphabet al = MakeAlphabet(k, pool);
  auto forbidden = ForbiddenTriples(system);

  // Trunk: # a w_{line_1} ... w_{line_m}; remember depth and label of each
  // trunk node and the set of depths labelled `a`.
  Tree tree(al.hash);
  std::vector<std::pair<NodeId, int32_t>> trunk = {{0, 0}};
  std::set<int32_t> a_depths;
  NodeId v = tree.AddChild(0, al.a);
  int32_t depth = 1;
  trunk.emplace_back(v, depth);
  a_depths.insert(1);
  for (size_t i = 0; i < line.size(); ++i) {
    for (LabelId l : TileWord(al, k, t, line[i] + 1)) {
      v = tree.AddChild(v, l);
      ++depth;
      trunk.emplace_back(v, depth);
      if (l == al.a) a_depths.insert(depth);
    }
  }

  // A depth is "prohibited" by a b at depth db iff db == a_depth + kn+3;
  // helper: would a b at depth `db` clash with an existing `a`?
  auto clashes = [&](int32_t db) {
    return a_depths.count(db - (k * n + 3)) > 0;
  };

  // Attach gadgets.  Trunk node ids are in creation (top-down) order.
  for (size_t idx = 0; idx + 1 < trunk.size(); ++idx) {
    auto [node, d] = trunk[idx];
    auto [child, child_depth] = trunk[idx + 1];
    LabelId label = tree.Label(node);
    LabelId child_label = tree.Label(child);
    if (label == al.a) {
      // Pick the D_(x,y) gadget matching the trunk child.
      int32_t x = -1, y = -1;
      if (child_label == al.a) {
        x = 1;
        y = k - 2;
      } else if (child_label == al.f1) {
        x = 3;
        y = k;
      } else if (child_label == al.f2) {
        x = 4;
        y = k + 1;
      } else {
        bool is_c = false;
        for (int32_t i = 1; i <= k - 4 && !is_c; ++i) {
          is_c = child_label == al.C(i);
        }
        if (is_c) {
          x = 0;
          y = k - 3;
        } else {
          for (int32_t i = 3; i <= k - 4; ++i) {
            if (child_label == al.E(i)) {
              x = i + 2;
              y = k + i - 1;
              break;
            }
          }
        }
      }
      assert(x >= 0 && "unexpected trunk child of an a-node");
      // Choose the exempted z: the unique j whose b would clash.
      int32_t z = x;
      for (int32_t j = x + 1; j <= y + 1; ++j) {
        if (clashes(d + 3 + j)) {
          z = j - 1;
          break;  // the construction guarantees at most one clash
        }
      }
      NodeId dxy = tree.AddChild(node, DxyLabel(x, y, pool));
      NodeId dxzy = tree.AddChild(dxy, DxzyLabel(x, z, y, pool));
      for (int32_t j = x + 1; j <= y + 1; ++j) {
        if (j == z + 1) continue;
        AttachBChain(&tree, dxzy, j, al);
      }
    } else {
      // c_i nodes carry the constraint gadgets s_i.
      for (int32_t i = 1; i <= k - 4; ++i) {
        if (label != al.C(i)) continue;
        for (const auto& j : forbidden) {
          if (j[2] != i) continue;
          NodeId g = tree.AddChild(node, GLabel("G", j[0], j[1], j[2], pool));
          bool side1_clashes = clashes(d + 3 + j[0]);
          if (!side1_clashes) {
            NodeId g1 =
                tree.AddChild(g, GLabel("G1", j[0], j[1], j[2], pool));
            AttachBChain(&tree, g1, j[0], al);
          } else {
            // Fall back to side 2 (valid lines guarantee no clash here).
            NodeId g2 =
                tree.AddChild(g, GLabel("G2", j[0], j[1], j[2], pool));
            AttachBChain(&tree, g2, k + j[1], al);
          }
        }
        break;
      }
    }
  }
  return tree;
}

}  // namespace tpc
