#include "regex/nfa.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

namespace tpc {

namespace {

/// Glushkov bookkeeping for one regex node: which positions can start a
/// match, which can end it, and whether the node is nullable.
struct GlushkovInfo {
  std::vector<int32_t> first;
  std::vector<int32_t> last;
  bool nullable = false;
};

/// Recursively computes Glushkov sets.  `positions` accumulates the symbol of
/// each letter occurrence; `follow` accumulates the follow relation.
GlushkovInfo BuildGlushkov(const Regex& r, std::vector<Symbol>* positions,
                           std::vector<std::vector<int32_t>>* follow) {
  GlushkovInfo info;
  switch (r.kind()) {
    case Regex::Kind::kEmptySet:
      info.nullable = false;
      break;
    case Regex::Kind::kEpsilon:
      info.nullable = true;
      break;
    case Regex::Kind::kLetter: {
      int32_t pos = static_cast<int32_t>(positions->size());
      positions->push_back(r.letter());
      follow->emplace_back();
      info.first = {pos};
      info.last = {pos};
      info.nullable = false;
      break;
    }
    case Regex::Kind::kConcat: {
      info.nullable = true;
      std::vector<int32_t> pending_last;  // lasts that can still see a first
      bool first_open = true;             // still extending info.first
      for (const Regex& c : r.children()) {
        GlushkovInfo ci = BuildGlushkov(c, positions, follow);
        for (int32_t l : pending_last) {
          for (int32_t f : ci.first) (*follow)[l].push_back(f);
        }
        if (first_open) {
          info.first.insert(info.first.end(), ci.first.begin(),
                            ci.first.end());
          if (!ci.nullable) first_open = false;
        }
        if (ci.nullable) {
          pending_last.insert(pending_last.end(), ci.last.begin(),
                              ci.last.end());
        } else {
          pending_last = ci.last;
        }
        info.nullable = info.nullable && ci.nullable;
      }
      info.last = std::move(pending_last);
      break;
    }
    case Regex::Kind::kUnion: {
      info.nullable = false;
      for (const Regex& c : r.children()) {
        GlushkovInfo ci = BuildGlushkov(c, positions, follow);
        info.first.insert(info.first.end(), ci.first.begin(), ci.first.end());
        info.last.insert(info.last.end(), ci.last.begin(), ci.last.end());
        info.nullable = info.nullable || ci.nullable;
      }
      break;
    }
    case Regex::Kind::kStar:
    case Regex::Kind::kPlus:
    case Regex::Kind::kOptional: {
      GlushkovInfo ci = BuildGlushkov(r.children()[0], positions, follow);
      info.first = ci.first;
      info.last = ci.last;
      if (r.kind() == Regex::Kind::kStar || r.kind() == Regex::Kind::kPlus) {
        for (int32_t l : ci.last) {
          for (int32_t f : ci.first) (*follow)[l].push_back(f);
        }
      }
      info.nullable =
          r.kind() == Regex::Kind::kPlus ? ci.nullable : true;
      break;
    }
  }
  return info;
}

}  // namespace

Nfa Nfa::FromRegex(const Regex& regex) {
  std::vector<Symbol> positions;
  std::vector<std::vector<int32_t>> follow;
  GlushkovInfo info = BuildGlushkov(regex, &positions, &follow);

  Nfa nfa;
  // State 0 is initial; state i+1 corresponds to position i.
  nfa.num_states = static_cast<int32_t>(positions.size()) + 1;
  nfa.initial = 0;
  nfa.accepting.assign(nfa.num_states, false);
  nfa.transitions.assign(nfa.num_states, {});
  nfa.accepting[0] = info.nullable;
  for (int32_t f : info.first) {
    nfa.transitions[0].emplace_back(positions[f], f + 1);
  }
  for (size_t p = 0; p < positions.size(); ++p) {
    for (int32_t f : follow[p]) {
      nfa.transitions[p + 1].emplace_back(positions[f], f + 1);
    }
  }
  for (int32_t l : info.last) nfa.accepting[l + 1] = true;
  // Deduplicate transitions.
  for (auto& ts : nfa.transitions) {
    std::sort(ts.begin(), ts.end());
    ts.erase(std::unique(ts.begin(), ts.end()), ts.end());
  }
  return nfa;
}

Nfa Nfa::EpsilonOnly() {
  Nfa nfa;
  nfa.num_states = 1;
  nfa.initial = 0;
  nfa.accepting = {true};
  nfa.transitions.resize(1);
  return nfa;
}

Nfa Nfa::Universal(const std::vector<Symbol>& alphabet) {
  Nfa nfa;
  nfa.num_states = 1;
  nfa.initial = 0;
  nfa.accepting = {true};
  nfa.transitions.resize(1);
  for (Symbol s : alphabet) nfa.transitions[0].emplace_back(s, 0);
  return nfa;
}

bool Nfa::Accepts(std::span<const Symbol> word) const {
  std::vector<int32_t> current = {initial};
  for (Symbol s : word) {
    current = Step(current, s);
    if (current.empty()) return false;
  }
  return std::any_of(current.begin(), current.end(),
                     [&](int32_t q) { return accepting[q]; });
}

std::vector<int32_t> Nfa::Step(const std::vector<int32_t>& from,
                               Symbol symbol) const {
  std::vector<bool> seen(num_states, false);
  std::vector<int32_t> out;
  for (int32_t q : from) {
    for (const auto& [s, target] : transitions[q]) {
      if (s == symbol && !seen[target]) {
        seen[target] = true;
        out.push_back(target);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Nfa::IsEmpty() const {
  std::vector<bool> visited(num_states, false);
  std::vector<int32_t> stack = {initial};
  visited[initial] = true;
  while (!stack.empty()) {
    int32_t q = stack.back();
    stack.pop_back();
    if (accepting[q]) return false;
    for (const auto& [s, target] : transitions[q]) {
      if (!visited[target]) {
        visited[target] = true;
        stack.push_back(target);
      }
    }
  }
  return true;
}

std::vector<Symbol> Nfa::Alphabet() const {
  std::set<Symbol> symbols;
  for (const auto& ts : transitions) {
    for (const auto& [s, target] : ts) symbols.insert(s);
  }
  return {symbols.begin(), symbols.end()};
}

int32_t Dfa::SymbolIndex(Symbol s) const {
  auto it = std::lower_bound(alphabet.begin(), alphabet.end(), s);
  if (it == alphabet.end() || *it != s) return -1;
  return static_cast<int32_t>(it - alphabet.begin());
}

int32_t Dfa::StepState(int32_t state, Symbol s) const {
  int32_t idx = SymbolIndex(s);
  assert(idx >= 0);
  return next[static_cast<size_t>(state) * alphabet.size() + idx];
}

bool Dfa::Accepts(std::span<const Symbol> word) const {
  int32_t q = initial;
  for (Symbol s : word) {
    int32_t idx = SymbolIndex(s);
    if (idx < 0) return false;  // symbol outside alphabet: reject
    q = next[static_cast<size_t>(q) * alphabet.size() + idx];
  }
  return accepting[q];
}

Dfa Dfa::Determinize(const Nfa& nfa, const std::vector<Symbol>& extra) {
  Dfa dfa;
  std::set<Symbol> symbol_set;
  for (Symbol s : nfa.Alphabet()) symbol_set.insert(s);
  for (Symbol s : extra) symbol_set.insert(s);
  dfa.alphabet.assign(symbol_set.begin(), symbol_set.end());
  size_t k = dfa.alphabet.size();

  std::map<std::vector<int32_t>, int32_t> state_ids;
  std::vector<std::vector<int32_t>> subsets;
  auto intern = [&](std::vector<int32_t> subset) {
    auto [it, inserted] =
        state_ids.emplace(subset, static_cast<int32_t>(subsets.size()));
    if (inserted) subsets.push_back(std::move(subset));
    return it->second;
  };
  intern({nfa.initial});
  dfa.initial = 0;
  for (size_t i = 0; i < subsets.size(); ++i) {
    std::vector<int32_t> current = subsets[i];  // copy: subsets may realloc
    for (size_t a = 0; a < k; ++a) {
      int32_t target = intern(nfa.Step(current, dfa.alphabet[a]));
      dfa.next.resize(subsets.size() * k, -1);
      dfa.next[i * k + a] = target;
    }
  }
  dfa.num_states = static_cast<int32_t>(subsets.size());
  dfa.next.resize(static_cast<size_t>(dfa.num_states) * k, -1);
  dfa.accepting.assign(dfa.num_states, false);
  for (int32_t i = 0; i < dfa.num_states; ++i) {
    for (int32_t q : subsets[i]) {
      if (nfa.accepting[q]) dfa.accepting[i] = true;
    }
  }
  return dfa;
}

Dfa Dfa::Minimize() const {
  size_t k = alphabet.size();
  // Moore's partition refinement.
  std::vector<int32_t> block(num_states);
  for (int32_t q = 0; q < num_states; ++q) block[q] = accepting[q] ? 1 : 0;
  int32_t num_blocks = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    // Signature of a state: (block, blocks of successors).
    std::map<std::vector<int32_t>, int32_t> sig_ids;
    std::vector<int32_t> new_block(num_states);
    for (int32_t q = 0; q < num_states; ++q) {
      std::vector<int32_t> sig;
      sig.reserve(k + 1);
      sig.push_back(block[q]);
      for (size_t a = 0; a < k; ++a) {
        sig.push_back(block[next[static_cast<size_t>(q) * k + a]]);
      }
      auto [it, inserted] =
          sig_ids.emplace(std::move(sig), static_cast<int32_t>(sig_ids.size()));
      new_block[q] = it->second;
    }
    if (static_cast<int32_t>(sig_ids.size()) != num_blocks) changed = true;
    num_blocks = static_cast<int32_t>(sig_ids.size());
    block = std::move(new_block);
  }
  Dfa out;
  out.alphabet = alphabet;
  out.num_states = num_blocks;
  out.initial = block[initial];
  out.accepting.assign(num_blocks, false);
  out.next.assign(static_cast<size_t>(num_blocks) * k, -1);
  for (int32_t q = 0; q < num_states; ++q) {
    if (accepting[q]) out.accepting[block[q]] = true;
    for (size_t a = 0; a < k; ++a) {
      out.next[static_cast<size_t>(block[q]) * k + a] =
          block[next[static_cast<size_t>(q) * k + a]];
    }
  }
  return out;
}

Dfa Dfa::Complement() const {
  Dfa out = *this;
  for (int32_t q = 0; q < num_states; ++q) {
    out.accepting[q] = !accepting[q];
  }
  return out;
}

}  // namespace tpc
