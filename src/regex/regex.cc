#include "regex/regex.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace tpc {

Regex Regex::EmptySet() {
  Regex r;
  r.kind_ = Kind::kEmptySet;
  return r;
}

Regex Regex::Epsilon() {
  Regex r;
  r.kind_ = Kind::kEpsilon;
  return r;
}

Regex Regex::Letter(LabelId label) {
  Regex r;
  r.kind_ = Kind::kLetter;
  r.letter_ = label;
  return r;
}

Regex Regex::Concat(std::vector<Regex> parts) {
  if (parts.empty()) return Epsilon();
  if (parts.size() == 1) return std::move(parts[0]);
  Regex r;
  r.kind_ = Kind::kConcat;
  r.children_ = std::move(parts);
  return r;
}

Regex Regex::Union(std::vector<Regex> parts) {
  if (parts.empty()) return EmptySet();
  if (parts.size() == 1) return std::move(parts[0]);
  Regex r;
  r.kind_ = Kind::kUnion;
  r.children_ = std::move(parts);
  return r;
}

Regex Regex::Star(Regex inner) {
  Regex r;
  r.kind_ = Kind::kStar;
  r.children_.push_back(std::move(inner));
  return r;
}

Regex Regex::Plus(Regex inner) {
  Regex r;
  r.kind_ = Kind::kPlus;
  r.children_.push_back(std::move(inner));
  return r;
}

Regex Regex::Optional(Regex inner) {
  Regex r;
  r.kind_ = Kind::kOptional;
  r.children_.push_back(std::move(inner));
  return r;
}

bool Regex::Nullable() const {
  switch (kind_) {
    case Kind::kEmptySet:
      return false;
    case Kind::kEpsilon:
      return true;
    case Kind::kLetter:
      return false;
    case Kind::kConcat:
      return std::all_of(children_.begin(), children_.end(),
                         [](const Regex& c) { return c.Nullable(); });
    case Kind::kUnion:
      return std::any_of(children_.begin(), children_.end(),
                         [](const Regex& c) { return c.Nullable(); });
    case Kind::kStar:
    case Kind::kOptional:
      return true;
    case Kind::kPlus:
      return children_[0].Nullable();
  }
  return false;
}

void Regex::CollectLabels(std::vector<LabelId>* out) const {
  if (kind_ == Kind::kLetter) {
    out->push_back(letter_);
    return;
  }
  for (const Regex& c : children_) c.CollectLabels(out);
}

std::vector<LabelId> Regex::Labels() const {
  std::vector<LabelId> out;
  CollectLabels(&out);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

int32_t Regex::Size() const {
  int32_t n = 1;
  for (const Regex& c : children_) n += c.Size();
  return n;
}

namespace {
// Precedence: union 0, concat 1, postfix 2.
constexpr int kPrecUnion = 0;
constexpr int kPrecConcat = 1;
constexpr int kPrecPostfix = 2;
}  // namespace

void Regex::AppendString(const LabelPool& pool, int parent_prec,
                         std::string* out) const {
  auto wrap = [&](int my_prec, auto&& body) {
    bool parens = my_prec < parent_prec;
    if (parens) out->push_back('(');
    body();
    if (parens) out->push_back(')');
  };
  switch (kind_) {
    case Kind::kEmptySet:
      out->append("empty");
      break;
    case Kind::kEpsilon:
      out->append("eps");
      break;
    case Kind::kLetter:
      out->append(pool.Name(letter_));
      break;
    case Kind::kConcat:
      wrap(kPrecConcat, [&] {
        for (size_t i = 0; i < children_.size(); ++i) {
          if (i > 0) out->push_back(' ');
          children_[i].AppendString(pool, kPrecConcat + 1, out);
        }
      });
      break;
    case Kind::kUnion:
      wrap(kPrecUnion, [&] {
        for (size_t i = 0; i < children_.size(); ++i) {
          if (i > 0) out->append(" | ");
          children_[i].AppendString(pool, kPrecUnion + 1, out);
        }
      });
      break;
    case Kind::kStar:
      wrap(kPrecPostfix, [&] {
        children_[0].AppendString(pool, kPrecPostfix + 1, out);
        out->push_back('*');
      });
      break;
    case Kind::kPlus:
      wrap(kPrecPostfix, [&] {
        // Concrete syntax has no postfix plus; print as `r r*`.
        children_[0].AppendString(pool, kPrecPostfix + 1, out);
        out->push_back(' ');
        children_[0].AppendString(pool, kPrecPostfix + 1, out);
        out->push_back('*');
      });
      break;
    case Kind::kOptional:
      wrap(kPrecPostfix, [&] {
        children_[0].AppendString(pool, kPrecPostfix + 1, out);
        out->push_back('?');
      });
      break;
  }
}

std::string Regex::ToString(const LabelPool& pool) const {
  std::string out;
  AppendString(pool, 0, &out);
  return out;
}

namespace {

bool IsLabelChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '#' ||
         c == '\'' || c == '-';
}

/// Recursion cap: one level per `(`, so `(((((...` is rejected with a
/// diagnostic instead of overflowing the stack.
constexpr int kMaxDepth = 256;

class RegexParser {
 public:
  RegexParser(std::string_view input, LabelPool* pool)
      : input_(input), pool_(pool) {}

  ParseResult<Regex> Parse() {
    Regex r = ParseUnion();
    if (!ok_) return ParseResult<Regex>::Error(error_, pos_);
    SkipSpace();
    if (pos_ != input_.size()) {
      return ParseResult<Regex>::Error("trailing input after expression",
                                       pos_);
    }
    return ParseResult<Regex>::Ok(std::move(r));
  }

 private:
  void SkipSpace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  Regex Fail(const char* message) {
    if (ok_) {
      ok_ = false;
      error_ = message;
    }
    return Regex::EmptySet();
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < input_.size() && input_[pos_] == c;
  }

  Regex ParseUnion() {
    std::vector<Regex> parts;
    parts.push_back(ParseConcat());
    while (ok_ && (Peek('|') || Peek('+'))) {
      ++pos_;
      parts.push_back(ParseConcat());
    }
    return Regex::Union(std::move(parts));
  }

  Regex ParseConcat() {
    std::vector<Regex> parts;
    parts.push_back(ParsePostfix());
    while (ok_) {
      SkipSpace();
      if (pos_ >= input_.size()) break;
      char c = input_[pos_];
      if (c == '.' || c == ',') {
        ++pos_;
        parts.push_back(ParsePostfix());
        continue;
      }
      if (c == '(' || IsLabelChar(c)) {
        parts.push_back(ParsePostfix());
        continue;
      }
      break;
    }
    return Regex::Concat(std::move(parts));
  }

  Regex ParsePostfix() {
    Regex r = ParseAtom();
    while (ok_) {
      SkipSpace();
      if (pos_ < input_.size() && input_[pos_] == '*') {
        ++pos_;
        r = Regex::Star(std::move(r));
      } else if (pos_ < input_.size() && input_[pos_] == '?') {
        ++pos_;
        r = Regex::Optional(std::move(r));
      } else {
        break;
      }
    }
    return r;
  }

  Regex ParseAtom() {
    SkipSpace();
    if (pos_ >= input_.size()) return Fail("expected an atom");
    if (input_[pos_] == '(') {
      if (++depth_ > kMaxDepth) return Fail("expression nesting too deep");
      ++pos_;
      Regex r = ParseUnion();
      --depth_;
      if (!ok_) return r;
      if (!Peek(')')) return Fail("expected ')'");
      ++pos_;
      return r;
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsLabelChar(input_[pos_])) ++pos_;
    if (pos_ == start) return Fail("expected a label, 'eps', or '('");
    std::string_view name = input_.substr(start, pos_ - start);
    if (name == "eps") return Regex::Epsilon();
    if (name == "empty") return Regex::EmptySet();
    return Regex::Letter(pool_->Intern(name));
  }

  std::string_view input_;
  LabelPool* pool_;
  size_t pos_ = 0;
  int depth_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

ParseResult<Regex> ParseRegex(std::string_view input, LabelPool* pool) {
  return RegexParser(input, pool).Parse();
}

Regex MustParseRegex(std::string_view input, LabelPool* pool) {
  ParseResult<Regex> result = ParseRegex(input, pool);
  if (!result.ok()) {
    std::fprintf(stderr, "MustParseRegex(\"%.*s\"): %s (at offset %zu)\n",
                 static_cast<int>(input.size()), input.data(),
                 result.error().c_str(), result.error_offset());
    std::abort();
  }
  return std::move(result.value());
}

}  // namespace tpc
