// Nondeterministic and deterministic finite word automata.
//
// These automata run over sequences of `Symbol`s.  Symbols are plain
// uint32_t: label ids when the automaton reads DTD content models, or tree
// automaton state ids when it serves as the horizontal language of an
// unranked tree automaton transition.
//
// `Nfa::FromRegex` is the Glushkov (position) construction, which is
// epsilon-free and linear in the number of letter occurrences.

#ifndef TPC_REGEX_NFA_H_
#define TPC_REGEX_NFA_H_

#include <cstdint>
#include <span>
#include <vector>

#include "regex/regex.h"

namespace tpc {

using Symbol = uint32_t;

/// Epsilon-free NFA with a single initial state.
struct Nfa {
  int32_t num_states = 0;
  int32_t initial = 0;
  std::vector<bool> accepting;
  /// transitions[s] = list of (symbol, target).
  std::vector<std::vector<std::pair<Symbol, int32_t>>> transitions;

  /// Glushkov construction.  Treats `Regex::kLetter` labels as symbols.
  static Nfa FromRegex(const Regex& regex);

  /// An NFA accepting exactly the empty word.
  static Nfa EpsilonOnly();

  /// An NFA accepting all words over the given symbols (universal).
  static Nfa Universal(const std::vector<Symbol>& alphabet);

  bool Accepts(std::span<const Symbol> word) const;

  /// True iff the language is empty (no accepting state reachable).
  bool IsEmpty() const;

  /// The set of states reachable from `from` on `symbol`.
  std::vector<int32_t> Step(const std::vector<int32_t>& from,
                            Symbol symbol) const;

  /// All symbols appearing on transitions.
  std::vector<Symbol> Alphabet() const;
};

/// Deterministic automaton (complete over its alphabet, with a sink).
struct Dfa {
  int32_t num_states = 0;
  int32_t initial = 0;
  std::vector<bool> accepting;
  std::vector<Symbol> alphabet;  // sorted
  /// dense transition table: next[state * alphabet.size() + symbol_index]
  std::vector<int32_t> next;

  int32_t SymbolIndex(Symbol s) const;  // -1 if not in alphabet
  /// Steps from `state` on `s`; symbols outside the alphabet go to the sink
  /// (state with no accepting continuation) — callers must ensure the DFA was
  /// built over a sufficient alphabet or handle -1 from SymbolIndex.
  int32_t StepState(int32_t state, Symbol s) const;
  bool Accepts(std::span<const Symbol> word) const;

  /// Subset construction.  `extra_alphabet` symbols are added to the NFA's
  /// own alphabet (needed when the DFA must be complete over a larger set).
  static Dfa Determinize(const Nfa& nfa,
                         const std::vector<Symbol>& extra_alphabet = {});

  /// Moore's algorithm; returns an equivalent minimal complete DFA.
  Dfa Minimize() const;

  /// Complements acceptance (requires completeness, which Determinize
  /// guarantees over its alphabet).
  Dfa Complement() const;
};

}  // namespace tpc

#endif  // TPC_REGEX_NFA_H_
