// Regular expressions over interned labels (Section 2.2 of the paper).
//
// DTD content models are standard regular expressions with concatenation,
// disjunction (`+` in the paper, `|` in our concrete syntax), Kleene star,
// plus and optional.  Expressions are immutable DAG-free trees owned by a
// `Regex` value.

#ifndef TPC_REGEX_REGEX_H_
#define TPC_REGEX_REGEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "base/label.h"
#include "base/parse_result.h"

namespace tpc {

/// AST of a regular expression.
class Regex {
 public:
  enum class Kind : uint8_t {
    kEmptySet,  // ∅ — matches nothing
    kEpsilon,   // ε — matches the empty word
    kLetter,    // a single label
    kConcat,
    kUnion,
    kStar,      // zero or more
    kPlus,      // one or more
    kOptional,  // zero or one
  };

  /// Constructors.
  static Regex EmptySet();
  static Regex Epsilon();
  static Regex Letter(LabelId label);
  static Regex Concat(std::vector<Regex> parts);
  static Regex Union(std::vector<Regex> parts);
  static Regex Star(Regex inner);
  static Regex Plus(Regex inner);
  static Regex Optional(Regex inner);

  Kind kind() const { return kind_; }
  LabelId letter() const { return letter_; }
  const std::vector<Regex>& children() const { return children_; }

  /// True if the empty word is in the language.
  bool Nullable() const;

  /// All labels occurring in the expression (`Labels(r)` in the paper).
  std::vector<LabelId> Labels() const;

  /// Size of the word representation (`|r|` in the paper): number of letter,
  /// epsilon and operator occurrences.
  int32_t Size() const;

  std::string ToString(const LabelPool& pool) const;

 private:
  Regex() = default;
  void CollectLabels(std::vector<LabelId>* out) const;
  void AppendString(const LabelPool& pool, int parent_prec,
                    std::string* out) const;

  Kind kind_ = Kind::kEmptySet;
  LabelId letter_ = kNoLabel;
  std::vector<Regex> children_;
};

/// Parses a regular expression.  Concrete syntax:
///   union:  `r | s`, or `r + s` as written in the paper;
///   concat: juxtaposition `r s`, or explicit `r . s` / `r , s`;
///   postfix `*` (star) and `?` (optional); parentheses group;
///   `eps` is the empty word, `empty` the empty language.
/// Note: `+` is always *union* (paper convention); one-or-more is written
/// `r r*` in concrete syntax (the AST still has `Plus` for programmatic use).
ParseResult<Regex> ParseRegex(std::string_view input, LabelPool* pool);

/// Parses or aborts; for trusted inputs in tests and examples.
Regex MustParseRegex(std::string_view input, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_REGEX_REGEX_H_
