#include "serve/signals.h"

#include <signal.h>
#include <unistd.h>

#include <atomic>

#include "engine/engine.h"

namespace tpc {
namespace serve {

namespace {

// Handler state.  Plain atomics: everything a handler touches must be
// async-signal-safe, which rules out mutexes and heap allocation.
std::atomic<EngineContext*> g_cancel_ctx{nullptr};
std::atomic<int> g_wake_fd{-1};
std::atomic<bool> g_drain_signalled{false};

void RestoreDefault(int signo) {
  struct sigaction dfl;
  sigemptyset(&dfl.sa_mask);
  dfl.sa_flags = 0;
  dfl.sa_handler = SIG_DFL;
  sigaction(signo, &dfl, nullptr);
}

void HandleCancel(int signo) {
  // Second delivery kills: if cancellation did not unwind the process, the
  // operator's next ^C must still work.
  RestoreDefault(signo);
  EngineContext* ctx = g_cancel_ctx.load(std::memory_order_acquire);
  if (ctx != nullptr) ctx->Cancel();
}

void HandleDrain(int signo) {
  RestoreDefault(signo);
  g_drain_signalled.store(true, std::memory_order_release);
  const int fd = g_wake_fd.load(std::memory_order_acquire);
  if (fd >= 0) {
    const char byte = 1;
    // A full pipe is fine: the IO thread is already awake in that case.
    [[maybe_unused]] ssize_t n = write(fd, &byte, 1);
  }
}

void Install(void (*handler)(int)) {
  struct sigaction sa;
  sigemptyset(&sa.sa_mask);
  // No SA_RESTART: a poll()/read() blocked when the signal lands must
  // return EINTR so the drain is noticed even if the wake byte is lost.
  sa.sa_flags = 0;
  sa.sa_handler = handler;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace

void InstallCancelOnSignals(EngineContext* ctx) {
  g_cancel_ctx.store(ctx, std::memory_order_release);
  Install(&HandleCancel);
}

void InstallDrainOnSignals(int wake_fd) {
  g_wake_fd.store(wake_fd, std::memory_order_release);
  Install(&HandleDrain);
}

bool DrainSignalled() {
  return g_drain_signalled.load(std::memory_order_acquire);
}

}  // namespace serve
}  // namespace tpc
