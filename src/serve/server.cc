#include "serve/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <utility>

#include "pattern/tpq_parser.h"
#include "serve/signals.h"

namespace tpc {
namespace serve {

namespace {

/// Cap on a connection's queued-but-unsent response bytes.  A client that
/// stops reading is cut off rather than buffered without bound (its
/// responses were still generated and counted — the invariant is about
/// attribution, not about delivery to a dead reader).
constexpr size_t kMaxOutboxBytes = 4u << 20;

/// Poll tick: bounds how stale the drain-deadline check and the
/// re-cancellation of worker budgets can be.
constexpr int kPollMs = 100;

int64_t NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(QueryService* service, LabelPool* pool,
               const ServerOptions& options)
    : service_(service),
      pool_(pool),
      options_(options),
      tenants_(options.default_quota, options.require_registered),
      scheduler_() {}

Server::~Server() {
  if (started_.load(std::memory_order_acquire) &&
      !io_done_.load(std::memory_order_acquire)) {
    RequestDrain();
    Wait();
  }
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
}

bool Server::SetupListenSocket(std::string* error) {
  if (!options_.unix_path.empty()) {
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
      return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      if (error != nullptr) *error = "unix path too long";
      return false;
    }
    strncpy(addr.sun_path, options_.unix_path.c_str(),
            sizeof(addr.sun_path) - 1);
    unlink(options_.unix_path.c_str());  // stale socket from a prior run
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
      return false;
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) {
      if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
      return false;
    }
    const int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      if (error != nullptr) *error = "bind: " + std::string(strerror(errno));
      return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
    port_ = ntohs(bound.sin_port);
  }
  if (!SetNonBlocking(listen_fd_) || listen(listen_fd_, 64) != 0) {
    if (error != nullptr) *error = "listen: " + std::string(strerror(errno));
    return false;
  }
  return true;
}

bool Server::Start(std::string* error) {
  if (pipe(wake_pipe_) != 0) {
    if (error != nullptr) *error = "pipe: " + std::string(strerror(errno));
    return false;
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);
  if (!SetupListenSocket(error)) {
    if (listen_fd_ >= 0) {
      close(listen_fd_);
      listen_fd_ = -1;
    }
    return false;
  }

  const int workers = options_.workers > 0 ? options_.workers : 1;
  EngineConfig worker_cfg = options_.worker_config;
  worker_cfg.threads = 1;  // workers must not nest parallel sweeps
  for (int w = 0; w < workers; ++w) {
    worker_ctxs_.push_back(std::make_unique<EngineContext>(worker_cfg));
  }
  const int window = options_.group_window > 1 ? options_.group_window : 1;
  for (int w = 0; w < workers && window > 1; ++w) {
    for (int j = 0; j < window - 1; ++j) {
      member_ctxs_.push_back(std::make_unique<EngineContext>(worker_cfg));
    }
  }
  EngineConfig pool_cfg;
  pool_cfg.threads = workers;  // pool threads = serve workers
  pool_ctx_ = std::make_unique<EngineContext>(pool_cfg);

  started_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  // The runner feeds the engine pool one everlasting job: each index of the
  // ParallelFor *is* a serve worker loop, so the workers are genuine
  // engine::ThreadPool threads (plus the runner itself for index claiming).
  runner_thread_ = std::thread([this, workers] {
    pool_ctx_->pool().ParallelFor(workers, [this](int64_t w) {
      WorkerLoop(static_cast<int>(w));
    });
  });
  return true;
}

void Server::RequestDrain() {
  drain_requested_.store(true, std::memory_order_release);
  WakeIo();
}

void Server::WakeIo() const {
  const char byte = 1;
  // A full pipe means a wake is already pending; EAGAIN is success here.
  [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &byte, 1);
}

DrainReport Server::Wait() {
  if (io_thread_.joinable()) io_thread_.join();
  if (runner_thread_.joinable()) runner_thread_.join();
  report_.accepted = accepted_.load(std::memory_order_relaxed);
  report_.responded = responded_.load(std::memory_order_relaxed);
  report_.drain_cancelled = drain_cancelled_.load(std::memory_order_relaxed);
  if (!options_.snapshot_path.empty()) {
    std::string err;
    report_.snapshot_saved =
        service_->SaveSnapshot(options_.snapshot_path, &err);
    if (!report_.snapshot_saved) report_.snapshot_error = err;
  }
  return report_;
}

std::string Server::EngineStatsJson() const {
  EngineStats merged;
  merged.MergeFrom(service_->context()->stats());
  for (const auto& ctx : worker_ctxs_) merged.MergeFrom(ctx->stats());
  for (const auto& ctx : member_ctxs_) merged.MergeFrom(ctx->stats());
  return merged.ToJson(service_->context()->budget());
}

std::string Server::StatsFrameJson() {
  std::string out = "{\"server\": {";
  out += "\"accepted\": " +
         std::to_string(accepted_.load(std::memory_order_relaxed)) + ", ";
  out += "\"responded\": " +
         std::to_string(responded_.load(std::memory_order_relaxed)) + ", ";
  out += "\"queued\": " + std::to_string(scheduler_.queued()) + ", ";
  out += std::string("\"draining\": ") +
         (drain_requested_.load(std::memory_order_relaxed) ? "true" : "false");
  out += "}, \"tenants\": " + tenants_.StatsJson();
  out += ", \"engine\": " + EngineStatsJson();
  out += "}";
  return out;
}

// ---- IO thread ----

void Server::IoLoop() {
  int64_t drain_deadline_ns = -1;
  bool drain_started = false;
  std::vector<pollfd> fds;
  std::vector<uint64_t> fd_conn;  // parallel to fds, 0 for listen/wake

  while (true) {
    // Route finished worker responses into connection outboxes.
    std::vector<PendingResponse> ready;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      ready.swap(pending_);
    }
    for (PendingResponse& r : ready) {
      auto it = conns_.find(r.conn_id);
      // A vanished connection simply discards the bytes: the response was
      // generated and counted, which is what the invariant demands.
      if (it != conns_.end()) QueueToConn(&it->second, std::move(r.bytes));
    }

    // Drain state machine.
    if (!drain_started && (drain_requested_.load(std::memory_order_acquire) ||
                           DrainSignalled())) {
      drain_started = true;
      drain_requested_.store(true, std::memory_order_release);
      BeginDrain();
      drain_deadline_ns = NowNs() + options_.drain_ms * 1000000;
    }
    if (drain_started && NowNs() >= drain_deadline_ns) {
      drain_expired_.store(true, std::memory_order_release);
    }
    if (drain_expired_.load(std::memory_order_acquire)) {
      // Re-cancel every tick: `Budget::Arm` (a worker starting a request it
      // dequeued just before the flag flipped) clears a pending
      // cancellation, so a single Cancel could be lost.  Repeating it each
      // tick bounds any straggler's overrun by one poll interval.
      for (auto& ctx : worker_ctxs_) ctx->Cancel();
      for (auto& ctx : member_ctxs_) ctx->Cancel();
    }

    const int workers_total = static_cast<int>(worker_ctxs_.size());
    if (drain_started &&
        workers_done_.load(std::memory_order_acquire) == workers_total) {
      std::lock_guard<std::mutex> lock(pending_mu_);
      if (pending_.empty()) break;  // final flush happens below
    }

    fds.clear();
    fd_conn.clear();
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    fd_conn.push_back(0);
    for (auto& [id, conn] : conns_) {
      short events = POLLIN;
      if (conn.outbox_sent < conn.outbox.size()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    const int n = poll(fds.data(), fds.size(), kPollMs);
    if (n < 0 && errno != EINTR) break;  // unrecoverable; drain via dtor

    // Drain the wake pipe.
    char buf[256];
    while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
    }

    std::vector<uint64_t> dead;
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == listen_fd_) {
        AcceptNew();
        continue;
      }
      if (fds[i].fd == wake_pipe_[0]) continue;
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      Connection* conn = &it->second;
      if (fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) {
        // Mid-stream disconnect: admitted requests still run to completion;
        // their responses are discarded at routing time.
        dead.push_back(conn->id);
        continue;
      }
      if (fds[i].revents & POLLOUT) FlushOutbox(conn);
      if (fds[i].revents & POLLIN) ReadFrames(conn);
      if (conn->broken ||
          ((conn->goodbye || conn->reader.errored()) &&
           conn->outbox_sent >= conn->outbox.size())) {
        dead.push_back(conn->id);
      }
    }
    for (uint64_t id : dead) CloseConn(id);
  }

  // Final best-effort flush of whatever the last workers produced, bounded
  // so a non-reading client cannot wedge the drain.
  {
    std::vector<PendingResponse> ready;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      ready.swap(pending_);
    }
    for (PendingResponse& r : ready) {
      auto it = conns_.find(r.conn_id);
      if (it != conns_.end()) QueueToConn(&it->second, std::move(r.bytes));
    }
    const int64_t flush_deadline = NowNs() + 250 * 1000000;
    bool unflushed = true;
    while (unflushed && NowNs() < flush_deadline) {
      unflushed = false;
      for (auto& [id, conn] : conns_) {
        FlushOutbox(&conn);
        if (!conn.broken && conn.outbox_sent < conn.outbox.size()) {
          unflushed = true;
        }
      }
      if (unflushed) poll(nullptr, 0, 10);
    }
  }

  for (auto& [id, conn] : conns_) close(conn.fd);
  conns_.clear();
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
  }
  io_done_.store(true, std::memory_order_release);
}

void Server::BeginDrain() {
  // Stop accepts first (close the door), then stop submits: a QUERY read
  // after this point is answered kCancelledDrain inline by HandleQuery.
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    if (!options_.unix_path.empty()) unlink(options_.unix_path.c_str());
  }
  scheduler_.CloseSubmit();
}

void Server::AcceptNew() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error; poll retries
    SetNonBlocking(fd);
    Connection conn;
    conn.fd = fd;
    conn.id = next_conn_id_++;
    conns_.emplace(conn.id, std::move(conn));
  }
}

void Server::ReadFrames(Connection* conn) {
  char buf[16384];
  while (true) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->reader.Feed(buf, static_cast<size_t>(n));
      if (static_cast<size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {  // orderly shutdown from the client
      conn->goodbye = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) break;
    conn->broken = true;
    return;
  }
  Frame frame;
  std::string err;
  while (!conn->reader.errored()) {
    const FrameReader::Result r = conn->reader.Poll(&frame, &err);
    if (r == FrameReader::Result::kNeedMore) break;
    if (r == FrameReader::Result::kError) {
      QueueToConn(conn, EncodeError(WireStatus::kProtocolError, err));
      return;  // sticky; connection closes once the error frame flushes
    }
    HandleFrame(conn, std::move(frame));
  }
}

void Server::HandleFrame(Connection* conn, Frame frame) {
  std::string err;
  switch (frame.type) {
    case FrameType::kHello: {
      HelloFrame hello;
      if (!DecodeHello(frame.payload, &hello, &err)) {
        QueueToConn(conn, EncodeError(WireStatus::kProtocolError, err));
        conn->goodbye = true;
        return;
      }
      if (hello.version != kProtocolVersion) {
        QueueToConn(conn, EncodeError(WireStatus::kProtocolError,
                                      "unsupported protocol version"));
        conn->goodbye = true;
        return;
      }
      if (conn->tenant != nullptr) {
        QueueToConn(conn, EncodeError(WireStatus::kProtocolError,
                                      "duplicate HELLO"));
        conn->goodbye = true;
        return;
      }
      Tenant* tenant = tenants_.Resolve(hello.tenant_id);
      if (tenant == nullptr) {
        QueueToConn(conn, EncodeError(WireStatus::kUnknownTenant,
                                      "unknown or invalid tenant id"));
        conn->goodbye = true;
        return;
      }
      conn->tenant = tenant;
      QueueToConn(conn, EncodeHelloOk());
      return;
    }
    case FrameType::kQuery:
      HandleQuery(conn, frame);
      return;
    case FrameType::kStats:
      QueueToConn(conn, EncodeStatsJson(StatsFrameJson()));
      return;
    case FrameType::kGoodbye:
      conn->goodbye = true;
      return;
    default:
      // FrameReader only passes known types through; server-direction types
      // arriving here are a client bug.
      QueueToConn(conn, EncodeError(WireStatus::kProtocolError,
                                    "unexpected frame type"));
      conn->goodbye = true;
      return;
  }
}

void Server::HandleQuery(Connection* conn, const Frame& frame) {
  std::string err;
  if (conn->tenant == nullptr) {
    QueueToConn(conn,
                EncodeError(WireStatus::kProtocolError, "QUERY before HELLO"));
    conn->goodbye = true;
    return;
  }
  QueryFrame query;
  if (!DecodeQuery(frame.payload, &query, &err)) {
    QueueToConn(conn, EncodeError(WireStatus::kProtocolError, err));
    conn->goodbye = true;
    return;
  }
  Tenant* tenant = conn->tenant;

  ResponseFrame reject;
  reject.request_id = query.request_id;
  if (drain_requested_.load(std::memory_order_acquire)) {
    reject.status = WireStatus::kCancelledDrain;
    reject.retryable = WireStatusRetryable(reject.status);
    tenant->counters().drain_cancelled.fetch_add(1, std::memory_order_relaxed);
    QueueToConn(conn, EncodeResponse(reject));
    return;
  }
  uint32_t retry_after_ms = 0;
  if (scheduler_.queued() >= options_.max_queued) {
    reject.status = WireStatus::kShedOverload;
    reject.retryable = true;
    reject.retry_after_ms = 1000;
    tenant->counters().shed.fetch_add(1, std::memory_order_relaxed);
    QueueToConn(conn, EncodeResponse(reject));
    return;
  }
  if (!tenants_.TryReserve(tenant, &retry_after_ms)) {
    reject.status = WireStatus::kShedOverload;
    reject.retryable = true;
    reject.retry_after_ms = retry_after_ms;
    tenant->counters().shed.fetch_add(1, std::memory_order_relaxed);
    QueueToConn(conn, EncodeResponse(reject));
    return;
  }

  ServeRequest req;
  req.conn_id = conn->id;
  req.request_id = query.request_id;
  req.tenant = tenant;
  req.mode = query.mode;
  req.p_src = std::move(query.p);
  req.q_src = std::move(query.q);
  req.enqueue_ns = NowNs();
  if (!scheduler_.Submit(std::move(req))) {
    // The drain door closed between the check above and here; the slot is
    // returned and the request answered — never silently dropped.
    tenants_.ReleaseSlot(tenant);
    reject.status = WireStatus::kCancelledDrain;
    reject.retryable = WireStatusRetryable(reject.status);
    tenant->counters().drain_cancelled.fetch_add(1, std::memory_order_relaxed);
    QueueToConn(conn, EncodeResponse(reject));
    return;
  }
  tenant->counters().admitted.fetch_add(1, std::memory_order_relaxed);
  accepted_.fetch_add(1, std::memory_order_relaxed);
}

void Server::QueueToConn(Connection* conn, std::string bytes) {
  if (conn->broken) return;
  if (conn->outbox.size() - conn->outbox_sent + bytes.size() >
      kMaxOutboxBytes) {
    conn->broken = true;  // non-reading client; cut off, don't buffer
    return;
  }
  // Compact the sent prefix opportunistically.
  if (conn->outbox_sent > 0 && conn->outbox_sent == conn->outbox.size()) {
    conn->outbox.clear();
    conn->outbox_sent = 0;
  }
  conn->outbox += bytes;
  FlushOutbox(conn);
}

void Server::FlushOutbox(Connection* conn) {
  while (!conn->broken && conn->outbox_sent < conn->outbox.size()) {
    const ssize_t n =
        send(conn->fd, conn->outbox.data() + conn->outbox_sent,
             conn->outbox.size() - conn->outbox_sent, MSG_NOSIGNAL);
    if (n > 0) {
      conn->outbox_sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR)) {
      return;  // poll() will report POLLOUT
    }
    conn->broken = true;
  }
}

void Server::CloseConn(uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  close(it->second.fd);
  conns_.erase(it);
}

// ---- Workers ----

void Server::PushResponse(uint64_t conn_id, std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_.push_back(PendingResponse{conn_id, std::move(bytes)});
  }
  WakeIo();
}

void Server::RespondUnrun(const ServeRequest& req, WireStatus status) {
  ResponseFrame resp;
  resp.request_id = req.request_id;
  resp.status = status;
  resp.retryable = WireStatusRetryable(status);
  req.tenant->counters().drain_cancelled.fetch_add(1,
                                                   std::memory_order_relaxed);
  req.tenant->counters().completed.fetch_add(1, std::memory_order_relaxed);
  tenants_.ReleaseSlot(req.tenant);
  drain_cancelled_.fetch_add(1, std::memory_order_relaxed);
  responded_.fetch_add(1, std::memory_order_relaxed);
  PushResponse(req.conn_id, EncodeResponse(resp));
}

void Server::FillVerdict(ResponseFrame* resp, const ContainmentResult& result,
                         EngineContext* ctx, TenantCounters* counters) {
  if (result.outcome == Outcome::kDecided) {
    resp->status = WireStatus::kOk;
    resp->contained = result.contained;
    if (!result.contained && result.counterexample.has_value()) {
      resp->detail = result.counterexample->ToString(*pool_);
    }
    counters->decided.fetch_add(1, std::memory_order_relaxed);
  } else {
    ExhaustionReason reason = result.reason;
    if (reason == ExhaustionReason::kNone) reason = ctx->budget().reason();
    if (reason == ExhaustionReason::kNone) {
      reason = ExhaustionReason::kSteps;  // undecided must name a cause
    }
    resp->status = WireStatusForReason(reason);
    switch (reason) {
      case ExhaustionReason::kDeadline:
        counters->deadline_expired.fetch_add(1, std::memory_order_relaxed);
        break;
      case ExhaustionReason::kMemory:
        counters->memory_exhausted.fetch_add(1, std::memory_order_relaxed);
        break;
      case ExhaustionReason::kCancelled:
        counters->drain_cancelled.fetch_add(1, std::memory_order_relaxed);
        break;
      default:
        counters->steps_exhausted.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
}

void Server::ProcessOne(EngineContext* ctx, ServeRequest& req) {
  Tenant* tenant = req.tenant;
  TenantCounters& counters = tenant->counters();
  counters.queue_wait_ns.fetch_add(req.queue_wait_ns,
                                   std::memory_order_relaxed);
  if (drain_expired_.load(std::memory_order_acquire)) {
    // Past the drain deadline the backlog is answered, not run.
    RespondUnrun(req, WireStatus::kCancelledDrain);
    return;
  }

  const TenantQuota& quota = tenant->quota();
  ctx->budget().Arm(quota.step_limit, quota.deadline_ms, quota.memory_limit);
  const int64_t t0 = NowNs();

  ResponseFrame resp;
  resp.request_id = req.request_id;
  ParseDiagnostic diag;
  std::optional<Tpq> p = ParseTpqChecked(req.p_src, pool_, &diag);
  std::optional<Tpq> q =
      p.has_value() ? ParseTpqChecked(req.q_src, pool_, &diag) : std::nullopt;
  if (!p.has_value() || !q.has_value()) {
    resp.status = WireStatus::kBadRequest;
    resp.detail = (p.has_value() ? "q: " : "p: ") + diag.ToString();
    counters.bad_requests.fetch_add(1, std::memory_order_relaxed);
  } else {
    const ContainmentResult result =
        service_->ContainsFor(*p, *q, req.mode, ctx);
    FillVerdict(&resp, result, ctx, &counters);
  }
  resp.retryable = WireStatusRetryable(resp.status);
  if (resp.status == WireStatus::kCancelledDrain) {
    drain_cancelled_.fetch_add(1, std::memory_order_relaxed);
  }
  counters.decide_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  counters.completed.fetch_add(1, std::memory_order_relaxed);
  tenants_.ReleaseSlot(tenant);
  responded_.fetch_add(1, std::memory_order_relaxed);
  PushResponse(req.conn_id, EncodeResponse(resp));
}

EngineContext* Server::MemberCtx(int worker_index, size_t slot) {
  if (slot == 0) return worker_ctxs_[static_cast<size_t>(worker_index)].get();
  const size_t per_worker =
      static_cast<size_t>(options_.group_window > 1 ? options_.group_window - 1
                                                    : 0);
  return member_ctxs_[static_cast<size_t>(worker_index) * per_worker +
                      (slot - 1)]
      .get();
}

void Server::ProcessGroup(int worker_index, std::vector<ServeRequest>* reqs) {
  // The scheduler coalesces within one tenant only, so quota and counters
  // are shared by the whole batch.
  Tenant* tenant = (*reqs)[0].tenant;
  TenantCounters& counters = tenant->counters();
  for (const ServeRequest& r : *reqs) {
    counters.queue_wait_ns.fetch_add(r.queue_wait_ns,
                                     std::memory_order_relaxed);
  }
  if (drain_expired_.load(std::memory_order_acquire)) {
    for (const ServeRequest& r : *reqs) {
      RespondUnrun(r, WireStatus::kCancelledDrain);
    }
    return;
  }

  const TenantQuota& quota = tenant->quota();
  const int64_t t0 = NowNs();
  const size_t n = reqs->size();

  // p is parsed once for the whole group (the coalescing key is its source
  // text); each member still parses and is attributed its own q.
  ParseDiagnostic pdiag;
  std::optional<Tpq> p = ParseTpqChecked((*reqs)[0].p_src, pool_, &pdiag);
  std::vector<ResponseFrame> resps(n);
  std::vector<std::optional<Tpq>> qs(n);
  std::vector<QueryService::GroupQuery> queries;
  std::vector<size_t> query_slot;  // queries[k] answers (*reqs)[query_slot[k]]
  queries.reserve(n);
  query_slot.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    resps[i].request_id = (*reqs)[i].request_id;
    if (!p.has_value()) {
      resps[i].status = WireStatus::kBadRequest;
      resps[i].detail = "p: " + pdiag.ToString();
      counters.bad_requests.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    ParseDiagnostic qdiag;
    qs[i] = ParseTpqChecked((*reqs)[i].q_src, pool_, &qdiag);
    if (!qs[i].has_value()) {
      // A member with a malformed q is answered alone; its groupmates
      // still run — one bad request never poisons the batch.
      resps[i].status = WireStatus::kBadRequest;
      resps[i].detail = "q: " + qdiag.ToString();
      counters.bad_requests.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    EngineContext* mctx = MemberCtx(worker_index, queries.size());
    mctx->budget().Arm(quota.step_limit, quota.deadline_ms,
                       quota.memory_limit);
    QueryService::GroupQuery gq;
    gq.p = &*p;
    gq.q = &*qs[i];
    gq.mode = (*reqs)[i].mode;
    gq.ctx = mctx;
    queries.push_back(gq);
    query_slot.push_back(i);
  }

  if (!queries.empty()) {
    if (queries.size() >= 2) {
      counters.sweep_groups.fetch_add(1, std::memory_order_relaxed);
      counters.group_members.fetch_add(
          static_cast<int64_t>(queries.size()), std::memory_order_relaxed);
    }
    auto retired_sum = [&queries] {
      int64_t sum = 0;
      for (const QueryService::GroupQuery& gq : queries) {
        sum += gq.ctx->stats().group_members_retired_early.load(
            std::memory_order_relaxed);
      }
      return sum;
    };
    const int64_t retired_before = retired_sum();
    const std::vector<ContainmentResult> results =
        service_->ContainsGroupFor(queries);
    const int64_t retired_delta = retired_sum() - retired_before;
    if (retired_delta > 0) {
      counters.group_retired_early.fetch_add(retired_delta,
                                             std::memory_order_relaxed);
    }
    for (size_t k = 0; k < queries.size(); ++k) {
      FillVerdict(&resps[query_slot[k]], results[k], queries[k].ctx,
                  &counters);
    }
  }

  // The group shares one wall-clock interval: decide_ns is charged once
  // (it measures worker time burnt for the tenant, which the batch shares).
  counters.decide_ns.fetch_add(NowNs() - t0, std::memory_order_relaxed);
  for (size_t i = 0; i < n; ++i) {
    resps[i].retryable = WireStatusRetryable(resps[i].status);
    if (resps[i].status == WireStatus::kCancelledDrain) {
      drain_cancelled_.fetch_add(1, std::memory_order_relaxed);
    }
    counters.completed.fetch_add(1, std::memory_order_relaxed);
    tenants_.ReleaseSlot(tenant);
    responded_.fetch_add(1, std::memory_order_relaxed);
    PushResponse((*reqs)[i].conn_id, EncodeResponse(resps[i]));
  }
}

void Server::WorkerLoop(int worker_index) {
  EngineContext* ctx = worker_ctxs_[static_cast<size_t>(worker_index)].get();
  const int window = options_.group_window > 1 ? options_.group_window : 1;
  std::vector<ServeRequest> reqs;
  while (scheduler_.NextBatch(&reqs, window)) {
    if (reqs.size() == 1) {
      ProcessOne(ctx, reqs[0]);
    } else {
      ProcessGroup(worker_index, &reqs);
    }
  }
  workers_done_.fetch_add(1, std::memory_order_acq_rel);
  WakeIo();
}

}  // namespace serve
}  // namespace tpc
