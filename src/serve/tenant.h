// Multi-tenant admission control for the containment daemon.
//
// The paper's dichotomy is the whole reason this layer exists: a tenant can
// submit PTIME fragment pairs that decide in microseconds, or coNP sweep
// instances that exhaust any budget you give them (Theorem 3.3).  A shared
// daemon therefore treats tenants, not requests, as the unit of resource
// policy:
//
//   * every tenant has a registered `TenantQuota` — per-request step /
//     deadline / tracked-memory limits that the worker arms onto its
//     `Budget` before deciding, an outstanding-request cap that bounds how
//     much of the queue one tenant can occupy, and a fair-share weight for
//     the deficit scheduler;
//   * admission is O(1) and happens on the IO thread: a request either
//     reserves an outstanding slot or is shed immediately with
//     `kShedOverload` and a retry-after hint — the daemon never queues
//     unboundedly on behalf of a tenant;
//   * per-tenant counters (admitted / shed / completed / deadline_expired /
//     queue_wait_ns / ...) feed the STATS frame so an operator can see who
//     is burning the budget.
//
// Reservation discipline (asserted by serve_protocol_test and
// serve_fault_test): `TryReserve` and `ReleaseSlot` are strictly paired —
// one release per reservation, exactly when the request's single RESPONSE
// frame is generated — so a malformed or faulted request can never leak an
// admission slot.

#ifndef TPC_SERVE_TENANT_H_
#define TPC_SERVE_TENANT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tpc {
namespace serve {

/// Per-tenant resource policy.  Zero limits mean "unlimited" for the
/// engine-budget triple (matching `Budget::Arm`).
struct TenantQuota {
  /// Per-request step budget (0 = unlimited).
  int64_t step_limit = 0;
  /// Per-request compute deadline in ms, armed at dequeue — queue wait does
  /// not consume it (0 = unlimited).
  int64_t deadline_ms = 0;
  /// Per-request tracked-memory budget in bytes (0 = unlimited).
  int64_t memory_limit = 0;
  /// Cap on admitted-but-unanswered requests (queued + executing).  At the
  /// cap, new requests are shed with a retry-after hint.
  int32_t max_outstanding = 64;
  /// Fair-share weight for the deficit scheduler (>= 1): a tenant with
  /// weight w is served up to w*quantum consecutive requests per round.
  uint32_t weight = 1;
};

/// Atomic per-tenant observability counters, dumped by the STATS frame.
struct TenantCounters {
  std::atomic<int64_t> admitted{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> completed{0};          // one per RESPONSE generated
  std::atomic<int64_t> decided{0};            // RESPONSEs with status OK
  std::atomic<int64_t> deadline_expired{0};   // reason kDeadline
  std::atomic<int64_t> steps_exhausted{0};    // reason kSteps
  std::atomic<int64_t> memory_exhausted{0};   // reason kMemory
  std::atomic<int64_t> drain_cancelled{0};    // reason kCancelled / drain
  std::atomic<int64_t> bad_requests{0};
  std::atomic<int64_t> queue_wait_ns{0};      // total scheduler wait
  std::atomic<int64_t> decide_ns{0};          // total worker compute time
  // Grouped-sweep coalescing (scheduler window >= 2 requests dequeued
  // together and decided by QueryService::ContainsGroupFor).
  std::atomic<int64_t> sweep_groups{0};        // coalesced batches formed
  std::atomic<int64_t> group_members{0};       // requests inside those batches
  std::atomic<int64_t> group_retired_early{0};  // members retired mid-sweep
};

/// One tenant: identity, quota, counters and the outstanding-slot gauge.
/// Created once by the registry and never destroyed while the server lives,
/// so workers hold plain pointers.
class Tenant {
 public:
  Tenant(std::string id, const TenantQuota& quota)
      : id_(std::move(id)), quota_(quota) {}

  Tenant(const Tenant&) = delete;
  Tenant& operator=(const Tenant&) = delete;

  const std::string& id() const { return id_; }
  const TenantQuota& quota() const { return quota_; }
  TenantCounters& counters() { return counters_; }
  const TenantCounters& counters() const { return counters_; }

  int32_t outstanding() const {
    return outstanding_.load(std::memory_order_relaxed);
  }

 private:
  friend class TenantRegistry;
  const std::string id_;
  const TenantQuota quota_;
  TenantCounters counters_;
  std::atomic<int32_t> outstanding_{0};
};

/// The tenant directory plus the admission gate.  Thread-safe: Resolve and
/// Register take a mutex (cold path — once per connection / config line);
/// TryReserve / ReleaseSlot are lock-free on the tenant's own gauge (hot
/// path — once per request).
class TenantRegistry {
 public:
  /// `default_quota` applies to tenants that HELLO without a prior
  /// `Register` call; with `require_registered` those are rejected with
  /// `kUnknownTenant` instead.  `max_tenants` bounds the directory so a
  /// hostile client cannot intern unbounded tenant ids.
  explicit TenantRegistry(const TenantQuota& default_quota = {},
                          bool require_registered = false,
                          size_t max_tenants = 1024);

  /// Registers (or re-registers) `id` with an explicit quota.  Returns
  /// false for invalid ids or a full directory.
  bool Register(std::string_view id, const TenantQuota& quota);

  /// Looks `id` up, creating it with the default quota unless registration
  /// is required.  Returns null for invalid ids, unknown tenants under
  /// `require_registered`, or a full directory.
  Tenant* Resolve(std::string_view id);

  /// Admission: reserves one outstanding slot.  On refusal returns false
  /// and writes a retry-after hint proportional to the backlog.
  bool TryReserve(Tenant* tenant, uint32_t* retry_after_ms);

  /// Returns the slot taken by `TryReserve`.  Call exactly once, when the
  /// request's RESPONSE is generated.
  void ReleaseSlot(Tenant* tenant);

  /// Snapshot of every tenant (stable iteration order: registration order).
  std::vector<Tenant*> All() const;

  /// `{"tenant_id": {counter: value, ...}, ...}` sorted by tenant id —
  /// the per-tenant half of the STATS frame.
  std::string StatsJson() const;

 private:
  const TenantQuota default_quota_;
  const bool require_registered_;
  const size_t max_tenants_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, size_t> index_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
};

}  // namespace serve
}  // namespace tpc

#endif  // TPC_SERVE_TENANT_H_
