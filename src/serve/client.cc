#include "serve/client.h"

#include <errno.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace tpc {
namespace serve {

Client::~Client() { Close(); }

bool Client::ConnectUnix(const std::string& path, std::string_view tenant_id,
                         std::string* error) {
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    if (error != nullptr) *error = "unix path too long";
    Abort();
    return false;
  }
  strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = "connect: " + std::string(strerror(errno));
    Abort();
    return false;
  }
  return FinishConnect(tenant_id, error);
}

bool Client::ConnectTcp(int port, std::string_view tenant_id,
                        std::string* error) {
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    if (error != nullptr) *error = "socket: " + std::string(strerror(errno));
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (error != nullptr) *error = "connect: " + std::string(strerror(errno));
    Abort();
    return false;
  }
  return FinishConnect(tenant_id, error);
}

bool Client::FinishConnect(std::string_view tenant_id, std::string* error) {
  if (!SendAll(EncodeHello(tenant_id), error)) return false;
  Frame frame;
  if (!ReadFrame(&frame, error)) return false;
  if (frame.type == FrameType::kError) {
    // ERROR payload = status byte + message bytes.
    if (error != nullptr) {
      *error = frame.payload.size() > 1 ? frame.payload.substr(1)
                                        : "server rejected HELLO";
    }
    Abort();
    return false;
  }
  if (frame.type != FrameType::kHelloOk) {
    if (error != nullptr) *error = "unexpected frame in place of HELLO_OK";
    Abort();
    return false;
  }
  return true;
}

bool Client::SendQuery(uint64_t request_id, Mode mode, std::string_view p,
                       std::string_view q, std::string* error) {
  return SendAll(EncodeQuery(request_id, mode, p, q), error);
}

bool Client::ReadResponse(ResponseFrame* out, std::string* error,
                          std::string* stats_json) {
  while (true) {
    Frame frame;
    if (!ReadFrame(&frame, error)) return false;
    switch (frame.type) {
      case FrameType::kResponse:
        return DecodeResponse(frame.payload, out, error);
      case FrameType::kStatsJson:
        if (stats_json != nullptr) *stats_json = frame.payload;
        continue;
      case FrameType::kError:
        if (error != nullptr) {
          *error = frame.payload.size() > 1 ? frame.payload.substr(1)
                                            : "server error";
        }
        return false;
      default:
        if (error != nullptr) *error = "unexpected server frame";
        return false;
    }
  }
}

bool Client::Stats(std::string* json, std::string* error) {
  if (!SendAll(EncodeStatsRequest(), error)) return false;
  while (true) {
    Frame frame;
    if (!ReadFrame(&frame, error)) return false;
    if (frame.type == FrameType::kStatsJson) {
      *json = frame.payload;
      return true;
    }
    // Interleaved responses while waiting for stats are dropped — callers
    // that care about both run Stats() only between query bursts.
    if (frame.type != FrameType::kResponse) {
      if (error != nullptr) *error = "unexpected server frame";
      return false;
    }
  }
}

void Client::Close() {
  if (fd_ < 0) return;
  std::string unused;
  SendAll(EncodeGoodbye(), &unused);
  close(fd_);
  fd_ = -1;
}

void Client::Abort() {
  if (fd_ < 0) return;
  close(fd_);
  fd_ = -1;
}

bool Client::SendAll(const std::string& bytes, std::string* error) {
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        send(fd_, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (error != nullptr) *error = "send: " + std::string(strerror(errno));
    return false;
  }
  return true;
}

bool Client::ReadFrame(Frame* out, std::string* error) {
  while (true) {
    const FrameReader::Result r = reader_.Poll(out, error);
    if (r == FrameReader::Result::kFrame) return true;
    if (r == FrameReader::Result::kError) return false;
    char buf[16384];
    const ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n > 0) {
      reader_.Feed(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (error != nullptr) {
      *error = n == 0 ? "connection closed"
                      : "recv: " + std::string(strerror(errno));
    }
    return false;
  }
}

}  // namespace serve
}  // namespace tpc
