// Wire protocol of the containment daemon (`tpc_serve`).
//
// The daemon speaks a length-prefixed binary framing protocol over a
// Unix-domain or loopback TCP socket.  Every frame is
//
//   uint32  payload_length   (little-endian, excludes this 5-byte header)
//   uint8   frame_type       (FrameType)
//   bytes   payload          (payload_length bytes)
//
// A session is: client sends HELLO carrying its tenant id, server answers
// HELLO_OK (or ERROR and closes); the client then streams QUERY frames and
// the server streams RESPONSE frames back, one per query, in completion
// order (ids correlate them — the fair-share scheduler deliberately
// reorders across tenants).  STATS may be interleaved at any time.
//
// Robustness contract (serve_protocol_test.cc): any byte stream — truncated
// mid-frame, declaring absurd lengths, carrying garbage tenant ids or
// unknown frame types — is either parsed or rejected with a structured
// error.  The reader never crashes, never allocates more than the declared
// frame cap, and never spins: every `Poll` consumes input or asks for more.
//
// `WireStatus` is the stable error-code table shared by `tpc_serve`
// responses and `tpc_cli`'s UNDECIDED reporting; the mapping from
// `ExhaustionReason` (engine/budget.h) and the retryable bit per code are
// documented in README.md and must never be renumbered — clients and
// orchestrators key retry policies on them.

#ifndef TPC_SERVE_PROTOCOL_H_
#define TPC_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "contain/containment.h"
#include "engine/budget.h"

namespace tpc {
namespace serve {

/// Bumped on any incompatible frame-layout change; HELLO carries the
/// client's version and the server rejects mismatches.
inline constexpr uint32_t kProtocolVersion = 1;

/// Bytes of the fixed frame header (length + type).
inline constexpr size_t kFrameHeaderBytes = 5;

/// Hard cap on a declared payload length.  A frame claiming more is a
/// protocol error — the reader must reject it *before* buffering that much,
/// so a hostile client cannot make the server allocate gigabytes.
inline constexpr uint32_t kMaxPayloadBytes = 1u << 20;

/// Tenant ids are short tokens over [A-Za-z0-9_.-]; anything else (empty,
/// overlong, embedded NUL, shell junk) is rejected at HELLO.
inline constexpr size_t kMaxTenantIdBytes = 64;

/// Per-pattern source cap inside a QUERY frame.
inline constexpr size_t kMaxPatternBytes = 1u << 16;

enum class FrameType : uint8_t {
  // Client -> server.
  kHello = 1,    // uint32 version, uint16 len, tenant id bytes
  kQuery = 2,    // uint64 id, uint8 mode, uint16 p_len, p, uint16 q_len, q
  kStats = 3,    // empty
  kGoodbye = 4,  // empty; server flushes and closes
  // Server -> client.
  kHelloOk = 16,    // uint32 version
  kResponse = 17,   // see ResponseFrame
  kStatsJson = 18,  // JSON bytes
  kError = 19,      // uint8 status, message bytes; connection closes after
};

/// Stable wire/exit error codes.  The numbering is frozen (see README
/// "Error codes"): orchestrators and clients persist these.
enum class WireStatus : uint8_t {
  kOk = 0,                 // decided; the verdict bit is valid
  kExhaustedSteps = 1,     // step budget — retry with a larger budget
  kExhaustedDeadline = 2,  // deadline — retry with a larger budget
  kExhaustedMemory = 3,    // tracked-memory budget — shed, do not retry as-is
  kCancelledDrain = 4,     // server draining — retry against the successor
  kShedOverload = 5,       // admission refused — retry after retry_after_ms
  kBadRequest = 6,         // malformed pattern/mode — do not retry
  kProtocolError = 7,      // framing violation — connection closed
  kUnknownTenant = 8,      // tenant not registered — do not retry
};

/// Maps an engine `ExhaustionReason` to its wire code.  kNone maps to kOk;
/// legacy kNone-with-undecided callers should normalize to kSteps first
/// (tpc_cli does).
WireStatus WireStatusForReason(ExhaustionReason reason);

/// The retryable bit of the table: true when resubmitting the identical
/// request (possibly with a larger budget, or to a successor process) can
/// succeed.
bool WireStatusRetryable(WireStatus status);

/// Stable uppercase name ("OK", "EXHAUSTED_STEPS", ...); "UNKNOWN" for
/// out-of-range bytes from the wire.
const char* WireStatusName(WireStatus status);

/// True iff `id` is a valid tenant id (nonempty, <= kMaxTenantIdBytes,
/// characters in [A-Za-z0-9_.-]).
bool ValidTenantId(std::string_view id);

/// One decoded frame: the type byte and the raw payload.
struct Frame {
  FrameType type = FrameType::kHello;
  std::string payload;
};

struct HelloFrame {
  uint32_t version = 0;
  std::string tenant_id;
};

struct QueryFrame {
  uint64_t request_id = 0;
  Mode mode = Mode::kWeak;
  std::string p;
  std::string q;
};

/// The per-request answer.  Exactly one RESPONSE is sent for every QUERY
/// the server read, admitted or not (shed and drain rejections carry their
/// own status codes); `retry_after_ms` is a hint, nonzero only for
/// kShedOverload.
struct ResponseFrame {
  uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  bool contained = false;
  bool retryable = false;
  uint32_t retry_after_ms = 0;
  /// Optional human-readable detail: a counterexample tree for refutations,
  /// a parse diagnostic for kBadRequest.  Bounded by the frame cap.
  std::string detail;
};

/// Incremental frame parser over a raw byte stream.  Feed() appends socket
/// bytes; Poll() extracts at most one complete frame per call.  A protocol
/// violation (oversized declared length, unknown frame type) is sticky:
/// every later Poll() reports kError, and the connection must be closed.
class FrameReader {
 public:
  enum class Result {
    kNeedMore,  // no complete frame buffered yet
    kFrame,     // *out holds the next frame
    kError,     // protocol violation; *error names it; sticky
  };

  explicit FrameReader(uint32_t max_payload_bytes = kMaxPayloadBytes)
      : max_payload_(max_payload_bytes) {}

  /// Appends `n` raw bytes from the transport.
  void Feed(const void* data, size_t n);

  /// Extracts the next complete frame, if any.  `error` may be null.
  Result Poll(Frame* out, std::string* error);

  /// Bytes buffered but not yet consumed (tests assert boundedness).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

  bool errored() const { return errored_; }

 private:
  const uint32_t max_payload_;
  std::string buffer_;
  size_t consumed_ = 0;  // prefix of buffer_ already handed out
  bool errored_ = false;
  std::string error_;
};

// ---- Frame encoders (append the full header + payload) ----

std::string EncodeHello(std::string_view tenant_id,
                        uint32_t version = kProtocolVersion);
std::string EncodeQuery(uint64_t request_id, Mode mode, std::string_view p,
                        std::string_view q);
std::string EncodeStatsRequest();
std::string EncodeGoodbye();
std::string EncodeHelloOk(uint32_t version = kProtocolVersion);
std::string EncodeResponse(const ResponseFrame& response);
std::string EncodeStatsJson(std::string_view json);
std::string EncodeError(WireStatus status, std::string_view message);

// ---- Payload decoders (bounds-checked; false + *error on malformed) ----

bool DecodeHello(std::string_view payload, HelloFrame* out,
                 std::string* error);
bool DecodeQuery(std::string_view payload, QueryFrame* out,
                 std::string* error);
bool DecodeResponse(std::string_view payload, ResponseFrame* out,
                    std::string* error);

}  // namespace serve
}  // namespace tpc

#endif  // TPC_SERVE_PROTOCOL_H_
