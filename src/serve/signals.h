// Shared POSIX signal wiring for the two binaries.
//
// Both termination signals get the same meaning in both programs —
// "stop computing, finish attributably" — but the mechanics differ:
//
//   * `tpc_cli` (InstallCancelOnSignals): SIGINT and SIGTERM request
//     cooperative cancellation of the decision in flight via
//     `EngineContext::Cancel()`, which is documented signal-safe (lock-free
//     atomics only).  The CLI then reports UNDECIDED with the CANCELLED wire
//     code instead of dying mid-sweep.
//   * `tpc_serve` (InstallDrainOnSignals): a daemon must not run the drain
//     state machine inside a signal handler, so the handler only sets a
//     flag and writes one byte to the server's self-pipe — both
//     async-signal-safe — and the IO thread picks the drain up on its next
//     poll() wakeup.
//
// Handlers are installed with SA_RESTART off for the serve flavour so a
// blocked poll() returns with EINTR even if the wake byte races the call.

#ifndef TPC_SERVE_SIGNALS_H_
#define TPC_SERVE_SIGNALS_H_

namespace tpc {

class EngineContext;

namespace serve {

/// SIGINT + SIGTERM -> `ctx->Cancel()`.  `ctx` must outlive the handlers
/// (in practice: install on a main()-scoped context and never uninstall).
/// The second delivery of either signal restores the default disposition,
/// so a wedged process can still be killed by a repeated ^C.
void InstallCancelOnSignals(EngineContext* ctx);

/// SIGINT + SIGTERM -> set the drain flag and write one byte to `wake_fd`
/// (the server's self-pipe).  Same second-signal escape hatch as above.
void InstallDrainOnSignals(int wake_fd);

/// True once a drain signal has been delivered (readable from any thread).
bool DrainSignalled();

}  // namespace serve
}  // namespace tpc

#endif  // TPC_SERVE_SIGNALS_H_
