#include "serve/tenant.h"

#include <algorithm>

#include "serve/protocol.h"

namespace tpc {
namespace serve {

TenantRegistry::TenantRegistry(const TenantQuota& default_quota,
                               bool require_registered, size_t max_tenants)
    : default_quota_(default_quota),
      require_registered_(require_registered),
      max_tenants_(max_tenants) {}

bool TenantRegistry::Register(std::string_view id, const TenantQuota& quota) {
  if (!ValidTenantId(id) || quota.weight == 0) return false;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(id));
  // Quotas are immutable once registered: workers read them lock-free, and
  // the outstanding gauge/counters must survive any tuning anyway.
  if (it != index_.end()) return false;
  if (tenants_.size() >= max_tenants_) return false;
  tenants_.push_back(std::make_unique<Tenant>(std::string(id), quota));
  index_.emplace(std::string(id), tenants_.size() - 1);
  return true;
}

Tenant* TenantRegistry::Resolve(std::string_view id) {
  if (!ValidTenantId(id)) return nullptr;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(std::string(id));
  if (it != index_.end()) return tenants_[it->second].get();
  if (require_registered_) return nullptr;
  if (tenants_.size() >= max_tenants_) return nullptr;
  tenants_.push_back(std::make_unique<Tenant>(std::string(id), default_quota_));
  index_.emplace(std::string(id), tenants_.size() - 1);
  return tenants_.back().get();
}

bool TenantRegistry::TryReserve(Tenant* tenant, uint32_t* retry_after_ms) {
  const int32_t cap = tenant->quota_.max_outstanding;
  int32_t cur = tenant->outstanding_.load(std::memory_order_relaxed);
  while (true) {
    if (cap > 0 && cur >= cap) {
      if (retry_after_ms != nullptr) {
        // Heuristic hint: assume ~10ms per backlogged request, capped at
        // 10s.  A hint, not a promise — clients may retry sooner and simply
        // be shed again.
        const int64_t hint = static_cast<int64_t>(cur) * 10;
        *retry_after_ms = static_cast<uint32_t>(std::min<int64_t>(hint, 10000));
      }
      return false;
    }
    if (tenant->outstanding_.compare_exchange_weak(
            cur, cur + 1, std::memory_order_relaxed)) {
      return true;
    }
  }
}

void TenantRegistry::ReleaseSlot(Tenant* tenant) {
  tenant->outstanding_.fetch_sub(1, std::memory_order_relaxed);
}

std::vector<Tenant*> TenantRegistry::All() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Tenant*> out;
  out.reserve(tenants_.size());
  for (const auto& t : tenants_) out.push_back(t.get());
  return out;
}

std::string TenantRegistry::StatsJson() const {
  std::vector<Tenant*> all = All();
  std::sort(all.begin(), all.end(), [](const Tenant* a, const Tenant* b) {
    return a->id() < b->id();
  });
  auto v = [](const std::atomic<int64_t>& c) {
    return std::to_string(c.load(std::memory_order_relaxed));
  };
  std::string out = "{";
  for (size_t i = 0; i < all.size(); ++i) {
    const Tenant* t = all[i];
    const TenantCounters& c = t->counters();
    if (i > 0) out += ", ";
    out += "\"" + t->id() + "\": {";
    out += "\"admitted\": " + v(c.admitted);
    out += ", \"bad_requests\": " + v(c.bad_requests);
    out += ", \"completed\": " + v(c.completed);
    out += ", \"deadline_expired\": " + v(c.deadline_expired);
    out += ", \"decide_ns\": " + v(c.decide_ns);
    out += ", \"decided\": " + v(c.decided);
    out += ", \"drain_cancelled\": " + v(c.drain_cancelled);
    out += ", \"group_members\": " + v(c.group_members);
    out += ", \"group_retired_early\": " + v(c.group_retired_early);
    out += ", \"memory_exhausted\": " + v(c.memory_exhausted);
    out += ", \"outstanding\": " + std::to_string(t->outstanding());
    out += ", \"queue_wait_ns\": " + v(c.queue_wait_ns);
    out += ", \"shed\": " + v(c.shed);
    out += ", \"steps_exhausted\": " + v(c.steps_exhausted);
    out += ", \"sweep_groups\": " + v(c.sweep_groups);
    out += ", \"weight\": " + std::to_string(t->quota().weight);
    out += "}";
  }
  out += "}";
  return out;
}

}  // namespace serve
}  // namespace tpc
