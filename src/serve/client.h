// A minimal blocking client for the containment daemon.
//
// Used by serve_fault_test, bench_serve and anyone scripting against
// `tpc_serve` from C++: connect, HELLO, stream queries, read responses.
// Deliberately synchronous and single-threaded — the interesting
// concurrency lives on the server side; tests drive parallelism by running
// several clients on several threads.

#ifndef TPC_SERVE_CLIENT_H_
#define TPC_SERVE_CLIENT_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "serve/protocol.h"

namespace tpc {
namespace serve {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects over a Unix-domain socket (`ConnectUnix`) or loopback TCP
  /// (`ConnectTcp`) and performs the HELLO exchange.  False with `*error`
  /// on connect failure, rejection, or version mismatch.
  bool ConnectUnix(const std::string& path, std::string_view tenant_id,
                   std::string* error);
  bool ConnectTcp(int port, std::string_view tenant_id, std::string* error);

  bool connected() const { return fd_ >= 0; }

  /// Sends one QUERY frame.  Does not wait for the response — responses
  /// arrive in completion order; correlate by id via `ReadResponse`.
  bool SendQuery(uint64_t request_id, Mode mode, std::string_view p,
                 std::string_view q, std::string* error);

  /// Blocks for the next RESPONSE frame.  Other frame types arriving first
  /// (STATS_JSON) are surfaced through the optional `stats_json` sink or
  /// skipped.  False on disconnect, protocol error, or an ERROR frame
  /// (whose status/message land in `*error`).
  bool ReadResponse(ResponseFrame* out, std::string* error,
                    std::string* stats_json = nullptr);

  /// Requests and returns the server's STATS dump.
  bool Stats(std::string* json, std::string* error);

  /// Sends GOODBYE and closes.  Safe to call on a dead connection.
  void Close();

  /// Severs the transport without GOODBYE — the fault tests' mid-stream
  /// disconnect.
  void Abort();

 private:
  bool FinishConnect(std::string_view tenant_id, std::string* error);
  bool SendAll(const std::string& bytes, std::string* error);
  bool ReadFrame(Frame* out, std::string* error);

  int fd_ = -1;
  FrameReader reader_;
};

}  // namespace serve
}  // namespace tpc

#endif  // TPC_SERVE_CLIENT_H_
