#include "serve/protocol.h"

#include <cstring>

namespace tpc {
namespace serve {
namespace {

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

/// Bounds-checked little-endian cursor over one payload.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  bool U8(uint8_t* v) {
    if (pos_ + 1 > data_.size()) return false;
    *v = static_cast<uint8_t>(data_[pos_++]);
    return true;
  }

  bool U16(uint16_t* v) {
    if (pos_ + 2 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 2; ++i) {
      *v |= static_cast<uint16_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }

  bool U32(uint32_t* v) {
    if (pos_ + 4 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 4; ++i) {
      *v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }

  bool U64(uint64_t* v) {
    if (pos_ + 8 > data_.size()) return false;
    *v = 0;
    for (int i = 0; i < 8; ++i) {
      *v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
    }
    return true;
  }

  bool Bytes(size_t n, std::string* out) {
    if (pos_ + n > data_.size()) return false;
    out->assign(data_.substr(pos_, n));
    pos_ += n;
    return true;
  }

  bool AtEnd() const { return pos_ == data_.size(); }
  std::string_view Rest() const { return data_.substr(pos_); }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

bool Fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

std::string WithHeader(FrameType type, std::string_view payload) {
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  PutU32(&out, static_cast<uint32_t>(payload.size()));
  out.push_back(static_cast<char>(type));
  out.append(payload);
  return out;
}

bool KnownFrameType(uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kQuery:
    case FrameType::kStats:
    case FrameType::kGoodbye:
    case FrameType::kHelloOk:
    case FrameType::kResponse:
    case FrameType::kStatsJson:
    case FrameType::kError:
      return true;
  }
  return false;
}

}  // namespace

WireStatus WireStatusForReason(ExhaustionReason reason) {
  switch (reason) {
    case ExhaustionReason::kNone:
      return WireStatus::kOk;
    case ExhaustionReason::kSteps:
      return WireStatus::kExhaustedSteps;
    case ExhaustionReason::kDeadline:
      return WireStatus::kExhaustedDeadline;
    case ExhaustionReason::kMemory:
      return WireStatus::kExhaustedMemory;
    case ExhaustionReason::kCancelled:
      return WireStatus::kCancelledDrain;
  }
  return WireStatus::kExhaustedSteps;
}

bool WireStatusRetryable(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return false;  // nothing to retry
    case WireStatus::kExhaustedSteps:
    case WireStatus::kExhaustedDeadline:
    case WireStatus::kCancelledDrain:
    case WireStatus::kShedOverload:
      return true;
    case WireStatus::kExhaustedMemory:
    case WireStatus::kBadRequest:
    case WireStatus::kProtocolError:
    case WireStatus::kUnknownTenant:
      return false;
  }
  return false;
}

const char* WireStatusName(WireStatus status) {
  switch (status) {
    case WireStatus::kOk:
      return "OK";
    case WireStatus::kExhaustedSteps:
      return "EXHAUSTED_STEPS";
    case WireStatus::kExhaustedDeadline:
      return "EXHAUSTED_DEADLINE";
    case WireStatus::kExhaustedMemory:
      return "EXHAUSTED_MEMORY";
    case WireStatus::kCancelledDrain:
      return "CANCELLED_DRAIN";
    case WireStatus::kShedOverload:
      return "SHED_OVERLOAD";
    case WireStatus::kBadRequest:
      return "BAD_REQUEST";
    case WireStatus::kProtocolError:
      return "PROTOCOL_ERROR";
    case WireStatus::kUnknownTenant:
      return "UNKNOWN_TENANT";
  }
  return "UNKNOWN";
}

bool ValidTenantId(std::string_view id) {
  if (id.empty() || id.size() > kMaxTenantIdBytes) return false;
  for (char c : id) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == '.' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void FrameReader::Feed(const void* data, size_t n) {
  if (errored_ || n == 0) return;
  // Compact lazily: only when the consumed prefix dominates the buffer, so
  // steady-state feeding is append-only.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(static_cast<const char*>(data), n);
}

FrameReader::Result FrameReader::Poll(Frame* out, std::string* error) {
  if (errored_) {
    if (error != nullptr) *error = error_;
    return Result::kError;
  }
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return Result::kNeedMore;
  const uint8_t* head =
      reinterpret_cast<const uint8_t*>(buffer_.data()) + consumed_;
  uint32_t declared = 0;
  for (int i = 0; i < 4; ++i) {
    declared |= static_cast<uint32_t>(head[i]) << (8 * i);
  }
  const uint8_t type = head[4];
  // Reject before buffering the body: the declared length is attacker
  // controlled, the cap is ours.
  if (declared > max_payload_) {
    errored_ = true;
    error_ = "frame declares " + std::to_string(declared) +
             " payload bytes (cap " + std::to_string(max_payload_) + ")";
    if (error != nullptr) *error = error_;
    return Result::kError;
  }
  if (!KnownFrameType(type)) {
    errored_ = true;
    error_ = "unknown frame type " + std::to_string(type);
    if (error != nullptr) *error = error_;
    return Result::kError;
  }
  if (available < kFrameHeaderBytes + declared) return Result::kNeedMore;
  out->type = static_cast<FrameType>(type);
  out->payload.assign(buffer_, consumed_ + kFrameHeaderBytes, declared);
  consumed_ += kFrameHeaderBytes + declared;
  if (consumed_ == buffer_.size()) {
    buffer_.clear();
    consumed_ = 0;
  }
  return Result::kFrame;
}

std::string EncodeHello(std::string_view tenant_id, uint32_t version) {
  std::string payload;
  PutU32(&payload, version);
  PutU16(&payload, static_cast<uint16_t>(tenant_id.size()));
  payload.append(tenant_id);
  return WithHeader(FrameType::kHello, payload);
}

std::string EncodeQuery(uint64_t request_id, Mode mode, std::string_view p,
                        std::string_view q) {
  std::string payload;
  PutU64(&payload, request_id);
  payload.push_back(static_cast<char>(mode == Mode::kStrong ? 1 : 0));
  PutU16(&payload, static_cast<uint16_t>(p.size()));
  payload.append(p);
  PutU16(&payload, static_cast<uint16_t>(q.size()));
  payload.append(q);
  return WithHeader(FrameType::kQuery, payload);
}

std::string EncodeStatsRequest() {
  return WithHeader(FrameType::kStats, {});
}

std::string EncodeGoodbye() { return WithHeader(FrameType::kGoodbye, {}); }

std::string EncodeHelloOk(uint32_t version) {
  std::string payload;
  PutU32(&payload, version);
  return WithHeader(FrameType::kHelloOk, payload);
}

std::string EncodeResponse(const ResponseFrame& response) {
  std::string payload;
  PutU64(&payload, response.request_id);
  payload.push_back(static_cast<char>(response.status));
  uint8_t flags = 0;
  if (response.contained) flags |= 1;
  if (response.retryable) flags |= 2;
  payload.push_back(static_cast<char>(flags));
  PutU32(&payload, response.retry_after_ms);
  PutU32(&payload, static_cast<uint32_t>(response.detail.size()));
  payload.append(response.detail);
  return WithHeader(FrameType::kResponse, payload);
}

std::string EncodeStatsJson(std::string_view json) {
  return WithHeader(FrameType::kStatsJson, json);
}

std::string EncodeError(WireStatus status, std::string_view message) {
  std::string payload;
  payload.push_back(static_cast<char>(status));
  payload.append(message);
  return WithHeader(FrameType::kError, payload);
}

bool DecodeHello(std::string_view payload, HelloFrame* out,
                 std::string* error) {
  Cursor c(payload);
  uint16_t len = 0;
  if (!c.U32(&out->version) || !c.U16(&len)) {
    return Fail(error, "hello: truncated header");
  }
  if (!c.Bytes(len, &out->tenant_id)) {
    return Fail(error, "hello: tenant id shorter than declared");
  }
  if (!c.AtEnd()) return Fail(error, "hello: trailing bytes");
  if (!ValidTenantId(out->tenant_id)) {
    return Fail(error, "hello: invalid tenant id");
  }
  return true;
}

bool DecodeQuery(std::string_view payload, QueryFrame* out,
                 std::string* error) {
  Cursor c(payload);
  uint8_t mode_tag = 0;
  uint16_t len = 0;
  if (!c.U64(&out->request_id) || !c.U8(&mode_tag)) {
    return Fail(error, "query: truncated header");
  }
  if (mode_tag > 1) return Fail(error, "query: bad mode tag");
  out->mode = mode_tag == 1 ? Mode::kStrong : Mode::kWeak;
  if (!c.U16(&len)) return Fail(error, "query: truncated p length");
  if (len > kMaxPatternBytes) return Fail(error, "query: p too long");
  if (!c.Bytes(len, &out->p)) {
    return Fail(error, "query: p shorter than declared");
  }
  if (!c.U16(&len)) return Fail(error, "query: truncated q length");
  if (len > kMaxPatternBytes) return Fail(error, "query: q too long");
  if (!c.Bytes(len, &out->q)) {
    return Fail(error, "query: q shorter than declared");
  }
  if (!c.AtEnd()) return Fail(error, "query: trailing bytes");
  return true;
}

bool DecodeResponse(std::string_view payload, ResponseFrame* out,
                    std::string* error) {
  Cursor c(payload);
  uint8_t status = 0;
  uint8_t flags = 0;
  uint32_t detail_len = 0;
  if (!c.U64(&out->request_id) || !c.U8(&status) || !c.U8(&flags) ||
      !c.U32(&out->retry_after_ms) || !c.U32(&detail_len)) {
    return Fail(error, "response: truncated header");
  }
  if (status > static_cast<uint8_t>(WireStatus::kUnknownTenant)) {
    return Fail(error, "response: unknown status code");
  }
  out->status = static_cast<WireStatus>(status);
  out->contained = (flags & 1) != 0;
  out->retryable = (flags & 2) != 0;
  if (!c.Bytes(detail_len, &out->detail)) {
    return Fail(error, "response: detail shorter than declared");
  }
  if (!c.AtEnd()) return Fail(error, "response: trailing bytes");
  return true;
}

}  // namespace serve
}  // namespace tpc
