// Fair-share scheduling of tenant requests over the engine thread pool.
//
// The threat model comes straight from the paper's complexity tables: one
// tenant streaming coNP sweep instances (each legitimately burning its full
// per-request budget) must not starve a tenant whose PTIME-fragment
// requests decide in microseconds.  A single FIFO queue fails that test —
// every cheap request waits behind the whole adversarial backlog.
//
// `FairScheduler` is a weighted deficit-round-robin (DRR) over per-tenant
// FIFO queues:
//
//   * each tenant owns a FIFO of its admitted requests (per-tenant order is
//     preserved by `Next`; `NextBatch`'s coalescing window may let a
//     tenant's same-pattern requests overtake its earlier different-pattern
//     ones — responses are matched by request id, never by arrival order);
//   * active tenants sit in a round-robin ring; the head tenant accumulates
//     `quantum * weight` deficit per visit and dequeues one request per
//     unit of deficit before the ring rotates;
//   * bounded starvation (asserted in serve_scheduler_test.cc): once a
//     request is at the head of its tenant's queue, at most
//     sum_{other tenants} quantum * weight_other requests are served before
//     it — a constant independent of any queue's depth.  This is the
//     mechanism behind the bench_serve isolation target: an adversarial
//     tenant degrades only its own latency.  `NextBatch`'s coalesced
//     extras may overdraw a visit (the deficit goes negative and carries
//     as debt), stretching that count by at most window-1 per coalescing
//     visit; in worker *time* the bound is unchanged, because a coalesced
//     member shares the head request's single enumeration sweep.
//
// Thread-safety: Submit is called by the IO thread, Next by every worker;
// one mutex guards the ring (request handling dwarfs the critical section).
// `CloseSubmit` flips the drain door: Submit starts failing, Next keeps
// draining the backlog and returns false only once it is empty — so every
// admitted request is still handed to exactly one worker.

#ifndef TPC_SERVE_SCHEDULER_H_
#define TPC_SERVE_SCHEDULER_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "contain/containment.h"
#include "serve/tenant.h"

namespace tpc {
namespace serve {

/// One admitted request travelling from the IO thread to a worker.  Pattern
/// sources stay unparsed: parsing is real work and must happen on the
/// worker, charged to the tenant, not on the shared IO thread.
struct ServeRequest {
  uint64_t conn_id = 0;
  uint64_t request_id = 0;
  Tenant* tenant = nullptr;
  Mode mode = Mode::kWeak;
  std::string p_src;
  std::string q_src;
  /// steady_clock ns at admission; the scheduler stamps `queue_wait_ns` at
  /// dequeue.
  int64_t enqueue_ns = 0;
  int64_t queue_wait_ns = 0;
};

class FairScheduler {
 public:
  /// `quantum` units of deficit (= requests, all costs are 1) granted per
  /// ring visit per unit of weight.
  explicit FairScheduler(int64_t quantum = 1);

  FairScheduler(const FairScheduler&) = delete;
  FairScheduler& operator=(const FairScheduler&) = delete;

  /// Enqueues one admitted request on its tenant's FIFO.  False after
  /// `CloseSubmit` — the caller still owes the request a response.
  bool Submit(ServeRequest request);

  /// Blocks until a request is available, dequeues it in DRR order and
  /// stamps its `queue_wait_ns`.  Returns false only when the scheduler is
  /// closed AND every queue is empty — the worker-loop exit condition.
  bool Next(ServeRequest* out);

  /// As `Next`, but after dequeueing the DRR head it coalesces up to
  /// `window - 1` more requests from the SAME tenant's FIFO that share the
  /// head's grouping key (`p_src`, `mode`) — the daemon's feed for the
  /// grouped canonical sweep (`QueryService::ContainsGroupFor`).  Every
  /// coalesced request spends one unit of the visit's deficit exactly as a
  /// `Next` dequeue would, so the DRR starvation bound — and with it the
  /// aggressor-isolation property — is unchanged: a window never grants a
  /// tenant more dequeues per visit than its weight already does.  Blocks
  /// and returns like `Next`; on true `out` holds >= 1 requests.
  /// `window <= 1` is exactly `Next`.
  bool NextBatch(std::vector<ServeRequest>* out, int window);

  /// Drain door: no further Submit succeeds; blocked Next callers wake and
  /// drain the backlog.
  void CloseSubmit();

  bool closed() const;

  /// Queued (submitted, not yet dequeued) requests across all tenants.
  int64_t queued() const;

 private:
  struct TenantQueue {
    std::deque<ServeRequest> fifo;
    int64_t deficit = 0;
    bool in_ring = false;
  };

  const int64_t quantum_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  int64_t queued_ = 0;
  std::unordered_map<Tenant*, TenantQueue> queues_;
  std::deque<Tenant*> ring_;
};

}  // namespace serve
}  // namespace tpc

#endif  // TPC_SERVE_SCHEDULER_H_
