#include "serve/scheduler.h"

#include <chrono>

namespace tpc {
namespace serve {

namespace {
int64_t NowNs() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
}  // namespace

FairScheduler::FairScheduler(int64_t quantum)
    : quantum_(quantum > 0 ? quantum : 1) {}

bool FairScheduler::Submit(ServeRequest request) {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return false;
  TenantQueue& q = queues_[request.tenant];
  q.fifo.push_back(std::move(request));
  ++queued_;
  if (!q.in_ring) {
    // A newly active tenant joins the back of the ring with zero deficit:
    // it cannot jump ahead of tenants already waiting for their turn.
    q.in_ring = true;
    q.deficit = 0;
    ring_.push_back(q.fifo.back().tenant);
  }
  cv_.notify_one();
  return true;
}

bool FairScheduler::Next(ServeRequest* out) {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return queued_ > 0 || closed_; });
    if (queued_ == 0) return false;  // closed_ && empty
    // DRR: serve the ring head while it has deficit and work; otherwise
    // recharge or rotate.  Each loop iteration either returns a request or
    // strictly advances the ring state, so this terminates.
    while (true) {
      Tenant* head = ring_.front();
      TenantQueue& q = queues_[head];
      if (q.fifo.empty()) {
        // Exhausted tenants leave the ring (and forfeit leftover deficit:
        // an idle tenant must not bank priority for a later burst).
        q.in_ring = false;
        q.deficit = 0;
        ring_.pop_front();
        continue;  // ring cannot be empty: queued_ > 0
      }
      if (q.deficit <= 0) {
        // Recharge as the visit begins; the tenant keeps the head slot
        // until the deficit runs out, then rotates.
        const uint32_t w = head->quota().weight;
        q.deficit += quantum_ * static_cast<int64_t>(w == 0 ? 1 : w);
      }
      --q.deficit;
      *out = std::move(q.fifo.front());
      q.fifo.pop_front();
      --queued_;
      if (q.deficit <= 0) {
        // Visit over: rotate (or drop if drained).
        ring_.pop_front();
        if (q.fifo.empty()) {
          q.in_ring = false;
          q.deficit = 0;
        } else {
          ring_.push_back(head);
        }
      } else if (q.fifo.empty()) {
        q.in_ring = false;
        q.deficit = 0;
        ring_.pop_front();
      }
      out->queue_wait_ns = NowNs() - out->enqueue_ns;
      return true;
    }
  }
}

bool FairScheduler::NextBatch(std::vector<ServeRequest>* out, int window) {
  out->clear();
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    cv_.wait(lock, [this] { return queued_ > 0 || closed_; });
    if (queued_ == 0) return false;  // closed_ && empty
    // Same DRR head selection as Next().
    while (true) {
      Tenant* head = ring_.front();
      TenantQueue& q = queues_[head];
      if (q.fifo.empty()) {
        q.in_ring = false;
        q.deficit = 0;
        ring_.pop_front();
        continue;  // ring cannot be empty: queued_ > 0
      }
      if (q.deficit <= 0) {
        const uint32_t w = head->quota().weight;
        q.deficit += quantum_ * static_cast<int64_t>(w == 0 ? 1 : w);
      }
      --q.deficit;
      out->push_back(std::move(q.fifo.front()));
      q.fifo.pop_front();
      --queued_;
      // Coalescing window: pull same-(p_src, mode) requests from the SAME
      // tenant's FIFO.  Extras may overdraw the visit's deficit (it goes
      // negative and carries as debt into the next recharge): a coalesced
      // member rides the head's single enumeration sweep, so its marginal
      // worker time is near zero and the *time* other tenants wait is the
      // head's sweep either way; gating extras on remaining deficit would
      // make a weight-1 tenant (deficit 0 after the head) never coalesce.
      // The dequeue-count bound for others grows by at most window-1 per
      // visit of a coalescing tenant, which the debited deficit repays.
      // The scan is capped so a deep FIFO of non-matching requests cannot
      // turn dequeue into O(n).
      constexpr int kScanCap = 64;
      int scanned = 0;
      auto it = q.fifo.begin();
      while (static_cast<int>(out->size()) < window && it != q.fifo.end() &&
             scanned < kScanCap) {
        if (it->mode == out->front().mode && it->p_src == out->front().p_src) {
          --q.deficit;
          out->push_back(std::move(*it));
          it = q.fifo.erase(it);
          --queued_;
        } else {
          ++it;
          ++scanned;
        }
      }
      if (q.deficit <= 0) {
        ring_.pop_front();
        if (q.fifo.empty()) {
          q.in_ring = false;
          q.deficit = 0;
        } else {
          ring_.push_back(head);
        }
      } else if (q.fifo.empty()) {
        q.in_ring = false;
        q.deficit = 0;
        ring_.pop_front();
      }
      const int64_t now = NowNs();
      for (ServeRequest& r : *out) r.queue_wait_ns = now - r.enqueue_ns;
      return true;
    }
  }
}

void FairScheduler::CloseSubmit() {
  std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

bool FairScheduler::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

int64_t FairScheduler::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

}  // namespace serve
}  // namespace tpc
