#include "match/node_selection.h"

#include <cassert>

#include "match/embedding.h"

namespace tpc {

std::vector<NodeId> SelectNodes(const Tpq& q, NodeId output, const Tree& t,
                                bool strong) {
  assert(output >= 0 && output < q.size());
  if (q.empty() || t.empty()) return {};
  Matcher matcher(q, t);
  size_t n = static_cast<size_t>(t.size());
  // feasible[v * n + x]: some full embedding maps pattern node v to x.
  // Top-down: a node placement is feasible iff it satisfies its subquery
  // (Matcher::SatAt) and its parent has a feasible placement connected by
  // the right edge kind; sibling requirements are already implied by the
  // parent's SatAt.
  std::vector<char> feasible(static_cast<size_t>(q.size()) * n, 0);
  for (NodeId x = 0; x < t.size(); ++x) {
    bool root_ok = strong ? x == 0 : true;
    feasible[x] = root_ok && matcher.SatAt(0, x);
  }
  for (NodeId v = 1; v < q.size(); ++v) {
    NodeId parent = q.Parent(v);
    if (q.Edge(v) == EdgeKind::kChild) {
      for (NodeId y = 1; y < t.size(); ++y) {
        feasible[v * n + y] =
            matcher.SatAt(v, y) && feasible[parent * n + t.Parent(y)];
      }
    } else {
      // Descendant edge: some proper ancestor of y hosts the parent.
      std::vector<char> anc(n, 0);
      for (NodeId y = 1; y < t.size(); ++y) {
        NodeId py = t.Parent(y);
        anc[y] = anc[py] || feasible[parent * n + py];
      }
      for (NodeId y = 1; y < t.size(); ++y) {
        feasible[v * n + y] = matcher.SatAt(v, y) && anc[y];
      }
    }
  }
  std::vector<NodeId> out;
  for (NodeId x = 0; x < t.size(); ++x) {
    if (feasible[static_cast<size_t>(output) * n + x]) out.push_back(x);
  }
  return out;
}

Tpq MarkOutputNode(const Tpq& q, NodeId output, LabelId marker) {
  Tpq out = q;
  out.AddChild(output, marker, EdgeKind::kChild);
  return out;
}

}  // namespace tpc
