#include "match/embedding.h"

#include <cassert>

namespace tpc {

Matcher::Matcher(const Tpq& q, const Tree& t, EngineStats* stats)
    : q_(q), t_(t), t_size_(static_cast<size_t>(t.size())) {
  sat_.assign(static_cast<size_t>(q.size()) * t_size_, 0);
  desc_.assign(sat_.size(), 0);
  if (stats != nullptr) {
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(static_cast<int64_t>(sat_.size()),
                                     std::memory_order_relaxed);
  }
  // Pattern nodes bottom-up (children have larger ids than parents), and for
  // each pattern node, tree nodes bottom-up for the desc_ closure.
  for (NodeId v = q.size() - 1; v >= 0; --v) {
    for (NodeId x = t.size() - 1; x >= 0; --x) {
      bool ok = q.IsWildcard(v) || q.Label(v) == t.Label(x);
      if (ok) {
        for (NodeId c = q.FirstChild(v); c != kNoNode && ok;
             c = q.NextSibling(c)) {
          bool found = false;
          if (q.Edge(c) == EdgeKind::kChild) {
            for (NodeId y = t.FirstChild(x); y != kNoNode;
                 y = t.NextSibling(y)) {
              if (sat_[Index(c, y)]) {
                found = true;
                break;
              }
            }
          } else {
            // Proper descendant: somewhere in a child's subtree.
            for (NodeId y = t.FirstChild(x); y != kNoNode;
                 y = t.NextSibling(y)) {
              if (desc_[Index(c, y)]) {
                found = true;
                break;
              }
            }
          }
          ok = found;
        }
      }
      sat_[Index(v, x)] = ok;
      bool below = ok;
      for (NodeId y = t.FirstChild(x); y != kNoNode && !below;
           y = t.NextSibling(y)) {
        below = desc_[Index(v, y)];
      }
      desc_[Index(v, x)] = below;
    }
  }
}

bool Matcher::MatchesWeak() const {
  if (q_.empty() || t_.empty()) return false;
  return desc_[Index(0, 0)];
}

bool Matcher::MatchesStrong() const {
  if (q_.empty() || t_.empty()) return false;
  return sat_[Index(0, 0)];
}

void Matcher::ExtractAt(NodeId v, NodeId x, std::vector<NodeId>* map) const {
  assert(sat_[Index(v, x)]);
  (*map)[v] = x;
  for (NodeId c = q_.FirstChild(v); c != kNoNode; c = q_.NextSibling(c)) {
    if (q_.Edge(c) == EdgeKind::kChild) {
      for (NodeId y = t_.FirstChild(x); y != kNoNode; y = t_.NextSibling(y)) {
        if (sat_[Index(c, y)]) {
          ExtractAt(c, y, map);
          break;
        }
      }
    } else {
      // Walk down to the highest node in a child subtree where sat_ holds.
      NodeId y = kNoNode;
      for (NodeId z = t_.FirstChild(x); z != kNoNode; z = t_.NextSibling(z)) {
        if (desc_[Index(c, z)]) {
          y = z;
          break;
        }
      }
      assert(y != kNoNode);
      while (!sat_[Index(c, y)]) {
        NodeId next = kNoNode;
        for (NodeId z = t_.FirstChild(y); z != kNoNode;
             z = t_.NextSibling(z)) {
          if (desc_[Index(c, z)]) {
            next = z;
            break;
          }
        }
        assert(next != kNoNode);
        y = next;
      }
      ExtractAt(c, y, map);
    }
  }
}

std::optional<std::vector<NodeId>> Matcher::Witness(bool strong) const {
  if (q_.empty() || t_.empty()) return std::nullopt;
  NodeId start = kNoNode;
  if (strong) {
    if (sat_[Index(0, 0)]) start = 0;
  } else {
    // Find any node where the root satisfies, topmost first.
    for (NodeId x = 0; x < t_.size(); ++x) {
      if (sat_[Index(0, x)]) {
        start = x;
        break;
      }
    }
  }
  if (start == kNoNode) return std::nullopt;
  std::vector<NodeId> map(q_.size(), kNoNode);
  ExtractAt(0, start, &map);
  return map;
}

bool MatchesWeak(const Tpq& q, const Tree& t) {
  return Matcher(q, t).MatchesWeak();
}

bool MatchesStrong(const Tpq& q, const Tree& t) {
  return Matcher(q, t).MatchesStrong();
}

bool MatchesWeak(const Tpq& q, const Tree& t, EngineStats* stats) {
  return Matcher(q, t, stats).MatchesWeak();
}

bool MatchesStrong(const Tpq& q, const Tree& t, EngineStats* stats) {
  return Matcher(q, t, stats).MatchesStrong();
}

}  // namespace tpc
