#include "match/embedding.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tpc {
namespace {

// Structural identity of a pattern, for the rebind guard below.  FNV-1a over
// (size, labels, parents, edge kinds); O(|q|) — noise next to the O(|q|*|t|)
// table fill it guards.
uint64_t PatternFingerprint(const Tpq& q) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  mix(static_cast<uint64_t>(q.size()));
  for (NodeId v = 0; v < q.size(); ++v) {
    mix(static_cast<uint64_t>(q.Label(v)));
    mix(static_cast<uint64_t>(q.Parent(v)) + 1);
    if (v != 0) mix(static_cast<uint64_t>(q.Edge(v)));
  }
  return h;
}

}  // namespace

void MatcherWorkspace::BindPattern(const Tpq& q) {
  q_ = &q;
  bound_fingerprint_ = PatternFingerprint(q);
  words_ = (static_cast<size_t>(q.size()) + 63) / 64;
  req_child_.assign(static_cast<size_t>(q.size()) * words_, 0);
  req_desc_.assign(req_child_.size(), 0);
  wildcard_mask_.assign(words_, 0);
  child_targets_.assign(words_, 0);
  desc_targets_.assign(words_, 0);
  internal_mask_.assign(words_, 0);
  parent_word_.assign(static_cast<size_t>(q.size()), 0);
  parent_mask_.assign(static_cast<size_t>(q.size()), 0);
  label_mask_store_.clear();
  label_mask_offset_.clear();
  for (NodeId v = 0; v < q.size(); ++v) {
    size_t word = static_cast<size_t>(v) >> 6;
    uint64_t bit = uint64_t{1} << (static_cast<size_t>(v) & 63);
    if (v != 0) {
      bool child_edge = q.Edge(v) == EdgeKind::kChild;
      std::vector<uint64_t>& req = child_edge ? req_child_ : req_desc_;
      size_t p = static_cast<size_t>(q.Parent(v));
      req[p * words_ + word] |= bit;
      (child_edge ? child_targets_ : desc_targets_)[word] |= bit;
      internal_mask_[p >> 6] |= uint64_t{1} << (p & 63);
      parent_word_[v] = static_cast<uint32_t>(p >> 6);
      parent_mask_[v] = uint64_t{1} << (p & 63);
    }
    if (q.IsWildcard(v)) {
      wildcard_mask_[word] |= bit;
    } else {
      auto [it, inserted] =
          label_mask_offset_.try_emplace(q.Label(v), label_mask_store_.size());
      if (inserted) label_mask_store_.resize(label_mask_store_.size() + words_);
      label_mask_store_[it->second + word] |= bit;
    }
  }
  // A wildcard pattern node matches every tree label: fold the wildcard bits
  // into each per-letter mask so `LabelMask` needs a single lookup.
  for (auto& [label, offset] : label_mask_offset_) {
    for (size_t w = 0; w < words_; ++w) {
      label_mask_store_[offset + w] |= wildcard_mask_[w];
    }
  }
}

const uint64_t* MatcherWorkspace::LabelMask(LabelId label) const {
  auto it = label_mask_offset_.find(label);
  if (it == label_mask_offset_.end()) return wildcard_mask_.data();
  return &label_mask_store_[it->second];
}

void MatcherWorkspace::ComputeColumnWord(int32_t i) {
  const size_t W = words_;
  const uint64_t* labels_ok = LabelMask(view_.LabelAtPost(i));
  uint64_t* sat_row = &sat_[RowOffset(i)];
  uint64_t* desc_row = &desc_[RowOffset(i)];
  const int32_t subtree = view_.SubtreeSizeAtPost(i);
  if (subtree == 1) {
    // Leaf column, branch-free: no fold, no scatter.  A pattern node with
    // any child requirement cannot embed at a tree leaf.
    const uint64_t* internal = internal_mask_.data();
    for (size_t w = 0; w < W; ++w) {
      sat_row[w] = labels_ok[w] & ~internal[w];
      desc_row[w] = sat_row[w];
    }
    ++rows_skipped_;
    return;
  }
  uint64_t* acc_c = acc_child_.data();
  uint64_t* acc_d = acc_desc_.data();
  uint64_t* failed = failed_.data();
  std::fill_n(acc_c, W, uint64_t{0});
  std::fill_n(acc_d, W, uint64_t{0});
  std::fill_n(failed, W, uint64_t{0});
  // Child subtree roots tile the span [i - subtree + 1, i - 1] and are
  // reached right-to-left by span jumps; their rows were computed earlier in
  // this ascending sweep.
  const int32_t begin = i - subtree + 1;
  for (int32_t c = i - 1; c >= begin; c -= view_.SubtreeSizeAtPost(c)) {
    const uint64_t* child_sat = &sat_[RowOffset(c)];
    const uint64_t* child_desc = &desc_[RowOffset(c)];
    for (size_t w = 0; w < W; ++w) {
      acc_c[w] |= child_sat[w];
      acc_d[w] |= child_desc[w];
    }
    words_folded_ += static_cast<int64_t>(2 * W);
  }
  // Missing-bits scatter: a requirement bit absent from its accumulator
  // fails its pattern *parent*.  This replaces the per-candidate submask
  // loop — cost O(W + popcount(missing)) instead of O(popcount(labels) * W).
  for (size_t w = 0; w < W; ++w) {
    uint64_t missing = child_targets_[w] & ~acc_c[w];
    while (missing != 0) {
      int b = std::countr_zero(missing);
      missing &= missing - 1;
      size_t v = (w << 6) + static_cast<size_t>(b);
      failed[parent_word_[v]] |= parent_mask_[v];
    }
    missing = desc_targets_[w] & ~acc_d[w];
    while (missing != 0) {
      int b = std::countr_zero(missing);
      missing &= missing - 1;
      size_t v = (w << 6) + static_cast<size_t>(b);
      failed[parent_word_[v]] |= parent_mask_[v];
    }
  }
  for (size_t w = 0; w < W; ++w) {
    sat_row[w] = labels_ok[w] & ~failed[w];
    desc_row[w] = sat_row[w] | acc_d[w];
  }
}

void MatcherWorkspace::ComputeColumnScalar(int32_t i) {
  const size_t W = words_;
  uint64_t* acc_c = acc_child_.data();
  uint64_t* acc_d = acc_desc_.data();
  std::fill_n(acc_c, W, uint64_t{0});
  std::fill_n(acc_d, W, uint64_t{0});
  const int32_t begin = i - view_.SubtreeSizeAtPost(i) + 1;
  for (int32_t c = i - 1; c >= begin; c -= view_.SubtreeSizeAtPost(c)) {
    const uint64_t* child_sat = &sat_[RowOffset(c)];
    const uint64_t* child_desc = &desc_[RowOffset(c)];
    for (size_t w = 0; w < W; ++w) {
      acc_c[w] |= child_sat[w];
      acc_d[w] |= child_desc[w];
    }
    words_folded_ += static_cast<int64_t>(2 * W);
  }
  const uint64_t* labels_ok = LabelMask(view_.LabelAtPost(i));
  uint64_t* sat_row = &sat_[RowOffset(i)];
  uint64_t* desc_row = &desc_[RowOffset(i)];
  for (size_t w = 0; w < W; ++w) {
    uint64_t candidates = labels_ok[w];
    uint64_t bits = 0;
    while (candidates != 0) {
      int b = std::countr_zero(candidates);
      candidates &= candidates - 1;
      size_t v = (w << 6) + static_cast<size_t>(b);
      // Every child-edge child of v must be satisfied at some child of x,
      // every descendant-edge child somewhere strictly below x.
      const uint64_t* need_c = &req_child_[v * W];
      const uint64_t* need_d = &req_desc_[v * W];
      bool ok = true;
      for (size_t u = 0; u < W; ++u) {
        if ((acc_c[u] & need_c[u]) != need_c[u] ||
            (acc_d[u] & need_d[u]) != need_d[u]) {
          ok = false;
          break;
        }
      }
      if (ok) bits |= uint64_t{1} << b;
    }
    sat_row[w] = bits;
    desc_row[w] = bits | acc_d[w];
  }
}

void MatcherWorkspace::PrepareTables(const Tree& t) {
  t_ = &t;
  view_ = t.View();
  size_t table = static_cast<size_t>(t.size()) * words_;
  sat_.resize(table);
  desc_.resize(table);
  acc_child_.resize(words_);
  acc_desc_.resize(words_);
  failed_.resize(words_);
  words_folded_ = 0;
  rows_skipped_ = 0;
}

void MatcherWorkspace::EvalFull(const Tpq& q, const Tree& t,
                                EngineStats* stats, bool word_parallel) {
  // Pointer identity alone is unsound for a shared workspace: a temporary
  // (e.g. ReplayRefutation's normalized q) can reoccupy the previous
  // pattern's address with different content, and a stale bind would then
  // evaluate the wrong pattern.  Verify the structure too.
  if (q_ != &q || bound_fingerprint_ != PatternFingerprint(q)) BindPattern(q);
  PrepareTables(t);
  // One linear sweep over postorder positions: every child span precedes its
  // parent, so the fold always reads finished rows.
  const int32_t n = t.size();
  if (word_parallel) {
    for (int32_t i = 0; i < n; ++i) ComputeColumnWord(i);
  } else {
    for (int32_t i = 0; i < n; ++i) ComputeColumnScalar(i);
  }
  if (stats != nullptr) {
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(
        static_cast<int64_t>(q.size()) * t.size(), std::memory_order_relaxed);
    stats->dp_words_folded.fetch_add(words_folded_, std::memory_order_relaxed);
    stats->dp_rows_skipped.fetch_add(rows_skipped_, std::memory_order_relaxed);
  }
}

void MatcherWorkspace::EvalIncremental(const Tpq& q, const Tree& t,
                                       NodeId stable_limit,
                                       EngineStats* stats, bool word_parallel) {
  assert(q_ == &q && t_ == &t && "EvalIncremental needs a prior Eval* on the "
                                 "same pattern and tree object");
  assert(stable_limit >= 0 && stable_limit < t.size());
  assert(t.IsDfsOrdered() && "postorder prefix stability needs DFS order");
  PrepareTables(t);
  // For DFS-built trees the nodes with id < stable_limit that are *not*
  // ancestors of the cut keep their postorder positions across the rebuild
  // and occupy exactly the postorder prefix [0, stable_post): each such
  // node's subtree and left context are unchanged.  The suffix holds the
  // rebuilt tail plus the ancestor path of the cut — precisely the columns
  // the old pointer-chasing scheme recomputed.
  const int32_t stable_post = stable_limit - t.Depth(stable_limit);
  const int32_t n = t.size();
  if (word_parallel) {
    for (int32_t i = stable_post; i < n; ++i) ComputeColumnWord(i);
  } else {
    for (int32_t i = stable_post; i < n; ++i) ComputeColumnScalar(i);
  }
  if (stats != nullptr) {
    const int64_t recomputed = n - stable_post;
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(recomputed * q.size(),
                                     std::memory_order_relaxed);
    stats->dp_cells_reused.fetch_add(
        static_cast<int64_t>(stable_post) * q.size(),
        std::memory_order_relaxed);
    stats->dp_words_folded.fetch_add(words_folded_, std::memory_order_relaxed);
    stats->dp_rows_skipped.fetch_add(rows_skipped_, std::memory_order_relaxed);
  }
}

bool MatcherWorkspace::MatchesWeak() const {
  if (q_ == nullptr || t_ == nullptr || q_->empty() || t_->empty()) {
    return false;
  }
  // Bit (v=0) of the root's row — the root is last in postorder.
  return desc_[RowOffset(view_.size() - 1)] & 1;
}

bool MatcherWorkspace::MatchesStrong() const {
  if (q_ == nullptr || t_ == nullptr || q_->empty() || t_->empty()) {
    return false;
  }
  return sat_[RowOffset(view_.size() - 1)] & 1;
}

void MatcherWorkspace::ExtractAt(NodeId v, NodeId x,
                                 std::vector<NodeId>* map) const {
  assert(SatAt(v, x));
  const Tpq& q = *q_;
  const Tree& t = *t_;
  (*map)[v] = x;
  for (NodeId c = q.FirstChild(v); c != kNoNode; c = q.NextSibling(c)) {
    if (q.Edge(c) == EdgeKind::kChild) {
      for (NodeId y = t.FirstChild(x); y != kNoNode; y = t.NextSibling(y)) {
        if (SatAt(c, y)) {
          ExtractAt(c, y, map);
          break;
        }
      }
    } else {
      // Walk down to the highest node in a child subtree where sat holds.
      NodeId y = kNoNode;
      for (NodeId z = t.FirstChild(x); z != kNoNode; z = t.NextSibling(z)) {
        if (SatBelow(c, z)) {
          y = z;
          break;
        }
      }
      assert(y != kNoNode);
      while (!SatAt(c, y)) {
        NodeId next = kNoNode;
        for (NodeId z = t.FirstChild(y); z != kNoNode; z = t.NextSibling(z)) {
          if (SatBelow(c, z)) {
            next = z;
            break;
          }
        }
        assert(next != kNoNode);
        y = next;
      }
      ExtractAt(c, y, map);
    }
  }
}

std::optional<std::vector<NodeId>> MatcherWorkspace::Witness(
    bool strong) const {
  if (q_ == nullptr || t_ == nullptr || q_->empty() || t_->empty()) {
    return std::nullopt;
  }
  NodeId start = kNoNode;
  if (strong) {
    if (SatAt(0, 0)) start = 0;
  } else {
    // Find any node where the root satisfies, topmost first (node ids are
    // created parents-before-children).
    for (NodeId x = 0; x < t_->size(); ++x) {
      if (SatAt(0, x)) {
        start = x;
        break;
      }
    }
  }
  if (start == kNoNode) return std::nullopt;
  std::vector<NodeId> map(q_->size(), kNoNode);
  ExtractAt(0, start, &map);
  return map;
}

bool MatchesWeak(const Tpq& q, const Tree& t) {
  return Matcher(q, t).MatchesWeak();
}

bool MatchesStrong(const Tpq& q, const Tree& t) {
  return Matcher(q, t).MatchesStrong();
}

bool MatchesWeak(const Tpq& q, const Tree& t, EngineStats* stats) {
  return Matcher(q, t, stats).MatchesWeak();
}

bool MatchesStrong(const Tpq& q, const Tree& t, EngineStats* stats) {
  return Matcher(q, t, stats).MatchesStrong();
}

}  // namespace tpc
