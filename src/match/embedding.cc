#include "match/embedding.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace tpc {

void MatcherWorkspace::BindPattern(const Tpq& q) {
  q_ = &q;
  words_ = (static_cast<size_t>(q.size()) + 63) / 64;
  req_child_.assign(static_cast<size_t>(q.size()) * words_, 0);
  req_desc_.assign(req_child_.size(), 0);
  wildcard_mask_.assign(words_, 0);
  label_mask_store_.clear();
  label_mask_offset_.clear();
  for (NodeId v = 0; v < q.size(); ++v) {
    size_t word = static_cast<size_t>(v) >> 6;
    uint64_t bit = uint64_t{1} << (static_cast<size_t>(v) & 63);
    if (v != 0) {
      std::vector<uint64_t>& req =
          q.Edge(v) == EdgeKind::kChild ? req_child_ : req_desc_;
      req[static_cast<size_t>(q.Parent(v)) * words_ + word] |= bit;
    }
    if (q.IsWildcard(v)) {
      wildcard_mask_[word] |= bit;
    } else {
      auto [it, inserted] =
          label_mask_offset_.try_emplace(q.Label(v), label_mask_store_.size());
      if (inserted) label_mask_store_.resize(label_mask_store_.size() + words_);
      label_mask_store_[it->second + word] |= bit;
    }
  }
  // A wildcard pattern node matches every tree label: fold the wildcard bits
  // into each per-letter mask so `LabelMask` needs a single lookup.
  for (auto& [label, offset] : label_mask_offset_) {
    for (size_t w = 0; w < words_; ++w) {
      label_mask_store_[offset + w] |= wildcard_mask_[w];
    }
  }
}

const uint64_t* MatcherWorkspace::LabelMask(LabelId label) const {
  auto it = label_mask_offset_.find(label);
  if (it == label_mask_offset_.end()) return wildcard_mask_.data();
  return &label_mask_store_[it->second];
}

void MatcherWorkspace::ComputeColumn(NodeId x) {
  const Tree& t = *t_;
  const size_t W = words_;
  uint64_t* acc_c = acc_child_.data();
  uint64_t* acc_d = acc_desc_.data();
  std::fill_n(acc_c, W, uint64_t{0});
  std::fill_n(acc_d, W, uint64_t{0});
  for (NodeId y = t.FirstChild(x); y != kNoNode; y = t.NextSibling(y)) {
    const uint64_t* child_sat = &sat_[RowOffset(y)];
    const uint64_t* child_desc = &desc_[RowOffset(y)];
    for (size_t w = 0; w < W; ++w) {
      acc_c[w] |= child_sat[w];
      acc_d[w] |= child_desc[w];
    }
  }
  const uint64_t* labels_ok = LabelMask(t.Label(x));
  uint64_t* sat_row = &sat_[RowOffset(x)];
  uint64_t* desc_row = &desc_[RowOffset(x)];
  for (size_t w = 0; w < W; ++w) {
    uint64_t candidates = labels_ok[w];
    uint64_t bits = 0;
    while (candidates != 0) {
      int b = std::countr_zero(candidates);
      candidates &= candidates - 1;
      size_t v = (w << 6) + static_cast<size_t>(b);
      // Every child-edge child of v must be satisfied at some child of x,
      // every descendant-edge child somewhere strictly below x.
      const uint64_t* need_c = &req_child_[v * W];
      const uint64_t* need_d = &req_desc_[v * W];
      bool ok = true;
      for (size_t u = 0; u < W; ++u) {
        if ((acc_c[u] & need_c[u]) != need_c[u] ||
            (acc_d[u] & need_d[u]) != need_d[u]) {
          ok = false;
          break;
        }
      }
      if (ok) bits |= uint64_t{1} << b;
    }
    sat_row[w] = bits;
    desc_row[w] = bits | acc_d[w];
  }
}

void MatcherWorkspace::EvalFull(const Tpq& q, const Tree& t,
                                EngineStats* stats) {
  if (q_ != &q) BindPattern(q);
  t_ = &t;
  size_t table = static_cast<size_t>(t.size()) * words_;
  sat_.resize(table);
  desc_.resize(table);
  acc_child_.resize(words_);
  acc_desc_.resize(words_);
  if (stats != nullptr) {
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(
        static_cast<int64_t>(q.size()) * t.size(), std::memory_order_relaxed);
  }
  // Tree nodes bottom-up (children have larger ids than parents).
  for (NodeId x = t.size() - 1; x >= 0; --x) ComputeColumn(x);
}

void MatcherWorkspace::EvalIncremental(const Tpq& q, const Tree& t,
                                       NodeId stable_limit,
                                       EngineStats* stats) {
  assert(q_ == &q && t_ == &t && "EvalIncremental needs a prior Eval* on the "
                                 "same pattern and tree object");
  assert(stable_limit >= 0 && stable_limit < t.size());
  size_t table = static_cast<size_t>(t.size()) * words_;
  sat_.resize(table);
  desc_.resize(table);
  int64_t recomputed = 0;
  // The changed suffix, bottom-up ...
  for (NodeId x = t.size() - 1; x >= stable_limit; --x) {
    ComputeColumn(x);
    ++recomputed;
  }
  // ... then the ancestor path of the cut: those columns kept their ids but
  // their subtrees reach into the rebuilt region.  Every other column's
  // subtree lies wholly inside [0, stable_limit) and is reused as-is.
  for (NodeId a = t.Parent(stable_limit); a != kNoNode; a = t.Parent(a)) {
    ComputeColumn(a);
    ++recomputed;
  }
  if (stats != nullptr) {
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(recomputed * q.size(),
                                     std::memory_order_relaxed);
    stats->dp_cells_reused.fetch_add(
        (static_cast<int64_t>(t.size()) - recomputed) * q.size(),
        std::memory_order_relaxed);
  }
}

bool MatcherWorkspace::MatchesWeak() const {
  if (q_ == nullptr || t_ == nullptr || q_->empty() || t_->empty()) {
    return false;
  }
  return desc_[0] & 1;  // bit (v=0) of column (x=0)
}

bool MatcherWorkspace::MatchesStrong() const {
  if (q_ == nullptr || t_ == nullptr || q_->empty() || t_->empty()) {
    return false;
  }
  return sat_[0] & 1;
}

void MatcherWorkspace::ExtractAt(NodeId v, NodeId x,
                                 std::vector<NodeId>* map) const {
  assert(SatAt(v, x));
  const Tpq& q = *q_;
  const Tree& t = *t_;
  (*map)[v] = x;
  for (NodeId c = q.FirstChild(v); c != kNoNode; c = q.NextSibling(c)) {
    if (q.Edge(c) == EdgeKind::kChild) {
      for (NodeId y = t.FirstChild(x); y != kNoNode; y = t.NextSibling(y)) {
        if (SatAt(c, y)) {
          ExtractAt(c, y, map);
          break;
        }
      }
    } else {
      // Walk down to the highest node in a child subtree where sat holds.
      NodeId y = kNoNode;
      for (NodeId z = t.FirstChild(x); z != kNoNode; z = t.NextSibling(z)) {
        if (SatBelow(c, z)) {
          y = z;
          break;
        }
      }
      assert(y != kNoNode);
      while (!SatAt(c, y)) {
        NodeId next = kNoNode;
        for (NodeId z = t.FirstChild(y); z != kNoNode; z = t.NextSibling(z)) {
          if (SatBelow(c, z)) {
            next = z;
            break;
          }
        }
        assert(next != kNoNode);
        y = next;
      }
      ExtractAt(c, y, map);
    }
  }
}

std::optional<std::vector<NodeId>> MatcherWorkspace::Witness(
    bool strong) const {
  if (q_ == nullptr || t_ == nullptr || q_->empty() || t_->empty()) {
    return std::nullopt;
  }
  NodeId start = kNoNode;
  if (strong) {
    if (SatAt(0, 0)) start = 0;
  } else {
    // Find any node where the root satisfies, topmost first.
    for (NodeId x = 0; x < t_->size(); ++x) {
      if (SatAt(0, x)) {
        start = x;
        break;
      }
    }
  }
  if (start == kNoNode) return std::nullopt;
  std::vector<NodeId> map(q_->size(), kNoNode);
  ExtractAt(0, start, &map);
  return map;
}

bool MatchesWeak(const Tpq& q, const Tree& t) {
  return Matcher(q, t).MatchesWeak();
}

bool MatchesStrong(const Tpq& q, const Tree& t) {
  return Matcher(q, t).MatchesStrong();
}

bool MatchesWeak(const Tpq& q, const Tree& t, EngineStats* stats) {
  return Matcher(q, t, stats).MatchesWeak();
}

bool MatchesStrong(const Tpq& q, const Tree& t, EngineStats* stats) {
  return Matcher(q, t, stats).MatchesStrong();
}

}  // namespace tpc
