// Node-selecting tree pattern queries (Section 2.4 of the paper).
//
// The library's decision problems are about boolean queries, but XPath
// practice selects nodes: a TPQ with a distinguished output node v selects,
// in a tree t, every node x such that some embedding maps v to x.  The
// paper notes (after [34, 36]) that containment of k-ary node-selecting
// TPQs reduces to boolean containment when child edges are available; this
// module provides evaluation and that reduction.

#ifndef TPC_MATCH_NODE_SELECTION_H_
#define TPC_MATCH_NODE_SELECTION_H_

#include <vector>

#include "base/label.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// All tree nodes x such that some weak (or strong) embedding of q into t
/// maps `output` to x, in document order.
std::vector<NodeId> SelectNodes(const Tpq& q, NodeId output, const Tree& t,
                                bool strong);

/// The Proposition-1-of-[34] reduction: a boolean pattern q' such that,
/// for the unary query (q, output), containment of (p, po) in (q, qo)
/// equals boolean containment of the marked patterns.  The output node gets
/// a fresh marker child attached with a child edge; the marker label is
/// returned via `*marker` (shared between both sides by passing the same
/// pool).
Tpq MarkOutputNode(const Tpq& q, NodeId output, LabelId marker);

}  // namespace tpc

#endif  // TPC_MATCH_NODE_SELECTION_H_
