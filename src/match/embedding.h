// Weak and strong embeddings of tree pattern queries into trees
// (Definition 2.1 and Figure 1 of the paper).
//
// `Matcher` runs a bottom-up dynamic program over (pattern node, tree node)
// pairs in O(|q| * |t| * maxdeg) time, then answers weak/strong membership
// and can extract a witness embedding.

#ifndef TPC_MATCH_EMBEDDING_H_
#define TPC_MATCH_EMBEDDING_H_

#include <optional>
#include <vector>

#include "engine/stats.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Evaluates one pattern against one tree.  Cheap to construct; the dynamic
/// program runs once in the constructor.
class Matcher {
 public:
  /// With a non-null `stats`, reports one attempted embedding and the number
  /// of DP cells filled.
  Matcher(const Tpq& q, const Tree& t, EngineStats* stats = nullptr);

  /// True iff `t` is in the weak language L_w(q).
  bool MatchesWeak() const;

  /// True iff `t` is in the strong language L_s(q) (root maps to root).
  bool MatchesStrong() const;

  /// True iff subquery(v) embeds with `v` mapped to tree node `x`.
  bool SatAt(NodeId v, NodeId x) const { return sat_[Index(v, x)]; }

  /// True iff subquery(v) embeds with `v` mapped somewhere in subtree(x).
  bool SatBelow(NodeId v, NodeId x) const { return desc_[Index(v, x)]; }

  /// Extracts a weak (or strong) embedding if one exists: a mapping from
  /// pattern nodes to tree nodes.  Returns std::nullopt if no embedding.
  std::optional<std::vector<NodeId>> Witness(bool strong) const;

 private:
  size_t Index(NodeId v, NodeId x) const {
    return static_cast<size_t>(v) * t_size_ + static_cast<size_t>(x);
  }
  void ExtractAt(NodeId v, NodeId x, std::vector<NodeId>* map) const;

  const Tpq& q_;
  const Tree& t_;
  size_t t_size_;
  std::vector<char> sat_;   // sat_[v * |t| + x]
  std::vector<char> desc_;  // OR of sat_ over subtree(x)
};

/// Convenience wrappers.  The `stats` overloads count the embedding attempt
/// and its DP cells.
bool MatchesWeak(const Tpq& q, const Tree& t);
bool MatchesStrong(const Tpq& q, const Tree& t);
bool MatchesWeak(const Tpq& q, const Tree& t, EngineStats* stats);
bool MatchesStrong(const Tpq& q, const Tree& t, EngineStats* stats);

}  // namespace tpc

#endif  // TPC_MATCH_EMBEDDING_H_
