// Weak and strong embeddings of tree pattern queries into trees
// (Definition 2.1 and Figure 1 of the paper).
//
// `MatcherWorkspace` runs a bottom-up dynamic program over (pattern node,
// tree node) pairs in O(|q| * |t| * ceil(|q|/64)) time, with the per-tree-node
// DP rows packed into uint64 bitset words over pattern nodes.  Rows are laid
// out in *postorder* (via `Tree::View()`), so the fill is one linear sweep
// over contiguous columns: children of the node at postorder position `i`
// occupy the span `[i - subtree_size + 1, i - 1]` and are folded with
// whole-word ORs before `i` itself is computed.
//
// Two fill kernels share that layout and produce bit-identical tables:
//
//  * the *word-parallel* kernel (default) never tests candidates one by one.
//    It computes the set of unsatisfied requirement bits in whole words —
//    `missing = targets & ~acc` — and scatters each missing bit to a
//    `failed` bit on its pattern parent; a row is then
//    `labels_ok & ~failed`.  Leaf columns skip the fold entirely:
//    `labels_ok & ~internal_mask` (a pattern node with children can never
//    embed at a tree leaf).  Work per column: O(words + #missing bits).
//  * the *scalar* kernel keeps the per-candidate submask tests, as the A/B
//    baseline pinned by the agreement suites
//    (`ContainmentOptions::word_parallel = false`).
//
// The workspace keeps its tables alive across evaluations, so the
// canonical-sweep hot loops run allocation-free, and `EvalIncremental`
// refills only the postorder suffix invalidated by a spine-suffix rebuild
// (the changed tail plus the ancestor path of the cut), reusing all others.
//
// `Matcher` is the one-shot wrapper (evaluates in the constructor) kept for
// call sites that check a single pattern/tree pair.

#ifndef TPC_MATCH_EMBEDDING_H_
#define TPC_MATCH_EMBEDDING_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/stats.h"
#include "engine/tracked.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Reusable embedding evaluator.  One workspace serves many (pattern, tree)
/// evaluations; buffers grow to the largest instance seen and are never
/// freed, so enumeration sweeps allocate only on their first few iterations.
/// Not thread-safe: use one workspace per sweep worker.
class MatcherWorkspace {
 public:
  MatcherWorkspace() = default;

  /// Accounts the bytes an evaluation of `q` against `t` will occupy — the
  /// DP tables plus the tree's columnar storage (creation-order and derived
  /// postorder columns) — through `budget` (high-water: a reused workspace
  /// charges only growth beyond the largest instance seen).  Returns false
  /// when the budget refuses — the caller should then report memory
  /// exhaustion instead of calling `Eval*`.  Sweep loops call this once per
  /// tree, before the evaluation.
  bool ChargeTables(const Tpq& q, const Tree& t, Budget* budget) {
    tracked_.Attach(budget);
    const int64_t words =
        static_cast<int64_t>((q.size() + 63) / 64);
    return tracked_.Reserve(2 * static_cast<int64_t>(t.size()) * words *
                                static_cast<int64_t>(sizeof(uint64_t)) +
                            t.ColumnBytes());
  }

  /// Evaluates `q` against `t` from scratch.  The pattern-side tables are
  /// rebuilt only when `q` is not the pattern of the previous evaluation.
  /// With a non-null `stats`, reports one attempted embedding,
  /// `|q| * |t|` DP cells filled, and the kernel counters
  /// (`dp_words_folded`, `dp_rows_skipped`).  `word_parallel` selects the
  /// fill kernel; both produce identical tables.
  void EvalFull(const Tpq& q, const Tree& t, EngineStats* stats = nullptr,
                bool word_parallel = true);

  /// Re-evaluates after an incremental tree rebuild.  Precondition: the
  /// previous `Eval*` call on this workspace used the same `q` and the same
  /// tree object, whose nodes with id < `stable_limit` (ids, labels and
  /// subtree structure) are unchanged — exactly what
  /// `CanonicalTreeBuilder::BuildSuffix` guarantees with
  /// `stable_limit = spine_start(first_changed)`.  For such DFS-built trees
  /// the unchanged nodes that are not ancestors of the cut keep their
  /// postorder positions and form the postorder prefix
  /// `[0, stable_limit - depth(stable_limit))`; only the suffix after it —
  /// the rebuilt tail plus the ancestor path of the cut — is recomputed.
  /// Every reused column is reported via `EngineStats::dp_cells_reused`.
  void EvalIncremental(const Tpq& q, const Tree& t, NodeId stable_limit,
                       EngineStats* stats = nullptr,
                       bool word_parallel = true);

  /// True iff `t` is in the weak language L_w(q).
  bool MatchesWeak() const;

  /// True iff `t` is in the strong language L_s(q) (root maps to root).
  bool MatchesStrong() const;

  /// True iff subquery(v) embeds with `v` mapped to tree node `x`.
  bool SatAt(NodeId v, NodeId x) const {
    return (sat_[RowOffset(view_.PostOf(x)) + (static_cast<size_t>(v) >> 6)] >>
            (static_cast<size_t>(v) & 63)) &
           1;
  }

  /// True iff subquery(v) embeds with `v` mapped somewhere in subtree(x).
  bool SatBelow(NodeId v, NodeId x) const {
    return (desc_[RowOffset(view_.PostOf(x)) + (static_cast<size_t>(v) >> 6)] >>
            (static_cast<size_t>(v) & 63)) &
           1;
  }

  /// Extracts a weak (or strong) embedding if one exists: a mapping from
  /// pattern nodes to tree nodes.  Returns std::nullopt if no embedding.
  std::optional<std::vector<NodeId>> Witness(bool strong) const;

 private:
  // Rows are indexed by *postorder position*; translate node ids through
  // `view_.PostOf` at the API boundary (SatAt / SatBelow).
  size_t RowOffset(int32_t post) const {
    return static_cast<size_t>(post) * words_;
  }
  void BindPattern(const Tpq& q);
  void ComputeColumnWord(int32_t i);
  void ComputeColumnScalar(int32_t i);
  void PrepareTables(const Tree& t);
  const uint64_t* LabelMask(LabelId label) const;
  void ExtractAt(NodeId v, NodeId x, std::vector<NodeId>* map) const;

  const Tpq* q_ = nullptr;
  uint64_t bound_fingerprint_ = 0;  // structural hash of *q_ at bind time
  const Tree* t_ = nullptr;
  TreeView view_;     // postorder index of t_, captured at Eval* time
  size_t words_ = 0;  // ceil(|q| / 64) bitset words per DP row

  // Pattern-side tables, rebuilt on BindPattern.
  std::vector<uint64_t> req_child_;  // v -> mask of v's child-edge children
  std::vector<uint64_t> req_desc_;   // v -> mask of v's descendant children
  std::vector<uint64_t> wildcard_mask_;  // wildcard pattern nodes
  std::vector<uint64_t> label_mask_store_;   // per-letter masks, |wildcard'd
  std::unordered_map<LabelId, size_t> label_mask_offset_;
  // Word-parallel kernel tables: the requirement sets transposed.  A pattern
  // node missing from the child/descendant accumulator *fails its parent*;
  // the scatter needs each node's edge kind (targets masks) and its parent's
  // bit address.
  std::vector<uint64_t> child_targets_;  // nodes with a child edge to parent
  std::vector<uint64_t> desc_targets_;   // nodes with a descendant edge
  std::vector<uint64_t> internal_mask_;  // pattern nodes with >= 1 child
  std::vector<uint32_t> parent_word_;    // v -> word index of Parent(v)'s bit
  std::vector<uint64_t> parent_mask_;    // v -> single-bit mask of Parent(v)

  // Tree-side tables: the row at postorder position i holds bits
  // {v : ...} packed into `words_` words.
  std::vector<uint64_t> sat_;   // subquery(v) embeds at the node at post i
  std::vector<uint64_t> desc_;  // OR of sat_ over the subtree span of i

  // Column scratch (accumulators over the children of the current node,
  // and the failed-parent bits of the word kernel).
  std::vector<uint64_t> acc_child_;
  std::vector<uint64_t> acc_desc_;
  std::vector<uint64_t> failed_;

  // Per-evaluation kernel counters, flushed to EngineStats once per Eval*.
  int64_t words_folded_ = 0;
  int64_t rows_skipped_ = 0;

  // High-water accounting for the sat_/desc_ tables (see ChargeTables).
  TrackedBytes tracked_;
};

/// Evaluates one pattern against one tree.  Cheap to construct; the dynamic
/// program runs once in the constructor.
class Matcher {
 public:
  /// With a non-null `stats`, reports one attempted embedding and the number
  /// of DP cells filled.
  Matcher(const Tpq& q, const Tree& t, EngineStats* stats = nullptr,
          bool word_parallel = true) {
    ws_.EvalFull(q, t, stats, word_parallel);
  }

  bool MatchesWeak() const { return ws_.MatchesWeak(); }
  bool MatchesStrong() const { return ws_.MatchesStrong(); }
  bool SatAt(NodeId v, NodeId x) const { return ws_.SatAt(v, x); }
  bool SatBelow(NodeId v, NodeId x) const { return ws_.SatBelow(v, x); }
  std::optional<std::vector<NodeId>> Witness(bool strong) const {
    return ws_.Witness(strong);
  }

 private:
  MatcherWorkspace ws_;
};

/// Convenience wrappers.  The `stats` overloads count the embedding attempt
/// and its DP cells.
bool MatchesWeak(const Tpq& q, const Tree& t);
bool MatchesStrong(const Tpq& q, const Tree& t);
bool MatchesWeak(const Tpq& q, const Tree& t, EngineStats* stats);
bool MatchesStrong(const Tpq& q, const Tree& t, EngineStats* stats);

}  // namespace tpc

#endif  // TPC_MATCH_EMBEDDING_H_
