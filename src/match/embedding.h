// Weak and strong embeddings of tree pattern queries into trees
// (Definition 2.1 and Figure 1 of the paper).
//
// `MatcherWorkspace` runs a bottom-up dynamic program over (pattern node,
// tree node) pairs in O(|q| * |t| * ceil(|q|/64)) time, with the per-tree-node
// DP rows packed into uint64 bitset words over pattern nodes: the inner
// "some child of x satisfies c" loops become word-wide ORs and submask
// tests.  The workspace keeps its tables alive across evaluations, so the
// canonical-sweep hot loops run allocation-free, and `EvalIncremental`
// refills only the columns invalidated by a spine-suffix rebuild (the
// changed tail plus the ancestor path of the cut), reusing all others.
//
// `Matcher` is the one-shot wrapper (evaluates in the constructor) kept for
// call sites that check a single pattern/tree pair.

#ifndef TPC_MATCH_EMBEDDING_H_
#define TPC_MATCH_EMBEDDING_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "engine/stats.h"
#include "engine/tracked.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Reusable embedding evaluator.  One workspace serves many (pattern, tree)
/// evaluations; buffers grow to the largest instance seen and are never
/// freed, so enumeration sweeps allocate only on their first few iterations.
/// Not thread-safe: use one workspace per sweep worker.
class MatcherWorkspace {
 public:
  MatcherWorkspace() = default;

  /// Accounts the DP-table bytes an evaluation of `q` against `t` will
  /// occupy, through `budget` (high-water: a reused workspace charges only
  /// growth beyond the largest instance seen).  Returns false when the
  /// budget refuses — the caller should then report memory exhaustion
  /// instead of calling `Eval*`.  Sweep loops call this once per tree,
  /// before the evaluation.
  bool ChargeTables(const Tpq& q, const Tree& t, Budget* budget) {
    tracked_.Attach(budget);
    const int64_t words =
        static_cast<int64_t>((q.size() + 63) / 64);
    return tracked_.Reserve(2 * static_cast<int64_t>(t.size()) * words *
                            static_cast<int64_t>(sizeof(uint64_t)));
  }

  /// Evaluates `q` against `t` from scratch.  The pattern-side tables are
  /// rebuilt only when `q` is not the pattern of the previous evaluation.
  /// With a non-null `stats`, reports one attempted embedding and
  /// `|q| * |t|` DP cells filled.
  void EvalFull(const Tpq& q, const Tree& t, EngineStats* stats = nullptr);

  /// Re-evaluates after an incremental tree rebuild.  Precondition: the
  /// previous `Eval*` call on this workspace used the same `q` and the same
  /// tree object, whose nodes with id < `stable_limit` (ids, labels and
  /// subtree structure) are unchanged — exactly what
  /// `CanonicalTreeBuilder::BuildSuffix` guarantees with
  /// `stable_limit = spine_start(first_changed)`.  Recomputes the columns of
  /// nodes >= `stable_limit` plus the ancestor path of the cut; every other
  /// column is reused and reported via `EngineStats::dp_cells_reused`.
  void EvalIncremental(const Tpq& q, const Tree& t, NodeId stable_limit,
                       EngineStats* stats = nullptr);

  /// True iff `t` is in the weak language L_w(q).
  bool MatchesWeak() const;

  /// True iff `t` is in the strong language L_s(q) (root maps to root).
  bool MatchesStrong() const;

  /// True iff subquery(v) embeds with `v` mapped to tree node `x`.
  bool SatAt(NodeId v, NodeId x) const {
    return (sat_[RowOffset(x) + (static_cast<size_t>(v) >> 6)] >>
            (static_cast<size_t>(v) & 63)) &
           1;
  }

  /// True iff subquery(v) embeds with `v` mapped somewhere in subtree(x).
  bool SatBelow(NodeId v, NodeId x) const {
    return (desc_[RowOffset(x) + (static_cast<size_t>(v) >> 6)] >>
            (static_cast<size_t>(v) & 63)) &
           1;
  }

  /// Extracts a weak (or strong) embedding if one exists: a mapping from
  /// pattern nodes to tree nodes.  Returns std::nullopt if no embedding.
  std::optional<std::vector<NodeId>> Witness(bool strong) const;

 private:
  size_t RowOffset(NodeId x) const {
    return static_cast<size_t>(x) * words_;
  }
  void BindPattern(const Tpq& q);
  void ComputeColumn(NodeId x);
  const uint64_t* LabelMask(LabelId label) const;
  void ExtractAt(NodeId v, NodeId x, std::vector<NodeId>* map) const;

  const Tpq* q_ = nullptr;
  const Tree* t_ = nullptr;
  size_t words_ = 0;  // ceil(|q| / 64) bitset words per DP row

  // Pattern-side tables, rebuilt on BindPattern.
  std::vector<uint64_t> req_child_;  // v -> mask of v's child-edge children
  std::vector<uint64_t> req_desc_;   // v -> mask of v's descendant children
  std::vector<uint64_t> wildcard_mask_;  // wildcard pattern nodes
  std::vector<uint64_t> label_mask_store_;   // per-letter masks, |wildcard'd
  std::unordered_map<LabelId, size_t> label_mask_offset_;

  // Tree-side tables: row x holds bits {v : ...} packed into `words_` words.
  std::vector<uint64_t> sat_;   // subquery(v) embeds at x
  std::vector<uint64_t> desc_;  // OR of sat_ over subtree(x)

  // Column scratch (accumulators over the children of the current node).
  std::vector<uint64_t> acc_child_;
  std::vector<uint64_t> acc_desc_;

  // High-water accounting for the sat_/desc_ tables (see ChargeTables).
  TrackedBytes tracked_;
};

/// Evaluates one pattern against one tree.  Cheap to construct; the dynamic
/// program runs once in the constructor.
class Matcher {
 public:
  /// With a non-null `stats`, reports one attempted embedding and the number
  /// of DP cells filled.
  Matcher(const Tpq& q, const Tree& t, EngineStats* stats = nullptr) {
    ws_.EvalFull(q, t, stats);
  }

  bool MatchesWeak() const { return ws_.MatchesWeak(); }
  bool MatchesStrong() const { return ws_.MatchesStrong(); }
  bool SatAt(NodeId v, NodeId x) const { return ws_.SatAt(v, x); }
  bool SatBelow(NodeId v, NodeId x) const { return ws_.SatBelow(v, x); }
  std::optional<std::vector<NodeId>> Witness(bool strong) const {
    return ws_.Witness(strong);
  }

 private:
  MatcherWorkspace ws_;
};

/// Convenience wrappers.  The `stats` overloads count the embedding attempt
/// and its DP cells.
bool MatchesWeak(const Tpq& q, const Tree& t);
bool MatchesStrong(const Tpq& q, const Tree& t);
bool MatchesWeak(const Tpq& q, const Tree& t, EngineStats* stats);
bool MatchesStrong(const Tpq& q, const Tree& t, EngineStats* stats);

}  // namespace tpc

#endif  // TPC_MATCH_EMBEDDING_H_
