#include "service/query_service.h"

#include <atomic>
#include <cstddef>
#include <utility>

#include "contain/homomorphism.h"
#include "contain/minimize.h"
#include "match/embedding.h"
#include "pattern/canonical.h"
#include "pattern/tpq_hash.h"

namespace tpc {
namespace {

ContainmentResult ExhaustedResult(EngineContext* ctx) {
  ContainmentResult result;
  result.outcome = Outcome::kResourceExhausted;
  const ExhaustionReason r = ctx->budget().reason();
  result.reason = r == ExhaustionReason::kNone ? ExhaustionReason::kSteps : r;
  return result;
}

}  // namespace

QueryService::QueryService(LabelPool* pool, EngineContext* ctx,
                           const ServiceOptions& options)
    : pool_(pool),
      ctx_(ctx),
      options_(options),
      cache_(options.cache_shards, options.cache_bytes, &ctx->budget(),
             &VerdictEntryCost) {
  // All tracked shims release into ctx's budget on destruction, so the
  // service must not outlive its context.
  memo_tracked_.Attach(&ctx->budget());
  probe_tracked_.Attach(&ctx->budget());
  if (options_.containment.compiled_matcher) {
    programs_ = std::make_unique<ProgramCache>(
        options_.cache_shards, options_.program_cache_bytes,
        options_.containment.compile_threshold, &ctx->budget());
  }
}

std::shared_ptr<const QueryService::MinimizedEntry> QueryService::Minimized(
    const Tpq& pattern, Mode mode, const ContainmentOptions& options) {
  // The memo key is the raw canonical hash (mode-salted: minimization under
  // weak and strong may differ) folded with the pool generation — hashes
  // are relative to one pool's id assignment, so a memo built against a
  // replaced pool must miss rather than serve a stale minimization.  Like
  // the verdict cache's "contained" entries, hits are trusted on the 64-bit
  // hash; see DESIGN.md.
  const uint64_t memo_key =
      CanonicalTpqHash(pattern) ^
      (mode == Mode::kStrong ? 0x94d049bb133111ebULL : 0) ^
      (pool_->generation() * 0xd6e8feb86659fd93ULL);
  {
    std::lock_guard<std::mutex> lock(minimize_mu_);
    auto it = minimize_memo_.find(memo_key);
    if (it != minimize_memo_.end()) return it->second;
  }
  auto entry = std::make_shared<MinimizedEntry>();
  entry->pattern = MinimizeTpq(pattern, mode, pool_, ctx_, options);
  entry->hash = CanonicalTpqHash(entry->pattern);
  // A budget-exhausted minimization is equivalent but possibly incomplete;
  // keep it out of the memo so a later, funded request re-minimizes.
  if (!ctx_->budget().Exhausted()) {
    const int64_t bytes =
        96 + static_cast<int64_t>(entry->pattern.size()) * 32;
    std::lock_guard<std::mutex> lock(minimize_mu_);
    auto it = minimize_memo_.find(memo_key);
    if (it != minimize_memo_.end()) return it->second;
    if (memo_tracked_.Charge(bytes)) {
      minimize_memo_.emplace(memo_key, entry);
    } else {
      memo_tracked_.Release(bytes);
    }
  }
  return entry;
}

std::vector<std::vector<int32_t>> QueryService::ProbesFor(
    const ProbeKey& key) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  auto it = probe_book_.find(key);
  if (it == probe_book_.end()) return {};
  return it->second;
}

void QueryService::RecordProbe(const ProbeKey& key,
                               const std::vector<int32_t>& lengths) {
  const int64_t bytes =
      48 + static_cast<int64_t>(lengths.size()) * sizeof(int32_t);
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (!probe_tracked_.Charge(bytes)) {
    probe_tracked_.Release(bytes);
    return;
  }
  auto& recorded = probe_book_[key];
  for (const auto& existing : recorded) {
    if (existing == lengths) {
      probe_tracked_.Release(bytes);
      return;
    }
  }
  recorded.insert(recorded.begin(), lengths);
  if (recorded.size() > options_.probe_pool_limit) {
    probe_tracked_.Release(
        48 + static_cast<int64_t>(recorded.back().size()) * sizeof(int32_t));
    recorded.pop_back();
  }
}

ContainmentResult QueryService::DecideOne(const Tpq& p, const Tpq& q,
                                          Mode mode, bool in_worker) {
  ContainmentOptions options = options_.containment;
  if (in_worker) options.sequential_sweep = true;
  // Share the program pool with the dispatcher: its sweeps publish compiled
  // patterns here and its single-tree routes consult the hotness tracker.
  options.program_cache = programs_.get();
  EngineStats& stats = ctx_->stats();

  std::shared_ptr<const MinimizedEntry> pm, qm;
  const Tpq* pp = &p;
  const Tpq* qq = &q;
  VerdictKey key;
  bool have_key = false;
  uint64_t q_probe_hash = 0;
  bool have_probe_hash = false;
  if (options_.use_cache) {
    pm = Minimized(p, mode, options);
    qm = Minimized(q, mode, options);
    pp = &pm->pattern;
    qq = &qm->pattern;
    key = VerdictKey{pm->hash, qm->hash, mode, options.bound,
                     pool_->generation()};
    have_key = true;
    q_probe_hash = qm->hash;
    have_probe_hash = true;
  } else if (options_.use_prefilters) {
    // No cache layer: the probe book still wants a q identity.
    q_probe_hash = CanonicalTpqHash(q);
    have_probe_hash = true;
  }

  if (have_key) {
    if (std::optional<VerdictEntry> hit = cache_.Get(key)) {
      if (hit->contained || !hit->counterexample_lengths.has_value()) {
        // Positive (and witness-less negative) verdicts are served on hash
        // trust alone; see the soundness discussion in verdict_cache.h.
        stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
        ContainmentResult result;
        result.contained = hit->contained;
        result.algorithm = hit->algorithm;
        return result;
      }
      std::vector<int32_t> lengths = *hit->counterexample_lengths;
      lengths.resize(DescendantEdges(*pp).size(), 1);
      std::optional<Tree> replay =
          ReplayRefutation(*pp, *qq, mode, lengths, pool_, ctx_);
      if (replay.has_value()) {
        stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
        ContainmentResult result;
        result.contained = false;
        result.counterexample = std::move(*replay);
        result.counterexample_lengths = std::move(lengths);
        result.algorithm = hit->algorithm;
        return result;
      }
      if (ctx_->budget().Exhausted()) return ExhaustedResult(ctx_);
      // The cached witness did not transfer (key collision); fall through
      // to the live pipeline.
    }
  }

  if (options_.use_prefilters && !ctx_->budget().Exhausted()) {
    // Accept filter: a homomorphism q -> p witnesses containment in every
    // fragment (root-to-root for the strong flavour), skipping the general
    // route for the contained majority of repeated workloads.
    bool budget_ok = ctx_->budget().Charge(static_cast<int64_t>(qq->size()) *
                                           pp->size());
    if (budget_ok) {
      stats.homomorphism_checks.fetch_add(1, std::memory_order_relaxed);
      auto scratch = ctx_->scratch().Acquire<HomomorphismScratch>();
      budget_ok = scratch->ChargeTables(*qq, *pp, &ctx_->budget());
      if (budget_ok &&
          HomomorphismExists(*qq, *pp, /*root_to_root=*/mode == Mode::kStrong,
                             scratch.get())) {
        stats.prefilter_accepts.fetch_add(1, std::memory_order_relaxed);
        ContainmentResult result;
        result.contained = true;
        result.algorithm = ContainmentAlgorithm::kHomomorphism;
        if (have_key) {
          VerdictEntry entry;
          entry.contained = true;
          entry.algorithm = result.algorithm;
          stats.cache_evictions.fetch_add(cache_.Put(key, std::move(entry)),
                                          std::memory_order_relaxed);
        }
        return result;
      }
    }
    if (budget_ok) {
      // Refute filter: every canonical tree of p is in L_w(p) and L_s(p),
      // so q failing to match one refutes containment outright.  Probe the
      // two cheap extremes plus length vectors that refuted this q before.
      const size_t num_edges = DescendantEdges(*pp).size();
      std::vector<std::vector<int32_t>> probes;
      probes.emplace_back(num_edges, 0);
      probes.emplace_back(num_edges, 1);
      if (have_probe_hash) {
        for (std::vector<int32_t>& recorded :
             ProbesFor(ProbeKey{q_probe_hash, mode})) {
          recorded.resize(num_edges, 1);
          probes.push_back(std::move(recorded));
        }
      }
      // Compiled probe path: the probe loop evaluates one minimized q
      // against a handful of canonical trees — exactly the single-tree
      // shape the program pool's hotness threshold gates, so only patterns
      // seen often enough pay the compile.
      std::shared_ptr<const MatcherProgram> program;
      if (programs_ != nullptr && MatcherProgram::Compilable(*qq)) {
        const ProgramKey pkey{
            have_probe_hash ? q_probe_hash : CanonicalTpqHash(*qq),
            pool_->generation(), static_cast<uint32_t>(mode)};
        bool should_compile = false;
        program = programs_->Get(pkey, &should_compile);
        if (program == nullptr && should_compile) {
          program = MatcherProgram::Compile(*qq, programs_->budget(), &stats);
          if (program != nullptr) {
            stats.program_cache_evictions.fetch_add(
                programs_->Put(pkey, program), std::memory_order_relaxed);
          }
        }
      }
      auto ws = ctx_->scratch().Acquire<MatcherWorkspace>();
      auto exec = ctx_->scratch().Acquire<ProgramExec>();
      for (std::vector<int32_t>& lengths : probes) {
        Tree t = CanonicalTree(*pp, lengths, pool_->Fresh("_bot"));
        stats.canonical_trees_enumerated.fetch_add(1,
                                                   std::memory_order_relaxed);
        if (!ctx_->budget().Charge(
                1 + static_cast<int64_t>(qq->size()) * t.size())) {
          budget_ok = false;
          break;
        }
        bool matches;
        if (program != nullptr && exec->ChargeRun(t, &ctx_->budget())) {
          const MatcherProgram::ExecResult r = exec->Run(*program, t, &stats);
          matches = mode == Mode::kStrong ? r.strong : r.weak;
        } else {
          // Generic fallback (also taken when the soft scratch charge for
          // the compiled run is refused).
          if (!ws->ChargeTables(*qq, t, &ctx_->budget())) {
            budget_ok = false;
            break;
          }
          ws->EvalFull(*qq, t, &stats, options.word_parallel);
          matches =
              mode == Mode::kStrong ? ws->MatchesStrong() : ws->MatchesWeak();
        }
        if (!matches) {
          stats.prefilter_refutes.fetch_add(1, std::memory_order_relaxed);
          ContainmentResult result;
          result.contained = false;
          result.algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
          result.counterexample = std::move(t);
          result.counterexample_lengths = lengths;
          if (have_probe_hash) {
            RecordProbe(ProbeKey{q_probe_hash, mode}, lengths);
          }
          if (have_key) {
            VerdictEntry entry;
            entry.contained = false;
            entry.algorithm = result.algorithm;
            entry.counterexample_lengths = std::move(lengths);
            stats.cache_evictions.fetch_add(cache_.Put(key, std::move(entry)),
                                            std::memory_order_relaxed);
          }
          return result;
        }
      }
    }
    if (!budget_ok) return ExhaustedResult(ctx_);
  }

  ContainmentResult result = tpc::Contains(*pp, *qq, mode, pool_, ctx_,
                                           options);
  if (result.outcome == Outcome::kDecided) {
    if (result.counterexample_lengths.has_value() && have_probe_hash) {
      RecordProbe(ProbeKey{q_probe_hash, mode},
                  *result.counterexample_lengths);
    }
    if (have_key) {
      VerdictEntry entry;
      entry.contained = result.contained;
      entry.algorithm = result.algorithm;
      entry.counterexample_lengths = result.counterexample_lengths;
      stats.cache_evictions.fetch_add(cache_.Put(key, std::move(entry)),
                                      std::memory_order_relaxed);
    }
  }
  // Exhausted results are deliberately never cached: a partial sweep's
  // verdict is not a verdict.
  return result;
}

ContainmentResult QueryService::Contains(const Tpq& p, const Tpq& q,
                                         Mode mode) {
  return DecideOne(p, q, mode, /*in_worker=*/false);
}

std::vector<ContainmentResult> QueryService::ContainsBatch(
    const std::vector<BatchItem>& items) {
  std::vector<ContainmentResult> results(items.size());
  if (items.empty()) return results;

  // Fold exact repeats before any real work: zipf-style workloads repeat
  // pairs verbatim, and one decision serves every copy.  (Dedup is by raw
  // canonical hash — the same 64-bit trust as the cache key; minimization-
  // equivalent variants are folded later by the verdict cache instead.)
  struct DedupKey {
    uint64_t p_hash;
    uint64_t q_hash;
    Mode mode;
    bool operator==(const DedupKey& o) const {
      return p_hash == o.p_hash && q_hash == o.q_hash && mode == o.mode;
    }
  };
  struct DedupKeyHash {
    size_t operator()(const DedupKey& k) const {
      uint64_t h = k.p_hash * 0x9e3779b97f4a7c15ULL;
      h ^= k.q_hash + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(k.mode);
      return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };
  std::unordered_map<DedupKey, size_t, DedupKeyHash> slot_of;
  std::vector<size_t> representative;  // unique slot -> item index
  std::vector<size_t> owner(items.size());
  int64_t folded = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    DedupKey k{CanonicalTpqHash(items[i].p), CanonicalTpqHash(items[i].q),
               items[i].mode};
    auto [it, inserted] = slot_of.emplace(k, representative.size());
    if (inserted) {
      representative.push_back(i);
    } else {
      ++folded;
    }
    owner[i] = it->second;
  }
  ctx_->stats().batch_deduped.fetch_add(folded, std::memory_order_relaxed);

  std::vector<ContainmentResult> unique_results(representative.size());
  if (ctx_->threads() > 1 && representative.size() > 1) {
    // Workers force sequential sweeps: ParallelFor must not reenter.
    ctx_->pool().ParallelFor(
        static_cast<int64_t>(representative.size()), [&](int64_t u) {
          const BatchItem& item = items[representative[static_cast<size_t>(u)]];
          unique_results[static_cast<size_t>(u)] =
              DecideOne(item.p, item.q, item.mode, /*in_worker=*/true);
        });
  } else {
    for (size_t u = 0; u < representative.size(); ++u) {
      const BatchItem& item = items[representative[u]];
      unique_results[u] = DecideOne(item.p, item.q, item.mode,
                                    /*in_worker=*/false);
    }
  }
  for (size_t i = 0; i < items.size(); ++i) {
    results[i] = unique_results[owner[i]];
  }
  return results;
}

}  // namespace tpc
