#include "service/query_service.h"

#include <atomic>
#include <cstddef>
#include <utility>

#include "contain/homomorphism.h"
#include "contain/minimize.h"
#include "match/embedding.h"
#include "pattern/canonical.h"
#include "pattern/tpq_hash.h"

namespace tpc {
namespace {

ContainmentResult ExhaustedResult(EngineContext* ctx) {
  ContainmentResult result;
  result.outcome = Outcome::kResourceExhausted;
  const ExhaustionReason r = ctx->budget().reason();
  result.reason = r == ExhaustionReason::kNone ? ExhaustionReason::kSteps : r;
  return result;
}

}  // namespace

QueryService::QueryService(LabelPool* pool, EngineContext* ctx,
                           const ServiceOptions& options)
    : pool_(pool),
      ctx_(ctx),
      options_(options),
      cache_(options.cache_shards, options.cache_bytes, &ctx->budget(),
             &VerdictEntryCost) {
  // All tracked shims release into ctx's budget on destruction, so the
  // service must not outlive its context.
  memo_tracked_.Attach(&ctx->budget());
  probe_tracked_.Attach(&ctx->budget());
  if (options_.containment.compiled_matcher) {
    programs_ = std::make_unique<ProgramCache>(
        options_.cache_shards, options_.program_cache_bytes,
        options_.containment.compile_threshold, &ctx->budget());
  }
  if (options_.use_cache) {
    // Built whenever the cache layer is: even with `use_lattice` off the
    // lattice records verdicts (cheap), because it doubles as the pattern
    // registry snapshot persistence resolves cache keys through.
    lattice_ = std::make_unique<VerdictLattice>(options_.lattice_bytes,
                                                &ctx->budget());
  }
}

std::shared_ptr<const QueryService::MinimizedEntry> QueryService::Minimized(
    const Tpq& pattern, Mode mode, const ContainmentOptions& options,
    EngineContext* ctx) {
  // The memo key is the raw canonical hash (mode-salted: minimization under
  // weak and strong may differ) folded with the pool generation — hashes
  // are relative to one pool's id assignment, so a memo built against a
  // replaced pool must miss rather than serve a stale minimization.  Like
  // the verdict cache's "contained" entries, hits are trusted on the 64-bit
  // hash; see DESIGN.md.
  const uint64_t memo_key =
      CanonicalTpqHash(pattern) ^
      (mode == Mode::kStrong ? 0x94d049bb133111ebULL : 0) ^
      (pool_->generation() * 0xd6e8feb86659fd93ULL);
  {
    std::lock_guard<std::mutex> lock(minimize_mu_);
    auto it = minimize_memo_.find(memo_key);
    if (it != minimize_memo_.end()) return it->second;
  }
  auto entry = std::make_shared<MinimizedEntry>();
  entry->pattern = MinimizeTpq(pattern, mode, pool_, ctx, options);
  // One bottom-up pass yields both lanes; the lo lane *is* CanonicalTpqHash.
  entry->digest = CanonicalTpqDigest(entry->pattern);
  entry->hash = entry->digest.lo;
  // A budget-exhausted minimization is equivalent but possibly incomplete;
  // keep it out of the memo so a later, funded request re-minimizes.
  if (!ctx->budget().Exhausted()) {
    const int64_t bytes =
        96 + static_cast<int64_t>(entry->pattern.size()) * 32;
    std::lock_guard<std::mutex> lock(minimize_mu_);
    auto it = minimize_memo_.find(memo_key);
    if (it != minimize_memo_.end()) return it->second;
    if (memo_tracked_.Charge(bytes)) {
      minimize_memo_.emplace(memo_key, entry);
    } else {
      memo_tracked_.Release(bytes);
    }
  }
  return entry;
}

std::vector<std::vector<int32_t>> QueryService::ProbesFor(
    const ProbeKey& key) {
  std::lock_guard<std::mutex> lock(probe_mu_);
  auto it = probe_book_.find(key);
  if (it == probe_book_.end()) return {};
  return it->second;
}

void QueryService::RecordProbe(const ProbeKey& key,
                               const std::vector<int32_t>& lengths) {
  const int64_t bytes =
      48 + static_cast<int64_t>(lengths.size()) * sizeof(int32_t);
  std::lock_guard<std::mutex> lock(probe_mu_);
  if (!probe_tracked_.Charge(bytes)) {
    probe_tracked_.Release(bytes);
    return;
  }
  auto& recorded = probe_book_[key];
  for (const auto& existing : recorded) {
    if (existing == lengths) {
      probe_tracked_.Release(bytes);
      return;
    }
  }
  recorded.insert(recorded.begin(), lengths);
  if (recorded.size() > options_.probe_pool_limit) {
    probe_tracked_.Release(
        48 + static_cast<int64_t>(recorded.back().size()) * sizeof(int32_t));
    recorded.pop_back();
  }
}

void QueryService::SeedMinimized(const Tpq& pattern, const TpqDigest& digest,
                                 Mode mode) {
  // Mirror of the Minimized() memo insertion, for patterns a snapshot
  // already stores in minimized form (minimization is idempotent, so the
  // raw-hash key of an already-minimal pattern is its own digest lo lane).
  const uint64_t memo_key =
      digest.lo ^ (mode == Mode::kStrong ? 0x94d049bb133111ebULL : 0) ^
      (pool_->generation() * 0xd6e8feb86659fd93ULL);
  auto entry = std::make_shared<MinimizedEntry>();
  entry->pattern = pattern;
  entry->hash = digest.lo;
  entry->digest = digest;
  const int64_t bytes = 96 + static_cast<int64_t>(pattern.size()) * 32;
  std::lock_guard<std::mutex> lock(minimize_mu_);
  if (minimize_memo_.find(memo_key) != minimize_memo_.end()) return;
  if (memo_tracked_.Charge(bytes)) {
    minimize_memo_.emplace(memo_key, std::move(entry));
  } else {
    memo_tracked_.Release(bytes);
  }
}

std::shared_ptr<const MatcherProgram> QueryService::PooledProgram(
    const Tpq& pattern, uint64_t hash, Mode mode, EngineContext* ctx) {
  if (programs_ == nullptr || !MatcherProgram::Compilable(pattern)) {
    return nullptr;
  }
  const ProgramKey key{hash, pool_->generation(), static_cast<uint32_t>(mode)};
  bool should_compile = false;
  std::shared_ptr<const MatcherProgram> program =
      programs_->Get(key, &should_compile);
  if (program == nullptr && should_compile) {
    program =
        MatcherProgram::Compile(pattern, programs_->budget(), &ctx->stats());
    if (program != nullptr) {
      ctx->stats().program_cache_evictions.fetch_add(
          programs_->Put(key, program), std::memory_order_relaxed);
    }
  }
  return program;
}

ContainmentResult QueryService::DecideOne(const Tpq& p, const Tpq& q,
                                          Mode mode, bool in_worker,
                                          EngineContext* ctx,
                                          PendingDecision* defer) {
  ContainmentOptions options = options_.containment;
  if (in_worker) options.sequential_sweep = true;
  // Share the program pool with the dispatcher: its sweeps publish compiled
  // patterns here and its single-tree routes consult the hotness tracker.
  options.program_cache = programs_.get();
  EngineStats& stats = ctx->stats();

  std::shared_ptr<const MinimizedEntry> pm, qm;
  const Tpq* pp = &p;
  const Tpq* qq = &q;
  VerdictKey key;
  bool have_key = false;
  uint64_t q_probe_hash = 0;
  bool have_probe_hash = false;
  if (options_.use_cache) {
    pm = Minimized(p, mode, options, ctx);
    qm = Minimized(q, mode, options, ctx);
    pp = &pm->pattern;
    qq = &qm->pattern;
    key = VerdictKey{pm->hash, qm->hash, mode, options.bound,
                     pool_->generation()};
    have_key = true;
    q_probe_hash = qm->hash;
    have_probe_hash = true;
  } else if (options_.use_prefilters) {
    // No cache layer: the probe book still wants a q identity.
    q_probe_hash = CanonicalTpqHash(q);
    have_probe_hash = true;
  }

  if (have_key) {
    if (std::optional<VerdictEntry> hit = cache_.Get(key)) {
      if (hit->contained || !hit->counterexample_lengths.has_value()) {
        // Positive (and witness-less negative) verdicts are served on hash
        // trust alone; see the soundness discussion in verdict_cache.h.
        stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
        ContainmentResult result;
        result.contained = hit->contained;
        result.algorithm = hit->algorithm;
        return result;
      }
      std::vector<int32_t> lengths = *hit->counterexample_lengths;
      lengths.resize(DescendantEdges(*pp).size(), 1);
      // Mapped-tree fast path: when the refutation's canonical
      // counterexample tree came in with a snapshot, validate it zero-copy
      // against the mapped columns instead of rebuilding the canonical
      // tree.  Sound without any trust in the file: the mapped tree is
      // checked to be in L(p) and outside L(q) right here, and *any* such
      // tree refutes p ⊑ q whatever the cache key hashed to.
      if (mapped_snapshot_ != nullptr) {
        auto mt = mapped_trees_.find(key);
        if (mt != mapped_trees_.end()) {
          const TreeView tv = mapped_snapshot_->TreeAt(mt->second);
          std::shared_ptr<const MatcherProgram> p_prog =
              PooledProgram(*pp, pm->hash, mode, ctx);
          std::shared_ptr<const MatcherProgram> q_prog =
              PooledProgram(*qq, qm->hash, mode, ctx);
          if (p_prog != nullptr && q_prog != nullptr &&
              ctx->budget().Charge(2 * static_cast<int64_t>(tv.size()))) {
            std::vector<MatcherProgram::StackFrame> stack;
            int64_t words_folded = 0, rows_skipped = 0;
            const MatcherProgram::ExecResult rp =
                p_prog->Run(tv, &stack, &words_folded, &rows_skipped);
            const MatcherProgram::ExecResult rq =
                q_prog->Run(tv, &stack, &words_folded, &rows_skipped);
            stats.dp_words_folded.fetch_add(words_folded,
                                            std::memory_order_relaxed);
            stats.dp_rows_skipped.fetch_add(rows_skipped,
                                            std::memory_order_relaxed);
            stats.program_exec_hits.fetch_add(2, std::memory_order_relaxed);
            const bool p_ok = mode == Mode::kStrong ? rp.strong : rp.weak;
            const bool q_ok = mode == Mode::kStrong ? rq.strong : rq.weak;
            if (p_ok && !q_ok) {
              stats.snapshot_trees_mapped.fetch_add(1,
                                                    std::memory_order_relaxed);
              stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
              ContainmentResult result;
              result.contained = false;
              result.counterexample_lengths = std::move(lengths);
              result.algorithm = hit->algorithm;
              return result;
            }
            // The mapped tree did not certify (p or q disagreed): fall
            // through to the ordinary replay, which decides from scratch.
          }
        }
      }
      std::optional<Tree> replay =
          ReplayRefutation(*pp, *qq, mode, lengths, pool_, ctx);
      if (replay.has_value()) {
        stats.cache_hits.fetch_add(1, std::memory_order_relaxed);
        ContainmentResult result;
        result.contained = false;
        result.counterexample = std::move(*replay);
        result.counterexample_lengths = std::move(lengths);
        result.algorithm = hit->algorithm;
        return result;
      }
      if (ctx->budget().Exhausted()) return ExhaustedResult(ctx);
      // The cached witness did not transfer (key collision); fall through
      // to the live pipeline.
    }
  }

  // Subsumption-lattice layer: on a cache miss, try to *derive* the verdict
  // from neighbouring cached verdicts before running any decision
  // procedure.  Stitching walks validated "contained" edges forward only
  // (p ⊑ r, r ⊑ q ⇒ p ⊑ q by transitivity); borrowing replays a
  // neighbour's counterexample lengths through ReplayRefutation, which
  // rebuilds the induced canonical tree of the *live* p — so neither path
  // can be fooled by a digest collision.  Derived verdicts are cached, so
  // the derivation happens once per pair.
  if (have_key && lattice_ != nullptr && options_.use_lattice &&
      !ctx->budget().Exhausted()) {
    if (lattice_->Stitch(pm->digest, qm->digest, mode, options.bound,
                         key.pool_generation, &ctx->budget())) {
      stats.lattice_stitch_hits.fetch_add(1, std::memory_order_relaxed);
      ContainmentResult result;
      result.contained = true;
      result.algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
      VerdictEntry entry;
      entry.contained = true;
      entry.algorithm = result.algorithm;
      stats.cache_evictions.fetch_add(cache_.Put(key, std::move(entry)),
                                      std::memory_order_relaxed);
      // Short-circuit future stitches of this pair to one hop.
      lattice_->Record(*pp, pm->digest, *qq, qm->digest, mode, options.bound,
                       key.pool_generation, /*contained=*/true, nullptr);
      return result;
    }
    if (ctx->budget().Exhausted()) return ExhaustedResult(ctx);
    const size_t num_edges = DescendantEdges(*pp).size();
    std::vector<std::vector<int32_t>> candidates = lattice_->BorrowCandidates(
        pm->digest, qm->digest, mode, options.bound, key.pool_generation,
        VerdictLattice::kWitnessLimit);
    for (std::vector<int32_t>& lengths : candidates) {
      lengths.resize(num_edges, 1);
      std::optional<Tree> replay =
          ReplayRefutation(*pp, *qq, mode, lengths, pool_, ctx);
      if (replay.has_value()) {
        stats.witness_borrow_refutes.fetch_add(1, std::memory_order_relaxed);
        ContainmentResult result;
        result.contained = false;
        result.counterexample = std::move(*replay);
        result.counterexample_lengths = lengths;
        result.algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
        RecordProbe(ProbeKey{qm->hash, mode}, lengths);
        lattice_->Record(*pp, pm->digest, *qq, qm->digest, mode, options.bound,
                         key.pool_generation, /*contained=*/false, &lengths);
        VerdictEntry entry;
        entry.contained = false;
        entry.algorithm = result.algorithm;
        entry.counterexample_lengths = std::move(lengths);
        stats.cache_evictions.fetch_add(cache_.Put(key, std::move(entry)),
                                        std::memory_order_relaxed);
        return result;
      }
      if (ctx->budget().Exhausted()) return ExhaustedResult(ctx);
    }
  }

  if (options_.use_prefilters && !ctx->budget().Exhausted()) {
    // Accept filter: a homomorphism q -> p witnesses containment in every
    // fragment (root-to-root for the strong flavour), skipping the general
    // route for the contained majority of repeated workloads.
    bool budget_ok = ctx->budget().Charge(static_cast<int64_t>(qq->size()) *
                                           pp->size());
    if (budget_ok) {
      stats.homomorphism_checks.fetch_add(1, std::memory_order_relaxed);
      auto scratch = ctx->scratch().Acquire<HomomorphismScratch>();
      budget_ok = scratch->ChargeTables(*qq, *pp, &ctx->budget());
      if (budget_ok &&
          HomomorphismExists(*qq, *pp, /*root_to_root=*/mode == Mode::kStrong,
                             scratch.get())) {
        stats.prefilter_accepts.fetch_add(1, std::memory_order_relaxed);
        ContainmentResult result;
        result.contained = true;
        result.algorithm = ContainmentAlgorithm::kHomomorphism;
        if (have_key) {
          VerdictEntry entry;
          entry.contained = true;
          entry.algorithm = result.algorithm;
          stats.cache_evictions.fetch_add(cache_.Put(key, std::move(entry)),
                                          std::memory_order_relaxed);
          if (lattice_ != nullptr) {
            lattice_->Record(*pp, pm->digest, *qq, qm->digest, mode,
                             options.bound, key.pool_generation,
                             /*contained=*/true, nullptr);
          }
        }
        return result;
      }
    }
    if (budget_ok) {
      // Refute filter: every canonical tree of p is in L_w(p) and L_s(p),
      // so q failing to match one refutes containment outright.  Probe the
      // two cheap extremes plus length vectors that refuted this q before.
      const size_t num_edges = DescendantEdges(*pp).size();
      std::vector<std::vector<int32_t>> probes;
      probes.emplace_back(num_edges, 0);
      probes.emplace_back(num_edges, 1);
      if (have_probe_hash) {
        for (std::vector<int32_t>& recorded :
             ProbesFor(ProbeKey{q_probe_hash, mode})) {
          recorded.resize(num_edges, 1);
          probes.push_back(std::move(recorded));
        }
      }
      // Compiled probe path: the probe loop evaluates one minimized q
      // against a handful of canonical trees — exactly the single-tree
      // shape the program pool's hotness threshold gates, so only patterns
      // seen often enough pay the compile.
      std::shared_ptr<const MatcherProgram> program = PooledProgram(
          *qq, have_probe_hash ? q_probe_hash : CanonicalTpqHash(*qq), mode,
          ctx);
      auto ws = ctx->scratch().Acquire<MatcherWorkspace>();
      auto exec = ctx->scratch().Acquire<ProgramExec>();
      for (std::vector<int32_t>& lengths : probes) {
        Tree t = CanonicalTree(*pp, lengths, pool_->Fresh("_bot"));
        stats.canonical_trees_enumerated.fetch_add(1,
                                                   std::memory_order_relaxed);
        if (!ctx->budget().Charge(
                1 + static_cast<int64_t>(qq->size()) * t.size())) {
          budget_ok = false;
          break;
        }
        bool matches;
        if (program != nullptr && exec->ChargeRun(t, &ctx->budget())) {
          const MatcherProgram::ExecResult r = exec->Run(*program, t, &stats);
          matches = mode == Mode::kStrong ? r.strong : r.weak;
        } else {
          // Generic fallback (also taken when the soft scratch charge for
          // the compiled run is refused).
          if (!ws->ChargeTables(*qq, t, &ctx->budget())) {
            budget_ok = false;
            break;
          }
          ws->EvalFull(*qq, t, &stats, options.word_parallel);
          matches =
              mode == Mode::kStrong ? ws->MatchesStrong() : ws->MatchesWeak();
        }
        if (!matches) {
          stats.prefilter_refutes.fetch_add(1, std::memory_order_relaxed);
          ContainmentResult result;
          result.contained = false;
          result.algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
          result.counterexample = std::move(t);
          result.counterexample_lengths = lengths;
          if (have_probe_hash) {
            RecordProbe(ProbeKey{q_probe_hash, mode}, lengths);
          }
          if (have_key) {
            if (lattice_ != nullptr) {
              lattice_->Record(*pp, pm->digest, *qq, qm->digest, mode,
                               options.bound, key.pool_generation,
                               /*contained=*/false, &lengths);
            }
            VerdictEntry entry;
            entry.contained = false;
            entry.algorithm = result.algorithm;
            entry.counterexample_lengths = std::move(lengths);
            stats.cache_evictions.fetch_add(cache_.Put(key, std::move(entry)),
                                            std::memory_order_relaxed);
          }
          return result;
        }
      }
    }
    if (!budget_ok) return ExhaustedResult(ctx);
  }

  // Every fast-path layer passed: the pair needs the real dispatcher.
  // Capture the decision state — the caller either dispatches right here or
  // defers the pair into a grouped sweep with others sharing p.
  PendingDecision local;
  PendingDecision& d = defer != nullptr ? *defer : local;
  d.active = true;
  d.p = pp;
  d.q = qq;
  d.pm = std::move(pm);
  d.qm = std::move(qm);
  d.mode = mode;
  d.key = key;
  d.have_key = have_key;
  d.q_probe_hash = q_probe_hash;
  d.have_probe_hash = have_probe_hash;
  d.options = options;
  if (defer != nullptr) return ContainmentResult{};
  return FinishDecision(
      d, tpc::Contains(*d.p, *d.q, mode, pool_, ctx, options), ctx);
}

ContainmentResult QueryService::FinishDecision(const PendingDecision& d,
                                               ContainmentResult result,
                                               EngineContext* ctx) {
  EngineStats& stats = ctx->stats();
  if (result.outcome == Outcome::kDecided) {
    if (result.counterexample_lengths.has_value() && d.have_probe_hash) {
      RecordProbe(ProbeKey{d.q_probe_hash, d.mode},
                  *result.counterexample_lengths);
    }
    if (d.have_key) {
      VerdictEntry entry;
      entry.contained = result.contained;
      entry.algorithm = result.algorithm;
      entry.counterexample_lengths = result.counterexample_lengths;
      stats.cache_evictions.fetch_add(cache_.Put(d.key, std::move(entry)),
                                      std::memory_order_relaxed);
      if (lattice_ != nullptr) {
        lattice_->Record(*d.p, d.pm->digest, *d.q, d.qm->digest, d.mode,
                         d.options.bound, d.key.pool_generation,
                         result.contained,
                         result.counterexample_lengths.has_value()
                             ? &*result.counterexample_lengths
                             : nullptr);
      }
    }
  }
  // Exhausted results are deliberately never cached: a partial sweep's
  // verdict is not a verdict.
  return result;
}

void QueryService::DecideDeferred(std::vector<PendingRef>* refs,
                                  EngineContext* group_ctx,
                                  bool parallel_groups) {
  // Group by (p identity, mode).  Buckets key on the enumeration-side
  // pattern's canonical hash; within a bucket the representative pattern is
  // compared structurally, so a hash collision degrades to a separate group
  // (and, if singleton, a solo decision) — never to a wrong grouping.
  struct Group {
    Mode mode;
    const Tpq* p;
    std::vector<PendingRef> members;
  };
  std::vector<Group> groups;
  std::unordered_map<uint64_t, std::vector<size_t>> by_hash;
  for (PendingRef& r : *refs) {
    const uint64_t p_hash =
        r.d->pm != nullptr ? r.d->pm->hash : CanonicalTpqHash(*r.d->p);
    std::vector<size_t>& bucket = by_hash[p_hash];
    bool placed = false;
    for (size_t gi : bucket) {
      Group& g = groups[gi];
      if (g.mode == r.d->mode && *g.p == *r.d->p) {
        g.members.push_back(r);
        placed = true;
        break;
      }
    }
    if (!placed) {
      bucket.push_back(groups.size());
      groups.push_back(Group{r.d->mode, r.d->p, {r}});
    }
  }
  auto decide_group = [this, group_ctx](Group& g) {
    if (g.members.size() == 1) {
      // Singleton: exactly the dispatch the non-deferred DecideOne makes.
      PendingRef& r = g.members[0];
      *r.result = FinishDecision(
          *r.d,
          tpc::Contains(*r.d->p, *r.d->q, r.d->mode, pool_, r.ctx,
                        r.d->options),
          r.ctx);
      return;
    }
    std::vector<GroupMember> members;
    members.reserve(g.members.size());
    for (PendingRef& r : g.members) members.push_back({r.d->q, r.ctx});
    std::vector<ContainmentResult> results = tpc::ContainsGroup(
        *g.p, members, g.mode, pool_, group_ctx, g.members[0].d->options);
    for (size_t i = 0; i < g.members.size(); ++i) {
      *g.members[i].result = FinishDecision(
          *g.members[i].d, std::move(results[i]), g.members[i].ctx);
    }
  };
  if (parallel_groups && groups.size() > 1 && ctx_->threads() > 1) {
    ctx_->pool().ParallelFor(static_cast<int64_t>(groups.size()),
                             [&](int64_t gi) {
                               decide_group(groups[static_cast<size_t>(gi)]);
                             });
  } else {
    for (Group& g : groups) decide_group(g);
  }
}

ContainmentResult QueryService::Contains(const Tpq& p, const Tpq& q,
                                         Mode mode) {
  return DecideOne(p, q, mode, /*in_worker=*/false, ctx_);
}

ContainmentResult QueryService::ContainsFor(const Tpq& p, const Tpq& q,
                                            Mode mode,
                                            EngineContext* request_ctx) {
  // in_worker: the caller is (by contract) one of many concurrent threads,
  // so sweeps must stay sequential exactly as in the batch fan-out.
  return DecideOne(p, q, mode, /*in_worker=*/true, request_ctx);
}

std::vector<ContainmentResult> QueryService::ContainsGroupFor(
    const std::vector<GroupQuery>& queries) {
  std::vector<ContainmentResult> results(queries.size());
  if (queries.empty()) return results;
  const bool grouped = options_.containment.grouped_sweep;
  std::vector<PendingDecision> pending(queries.size());
  std::vector<PendingRef> refs;
  // Shared sweep work (tree builds, enumeration) is accounted on the first
  // deferred member's context — the group's "leader" request.
  EngineContext* group_ctx = nullptr;
  for (size_t i = 0; i < queries.size(); ++i) {
    const GroupQuery& gq = queries[i];
    results[i] = DecideOne(*gq.p, *gq.q, gq.mode, /*in_worker=*/true, gq.ctx,
                           grouped ? &pending[i] : nullptr);
    if (pending[i].active) {
      if (group_ctx == nullptr) group_ctx = gq.ctx;
      refs.push_back({&pending[i], &results[i], gq.ctx});
    }
  }
  // The caller is one worker thread: groups decide serially on it.
  if (!refs.empty()) {
    DecideDeferred(&refs, group_ctx, /*parallel_groups=*/false);
  }
  return results;
}

std::vector<ContainmentResult> QueryService::ContainsBatch(
    const std::vector<BatchItem>& items) {
  std::vector<ContainmentResult> results(items.size());
  if (items.empty()) return results;

  // Fold exact repeats before any real work: zipf-style workloads repeat
  // pairs verbatim, and one decision serves every copy.  (Dedup is by raw
  // canonical hash — the same 64-bit trust as the cache key; minimization-
  // equivalent variants are folded later by the verdict cache instead.)
  struct DedupKey {
    uint64_t p_hash;
    uint64_t q_hash;
    Mode mode;
    bool operator==(const DedupKey& o) const {
      return p_hash == o.p_hash && q_hash == o.q_hash && mode == o.mode;
    }
  };
  struct DedupKeyHash {
    size_t operator()(const DedupKey& k) const {
      uint64_t h = k.p_hash * 0x9e3779b97f4a7c15ULL;
      h ^= k.q_hash + (h << 6) + (h >> 2);
      h ^= static_cast<uint64_t>(k.mode);
      return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
    }
  };
  std::unordered_map<DedupKey, size_t, DedupKeyHash> slot_of;
  std::vector<size_t> representative;  // unique slot -> item index
  std::vector<size_t> owner(items.size());
  int64_t folded = 0;
  for (size_t i = 0; i < items.size(); ++i) {
    DedupKey k{CanonicalTpqHash(items[i].p), CanonicalTpqHash(items[i].q),
               items[i].mode};
    auto [it, inserted] = slot_of.emplace(k, representative.size());
    if (inserted) {
      representative.push_back(i);
    } else {
      ++folded;
    }
    owner[i] = it->second;
  }
  ctx_->stats().batch_deduped.fetch_add(folded, std::memory_order_relaxed);

  std::vector<ContainmentResult> unique_results(representative.size());
  // With grouping on, pairs the fast path cannot answer are deferred in
  // stage 1 and decided in stage 2, where items sharing an
  // enumeration-side pattern run one canonical-model sweep together.
  const bool grouped = options_.containment.grouped_sweep;
  std::vector<PendingDecision> pending(grouped ? representative.size() : 0);
  const bool parallel = ctx_->threads() > 1 && representative.size() > 1;
  if (parallel) {
    // Workers force sequential sweeps: ParallelFor must not reenter.
    ctx_->pool().ParallelFor(
        static_cast<int64_t>(representative.size()), [&](int64_t u) {
          const BatchItem& item = items[representative[static_cast<size_t>(u)]];
          unique_results[static_cast<size_t>(u)] = DecideOne(
              item.p, item.q, item.mode, /*in_worker=*/true, ctx_,
              grouped ? &pending[static_cast<size_t>(u)] : nullptr);
        });
  } else {
    for (size_t u = 0; u < representative.size(); ++u) {
      const BatchItem& item = items[representative[u]];
      unique_results[u] = DecideOne(item.p, item.q, item.mode,
                                    /*in_worker=*/false, ctx_,
                                    grouped ? &pending[u] : nullptr);
    }
  }
  if (grouped) {
    std::vector<PendingRef> refs;
    for (size_t u = 0; u < representative.size(); ++u) {
      if (pending[u].active) {
        refs.push_back({&pending[u], &unique_results[u], ctx_});
      }
    }
    // Independent groups fan out only when stage 1 already forced
    // sequential sweeps onto the deferred options.
    if (!refs.empty()) DecideDeferred(&refs, ctx_, parallel);
  }
  for (size_t i = 0; i < items.size(); ++i) {
    results[i] = unique_results[owner[i]];
  }
  return results;
}

bool QueryService::SaveSnapshot(const std::string& path, std::string* error) {
  if (!options_.use_cache || lattice_ == nullptr) {
    if (error != nullptr) *error = "snapshot: save requires the cache layer";
    return false;
  }
  // The bottom label of persisted counterexample trees must be interned
  // *before* the label section is frozen, so every tree label is in-file.
  const LabelId bottom = pool_->Fresh("_snapbot");
  const uint64_t generation = pool_->generation();
  SnapshotWriter writer(&ctx_->budget());
  if (!writer.SetLabels(*pool_)) {
    if (error != nullptr) *error = "snapshot: label-section charge refused";
    return false;
  }

  std::vector<std::pair<VerdictKey, VerdictEntry>> entries;
  cache_.ForEach([&entries](const VerdictKey& k, const VerdictEntry& e) {
    entries.emplace_back(k, e);
  });

  // Cache keys are 64-bit hashes; the lattice maps them back to the
  // minimized patterns the file stores verbatim.  Unresolvable or
  // lane-ambiguous hashes drop their entries — persisting under the wrong
  // pattern would be unsound, skipping is merely cold.
  std::unordered_map<uint64_t, uint32_t> pattern_index;
  std::unordered_map<uint64_t, Tpq> pattern_of;
  auto index_of = [&](uint64_t hash) -> std::optional<uint32_t> {
    if (auto it = pattern_index.find(hash); it != pattern_index.end()) {
      return it->second;
    }
    std::optional<std::pair<Tpq, TpqDigest>> found = lattice_->FindByHash(hash, generation);
    if (!found.has_value()) return std::nullopt;
    std::optional<uint32_t> idx =
        writer.AddPattern(found->first, found->second);
    if (!idx.has_value()) return std::nullopt;
    pattern_index.emplace(hash, *idx);
    pattern_of.emplace(hash, std::move(found->first));
    return idx;
  };

  for (const auto& [key, entry] : entries) {
    // One budget step per entry: cancellation or step faults abort the save
    // before any file exists — never a partial snapshot.
    if (!ctx_->budget().Charge(1)) {
      if (error != nullptr) *error = "snapshot: save aborted (budget)";
      return false;
    }
    if (key.pool_generation != generation) continue;
    const std::optional<uint32_t> pi = index_of(key.p_hash);
    const std::optional<uint32_t> qi = index_of(key.q_hash);
    if (!pi.has_value() || !qi.has_value()) continue;
    SnapshotVerdict v;
    v.p_index = *pi;
    v.q_index = *qi;
    v.mode_tag = static_cast<uint8_t>(key.mode);
    v.bound_tag = static_cast<uint8_t>(key.bound);
    v.contained = entry.contained;
    v.algorithm_tag = static_cast<uint8_t>(entry.algorithm);
    if (!entry.contained && entry.counterexample_lengths.has_value()) {
      std::vector<int32_t> lengths = *entry.counterexample_lengths;
      const Tpq& pm = pattern_of.at(key.p_hash);
      lengths.resize(DescendantEdges(pm).size(), 1);
      // Materialize the counterexample canonical tree so a warm start can
      // validate the refutation zero-copy against the mapped columns.
      Tree t = CanonicalTree(pm, lengths, bottom);
      if (std::optional<uint32_t> ti = writer.AddTree(t)) {
        v.tree_index = static_cast<int32_t>(*ti);
      }
      v.witness = std::move(lengths);
    }
    writer.AddVerdict(v);  // a refused entry is simply absent from the file
  }

  if (programs_ != nullptr) {
    for (const ProgramKey& pk : programs_->HotKeys()) {
      if (pk.pool_generation != generation) continue;
      const std::optional<uint32_t> idx = index_of(pk.pattern_hash);
      if (!idx.has_value()) continue;
      writer.AddHotProgram(SnapshotHotProgram{*idx, pk.mode_tag});
    }
  }
  return writer.WriteTo(path, error);
}

bool QueryService::LoadSnapshot(const std::string& path, std::string* error) {
  if (!options_.use_cache || lattice_ == nullptr) {
    if (error != nullptr) *error = "snapshot: load requires the cache layer";
    return false;
  }
  auto reader = std::make_unique<SnapshotReader>();
  if (!reader->Open(path, &ctx_->budget(), error)) return false;
  EngineStats& stats = ctx_->stats();
  const uint64_t generation = pool_->generation();

  // Intern the snapshot's spellings into the live pool.  When the live ids
  // come out identical (the fresh-pool warm-start case), the mapped trees'
  // label columns are valid against the live pool and can serve zero-copy.
  std::vector<LabelId> remap(reader->label_count());
  bool identity = true;
  for (uint32_t i = 0; i < reader->label_count(); ++i) {
    remap[i] = pool_->Intern(reader->LabelAt(i));
    identity = identity && remap[i] == i;
  }

  struct LoadedPattern {
    Tpq tpq;
    TpqDigest digest;
    bool ok = false;
  };
  std::vector<LoadedPattern> pats(reader->pattern_count());
  for (uint32_t i = 0; i < reader->pattern_count(); ++i) {
    if (!ctx_->budget().Charge(1)) {
      if (error != nullptr) *error = "snapshot: load aborted (budget)";
      return false;
    }
    const SnapshotReader::PatternRecord& rec = reader->PatternAt(i);
    // The wide-digest equality re-check: recompute both 64-bit lanes in the
    // file's own id space and compare with the stored digest, so a record
    // whose structure silently drifted from its digest never seeds a key.
    if (!VerifySnapshotPatternDigest(rec)) continue;
    std::optional<Tpq> q = BuildSnapshotTpq(rec, remap);
    if (!q.has_value()) continue;
    pats[i].tpq = std::move(*q);
    pats[i].digest = CanonicalTpqDigest(pats[i].tpq);
    pats[i].ok = true;
  }

  // Stage every accepted verdict first, commit only after all charged loops
  // pass: a budget abort anywhere in the scan must leave the service exactly
  // as cold as before — never with a partially seeded cache or lattice.
  struct StagedVerdict {
    VerdictKey key;
    VerdictEntry entry;
    uint32_t p_index = 0;
    uint32_t q_index = 0;
    int32_t tree_index = -1;
  };
  std::vector<StagedVerdict> staged;
  for (uint32_t i = 0; i < reader->verdict_count(); ++i) {
    if (!ctx_->budget().Charge(1)) {
      if (error != nullptr) *error = "snapshot: load aborted (budget)";
      return false;
    }
    const SnapshotReader::VerdictRecord& rec = reader->VerdictAt(i);
    if (rec.mode_tag > 1 || rec.bound_tag > 1 ||
        rec.algorithm_tag >= kNumDispatchAlgorithms) {
      continue;
    }
    const LoadedPattern& pl = pats[rec.p_index];
    const LoadedPattern& ql = pats[rec.q_index];
    if (!pl.ok || !ql.ok) continue;
    const Mode mode = static_cast<Mode>(rec.mode_tag);
    const auto bound = static_cast<ContainmentOptions::Bound>(rec.bound_tag);
    StagedVerdict sv;
    sv.key = VerdictKey{pl.digest.lo, ql.digest.lo, mode, bound, generation};
    sv.p_index = rec.p_index;
    sv.q_index = rec.q_index;
    sv.entry.contained = rec.contained;
    sv.entry.algorithm = static_cast<ContainmentAlgorithm>(rec.algorithm_tag);
    if (!rec.contained && rec.witness_len > 0) {
      std::vector<int32_t> lengths(rec.witness,
                                   rec.witness + rec.witness_len);
      bool sane = true;
      for (int32_t len : lengths) sane = sane && len >= 0;
      if (sane) sv.entry.counterexample_lengths = std::move(lengths);
    }
    if (sv.entry.counterexample_lengths.has_value() && rec.tree_index >= 0 &&
        identity) {
      sv.tree_index = rec.tree_index;
    }
    staged.push_back(std::move(sv));
  }

  // Commit phase: no budget charges from here on, so the adoption below is
  // all-or-nothing with respect to injected faults.  (Individual Put/Record
  // refusals under byte pressure still just drop that entry — the usual
  // accelerator semantics, not a partial-file hazard.)
  std::unordered_map<VerdictKey, uint32_t, VerdictKeyHash> mapped;
  for (StagedVerdict& sv : staged) {
    const LoadedPattern& pl = pats[sv.p_index];
    const LoadedPattern& ql = pats[sv.q_index];
    const Mode mode = sv.key.mode;
    if (sv.entry.counterexample_lengths.has_value()) {
      RecordProbe(ProbeKey{ql.digest.lo, mode},
                  *sv.entry.counterexample_lengths);
      if (sv.tree_index >= 0) {
        mapped.emplace(sv.key, static_cast<uint32_t>(sv.tree_index));
      }
    }
    lattice_->Record(pl.tpq, pl.digest, ql.tpq, ql.digest, mode, sv.key.bound,
                     generation, sv.entry.contained,
                     sv.entry.counterexample_lengths.has_value()
                         ? &*sv.entry.counterexample_lengths
                         : nullptr);
    SeedMinimized(pl.tpq, pl.digest, mode);
    SeedMinimized(ql.tpq, ql.digest, mode);
    stats.cache_evictions.fetch_add(cache_.Put(sv.key, std::move(sv.entry)),
                                    std::memory_order_relaxed);
  }

  if (programs_ != nullptr) {
    for (uint32_t i = 0; i < reader->hot_program_count(); ++i) {
      const SnapshotHotProgram& rec = reader->HotProgramAt(i);
      const LoadedPattern& pl = pats[rec.pattern_index];
      if (!pl.ok || rec.mode_tag > 1) continue;
      programs_->Warm(ProgramKey{pl.digest.lo, generation, rec.mode_tag});
    }
  }

  // Adopt the mapping last: the fast path only ever sees a fully-loaded
  // snapshot, and an aborted load above leaves the service merely cold.
  mapped_snapshot_ = std::move(reader);
  mapped_trees_ = std::move(mapped);
  return true;
}

}  // namespace tpc
