// A transitivity-aware subsumption lattice over cached minimized patterns.
//
// Containment is a preorder: p ⊑ r and r ⊑ q imply p ⊑ q.  The verdict
// cache (service/verdict_cache.h) memoizes *pairs*, so a workload that has
// decided p ⊑ r and r ⊑ q still pays the full (coNP in general) procedure
// for p ⊑ q.  The lattice closes that gap: it is a small DAG whose nodes
// are the minimized patterns the service has seen — keyed by their 128-bit
// canonical digest (pattern/tpq_hash.h) — and whose edges are the cached
// "contained" verdicts, kept per (mode, bound).  On a verdict-cache miss
// the service asks two questions before running any decision procedure:
//
//   * *Stitch*: is q reachable from p along contained edges?  A bounded
//     BFS; a path proves p ⊑ q by transitivity.  Soundness needs every
//     edge to be a *validated* containment under the same (mode, bound) —
//     which it is, because edges are only recorded from decided verdicts —
//     and stitching only ever walks edges *forward* (p ⊑ r then r ⊑ q).
//     Walking an edge backwards, or mixing modes, proves nothing, so the
//     adjacency is directed and combo-keyed.
//   * *Borrow*: did a refutation against a neighbour leave a witness that
//     transfers?  Candidate counterexample length vectors are nominated
//     from refutations that shared either endpoint (witnesses where this p
//     already escaped some other q, and witnesses some other p used to
//     escape this q).  Each candidate is *replayed* through
//     `ReplayRefutation` — the canonical tree it induces on the live p is
//     rebuilt and q is matched against it — so a borrowed witness can
//     refute only by exhibiting an actual tree in L(p) \ L(q).  Hash or
//     digest collisions can therefore never fake a refutation; a borrowed
//     vector that does not transfer is simply discarded.
//
// The lattice is byte-bounded with LRU eviction (nodes plus their incident
// edges and stored witnesses), soft-charged against the context budget like
// every accelerator tier.  It also doubles as the service's pattern
// registry for snapshot persistence: it is the one place that can map a
// cached verdict's 64-bit key hash back to the minimized `Tpq` that must be
// serialized (src/persist/snapshot.h).

#ifndef TPC_SERVICE_VERDICT_LATTICE_H_
#define TPC_SERVICE_VERDICT_LATTICE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "contain/containment.h"
#include "engine/tracked.h"
#include "pattern/tpq.h"
#include "pattern/tpq_hash.h"

namespace tpc {

class VerdictLattice {
 public:
  /// `budget` may be null.  `max_bytes` bounds nodes + edges + witnesses.
  VerdictLattice(int64_t max_bytes, Budget* budget);

  /// Records a decided verdict for minimized `p` ⊑ `q`: registers both
  /// patterns (copying them — the lattice outlives the per-request
  /// minimization entries), adds the contained edge or stores the
  /// refutation witness on both endpoints.  Charge refusals drop the
  /// recording silently (the lattice is an accelerator).
  ///
  /// `generation` is the label-pool generation the digests were computed
  /// under (base/label.h): digests are relative to a pool's id assignment,
  /// so when the generation moves the whole lattice is cleared before the
  /// new verdict is recorded — stale edges must never certify a stitch for
  /// numerically identical ids of a *different* pool.
  void Record(const Tpq& p, const TpqDigest& pd, const Tpq& q,
              const TpqDigest& qd, Mode mode, ContainmentOptions::Bound bound,
              uint64_t generation, bool contained,
              const std::vector<int32_t>* witness);

  /// True iff q's node is reachable from p's along contained edges of the
  /// same (mode, bound) — a transitivity proof of p ⊑ q.  The BFS visits at
  /// most `kStitchVisitLimit` nodes and charges one budget step per
  /// expansion, so cancellation or step exhaustion degrades to "no" (the
  /// caller then runs the direct route, which observes the exhaustion).
  /// Answers "no" outright when `generation` differs from the recorded one.
  bool Stitch(const TpqDigest& pd, const TpqDigest& qd, Mode mode,
              ContainmentOptions::Bound bound, uint64_t generation,
              Budget* budget);

  /// Candidate counterexample length vectors for refuting p ⊑ q, nominated
  /// from same-endpoint refutations (deduplicated, at most `limit`).  The
  /// caller MUST replay each through `ReplayRefutation` before believing it.
  /// Empty when `generation` differs from the recorded one.
  std::vector<std::vector<int32_t>> BorrowCandidates(
      const TpqDigest& pd, const TpqDigest& qd, Mode mode,
      ContainmentOptions::Bound bound, uint64_t generation,
      size_t limit) const;

  /// The minimized pattern whose 64-bit canonical hash (digest lo lane) is
  /// `hash`, for snapshot persistence.  nullopt when the hash is unknown or
  /// *ambiguous* (two resident nodes share the lo lane — the entry is then
  /// skipped rather than persisted under the wrong pattern), or when
  /// `generation` differs from the recorded one.
  std::optional<std::pair<Tpq, TpqDigest>> FindByHash(uint64_t hash,
                                                      uint64_t generation) const;

  /// Visits every resident pattern (persistence iteration; `fn` must not
  /// re-enter the lattice).
  void ForEachNode(
      const std::function<void(const Tpq&, const TpqDigest&)>& fn) const;

  size_t node_count() const;

  static constexpr size_t kStitchVisitLimit = 64;
  /// Per-endpoint, per-combo cap on stored refutation witnesses.
  static constexpr size_t kWitnessLimit = 4;

 private:
  /// (mode, bound) folded into one adjacency tag; edges never mix combos.
  static uint8_t Combo(Mode mode, ContainmentOptions::Bound bound) {
    return static_cast<uint8_t>((static_cast<uint8_t>(mode) << 1) |
                                static_cast<uint8_t>(bound));
  }

  struct Witness {
    uint8_t combo = 0;
    std::vector<int32_t> lengths;
  };
  struct Node {
    Tpq pattern;
    TpqDigest digest;
    int64_t bytes = 0;                              // node's own charge
    std::vector<std::pair<uint8_t, uint32_t>> succ;  // contained: this ⊑ succ
    std::vector<std::pair<uint8_t, uint32_t>> pred;  // mirror, for eviction
    std::vector<Witness> wit_as_p;  // refuted (this ⊑ x) length vectors
    std::vector<Witness> wit_as_q;  // refuted (x ⊑ this) length vectors
    std::list<uint32_t>::iterator lru_it;
    bool alive = false;
  };

  /// Registers (or touches) the node for `pattern`; returns its index or -1
  /// on charge refusal.  Caller holds `mu_`.
  int32_t InternLocked(const Tpq& pattern, const TpqDigest& digest);
  void EvictLocked();
  void RemoveNodeLocked(uint32_t idx);
  bool AddWitnessLocked(std::vector<Witness>* store, uint8_t combo,
                        const std::vector<int32_t>& lengths);

  static constexpr int64_t kEdgeBytes = 48;

  mutable std::mutex mu_;
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_;
  std::unordered_map<TpqDigest, uint32_t, TpqDigestHash> index_;
  /// lo-lane hash -> node index, or -1 once two resident digests collide on
  /// the lane (conservative: stays ambiguous until both nodes die).
  std::unordered_map<uint64_t, int32_t> by_hash_;
  std::list<uint32_t> lru_;  // front = most recently touched
  int64_t bytes_ = 0;
  /// Label-pool generation of every resident digest (one fence for the whole
  /// lattice: `Record` under a newer generation clears it first).
  uint64_t generation_ = 0;
  const int64_t max_bytes_;
  TrackedBytes tracked_;
};

}  // namespace tpc

#endif  // TPC_SERVICE_VERDICT_LATTICE_H_
