#include "service/verdict_lattice.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

namespace tpc {
namespace {

int64_t NodeBytes(const Tpq& pattern) {
  return 160 + static_cast<int64_t>(pattern.size()) * 32;
}

int64_t WitnessBytes(const std::vector<int32_t>& lengths) {
  return 64 + static_cast<int64_t>(lengths.size()) * sizeof(int32_t);
}

}  // namespace

VerdictLattice::VerdictLattice(int64_t max_bytes, Budget* budget)
    : max_bytes_(max_bytes) {
  tracked_.Attach(budget);
}

int32_t VerdictLattice::InternLocked(const Tpq& pattern,
                                     const TpqDigest& digest) {
  auto it = index_.find(digest);
  if (it != index_.end()) {
    Node& node = nodes_[it->second];
    lru_.splice(lru_.begin(), lru_, node.lru_it);
    return static_cast<int32_t>(it->second);
  }
  const int64_t bytes = NodeBytes(pattern);
  if (!tracked_.TryCharge(bytes)) return -1;
  uint32_t idx;
  if (!free_.empty()) {
    idx = free_.back();
    free_.pop_back();
  } else {
    idx = static_cast<uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[idx];
  node.pattern = pattern;
  node.digest = digest;
  node.bytes = bytes;
  node.alive = true;
  lru_.push_front(idx);
  node.lru_it = lru_.begin();
  index_.emplace(digest, idx);
  auto [hit, inserted] = by_hash_.emplace(digest.lo, static_cast<int32_t>(idx));
  if (!inserted && hit->second != static_cast<int32_t>(idx)) hit->second = -1;
  bytes_ += bytes;
  EvictLocked();
  // Eviction never removes the two most recent nodes, so `idx` survives.
  return static_cast<int32_t>(idx);
}

void VerdictLattice::RemoveNodeLocked(uint32_t idx) {
  Node& node = nodes_[idx];
  int64_t released = node.bytes;
  // Detach incident edges.  Outgoing edges are charged to this node's
  // ledger; incoming ones to their origin's — release both here, since both
  // disappear with this node.
  for (const auto& [combo, to] : node.succ) {
    auto& pred = nodes_[to].pred;
    pred.erase(std::remove(pred.begin(), pred.end(),
                           std::make_pair(combo, idx)),
               pred.end());
    released += kEdgeBytes;
  }
  for (const auto& [combo, from] : node.pred) {
    auto& succ = nodes_[from].succ;
    succ.erase(std::remove(succ.begin(), succ.end(),
                           std::make_pair(combo, idx)),
               succ.end());
    released += kEdgeBytes;
  }
  for (const Witness& w : node.wit_as_p) released += WitnessBytes(w.lengths);
  for (const Witness& w : node.wit_as_q) released += WitnessBytes(w.lengths);
  index_.erase(node.digest);
  auto hit = by_hash_.find(node.digest.lo);
  if (hit != by_hash_.end() && hit->second == static_cast<int32_t>(idx)) {
    by_hash_.erase(hit);
  }
  lru_.erase(node.lru_it);
  node = Node{};
  free_.push_back(idx);
  bytes_ -= released;
  tracked_.Release(released);
}

void VerdictLattice::EvictLocked() {
  while (bytes_ > max_bytes_ && lru_.size() > 2) {
    RemoveNodeLocked(lru_.back());
  }
}

bool VerdictLattice::AddWitnessLocked(std::vector<Witness>* store,
                                      uint8_t combo,
                                      const std::vector<int32_t>& lengths) {
  size_t same_combo = 0;
  for (const Witness& w : *store) {
    if (w.combo != combo) continue;
    if (w.lengths == lengths) return false;
    ++same_combo;
  }
  const int64_t bytes = WitnessBytes(lengths);
  if (!tracked_.TryCharge(bytes)) return false;
  if (same_combo >= kWitnessLimit) {
    // Drop the oldest witness of this combo to make room.
    for (auto it = store->begin(); it != store->end(); ++it) {
      if (it->combo == combo) {
        const int64_t old = WitnessBytes(it->lengths);
        store->erase(it);
        bytes_ -= old;
        tracked_.Release(old);
        break;
      }
    }
  }
  store->push_back(Witness{combo, lengths});
  bytes_ += bytes;
  return true;
}

void VerdictLattice::Record(const Tpq& p, const TpqDigest& pd, const Tpq& q,
                            const TpqDigest& qd, Mode mode,
                            ContainmentOptions::Bound bound,
                            uint64_t generation, bool contained,
                            const std::vector<int32_t>* witness) {
  const uint8_t combo = Combo(mode, bound);
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) {
    // The pool moved under us: every resident digest is relative to a dead
    // id assignment.  Drop them all before recording the first verdict of
    // the new generation.
    while (!lru_.empty()) RemoveNodeLocked(lru_.back());
    generation_ = generation;
  }
  const int32_t pi = InternLocked(p, pd);
  if (pi < 0) return;
  const int32_t qi = InternLocked(q, qd);
  if (qi < 0) return;
  Node& pn = nodes_[static_cast<uint32_t>(pi)];
  Node& qn = nodes_[static_cast<uint32_t>(qi)];
  if (contained) {
    if (pi == qi) return;  // p ⊑ p is vacuous, no self-loops
    const auto edge = std::make_pair(combo, static_cast<uint32_t>(qi));
    if (std::find(pn.succ.begin(), pn.succ.end(), edge) != pn.succ.end()) {
      return;
    }
    if (!tracked_.TryCharge(kEdgeBytes)) return;
    pn.succ.push_back(edge);
    qn.pred.emplace_back(combo, static_cast<uint32_t>(pi));
    bytes_ += kEdgeBytes;
    EvictLocked();
    return;
  }
  if (witness == nullptr || witness->empty()) return;
  AddWitnessLocked(&pn.wit_as_p, combo, *witness);
  AddWitnessLocked(&qn.wit_as_q, combo, *witness);
  EvictLocked();
}

bool VerdictLattice::Stitch(const TpqDigest& pd, const TpqDigest& qd,
                            Mode mode, ContainmentOptions::Bound bound,
                            uint64_t generation, Budget* budget) {
  const uint8_t combo = Combo(mode, bound);
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) return false;
  auto ps = index_.find(pd);
  auto qs = index_.find(qd);
  if (ps == index_.end() || qs == index_.end()) return false;
  const uint32_t target = qs->second;
  if (ps->second == target) return false;  // equal digests never cache-miss
  std::unordered_set<uint32_t> visited{ps->second};
  std::deque<uint32_t> frontier{ps->second};
  while (!frontier.empty()) {
    // One budget step per expansion: a cancellation or step fault lands
    // here and aborts the walk — the caller falls back to the direct route.
    if (budget != nullptr && !budget->Charge(1)) return false;
    const uint32_t at = frontier.front();
    frontier.pop_front();
    for (const auto& [ec, to] : nodes_[at].succ) {
      if (ec != combo) continue;
      if (to == target) return true;
      if (visited.size() >= kStitchVisitLimit) continue;
      if (visited.insert(to).second) frontier.push_back(to);
    }
  }
  return false;
}

std::vector<std::vector<int32_t>> VerdictLattice::BorrowCandidates(
    const TpqDigest& pd, const TpqDigest& qd, Mode mode,
    ContainmentOptions::Bound bound, uint64_t generation,
    size_t limit) const {
  const uint8_t combo = Combo(mode, bound);
  std::vector<std::vector<int32_t>> out;
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) return out;
  auto add_from = [&](const std::vector<Witness>& store) {
    for (const Witness& w : store) {
      if (w.combo != combo || out.size() >= limit) continue;
      if (std::find(out.begin(), out.end(), w.lengths) == out.end()) {
        out.push_back(w.lengths);
      }
    }
  };
  // Same-p witnesses first: they are length vectors of canonical trees that
  // already escaped some q', so they replay on this p without adaptation.
  if (auto it = index_.find(pd); it != index_.end()) {
    add_from(nodes_[it->second].wit_as_p);
  }
  if (auto it = index_.find(qd); it != index_.end()) {
    add_from(nodes_[it->second].wit_as_q);
  }
  return out;
}

std::optional<std::pair<Tpq, TpqDigest>> VerdictLattice::FindByHash(
    uint64_t hash, uint64_t generation) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (generation != generation_) return std::nullopt;
  auto it = by_hash_.find(hash);
  if (it == by_hash_.end() || it->second < 0) return std::nullopt;
  const Node& node = nodes_[static_cast<uint32_t>(it->second)];
  return std::make_pair(node.pattern, node.digest);
}

void VerdictLattice::ForEachNode(
    const std::function<void(const Tpq&, const TpqDigest&)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const uint32_t idx : lru_) {
    const Node& node = nodes_[idx];
    if (node.alive) fn(node.pattern, node.digest);
  }
}

size_t VerdictLattice::node_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

}  // namespace tpc
