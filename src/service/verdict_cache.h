// Verdict cache for the query service: canonical-hash keys, cached
// containment verdicts, and sound replay of cached refutation witnesses.
//
// A cache entry is keyed on the canonical hashes of the *minimized*
// patterns (pattern/tpq_hash.h over contain/minimize.h output) plus the
// mode and the canonical-model bound, so syntactically different but
// equivalent-after-minimization queries share one entry.  Hash keys can
// collide, so trust is asymmetric (see DESIGN.md, "Query service fast
// path"):
//
//   * "not contained" entries carry the counterexample length vector and
//     are *replayed* before being believed: the canonical tree those
//     lengths induce on the actual minimized p is rebuilt and q is checked
//     against it.  A successful replay is a proof — canonical trees of p
//     are in both L_w(p) and L_s(p), so a q-mismatch refutes containment
//     regardless of any hash collision.  A failed replay falls back to the
//     full decision procedure.
//   * "contained" entries (and the rare witness-less refutations from the
//     recursive P routes) have no replayable certificate and are trusted on
//     the 128 bits of combined key hash.
//
// Entries produced under an exhausted budget are never stored: a partial
// sweep's verdict is meaningless and must not be served to later requests.

#ifndef TPC_SERVICE_VERDICT_CACHE_H_
#define TPC_SERVICE_VERDICT_CACHE_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "pattern/tpq.h"
#include "service/sharded_cache.h"

namespace tpc {

/// Cache key: canonical hashes of the minimized pair + decision parameters
/// that change the answer surface (mode) or the procedure (bound) + the
/// label-pool generation (base/label.h) the hashes were computed under.
/// Canonical hashes are relative to a pool's id assignment, so without the
/// generation an entry could be served for numerically identical ids of a
/// *different* pool (e.g. after a workload move-assigns a fresh pool).
struct VerdictKey {
  uint64_t p_hash = 0;
  uint64_t q_hash = 0;
  Mode mode = Mode::kWeak;
  ContainmentOptions::Bound bound = ContainmentOptions::Bound::kSafe;
  uint64_t pool_generation = 0;

  bool operator==(const VerdictKey& other) const {
    return p_hash == other.p_hash && q_hash == other.q_hash &&
           mode == other.mode && bound == other.bound &&
           pool_generation == other.pool_generation;
  }
};

struct VerdictKeyHash {
  size_t operator()(const VerdictKey& k) const {
    uint64_t h = k.p_hash * 0x9e3779b97f4a7c15ULL;
    h ^= k.q_hash + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    h ^= (static_cast<uint64_t>(k.mode) << 1) ^
         static_cast<uint64_t>(k.bound);
    h ^= k.pool_generation * 0xd6e8feb86659fd93ULL;
    return static_cast<size_t>(h * 0xbf58476d1ce4e5b9ULL);
  }
};

/// Cached outcome of a decided containment call.
struct VerdictEntry {
  bool contained = false;
  ContainmentAlgorithm algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
  /// Counterexample certificate (spine chain lengths) when the refuting
  /// procedure produced one; refutations without it are served uncertified.
  std::optional<std::vector<int32_t>> counterexample_lengths;
};

/// Approximate resident bytes of an entry (for the cache's byte bound).
int64_t VerdictEntryCost(const VerdictKey& key, const VerdictEntry& entry);

using VerdictLruCache =
    ShardedLruCache<VerdictKey, VerdictEntry, VerdictKeyHash>;

/// Replays a cached refutation against the *actual* minimized pair: builds
/// the canonical tree of `p` induced by `lengths` (adapted to p's descendant
/// edge count — padding with chains of length 1 — so even a collided entry
/// yields a well-formed probe) and returns the rebuilt tree when `q` does
/// not match it under `mode` — a sound counterexample.  Returns nullopt when
/// q matches (the cached witness does not transfer; decide from scratch).
/// Charges the tree and matcher table costs to `ctx`; nullopt on budget
/// refusal too (check `ctx->budget().Exhausted()`).
std::optional<Tree> ReplayRefutation(const Tpq& p, const Tpq& q, Mode mode,
                                     std::vector<int32_t> lengths,
                                     LabelPool* pool, EngineContext* ctx);

}  // namespace tpc

#endif  // TPC_SERVICE_VERDICT_CACHE_H_
