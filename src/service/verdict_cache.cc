#include "service/verdict_cache.h"

#include <utility>

#include "match/embedding.h"
#include "pattern/canonical.h"
#include "pattern/normalize.h"

namespace tpc {

int64_t VerdictEntryCost(const VerdictKey& key, const VerdictEntry& entry) {
  int64_t bytes = static_cast<int64_t>(sizeof(VerdictKey)) +
                  static_cast<int64_t>(sizeof(VerdictEntry)) +
                  // LRU node + index slot overhead, flat-rate estimate.
                  96;
  if (entry.counterexample_lengths.has_value()) {
    bytes += static_cast<int64_t>(entry.counterexample_lengths->capacity()) *
             static_cast<int64_t>(sizeof(int32_t));
  }
  return bytes;
}

std::optional<Tree> ReplayRefutation(const Tpq& p, const Tpq& q, Mode mode,
                                     std::vector<int32_t> lengths,
                                     LabelPool* pool, EngineContext* ctx) {
  // Adapt the certificate to the actual pattern: under a key collision the
  // cached vector may have the wrong arity, and *any* canonical tree of p
  // that q fails to match is a sound refutation, so padding with 1 (a one-⊥
  // chain) keeps the probe well-formed instead of rejecting it.
  lengths.resize(DescendantEdges(p).size(), 1);
  Tree t = CanonicalTree(p, lengths, pool->Fresh("_bot"));
  ctx->stats().canonical_trees_enumerated.fetch_add(1,
                                                    std::memory_order_relaxed);
  Tpq qn = Normalize(q);
  if (!ctx->budget().Charge(1 + static_cast<int64_t>(qn.size()) * t.size())) {
    return std::nullopt;
  }
  auto ws = ctx->scratch().Acquire<MatcherWorkspace>();
  if (!ws->ChargeTables(qn, t, &ctx->budget())) return std::nullopt;
  ws->EvalFull(qn, t, &ctx->stats());
  const bool matches =
      mode == Mode::kStrong ? ws->MatchesStrong() : ws->MatchesWeak();
  if (matches) return std::nullopt;
  // t is a canonical tree of p, hence in both L_w(p) and L_s(p); q failing
  // to match it under `mode` makes t a counterexample no collision can fake.
  return t;
}

}  // namespace tpc
