// The query-service fast path: a workload-level accelerator in front of the
// containment dispatcher (contain/containment.h).
//
// Real containment workloads repeat themselves — the same handful of
// patterns arrive again and again, syntactically varied — while the
// dispatcher prices every call as if it were novel (the general route is
// coNP).  The service exploits the repetition in five layers, each of which
// can be switched off for A/B runs:
//
//   1. *Canonical hashing* (pattern/tpq_hash.h): both patterns are
//      minimized (contain/minimize.h, memoized per raw hash) and hashed
//      bottom-up with sorted child digests, so child-order permutations and
//      redundant-subtree variants of one query collide on purpose.
//   2. *Verdict cache* (service/verdict_cache.h): a sharded, byte-bounded
//      LRU from (p_hash, q_hash, mode, bound) to the verdict plus the
//      counterexample length certificate.  Refutation hits are replayed
//      against the actual pair before being served; results computed under
//      an exhausted budget are never stored.
//   3. *Prefilter cascade*: a homomorphism q → p accepts containment early
//      (sound in every fragment, Miklau & Suciu), and a small set of probe
//      canonical models — the minimal tree, the all-ones tree, and
//      previously successful counterexample vectors pooled per q-hash —
//      refutes early, both long before the exponential sweep.
//   4. *Batching*: `ContainsBatch` folds exact duplicates (one decision
//      serves all copies) and fans the residue out over the context's
//      thread pool, with each worker forced onto sequential sweeps
//      (`ContainmentOptions::sequential_sweep`) because `ParallelFor` does
//      not reenter.  Pairs that survive every fast-path layer are then
//      *grouped* by (enumeration-side pattern, mode) and decided through
//      `tpc::ContainsGroup`, which enumerates the shared pattern's
//      canonical models once for the whole group
//      (`ContainmentOptions::grouped_sweep`; `ContainsGroupFor` is the
//      daemon-side entry for its coalescing window).
//   5. *Pattern compilation* (src/compile/): hot minimized patterns are
//      lowered to flat matcher programs pooled beside the verdict cache and
//      shared with the dispatcher (`ContainmentOptions::program_cache`), so
//      probes and sweeps on repeated patterns skip the generic DP fill.
//
// Every accepted/refuted/cached shortcut is sound — DESIGN.md ("Query
// service fast path") gives the argument per layer — so verdicts are
// identical to the uncached dispatcher's on decided instances.

#ifndef TPC_SERVICE_QUERY_SERVICE_H_
#define TPC_SERVICE_QUERY_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "base/label.h"
#include "compile/program_cache.h"
#include "contain/containment.h"
#include "engine/engine.h"
#include "pattern/tpq.h"
#include "pattern/tpq_hash.h"
#include "persist/snapshot.h"
#include "service/verdict_cache.h"
#include "service/verdict_lattice.h"

namespace tpc {

/// Construction-time knobs of a `QueryService`.
struct ServiceOptions {
  /// Minimize + hash + verdict-cache layer (switch off for A/B runs; also
  /// skips minimization, so cold numbers stay honest).
  bool use_cache = true;
  /// Homomorphism-accept and probe-refute layer.
  bool use_prefilters = true;
  /// Subsumption-lattice layer (service/verdict_lattice.h): answer cache
  /// misses by stitching cached contained edges (transitivity) or by
  /// replaying a neighbour's borrowed counterexample witness.  Off for A/B
  /// runs (`tpc_cli --no-lattice`); recording continues either way so the
  /// pattern registry stays complete for snapshot persistence.
  bool use_lattice = true;
  /// Byte bound of the lattice (nodes + edges + stored witnesses).
  int64_t lattice_bytes = 1 << 20;
  /// Shards of the verdict cache (contention knob, not capacity).
  size_t cache_shards = 8;
  /// Byte bound of the verdict cache, accounted against the context budget.
  int64_t cache_bytes = 4 << 20;
  /// Max remembered counterexample length vectors per (q-hash, mode).
  size_t probe_pool_limit = 4;
  /// Byte bound of the compiled-program pool (src/compile/), which sits
  /// beside the verdict cache and serves the dispatcher's sweeps, the
  /// single-tree routes and the probe cascade.  Only built when
  /// `containment.compiled_matcher` is on.
  int64_t program_cache_bytes = 1 << 20;
  /// Options forwarded to the underlying dispatcher (bound is part of the
  /// cache key).
  ContainmentOptions containment;
};

/// A long-lived containment front end over one `LabelPool` + `EngineContext`
/// pair.  Thread-compatible from outside (callers serialize `Contains` /
/// `ContainsBatch` per service); internally `ContainsBatch` runs its own
/// workers, and all shared state (cache, memo, probe book, label pool) is
/// synchronized for them.  `ContainsFor` — the serve daemon's entry point —
/// may additionally be called concurrently from many threads, each with its
/// own per-request context, relying on exactly that synchronization.
/// Save/LoadSnapshot still serialize against everything.
class QueryService {
 public:
  QueryService(LabelPool* pool, EngineContext* ctx,
               const ServiceOptions& options = {});

  struct BatchItem {
    Tpq p;
    Tpq q;
    Mode mode = Mode::kWeak;
  };

  /// Decides L(p) ⊆ L(q) through the fast path.  Verdict-equivalent to
  /// `tpc::Contains(p, q, mode, pool, ctx, options.containment)` whenever
  /// that call decides.
  ContainmentResult Contains(const Tpq& p, const Tpq& q, Mode mode);

  /// `Contains` under a caller-provided per-request context: the decision's
  /// budget, stats and scratch come from `request_ctx` while the shared
  /// accelerator state (verdict cache, lattice, minimize memo, probe book,
  /// program pool) stays owned by — and byte-charged to — the service's own
  /// context.  This is the serve daemon's entry point: each worker owns one
  /// context, arms it with the tenant's quota, and calls here concurrently
  /// with the other workers (the shared layers are synchronized; sweeps are
  /// forced sequential, so a single-threaded `request_ctx` is the intended
  /// shape).  Do not pass the service's own context from two threads.
  ContainmentResult ContainsFor(const Tpq& p, const Tpq& q, Mode mode,
                                EngineContext* request_ctx);

  /// One member of a `ContainsGroupFor` call: a pair plus the per-request
  /// context carrying its (already armed) budget.  `p`/`q` must stay alive
  /// for the duration of the call.
  struct GroupQuery {
    const Tpq* p = nullptr;
    const Tpq* q = nullptr;
    Mode mode = Mode::kWeak;
    EngineContext* ctx = nullptr;
  };

  /// `ContainsFor` over a coalesced group (the daemon's scheduler window).
  /// Every member runs the full per-pair fast path on its own context;
  /// members that all layers fail to answer are then grouped by
  /// (enumeration-side pattern, mode) and decided through
  /// `tpc::ContainsGroup` — one canonical-model enumeration for the whole
  /// group, with per-member budget charges, exhaustion attribution,
  /// witnesses and cache/lattice insertion exactly as if decided alone.
  /// Results are indexed like `queries`.  Callable concurrently from many
  /// worker threads under the same contract as `ContainsFor`.
  std::vector<ContainmentResult> ContainsGroupFor(
      const std::vector<GroupQuery>& queries);

  /// Decides every item: folds exact duplicates (counted in
  /// `EngineStats::batch_deduped`) and fans unique items out over the
  /// context's thread pool when `ctx->threads() > 1`.  Results are in item
  /// order; duplicates share the representative's verdict (and a copy of
  /// its counterexample).
  std::vector<ContainmentResult> ContainsBatch(
      const std::vector<BatchItem>& items);

  /// Persists the warm tier — verdict cache, minimized-pattern pool,
  /// refutation counterexample trees, hot program keys — to `path`
  /// (atomically; src/persist/snapshot.h).  Requires the cache layer.
  /// False with `*error` on refusal or I/O failure; an aborted save never
  /// leaves a partial file behind.  Serialize with Contains/ContainsBatch.
  bool SaveSnapshot(const std::string& path, std::string* error);

  /// Warm-starts from `path`: maps the snapshot, re-fences every entry on
  /// the live pool generation and recomputed 128-bit digests, seeds the
  /// verdict cache, lattice, probe book, minimize memo and program-pool
  /// hotness, and keeps the mapping alive so cached refutations can be
  /// validated zero-copy against the mapped counterexample trees.  False
  /// with `*error` on a corrupt/truncated/version-skewed file (the service
  /// then simply stays cold).  Serialize with Contains/ContainsBatch.
  bool LoadSnapshot(const std::string& path, std::string* error);

  const ServiceOptions& options() const { return options_; }
  EngineContext* context() { return ctx_; }

 private:
  struct MinimizedEntry {
    Tpq pattern;
    uint64_t hash = 0;   // canonical hash of `pattern` (== digest.lo)
    TpqDigest digest;    // wide digest of `pattern` (lattice/snapshot key)
  };
  struct ProbeKey {
    uint64_t q_hash = 0;
    Mode mode = Mode::kWeak;
    bool operator==(const ProbeKey& o) const {
      return q_hash == o.q_hash && mode == o.mode;
    }
  };
  struct ProbeKeyHash {
    size_t operator()(const ProbeKey& k) const {
      return static_cast<size_t>(
          (k.q_hash ^ (static_cast<uint64_t>(k.mode) << 63)) *
          0x9e3779b97f4a7c15ULL);
    }
  };

  /// Minimizes `pattern` under `mode` and hashes the result, memoized on
  /// the raw canonical hash.  Budget-exhausted minimizations are returned
  /// (still equivalent — see MinimizeTpq) but not memoized.  The work is
  /// charged to `ctx` (the per-request context); the memo bytes stay on the
  /// service budget.
  std::shared_ptr<const MinimizedEntry> Minimized(
      const Tpq& pattern, Mode mode, const ContainmentOptions& options,
      EngineContext* ctx);

  /// A pair the fast path could not answer, captured so the batch/group
  /// layers can decide it together with others sharing its enumeration-side
  /// pattern.  `p`/`q` point at the minimized patterns (kept alive by
  /// `pm`/`qm`) or the caller's originals when the cache layer is off.
  struct PendingDecision {
    bool active = false;
    const Tpq* p = nullptr;
    const Tpq* q = nullptr;
    std::shared_ptr<const MinimizedEntry> pm, qm;
    Mode mode = Mode::kWeak;
    VerdictKey key;
    bool have_key = false;
    uint64_t q_probe_hash = 0;
    bool have_probe_hash = false;
    ContainmentOptions options;
  };

  /// A deferred decision plus where its result goes and which context the
  /// member's decision runs under.
  struct PendingRef {
    PendingDecision* d = nullptr;
    ContainmentResult* result = nullptr;
    EngineContext* ctx = nullptr;
  };

  /// The full per-pair pipeline; `in_worker` forces sequential sweeps.
  /// `ctx` carries the budget/stats/scratch of this decision — the service's
  /// own context for Contains/ContainsBatch, the caller's for ContainsFor.
  /// With a non-null `defer`, a pair that survives every fast-path layer is
  /// *not* dispatched: `defer` is filled (active = true) and the returned
  /// placeholder must be replaced by `DecideDeferred`/`FinishDecision`.
  ContainmentResult DecideOne(const Tpq& p, const Tpq& q, Mode mode,
                              bool in_worker, EngineContext* ctx,
                              PendingDecision* defer = nullptr);

  /// Post-dispatch bookkeeping of `DecideOne` (probe recording, verdict
  /// cache insertion, lattice recording) for a decision produced out of
  /// line; returns `result` unchanged.
  ContainmentResult FinishDecision(const PendingDecision& d,
                                   ContainmentResult result,
                                   EngineContext* ctx);

  /// Groups the deferred residue by (enumeration-side pattern, mode) —
  /// hash-bucketed, guarded by structural equality so a hash collision
  /// degrades to solo decisions — and decides each group through
  /// `tpc::ContainsGroup` on `group_ctx`, finishing every member's result
  /// in place.  `parallel_groups` fans independent groups out over the
  /// service context's pool (only valid when the deferred options force
  /// sequential sweeps).
  void DecideDeferred(std::vector<PendingRef>* refs, EngineContext* group_ctx,
                      bool parallel_groups);

  std::vector<std::vector<int32_t>> ProbesFor(const ProbeKey& key);
  void RecordProbe(const ProbeKey& key, const std::vector<int32_t>& lengths);

  /// Seeds the minimize memo with an already-minimized pattern (snapshot
  /// load), so warm requests whose raw form is already minimal skip the
  /// minimization pass entirely.
  void SeedMinimized(const Tpq& pattern, const TpqDigest& digest, Mode mode);

  /// Compiles-or-fetches the pooled program for a minimized pattern (the
  /// shared hotness-gated path of the probe cascade and the mapped-tree
  /// validation).  nullptr when not compilable, not yet hot, or refused.
  /// Compile bytes go to the pool's (service) budget; compile counters to
  /// `ctx`'s stats.
  std::shared_ptr<const MatcherProgram> PooledProgram(const Tpq& pattern,
                                                      uint64_t hash, Mode mode,
                                                      EngineContext* ctx);

  LabelPool* pool_;
  EngineContext* ctx_;
  ServiceOptions options_;
  VerdictLruCache cache_;
  std::unique_ptr<ProgramCache> programs_;
  std::unique_ptr<VerdictLattice> lattice_;

  // Warm-start state (LoadSnapshot): the mapped snapshot plus the verdict
  // keys whose counterexample trees it serves zero-copy.  Written only
  // under the caller-serialization contract; read-only during decisions.
  std::unique_ptr<SnapshotReader> mapped_snapshot_;
  std::unordered_map<VerdictKey, uint32_t, VerdictKeyHash> mapped_trees_;

  std::mutex minimize_mu_;
  std::unordered_map<uint64_t, std::shared_ptr<const MinimizedEntry>>
      minimize_memo_;
  TrackedBytes memo_tracked_;

  std::mutex probe_mu_;
  std::unordered_map<ProbeKey, std::vector<std::vector<int32_t>>, ProbeKeyHash>
      probe_book_;
  TrackedBytes probe_tracked_;
};

}  // namespace tpc

#endif  // TPC_SERVICE_QUERY_SERVICE_H_
