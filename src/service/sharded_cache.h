// A sharded, bounded, thread-safe LRU map for the query service.
//
// The verdict cache sits on the hot path of every service request and is
// written from every batch worker, so a single global lock would serialize
// exactly the workload the service exists to parallelize.  Keys are spread
// over `num_shards` independent shards (hash-selected), each with its own
// mutex, recency list and index; contention is limited to genuinely
// colliding shards.
//
// Memory is bounded per shard (total budget / num_shards) and accounted
// through a per-shard `TrackedBytes` attached to the owning context's
// budget, so cache growth shows up in `--stats` byte counters like every
// other allocator in this library and participates in the context memory
// limit.  Inserting past the bound evicts least-recently-used entries.

#ifndef TPC_SERVICE_SHARDED_CACHE_H_
#define TPC_SERVICE_SHARDED_CACHE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "engine/tracked.h"

namespace tpc {

template <typename Key, typename Value, typename KeyHash = std::hash<Key>>
class ShardedLruCache {
 public:
  /// `cost(key, value)` estimates an entry's resident bytes (charged on
  /// insert, released on evict/replace).  `budget` may be null (bytes are
  /// still bounded, just not reported).
  ShardedLruCache(size_t num_shards, int64_t max_bytes, Budget* budget,
                  std::function<int64_t(const Key&, const Value&)> cost)
      : cost_(std::move(cost)),
        shard_bytes_limit_(max_bytes /
                           static_cast<int64_t>(num_shards < 1 ? 1 : num_shards)) {
    shards_.reserve(num_shards < 1 ? 1 : num_shards);
    for (size_t i = 0; i < (num_shards < 1 ? 1 : num_shards); ++i) {
      shards_.push_back(std::make_unique<Shard>());
      shards_.back()->tracked.Attach(budget);
    }
  }

  /// Returns a copy of the value and bumps its recency, or nullopt.
  std::optional<Value> Get(const Key& key) {
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) return std::nullopt;
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return it->second->second;
  }

  /// Inserts or overwrites `key`, evicting LRU entries while the shard is
  /// over budget.  Returns the number of evictions (for
  /// `EngineStats::cache_evictions`).  When the context memory budget
  /// refuses the entry's bytes, the entry is not inserted (the cache is an
  /// accelerator; under memory pressure it simply stops absorbing entries).
  int64_t Put(const Key& key, Value value) {
    const int64_t bytes = cost_(key, value);
    Shard& shard = ShardFor(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.tracked.Release(it->second->bytes);
      shard.bytes -= it->second->bytes;
      shard.entries.erase(it->second);
      shard.index.erase(it);
    }
    if (!shard.tracked.Charge(bytes)) {
      // ChargeBytes keeps refused bytes charged (so RAII release stays
      // balanced); hand them back explicitly since nothing was stored.
      shard.tracked.Release(bytes);
      return 0;
    }
    shard.entries.emplace_front(key, std::move(value));
    shard.entries.front().bytes = bytes;
    shard.index.emplace(key, shard.entries.begin());
    shard.bytes += bytes;
    int64_t evicted = 0;
    while (shard.bytes > shard_bytes_limit_ && shard.entries.size() > 1) {
      const Entry& victim = shard.entries.back();
      shard.tracked.Release(victim.bytes);
      shard.bytes -= victim.bytes;
      shard.index.erase(victim.first);
      shard.entries.pop_back();
      ++evicted;
    }
    return evicted;
  }

  /// Visits every entry, shard by shard, most-recent first within a shard
  /// (snapshot persistence iterates the cache with this).  Each shard's lock
  /// is held only for the duration of its own walk; `fn` must not re-enter
  /// the cache.
  void ForEach(const std::function<void(const Key&, const Value&)>& fn) const {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      for (const Entry& e : shard->entries) fn(e.first, e.second);
    }
  }

  /// Entry count over all shards (diagnostics/tests; O(shards)).
  size_t size() const {
    size_t n = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mu);
      n += shard->index.size();
    }
    return n;
  }

 private:
  struct Entry : std::pair<Key, Value> {
    using std::pair<Key, Value>::pair;
    int64_t bytes = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> entries;  // front = most recent
    std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash>
        index;
    TrackedBytes tracked;
    int64_t bytes = 0;
  };

  Shard& ShardFor(const Key& key) {
    return *shards_[KeyHash{}(key) % shards_.size()];
  }

  std::function<int64_t(const Key&, const Value&)> cost_;
  const int64_t shard_bytes_limit_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tpc

#endif  // TPC_SERVICE_SHARDED_CACHE_H_
