#include "compile/program_cache.h"

#include <algorithm>

namespace tpc {

ProgramCache::ProgramCache(size_t num_shards, int64_t max_bytes,
                           int32_t hot_threshold, Budget* budget)
    : shard_bytes_limit_(std::max<int64_t>(
          1, max_bytes / static_cast<int64_t>(std::max<size_t>(1, num_shards)))),
      hot_threshold_(std::max<int32_t>(1, hot_threshold)),
      budget_(budget) {
  shards_.reserve(std::max<size_t>(1, num_shards));
  for (size_t i = 0; i < std::max<size_t>(1, num_shards); ++i) {
    shards_.push_back(std::make_unique<Shard>());
    shards_.back()->tracked.Attach(budget);
  }
}

std::shared_ptr<const MatcherProgram> ProgramCache::Get(const ProgramKey& key,
                                                        bool* should_compile) {
  *should_compile = false;
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& entry = *it->second;
    ++entry.hits;
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    if (entry.program != nullptr) return entry.program;
    *should_compile = entry.hits >= hot_threshold_;
    return nullptr;
  }
  // First sighting: install a tracker stub so later hits can accumulate.
  // With a degenerate threshold of 1 the caller compiles immediately and the
  // stub is upgraded by `Put`; a refused stub charge just means the key stays
  // cold (the caller keeps using the generic DP — never an error).
  *should_compile = hot_threshold_ <= 1;
  if (!shard.tracked.TryCharge(kTrackerBytes)) return nullptr;
  shard.entries.push_front(Entry{key, nullptr, kTrackerBytes, 1});
  shard.index.emplace(key, shard.entries.begin());
  shard.bytes += kTrackerBytes;
  EvictOverLimitLocked(&shard);
  return nullptr;
}

int64_t ProgramCache::Put(const ProgramKey& key,
                          std::shared_ptr<const MatcherProgram> program) {
  if (program == nullptr) return 0;
  // The program's table bytes are already charged against the budget by
  // Compile; the cache only counts them toward its own LRU bound.
  const int64_t bytes = kTrackerBytes + program->byte_size();
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    Entry& entry = *it->second;
    shard.bytes += bytes - entry.bytes;
    entry.program = std::move(program);
    entry.bytes = bytes;
    shard.entries.splice(shard.entries.begin(), shard.entries, it->second);
    return EvictOverLimitLocked(&shard);
  }
  if (!shard.tracked.TryCharge(kTrackerBytes)) return 0;
  shard.entries.push_front(Entry{key, std::move(program), bytes, 1});
  shard.index.emplace(key, shard.entries.begin());
  shard.bytes += bytes;
  return EvictOverLimitLocked(&shard);
}

size_t ProgramCache::resident_programs() const {
  size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->entries) {
      if (e.program != nullptr) ++n;
    }
  }
  return n;
}

std::vector<ProgramKey> ProgramCache::HotKeys() const {
  std::vector<ProgramKey> keys;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const Entry& e : shard->entries) {
      if (e.program != nullptr || e.hits >= hot_threshold_) {
        keys.push_back(e.key);
      }
    }
  }
  return keys;
}

void ProgramCache::Warm(const ProgramKey& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->hits = std::max<int64_t>(it->second->hits, hot_threshold_);
    return;
  }
  if (!shard.tracked.TryCharge(kTrackerBytes)) return;
  // Hits start at threshold, so the next Get (which adds its own hit) fires
  // should_compile right away.
  shard.entries.push_front(Entry{key, nullptr, kTrackerBytes, hot_threshold_});
  shard.index.emplace(key, shard.entries.begin());
  shard.bytes += kTrackerBytes;
  EvictOverLimitLocked(&shard);
}

int64_t ProgramCache::EvictOverLimitLocked(Shard* shard) {
  int64_t evicted = 0;
  while (shard->bytes > shard_bytes_limit_ && shard->entries.size() > 1) {
    const Entry& victim = shard->entries.back();
    shard->bytes -= victim.bytes;
    shard->tracked.Release(kTrackerBytes);
    shard->index.erase(victim.key);
    shard->entries.pop_back();
    ++evicted;
  }
  return evicted;
}

}  // namespace tpc
