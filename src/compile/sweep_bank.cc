#include "compile/sweep_bank.h"

#include <utility>

namespace tpc {

size_t SweepBank::AddMember(const Tpq* q,
                            std::shared_ptr<const MatcherProgram> program) {
  auto member = std::make_unique<Member>();
  member->q = q;
  member->program = std::move(program);
  members_.push_back(std::move(member));
  return members_.size() - 1;
}

bool SweepBank::ChargeMember(size_t i, const Tree& t, Budget* budget) {
  Member& m = *members_[i];
  if (m.program != nullptr) return m.psweep.ChargeTables(t, budget);
  return m.ws.ChargeTables(*m.q, t, budget);
}

bool SweepBank::EvalMember(size_t i, const Tree& t, bool suffix_only,
                           NodeId stable_limit, bool strong,
                           bool word_parallel, EngineStats* stats) {
  Member& m = *members_[i];
  if (m.program != nullptr) {
    if (suffix_only) {
      m.psweep.EvalIncremental(*m.program, t, stable_limit, stats);
    } else {
      m.psweep.EvalFull(*m.program, t, stats);
    }
    return strong ? m.psweep.MatchesStrong() : m.psweep.MatchesWeak();
  }
  if (suffix_only) {
    m.ws.EvalIncremental(*m.q, t, stable_limit, stats, word_parallel);
  } else {
    m.ws.EvalFull(*m.q, t, stats, word_parallel);
  }
  return strong ? m.ws.MatchesStrong() : m.ws.MatchesWeak();
}

}  // namespace tpc
