// A bank of per-member matcher executors for the grouped canonical sweep.
//
// The coNP procedure enumerates canonical models of the *enumeration-side*
// pattern p; when many in-flight queries share p (zipf tenant traffic, batch
// fan-in), every tree of that exponential space can be built once and
// evaluated against all partner patterns in a single columnar pass.  The
// `SweepBank` is the evaluation half of that loop: one slot per member
// pattern q_i, each holding the member's compiled `MatcherProgram` +
// `ProgramSweep` executor — or the generic `MatcherWorkspace` fallback when
// the pattern is oversize (> 64 nodes) or compilation was declined — so the
// grouped sweep in contain/containment.cc just walks the undecided mask and
// calls `EvalMember` per live member.
//
// Attribution stays per member: `ChargeMember` books the executor's table
// bytes against the *member's* budget (exactly the bytes a solo sweep of
// that member would charge), and `EvalMember` reports DP work into the
// member's own `EngineStats`.  The bank itself owns no budget and no lock —
// the grouped sweep drives one bank per thread.

#ifndef TPC_COMPILE_SWEEP_BANK_H_
#define TPC_COMPILE_SWEEP_BANK_H_

#include <memory>
#include <vector>

#include "compile/matcher_program.h"
#include "engine/budget.h"
#include "engine/stats.h"
#include "match/embedding.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Per-member executor bank for the multi-pattern canonical sweep.  Slots
/// are stable (never reordered or dropped); callers address members by the
/// index `AddMember` returned.
class SweepBank {
 public:
  SweepBank() = default;

  SweepBank(const SweepBank&) = delete;
  SweepBank& operator=(const SweepBank&) = delete;

  /// Adds an evaluation-side pattern.  `program` is the member's compiled
  /// matcher (shareable across banks/threads) or null for the generic
  /// `MatcherWorkspace` path.  `q` must outlive the bank.  Returns the
  /// member's slot index.
  size_t AddMember(const Tpq* q,
                   std::shared_ptr<const MatcherProgram> program);

  size_t size() const { return members_.size(); }

  const Tpq& pattern(size_t i) const { return *members_[i]->q; }

  /// Whether member `i` evaluates through a compiled program.
  bool compiled(size_t i) const { return members_[i]->program != nullptr; }

  /// Books member `i`'s table bytes for an evaluation against `t` on
  /// `budget` — the same high-water charge the member's solo sweep would
  /// make.  False means the budget refused; the caller retires the member
  /// as memory-exhausted and must not call `EvalMember`.
  bool ChargeMember(size_t i, const Tree& t, Budget* budget);

  /// Evaluates member `i` against `t` and returns whether it matches
  /// (`strong` selects root-to-root matching).  With `suffix_only`, refills
  /// only the postorder suffix above `stable_limit`; precondition: the
  /// member's previous `EvalMember` used the same tree object and the
  /// nodes below `stable_limit` are unchanged (the grouped sweep guarantees
  /// this — an undecided member has evaluated every tree so far).
  /// `ChargeMember(i, t, ...)` must have succeeded for this tree.
  bool EvalMember(size_t i, const Tree& t, bool suffix_only,
                  NodeId stable_limit, bool strong, bool word_parallel,
                  EngineStats* stats);

 private:
  struct Member {
    const Tpq* q = nullptr;
    std::shared_ptr<const MatcherProgram> program;
    ProgramSweep psweep;
    MatcherWorkspace ws;
  };
  // unique_ptr slots: executors hold `TrackedBytes` and interior state whose
  // addresses must survive vector growth.
  std::vector<std::unique_ptr<Member>> members_;
};

}  // namespace tpc

#endif  // TPC_COMPILE_SWEEP_BANK_H_
