// Pattern compilation: hot TPQs lowered to flat matcher bytecode executed
// over a tree's postorder columns.
//
// The generic `MatcherWorkspace` DP (match/embedding.h) prices every tree
// node the same way: clear the accumulators, fold every child's DP row word
// by word, scatter the missing requirement bits, store a full row.  For the
// patterns that dominate a zipf-skewed service workload — and for the
// canonical models of the enumeration sweep, whose shape is almost entirely
// ⊥-chain spines — most of that work is structure-independent overhead.
//
// `MatcherProgram` is the compiled alternative for patterns with at most 64
// nodes (one DP word).  `Compile` lowers the pattern bottom-up, selecting a
// *tile* per pattern node the way a JIT tiler matches expression trees to
// instruction templates:
//
//   * leaf pattern nodes compile to *no op at all* — their bits come
//     straight from the per-label row `labels_ok & ~internal_mask`;
//   * internal nodes with only child-edge children compile to a fused
//     label-test + child-word-fold op (one submask test);
//   * only descendant-edge children: the descendant-accumulator twin;
//   * both edge kinds: the two-test fusion.
//
// The interpreter streams the tree's postorder columns ascending with three
// tree-side tiles: a *leaf* short-circuit (one table lookup, no ops), a
// *chain* step for single-child nodes (the child's sat/desc words stay in
// registers — zero fold work, which is why compiled sweeps over chain-heavy
// canonical models report ~an order of magnitude fewer `dp_words_folded`),
// and a *branch* fold over the child span.  Per internal node it runs the
// op array — a handful of branch-free ALU ops — instead of the generic
// fill's scatter machinery, and the one-shot executor keeps only a stack of
// open subtree roots instead of materializing DP rows.
//
// Programs are immutable and shared: one compiled program may be executed
// concurrently by every batch worker (executors carry the mutable state).
// Verdicts are bit-identical to the generic DP by construction — the op
// tests are the same recurrence restricted to one word — and the agreement
// suite (tests/compiled_agreement_test.cc) pins that.
//
// Compilation is *speculative*: all table bytes are charged through
// `TrackedBytes::TryCharge` (soft), so a memory limit or an injected
// allocation fault mid-compile returns nullptr — with nothing charged and
// the budget NOT exhausted — and the caller falls back to the generic DP.

#ifndef TPC_COMPILE_MATCHER_PROGRAM_H_
#define TPC_COMPILE_MATCHER_PROGRAM_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "engine/stats.h"
#include "engine/tracked.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

class MatcherProgram {
 public:
  /// One fused op per *internal* pattern node: test the accumulated child /
  /// descendant words against the node's requirement masks and, on success,
  /// light the node's bit (still gated by the label row).  Ops are stored in
  /// tile order — child-only, descendant-only, both — so the interpreter
  /// runs three tight loops with no per-op kind dispatch.
  struct Op {
    uint64_t bit = 0;        // the internal pattern node's single-bit mask
    uint64_t req_child = 0;  // bits of its child-edge children
    uint64_t req_desc = 0;   // bits of its descendant-edge children
  };

  /// Per-label DP row source: `row` already folds in the wildcard bits, so
  /// `LabelsOk` is a single small-array scan with a wildcard-row fallback
  /// for labels the pattern never names (every ⊥ of a canonical model).
  struct LabelRow {
    LabelId label = kNoLabel;
    uint64_t row = 0;
  };

  /// One open subtree root during the stack executor's postorder scan.
  struct StackFrame {
    int32_t begin = 0;  // first postorder position of this subtree's span
    uint64_t sat = 0;
    uint64_t desc = 0;
  };

  struct ExecResult {
    bool weak = false;
    bool strong = false;
  };

  /// True iff `q` fits the single-word program model.  Larger patterns fall
  /// back to the generic DP (which is also the compiled path's bit-identical
  /// reference, so the fallback is trivially in agreement).
  static bool Compilable(const Tpq& q) {
    return !q.empty() && q.size() <= 64;
  }

  /// Lowers `q` into a program.  Returns nullptr when `q` is not compilable
  /// or when the (soft) byte charges are refused — in both cases the caller
  /// must use the generic DP; a refused compile never leaves a partial
  /// program or an exhausted budget behind.  With a non-null `stats`,
  /// reports `programs_compiled` on success.  The program's tables stay
  /// charged against `budget` for the program's lifetime.
  static std::shared_ptr<const MatcherProgram> Compile(
      const Tpq& q, Budget* budget, EngineStats* stats = nullptr);

  MatcherProgram() = default;
  MatcherProgram(const MatcherProgram&) = delete;
  MatcherProgram& operator=(const MatcherProgram&) = delete;

  int32_t pattern_size() const { return pattern_size_; }
  uint64_t internal_mask() const { return internal_mask_; }

  /// Resident bytes (program object + tables), for pool bounding.
  int64_t byte_size() const { return byte_size_; }

  /// The DP row of a tree node labelled `label` before requirements are
  /// applied (wildcard bits already folded in).
  uint64_t LabelsOk(LabelId label) const {
    for (const LabelRow& r : label_rows_) {
      if (r.label == label) return r.row;
    }
    return wildcard_row_;
  }

  /// The sat word of an internal tree node from its accumulated child words:
  /// leaf pattern bits pass on label alone; each op lights its node's bit
  /// when the matching accumulator covers the requirement mask.
  uint64_t ApplyOps(uint64_t labels_ok, uint64_t acc_c, uint64_t acc_d) const {
    uint64_t sat = labels_ok & ~internal_mask_;
    const Op* ops = ops_.data();
    size_t i = 0;
    for (; i < child_only_end_; ++i) {
      const Op& op = ops[i];
      const uint64_t ok =
          static_cast<uint64_t>((acc_c & op.req_child) == op.req_child);
      sat |= (labels_ok & op.bit) & (0 - ok);
    }
    for (; i < desc_only_end_; ++i) {
      const Op& op = ops[i];
      const uint64_t ok =
          static_cast<uint64_t>((acc_d & op.req_desc) == op.req_desc);
      sat |= (labels_ok & op.bit) & (0 - ok);
    }
    for (const size_t e = ops_.size(); i < e; ++i) {
      const Op& op = ops[i];
      const uint64_t ok =
          static_cast<uint64_t>((acc_c & op.req_child) == op.req_child) &
          static_cast<uint64_t>((acc_d & op.req_desc) == op.req_desc);
      sat |= (labels_ok & op.bit) & (0 - ok);
    }
    return sat;
  }

  /// One-shot verdict scan over the whole tree.  `stack` is caller-provided
  /// scratch (cleared here); `words_folded`/`rows_skipped` accumulate the
  /// same work units the generic kernels count, so compiled and generic
  /// runs are comparable on `dp_words_folded` / `dp_rows_skipped`.
  ExecResult Run(const TreeView& view, std::vector<StackFrame>* stack,
                 int64_t* words_folded, int64_t* rows_skipped) const;

 private:
  int32_t pattern_size_ = 0;
  uint64_t internal_mask_ = 0;
  uint64_t wildcard_row_ = 0;
  size_t child_only_end_ = 0;  // ops_[0, child_only_end_) are child-only
  size_t desc_only_end_ = 0;   // ops_[child_only_end_, desc_only_end_)
  std::vector<Op> ops_;
  std::vector<LabelRow> label_rows_;
  int64_t byte_size_ = 0;
  TrackedBytes tracked_;  // the tables' bytes, held while the program lives
};

/// Reusable one-shot executor (scratch-pool friendly): owns the stack of
/// open subtree roots and its high-water byte accounting.  Not thread-safe;
/// one executor per worker, like `MatcherWorkspace`.
class ProgramExec {
 public:
  ProgramExec() = default;

  /// Accounts the scratch a run over `t` may occupy — the frame stack plus
  /// the tree's columnar storage — high-water.  *Soft*: a refusal (memory
  /// limit, injected fault) charges nothing and does not exhaust the budget,
  /// because every call site has the generic DP as a non-allocating-here
  /// fallback; callers must skip `Run` and fall back when this is false.
  bool ChargeRun(const Tree& t, Budget* budget) {
    if (budget != tracked_.budget()) {
      tracked_.Attach(budget);
      reserved_ = 0;
    }
    const int64_t total =
        static_cast<int64_t>(t.size()) *
            static_cast<int64_t>(sizeof(MatcherProgram::StackFrame)) +
        t.ColumnBytes();
    if (total <= reserved_) return true;
    if (!tracked_.TryCharge(total - reserved_)) return false;
    reserved_ = total;
    return true;
  }

  /// Runs `program` over `t`.  With a non-null `stats`, reports one
  /// attempted embedding, the logical DP size, the kernel work counters and
  /// one `program_exec_hits`.
  MatcherProgram::ExecResult Run(const MatcherProgram& program, const Tree& t,
                                 EngineStats* stats = nullptr);

 private:
  std::vector<MatcherProgram::StackFrame> stack_;
  int64_t reserved_ = 0;  // high-water mark of soft charges
  TrackedBytes tracked_;
};

/// Sweep-mode executor: keeps single-word sat/desc *columns* for the whole
/// tree so the canonical enumeration's suffix rebuilds can re-run only the
/// invalidated positions, exactly like `MatcherWorkspace::EvalIncremental`.
/// Reports the same `dp_cells_filled` / `dp_cells_reused` accounting as the
/// generic workspace, so the incremental-sweep invariants hold unchanged
/// under the compiled path.  Not thread-safe; one per sweep worker.
class ProgramSweep {
 public:
  ProgramSweep() = default;

  /// High-water byte accounting for the columns + the tree's columnar
  /// storage (the compiled twin of `MatcherWorkspace::ChargeTables`).
  bool ChargeTables(const Tree& t, Budget* budget) {
    tracked_.Attach(budget);
    return tracked_.Reserve(2 * static_cast<int64_t>(t.size()) *
                                static_cast<int64_t>(sizeof(uint64_t)) +
                            t.ColumnBytes());
  }

  /// Evaluates from scratch.
  void EvalFull(const MatcherProgram& program, const Tree& t,
                EngineStats* stats = nullptr);

  /// Re-evaluates after an incremental rebuild; same precondition as
  /// `MatcherWorkspace::EvalIncremental` (prior Eval* with the same program
  /// and tree object; nodes below `stable_limit` unchanged).
  void EvalIncremental(const MatcherProgram& program, const Tree& t,
                       NodeId stable_limit, EngineStats* stats = nullptr);

  bool MatchesWeak() const {
    return view_.size() > 0 && (desc_[view_.size() - 1] & 1);
  }
  bool MatchesStrong() const {
    return view_.size() > 0 && (sat_[view_.size() - 1] & 1);
  }

 private:
  void ComputeColumns(const MatcherProgram& program, int32_t from);

  const MatcherProgram* program_ = nullptr;
  const Tree* t_ = nullptr;
  TreeView view_;
  std::vector<uint64_t> sat_;
  std::vector<uint64_t> desc_;
  int64_t words_folded_ = 0;
  int64_t rows_skipped_ = 0;
  TrackedBytes tracked_;
};

}  // namespace tpc

#endif  // TPC_COMPILE_MATCHER_PROGRAM_H_
