#include "compile/matcher_program.h"

#include <algorithm>
#include <array>
#include <cassert>

namespace tpc {

std::shared_ptr<const MatcherProgram> MatcherProgram::Compile(
    const Tpq& q, Budget* budget, EngineStats* stats) {
  if (!Compilable(q)) return nullptr;
  const int32_t n = q.size();

  // Tile-selection pass, allocation-free: per-node requirement masks live in
  // fixed single-word arrays (the <= 64-node precondition), and each
  // internal node is classified by which masks it ends up needing.
  std::array<uint64_t, 64> req_child{};
  std::array<uint64_t, 64> req_desc{};
  uint64_t internal_mask = 0;
  uint64_t wildcard_mask = 0;
  for (NodeId v = 0; v < n; ++v) {
    const uint64_t bit = uint64_t{1} << v;
    if (v != 0) {
      const NodeId p = q.Parent(v);
      (q.Edge(v) == EdgeKind::kChild ? req_child : req_desc)[p] |= bit;
      internal_mask |= uint64_t{1} << p;
    }
    if (q.IsWildcard(v)) wildcard_mask |= bit;
  }
  int64_t num_ops = 0;
  int64_t num_labels = 0;
  std::array<LabelId, 64> seen{};
  for (NodeId v = 0; v < n; ++v) {
    if ((internal_mask >> v) & 1) ++num_ops;
    if (q.IsWildcard(v)) continue;
    bool fresh = true;
    for (int64_t i = 0; i < num_labels; ++i) {
      if (seen[i] == q.Label(v)) {
        fresh = false;
        break;
      }
    }
    if (fresh) seen[num_labels++] = q.Label(v);
  }

  auto program = std::make_shared<MatcherProgram>();
  program->tracked_.Attach(budget);
  // Two speculative charge points bracket the two table builds, so an
  // injected allocation fault can land mid-compile; a refusal at either
  // point drops the half-built program (its destructor releases whatever
  // was charged) and the caller falls back to the generic DP.
  const int64_t op_bytes =
      num_ops * static_cast<int64_t>(sizeof(Op)) + 64;
  if (!program->tracked_.TryCharge(op_bytes)) return nullptr;
  program->pattern_size_ = n;
  program->internal_mask_ = internal_mask;
  program->wildcard_row_ = wildcard_mask;
  program->ops_.reserve(static_cast<size_t>(num_ops));
  // Tile order: child-only ops first, then descendant-only, then fused
  // both-kind ops — three tight interpreter loops, no per-op dispatch.
  for (int pass = 0; pass < 3; ++pass) {
    for (NodeId v = 0; v < n; ++v) {
      if (((internal_mask >> v) & 1) == 0) continue;
      const bool has_child = req_child[v] != 0;
      const bool has_desc = req_desc[v] != 0;
      const int kind = has_child && has_desc ? 2 : (has_desc ? 1 : 0);
      if (kind != pass) continue;
      Op op;
      op.bit = uint64_t{1} << v;
      op.req_child = req_child[v];
      op.req_desc = req_desc[v];
      program->ops_.push_back(op);
    }
    if (pass == 0) program->child_only_end_ = program->ops_.size();
    if (pass == 1) program->desc_only_end_ = program->ops_.size();
  }

  const int64_t label_bytes =
      num_labels * static_cast<int64_t>(sizeof(LabelRow)) + 32;
  if (!program->tracked_.TryCharge(label_bytes)) return nullptr;
  program->label_rows_.reserve(static_cast<size_t>(num_labels));
  for (int64_t i = 0; i < num_labels; ++i) {
    LabelRow row;
    row.label = seen[i];
    row.row = wildcard_mask;
    for (NodeId v = 0; v < n; ++v) {
      if (!q.IsWildcard(v) && q.Label(v) == seen[i]) {
        row.row |= uint64_t{1} << v;
      }
    }
    program->label_rows_.push_back(row);
  }

  program->byte_size_ =
      static_cast<int64_t>(sizeof(MatcherProgram)) + op_bytes + label_bytes;
  if (stats != nullptr) {
    stats->programs_compiled.fetch_add(1, std::memory_order_relaxed);
  }
  return program;
}

MatcherProgram::ExecResult MatcherProgram::Run(const TreeView& view,
                                               std::vector<StackFrame>* stack,
                                               int64_t* words_folded,
                                               int64_t* rows_skipped) const {
  assert(!view.empty());
  stack->clear();
  const int32_t n = view.size();
  for (int32_t i = 0; i < n; ++i) {
    const uint64_t labels_ok = LabelsOk(view.LabelAtPost(i));
    const int32_t begin = i - view.SubtreeSizeAtPost(i) + 1;
    if (begin == i) {
      // Leaf tile: one lookup, no fold, no ops.
      const uint64_t row = labels_ok & ~internal_mask_;
      stack->push_back(StackFrame{i, row, row});
      ++*rows_skipped;
      continue;
    }
    uint64_t acc_c;
    uint64_t acc_d;
    StackFrame& top = stack->back();
    if (top.begin == begin) {
      // Chain tile: the single child's words never leave the top frame —
      // no fold work, the dominant case on canonical-model spines.
      acc_c = top.sat;
      acc_d = top.desc;
    } else {
      // Branch tile: fold the completed child frames off the stack.
      acc_c = 0;
      acc_d = 0;
      while (!stack->empty() && stack->back().begin >= begin) {
        acc_c |= stack->back().sat;
        acc_d |= stack->back().desc;
        *words_folded += 2;
        stack->pop_back();
      }
      stack->push_back(StackFrame{});
    }
    const uint64_t sat = ApplyOps(labels_ok, acc_c, acc_d);
    stack->back() = StackFrame{begin, sat, sat | acc_d};
  }
  const StackFrame& root = stack->back();
  return ExecResult{(root.desc & 1) != 0, (root.sat & 1) != 0};
}

MatcherProgram::ExecResult ProgramExec::Run(const MatcherProgram& program,
                                            const Tree& t,
                                            EngineStats* stats) {
  int64_t words_folded = 0;
  int64_t rows_skipped = 0;
  MatcherProgram::ExecResult result =
      program.Run(t.View(), &stack_, &words_folded, &rows_skipped);
  if (stats != nullptr) {
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(
        static_cast<int64_t>(program.pattern_size()) * t.size(),
        std::memory_order_relaxed);
    stats->dp_words_folded.fetch_add(words_folded, std::memory_order_relaxed);
    stats->dp_rows_skipped.fetch_add(rows_skipped, std::memory_order_relaxed);
    stats->program_exec_hits.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

void ProgramSweep::ComputeColumns(const MatcherProgram& program,
                                  int32_t from) {
  const int32_t n = view_.size();
  for (int32_t i = from; i < n; ++i) {
    const uint64_t labels_ok = program.LabelsOk(view_.LabelAtPost(i));
    const int32_t subtree = view_.SubtreeSizeAtPost(i);
    if (subtree == 1) {
      const uint64_t row = labels_ok & ~program.internal_mask();
      sat_[i] = row;
      desc_[i] = row;
      ++rows_skipped_;
      continue;
    }
    uint64_t acc_c;
    uint64_t acc_d;
    if (view_.SubtreeSizeAtPost(i - 1) == subtree - 1) {
      // Chain tile: single child at i-1, already in cache/registers.
      acc_c = sat_[i - 1];
      acc_d = desc_[i - 1];
    } else {
      acc_c = 0;
      acc_d = 0;
      const int32_t begin = i - subtree + 1;
      for (int32_t c = i - 1; c >= begin; c -= view_.SubtreeSizeAtPost(c)) {
        acc_c |= sat_[c];
        acc_d |= desc_[c];
        words_folded_ += 2;
      }
    }
    const uint64_t sat = program.ApplyOps(labels_ok, acc_c, acc_d);
    sat_[i] = sat;
    desc_[i] = sat | acc_d;
  }
}

void ProgramSweep::EvalFull(const MatcherProgram& program, const Tree& t,
                            EngineStats* stats) {
  program_ = &program;
  t_ = &t;
  view_ = t.View();
  sat_.resize(static_cast<size_t>(t.size()));
  desc_.resize(static_cast<size_t>(t.size()));
  words_folded_ = 0;
  rows_skipped_ = 0;
  ComputeColumns(program, 0);
  if (stats != nullptr) {
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(
        static_cast<int64_t>(program.pattern_size()) * t.size(),
        std::memory_order_relaxed);
    stats->dp_words_folded.fetch_add(words_folded_,
                                     std::memory_order_relaxed);
    stats->dp_rows_skipped.fetch_add(rows_skipped_,
                                     std::memory_order_relaxed);
    stats->program_exec_hits.fetch_add(1, std::memory_order_relaxed);
  }
}

void ProgramSweep::EvalIncremental(const MatcherProgram& program,
                                   const Tree& t, NodeId stable_limit,
                                   EngineStats* stats) {
  assert(program_ == &program && t_ == &t &&
         "EvalIncremental needs a prior Eval* on the same program and tree");
  assert(stable_limit >= 0 && stable_limit < t.size());
  assert(t.IsDfsOrdered() && "postorder prefix stability needs DFS order");
  view_ = t.View();
  sat_.resize(static_cast<size_t>(t.size()));
  desc_.resize(static_cast<size_t>(t.size()));
  words_folded_ = 0;
  rows_skipped_ = 0;
  // Same prefix-stability argument as MatcherWorkspace::EvalIncremental: the
  // unchanged nodes that are not ancestors of the cut occupy exactly the
  // postorder prefix [0, stable_limit - depth(stable_limit)).
  const int32_t stable_post = stable_limit - t.Depth(stable_limit);
  ComputeColumns(program, stable_post);
  if (stats != nullptr) {
    const int64_t recomputed = t.size() - stable_post;
    stats->embeddings_attempted.fetch_add(1, std::memory_order_relaxed);
    stats->dp_cells_filled.fetch_add(recomputed * program.pattern_size(),
                                     std::memory_order_relaxed);
    stats->dp_cells_reused.fetch_add(
        static_cast<int64_t>(stable_post) * program.pattern_size(),
        std::memory_order_relaxed);
    stats->dp_words_folded.fetch_add(words_folded_,
                                     std::memory_order_relaxed);
    stats->dp_rows_skipped.fetch_add(rows_skipped_,
                                     std::memory_order_relaxed);
    stats->program_exec_hits.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace tpc
