// A sharded pool of compiled matcher programs with per-key hotness
// tracking, sitting beside the verdict cache in the query service.
//
// Keys are `(canonical pattern hash, label-pool generation, mode)`:
//
//   * the canonical hash (pattern/tpq_hash.h) folds sibling permutations of
//     one pattern onto one program — sound, because programs only produce
//     verdicts and embedding existence is sibling-order invariant;
//   * the pool generation (base/label.h) fences entries against label-pool
//     replacement: hashes are relative to a pool's id assignment, so a
//     program compiled under one pool must never answer for numerically
//     identical ids of another;
//   * the mode matters because the service compiles *minimized* patterns
//     and minimization is mode-dependent.
//
// Unlike the verdict cache, most keys never deserve a program: a one-shot
// pattern would pay the compile without amortizing it.  The pool therefore
// stores two kinds of entries in one LRU: cheap *trackers* (a hit counter,
// no program) and resident programs.  `Get` counts a hit and reports — via
// `should_compile` — when a key has crossed the hotness threshold
// (`ContainmentOptions::compile_threshold`), at which point the caller
// compiles and `Put`s.  Canonical-enumeration sweeps bypass the threshold
// (one sweep executes the program thousands of times, amortizing the
// compile internally) but still publish through the pool so later requests
// start warm.
//
// Byte accounting is *soft* end to end: tracker stubs are charged through
// `TrackedBytes::TryCharge`, and resident programs carry their own
// compile-time charge (see MatcherProgram::Compile), so the pool can never
// exhaust the context budget — under memory pressure it simply stops
// absorbing entries, like every accelerator tier in this library.  The
// pool's own LRU bound is enforced on `byte_size()` sums per shard.

#ifndef TPC_COMPILE_PROGRAM_CACHE_H_
#define TPC_COMPILE_PROGRAM_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "compile/matcher_program.h"
#include "engine/tracked.h"

namespace tpc {

struct ProgramKey {
  uint64_t pattern_hash = 0;
  uint64_t pool_generation = 0;
  uint32_t mode_tag = 0;  // numeric value of contain/'s Mode enum

  bool operator==(const ProgramKey& o) const {
    return pattern_hash == o.pattern_hash &&
           pool_generation == o.pool_generation && mode_tag == o.mode_tag;
  }
};

struct ProgramKeyHash {
  size_t operator()(const ProgramKey& k) const {
    uint64_t h = k.pattern_hash * 0x9e3779b97f4a7c15ULL;
    h ^= (k.pool_generation + 0xbf58476d1ce4e5b9ULL) + (h << 6) + (h >> 2);
    h ^= static_cast<uint64_t>(k.mode_tag) * 0x94d049bb133111ebULL;
    return static_cast<size_t>(h ^ (h >> 29));
  }
};

class ProgramCache {
 public:
  /// `hot_threshold` is the number of `Get` calls a key must accumulate
  /// before `should_compile` fires (clamped to >= 1).  `budget` may be null.
  ProgramCache(size_t num_shards, int64_t max_bytes, int32_t hot_threshold,
               Budget* budget);

  /// Looks `key` up, counting one hotness hit.  Returns the resident
  /// program (recency bumped) or nullptr; on a miss, `*should_compile` is
  /// set when the key's accumulated hits have reached the threshold.
  std::shared_ptr<const MatcherProgram> Get(const ProgramKey& key,
                                            bool* should_compile);

  /// Publishes a program for `key` (nullptr is ignored).  Returns the
  /// number of entries evicted under the shard's byte bound, for
  /// `EngineStats::program_cache_evictions`.  If the tracker-stub charge is
  /// refused the entry is simply not retained.
  int64_t Put(const ProgramKey& key,
              std::shared_ptr<const MatcherProgram> program);

  /// Resident programs (not trackers), over all shards.  O(entries).
  size_t resident_programs() const;

  /// Keys of every resident program plus every tracker at/over the hotness
  /// threshold — the warm set a snapshot persists.  O(entries).
  std::vector<ProgramKey> HotKeys() const;

  /// Pre-heats `key`: marks its tracker as already at the hotness threshold,
  /// so the *next* `Get` miss reports `should_compile` immediately instead
  /// of re-counting hits from zero.  Snapshot load runs this for each
  /// persisted hot key — the program itself is recompiled on first use (the
  /// bytecode is cheap to rebuild and label-remap-sensitive, so the file
  /// stores only the key).  No-op if the tracker charge is refused.
  void Warm(const ProgramKey& key);

  int32_t hot_threshold() const { return hot_threshold_; }

  /// The budget cached programs must be compiled against: entries outlive
  /// any per-decision context, so their table bytes have to be charged to
  /// the pool's own (service-lifetime) budget, not the caller's.
  Budget* budget() const { return budget_; }

 private:
  struct Entry {
    ProgramKey key;
    std::shared_ptr<const MatcherProgram> program;  // null for trackers
    int64_t bytes = 0;  // contribution to the shard's LRU bound
    int64_t hits = 0;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> entries;  // front = most recent
    std::unordered_map<ProgramKey, std::list<Entry>::iterator, ProgramKeyHash>
        index;
    TrackedBytes tracked;  // tracker stubs only; programs self-charge
    int64_t bytes = 0;
  };

  /// LRU-bound contribution of a tracker stub (entry + index slot).
  static constexpr int64_t kTrackerBytes = 96;

  Shard& ShardFor(const ProgramKey& key) {
    return *shards_[ProgramKeyHash{}(key) % shards_.size()];
  }
  int64_t EvictOverLimitLocked(Shard* shard);

  const int64_t shard_bytes_limit_;
  const int32_t hot_threshold_;
  Budget* budget_ = nullptr;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace tpc

#endif  // TPC_COMPILE_PROGRAM_CACHE_H_
