#include "contain/containment.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "compile/matcher_program.h"
#include "compile/program_cache.h"
#include "compile/sweep_bank.h"
#include "contain/homomorphism.h"
#include "match/embedding.h"
#include "pattern/canonical.h"
#include "pattern/normalize.h"
#include "pattern/tpq_hash.h"

namespace tpc {

// engine/stats.h mirrors the dispatcher enum by index; keep them in sync.
static_assert(static_cast<int>(ContainmentAlgorithm::kCanonicalEnumeration) ==
                  kNumDispatchAlgorithms - 1,
              "kDispatchAlgorithmNames must mirror ContainmentAlgorithm");

int32_t CanonicalBound(const Tpq& q, ContainmentOptions::Bound bound) {
  if (bound == ContainmentOptions::Bound::kAggressive) {
    return LongestWildcardChain(q) + 1;
  }
  // Safe bound: |q|+1 ensures that, among the B+1 "gaps" of a bottom-label
  // chain, at least one is not straddled by any child-edge-connected piece
  // of q, so chains longer than B can be pumped (see DESIGN.md).
  return q.size() + 1;
}

namespace {

bool Matches(const Tpq& q, const Tree& t, Mode mode, EngineStats* stats,
             bool word_parallel) {
  Matcher matcher(q, t, stats, word_parallel);
  return mode == Mode::kStrong ? matcher.MatchesStrong()
                               : matcher.MatchesWeak();
}

ProgramKey KeyFor(const Tpq& q, Mode mode, LabelPool* pool) {
  return ProgramKey{CanonicalTpqHash(q), pool->generation(),
                    static_cast<uint32_t>(mode)};
}

/// Compiled program for a canonical-enumeration sweep.  Sweeps compile
/// unconditionally (one sweep executes the program across the whole
/// length-vector space, amortizing the compile internally), but still go
/// through `options.program_cache` when one is wired so repeated hot sweeps
/// skip the compile and later single-tree requests start warm.  Null means:
/// use the generic DP (disabled, >64 nodes, or the soft compile charge was
/// refused — never an error, never an exhausted budget).
std::shared_ptr<const MatcherProgram> SweepProgram(
    const Tpq& q, Mode mode, LabelPool* pool, EngineContext* ctx,
    const ContainmentOptions& options) {
  if (!options.compiled_matcher || !MatcherProgram::Compilable(q)) {
    return nullptr;
  }
  ProgramCache* cache = options.program_cache;
  if (cache == nullptr) {
    // Uncached program: lives for this sweep only, charged to this context.
    return MatcherProgram::Compile(q, &ctx->budget(), &ctx->stats());
  }
  const ProgramKey key = KeyFor(q, mode, pool);
  bool should_compile = false;
  if (auto program = cache->Get(key, &should_compile)) return program;
  auto program =
      MatcherProgram::Compile(q, cache->budget(), &ctx->stats());
  if (program != nullptr) {
    ctx->stats().program_cache_evictions.fetch_add(
        cache->Put(key, program), std::memory_order_relaxed);
  }
  return program;
}

/// Compiled program for the single-tree routes (minimal/single canonical).
/// Here a compile only pays off across *calls*, so it is gated on the
/// cache's hotness threshold: no cache, or a key that has not been seen
/// `compile_threshold` times, means the generic DP.
std::shared_ptr<const MatcherProgram> HotProgram(
    const Tpq& q, Mode mode, LabelPool* pool, EngineContext* ctx,
    const ContainmentOptions& options) {
  ProgramCache* cache = options.program_cache;
  if (!options.compiled_matcher || cache == nullptr ||
      !MatcherProgram::Compilable(q)) {
    return nullptr;
  }
  const ProgramKey key = KeyFor(q, mode, pool);
  bool should_compile = false;
  auto program = cache->Get(key, &should_compile);
  if (program != nullptr || !should_compile) return program;
  program = MatcherProgram::Compile(q, cache->budget(), &ctx->stats());
  if (program != nullptr) {
    ctx->stats().program_cache_evictions.fetch_add(
        cache->Put(key, program), std::memory_order_relaxed);
  }
  return program;
}

/// `Matches` with the compiled fast path in front: when the pattern is hot
/// a pooled `ProgramExec` answers from the flat program; otherwise (or when
/// the soft scratch charge is refused) the generic matcher decides.
bool MatchesRouted(const Tpq& q, const Tree& t, Mode mode, LabelPool* pool,
                   EngineContext* ctx, const ContainmentOptions& options) {
  if (auto program = HotProgram(q, mode, pool, ctx, options)) {
    auto exec = ctx->scratch().Acquire<ProgramExec>();
    if (exec->ChargeRun(t, &ctx->budget())) {
      const MatcherProgram::ExecResult r =
          exec->Run(*program, t, &ctx->stats());
      return mode == Mode::kStrong ? r.strong : r.weak;
    }
  }
  return Matches(q, t, mode, &ctx->stats(), options.word_parallel);
}

/// Returns a copy of `q` with the root label replaced.
Tpq WithRootLabel(const Tpq& q, LabelId label) {
  Tpq out = q;
  out.SetLabel(0, label);
  return out;
}

/// Per-canonical-tree budget cost: one step to build the tree plus the size
/// of the embedding DP.
int64_t TreeCost(const Tpq& q, const Tree& t) {
  return 1 + static_cast<int64_t>(q.size()) * t.size();
}

/// Stamps a result as resource-exhausted with the budget's recorded reason.
/// A kNone reason here means the exhaustion came from a work-volume check
/// that bypassed the budget; report it as kSteps.
void MarkExhausted(ContainmentResult* result, EngineContext* ctx) {
  result->outcome = Outcome::kResourceExhausted;
  const ExhaustionReason r = ctx->budget().reason();
  result->reason = r == ExhaustionReason::kNone ? ExhaustionReason::kSteps : r;
}

/// One incremental-sweep step shared by the sequential and parallel sweeps:
/// (re)builds the canonical model for the enumerator's current length vector,
/// charges the budget, and (re)runs the embedding DP — in `psweep` when the
/// sweep holds a compiled `program`, in the generic `ws` otherwise.  When
/// `incremental` and this is not the first iteration on this
/// (builder, executor, scratch) triple, only the suffix from the first
/// changed spine is rebuilt and only the invalidated DP columns are
/// refilled.  Returns the `Matches` verdict, or std::nullopt when the budget
/// ran out (the tree is built but not evaluated, mirroring the from-scratch
/// path).  The compiled and generic twins charge identical table bytes for
/// compilable (single-word) patterns, so exhaustion points agree across A/B
/// runs.
std::optional<bool> SweepStep(const Tpq& q, Mode mode,
                              CanonicalTreeBuilder* builder,
                              const MatcherProgram* program,
                              ProgramSweep* psweep, MatcherWorkspace* ws,
                              Tree* scratch,
                              const CanonicalLengthEnumerator& lengths,
                              bool fresh, bool incremental, bool word_parallel,
                              EngineContext* ctx) {
  EngineStats& stats = ctx->stats();
  stats.canonical_trees_enumerated.fetch_add(1, std::memory_order_relaxed);
  size_t first_changed = lengths.first_changed();
  bool suffix_only =
      !fresh && incremental && first_changed < builder->num_spines();
  if (suffix_only) {
    builder->BuildSuffix(lengths.lengths(), first_changed, scratch);
    stats.trees_rebuilt_from_spine.fetch_add(1, std::memory_order_relaxed);
  } else {
    builder->BuildFull(lengths.lengths(), scratch);
  }
  if (!ctx->budget().Charge(TreeCost(q, *scratch))) return std::nullopt;
  if (program != nullptr) {
    if (!psweep->ChargeTables(*scratch, &ctx->budget())) return std::nullopt;
    if (suffix_only) {
      psweep->EvalIncremental(*program, *scratch,
                              builder->spine_start(first_changed), &stats);
    } else {
      psweep->EvalFull(*program, *scratch, &stats);
    }
    return mode == Mode::kStrong ? psweep->MatchesStrong()
                                 : psweep->MatchesWeak();
  }
  if (!ws->ChargeTables(q, *scratch, &ctx->budget())) return std::nullopt;
  if (suffix_only) {
    ws->EvalIncremental(q, *scratch, builder->spine_start(first_changed),
                        &stats, word_parallel);
  } else {
    ws->EvalFull(q, *scratch, &stats, word_parallel);
  }
  return mode == Mode::kStrong ? ws->MatchesStrong() : ws->MatchesWeak();
}

/// Sequential sweep over the whole length-vector space, reusing one scratch
/// tree and one matcher executor (compiled or generic) across iterations.
ContainmentResult SequentialSweep(const Tpq& p, const Tpq& q, Mode mode,
                                  LabelId bottom, size_t num_edges,
                                  int32_t bound, LabelPool* pool,
                                  const ContainmentOptions& options,
                                  EngineContext* ctx) {
  ContainmentResult result;
  result.algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
  CanonicalTreeBuilder builder(p, bottom);
  std::shared_ptr<const MatcherProgram> program =
      SweepProgram(q, mode, pool, ctx, options);
  ProgramSweep psweep;
  MatcherWorkspace ws;
  Tree scratch;
  CanonicalLengthEnumerator lengths(num_edges, bound);
  bool fresh = true;
  do {
    std::optional<bool> matched =
        SweepStep(q, mode, &builder, program.get(), &psweep, &ws, &scratch,
                  lengths, fresh, options.incremental, options.word_parallel,
                  ctx);
    fresh = false;
    if (!matched.has_value()) {
      MarkExhausted(&result, ctx);
      return result;
    }
    if (!*matched) {
      result.contained = false;
      result.counterexample = std::move(scratch);
      result.counterexample_lengths = lengths.lengths();
      return result;
    }
  } while (lengths.Next());
  result.contained = true;
  return result;
}

/// Chunked-parallel sweep: contiguous chunks of the (bound+1)^k enumeration
/// order are claimed dynamically by the pool's workers; the first worker to
/// find a counterexample (or exhaust the budget) stops the others.
ContainmentResult ParallelSweep(const Tpq& p, const Tpq& q, Mode mode,
                                LabelId bottom, size_t num_edges,
                                int32_t bound, uint64_t total, uint64_t chunk,
                                LabelPool* pool,
                                const ContainmentOptions& options,
                                EngineContext* ctx) {
  ContainmentResult result;
  result.algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
  // One immutable program shared by every worker (executors are per-chunk).
  std::shared_ptr<const MatcherProgram> program =
      SweepProgram(q, mode, pool, ctx, options);
  // The caller guarantees chunk >= 1 and total + chunk - 1 <= INT64_MAX, so
  // neither the rounding below nor the int64 cast can overflow.
  const uint64_t num_chunks = (total + chunk - 1) / chunk;
  std::atomic<bool> stop{false};
  std::atomic<bool> out_of_budget{false};
  std::mutex mu;
  std::optional<Tree> counterexample;
  std::optional<std::vector<int32_t>> counterexample_lengths;

  ctx->pool().ParallelFor(
      static_cast<int64_t>(num_chunks), [&](int64_t chunk_index) {
        if (stop.load(std::memory_order_relaxed)) return;
        uint64_t begin = static_cast<uint64_t>(chunk_index) * chunk;
        uint64_t end = std::min(begin + chunk, total);
        CanonicalLengthEnumerator lengths(num_edges, bound);
        lengths.SeekTo(begin);
        // Builder, executor and scratch tree live for the whole chunk, so
        // within a chunk every step after the first runs incrementally.
        CanonicalTreeBuilder builder(p, bottom);
        ProgramSweep psweep;
        MatcherWorkspace ws;
        Tree scratch;
        bool fresh = true;
        for (uint64_t i = begin; i < end; ++i) {
          if (stop.load(std::memory_order_relaxed)) return;
          std::optional<bool> matched =
              SweepStep(q, mode, &builder, program.get(), &psweep, &ws,
                        &scratch, lengths, fresh, options.incremental,
                        options.word_parallel, ctx);
          fresh = false;
          if (!matched.has_value()) {
            out_of_budget.store(true, std::memory_order_relaxed);
            stop.store(true, std::memory_order_relaxed);
            return;
          }
          if (!*matched) {
            std::lock_guard<std::mutex> lock(mu);
            if (!counterexample.has_value()) {
              counterexample = std::move(scratch);
              counterexample_lengths = lengths.lengths();
            }
            stop.store(true, std::memory_order_relaxed);
            return;
          }
          if (i + 1 < end) lengths.Next();
        }
      });

  // ParallelFor's return synchronizes with every worker, so the plain reads
  // below see all their writes.
  if (counterexample.has_value()) {
    result.contained = false;
    result.counterexample = std::move(counterexample);
    result.counterexample_lengths = std::move(counterexample_lengths);
  } else if (out_of_budget.load(std::memory_order_relaxed)) {
    MarkExhausted(&result, ctx);
  } else {
    result.contained = true;
  }
  return result;
}

ContainmentResult ContainsImpl(const Tpq& p, const Tpq& q, Mode mode,
                               LabelPool* pool, EngineContext* ctx,
                               const ContainmentOptions& options) {
  assert(!p.empty() && !q.empty());
  EngineStats& stats = ctx->stats();
  if (mode == Mode::kStrong) {
    // Observation 2.3, schema-free case.  If q's root is a letter that p's
    // root cannot be forced to match, strong containment fails outright
    // (witness: any canonical tree of p).  Otherwise relabel both roots with
    // a fresh letter and decide weak containment.
    if (!q.IsWildcard(0) && (p.IsWildcard(0) || p.Label(0) != q.Label(0))) {
      ContainmentResult result;
      result.contained = false;
      result.counterexample =
          MinimalCanonicalTree(p, pool->Fresh("_bot"));
      result.counterexample_lengths =
          std::vector<int32_t>(DescendantEdges(p).size(), 0);
      result.algorithm = ContainmentAlgorithm::kMinimalCanonical;
      return result;
    }
    LabelId fresh_root = pool->Fresh("_root");
    ContainmentResult result =
        ContainsImpl(WithRootLabel(p, fresh_root),
                     WithRootLabel(q, fresh_root), Mode::kWeak, pool, ctx,
                     options);
    if (result.counterexample.has_value() && !p.IsWildcard(0)) {
      // Translate the counterexample back: its root carries the fresh label
      // introduced by the reduction; restore p's root label (still outside
      // L_s(q): any strong embedding of q would induce one of the relabeled
      // pattern into the relabeled tree).
      result.counterexample->SetLabel(0, p.Label(0));
    }
    return result;
  }

  Tpq qn = Normalize(q);
  Fragment fp = FragmentOf(p);
  Fragment fq = FragmentOf(qn);

  if (!options.force_canonical) {
    if (!fq.wildcard) {
      // For wildcard-free q, an embedding into the canonical tree of p with
      // every descendant chain instantiated by one ⊥ node can never touch a
      // ⊥ node, so containment is exactly the existence of a homomorphism
      // q -> p (Miklau & Suciu; the Theorem 3.1 region).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kHomomorphism;
      stats.homomorphism_checks.fetch_add(1, std::memory_order_relaxed);
      if (!ctx->budget().Charge(
              static_cast<int64_t>(qn.size()) * p.size())) {
        MarkExhausted(&result, ctx);
        return result;
      }
      // The dispatcher can route many pairs here back to back (benchmarks,
      // minimization loops); a pooled scratch keeps the DP tables alive
      // across calls while scoping their retention — and their tracked-byte
      // charge — to this context rather than to the thread.
      auto scratch = ctx->scratch().Acquire<HomomorphismScratch>();
      if (!scratch->ChargeTables(qn, p, &ctx->budget())) {
        MarkExhausted(&result, ctx);
        return result;
      }
      result.contained =
          HomomorphismExists(qn, p, /*root_to_root=*/false, scratch.get());
      if (!result.contained) {
        std::vector<int32_t> ones(DescendantEdges(p).size(), 1);
        result.counterexample =
            CanonicalTree(p, ones, pool->Fresh("_bot"));
        result.counterexample_lengths = std::move(ones);
      }
      return result;
    }
    if (!fq.child_edges) {
      // Theorem 3.2(3): for child-edge-free q, the minimal canonical tree of
      // p decides containment (Appendix B.1.4: embeddings transfer from the
      // minimal canonical tree to every canonical tree along `corr`, which
      // preserves labels and ancestorship — all q needs).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kMinimalCanonical;
      Tree t = MinimalCanonicalTree(p, pool->Fresh("_bot"));
      stats.canonical_trees_enumerated.fetch_add(1,
                                                 std::memory_order_relaxed);
      if (!ctx->budget().Charge(TreeCost(qn, t))) {
        MarkExhausted(&result, ctx);
        return result;
      }
      result.contained =
          MatchesRouted(qn, t, Mode::kWeak, pool, ctx, options);
      if (!result.contained) {
        result.counterexample = std::move(t);
        result.counterexample_lengths =
            std::vector<int32_t>(DescendantEdges(p).size(), 0);
      }
      return result;
    }
    if (!fp.descendant_edges) {
      // Theorems 3.1(2) / 3.2(4): p has a unique canonical tree.
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kSingleCanonical;
      Tree t = MinimalCanonicalTree(p, pool->Fresh("_bot"));
      stats.canonical_trees_enumerated.fetch_add(1,
                                                 std::memory_order_relaxed);
      if (!ctx->budget().Charge(TreeCost(qn, t))) {
        MarkExhausted(&result, ctx);
        return result;
      }
      result.contained =
          MatchesRouted(qn, t, Mode::kWeak, pool, ctx, options);
      if (!result.contained) {
        result.counterexample = std::move(t);
        result.counterexample_lengths =
            std::vector<int32_t>(DescendantEdges(p).size(), 0);
      }
      return result;
    }
    if (IsPathQuery(p)) {
      // Theorem 3.2(1).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kPathInTpq;
      result.contained = PathInTpqContained(p, qn, pool, ctx);
      if (ctx->budget().Exhausted()) MarkExhausted(&result, ctx);
      return result;
    }
    if (!fp.child_edges) {
      // Theorem 3.2(2).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kChildFreeInTpq;
      result.contained = ChildFreeInTpqContained(p, qn, pool, ctx);
      if (ctx->budget().Exhausted()) MarkExhausted(&result, ctx);
      return result;
    }
  }
  return CanonicalContainment(p, qn, Mode::kWeak, pool, ctx, options);
}

/// One canonical-route member of a grouped sweep, after normalization (and,
/// for strong mode, the Observation 2.3 relabelling) has been applied.
struct SweepMember {
  size_t slot = 0;          // index into the caller's members/results arrays
  const Tpq* qn = nullptr;  // normalized evaluation-side pattern
  EngineContext* ctx = nullptr;
};

/// Retires member `i` of a grouped sweep and maintains the early-retire
/// counter: a retirement is "early" when at least one groupmate keeps
/// sweeping without it (the payoff of the undecided mask).
void RetireMember(std::vector<char>* undecided, size_t i, size_t* live,
                  EngineStats* group_stats) {
  (*undecided)[i] = 0;
  --*live;
  if (*live > 0) {
    group_stats->group_members_retired_early.fetch_add(
        1, std::memory_order_relaxed);
  }
}

/// Sequential grouped sweep: ONE builder/enumerator pass over the canonical
/// models of p, each tree evaluated against every still-undecided member.
/// Budget charges per live member are identical to the member's solo
/// `SequentialSweep` (TreeCost then executor table bytes, in enumeration
/// order), so exhaustion attribution survives grouping bit-for-bit; shared
/// work (tree builds) is accounted once, on `group_ctx`.
void GroupSequentialSweep(const Tpq& p,
                          const std::vector<SweepMember>& members, Mode mode,
                          LabelId bottom, size_t num_edges, int32_t bound,
                          LabelPool* pool, const ContainmentOptions& options,
                          EngineContext* group_ctx,
                          std::vector<ContainmentResult>* results) {
  EngineStats& gstats = group_ctx->stats();
  SweepBank bank;
  for (const SweepMember& m : members) {
    bank.AddMember(m.qn, SweepProgram(*m.qn, mode, pool, m.ctx, options));
  }
  CanonicalTreeBuilder builder(p, bottom);
  CanonicalLengthEnumerator lengths(num_edges, bound);
  Tree scratch;
  std::vector<char> undecided(members.size(), 1);
  size_t live = members.size();
  bool fresh = true;
  do {
    gstats.canonical_trees_enumerated.fetch_add(1, std::memory_order_relaxed);
    const size_t first_changed = lengths.first_changed();
    const bool suffix_only =
        !fresh && options.incremental && first_changed < builder.num_spines();
    if (suffix_only) {
      builder.BuildSuffix(lengths.lengths(), first_changed, &scratch);
      gstats.trees_rebuilt_from_spine.fetch_add(1, std::memory_order_relaxed);
    } else {
      builder.BuildFull(lengths.lengths(), &scratch);
    }
    const NodeId stable_limit =
        suffix_only ? builder.spine_start(first_changed) : 0;
    int64_t evaluated = 0;
    for (size_t i = 0; i < members.size(); ++i) {
      if (!undecided[i]) continue;
      const SweepMember& m = members[i];
      ContainmentResult& r = (*results)[m.slot];
      if (!m.ctx->budget().Charge(TreeCost(*m.qn, scratch)) ||
          !bank.ChargeMember(i, scratch, &m.ctx->budget())) {
        MarkExhausted(&r, m.ctx);
        RetireMember(&undecided, i, &live, &gstats);
        continue;
      }
      const bool matched =
          bank.EvalMember(i, scratch, suffix_only, stable_limit,
                          mode == Mode::kStrong, options.word_parallel,
                          &m.ctx->stats());
      ++evaluated;
      if (!matched) {
        r.contained = false;
        // Copy, not move: groupmates keep sweeping on this scratch tree.
        r.counterexample = scratch;
        r.counterexample_lengths = lengths.lengths();
        RetireMember(&undecided, i, &live, &gstats);
      }
    }
    if (evaluated > 1) {
      gstats.trees_shared_per_decision.fetch_add(evaluated - 1,
                                                 std::memory_order_relaxed);
    }
    fresh = false;
    if (live == 0) return;
  } while (lengths.Next());
  for (size_t i = 0; i < members.size(); ++i) {
    if (undecided[i]) (*results)[members[i].slot].contained = true;
  }
}

/// Chunked-parallel grouped sweep: like `ParallelSweep`, but each chunk
/// carries a whole bank of member executors and the stop conditions are per
/// member (an atomic undecided mask).  A member's budget trip or first
/// counterexample retires only that member; the sweep stops once every
/// member is decided.
void GroupParallelSweep(const Tpq& p, const std::vector<SweepMember>& members,
                        Mode mode, LabelId bottom, size_t num_edges,
                        int32_t bound, uint64_t total, uint64_t chunk,
                        LabelPool* pool, const ContainmentOptions& options,
                        EngineContext* group_ctx,
                        std::vector<ContainmentResult>* results) {
  EngineStats& gstats = group_ctx->stats();
  const size_t n = members.size();
  // One immutable program per member, shared by every chunk's bank.
  std::vector<std::shared_ptr<const MatcherProgram>> programs(n);
  for (size_t i = 0; i < n; ++i) {
    programs[i] =
        SweepProgram(*members[i].qn, mode, pool, members[i].ctx, options);
  }
  struct MemberState {
    std::atomic<bool> undecided{true};
  };
  std::deque<MemberState> state(n);
  std::atomic<int64_t> live{static_cast<int64_t>(n)};
  // Retires member `i` (at most one caller wins the exchange) and returns
  // whether this caller is the winner — the only thread allowed to write the
  // member's result slot.
  auto retire = [&](size_t i) {
    if (!state[i].undecided.exchange(false, std::memory_order_acq_rel)) {
      return false;
    }
    if (live.fetch_sub(1, std::memory_order_acq_rel) - 1 > 0) {
      gstats.group_members_retired_early.fetch_add(1,
                                                   std::memory_order_relaxed);
    }
    return true;
  };
  const uint64_t num_chunks = (total + chunk - 1) / chunk;

  group_ctx->pool().ParallelFor(
      static_cast<int64_t>(num_chunks), [&](int64_t chunk_index) {
        if (live.load(std::memory_order_relaxed) == 0) return;
        const uint64_t begin = static_cast<uint64_t>(chunk_index) * chunk;
        const uint64_t end = std::min(begin + chunk, total);
        CanonicalLengthEnumerator lengths(num_edges, bound);
        lengths.SeekTo(begin);
        CanonicalTreeBuilder builder(p, bottom);
        SweepBank bank;
        for (size_t i = 0; i < n; ++i) {
          bank.AddMember(members[i].qn, programs[i]);
        }
        Tree scratch;
        bool fresh = true;
        for (uint64_t t = begin; t < end; ++t) {
          if (live.load(std::memory_order_relaxed) == 0) return;
          gstats.canonical_trees_enumerated.fetch_add(
              1, std::memory_order_relaxed);
          const size_t first_changed = lengths.first_changed();
          const bool suffix_only = !fresh && options.incremental &&
                                   first_changed < builder.num_spines();
          if (suffix_only) {
            builder.BuildSuffix(lengths.lengths(), first_changed, &scratch);
            gstats.trees_rebuilt_from_spine.fetch_add(
                1, std::memory_order_relaxed);
          } else {
            builder.BuildFull(lengths.lengths(), &scratch);
          }
          const NodeId stable_limit =
              suffix_only ? builder.spine_start(first_changed) : 0;
          int64_t evaluated = 0;
          for (size_t i = 0; i < n; ++i) {
            if (!state[i].undecided.load(std::memory_order_relaxed)) continue;
            const SweepMember& m = members[i];
            if (!m.ctx->budget().Charge(TreeCost(*m.qn, scratch)) ||
                !bank.ChargeMember(i, scratch, &m.ctx->budget())) {
              if (retire(i)) MarkExhausted(&(*results)[m.slot], m.ctx);
              continue;
            }
            const bool matched =
                bank.EvalMember(i, scratch, suffix_only, stable_limit,
                                mode == Mode::kStrong, options.word_parallel,
                                &m.ctx->stats());
            ++evaluated;
            if (!matched && retire(i)) {
              ContainmentResult& r = (*results)[m.slot];
              r.contained = false;
              r.counterexample = scratch;  // copy: this chunk keeps sweeping
              r.counterexample_lengths = lengths.lengths();
            }
          }
          if (evaluated > 1) {
            gstats.trees_shared_per_decision.fetch_add(
                evaluated - 1, std::memory_order_relaxed);
          }
          fresh = false;
          if (t + 1 < end) lengths.Next();
        }
      });

  // ParallelFor's return synchronizes with every worker; members still
  // undecided matched every canonical model.
  for (size_t i = 0; i < n; ++i) {
    if (state[i].undecided.load(std::memory_order_relaxed)) {
      (*results)[members[i].slot].contained = true;
    }
  }
}

/// Grouped twin of `CanonicalContainment` for members sharing one
/// chain-length bound.  Same parallelization gate as the solo procedure
/// (driven by `group_ctx`).
void CanonicalContainmentGroup(const Tpq& p,
                               const std::vector<SweepMember>& members,
                               Mode mode, int32_t bound, LabelPool* pool,
                               EngineContext* group_ctx,
                               const ContainmentOptions& options,
                               std::vector<ContainmentResult>* results) {
  for (const SweepMember& m : members) {
    (*results)[m.slot].algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
  }
  LabelId bottom = pool->Fresh("_bot");
  size_t num_edges = DescendantEdges(p).size();
  std::optional<uint64_t> total =
      CanonicalLengthEnumerator(num_edges, bound).TotalCountExact();
  const uint64_t chunk =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::max<int64_t>(
                                0, group_ctx->config().parallel_chunk)));
  const uint64_t max_parallel_total =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) - chunk;
  if (!options.sequential_sweep && group_ctx->threads() > 1 &&
      total.has_value() &&
      *total >= static_cast<uint64_t>(group_ctx->config().parallel_threshold) &&
      *total <= max_parallel_total) {
    GroupParallelSweep(p, members, mode, bottom, num_edges, bound, *total,
                       chunk, pool, options, group_ctx, results);
    return;
  }
  GroupSequentialSweep(p, members, mode, bottom, num_edges, bound, pool,
                       options, group_ctx, results);
}

}  // namespace

ContainmentResult CanonicalContainment(const Tpq& p, const Tpq& q, Mode mode,
                                       LabelPool* pool, EngineContext* ctx,
                                       const ContainmentOptions& options) {
  LabelId bottom = pool->Fresh("_bot");
  int32_t bound = CanonicalBound(q, options.bound);
  size_t num_edges = DescendantEdges(p).size();
  std::optional<uint64_t> total =
      CanonicalLengthEnumerator(num_edges, bound).TotalCountExact();
  // Parallelize only when the space is big enough to amortize the chunk
  // bookkeeping.  Spaces too large to linearize in 64 bits run sequentially
  // (no budget finishes them anyway) — and so do totals near the int64/uint64
  // edge, where the chunk-count arithmetic in ParallelSweep would wrap and
  // sweep only a sliver of the space.
  const uint64_t chunk =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::max<int64_t>(
                                0, ctx->config().parallel_chunk)));
  const uint64_t max_parallel_total =
      static_cast<uint64_t>(std::numeric_limits<int64_t>::max()) - chunk;
  if (!options.sequential_sweep && ctx->threads() > 1 && total.has_value() &&
      *total >= static_cast<uint64_t>(ctx->config().parallel_threshold) &&
      *total <= max_parallel_total) {
    return ParallelSweep(p, q, mode, bottom, num_edges, bound, *total, chunk,
                         pool, options, ctx);
  }
  return SequentialSweep(p, q, mode, bottom, num_edges, bound, pool, options,
                         ctx);
}

ContainmentResult CanonicalContainment(const Tpq& p, const Tpq& q, Mode mode,
                                       LabelPool* pool,
                                       const ContainmentOptions& options) {
  return CanonicalContainment(p, q, mode, pool, &EngineContext::Default(),
                              options);
}

ContainmentResult Contains(const Tpq& p, const Tpq& q, Mode mode,
                           LabelPool* pool, EngineContext* ctx,
                           const ContainmentOptions& options) {
  ContainmentResult result = ContainsImpl(p, q, mode, pool, ctx, options);
  ctx->stats().dispatch[static_cast<int>(result.algorithm)].fetch_add(
      1, std::memory_order_relaxed);
  return result;
}

ContainmentResult Contains(const Tpq& p, const Tpq& q, Mode mode,
                           LabelPool* pool,
                           const ContainmentOptions& options) {
  return Contains(p, q, mode, pool, &EngineContext::Default(), options);
}

std::vector<ContainmentResult> ContainsGroup(
    const Tpq& p, const std::vector<GroupMember>& members, Mode mode,
    LabelPool* pool, EngineContext* group_ctx,
    const ContainmentOptions& options) {
  std::vector<ContainmentResult> results(members.size());
  if (members.empty()) return results;
  assert(!p.empty());
  if (!options.grouped_sweep || members.size() == 1) {
    for (size_t i = 0; i < members.size(); ++i) {
      results[i] =
          Contains(p, *members[i].q, mode, pool, members[i].ctx, options);
    }
    return results;
  }

  // Weak-phase work list: normalization and (for strong mode) the
  // Observation 2.3 root relabelling applied once for the whole group.
  struct WeakItem {
    size_t slot;
    Tpq qn;
    EngineContext* ctx;
  };
  std::vector<WeakItem> weak;
  weak.reserve(members.size());
  std::optional<Tpq> p_weak_storage;
  const Tpq* pw = &p;
  if (mode == Mode::kStrong) {
    const LabelId fresh_root = pool->Fresh("_root");
    p_weak_storage.emplace(WithRootLabel(p, fresh_root));
    pw = &*p_weak_storage;
    for (size_t i = 0; i < members.size(); ++i) {
      const Tpq& q = *members[i].q;
      assert(!q.empty());
      if (!q.IsWildcard(0) && (p.IsWildcard(0) || p.Label(0) != q.Label(0))) {
        // Strong containment fails outright (Observation 2.3): witness any
        // canonical tree of p — the solo dispatcher's fast fail.
        ContainmentResult& r = results[i];
        r.contained = false;
        r.counterexample = MinimalCanonicalTree(p, pool->Fresh("_bot"));
        r.counterexample_lengths =
            std::vector<int32_t>(DescendantEdges(p).size(), 0);
        r.algorithm = ContainmentAlgorithm::kMinimalCanonical;
        continue;
      }
      weak.push_back(
          {i, Normalize(WithRootLabel(q, fresh_root)), members[i].ctx});
    }
  } else {
    for (size_t i = 0; i < members.size(); ++i) {
      assert(!members[i].q->empty());
      weak.push_back({i, Normalize(*members[i].q), members[i].ctx});
    }
  }

  // Route each member as the solo dispatcher would; only members landing on
  // the general canonical procedure can share a sweep, and only with
  // members of equal chain-length bound (the bound depends on q).
  const Fragment fp = FragmentOf(*pw);
  const bool p_canonical =
      fp.descendant_edges && !IsPathQuery(*pw) && fp.child_edges;
  std::vector<SweepMember> sweepable;
  std::vector<int32_t> sweep_bounds;
  for (WeakItem& w : weak) {
    const Fragment fq = FragmentOf(w.qn);
    const bool canonical_route =
        options.force_canonical ||
        (fq.wildcard && fq.child_edges && p_canonical);
    if (!canonical_route) {
      results[w.slot] =
          ContainsImpl(*pw, w.qn, Mode::kWeak, pool, w.ctx, options);
      continue;
    }
    // `weak` no longer grows here, so &w.qn stays valid below.
    sweepable.push_back({w.slot, &w.qn, w.ctx});
    sweep_bounds.push_back(CanonicalBound(w.qn, options.bound));
  }

  // Sub-partition the canonical members by bound; singleton partitions fall
  // back to the solo procedure, larger ones share one enumeration.
  std::vector<std::pair<int32_t, std::vector<SweepMember>>> partitions;
  for (size_t i = 0; i < sweepable.size(); ++i) {
    bool placed = false;
    for (auto& part : partitions) {
      if (part.first == sweep_bounds[i]) {
        part.second.push_back(sweepable[i]);
        placed = true;
        break;
      }
    }
    if (!placed) partitions.push_back({sweep_bounds[i], {sweepable[i]}});
  }
  EngineStats& gstats = group_ctx->stats();
  for (auto& part : partitions) {
    if (part.second.size() == 1) {
      const SweepMember& m = part.second[0];
      results[m.slot] =
          CanonicalContainment(*pw, *m.qn, Mode::kWeak, pool, m.ctx, options);
      continue;
    }
    gstats.sweep_groups_formed.fetch_add(1, std::memory_order_relaxed);
    gstats.sweep_group_members.fetch_add(
        static_cast<int64_t>(part.second.size()), std::memory_order_relaxed);
    CanonicalContainmentGroup(*pw, part.second, Mode::kWeak, part.first, pool,
                              group_ctx, options, &results);
  }

  if (mode == Mode::kStrong && !p.IsWildcard(0)) {
    // Translate the weak-phase counterexamples back (see ContainsImpl).
    for (const WeakItem& w : weak) {
      if (results[w.slot].counterexample.has_value()) {
        results[w.slot].counterexample->SetLabel(0, p.Label(0));
      }
    }
  }

  for (size_t i = 0; i < members.size(); ++i) {
    members[i].ctx->stats().dispatch[static_cast<int>(results[i].algorithm)]
        .fetch_add(1, std::memory_order_relaxed);
  }
  return results;
}

bool PathInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool) {
  return PathInTpqContained(p, q, pool, &EngineContext::Default());
}

bool ChildFreeInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool) {
  return ChildFreeInTpqContained(p, q, pool, &EngineContext::Default());
}

}  // namespace tpc
