#include "contain/containment.h"

#include <cassert>

#include "contain/homomorphism.h"
#include "match/embedding.h"
#include "pattern/canonical.h"
#include "pattern/normalize.h"

namespace tpc {

int32_t CanonicalBound(const Tpq& q, ContainmentOptions::Bound bound) {
  if (bound == ContainmentOptions::Bound::kAggressive) {
    return LongestWildcardChain(q) + 1;
  }
  // Safe bound: |q|+1 ensures that, among the B+1 "gaps" of a bottom-label
  // chain, at least one is not straddled by any child-edge-connected piece
  // of q, so chains longer than B can be pumped (see DESIGN.md).
  return q.size() + 1;
}

namespace {

bool Matches(const Tpq& q, const Tree& t, Mode mode) {
  return mode == Mode::kStrong ? MatchesStrong(q, t) : MatchesWeak(q, t);
}

/// Returns a copy of `q` with the root label replaced.
Tpq WithRootLabel(const Tpq& q, LabelId label) {
  Tpq out = q;
  out.SetLabel(0, label);
  return out;
}

}  // namespace

ContainmentResult CanonicalContainment(const Tpq& p, const Tpq& q, Mode mode,
                                       LabelPool* pool,
                                       const ContainmentOptions& options) {
  ContainmentResult result;
  result.algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
  LabelId bottom = pool->Fresh("_bot");
  int32_t bound = CanonicalBound(q, options.bound);
  size_t num_edges = DescendantEdges(p).size();
  CanonicalLengthEnumerator lengths(num_edges, bound);
  do {
    Tree t = CanonicalTree(p, lengths.lengths(), bottom);
    if (!Matches(q, t, mode)) {
      result.contained = false;
      result.counterexample = std::move(t);
      return result;
    }
  } while (lengths.Next());
  result.contained = true;
  return result;
}

ContainmentResult Contains(const Tpq& p, const Tpq& q, Mode mode,
                           LabelPool* pool,
                           const ContainmentOptions& options) {
  assert(!p.empty() && !q.empty());
  if (mode == Mode::kStrong) {
    // Observation 2.3, schema-free case.  If q's root is a letter that p's
    // root cannot be forced to match, strong containment fails outright
    // (witness: any canonical tree of p).  Otherwise relabel both roots with
    // a fresh letter and decide weak containment.
    if (!q.IsWildcard(0) && (p.IsWildcard(0) || p.Label(0) != q.Label(0))) {
      ContainmentResult result;
      result.contained = false;
      result.counterexample =
          MinimalCanonicalTree(p, pool->Fresh("_bot"));
      result.algorithm = ContainmentAlgorithm::kMinimalCanonical;
      return result;
    }
    LabelId fresh_root = pool->Fresh("_root");
    ContainmentResult result =
        Contains(WithRootLabel(p, fresh_root), WithRootLabel(q, fresh_root),
                 Mode::kWeak, pool, options);
    if (result.counterexample.has_value() && !p.IsWildcard(0)) {
      // Translate the counterexample back: its root carries the fresh label
      // introduced by the reduction; restore p's root label (still outside
      // L_s(q): any strong embedding of q would induce one of the relabeled
      // pattern into the relabeled tree).
      result.counterexample->SetLabel(0, p.Label(0));
    }
    return result;
  }

  Tpq qn = Normalize(q);
  Fragment fp = FragmentOf(p);
  Fragment fq = FragmentOf(qn);

  if (!options.force_canonical) {
    if (!fq.wildcard) {
      // For wildcard-free q, an embedding into the canonical tree of p with
      // every descendant chain instantiated by one ⊥ node can never touch a
      // ⊥ node, so containment is exactly the existence of a homomorphism
      // q -> p (Miklau & Suciu; the Theorem 3.1 region).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kHomomorphism;
      result.contained = HomomorphismExists(qn, p, /*root_to_root=*/false);
      if (!result.contained) {
        result.counterexample = CanonicalTree(
            p, std::vector<int32_t>(DescendantEdges(p).size(), 1),
            pool->Fresh("_bot"));
      }
      return result;
    }
    if (!fq.child_edges) {
      // Theorem 3.2(3): for child-edge-free q, the minimal canonical tree of
      // p decides containment (Appendix B.1.4: embeddings transfer from the
      // minimal canonical tree to every canonical tree along `corr`, which
      // preserves labels and ancestorship — all q needs).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kMinimalCanonical;
      Tree t = MinimalCanonicalTree(p, pool->Fresh("_bot"));
      result.contained = Matches(qn, t, Mode::kWeak);
      if (!result.contained) result.counterexample = std::move(t);
      return result;
    }
    if (!fp.descendant_edges) {
      // Theorems 3.1(2) / 3.2(4): p has a unique canonical tree.
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kSingleCanonical;
      Tree t = MinimalCanonicalTree(p, pool->Fresh("_bot"));
      result.contained = Matches(qn, t, Mode::kWeak);
      if (!result.contained) result.counterexample = std::move(t);
      return result;
    }
    if (IsPathQuery(p)) {
      // Theorem 3.2(1).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kPathInTpq;
      result.contained = PathInTpqContained(p, qn, pool);
      return result;
    }
    if (!fp.child_edges) {
      // Theorem 3.2(2).
      ContainmentResult result;
      result.algorithm = ContainmentAlgorithm::kChildFreeInTpq;
      result.contained = ChildFreeInTpqContained(p, qn, pool);
      return result;
    }
  }
  return CanonicalContainment(p, qn, Mode::kWeak, pool, options);
}

}  // namespace tpc
