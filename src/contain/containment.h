// Containment of tree pattern queries without schema information
// (Section 3 and Appendix B of the paper).
//
// The public entry point is `Contains(p, q, mode)`, which dispatches on the
// fragments of p and q:
//
//   * q wildcard-free (Thm 3.1 region, [34]): homomorphism test — for such q
//     an embedding into the all-chains-length-1 canonical tree of p never
//     touches a ⊥ node, so it is exactly a homomorphism q -> p.
//   * q child-edge-free (Thm 3.2(3)):  test the minimal canonical tree of p
//     (the `corr` argument of Appendix B.1.4 needs only ancestorship).
//   * p descendant-free (Thm 3.1(2), 3.2(4)): p has a unique canonical tree.
//   * p a path query (Thm 3.2(1)):     island recursion (Lemmas B.1, B.2).
//   * p child-edge-free (Thm 3.2(2)):  singular-pattern DP (Claim B.4).
//   * otherwise:                       bounded canonical-model enumeration
//     (coNP procedure of Miklau & Suciu; exponential only in the number of
//     descendant edges of p — and the problem is coNP-complete here,
//     Thm 3.3).
//
// Strong containment is reduced to weak containment by the (schema-free)
// root-relabelling of Observation 2.3.

#ifndef TPC_CONTAIN_CONTAINMENT_H_
#define TPC_CONTAIN_CONTAINMENT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/label.h"
#include "engine/engine.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

class ProgramCache;

enum class Mode { kWeak, kStrong };

/// Which decision procedure the dispatcher selected (for logging, tests and
/// the Table 1 benchmarks).
enum class ContainmentAlgorithm {
  kHomomorphism,          // q wildcard-free
  kMinimalCanonical,      // q child-edge-free (Theorem 3.2(3))
  kSingleCanonical,       // p descendant-free
  kPathInTpq,             // p path query (Theorem 3.2(1))
  kChildFreeInTpq,        // p child-edge-free (Theorem 3.2(2))
  kCanonicalEnumeration,  // general coNP procedure
};

struct ContainmentResult {
  bool contained = false;
  /// A tree in L(p) \ L(q) when not contained and the selected procedure
  /// produces witnesses (the canonical-model based procedures do; the
  /// recursive P algorithms of Theorems 3.2(1)/(2) do not).
  std::optional<Tree> counterexample;
  /// The spine chain-length vector (one entry per descendant edge of p, in
  /// document order) whose canonical model the counterexample is.  Set
  /// whenever `counterexample` comes from a canonical model — including the
  /// parallel sweep, the homomorphism route (all-ones vector) and the
  /// single/minimal canonical routes.
  std::optional<std::vector<int32_t>> counterexample_lengths;
  ContainmentAlgorithm algorithm = ContainmentAlgorithm::kCanonicalEnumeration;
  /// `kResourceExhausted` when the engine budget ran out before the answer
  /// was certain; `contained` is then meaningless.
  Outcome outcome = Outcome::kDecided;
  /// Which resource ran out (kNone while decided): steps, deadline, tracked
  /// memory, or a caller's `EngineContext::Cancel()`.
  ExhaustionReason reason = ExhaustionReason::kNone;
};

/// Options controlling the fallback canonical-model procedure.
struct ContainmentOptions {
  /// Chain-length bound for canonical models.  kSafe uses |q|+1, which we
  /// prove sufficient by a counting argument; kAggressive uses the
  /// Miklau-Suciu style bound (longest wildcard chain of q) + 1.
  enum class Bound { kSafe, kAggressive };
  Bound bound = Bound::kSafe;
  /// If true, the dispatcher may not route to the fragment-specific P
  /// algorithms (used by tests to force the general procedure).
  bool force_canonical = false;
  /// If true (default) the canonical sweep rebuilds each model from the
  /// first changed spine only and re-runs the embedding DP on just the
  /// invalidated columns; if false every model is built and evaluated from
  /// scratch (for A/B benchmarks and agreement tests).
  bool incremental = true;
  /// If true, the canonical sweep never engages the thread pool even when
  /// `ctx->threads() > 1`.  Callers that are *themselves* pool jobs (the
  /// query service's batch fan-out) must set this: `ThreadPool::ParallelFor`
  /// does not support reentrant submission from a worker.
  bool sequential_sweep = false;
  /// If true (default) the embedding DP uses the word-parallel fill kernel
  /// (missing-bits scatter + branch-free leaf columns); if false it uses the
  /// scalar per-candidate kernel.  Both produce bit-identical tables — the
  /// flag exists for A/B benchmarks and the agreement suites
  /// (`tpc_cli --no-word-parallel`).
  bool word_parallel = true;
  /// If true (default) patterns with at most 64 nodes may be lowered to a
  /// flat `MatcherProgram` (src/compile/) executed over the tree's postorder
  /// columns instead of the generic DP fill.  Canonical sweeps compile
  /// unconditionally (one sweep amortizes the compile internally); the
  /// single-tree routes compile only once `program_cache` reports the
  /// pattern hot.  Verdicts are bit-identical either way — the flag exists
  /// for A/B benchmarks and the agreement suites (`tpc_cli --no-compile`).
  bool compiled_matcher = true;
  /// Number of sightings of a `(pattern, pool, mode)` key in
  /// `program_cache` before the single-tree routes pay the compile.
  int32_t compile_threshold = 4;
  /// Optional pool of compiled programs shared across calls (the query
  /// service owns one beside its verdict cache).  Null means: sweeps still
  /// compile per call, single-tree routes never do (no hotness evidence).
  ProgramCache* program_cache = nullptr;
  /// If true (default) `ContainsGroup` — and the query-service batch
  /// grouping and daemon coalescing window built on it — may decide
  /// canonical-route members sharing the enumeration-side pattern over ONE
  /// model enumeration (each canonical tree built once, every undecided
  /// member's matcher run against it).  If false every member is decided by
  /// an independent `Contains` call — the `--no-group-sweep` A/B twin.
  /// Verdicts and per-member attribution are identical either way.
  bool grouped_sweep = true;
};

/// Decides L(p) ⊆ L(q) (weak or strong languages per `mode`) under the
/// budget/instrumentation/parallelism of `ctx`.  `pool` is used to mint
/// fresh labels (⊥, fresh roots); it must be the pool the patterns were
/// interned in.
ContainmentResult Contains(const Tpq& p, const Tpq& q, Mode mode,
                           LabelPool* pool, EngineContext* ctx,
                           const ContainmentOptions& options = {});

/// Engine-default wrapper (unlimited budget, one thread).
ContainmentResult Contains(const Tpq& p, const Tpq& q, Mode mode,
                           LabelPool* pool,
                           const ContainmentOptions& options = {});

/// One member of a grouped containment decision: an evaluation-side pattern
/// plus the context carrying its budget and counters.  Attribution is per
/// member — budget charges (steps and table bytes are booked per
/// evaluation), `ExhaustionReason` and witnesses land on the member's own
/// context, so a faulted or shed member never poisons its groupmates.
struct GroupMember {
  const Tpq* q = nullptr;
  EngineContext* ctx = nullptr;
};

/// Decides L(p) ⊆ L(q_i) for every member against ONE shared
/// enumeration-side pattern p.  Members that the dispatcher routes to a
/// fragment-specific P algorithm (or whose chain-length bound differs) are
/// decided exactly as `Contains` would; the canonical-route members with
/// equal bound are swept together — each canonical tree of p is built once
/// and evaluated against every still-undecided member, and a member retires
/// at its first counterexample or budget trip (the undecided mask).  Strong
/// mode applies the Observation 2.3 root relabelling once for the whole
/// group.  Shared work (tree builds, enumeration) is accounted on
/// `group_ctx`; `group_ctx` also provides the thread pool for the chunked
/// parallel sweep.  Results are indexed like `members`.  With
/// `options.grouped_sweep` false this is exactly one `Contains` call per
/// member (the A/B twin).
std::vector<ContainmentResult> ContainsGroup(
    const Tpq& p, const std::vector<GroupMember>& members, Mode mode,
    LabelPool* pool, EngineContext* group_ctx,
    const ContainmentOptions& options = {});

/// The general canonical-model procedure (sound and complete for all
/// fragments; exponential in the number of descendant edges of p).  With
/// `ctx->threads() > 1` the length-vector space is partitioned into chunks
/// swept in parallel, with early exit on the first counterexample.
ContainmentResult CanonicalContainment(const Tpq& p, const Tpq& q, Mode mode,
                                       LabelPool* pool, EngineContext* ctx,
                                       const ContainmentOptions& options = {});

/// Engine-default wrapper.
ContainmentResult CanonicalContainment(const Tpq& p, const Tpq& q, Mode mode,
                                       LabelPool* pool,
                                       const ContainmentOptions& options = {});

/// Theorem 3.2(1): weak containment of a path query p in a TPQ q, in
/// polynomial time.  Precondition: IsPathQuery(p).  The ctx overload may
/// bail out early when the budget is exhausted — check
/// `ctx->budget().Exhausted()` before trusting the answer.
bool PathInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool,
                        EngineContext* ctx);
bool PathInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool);

/// Theorem 3.2(2): weak containment of a child-edge-free p in a TPQ q, in
/// polynomial time.  Precondition: p has no child edges.  Budget semantics
/// as for `PathInTpqContained`.
bool ChildFreeInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool,
                             EngineContext* ctx);
bool ChildFreeInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool);

/// The chain-length bound used by `CanonicalContainment` for the pair (p,q).
int32_t CanonicalBound(const Tpq& q, ContainmentOptions::Bound bound);

}  // namespace tpc

#endif  // TPC_CONTAIN_CONTAINMENT_H_
