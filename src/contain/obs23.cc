#include "contain/obs23.h"

#include <algorithm>
#include <vector>

#include "regex/regex.h"

namespace tpc {

namespace {

/// Root labels of `pattern` intersected with the start symbols of `dtd`
/// (R_p / R_q in the proof of Observation 2.3).
std::vector<LabelId> RootLabels(const Tpq& pattern, const Dtd& dtd) {
  if (pattern.IsWildcard(0)) return dtd.start();
  if (dtd.IsStart(pattern.Label(0))) return {pattern.Label(0)};
  return {};
}

Tpq WithRootLabel(const Tpq& pattern, LabelId label) {
  Tpq out = pattern;
  out.SetLabel(0, label);
  return out;
}

/// Union of the content models of `labels` under `dtd`.
Regex UnionOfRules(const std::vector<LabelId>& labels, const Dtd& dtd) {
  std::vector<Regex> parts;
  for (LabelId a : labels) parts.push_back(dtd.Rule(a));
  return Regex::Union(std::move(parts));
}

}  // namespace

SchemaContainmentInstance ReduceWeakToStrong(const Tpq& p, const Tpq& q,
                                             const Dtd& dtd, LabelPool* pool) {
  SchemaContainmentInstance out;
  LabelId top = pool->Fresh("_top");
  out.p = Tpq(top);
  out.p.Graft(0, EdgeKind::kDescendant, p);
  out.q = Tpq(top);
  out.q.Graft(0, EdgeKind::kDescendant, q);
  out.dtd = dtd;
  std::vector<Regex> starts;
  for (LabelId s : dtd.start()) starts.push_back(Regex::Letter(s));
  Dtd fresh;
  fresh.AddStart(top);
  fresh.SetRule(top, Regex::Union(std::move(starts)));
  for (LabelId a : dtd.alphabet()) fresh.SetRule(a, dtd.Rule(a));
  out.dtd = std::move(fresh);
  return out;
}

SchemaContainmentInstance ReduceStrongToWeak(const Tpq& p, const Tpq& q,
                                             const Dtd& dtd, LabelPool* pool) {
  std::vector<LabelId> rp = RootLabels(p, dtd);
  std::vector<LabelId> rq = RootLabels(q, dtd);
  bool rp_subset_rq = std::all_of(rp.begin(), rp.end(), [&](LabelId a) {
    return std::find(rq.begin(), rq.end(), a) != rq.end();
  });
  std::vector<LabelId> common;
  for (LabelId a : rp) {
    if (std::find(rq.begin(), rq.end(), a) != rq.end()) common.push_back(a);
  }

  SchemaContainmentInstance out;
  LabelId top = pool->Fresh("_top");
  if (rp_subset_rq) {
    // Case 1: whenever p's root can map somewhere, so can q's.  Replace both
    // root labels by ⊤ whose rule is the union of the rules of R_p.
    out.p = WithRootLabel(p, top);
    out.q = WithRootLabel(q, top);
    Dtd d;
    d.AddStart(top);
    d.SetRule(top, UnionOfRules(rp, dtd));
    for (LabelId a : dtd.alphabet()) d.SetRule(a, dtd.Rule(a));
    out.dtd = std::move(d);
    return out;
  }
  if (common.empty()) {
    // Case 2: q's root can never coincide with p's.  Containment holds iff
    // L_s(p) ∩ L(d) is empty; rebuild as case 1 on the p side and give q a
    // root label that occurs nowhere.
    out.p = WithRootLabel(p, top);
    out.q = WithRootLabel(q, pool->Fresh("_bad"));
    Dtd d;
    d.AddStart(top);
    d.SetRule(top, UnionOfRules(rp, dtd));
    for (LabelId a : dtd.alphabet()) d.SetRule(a, dtd.Rule(a));
    out.dtd = std::move(d);
    return out;
  }
  // Case 3: p's root is a wildcard, q's root a letter covering only part of
  // R_p.  Attach ⊤ above p with a child edge; split the root alternatives
  // into r_ok (labels where q's root could match) and r_bad (the rest).
  LabelId r_ok = pool->Fresh("_rok");
  LabelId r_bad = pool->Fresh("_rbad");
  out.p = Tpq(top);
  out.p.Graft(0, EdgeKind::kChild, p);
  out.q = WithRootLabel(q, r_ok);
  std::vector<LabelId> rest;
  for (LabelId a : rp) {
    if (std::find(common.begin(), common.end(), a) == common.end()) {
      rest.push_back(a);
    }
  }
  Dtd d;
  d.AddStart(top);
  std::vector<Regex> tops;
  tops.push_back(Regex::Letter(r_ok));
  if (!rest.empty()) tops.push_back(Regex::Letter(r_bad));
  d.SetRule(top, Regex::Union(std::move(tops)));
  d.SetRule(r_ok, UnionOfRules(common, dtd));
  if (!rest.empty()) d.SetRule(r_bad, UnionOfRules(rest, dtd));
  for (LabelId a : dtd.alphabet()) d.SetRule(a, dtd.Rule(a));
  out.dtd = std::move(d);
  return out;
}

}  // namespace tpc
