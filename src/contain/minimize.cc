#include "contain/minimize.h"

#include <cassert>
#include <vector>

namespace tpc {

Tpq RemoveSubtree(const Tpq& q, NodeId v) {
  assert(v != 0 && v < q.size());
  // Mark the subtree of v.
  std::vector<bool> removed(q.size(), false);
  removed[v] = true;
  for (NodeId u = v + 1; u < q.size(); ++u) {
    if (q.Parent(u) >= 0 && removed[q.Parent(u)]) removed[u] = true;
  }
  Tpq out(q.Label(0));
  std::vector<NodeId> image(q.size(), kNoNode);
  image[0] = 0;
  for (NodeId u = 1; u < q.size(); ++u) {
    if (removed[u]) continue;
    image[u] = out.AddChild(image[q.Parent(u)], q.Label(u), q.Edge(u));
  }
  return out;
}

bool EquivalentTpq(const Tpq& p, const Tpq& q, Mode mode, LabelPool* pool) {
  return EquivalentTpq(p, q, mode, pool, &EngineContext::Default());
}

bool EquivalentTpq(const Tpq& p, const Tpq& q, Mode mode, LabelPool* pool,
                   EngineContext* ctx, const ContainmentOptions& options) {
  ContainmentResult forward = Contains(p, q, mode, pool, ctx, options);
  if (forward.outcome != Outcome::kDecided || !forward.contained) return false;
  ContainmentResult backward = Contains(q, p, mode, pool, ctx, options);
  return backward.outcome == Outcome::kDecided && backward.contained;
}

Tpq MinimizeTpq(const Tpq& q, Mode mode, LabelPool* pool) {
  return MinimizeTpq(q, mode, pool, &EngineContext::Default());
}

Tpq MinimizeTpq(const Tpq& q, Mode mode, LabelPool* pool, EngineContext* ctx,
                const ContainmentOptions& options) {
  Tpq current = q;
  bool changed = true;
  while (changed) {
    changed = false;
    // Try removing each non-root subtree, preferring deeper (smaller) cuts
    // last so that single pass removals stay large.
    for (NodeId v = 1; v < current.size(); ++v) {
      if (ctx->budget().Exhausted()) return current;
      Tpq candidate = RemoveSubtree(current, v);
      // Removal weakens the pattern, so equivalence only needs one side —
      // and the removal is committed only on a *decided* yes: a budget-
      // exhausted subcall keeps the subtree, preserving equivalence.
      ContainmentResult sub = Contains(candidate, current, mode, pool, ctx,
                                       options);
      if (sub.outcome == Outcome::kDecided && sub.contained) {
        current = std::move(candidate);
        changed = true;
        break;
      }
    }
  }
  return current;
}

}  // namespace tpc
