// The weak/strong interreductions of Observation 2.3, with DTDs.
//
// Strong containment always reduces to weak containment in polynomial time;
// weak reduces to strong when both fragments have descendant edges (attach a
// fresh root above both patterns with a descendant edge).  These reductions
// justify presenting upper bounds for W-Containment and lower bounds for
// S-Containment throughout the paper; here they are first-class citizens so
// the property tests can check them against the decision engine.

#ifndef TPC_CONTAIN_OBS23_H_
#define TPC_CONTAIN_OBS23_H_

#include "base/label.h"
#include "dtd/dtd.h"
#include "pattern/tpq.h"

namespace tpc {

/// A containment-with-DTD instance (p ⊆? q w.r.t. d) plus the mode it is to
/// be decided in.
struct SchemaContainmentInstance {
  Tpq p;
  Tpq q;
  Dtd dtd;
};

/// Reduces W-Containment of (p, q) w.r.t. `dtd` to S-Containment: attaches a
/// fresh ⊤-labelled root above both patterns with a descendant edge and
/// gives the DTD the new start symbol ⊤ with rule ⊤ -> (S_d letters).
/// The result must be decided with Mode::kStrong.
SchemaContainmentInstance ReduceWeakToStrong(const Tpq& p, const Tpq& q,
                                             const Dtd& dtd, LabelPool* pool);

/// Reduces S-Containment of (p, q) w.r.t. `dtd` to W-Containment, following
/// the three-case construction in the appendix proof of Observation 2.3
/// (common fresh root / disjoint root labels / wildcard-vs-letter with the
/// r_ok, r_bad split).  The result must be decided with Mode::kWeak.
SchemaContainmentInstance ReduceStrongToWeak(const Tpq& p, const Tpq& q,
                                             const Dtd& dtd, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_CONTAIN_OBS23_H_
