// Tree pattern minimization via containment tests.
//
// Removing a subtree of a pattern only weakens it (L(q) ⊆ L(q')); if the
// weakened pattern is still contained in the original, the subtree was
// redundant.  Greedily removing redundant subtrees minimizes a large class
// of TPQs [21]; whether *every* TPQ can be minimized this way is open [29]
// (see Related Work).  This module exposes the procedure both as a library
// feature and as the engine behind examples/xpath_minimizer.

#ifndef TPC_CONTAIN_MINIMIZE_H_
#define TPC_CONTAIN_MINIMIZE_H_

#include "base/label.h"
#include "contain/containment.h"
#include "pattern/tpq.h"

namespace tpc {

/// Returns a copy of `q` without the subtree rooted at `v` (v != root).
Tpq RemoveSubtree(const Tpq& q, NodeId v);

/// Greedily removes redundant subtrees of `q` until none is removable,
/// preserving L_s/L_w per `mode`.  The result is equivalent to `q`.
Tpq MinimizeTpq(const Tpq& q, Mode mode, LabelPool* pool);

/// As above, under the budget of `ctx`.  A removal is committed only when
/// the containment subcall *decided* it was redundant, so the result is
/// equivalent to `q` even when the budget runs out mid-way (check
/// `ctx->budget().Exhausted()` to learn whether minimization was complete —
/// an exhausted run may simply return a less-minimized equivalent).
Tpq MinimizeTpq(const Tpq& q, Mode mode, LabelPool* pool, EngineContext* ctx,
                const ContainmentOptions& options = {});

/// True iff p and q are equivalent (mutual containment) under `mode`.
bool EquivalentTpq(const Tpq& p, const Tpq& q, Mode mode, LabelPool* pool);

/// As above, under the budget of `ctx`.  Conservatively false when either
/// direction exhausts the budget (check `ctx->budget().Exhausted()`).
bool EquivalentTpq(const Tpq& p, const Tpq& q, Mode mode, LabelPool* pool,
                   EngineContext* ctx, const ContainmentOptions& options = {});

}  // namespace tpc

#endif  // TPC_CONTAIN_MINIMIZE_H_
