// Theorem 3.2(2): weak containment of TPQ(//,*) (no child edges on the left)
// in TPQ(/,//,*) in polynomial time, following Appendix B.1.3.
//
// First, q must be "singular": in every island, all non-wildcard nodes carry
// the same letter and sit at the same depth relative to the island root.
// Otherwise a canonical tree of p whose descendant edges are instantiated
// with chains longer than |q| separates the letters of p too far for q to
// embed, and containment fails.
//
// For singular q, Claim B.4 gives a recursion over subproblems
// (u, k, x):  L_w(*^k(subquery_p(u))) ⊆ L_w(subquery_q(x))
// whose two cases (♥) and (♥♥) are implemented below verbatim.

#include <cassert>
#include <map>
#include <tuple>
#include <vector>

#include "contain/containment.h"
#include "pattern/normalize.h"

namespace tpc {
namespace {

/// The island of q rooted at x: member nodes, the letter and (relative)
/// letter depth if any, and the descendant-edge children below the island.
struct IslandInfo {
  std::vector<NodeId> nodes;
  bool has_letters = false;
  LabelId letter = kNoLabel;
  int32_t letter_depth = -1;          // n, relative to x
  bool singular = true;               // all letters equal, same depth
  std::vector<NodeId> below;          // island roots below, ids in q
  std::vector<int32_t> below_depth;   // d(x), relative to x
};

IslandInfo AnalyzeIsland(const Tpq& q, NodeId x) {
  IslandInfo info;
  std::vector<std::pair<NodeId, int32_t>> queue = {{x, 0}};
  for (size_t i = 0; i < queue.size(); ++i) {
    auto [v, depth] = queue[i];
    info.nodes.push_back(v);
    if (!q.IsWildcard(v)) {
      if (!info.has_letters) {
        info.has_letters = true;
        info.letter = q.Label(v);
        info.letter_depth = depth;
      } else if (q.Label(v) != info.letter || depth != info.letter_depth) {
        info.singular = false;
      }
    }
    for (NodeId c = q.FirstChild(v); c != kNoNode; c = q.NextSibling(c)) {
      if (q.Edge(c) == EdgeKind::kChild) {
        queue.emplace_back(c, depth + 1);
      } else {
        info.below.push_back(c);
        info.below_depth.push_back(depth + 1);
      }
    }
  }
  return info;
}

class ChildFreeSolver {
 public:
  ChildFreeSolver(const Tpq& p, const Tpq& q, EngineContext* ctx)
      : p_(p), q_(q), ctx_(ctx) {
    p_depth_.resize(p.size());
    for (NodeId v = 1; v < p.size(); ++v) {
      p_depth_[v] = p_depth_[p.Parent(v)] + 1;
    }
  }

  /// Whether every island of q is singular (else containment fails).  A
  /// false return may also mean budget exhaustion — the dispatcher checks
  /// `Exhausted()` before trusting the boolean.
  bool QIsSingular() {
    for (NodeId v = 0; v < q_.size(); ++v) {
      if (v == 0 || q_.Edge(v) == EdgeKind::kDescendant) {
        if (!ctx_->budget().Charge(1)) return false;
        if (!AnalyzeIsland(q_, v).singular) return false;
      }
    }
    return true;
  }

  /// Decides L_w(*^k(subquery_p(u))) ⊆ L_w(subquery_q(x)).
  bool Solve(NodeId u, int32_t k, NodeId x) {
    auto key = std::make_tuple(u, k, x);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    memo_.emplace(key, false);  // provisional; recursion is on smaller q
    bool result = Compute(u, k, x);
    memo_[key] = result;
    return result;
  }

 private:
  bool Compute(NodeId u, int32_t k, NodeId x) {
    // Budget discipline: bail out (false) once exhausted; the dispatcher
    // reports Outcome::kResourceExhausted.
    if (!ctx_->budget().Charge(1 + p_.size())) return false;
    ctx_->stats().dp_cells_filled.fetch_add(1, std::memory_order_relaxed);
    IslandInfo island = AnalyzeIsland(q_, x);
    assert(island.singular);
    if (!island.has_letters) {
      // Case (♥): the topmost island is a single wildcard node (a larger
      // all-wildcard island would violate normalization).
      assert(island.nodes.size() == 1);
      for (NodeId z : island.below) {
        if (!ExistsInR(u, k, z)) return false;
      }
      return true;
    }
    // Case (♥♥).  n = relative depth of the island's letters.
    int32_t n = island.letter_depth;
    LabelId a = island.letter;
    // S: topmost a-labelled nodes of *^k(subquery(u)) at depth >= n.
    std::vector<NodeId> s_set;
    CollectS(u, u, k, n, a, &s_set);
    for (NodeId cand : s_set) {
      bool all_ok = true;
      for (size_t i = 0; i < island.below.size() && all_ok; ++i) {
        NodeId z = island.below[i];
        int32_t d = island.below_depth[i];
        assert(d >= 1 && d <= n + 1);
        if (d <= n) {
          // R_d(cand) = { *^{n-d}(subquery(cand)) }.
          all_ok = Solve(cand, n - d, z);
        } else {
          // R_{n+1}(cand) = subqueries at the children of cand.
          all_ok = ExistsChildSolve(cand, z);
        }
      }
      if (all_ok) return true;
    }
    return false;
  }

  /// (♥) helper: is there p'' among the subqueries just below the root of
  /// *^k(subquery(u)) with L_w(p'') ⊆ L_w(subquery_q(z))?
  bool ExistsInR(NodeId u, int32_t k, NodeId z) {
    if (k >= 1) return Solve(u, k - 1, z);
    return ExistsChildSolve(u, z);
  }

  bool ExistsChildSolve(NodeId u, NodeId z) {
    for (NodeId c = p_.FirstChild(u); c != kNoNode; c = p_.NextSibling(c)) {
      if (Solve(c, 0, z)) return true;
    }
    return false;
  }

  /// Collects S: nodes v in subquery(u) labelled `a` whose depth in
  /// *^k(subquery(u)) is >= n and with no a-labelled ancestor at depth >= n
  /// within the subquery.
  void CollectS(NodeId u, NodeId v, int32_t k, int32_t n, LabelId a,
                std::vector<NodeId>* out) {
    int32_t depth = k + p_depth_[v] - p_depth_[u];
    if (!p_.IsWildcard(v) && p_.Label(v) == a && depth >= n) {
      out->push_back(v);
      return;  // deeper a-nodes have this one as a blocking ancestor
    }
    for (NodeId c = p_.FirstChild(v); c != kNoNode; c = p_.NextSibling(c)) {
      CollectS(u, c, k, n, a, out);
    }
  }

  const Tpq& p_;
  const Tpq& q_;
  EngineContext* ctx_;
  std::vector<int32_t> p_depth_;
  std::map<std::tuple<NodeId, int32_t, NodeId>, bool> memo_;
};

}  // namespace

bool ChildFreeInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool,
                             EngineContext* ctx) {
  (void)pool;
  assert(!FragmentOf(p).child_edges);
  Tpq qn = Normalize(q);
  ChildFreeSolver solver(p, qn, ctx);
  if (!solver.QIsSingular()) return false;
  return solver.Solve(0, 0, 0);
}

}  // namespace tpc
