#include "contain/homomorphism.h"

#include <vector>

namespace tpc {

bool HomomorphismExists(const Tpq& q, const Tpq& p, bool root_to_root,
                        HomomorphismScratch* scratch) {
  if (q.empty() || p.empty()) return false;
  size_t np = static_cast<size_t>(p.size());
  // sat[x * np + u]: subquery(x) of q maps with x -> u of p.
  // below[x * np + u]: subquery(x) maps with x somewhere properly below u,
  // or at u (used for descendant edges, which stretch across >= 1 edge).
  std::vector<char>& sat = scratch->sat;
  std::vector<char>& below = scratch->below;
  sat.assign(static_cast<size_t>(q.size()) * np, 0);
  below.assign(sat.size(), 0);
  for (NodeId x = q.size() - 1; x >= 0; --x) {
    for (NodeId u = p.size() - 1; u >= 0; --u) {
      // Labels: a wildcard of q maps anywhere; a letter of q must map to the
      // same letter of p (a wildcard of p stands for arbitrary letters, so a
      // letter of q cannot safely map onto it).
      bool ok = q.IsWildcard(x) || (!p.IsWildcard(u) && q.Label(x) == p.Label(u));
      for (NodeId z = q.FirstChild(x); z != kNoNode && ok;
           z = q.NextSibling(z)) {
        bool found = false;
        for (NodeId c = p.FirstChild(u); c != kNoNode && !found;
             c = p.NextSibling(c)) {
          if (q.Edge(z) == EdgeKind::kChild) {
            // A child edge of q must map onto a child edge of p: any
            // descendant edge of p can stretch over more than one level.
            found = p.Edge(c) == EdgeKind::kChild && sat[z * np + c];
          } else {
            // A descendant edge of q maps onto any downward path of >= 1
            // edge in p (every p-edge spans >= 1 level).
            found = below[z * np + c] != 0;
          }
        }
        ok = found;
      }
      sat[x * np + u] = ok;
      bool b = ok;
      for (NodeId c = p.FirstChild(u); c != kNoNode && !b;
           c = p.NextSibling(c)) {
        b = below[x * np + c] != 0;
      }
      below[x * np + u] = b;
    }
  }
  if (root_to_root) return sat[0] != 0;
  for (NodeId u = 0; u < p.size(); ++u) {
    if (sat[static_cast<size_t>(u)] != 0) return true;  // x = 0 row
  }
  return false;
}

bool HomomorphismExists(const Tpq& q, const Tpq& p, bool root_to_root) {
  HomomorphismScratch scratch;
  return HomomorphismExists(q, p, root_to_root, &scratch);
}

}  // namespace tpc
