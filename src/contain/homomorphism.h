// Pattern-to-pattern homomorphisms.
//
// A homomorphism from q to p witnesses containment: it maps nodes of q to
// nodes of p such that labels are respected (wildcards of q match anything),
// child edges map to child edges, and descendant edges map to proper
// ancestor/descendant pairs.  Existence of a homomorphism is *sound* for
// containment (L(p) ⊆ L(q)) in every fragment and *complete* for
// wildcard-free q [Miklau & Suciu], which is how the minimal-canonical-tree
// test of Theorem 3.2(3) can also be phrased.

#ifndef TPC_CONTAIN_HOMOMORPHISM_H_
#define TPC_CONTAIN_HOMOMORPHISM_H_

#include <cstdint>
#include <vector>

#include "engine/tracked.h"
#include "pattern/tpq.h"

namespace tpc {

/// Reusable DP tables for `HomomorphismExists`.  Callers that decide many
/// pairs in a loop (the Obs. 2.3 dispatcher fast path, minimization) lease
/// one from `EngineContext::scratch()` so the check stops allocating per
/// call; the buffers grow to the largest instance seen.  Not thread-safe:
/// one per worker (the scratch pool hands out disjoint instances).
struct HomomorphismScratch {
  std::vector<char> sat;
  std::vector<char> below;
  /// High-water accounting for the two q×p tables, attached to the budget of
  /// whichever context leased this scratch.  The charge persists while the
  /// scratch sits in the pool — mirroring the retained capacity — and is
  /// released when the owning context dies.
  TrackedBytes tracked;

  /// Accounts the tables for a (q, p) instance against `budget` before
  /// `HomomorphismExists` resizes them.  False means the memory budget
  /// refused: the caller must not run the check.
  bool ChargeTables(const Tpq& q, const Tpq& p, Budget* budget) {
    tracked.Attach(budget);
    return tracked.Reserve(2 * static_cast<int64_t>(q.size()) * p.size());
  }
};

/// True iff there is a homomorphism from q into p.  If `root_to_root`, the
/// root of q must map to the root of p (strong-containment flavour).
bool HomomorphismExists(const Tpq& q, const Tpq& p, bool root_to_root);

/// As above, with caller-provided scratch tables (resized as needed).
bool HomomorphismExists(const Tpq& q, const Tpq& p, bool root_to_root,
                        HomomorphismScratch* scratch);

}  // namespace tpc

#endif  // TPC_CONTAIN_HOMOMORPHISM_H_
