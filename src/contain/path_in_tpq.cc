// Theorem 3.2(1): weak containment of PQ(/,//,*) in TPQ(/,//,*) in
// polynomial time, following Lemmas B.1 and B.2 of the paper.
//
// The algorithm recurses on islands.  Writing p = w // p' with w the topmost
// island (a child-edge word) and t_w its unique canonical tree:
//   * if the topmost island of q does not embed into t_w, then (Lemma B.1)
//     L_w(p) ⊆ L_w(q) iff L_w(*^{|w|}(p')) ⊆ L_w(q);
//   * otherwise, with m the minimal depth at which q's topmost island embeds
//     into t_w, containment holds iff for every island root x hanging below
//     q's topmost island, L_w(cut^{m+d(x)}(p)) ⊆ L_w(subquery(x))
//     (Lemma B.2).
// All subproblems have the form (wildcard-prefixed suffix of p, island root
// of q), so memoization keeps the recursion polynomial.

#include <cassert>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "contain/containment.h"
#include "match/embedding.h"
#include "pattern/canonical.h"
#include "pattern/normalize.h"

namespace tpc {
namespace {

/// Extracts the topmost island of `q`'s subquery at `x` as a standalone
/// child-edge pattern, and lists the descendant-edge children hanging below
/// it together with their depths relative to `x`.
struct TopIsland {
  Tpq pattern;                      // the island, child edges only
  std::vector<NodeId> below;        // island roots hanging below, ids in q
  std::vector<int32_t> below_depth; // depth of each, relative to x
};

TopIsland ExtractTopIsland(const Tpq& q, NodeId x) {
  TopIsland out;
  // Walk the island via child edges, building the island pattern in step.
  std::vector<std::pair<NodeId, NodeId>> queue;  // (q node, island parent)
  out.pattern.AddRoot(q.Label(x));
  std::map<NodeId, int32_t> rel_depth;
  rel_depth[x] = 0;
  queue.emplace_back(x, 0);
  for (size_t i = 0; i < queue.size(); ++i) {
    auto [v, island_node] = queue[i];
    for (NodeId c = q.FirstChild(v); c != kNoNode; c = q.NextSibling(c)) {
      if (q.Edge(c) == EdgeKind::kChild) {
        NodeId copy =
            out.pattern.AddChild(island_node, q.Label(c), EdgeKind::kChild);
        rel_depth[c] = rel_depth[v] + 1;
        queue.emplace_back(c, copy);
      } else {
        out.below.push_back(c);
        out.below_depth.push_back(rel_depth[v] + 1);
      }
    }
  }
  return out;
}

class PathInTpqSolver {
 public:
  PathInTpqSolver(const Tpq& q, LabelPool* pool, EngineContext* ctx)
      : q_(Normalize(q)), pool_(pool), ctx_(ctx),
        bottom_(pool->Fresh("_bot")) {}

  /// Decides L_w(p) ⊆ L_w(subquery_q(x)) for a path query p.  Bails out
  /// (returning false) once the engine budget is exhausted; the dispatcher
  /// translates that into Outcome::kResourceExhausted.
  bool Solve(const Tpq& p, NodeId x) {
    auto key = std::make_pair(p.ToString(*pool_), x);
    auto it = memo_.find(key);
    if (it != memo_.end()) return it->second;
    bool result = Compute(p, x);
    memo_.emplace(std::move(key), result);
    return result;
  }

 private:
  bool Compute(const Tpq& p, NodeId x) {
    assert(IsPathQuery(p));
    if (!ctx_->budget().Charge(1 + p.size() + q_.size())) return false;
    // Find the first descendant edge along the path; path node ids are
    // consecutive along the chain.
    int32_t first_desc = -1;
    for (NodeId v = 1; v < p.size(); ++v) {
      if (p.Edge(v) == EdgeKind::kDescendant) {
        first_desc = v;
        break;
      }
    }
    if (first_desc < 0) {
      // p is a single island: it has a unique canonical tree.
      Tree t = MinimalCanonicalTree(p, bottom_);
      return MatchesWeak(q_.Subquery(x), t, &ctx_->stats());
    }
    int32_t w_len = first_desc;  // |w|: nodes 0 .. first_desc-1
    // The canonical tree of w is the word t_w.
    Tree t_w;
    for (NodeId v = 0; v < w_len; ++v) {
      LabelId label = p.IsWildcard(v) ? bottom_ : p.Label(v);
      if (v == 0) {
        t_w.AddRoot(label);
      } else {
        t_w.AddChild(v - 1, label);
      }
    }
    TopIsland top = ExtractTopIsland(q_, x);
    Matcher matcher(top.pattern, t_w, &ctx_->stats());
    int32_t m = -1;
    for (NodeId i = 0; i < t_w.size(); ++i) {
      if (matcher.SatAt(0, i)) {
        m = i;
        break;
      }
    }
    if (m < 0) {
      // Lemma B.1: q's topmost island cannot use the letters of w; drop w.
      Tpq rest = PrependWildcards(p.Subquery(first_desc), w_len);
      return Solve(rest, x);
    }
    // Lemma B.2: recurse below the topmost island of q.
    for (size_t i = 0; i < top.below.size(); ++i) {
      int32_t cut = m + top.below_depth[i];
      assert(cut <= w_len);
      if (!Solve(p.Subquery(cut), top.below[i])) return false;
    }
    return true;
  }

  Tpq q_;
  LabelPool* pool_;
  EngineContext* ctx_;
  LabelId bottom_;
  std::map<std::pair<std::string, NodeId>, bool> memo_;
};

}  // namespace

bool PathInTpqContained(const Tpq& p, const Tpq& q, LabelPool* pool,
                        EngineContext* ctx) {
  assert(IsPathQuery(p));
  return PathInTpqSolver(q, pool, ctx).Solve(p, 0);
}

}  // namespace tpc
