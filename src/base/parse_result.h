// Minimal error-or-value result type used by the parsers in this library.
//
// The public API does not throw across module boundaries (Google style);
// parsers report malformed input through `ParseResult<T>`.

#ifndef TPC_BASE_PARSE_RESULT_H_
#define TPC_BASE_PARSE_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace tpc {

/// Result of parsing: either a value or an error message with an offset into
/// the input where the problem was detected.
template <typename T>
class ParseResult {
 public:
  static ParseResult Ok(T value) {
    ParseResult r;
    r.value_ = std::move(value);
    return r;
  }

  static ParseResult Error(std::string message, size_t offset = 0) {
    ParseResult r;
    r.error_ = std::move(message);
    r.offset_ = offset;
    return r;
  }

  bool ok() const { return value_.has_value(); }

  /// The parsed value.  Precondition: `ok()`.
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& value() {
    assert(ok());
    return *value_;
  }

  /// Human-readable error.  Precondition: `!ok()`.
  const std::string& error() const { return error_; }
  size_t error_offset() const { return offset_; }

 private:
  ParseResult() = default;
  std::optional<T> value_;
  std::string error_;
  size_t offset_ = 0;
};

}  // namespace tpc

#endif  // TPC_BASE_PARSE_RESULT_H_
