// Minimal error-or-value result type used by the parsers in this library.
//
// The public API does not throw across module boundaries (Google style);
// parsers report malformed input through `ParseResult<T>`.

#ifndef TPC_BASE_PARSE_RESULT_H_
#define TPC_BASE_PARSE_RESULT_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace tpc {

/// A parse failure located in the original input: the message plus 1-based
/// line/column derived from the byte offset.  This is what the checked
/// parse entry points (`ParseTpqChecked` etc.) hand to callers that face
/// untrusted input — the CLI prints it and exits instead of aborting.
struct ParseDiagnostic {
  std::string message;
  size_t offset = 0;
  int line = 1;
  int column = 1;

  /// "line L, column C: message" — the CLI's error format.
  std::string ToString() const {
    return "line " + std::to_string(line) + ", column " +
           std::to_string(column) + ": " + message;
  }
};

/// Locates `offset` in `input` (newlines end lines; tabs count one column)
/// and packages the message with its 1-based line/column.  An offset past
/// the end points just after the last byte — where truncated input fails.
inline ParseDiagnostic DiagnoseAt(std::string_view input, std::string message,
                                  size_t offset) {
  ParseDiagnostic d;
  d.message = std::move(message);
  d.offset = offset > input.size() ? input.size() : offset;
  for (size_t i = 0; i < d.offset; ++i) {
    if (input[i] == '\n') {
      ++d.line;
      d.column = 1;
    } else {
      ++d.column;
    }
  }
  return d;
}

/// Result of parsing: either a value or an error message with an offset into
/// the input where the problem was detected.
template <typename T>
class ParseResult {
 public:
  static ParseResult Ok(T value) {
    ParseResult r;
    r.value_ = std::move(value);
    return r;
  }

  static ParseResult Error(std::string message, size_t offset = 0) {
    ParseResult r;
    r.error_ = std::move(message);
    r.offset_ = offset;
    return r;
  }

  bool ok() const { return value_.has_value(); }

  /// The parsed value.  Precondition: `ok()`.
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T& value() {
    assert(ok());
    return *value_;
  }

  /// Human-readable error.  Precondition: `!ok()`.
  const std::string& error() const { return error_; }
  size_t error_offset() const { return offset_; }

 private:
  ParseResult() = default;
  std::optional<T> value_;
  std::string error_;
  size_t offset_ = 0;
};

}  // namespace tpc

#endif  // TPC_BASE_PARSE_RESULT_H_
