#include "base/label.h"

namespace tpc {

LabelPool::LabelPool() {
  // The wildcard is pre-interned so that kWildcard == 0 in every pool.
  Intern("*");
}

LabelId LabelPool::Intern(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId LabelPool::Find(std::string_view name) const {
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNoLabel : it->second;
}

LabelId LabelPool::Fresh(std::string_view prefix) {
  std::string candidate(prefix);
  if (ids_.count(candidate) == 0) return Intern(candidate);
  // Numeric suffixes keep Fresh amortized O(1) even when called once per
  // decision on a long-lived pool (the containment procedures mint a fresh
  // bottom label per call).
  while (true) {
    std::string numbered =
        candidate + "'" + std::to_string(fresh_counter_++);
    if (ids_.count(numbered) == 0) return Intern(numbered);
  }
}

}  // namespace tpc
