#include "base/label.h"

#include <atomic>

namespace tpc {

uint64_t LabelPool::NextGeneration() {
  static std::atomic<uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

LabelPool::LabelPool() : generation_(NextGeneration()) {
  // The wildcard is pre-interned so that kWildcard == 0 in every pool.
  Intern("*");
}

LabelPool::LabelPool(LabelPool&& other) noexcept {
  std::lock_guard<std::mutex> lock(other.mu_);
  names_ = std::move(other.names_);
  ids_ = std::move(other.ids_);
  fresh_counter_ = other.fresh_counter_;
  // The generation travels with the mapping; the moved-from pool is a new
  // (empty) mapping and must not keep answering for the old identity.
  generation_ = other.generation_;
  other.generation_ = NextGeneration();
}

LabelPool& LabelPool::operator=(LabelPool&& other) noexcept {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  names_ = std::move(other.names_);
  ids_ = std::move(other.ids_);
  fresh_counter_ = other.fresh_counter_;
  generation_ = other.generation_;
  other.generation_ = NextGeneration();
  return *this;
}

LabelId LabelPool::InternLocked(std::string_view name) {
  auto it = ids_.find(std::string(name));
  if (it != ids_.end()) return it->second;
  LabelId id = static_cast<LabelId>(names_.size());
  names_.emplace_back(name);
  ids_.emplace(names_.back(), id);
  return id;
}

LabelId LabelPool::Intern(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return InternLocked(name);
}

LabelId LabelPool::Find(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = ids_.find(std::string(name));
  return it == ids_.end() ? kNoLabel : it->second;
}

const std::string& LabelPool::Name(LabelId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  // Safe to hand the reference out past the unlock: deque elements never
  // move and interned spellings are never mutated.
  return names_[id];
}

size_t LabelPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return names_.size();
}

LabelId LabelPool::Fresh(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::string candidate(prefix);
  if (ids_.count(candidate) == 0) return InternLocked(candidate);
  // Numeric suffixes keep Fresh amortized O(1) even when called once per
  // decision on a long-lived pool (the containment procedures mint a fresh
  // bottom label per call).
  while (true) {
    std::string numbered =
        candidate + "'" + std::to_string(fresh_counter_++);
    if (ids_.count(numbered) == 0) return InternLocked(numbered);
  }
}

}  // namespace tpc
