// Label interning for tree and pattern alphabets.
//
// Trees, patterns, DTDs and automata in this library all refer to labels by
// small integer ids (`LabelId`).  A `LabelPool` owns the bidirectional mapping
// between ids and their textual spelling.  The wildcard of tree pattern
// queries is a distinguished, pre-interned label (`kWildcard`): patterns may
// carry it, trees never do (Definition 2.1 of the paper).

#ifndef TPC_BASE_LABEL_H_
#define TPC_BASE_LABEL_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

namespace tpc {

/// Interned label identifier.  Ids are dense and start at 0.
using LabelId = uint32_t;

/// The wildcard label `*`.  Always interned with id 0 in every pool.
inline constexpr LabelId kWildcard = 0;

/// An invalid/absent label, used as a sentinel.
inline constexpr LabelId kNoLabel = UINT32_MAX;

/// Owns the mapping between label spellings and dense `LabelId`s.
///
/// Thread-safe: the service layer fans one batch out over pool workers that
/// each mint fresh bottom/root labels mid-decision, so interning takes an
/// internal mutex.  Hot loops never touch the pool — they compare `LabelId`s
/// — so the lock sits on parse/setup paths only.  Spellings are stored in a
/// deque: the reference returned by `Name` stays valid across later interns.
class LabelPool {
 public:
  LabelPool();

  /// Movable (workload structs carry their pool by value); moving is a
  /// setup-path operation and must not race with concurrent use.
  LabelPool(LabelPool&& other) noexcept;
  LabelPool& operator=(LabelPool&& other) noexcept;

  /// Returns the id for `name`, interning it if new.
  LabelId Intern(std::string_view name);

  /// Returns the id for `name` or `kNoLabel` if never interned.
  LabelId Find(std::string_view name) const;

  /// Returns the spelling of `id`.  Precondition: `id < size()`.  The
  /// reference is stable: interning never moves stored spellings.
  const std::string& Name(LabelId id) const;

  /// Number of interned labels (including the wildcard).
  size_t size() const;

  /// Returns a label id guaranteed to be distinct from every id interned so
  /// far; spelled `prefix`, `prefix'`, `prefix''`, ... until fresh.
  LabelId Fresh(std::string_view prefix);

  /// Process-unique identity of this pool's id ↔ spelling mapping.  Two
  /// pools never share a generation, and moving a pool moves the generation
  /// *with the mapping* (the moved-from pool gets a fresh one).  Caches keyed
  /// on hashes of interned ids — the minimize memo, the compiled-program
  /// pool — fold the generation into their keys, so entries built against
  /// one pool can never be served for numerically identical ids of another
  /// (e.g. after a workload move-assigns a fresh pool between batches).
  uint64_t generation() const { return generation_; }

 private:
  LabelId InternLocked(std::string_view name);
  static uint64_t NextGeneration();

  mutable std::mutex mu_;
  std::deque<std::string> names_;
  std::unordered_map<std::string, LabelId> ids_;
  uint64_t fresh_counter_ = 0;
  uint64_t generation_ = 0;
};

}  // namespace tpc

#endif  // TPC_BASE_LABEL_H_
