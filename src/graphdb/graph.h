// Node-labelled graphs and typed (node- and edge-labelled) graphs
// (Section 7 of the paper).
//
// A `Graph` abstracts a graph database with node types only; a `TypedGraph`
// additionally labels edges and translates to a node-labelled graph G^N by
// subdividing every edge with a node typed (edge label, target type)
// (Section 7.2).

#ifndef TPC_GRAPHDB_GRAPH_H_
#define TPC_GRAPHDB_GRAPH_H_

#include <cstdint>
#include <vector>

#include "base/label.h"
#include "tree/tree.h"

namespace tpc {

/// A node-labelled directed graph, optionally rooted.
class Graph {
 public:
  NodeId AddNode(LabelId type);
  void AddEdge(NodeId from, NodeId to);
  void SetRoot(NodeId root) { root_ = root; }

  int32_t size() const { return static_cast<int32_t>(types_.size()); }
  LabelId Type(NodeId v) const { return types_[v]; }
  const std::vector<NodeId>& Successors(NodeId v) const { return out_[v]; }
  NodeId root() const { return root_; }
  bool HasRoot() const { return root_ != kNoNode; }

  /// Reachability closure: reach[u * size() + v] iff a directed path of
  /// length >= 1 leads from u to v.
  std::vector<char> ProperReachability() const;

  /// The (finite, depth-bounded) unfolding of the graph from `start` as a
  /// tree: each tree node is a copy of a graph node; children enumerate the
  /// successors.  `depth` bounds the unfolding (Proposition 7.1 prunes the
  /// infinite unfolding to the image of an embedding, so a bound suffices
  /// for testing).
  Tree Unfold(NodeId start, int32_t depth) const;

  /// Imports a tree as a graph (each tree edge becomes a directed edge,
  /// the tree root becomes the graph root).
  static Graph FromTree(const Tree& t);

 private:
  std::vector<LabelId> types_;
  std::vector<std::vector<NodeId>> out_;
  NodeId root_ = kNoNode;
};

/// A typed graph over (Σ edge labels, Γ node types).
class TypedGraph {
 public:
  NodeId AddNode(LabelId type);
  void AddEdge(NodeId from, LabelId edge_label, NodeId to);
  void SetRoot(NodeId root) { root_ = root; }

  int32_t size() const { return static_cast<int32_t>(types_.size()); }
  LabelId Type(NodeId v) const { return types_[v]; }

  struct Edge {
    NodeId from;
    LabelId label;
    NodeId to;
  };
  const std::vector<Edge>& edges() const { return edges_; }

  /// The node-labelled translation G^N of Section 7.2: every edge (u,a,v)
  /// becomes a fresh node typed `pair_type(a, type(v))` (interned in `pool`
  /// as "a:type") spliced between u and v.
  Graph ToNodeLabelled(LabelPool* pool) const;

  NodeId root() const { return root_; }

 private:
  std::vector<LabelId> types_;
  std::vector<Edge> edges_;
  NodeId root_ = kNoNode;
};

/// Interns the paired symbol "(e,t)" used by graph DTDs and G^N.
LabelId PairType(LabelId edge_label, LabelId node_type, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_GRAPHDB_GRAPH_H_
