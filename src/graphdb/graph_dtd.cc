#include "graphdb/graph_dtd.h"

#include <algorithm>
#include <map>
#include <set>

namespace tpc {

bool UnorderedAccepts(const Nfa& nfa, std::vector<Symbol> word,
                      EngineContext* ctx) {
  std::sort(word.begin(), word.end());
  // Distinct symbols and their multiplicities.
  std::vector<Symbol> symbols;
  std::vector<int32_t> counts;
  for (Symbol s : word) {
    if (!symbols.empty() && symbols.back() == s) {
      ++counts.back();
    } else {
      symbols.push_back(s);
      counts.push_back(1);
    }
  }
  // Memoized search over (NFA state, remaining multiset).
  std::set<std::pair<int32_t, std::vector<int32_t>>> visited;
  std::vector<std::pair<int32_t, std::vector<int32_t>>> stack;
  stack.emplace_back(nfa.initial, counts);
  visited.insert(stack.back());
  EngineStats& stats = ctx->stats();
  while (!stack.empty()) {
    if (!ctx->budget().Charge(1)) return false;
    stats.horizontal_nodes.fetch_add(1, std::memory_order_relaxed);
    auto [q, remaining] = stack.back();
    stack.pop_back();
    bool done = std::all_of(remaining.begin(), remaining.end(),
                            [](int32_t c) { return c == 0; });
    if (done && nfa.accepting[q]) return true;
    for (const auto& [s, target] : nfa.transitions[q]) {
      auto it = std::lower_bound(symbols.begin(), symbols.end(), s);
      if (it == symbols.end() || *it != s) continue;
      size_t idx = static_cast<size_t>(it - symbols.begin());
      if (remaining[idx] == 0) continue;
      std::vector<int32_t> next = remaining;
      --next[idx];
      auto key = std::make_pair(target, std::move(next));
      if (visited.insert(key).second) stack.push_back(std::move(key));
    }
  }
  return false;
}

GraphMatchResult GraphSatisfiesDtdNodesOnly(const Graph& g, const Dtd& dtd,
                                            EngineContext* ctx) {
  GraphMatchResult out;
  auto exhausted = [&] {
    if (!ctx->budget().Exhausted()) return false;
    out.outcome = Outcome::kResourceExhausted;
    out.reason = ctx->budget().reason();
    out.matched = false;
    return true;
  };
  if (g.HasRoot() && !dtd.IsStart(g.Type(g.root()))) return out;
  for (NodeId u = 0; u < g.size(); ++u) {
    if (!dtd.InAlphabet(g.Type(u))) return out;
    std::vector<Symbol> types;
    for (NodeId v : g.Successors(u)) types.push_back(g.Type(v));
    if (!UnorderedAccepts(dtd.RuleNfa(g.Type(u)), std::move(types), ctx)) {
      exhausted();
      return out;
    }
  }
  out.matched = true;
  return out;
}

GraphMatchResult TypedGraphSatisfiesDtd(const TypedGraph& g, const Dtd& dtd,
                                        LabelPool* pool, EngineContext* ctx) {
  GraphMatchResult out;
  auto exhausted = [&] {
    if (!ctx->budget().Exhausted()) return false;
    out.outcome = Outcome::kResourceExhausted;
    out.reason = ctx->budget().reason();
    out.matched = false;
    return true;
  };
  if (g.root() != kNoNode && !dtd.IsStart(g.Type(g.root()))) return out;
  // Node condition: the multiset of (edge label, target type) pairs of each
  // node's outgoing edges permutes into the node type's content model.
  std::map<NodeId, std::vector<Symbol>> outgoing;
  for (const TypedGraph::Edge& e : g.edges()) {
    outgoing[e.from].push_back(PairType(e.label, g.Type(e.to), pool));
  }
  for (NodeId u = 0; u < g.size(); ++u) {
    if (!dtd.InAlphabet(g.Type(u))) return out;
    std::vector<Symbol> word;
    auto it = outgoing.find(u);
    if (it != outgoing.end()) word = it->second;
    if (!UnorderedAccepts(dtd.RuleNfa(g.Type(u)), std::move(word), ctx)) {
      exhausted();
      return out;
    }
  }
  // Edge condition: each pair symbol's rule accepts the one-letter word of
  // the target type.
  for (const TypedGraph::Edge& e : g.edges()) {
    LabelId pair = PairType(e.label, g.Type(e.to), pool);
    if (!dtd.InAlphabet(pair)) return out;
    std::vector<Symbol> word = {g.Type(e.to)};
    if (!dtd.RuleNfa(pair).Accepts(word)) return out;
  }
  out.matched = true;
  return out;
}

bool UnorderedAccepts(const Nfa& nfa, std::vector<Symbol> word) {
  return UnorderedAccepts(nfa, std::move(word), &EngineContext::Default());
}

bool GraphSatisfiesDtdNodesOnly(const Graph& g, const Dtd& dtd) {
  return GraphSatisfiesDtdNodesOnly(g, dtd, &EngineContext::Default()).matched;
}

bool TypedGraphSatisfiesDtd(const TypedGraph& g, const Dtd& dtd,
                            LabelPool* pool) {
  return TypedGraphSatisfiesDtd(g, dtd, pool, &EngineContext::Default())
      .matched;
}

}  // namespace tpc
