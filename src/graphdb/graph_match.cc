#include "graphdb/graph_match.h"

#include <cassert>
#include <vector>

namespace tpc {

namespace {

/// sat[v * |g| + x]: subquery(v) embeds with v -> graph node x.
std::vector<char> ComputeSat(const Tpq& q, const Graph& g) {
  size_t n = static_cast<size_t>(g.size());
  std::vector<char> reach = g.ProperReachability();
  std::vector<char> sat(static_cast<size_t>(q.size()) * n, 0);
  for (NodeId v = q.size() - 1; v >= 0; --v) {
    for (NodeId x = 0; x < g.size(); ++x) {
      bool ok = q.IsWildcard(v) || q.Label(v) == g.Type(x);
      for (NodeId z = q.FirstChild(v); z != kNoNode && ok;
           z = q.NextSibling(z)) {
        bool found = false;
        if (q.Edge(z) == EdgeKind::kChild) {
          for (NodeId y : g.Successors(x)) {
            if (sat[z * n + y]) {
              found = true;
              break;
            }
          }
        } else {
          for (NodeId y = 0; y < g.size() && !found; ++y) {
            found = reach[static_cast<size_t>(x) * n + y] && sat[z * n + y];
          }
        }
        ok = found;
      }
      sat[v * n + x] = ok;
    }
  }
  return sat;
}

}  // namespace

bool MatchesWeakGraph(const Tpq& q, const Graph& g) {
  if (q.empty() || g.size() == 0) return false;
  std::vector<char> sat = ComputeSat(q, g);
  for (NodeId x = 0; x < g.size(); ++x) {
    if (sat[static_cast<size_t>(x)]) return true;
  }
  return false;
}

bool MatchesStrongGraph(const Tpq& q, const Graph& g) {
  assert(g.HasRoot());
  if (q.empty() || g.size() == 0) return false;
  std::vector<char> sat = ComputeSat(q, g);
  return sat[static_cast<size_t>(g.root())] != 0;
}

}  // namespace tpc
