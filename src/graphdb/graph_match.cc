#include "graphdb/graph_match.h"

#include <cassert>
#include <optional>
#include <vector>

#include "engine/tracked.h"

namespace tpc {

namespace {

/// sat[v * |g| + x]: subquery(v) embeds with v -> graph node x.
/// Returns nullopt when the context budget runs out mid-table.
/// `tracked` accounts the reachability closure (n*n) and DP table (|q|*n)
/// bytes; the caller owns it so the bytes are released on return.
std::optional<std::vector<char>> ComputeSat(const Tpq& q, const Graph& g,
                                            EngineContext* ctx,
                                            TrackedBytes* tracked) {
  size_t n = static_cast<size_t>(g.size());
  // The reachability closure is the other super-linear ingredient; charge
  // it against the budget like a DP row per graph node.
  if (!ctx->budget().Charge(static_cast<int64_t>(n) * g.size()) ||
      !tracked->Charge(static_cast<int64_t>(n) * g.size())) {
    return std::nullopt;
  }
  std::vector<char> reach = g.ProperReachability();
  if (!tracked->Charge(static_cast<int64_t>(q.size()) * g.size())) {
    return std::nullopt;
  }
  std::vector<char> sat(static_cast<size_t>(q.size()) * n, 0);
  for (NodeId v = q.size() - 1; v >= 0; --v) {
    if (!ctx->budget().Charge(static_cast<int64_t>(n))) return std::nullopt;
    ctx->stats().graph_dp_cells.fetch_add(static_cast<int64_t>(n),
                                          std::memory_order_relaxed);
    for (NodeId x = 0; x < g.size(); ++x) {
      bool ok = q.IsWildcard(v) || q.Label(v) == g.Type(x);
      for (NodeId z = q.FirstChild(v); z != kNoNode && ok;
           z = q.NextSibling(z)) {
        bool found = false;
        if (q.Edge(z) == EdgeKind::kChild) {
          for (NodeId y : g.Successors(x)) {
            if (sat[z * n + y]) {
              found = true;
              break;
            }
          }
        } else {
          for (NodeId y = 0; y < g.size() && !found; ++y) {
            found = reach[static_cast<size_t>(x) * n + y] && sat[z * n + y];
          }
        }
        ok = found;
      }
      sat[v * n + x] = ok;
    }
  }
  return sat;
}

/// Stamps `out` as resource-exhausted with the budget's recorded reason.
void MarkExhausted(GraphMatchResult* out, EngineContext* ctx) {
  out->outcome = Outcome::kResourceExhausted;
  const ExhaustionReason r = ctx->budget().reason();
  out->reason = r == ExhaustionReason::kNone ? ExhaustionReason::kSteps : r;
}

}  // namespace

GraphMatchResult MatchesWeakGraph(const Tpq& q, const Graph& g,
                                  EngineContext* ctx) {
  GraphMatchResult out;
  if (q.empty() || g.size() == 0) return out;
  TrackedBytes tracked(&ctx->budget());
  std::optional<std::vector<char>> sat = ComputeSat(q, g, ctx, &tracked);
  if (!sat.has_value()) {
    MarkExhausted(&out, ctx);
    return out;
  }
  for (NodeId x = 0; x < g.size(); ++x) {
    if ((*sat)[static_cast<size_t>(x)]) {
      out.matched = true;
      return out;
    }
  }
  return out;
}

GraphMatchResult MatchesStrongGraph(const Tpq& q, const Graph& g,
                                    EngineContext* ctx) {
  assert(g.HasRoot());
  GraphMatchResult out;
  if (q.empty() || g.size() == 0) return out;
  TrackedBytes tracked(&ctx->budget());
  std::optional<std::vector<char>> sat = ComputeSat(q, g, ctx, &tracked);
  if (!sat.has_value()) {
    MarkExhausted(&out, ctx);
    return out;
  }
  out.matched = (*sat)[static_cast<size_t>(g.root())] != 0;
  return out;
}

bool MatchesWeakGraph(const Tpq& q, const Graph& g) {
  return MatchesWeakGraph(q, g, &EngineContext::Default()).matched;
}

bool MatchesStrongGraph(const Tpq& q, const Graph& g) {
  return MatchesStrongGraph(q, g, &EngineContext::Default()).matched;
}

}  // namespace tpc
