#include "graphdb/graph.h"

#include <cassert>

namespace tpc {

NodeId Graph::AddNode(LabelId type) {
  types_.push_back(type);
  out_.emplace_back();
  return static_cast<NodeId>(types_.size()) - 1;
}

void Graph::AddEdge(NodeId from, NodeId to) {
  assert(from >= 0 && from < size() && to >= 0 && to < size());
  out_[from].push_back(to);
}

std::vector<char> Graph::ProperReachability() const {
  size_t n = static_cast<size_t>(size());
  std::vector<char> reach(n * n, 0);
  for (NodeId u = 0; u < size(); ++u) {
    // BFS from u along edges.
    std::vector<NodeId> stack = {u};
    std::vector<char> seen(n, 0);
    while (!stack.empty()) {
      NodeId x = stack.back();
      stack.pop_back();
      for (NodeId y : out_[x]) {
        if (!seen[y]) {
          seen[y] = 1;
          reach[u * n + y] = 1;
          stack.push_back(y);
        }
      }
    }
  }
  return reach;
}

Tree Graph::Unfold(NodeId start, int32_t depth) const {
  Tree t(types_[start]);
  // (tree node, graph node, remaining depth)
  std::vector<std::tuple<NodeId, NodeId, int32_t>> queue = {{0, start, depth}};
  for (size_t i = 0; i < queue.size(); ++i) {
    auto [tv, gv, d] = queue[i];
    if (d == 0) continue;
    for (NodeId succ : out_[gv]) {
      NodeId child = t.AddChild(tv, types_[succ]);
      queue.emplace_back(child, succ, d - 1);
    }
  }
  return t;
}

Graph Graph::FromTree(const Tree& t) {
  Graph g;
  for (NodeId v = 0; v < t.size(); ++v) g.AddNode(t.Label(v));
  for (NodeId v = 1; v < t.size(); ++v) g.AddEdge(t.Parent(v), v);
  g.SetRoot(0);
  return g;
}

NodeId TypedGraph::AddNode(LabelId type) {
  types_.push_back(type);
  return static_cast<NodeId>(types_.size()) - 1;
}

void TypedGraph::AddEdge(NodeId from, LabelId edge_label, NodeId to) {
  assert(from >= 0 && from < size() && to >= 0 && to < size());
  edges_.push_back({from, edge_label, to});
}

LabelId PairType(LabelId edge_label, LabelId node_type, LabelPool* pool) {
  return pool->Intern(pool->Name(edge_label) + ":" + pool->Name(node_type));
}

Graph TypedGraph::ToNodeLabelled(LabelPool* pool) const {
  Graph g;
  for (NodeId v = 0; v < size(); ++v) g.AddNode(types_[v]);
  for (const Edge& e : edges_) {
    NodeId mid = g.AddNode(PairType(e.label, types_[e.to], pool));
    g.AddEdge(e.from, mid);
    g.AddEdge(mid, e.to);
  }
  if (root_ != kNoNode) g.SetRoot(root_);
  return g;
}

}  // namespace tpc
