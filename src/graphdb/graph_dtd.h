// DTD semantics over graphs (Section 7.2).
//
// Under the *nodes-only* semantics, a graph satisfies a DTD if, for every
// node, the multiset of its successors' types can be ordered into a word of
// the node type's content model (and the root, if any, is a start symbol).
// Testing unordered membership is NP-complete in general [30]; we implement
// an exact memoized search, which is fine at test scale.
//
// Under the *nodes/edges* semantics, typed graphs are checked against graph
// DTDs over Γ ∪ (Σ × Γ) as in Example 7.3.

#ifndef TPC_GRAPHDB_GRAPH_DTD_H_
#define TPC_GRAPHDB_GRAPH_DTD_H_

#include "dtd/dtd.h"
#include "engine/engine.h"
#include "graphdb/graph.h"
#include "graphdb/graph_match.h"  // GraphMatchResult

namespace tpc {

/// Does the multiset of `word`'s symbols permute into a word of L(nfa)?
/// The ctx overload charges the context budget per explored (state,
/// multiset) node and bails out (false) once exhausted — callers translate
/// via `ctx->budget().Exhausted()`.
bool UnorderedAccepts(const Nfa& nfa, std::vector<Symbol> word,
                      EngineContext* ctx);
bool UnorderedAccepts(const Nfa& nfa, std::vector<Symbol> word);

/// Nodes-only semantics: does `g` satisfy `dtd`?
GraphMatchResult GraphSatisfiesDtdNodesOnly(const Graph& g, const Dtd& dtd,
                                            EngineContext* ctx);
bool GraphSatisfiesDtdNodesOnly(const Graph& g, const Dtd& dtd);

/// Nodes/edges semantics: does the typed graph satisfy the graph DTD?
/// The DTD must use pair symbols as produced by `PairType` for its
/// (edge, type) rules.
GraphMatchResult TypedGraphSatisfiesDtd(const TypedGraph& g, const Dtd& dtd,
                                        LabelPool* pool, EngineContext* ctx);
bool TypedGraphSatisfiesDtd(const TypedGraph& g, const Dtd& dtd,
                            LabelPool* pool);

}  // namespace tpc

#endif  // TPC_GRAPHDB_GRAPH_DTD_H_
