// TPQ embeddings on node-labelled graphs (Section 7.1).
//
// Same as tree embeddings except that descendant edges require a directed
// path of length >= 1 in the graph.  The dynamic program recurses over the
// pattern (a tree, hence acyclic) so graph cycles are unproblematic.

#ifndef TPC_GRAPHDB_GRAPH_MATCH_H_
#define TPC_GRAPHDB_GRAPH_MATCH_H_

#include "engine/engine.h"
#include "graphdb/graph.h"
#include "pattern/tpq.h"

namespace tpc {

/// A graph-side decision made under an engine context.  `matched` is only
/// meaningful when `outcome` is kDecided.
struct GraphMatchResult {
  bool matched = false;
  Outcome outcome = Outcome::kDecided;
  /// Which resource ran out (kNone while decided).
  ExhaustionReason reason = ExhaustionReason::kNone;
};

/// True iff a weak embedding of q into the graph exists.  The ctx overload
/// honours the context budget and counts DP cells.
GraphMatchResult MatchesWeakGraph(const Tpq& q, const Graph& g,
                                  EngineContext* ctx);
bool MatchesWeakGraph(const Tpq& q, const Graph& g);

/// True iff a strong embedding exists (root of q maps to the graph root).
/// Precondition: g.HasRoot().
GraphMatchResult MatchesStrongGraph(const Tpq& q, const Graph& g,
                                    EngineContext* ctx);
bool MatchesStrongGraph(const Tpq& q, const Graph& g);

}  // namespace tpc

#endif  // TPC_GRAPHDB_GRAPH_MATCH_H_
