// The engine layer: one context object carrying the resource budget, the
// instrumentation counters and the thread pool that every decision procedure
// in this library threads through.
//
// The paper's message is a complexity classification — some fragment pairs
// are in P, the general problems are coNP-/EXPTIME-complete — and the engine
// makes that classification observable and survivable at runtime:
//
//   * the `Budget` turns "this instance is in the hard regime" into a
//     `Outcome::kResourceExhausted` result instead of a hang;
//   * the `EngineStats` counters report which regime an instance landed in
//     (which dispatcher algorithm ran, how many canonical trees or schema
//     configurations were materialized);
//   * the `ThreadPool` parallelizes the embarrassingly parallel
//     canonical-model sweep of the coNP procedure.
//
// The pre-engine free functions (`Contains(p, q, mode, pool)` etc.) remain
// as thin wrappers over `EngineContext::Default()`, an unlimited,
// single-threaded context.

#ifndef TPC_ENGINE_ENGINE_H_
#define TPC_ENGINE_ENGINE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "engine/budget.h"
#include "engine/fault_injection.h"
#include "engine/scratch.h"
#include "engine/stats.h"
#include "engine/thread_pool.h"

namespace tpc {

/// Whether a decision procedure ran to completion.  On
/// `kResourceExhausted` the boolean answer fields of the result are
/// meaningless; only the counters are.
enum class Outcome {
  kDecided,
  kResourceExhausted,
};

/// Construction-time knobs of an `EngineContext`.
struct EngineConfig {
  /// Abstract work-step limit shared by all procedures; 0 = unlimited.
  int64_t step_limit = 0;
  /// Wall-clock deadline in milliseconds, armed at context construction (or
  /// `ResetBudget`); 0 = unlimited.
  int64_t deadline_ms = 0;
  /// Tracked-memory limit in bytes over the budget's `ChargeBytes` path
  /// (arena chunks, DP tables, configuration stores); 0 = unlimited.
  int64_t memory_limit = 0;
  /// Deterministic fault schedule (tests, chaos drills).  Inactive (the
  /// default) costs one relaxed null-pointer load per charge.
  FaultPlan fault_plan;
  /// Worker count (including the calling thread) for parallel sweeps.
  int threads = 1;
  /// The parallel canonical sweep engages only when the length-vector space
  /// has at least this many vectors — below it, chunk bookkeeping costs more
  /// than it buys.
  int64_t parallel_threshold = 2048;
  /// Length vectors per work chunk of the parallel sweep.
  int64_t parallel_chunk = 256;
};

/// The per-decision (or per-service-request) context: budget + counters +
/// worker pool.  Thread-safe where it must be: the budget and counters are
/// atomic, the pool serializes its own jobs.  Create one per request, or
/// reuse one and `ResetBudget()` between decisions.
class EngineContext {
 public:
  EngineContext();
  explicit EngineContext(const EngineConfig& config);
  ~EngineContext();

  EngineContext(const EngineContext&) = delete;
  EngineContext& operator=(const EngineContext&) = delete;

  const EngineConfig& config() const { return config_; }
  Budget& budget() { return budget_; }
  const Budget& budget() const { return budget_; }
  EngineStats& stats() { return stats_; }
  const EngineStats& stats() const { return stats_; }
  int threads() const { return config_.threads; }

  /// The worker pool, created lazily on first use.
  ThreadPool& pool();

  /// The context's reusable-scratch pool (homomorphism tables, matcher
  /// workspaces).  Scratch leased here lives at most as long as the context,
  /// so long-lived service threads do not pin peak-sized buffers forever the
  /// way a function-local `thread_local` would, and `TrackedBytes` members
  /// of pooled scratch stay attached to this context's budget.
  ScratchPool& scratch() { return scratch_; }

  /// Re-arms the step/deadline/memory limits from now, zeroes the
  /// step/byte counters and clears exhaustion and any pending cancellation
  /// (counters in `stats()` are left to accumulate; call `stats().Reset()`
  /// separately if per-decision counters are wanted).  Injected-fault
  /// counters are deliberately NOT reset — recovery after an injected fault
  /// must behave like recovery after a real one; use `ResetFaults()` to
  /// re-arm a plan.  Call only between decisions: re-arming while a
  /// decision (e.g. a parallel sweep) is still running is not a data race —
  /// the budget's fields are atomic — but the in-flight decision would then
  /// run under a mix of old and new limits.
  void ResetBudget();

  /// Requests cooperative cancellation of the decision in flight: every
  /// worker observes it at its next budget charge and unwinds, yielding a
  /// `kResourceExhausted` result with reason `kCancelled`.  Safe from any
  /// thread and from signal handlers (lock-free atomic operations only).
  /// `ResetBudget()` clears it.
  void Cancel() { budget_.Cancel(); }

  /// Re-arms the fault plan's one-shot counters so its faults fire again.
  void ResetFaults();

  /// The active fault injector, or null when `config().fault_plan` is
  /// inactive.
  FaultInjector* fault_injector() { return injector_.get(); }

  /// JSON dump of the counters plus the budget's step count.
  std::string StatsJson() const;

  /// The process-wide default context backing the legacy free functions:
  /// unlimited budget, one thread.
  static EngineContext& Default();

 private:
  EngineConfig config_;
  Budget budget_;
  // Declared after budget_: pooled scratch may hold TrackedBytes attached to
  // the budget, and members are destroyed in reverse declaration order.
  ScratchPool scratch_;
  EngineStats stats_;
  std::unique_ptr<FaultInjector> injector_;
  std::once_flag pool_once_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace tpc

#endif  // TPC_ENGINE_ENGINE_H_
