// A small work-stealing-free thread pool for the engine's parallel sweeps.
//
// The only primitive the decision procedures need is a dynamic parallel-for:
// the canonical-model sweep partitions its (bound+1)^k length-vector space
// into chunks and lets workers grab chunk indices from a shared atomic
// counter, so uneven chunk costs (early-exit checks, matcher variance)
// balance automatically.  Threads are started lazily on the first parallel
// call and live until the pool is destroyed.

#ifndef TPC_ENGINE_THREAD_POOL_H_
#define TPC_ENGINE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tpc {

/// A fixed-size pool running dynamic parallel-for jobs.  One job at a time:
/// `ParallelFor` must not be called concurrently or reentrantly on the same
/// pool (the engine serializes decisions per context).
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: the pool spawns
  /// `num_threads - 1` workers.  With `num_threads <= 1` everything runs
  /// inline and no thread is ever created.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return num_threads_; }

  /// Invokes `fn(i)` exactly once for every i in [0, n), distributing
  /// indices dynamically over the workers and the calling thread; returns
  /// when every invocation has finished.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

  /// Installs a hook run once per job by every participating worker, with
  /// its stable index (0 = the calling thread, 1..num_threads-1 = spawned
  /// workers), before it claims its first chunk.  Used by the fault
  /// injector to delay a chosen worker and manufacture straggler schedules.
  /// Set between jobs only; pass an empty function to clear.
  void set_worker_hook(std::function<void(int)> hook);

 private:
  void WorkerLoop(int worker_index);
  void EnsureStarted();  // spawns the workers on first use

  const int num_threads_;
  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait here for a new job
  std::condition_variable done_cv_;  // the caller waits here for completion
  bool shutdown_ = false;
  bool started_ = false;
  // Current job, written under mu_ before the generation bump; indices are
  // claimed lock-free from next_index_.
  const std::function<void(int64_t)>* job_fn_ = nullptr;
  int64_t job_size_ = 0;
  uint64_t job_generation_ = 0;
  std::function<void(int)> worker_hook_;  // written under mu_, between jobs
  std::atomic<int64_t> next_index_{0};
  int active_workers_ = 0;
  std::vector<std::thread> workers_;
};

}  // namespace tpc

#endif  // TPC_ENGINE_THREAD_POOL_H_
