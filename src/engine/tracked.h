// RAII byte-accounting shim over `Budget::ChargeBytes`.
//
// The big allocators (interner chunk arenas, schema configuration stores,
// DP tables, graphdb reachability matrices) account their growth at
// arena/table granularity through a `TrackedBytes` member: `Charge(n)`
// before growing, and the destructor releases everything that was charged,
// so a consumer that dies mid-decision (exhaustion, exception, early
// return) never leaks tracked bytes from the budget.
//
// `Reserve(total)` is the high-water variant for reused scratch buffers
// (matcher tables, per-symbol search scratch): it charges only the delta
// above the largest total seen, matching capacity-retaining containers that
// `clear()` between decisions without returning memory.

#ifndef TPC_ENGINE_TRACKED_H_
#define TPC_ENGINE_TRACKED_H_

#include <atomic>
#include <cstdint>

#include "engine/budget.h"

namespace tpc {

class TrackedBytes {
 public:
  TrackedBytes() = default;
  explicit TrackedBytes(Budget* budget) : budget_(budget) {}

  TrackedBytes(const TrackedBytes&) = delete;
  TrackedBytes& operator=(const TrackedBytes&) = delete;

  ~TrackedBytes() { ReleaseAll(); }

  /// Re-points the shim (e.g. a workspace adopted by a new context).  Any
  /// bytes charged to the previous budget are released there first.
  void Attach(Budget* budget) {
    if (budget == budget_) return;
    ReleaseAll();
    budget_ = budget;
  }

  Budget* budget() const { return budget_; }

  /// Accounts `n` more bytes.  False means the budget refused (memory limit
  /// or injected allocation fault): the caller must not allocate.  The
  /// refused bytes stay charged until release, mirroring
  /// `Budget::ChargeBytes` semantics, so the destructor stays balanced.
  bool Charge(int64_t n) {
    if (n <= 0) return true;
    charged_.fetch_add(n, std::memory_order_relaxed);
    if (budget_ == nullptr) return true;
    return budget_->ChargeBytes(n);
  }

  /// Soft charge for speculative allocations: accounts `n` bytes only when
  /// the budget accepts them without tripping (`Budget::TryChargeBytes`).  A
  /// refusal leaves *nothing* charged on this shim and does not exhaust the
  /// budget, so the caller can fall back to a non-allocating path.  Injected
  /// allocation faults still consume their slot on refusal.
  bool TryCharge(int64_t n) {
    if (n <= 0) return true;
    if (budget_ != nullptr && !budget_->TryChargeBytes(n)) return false;
    charged_.fetch_add(n, std::memory_order_relaxed);
    return true;
  }

  /// High-water charge: accounts only the growth of `total` beyond the
  /// largest total ever charged through this shim.  For containers that
  /// retain capacity across reuse.  Not thread-safe against concurrent
  /// `Reserve` on the same shim (reused scratch is per-worker by design).
  bool Reserve(int64_t total) {
    const int64_t peak = peak_.load(std::memory_order_relaxed);
    if (total <= peak) return true;
    peak_.store(total, std::memory_order_relaxed);
    return Charge(total - peak);
  }

  /// Returns `n` of the charged bytes early (an evicted cache entry, a
  /// shrunk table), clamped to the amount currently charged.  Does not lower
  /// the `Reserve` high-water mark — mixing `Reserve` and `Release` on one
  /// shim double-counts; consumers use either the high-water protocol or the
  /// charge/release protocol, not both.
  void Release(int64_t n) {
    if (n <= 0) return;
    int64_t current = charged_.load(std::memory_order_relaxed);
    int64_t take;
    do {
      take = current < n ? current : n;
    } while (take > 0 && !charged_.compare_exchange_weak(
                             current, current - take,
                             std::memory_order_relaxed));
    if (take > 0 && budget_ != nullptr) budget_->ReleaseBytes(take);
  }

  int64_t charged() const { return charged_.load(std::memory_order_relaxed); }

  /// Returns everything charged so far (idempotent; also run by the
  /// destructor).  Resets the high-water mark.
  void ReleaseAll() {
    const int64_t n = charged_.exchange(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
    if (n > 0 && budget_ != nullptr) budget_->ReleaseBytes(n);
  }

 private:
  Budget* budget_ = nullptr;
  std::atomic<int64_t> charged_{0};
  std::atomic<int64_t> peak_{0};
};

}  // namespace tpc

#endif  // TPC_ENGINE_TRACKED_H_
