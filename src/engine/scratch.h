// A type-erased pool of reusable scratch objects, owned by an
// `EngineContext`.
//
// Decision procedures above the engine layer (contain/, match/, service/)
// keep allocation-heavy scratch — homomorphism DP tables, matcher
// workspaces — alive across calls.  A function-local `thread_local` does
// that too, but it pins peak-sized buffers for the *thread's* lifetime,
// which is wrong for long-lived service threads (one adversarial instance
// inflates every later request's footprint, invisibly to the tracked-memory
// accounting).  A context-owned pool scopes the retention to the context:
// scratch leased here dies with the context, and any `TrackedBytes` inside
// the scratch can stay attached to the context's budget for its whole
// pooled life.
//
// The pool is keyed by the scratch type; `Acquire<T>()` hands out a free
// instance (or default-constructs one) and the returned lease gives it back
// on destruction.  Thread-safe: concurrent batch workers lease disjoint
// instances.

#ifndef TPC_ENGINE_SCRATCH_H_
#define TPC_ENGINE_SCRATCH_H_

#include <memory>
#include <mutex>
#include <typeindex>
#include <unordered_map>
#include <utility>
#include <vector>

namespace tpc {

class ScratchPool {
 public:
  ScratchPool() = default;

  ScratchPool(const ScratchPool&) = delete;
  ScratchPool& operator=(const ScratchPool&) = delete;

  /// Move-only handle to a leased scratch object; returns it to the pool on
  /// destruction.
  template <typename T>
  class Lease {
   public:
    Lease(ScratchPool* pool, std::unique_ptr<T> object)
        : pool_(pool), object_(std::move(object)) {}

    Lease(Lease&& other) noexcept
        : pool_(other.pool_), object_(std::move(other.object_)) {}
    Lease& operator=(Lease&& other) noexcept {
      Surrender();
      pool_ = other.pool_;
      object_ = std::move(other.object_);
      return *this;
    }

    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;

    ~Lease() { Surrender(); }

    T* get() const { return object_.get(); }
    T* operator->() const { return object_.get(); }
    T& operator*() const { return *object_; }

   private:
    void Surrender() {
      if (object_ == nullptr) return;
      pool_->Return(std::type_index(typeid(T)),
                    Erased(object_.release(), [](void* p) {
                      delete static_cast<T*>(p);
                    }));
    }

    ScratchPool* pool_;
    std::unique_ptr<T> object_;
  };

  /// Leases a `T`, reusing a previously returned instance when one is free.
  /// `T` must be default-constructible; reused instances keep whatever
  /// capacity they grew on earlier leases (that is the point).
  template <typename T>
  Lease<T> Acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = free_.find(std::type_index(typeid(T)));
      if (it != free_.end() && !it->second.empty()) {
        Erased erased = std::move(it->second.back());
        it->second.pop_back();
        return Lease<T>(this,
                        std::unique_ptr<T>(static_cast<T*>(erased.release())));
      }
    }
    return Lease<T>(this, std::make_unique<T>());
  }

 private:
  using Erased = std::unique_ptr<void, void (*)(void*)>;

  void Return(std::type_index type, Erased object) {
    std::lock_guard<std::mutex> lock(mu_);
    free_[type].push_back(std::move(object));
  }

  std::mutex mu_;
  std::unordered_map<std::type_index, std::vector<Erased>> free_;
};

}  // namespace tpc

#endif  // TPC_ENGINE_SCRATCH_H_
