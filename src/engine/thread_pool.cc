#include "engine/thread_pool.h"

namespace tpc {

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(num_threads < 1 ? 1 : num_threads) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::EnsureStarted() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return;
  started_ = true;
  workers_.reserve(num_threads_ - 1);
  for (int i = 0; i < num_threads_ - 1; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i + 1); });
  }
}

void ThreadPool::set_worker_hook(std::function<void(int)> hook) {
  std::lock_guard<std::mutex> lock(mu_);
  worker_hook_ = std::move(hook);
}

void ThreadPool::WorkerLoop(int worker_index) {
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_generation = 0;
  for (;;) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || job_generation_ != seen_generation;
    });
    if (shutdown_) return;
    seen_generation = job_generation_;
    const std::function<void(int64_t)>* fn = job_fn_;
    int64_t n = job_size_;
    const std::function<void(int)>* hook =
        worker_hook_ ? &worker_hook_ : nullptr;
    // A null job means the notification was for a job that already retired
    // (the caller drained it alone before this thread woke).  Claim nothing —
    // in particular don't touch next_index_, which may already belong to the
    // next job.
    if (fn == nullptr || n <= 0) continue;
    ++active_workers_;
    lock.unlock();
    if (hook != nullptr) (*hook)(worker_index);
    for (int64_t i = next_index_.fetch_add(1); i < n;
         i = next_index_.fetch_add(1)) {
      (*fn)(i);
    }
    lock.lock();
    if (--active_workers_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& fn) {
  if (n <= 0) return;
  if (num_threads_ <= 1 || n == 1) {
    for (int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  EnsureStarted();
  const std::function<void(int)>* caller_hook = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_fn_ = &fn;
    job_size_ = n;
    next_index_.store(0, std::memory_order_relaxed);
    ++job_generation_;
    if (worker_hook_) caller_hook = &worker_hook_;
  }
  work_cv_.notify_all();
  // The caller is one of the `num_threads_` workers (index 0).
  if (caller_hook != nullptr) (*caller_hook)(0);
  for (int64_t i = next_index_.fetch_add(1); i < n;
       i = next_index_.fetch_add(1)) {
    fn(i);
  }
  // Every worker processing this job incremented active_workers_ under mu_
  // before its first claim, so waiting for 0 waits for all in-flight fn
  // calls.  Workers that were notified but have not woken yet are handled by
  // retiring the job below, still under mu_: when such a worker finally runs
  // it finds job_fn_ == nullptr and claims nothing, so it can neither call
  // the (by then destroyed) function nor steal indices from the next job.
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] { return active_workers_ == 0; });
  job_fn_ = nullptr;
  job_size_ = 0;
}

}  // namespace tpc
