#include "engine/stats.h"

namespace tpc {

const char* const kDispatchAlgorithmNames[kNumDispatchAlgorithms] = {
    "homomorphism",         "minimal_canonical", "single_canonical",
    "path_in_tpq",          "child_free_in_tpq", "canonical_enumeration",
};

void EngineStats::Reset() {
  canonical_trees_enumerated.store(0, std::memory_order_relaxed);
  embeddings_attempted.store(0, std::memory_order_relaxed);
  dp_cells_filled.store(0, std::memory_order_relaxed);
  dp_cells_reused.store(0, std::memory_order_relaxed);
  trees_rebuilt_from_spine.store(0, std::memory_order_relaxed);
  dp_words_folded.store(0, std::memory_order_relaxed);
  dp_rows_skipped.store(0, std::memory_order_relaxed);
  homomorphism_checks.store(0, std::memory_order_relaxed);
  schema_configurations.store(0, std::memory_order_relaxed);
  horizontal_nodes.store(0, std::memory_order_relaxed);
  det_states_materialized.store(0, std::memory_order_relaxed);
  nta_states_built.store(0, std::memory_order_relaxed);
  nta_transitions_built.store(0, std::memory_order_relaxed);
  configs_subsumed.store(0, std::memory_order_relaxed);
  unions_memoized.store(0, std::memory_order_relaxed);
  state_sets_interned.store(0, std::memory_order_relaxed);
  graph_dp_cells.store(0, std::memory_order_relaxed);
  cache_hits.store(0, std::memory_order_relaxed);
  cache_evictions.store(0, std::memory_order_relaxed);
  prefilter_accepts.store(0, std::memory_order_relaxed);
  prefilter_refutes.store(0, std::memory_order_relaxed);
  batch_deduped.store(0, std::memory_order_relaxed);
  for (auto& d : dispatch) d.store(0, std::memory_order_relaxed);
}

std::string EngineStats::ToJson(const Budget& budget) const {
  auto field = [](const char* key, int64_t value) {
    return std::string("\"") + key + "\": " + std::to_string(value);
  };
  std::string out = "{";
  out += field("steps_used", budget.steps_used()) + ", ";
  out += field("bytes_tracked", budget.bytes_used()) + ", ";
  out += field("bytes_peak", budget.bytes_peak()) + ", ";
  out += std::string("\"exhaustion_reason\": \"") +
         ExhaustionReasonName(budget.reason()) + "\", ";
  out += field("canonical_trees_enumerated",
               canonical_trees_enumerated.load(std::memory_order_relaxed)) +
         ", ";
  out += field("embeddings_attempted",
               embeddings_attempted.load(std::memory_order_relaxed)) +
         ", ";
  out += field("dp_cells_filled",
               dp_cells_filled.load(std::memory_order_relaxed)) +
         ", ";
  out += field("dp_cells_reused",
               dp_cells_reused.load(std::memory_order_relaxed)) +
         ", ";
  out += field("trees_rebuilt_from_spine",
               trees_rebuilt_from_spine.load(std::memory_order_relaxed)) +
         ", ";
  out += field("dp_words_folded",
               dp_words_folded.load(std::memory_order_relaxed)) +
         ", ";
  out += field("dp_rows_skipped",
               dp_rows_skipped.load(std::memory_order_relaxed)) +
         ", ";
  out += field("homomorphism_checks",
               homomorphism_checks.load(std::memory_order_relaxed)) +
         ", ";
  out += field("schema_configurations",
               schema_configurations.load(std::memory_order_relaxed)) +
         ", ";
  out += field("horizontal_nodes",
               horizontal_nodes.load(std::memory_order_relaxed)) +
         ", ";
  out += field("det_states_materialized",
               det_states_materialized.load(std::memory_order_relaxed)) +
         ", ";
  out += field("nta_states_built",
               nta_states_built.load(std::memory_order_relaxed)) +
         ", ";
  out += field("nta_transitions_built",
               nta_transitions_built.load(std::memory_order_relaxed)) +
         ", ";
  out += field("configs_subsumed",
               configs_subsumed.load(std::memory_order_relaxed)) +
         ", ";
  out += field("unions_memoized",
               unions_memoized.load(std::memory_order_relaxed)) +
         ", ";
  out += field("state_sets_interned",
               state_sets_interned.load(std::memory_order_relaxed)) +
         ", ";
  out += field("graph_dp_cells",
               graph_dp_cells.load(std::memory_order_relaxed)) +
         ", ";
  out += field("cache_hits", cache_hits.load(std::memory_order_relaxed)) +
         ", ";
  out += field("cache_evictions",
               cache_evictions.load(std::memory_order_relaxed)) +
         ", ";
  out += field("prefilter_accepts",
               prefilter_accepts.load(std::memory_order_relaxed)) +
         ", ";
  out += field("prefilter_refutes",
               prefilter_refutes.load(std::memory_order_relaxed)) +
         ", ";
  out += field("batch_deduped",
               batch_deduped.load(std::memory_order_relaxed)) +
         ", ";
  out += "\"dispatch\": {";
  for (int i = 0; i < kNumDispatchAlgorithms; ++i) {
    if (i > 0) out += ", ";
    out += field(kDispatchAlgorithmNames[i],
                 dispatch[i].load(std::memory_order_relaxed));
  }
  out += "}}";
  return out;
}

}  // namespace tpc
