#include "engine/stats.h"

#include <algorithm>
#include <string_view>
#include <utility>
#include <vector>

namespace tpc {

const char* const kDispatchAlgorithmNames[kNumDispatchAlgorithms] = {
    "homomorphism",         "minimal_canonical", "single_canonical",
    "path_in_tpq",          "child_free_in_tpq", "canonical_enumeration",
};

void EngineStats::Reset() {
  canonical_trees_enumerated.store(0, std::memory_order_relaxed);
  embeddings_attempted.store(0, std::memory_order_relaxed);
  dp_cells_filled.store(0, std::memory_order_relaxed);
  dp_cells_reused.store(0, std::memory_order_relaxed);
  trees_rebuilt_from_spine.store(0, std::memory_order_relaxed);
  dp_words_folded.store(0, std::memory_order_relaxed);
  dp_rows_skipped.store(0, std::memory_order_relaxed);
  homomorphism_checks.store(0, std::memory_order_relaxed);
  schema_configurations.store(0, std::memory_order_relaxed);
  horizontal_nodes.store(0, std::memory_order_relaxed);
  det_states_materialized.store(0, std::memory_order_relaxed);
  nta_states_built.store(0, std::memory_order_relaxed);
  nta_transitions_built.store(0, std::memory_order_relaxed);
  configs_subsumed.store(0, std::memory_order_relaxed);
  unions_memoized.store(0, std::memory_order_relaxed);
  state_sets_interned.store(0, std::memory_order_relaxed);
  graph_dp_cells.store(0, std::memory_order_relaxed);
  cache_hits.store(0, std::memory_order_relaxed);
  cache_evictions.store(0, std::memory_order_relaxed);
  prefilter_accepts.store(0, std::memory_order_relaxed);
  prefilter_refutes.store(0, std::memory_order_relaxed);
  batch_deduped.store(0, std::memory_order_relaxed);
  lattice_stitch_hits.store(0, std::memory_order_relaxed);
  witness_borrow_refutes.store(0, std::memory_order_relaxed);
  snapshot_trees_mapped.store(0, std::memory_order_relaxed);
  sweep_groups_formed.store(0, std::memory_order_relaxed);
  sweep_group_members.store(0, std::memory_order_relaxed);
  group_members_retired_early.store(0, std::memory_order_relaxed);
  trees_shared_per_decision.store(0, std::memory_order_relaxed);
  programs_compiled.store(0, std::memory_order_relaxed);
  program_exec_hits.store(0, std::memory_order_relaxed);
  program_cache_evictions.store(0, std::memory_order_relaxed);
  for (auto& d : dispatch) d.store(0, std::memory_order_relaxed);
}

void EngineStats::MergeFrom(const EngineStats& other) {
  auto add = [](std::atomic<int64_t>& into, const std::atomic<int64_t>& from) {
    into.fetch_add(from.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
  };
  add(canonical_trees_enumerated, other.canonical_trees_enumerated);
  add(embeddings_attempted, other.embeddings_attempted);
  add(dp_cells_filled, other.dp_cells_filled);
  add(dp_cells_reused, other.dp_cells_reused);
  add(trees_rebuilt_from_spine, other.trees_rebuilt_from_spine);
  add(dp_words_folded, other.dp_words_folded);
  add(dp_rows_skipped, other.dp_rows_skipped);
  add(homomorphism_checks, other.homomorphism_checks);
  add(schema_configurations, other.schema_configurations);
  add(horizontal_nodes, other.horizontal_nodes);
  add(det_states_materialized, other.det_states_materialized);
  add(nta_states_built, other.nta_states_built);
  add(nta_transitions_built, other.nta_transitions_built);
  add(configs_subsumed, other.configs_subsumed);
  add(unions_memoized, other.unions_memoized);
  add(state_sets_interned, other.state_sets_interned);
  add(graph_dp_cells, other.graph_dp_cells);
  add(cache_hits, other.cache_hits);
  add(cache_evictions, other.cache_evictions);
  add(prefilter_accepts, other.prefilter_accepts);
  add(prefilter_refutes, other.prefilter_refutes);
  add(batch_deduped, other.batch_deduped);
  add(lattice_stitch_hits, other.lattice_stitch_hits);
  add(witness_borrow_refutes, other.witness_borrow_refutes);
  add(snapshot_trees_mapped, other.snapshot_trees_mapped);
  add(sweep_groups_formed, other.sweep_groups_formed);
  add(sweep_group_members, other.sweep_group_members);
  add(group_members_retired_early, other.group_members_retired_early);
  add(trees_shared_per_decision, other.trees_shared_per_decision);
  add(programs_compiled, other.programs_compiled);
  add(program_exec_hits, other.program_exec_hits);
  add(program_cache_evictions, other.program_cache_evictions);
  for (int i = 0; i < kNumDispatchAlgorithms; ++i) {
    add(dispatch[i], other.dispatch[i]);
  }
}

namespace {

/// Appends `{"a": 1, "b": 2}` with the fields sorted by name, so the dump is
/// independent of declaration order (stable bench diffs).
void AppendGroup(std::vector<std::pair<const char*, int64_t>> fields,
                 std::string* out) {
  std::sort(fields.begin(), fields.end(), [](const auto& a, const auto& b) {
    return std::string_view(a.first) < std::string_view(b.first);
  });
  *out += "{";
  for (size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) *out += ", ";
    *out += std::string("\"") + fields[i].first +
            "\": " + std::to_string(fields[i].second);
  }
  *out += "}";
}

}  // namespace

std::string EngineStats::ToJson(const Budget& budget) const {
  auto v = [](const std::atomic<int64_t>& counter) {
    return counter.load(std::memory_order_relaxed);
  };
  std::string out = "{";
  out += "\"steps_used\": " + std::to_string(budget.steps_used()) + ", ";
  out += "\"bytes_tracked\": " + std::to_string(budget.bytes_used()) + ", ";
  out += "\"bytes_peak\": " + std::to_string(budget.bytes_peak()) + ", ";
  out += std::string("\"exhaustion_reason\": \"") +
         ExhaustionReasonName(budget.reason()) + "\", ";
  out += "\"engine\": ";
  AppendGroup(
      {
          {"canonical_trees_enumerated", v(canonical_trees_enumerated)},
          {"configs_subsumed", v(configs_subsumed)},
          {"det_states_materialized", v(det_states_materialized)},
          {"dp_cells_filled", v(dp_cells_filled)},
          {"dp_cells_reused", v(dp_cells_reused)},
          {"dp_rows_skipped", v(dp_rows_skipped)},
          {"dp_words_folded", v(dp_words_folded)},
          {"embeddings_attempted", v(embeddings_attempted)},
          {"graph_dp_cells", v(graph_dp_cells)},
          {"homomorphism_checks", v(homomorphism_checks)},
          {"horizontal_nodes", v(horizontal_nodes)},
          {"nta_states_built", v(nta_states_built)},
          {"nta_transitions_built", v(nta_transitions_built)},
          {"schema_configurations", v(schema_configurations)},
          {"state_sets_interned", v(state_sets_interned)},
          {"trees_rebuilt_from_spine", v(trees_rebuilt_from_spine)},
          {"unions_memoized", v(unions_memoized)},
      },
      &out);
  out += ", \"cache\": ";
  AppendGroup(
      {
          {"batch_deduped", v(batch_deduped)},
          {"cache_evictions", v(cache_evictions)},
          {"cache_hits", v(cache_hits)},
          {"prefilter_accepts", v(prefilter_accepts)},
          {"prefilter_refutes", v(prefilter_refutes)},
      },
      &out);
  out += ", \"persist\": ";
  AppendGroup(
      {
          {"lattice_stitch_hits", v(lattice_stitch_hits)},
          {"snapshot_trees_mapped", v(snapshot_trees_mapped)},
          {"witness_borrow_refutes", v(witness_borrow_refutes)},
      },
      &out);
  out += ", \"group\": ";
  AppendGroup(
      {
          {"group_members_retired_early", v(group_members_retired_early)},
          {"sweep_group_members", v(sweep_group_members)},
          {"sweep_groups_formed", v(sweep_groups_formed)},
          {"trees_shared_per_decision", v(trees_shared_per_decision)},
      },
      &out);
  out += ", \"compile\": ";
  AppendGroup(
      {
          {"program_cache_evictions", v(program_cache_evictions)},
          {"program_exec_hits", v(program_exec_hits)},
          {"programs_compiled", v(programs_compiled)},
      },
      &out);
  out += ", \"dispatch\": ";
  {
    std::vector<std::pair<const char*, int64_t>> fields;
    for (int i = 0; i < kNumDispatchAlgorithms; ++i) {
      fields.emplace_back(kDispatchAlgorithmNames[i], v(dispatch[i]));
    }
    AppendGroup(std::move(fields), &out);
  }
  out += "}";
  return out;
}

}  // namespace tpc
