#include "engine/fault_injection.h"

#include <chrono>
#include <thread>

#include "engine/budget.h"

namespace tpc {

const char* ExhaustionReasonName(ExhaustionReason reason) {
  switch (reason) {
    case ExhaustionReason::kNone:
      return "none";
    case ExhaustionReason::kSteps:
      return "steps";
    case ExhaustionReason::kDeadline:
      return "deadline";
    case ExhaustionReason::kMemory:
      return "memory";
    case ExhaustionReason::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

int64_t DeriveFaultPoint(uint64_t seed, int64_t index, int64_t space) {
  if (space <= 0) return 1;
  const uint64_t mixed = SplitMix64(seed ^ SplitMix64(static_cast<uint64_t>(index)));
  return static_cast<int64_t>(mixed % static_cast<uint64_t>(space)) + 1;
}

void FaultInjector::OnWorkerStart(int worker) const {
  if (worker != plan_.delay_worker || plan_.delay_worker_ms <= 0) return;
  std::this_thread::sleep_for(std::chrono::milliseconds(plan_.delay_worker_ms));
}

bool Budget::InjectChargeFault(FaultInjector* injector) {
  switch (injector->OnCharge()) {
    case ExhaustionReason::kNone:
      return true;
    case ExhaustionReason::kCancelled:
      // As if the caller had invoked Cancel() at exactly this charge; the
      // regular cancellation check right after the injector hook in Charge
      // would also catch it, but exhausting here keeps the fault one-shot
      // and the reason attribution unambiguous.
      cancelled_.store(true, std::memory_order_relaxed);
      ExhaustWith(ExhaustionReason::kCancelled);
      return false;
    default:
      ExhaustWith(ExhaustionReason::kSteps);
      return false;
  }
}

bool Budget::InjectAllocFault(FaultInjector* injector) {
  if (!injector->OnAlloc()) return true;
  ExhaustWith(ExhaustionReason::kMemory);
  return false;
}

bool Budget::TryChargeBytes(int64_t n) {
  if (n <= 0) return true;
  const int64_t used = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
  bool ok = !exhausted_.load(std::memory_order_relaxed);
  FaultInjector* injector = injector_.load(std::memory_order_relaxed);
  if (ok && injector != nullptr && injector->OnAlloc()) ok = false;
  const int64_t limit = memory_limit_.load(std::memory_order_relaxed);
  if (ok && limit > 0 && used > limit) ok = false;
  if (!ok) {
    // Refund and stay un-exhausted: a refused speculative charge must leave
    // the budget exactly as it found it (peak included).
    bytes_.fetch_sub(n, std::memory_order_relaxed);
    return false;
  }
  int64_t peak = bytes_peak_.load(std::memory_order_relaxed);
  while (used > peak &&
         !bytes_peak_.compare_exchange_weak(peak, used,
                                            std::memory_order_relaxed)) {
  }
  return true;
}

}  // namespace tpc
