// Instrumentation counters for the decision procedures.
//
// Every procedure family reports what it actually did — canonical trees
// enumerated, embedding DPs run, schema-engine configurations materialized,
// automata built — so callers can observe *which* complexity regime an
// instance landed in (Table 1's P cells barely move these; the coNP/EXPTIME
// cells light them up).  Counters are atomic: the parallel canonical sweep
// updates them from many workers.

#ifndef TPC_ENGINE_STATS_H_
#define TPC_ENGINE_STATS_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "engine/budget.h"

namespace tpc {

/// Number of dispatcher algorithms, mirroring `ContainmentAlgorithm` in
/// contain/containment.h (engine/ sits below contain/ and cannot name the
/// enum; containment.cc static_asserts the two stay in sync).
inline constexpr int kNumDispatchAlgorithms = 6;

/// JSON key for each dispatcher algorithm, indexed like the enum.
extern const char* const kDispatchAlgorithmNames[kNumDispatchAlgorithms];

/// Atomic counter block carried by an `EngineContext`.
struct EngineStats {
  // Containment without schema (src/contain).
  std::atomic<int64_t> canonical_trees_enumerated{0};
  std::atomic<int64_t> embeddings_attempted{0};
  std::atomic<int64_t> dp_cells_filled{0};
  /// DP cells whose columns the incremental sweep carried over unchanged
  /// from the previous canonical tree instead of recomputing them.
  std::atomic<int64_t> dp_cells_reused{0};
  /// Canonical trees rebuilt incrementally from the first changed spine
  /// (prefix kept) rather than from scratch.
  std::atomic<int64_t> trees_rebuilt_from_spine{0};
  /// uint64 words OR-folded from child DP rows into parent accumulators by
  /// the postorder matcher fill (both kernels fold the same way).
  std::atomic<int64_t> dp_words_folded{0};
  /// Leaf columns answered by the branch-free leaf kernel — no fold, no
  /// missing-bits scatter (word-parallel fill only).
  std::atomic<int64_t> dp_rows_skipped{0};
  std::atomic<int64_t> homomorphism_checks{0};

  // Schema-aware engine (src/schema) and automata substrate (src/automata).
  std::atomic<int64_t> schema_configurations{0};
  std::atomic<int64_t> horizontal_nodes{0};
  std::atomic<int64_t> det_states_materialized{0};
  std::atomic<int64_t> nta_states_built{0};
  std::atomic<int64_t> nta_transitions_built{0};
  /// Configurations dropped on arrival or deactivated later because an
  /// antichain-maximal configuration subsumes them.
  std::atomic<int64_t> configs_subsumed{0};
  /// Pairwise Sat/Below-set unions answered from the interner's memo table.
  std::atomic<int64_t> unions_memoized{0};
  /// Distinct Sat/Below state sets interned across a decision's interners.
  std::atomic<int64_t> state_sets_interned{0};

  // Graph semantics (src/graphdb).
  std::atomic<int64_t> graph_dp_cells{0};

  // Query-service fast path (src/service).
  /// Requests answered from the verdict cache (after witness replay
  /// validation for refutations).
  std::atomic<int64_t> cache_hits{0};
  /// Verdict-cache entries evicted under the cache's byte budget.
  std::atomic<int64_t> cache_evictions{0};
  /// Requests accepted early by the sound q -> p homomorphism prefilter.
  std::atomic<int64_t> prefilter_accepts{0};
  /// Requests refuted early by a canonical-model probe (all-ones vector or
  /// a recycled counterexample length vector).
  std::atomic<int64_t> prefilter_refutes{0};
  /// Batch requests answered by another request in the same batch (same
  /// canonical pattern pair and mode).
  std::atomic<int64_t> batch_deduped{0};

  // Persistent warm-start tier (src/persist + the service lattice).
  /// Cache misses answered by stitching cached "contained" edges through the
  /// subsumption lattice (p ⊑ r and r ⊑ q cached ⇒ p ⊑ q).
  std::atomic<int64_t> lattice_stitch_hits{0};
  /// Cache misses refuted by replaying a lattice neighbour's borrowed
  /// counterexample witness against the live pair (replay-validated, so a
  /// borrowed witness can never fake a refutation).
  std::atomic<int64_t> witness_borrow_refutes{0};
  /// Snapshot trees served zero-copy as `TreeView`s over the mapped file
  /// (witness validations that skipped the canonical-tree rebuild).
  std::atomic<int64_t> snapshot_trees_mapped{0};

  // Grouped canonical sweep (src/contain grouped loops + src/service
  // batching + the daemon's coalescing window).
  /// Shared sweeps formed: one per canonical-route group of >= 2 members
  /// decided over a single enumeration of the shared pattern's models.
  std::atomic<int64_t> sweep_groups_formed{0};
  /// Members those shared sweeps carried (mean group size =
  /// sweep_group_members / sweep_groups_formed).
  std::atomic<int64_t> sweep_group_members{0};
  /// Members retired (first counterexample or per-member budget trip) while
  /// at least one groupmate kept sweeping — the undecided-mask payoff.
  std::atomic<int64_t> group_members_retired_early{0};
  /// Extra members each enumerated canonical tree served beyond the first
  /// (a solo sweep scores 0; a group of k undecided members scores k-1 per
  /// tree) — the amortization the grouping buys.
  std::atomic<int64_t> trees_shared_per_decision{0};

  // Compiled matcher programs (src/compile).
  /// TPQs lowered into flat `MatcherProgram` bytecode by the pattern
  /// compiler (cache misses past the hotness threshold, plus the per-sweep
  /// compiles of the canonical enumeration).
  std::atomic<int64_t> programs_compiled{0};
  /// Tree evaluations answered by a compiled program instead of the generic
  /// `MatcherWorkspace` fill.
  std::atomic<int64_t> program_exec_hits{0};
  /// Program-pool entries evicted under the pool's byte bound.
  std::atomic<int64_t> program_cache_evictions{0};

  // Dispatcher choices, indexed by `ContainmentAlgorithm`.
  std::atomic<int64_t> dispatch[kNumDispatchAlgorithms]{};

  /// Zeroes every counter.
  void Reset();

  /// Adds every counter of `other` into this block.  The serve daemon gives
  /// each worker its own `EngineContext` (per-tenant budgets must not share
  /// a step counter), so the STATS frame folds the worker blocks into one
  /// aggregate dump with this.  Relaxed reads: counters merged while
  /// workers run are a consistent-enough snapshot for observability.
  void MergeFrom(const EngineStats& other);

  /// One-line JSON object with every counter plus the budget's resource
  /// readings (steps, tracked bytes and peak, exhaustion reason) so one
  /// dump describes the whole run.  Counters are grouped — `engine`, `cache`,
  /// `persist`, `group`, `compile`, `dispatch` — and sorted by name within
  /// each group, so dumps
  /// diff stably across counter additions (bench reports rely on this).
  std::string ToJson(const Budget& budget) const;
};

}  // namespace tpc

#endif  // TPC_ENGINE_STATS_H_
