#include "engine/engine.h"

namespace tpc {

EngineContext::EngineContext() : EngineContext(EngineConfig{}) {}

EngineContext::EngineContext(const EngineConfig& config) : config_(config) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.parallel_chunk < 1) config_.parallel_chunk = 1;
  if (config_.fault_plan.active()) {
    injector_ = std::make_unique<FaultInjector>(config_.fault_plan);
    budget_.SetFaultInjector(injector_.get());
  }
  budget_.Arm(config_.step_limit, config_.deadline_ms, config_.memory_limit);
}

EngineContext::~EngineContext() {
  // The budget outlives the injector it points at only within this dtor;
  // detach first so no stray charge during member teardown dereferences it.
  budget_.SetFaultInjector(nullptr);
}

ThreadPool& EngineContext::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
    if (injector_ != nullptr && config_.fault_plan.delay_worker >= 0) {
      FaultInjector* injector = injector_.get();
      pool_->set_worker_hook(
          [injector](int worker) { injector->OnWorkerStart(worker); });
    }
  });
  return *pool_;
}

void EngineContext::ResetBudget() {
  budget_.Arm(config_.step_limit, config_.deadline_ms, config_.memory_limit);
}

void EngineContext::ResetFaults() {
  if (injector_ != nullptr) injector_->Reset();
}

std::string EngineContext::StatsJson() const {
  return stats_.ToJson(budget_);
}

EngineContext& EngineContext::Default() {
  static EngineContext* context = new EngineContext();
  return *context;
}

}  // namespace tpc
