#include "engine/engine.h"

namespace tpc {

EngineContext::EngineContext() : EngineContext(EngineConfig{}) {}

EngineContext::EngineContext(const EngineConfig& config) : config_(config) {
  if (config_.threads < 1) config_.threads = 1;
  if (config_.parallel_chunk < 1) config_.parallel_chunk = 1;
  budget_.Arm(config_.step_limit, config_.deadline_ms);
}

EngineContext::~EngineContext() = default;

ThreadPool& EngineContext::pool() {
  std::call_once(pool_once_, [this] {
    pool_ = std::make_unique<ThreadPool>(config_.threads);
  });
  return *pool_;
}

void EngineContext::ResetBudget() {
  budget_.Arm(config_.step_limit, config_.deadline_ms);
}

std::string EngineContext::StatsJson() const {
  return stats_.ToJson(budget_.steps_used());
}

EngineContext& EngineContext::Default() {
  static EngineContext* context = new EngineContext();
  return *context;
}

}  // namespace tpc
