// Deterministic fault injection for the engine's failure model.
//
// The paper's complexity results (coNP-completeness, Theorem 3.3;
// EXPTIME-completeness, Theorem 6.6) guarantee that production traffic will
// contain instances that exhaust *some* resource — steps, wall clock, or
// memory — and callers that give up mid-decision.  The engine promises that
// every such failure surfaces as a structured `Outcome::kResourceExhausted`
// with an `ExhaustionReason`, never as a crash or a poisoned context.  That
// promise is only as good as its tests, and the failures involved (a chunk
// arena filling up, a SIGINT mid-round, a straggling pool worker) are nearly
// impossible to hit on cue from the outside.
//
// `FaultInjector` makes them repeatable: a plan compiled into every build
// (no #ifdef skew between tested and shipped code) and enabled per context
// via `EngineConfig::fault_plan` can
//
//   * force budget exhaustion at exactly the Nth `Budget::Charge`,
//   * fail exactly the Kth tracked allocation (`Budget::ChargeBytes`),
//   * flip the cooperative-cancellation flag at the Nth charge, and
//   * delay a chosen thread-pool worker at the start of each job,
//
// so a test matrix can walk a decision procedure through exhaustion at
// every stage of its control flow deterministically.  Counters are monotone
// over the context's lifetime: an injected fault fires exactly once, so a
// `ResetBudget()` context re-decides the same instance cleanly (the
// recovery guarantee under test).  `ResetFaults()` re-arms explicitly.
//
// When no plan is active the injector is a null pointer and the budget's
// hot path pays one relaxed pointer load for it.

#ifndef TPC_ENGINE_FAULT_INJECTION_H_
#define TPC_ENGINE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>

#include "engine/budget.h"

namespace tpc {

/// A deterministic fault schedule.  All-zero (the default) means "no
/// faults"; `EngineContext` only instantiates an injector for active plans.
struct FaultPlan {
  /// Seed for deriving pseudo-random fault points (see `DeriveFaultPoint`);
  /// recorded so a failing schedule can be reproduced from logs.
  uint64_t seed = 0;
  /// > 0: the Nth `Budget::Charge` call reports exhaustion (reason kSteps).
  int64_t exhaust_at_charge = 0;
  /// > 0: the Nth `Budget::Charge` call flips the cancellation flag, as if
  /// the caller had invoked `EngineContext::Cancel` at that moment.
  int64_t cancel_at_charge = 0;
  /// > 0: the Kth tracked allocation (`Budget::ChargeBytes` call) fails
  /// (reason kMemory), as if the arena hit its memory limit.
  int64_t fail_alloc_at = 0;
  /// >= 0: the pool worker with this index (0 = the calling thread) sleeps
  /// `delay_worker_ms` at the start of every parallel job, manufacturing
  /// the straggler schedules that race cancellation against completion.
  int delay_worker = -1;
  int64_t delay_worker_ms = 0;

  bool active() const {
    return exhaust_at_charge > 0 || cancel_at_charge > 0 ||
           fail_alloc_at > 0 || delay_worker >= 0;
  }
};

/// Derives the `index`-th deterministic fault point in [1, space] from
/// `seed` (splitmix64).  Test matrices use this to sample exhaustion points
/// across a decision's full charge range without enumerating every one.
int64_t DeriveFaultPoint(uint64_t seed, int64_t index, int64_t space);

/// Runtime state of one plan: thread-safe monotone counters consulted by
/// `Budget::Charge`/`ChargeBytes` and the thread pool's worker hook.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan) : plan_(plan) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  const FaultPlan& plan() const { return plan_; }

  /// Re-arms the counters so every fault can fire again.  Deliberately NOT
  /// called by `EngineContext::ResetBudget`: recovery after an injected
  /// fault must behave like recovery after a real one.
  void Reset() {
    charges_.store(0, std::memory_order_relaxed);
    allocs_.store(0, std::memory_order_relaxed);
  }

  int64_t charges_seen() const {
    return charges_.load(std::memory_order_relaxed);
  }
  int64_t allocs_seen() const {
    return allocs_.load(std::memory_order_relaxed);
  }

  /// Called by `Budget::Charge` (via `Budget::InjectChargeFault`): counts
  /// the call and returns the fault to apply — kNone, kSteps (forced
  /// exhaustion) or kCancelled (flip the cancel flag).
  ExhaustionReason OnCharge() {
    const int64_t n = charges_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (n == plan_.exhaust_at_charge) return ExhaustionReason::kSteps;
    if (n == plan_.cancel_at_charge) return ExhaustionReason::kCancelled;
    return ExhaustionReason::kNone;
  }

  /// Called by `Budget::ChargeBytes`: true when this tracked allocation
  /// must fail.
  bool OnAlloc() {
    const int64_t k = allocs_.fetch_add(1, std::memory_order_relaxed) + 1;
    return k == plan_.fail_alloc_at;
  }

  /// Thread-pool worker hook: sleeps when `worker` matches the plan.
  void OnWorkerStart(int worker) const;

 private:
  const FaultPlan plan_;
  std::atomic<int64_t> charges_{0};
  std::atomic<int64_t> allocs_{0};
};

}  // namespace tpc

#endif  // TPC_ENGINE_FAULT_INJECTION_H_
