// Cooperative resource budgets for the decision procedures.
//
// The paper classifies the general problems coNP-complete (Theorem 3.3) and
// EXPTIME-complete (Theorem 6.6), so any production deployment must assume
// some instances will not finish.  A `Budget` is the engine's answer: a
// step limit, a wall-clock deadline, a tracked-memory limit and a
// cooperative cancellation flag, shared by every worker thread of one
// decision.  Hot loops call `Charge(n)` and abandon the search when it
// returns false; allocation-heavy consumers route their arena growth
// through `ChargeBytes(n)`; the decision then reports
// `Outcome::kResourceExhausted` (with the tripped `ExhaustionReason`)
// instead of running forever or dying in the OOM killer.
//
// `Charge` is designed for enumeration/DP/automaton inner loops: the common
// case is one relaxed atomic add plus two relaxed loads, and the wall clock
// is consulted only when the step counter crosses a multiple of
// `kClockPeriod`.  `ChargeBytes` is called at arena/table granularity
// (chunks, DP tables, configuration records), never per element.

#ifndef TPC_ENGINE_BUDGET_H_
#define TPC_ENGINE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tpc {

class FaultInjector;  // engine/fault_injection.h

/// Which resource tripped a budget.  `kNone` means the budget is not
/// exhausted (or the procedure stopped on a legacy cap that bypasses the
/// budget — callers map that to kSteps when they report results).
enum class ExhaustionReason : int {
  kNone = 0,
  kSteps,
  kDeadline,
  kMemory,
  kCancelled,
};

/// Stable lowercase name for JSON/CLI output ("none", "steps", ...).
const char* ExhaustionReasonName(ExhaustionReason reason);

/// A shared step/deadline/memory/cancellation budget.  Thread-safe: many
/// workers may `Charge`/`ChargeBytes` concurrently, and `Cancel` may be
/// called from any thread (or a signal handler — it is one lock-free atomic
/// store).  An unarmed (default) budget never exhausts on steps, time or
/// memory but still counts them, so instrumentation works on unlimited
/// runs too — and still honours `Cancel`.
class Budget {
 public:
  Budget() = default;

  /// Arms the budget: at most `step_limit` steps, at most `deadline_ms`
  /// milliseconds from now, and at most `memory_limit` tracked bytes
  /// (0 = unlimited for each).  Resets the step/byte counters, the
  /// exhausted flag, the recorded reason and the cancellation flag.  All
  /// fields are atomic, so calling this while workers are still charging is
  /// not undefined behavior — but it is still wrong (a decision would run
  /// under a mix of old and new limits); re-arm only between decisions.
  void Arm(int64_t step_limit, int64_t deadline_ms, int64_t memory_limit = 0) {
    steps_.store(0, std::memory_order_relaxed);
    bytes_.store(0, std::memory_order_relaxed);
    bytes_peak_.store(0, std::memory_order_relaxed);
    exhausted_.store(false, std::memory_order_relaxed);
    cancelled_.store(false, std::memory_order_relaxed);
    reason_.store(static_cast<int>(ExhaustionReason::kNone),
                  std::memory_order_relaxed);
    step_limit_.store(step_limit, std::memory_order_relaxed);
    memory_limit_.store(memory_limit, std::memory_order_relaxed);
    int64_t deadline_ticks = kNoDeadline;
    if (deadline_ms > 0) {
      deadline_ticks = (std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms))
                           .time_since_epoch()
                           .count();
    }
    deadline_ticks_.store(deadline_ticks, std::memory_order_relaxed);
  }

  /// Installs (or clears) the fault injector consulted by
  /// `Charge`/`ChargeBytes`.  Set between decisions only.
  void SetFaultInjector(FaultInjector* injector) {
    injector_.store(injector, std::memory_order_relaxed);
  }

  bool limited() const {
    return step_limit_.load(std::memory_order_relaxed) > 0 ||
           memory_limit_.load(std::memory_order_relaxed) > 0 ||
           deadline_ticks_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Consumes `n` steps; returns false once the budget is exhausted (for
  /// any reason: steps, deadline, memory, cancellation or an injected
  /// fault).  A false result is sticky: every later call also returns
  /// false, until `Arm` re-arms.
  bool Charge(int64_t n = 1) {
    const int64_t used = steps_.fetch_add(n, std::memory_order_relaxed) + n;
    FaultInjector* injector = injector_.load(std::memory_order_relaxed);
    if (injector != nullptr && !InjectChargeFault(injector)) return false;
    const int64_t limit = step_limit_.load(std::memory_order_relaxed);
    const int64_t deadline = deadline_ticks_.load(std::memory_order_relaxed);
    if (limit <= 0 && deadline == kNoDeadline) {
      // No step/time limits armed — but memory exhaustion (via ChargeBytes)
      // must still stop step loops.
      return !exhausted_.load(std::memory_order_relaxed);
    }
    if (exhausted_.load(std::memory_order_relaxed)) return false;
    if (limit > 0 && used > limit) {
      ExhaustWith(ExhaustionReason::kSteps);
      return false;
    }
    if (deadline != kNoDeadline &&
        used / kClockPeriod != (used - n) / kClockPeriod &&
        std::chrono::steady_clock::now().time_since_epoch().count() >
            deadline) {
      ExhaustWith(ExhaustionReason::kDeadline);
      return false;
    }
    return true;
  }

  /// Accounts `n` tracked bytes (an arena chunk, a DP table growth, a
  /// configuration record); returns false once the memory limit is
  /// exceeded, an allocation fault is injected, or the budget is already
  /// exhausted.  Callers treat false as "do not allocate" and surface
  /// `kResourceExhausted`; the bytes stay counted either way so paired
  /// `ReleaseBytes` calls balance.
  bool ChargeBytes(int64_t n) {
    const int64_t used = bytes_.fetch_add(n, std::memory_order_relaxed) + n;
    // Peak tracking; allocation charges are coarse-grained, so a CAS loop
    // here is off the hot path.
    int64_t peak = bytes_peak_.load(std::memory_order_relaxed);
    while (used > peak &&
           !bytes_peak_.compare_exchange_weak(peak, used,
                                              std::memory_order_relaxed)) {
    }
    FaultInjector* injector = injector_.load(std::memory_order_relaxed);
    if (injector != nullptr && !InjectAllocFault(injector)) return false;
    const int64_t limit = memory_limit_.load(std::memory_order_relaxed);
    if (limit > 0 && used > limit) {
      ExhaustWith(ExhaustionReason::kMemory);
      return false;
    }
    return !exhausted_.load(std::memory_order_relaxed);
  }

  /// Soft variant of `ChargeBytes` for *speculative* allocations that have a
  /// non-allocating fallback (the pattern compiler's program tables: a
  /// refused compile falls back to the generic DP).  On refusal — memory
  /// limit, injected allocation fault, or an already-exhausted budget — the
  /// bytes are refunded and the budget is NOT marked exhausted, so the
  /// fallback path keeps running under the same budget.  Injected faults
  /// still consume their allocation slot, so fault schedules stay
  /// deterministic across hard and soft call sites.  Out of line: the
  /// injector hook needs the injector's definition.
  bool TryChargeBytes(int64_t n);

  /// Returns `n` tracked bytes (a consumer freeing its arenas).
  void ReleaseBytes(int64_t n) {
    bytes_.fetch_sub(n, std::memory_order_relaxed);
  }

  /// Requests cooperative cancellation: the budget is marked exhausted with
  /// reason kCancelled right here, so the next `Charge`/`ChargeBytes` on any
  /// thread observes it through the sticky flag it reads anyway — the hot
  /// path carries no dedicated cancellation check.  Lock-free atomic
  /// operations only — safe from signal handlers.
  void Cancel() {
    cancelled_.store(true, std::memory_order_relaxed);
    ExhaustWith(ExhaustionReason::kCancelled);
  }

  bool Cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  bool Exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  /// The resource that tripped first (kNone while not exhausted).
  ExhaustionReason reason() const {
    return static_cast<ExhaustionReason>(
        reason_.load(std::memory_order_relaxed));
  }

  int64_t steps_used() const {
    return steps_.load(std::memory_order_relaxed);
  }

  /// Tracked bytes currently charged / the high-water mark since `Arm`.
  int64_t bytes_used() const { return bytes_.load(std::memory_order_relaxed); }
  int64_t bytes_peak() const {
    return bytes_peak_.load(std::memory_order_relaxed);
  }

  /// Scoped per-decision deadline: for its lifetime the budget's effective
  /// deadline is the *tighter* of the caller's and `deadline_ms` from now
  /// (0 = leave the caller's deadline as is).  This is how
  /// `EngineLimits::max_milliseconds` arms the context budget once at a
  /// procedure's entry, so the legacy limit and the ctx deadline stop racing
  /// as separate clocks: every hot loop observes one deadline via `Charge`
  /// and reports one `kResourceExhausted` path.
  ///
  /// On destruction the caller's deadline is restored, and the sticky
  /// exhausted flag is cleared unless one of the caller's own limits (step
  /// limit, caller deadline, memory limit) has genuinely been hit or
  /// cancellation was requested — so a reused context (e.g. a benchmark
  /// loop) is not poisoned by one capped decision, while memory pressure
  /// and cancellation survive the scope.  Create between decisions only; do
  /// not nest (same contract as `Arm`).
  class ScopedDeadline {
   public:
    ScopedDeadline(Budget* budget, int64_t deadline_ms) : budget_(budget) {
      prev_ = budget_->deadline_ticks_.load(std::memory_order_relaxed);
      if (deadline_ms > 0) {
        const int64_t ticks = (std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(deadline_ms))
                                  .time_since_epoch()
                                  .count();
        if (prev_ == kNoDeadline || ticks < prev_) {
          budget_->deadline_ticks_.store(ticks, std::memory_order_relaxed);
        }
      }
    }

    ~ScopedDeadline() {
      budget_->deadline_ticks_.store(prev_, std::memory_order_relaxed);
      if (!budget_->exhausted_.load(std::memory_order_relaxed)) return;
      if (budget_->cancelled_.load(std::memory_order_relaxed)) return;
      const int64_t limit =
          budget_->step_limit_.load(std::memory_order_relaxed);
      const bool steps_hit =
          limit > 0 && budget_->steps_.load(std::memory_order_relaxed) > limit;
      const bool deadline_hit =
          prev_ != kNoDeadline &&
          std::chrono::steady_clock::now().time_since_epoch().count() > prev_;
      // Judge memory against the peak, not the current count: the consumer
      // that tripped the limit has typically released its arenas by the time
      // this scope unwinds, but the workload still does not fit the caller's
      // armed limit.
      const int64_t mem_limit =
          budget_->memory_limit_.load(std::memory_order_relaxed);
      const bool memory_hit =
          mem_limit > 0 &&
          budget_->bytes_peak_.load(std::memory_order_relaxed) > mem_limit;
      if (!steps_hit && !deadline_hit && !memory_hit) {
        budget_->exhausted_.store(false, std::memory_order_relaxed);
        budget_->reason_.store(static_cast<int>(ExhaustionReason::kNone),
                               std::memory_order_relaxed);
      }
    }

    ScopedDeadline(const ScopedDeadline&) = delete;
    ScopedDeadline& operator=(const ScopedDeadline&) = delete;

   private:
    Budget* budget_;
    int64_t prev_;
  };

 private:
  /// Steps between wall-clock checks.  Small enough that a 50 ms deadline on
  /// an adversarial instance fires promptly, large enough that `Charge` stays
  /// a single atomic add in the common case.
  static constexpr int64_t kClockPeriod = 256;

  /// Sentinel for "no deadline" in `deadline_ticks_`.  Deadlines are stored
  /// as raw steady_clock tick counts so they fit in one atomic word; a real
  /// steady_clock reading some milliseconds in the future is never 0.
  static constexpr int64_t kNoDeadline = 0;

  /// Marks the budget exhausted; the first reason to trip wins (later
  /// resources exhausting concurrently must not overwrite it).
  void ExhaustWith(ExhaustionReason reason) {
    int expected = static_cast<int>(ExhaustionReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
    exhausted_.store(true, std::memory_order_relaxed);
  }

  /// Out-of-line injector hooks (engine/fault_injection.cc): apply the
  /// plan's charge/alloc schedule; false when an injected fault fires (the
  /// reason is recorded).  Kept out of the header so the hot path does not
  /// need the injector's definition.
  bool InjectChargeFault(FaultInjector* injector);
  bool InjectAllocFault(FaultInjector* injector);

  std::atomic<int64_t> steps_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> bytes_peak_{0};
  std::atomic<bool> exhausted_{false};
  std::atomic<bool> cancelled_{false};
  std::atomic<int> reason_{static_cast<int>(ExhaustionReason::kNone)};
  std::atomic<int64_t> step_limit_{0};
  std::atomic<int64_t> memory_limit_{0};
  std::atomic<int64_t> deadline_ticks_{kNoDeadline};
  std::atomic<FaultInjector*> injector_{nullptr};
};

}  // namespace tpc

#endif  // TPC_ENGINE_BUDGET_H_
