// Cooperative resource budgets for the decision procedures.
//
// The paper classifies the general problems coNP-complete (Theorem 3.3) and
// EXPTIME-complete (Theorem 6.6), so any production deployment must assume
// some instances will not finish.  A `Budget` is the engine's answer: a step
// limit plus a wall-clock deadline shared by every worker thread of one
// decision.  Hot loops call `Charge(n)` and abandon the search when it
// returns false; the decision then reports `Outcome::kResourceExhausted`
// instead of running forever.
//
// `Charge` is designed for enumeration/DP/automaton inner loops: the common
// case is one relaxed atomic add, and the wall clock is consulted only when
// the step counter crosses a multiple of `kClockPeriod`.

#ifndef TPC_ENGINE_BUDGET_H_
#define TPC_ENGINE_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tpc {

/// A shared step/deadline budget.  Thread-safe: many workers may `Charge`
/// concurrently.  An unarmed (default) budget never exhausts but still
/// counts steps, so instrumentation works on unlimited runs too.
class Budget {
 public:
  Budget() = default;

  /// Arms the budget: at most `step_limit` steps (0 = unlimited) and at most
  /// `deadline_ms` milliseconds from now (0 = unlimited).  Resets the step
  /// counter and the exhausted flag.  All fields are atomic, so calling this
  /// while workers are still charging is not undefined behavior — but it is
  /// still wrong (a decision would run under a mix of old and new limits);
  /// re-arm only between decisions.
  void Arm(int64_t step_limit, int64_t deadline_ms) {
    steps_.store(0, std::memory_order_relaxed);
    exhausted_.store(false, std::memory_order_relaxed);
    step_limit_.store(step_limit, std::memory_order_relaxed);
    int64_t deadline_ticks = kNoDeadline;
    if (deadline_ms > 0) {
      deadline_ticks = (std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadline_ms))
                           .time_since_epoch()
                           .count();
    }
    deadline_ticks_.store(deadline_ticks, std::memory_order_relaxed);
  }

  bool limited() const {
    return step_limit_.load(std::memory_order_relaxed) > 0 ||
           deadline_ticks_.load(std::memory_order_relaxed) != kNoDeadline;
  }

  /// Consumes `n` steps; returns false once the budget is exhausted.  A
  /// false result is sticky: every later call also returns false.
  bool Charge(int64_t n = 1) {
    int64_t used = steps_.fetch_add(n, std::memory_order_relaxed) + n;
    const int64_t limit = step_limit_.load(std::memory_order_relaxed);
    const int64_t deadline = deadline_ticks_.load(std::memory_order_relaxed);
    if (limit <= 0 && deadline == kNoDeadline) return true;
    if (exhausted_.load(std::memory_order_relaxed)) return false;
    if (limit > 0 && used > limit) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (deadline != kNoDeadline &&
        used / kClockPeriod != (used - n) / kClockPeriod &&
        std::chrono::steady_clock::now().time_since_epoch().count() >
            deadline) {
      exhausted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  bool Exhausted() const {
    return exhausted_.load(std::memory_order_relaxed);
  }

  int64_t steps_used() const {
    return steps_.load(std::memory_order_relaxed);
  }

  /// Scoped per-decision deadline: for its lifetime the budget's effective
  /// deadline is the *tighter* of the caller's and `deadline_ms` from now
  /// (0 = leave the caller's deadline as is).  This is how
  /// `EngineLimits::max_milliseconds` arms the context budget once at a
  /// procedure's entry, so the legacy limit and the ctx deadline stop racing
  /// as separate clocks: every hot loop observes one deadline via `Charge`
  /// and reports one `kResourceExhausted` path.
  ///
  /// On destruction the caller's deadline is restored, and the sticky
  /// exhausted flag is cleared unless one of the caller's own limits (step
  /// limit or caller deadline) has genuinely been hit — so a reused context
  /// (e.g. a benchmark loop) is not poisoned by one capped decision.
  /// Create between decisions only; do not nest (same contract as `Arm`).
  class ScopedDeadline {
   public:
    ScopedDeadline(Budget* budget, int64_t deadline_ms) : budget_(budget) {
      prev_ = budget_->deadline_ticks_.load(std::memory_order_relaxed);
      if (deadline_ms > 0) {
        const int64_t ticks = (std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(deadline_ms))
                                  .time_since_epoch()
                                  .count();
        if (prev_ == kNoDeadline || ticks < prev_) {
          budget_->deadline_ticks_.store(ticks, std::memory_order_relaxed);
        }
      }
    }

    ~ScopedDeadline() {
      budget_->deadline_ticks_.store(prev_, std::memory_order_relaxed);
      if (!budget_->exhausted_.load(std::memory_order_relaxed)) return;
      const int64_t limit =
          budget_->step_limit_.load(std::memory_order_relaxed);
      const bool steps_hit =
          limit > 0 && budget_->steps_.load(std::memory_order_relaxed) > limit;
      const bool deadline_hit =
          prev_ != kNoDeadline &&
          std::chrono::steady_clock::now().time_since_epoch().count() > prev_;
      if (!steps_hit && !deadline_hit) {
        budget_->exhausted_.store(false, std::memory_order_relaxed);
      }
    }

    ScopedDeadline(const ScopedDeadline&) = delete;
    ScopedDeadline& operator=(const ScopedDeadline&) = delete;

   private:
    Budget* budget_;
    int64_t prev_;
  };

 private:
  /// Steps between wall-clock checks.  Small enough that a 50 ms deadline on
  /// an adversarial instance fires promptly, large enough that `Charge` stays
  /// a single atomic add in the common case.
  static constexpr int64_t kClockPeriod = 256;

  /// Sentinel for "no deadline" in `deadline_ticks_`.  Deadlines are stored
  /// as raw steady_clock tick counts so they fit in one atomic word; a real
  /// steady_clock reading some milliseconds in the future is never 0.
  static constexpr int64_t kNoDeadline = 0;

  std::atomic<int64_t> steps_{0};
  std::atomic<bool> exhausted_{false};
  std::atomic<int64_t> step_limit_{0};
  std::atomic<int64_t> deadline_ticks_{kNoDeadline};
};

}  // namespace tpc

#endif  // TPC_ENGINE_BUDGET_H_
