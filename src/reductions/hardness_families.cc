#include "reductions/hardness_families.h"

#include <string>

#include "regex/regex.h"

namespace tpc {

WoodInstance BuildWoodInstance(const Regex& e,
                               const std::vector<LabelId>& sigma,
                               LabelId root, LabelPool* pool) {
  (void)pool;
  WoodInstance out;
  out.dtd.AddStart(root);
  out.dtd.SetRule(root, e);
  for (LabelId l : sigma) out.dtd.SetRule(l, Regex::Epsilon());
  out.p = Tpq(root);
  for (LabelId l : sigma) out.p.AddChild(0, l, EdgeKind::kChild);
  return out;
}

Figure2Gadgets BuildFigure2Gadgets(LabelPool* pool) {
  Figure2Gadgets g;
  LabelId y = pool->Intern("y");
  LabelId a = pool->Intern("a");
  LabelId b = pool->Intern("b");
  LabelId z = pool->Intern("z");

  g.y = Tpq(y);
  NodeId v = g.y.AddChild(0, a, EdgeKind::kChild);
  g.y.AddChild(v, b, EdgeKind::kDescendant);

  g.t = Tpq(y);
  v = g.t.AddChild(0, a, EdgeKind::kChild);
  g.t.AddChild(v, b, EdgeKind::kChild);

  g.f = Tpq(y);
  v = g.f.AddChild(0, a, EdgeKind::kChild);
  v = g.f.AddChild(v, kWildcard, EdgeKind::kChild);
  g.f.AddChild(v, kWildcard, EdgeKind::kChild);

  g.t_true = Tree(y);
  v = g.t_true.AddChild(0, a);
  g.t_true.AddChild(v, b);

  g.t_false = Tree(y);
  v = g.t_false.AddChild(0, a);
  v = g.t_false.AddChild(v, z);
  g.t_false.AddChild(v, b);
  return g;
}

ConpFamilyInstance BuildConpFamily(int32_t n, LabelPool* pool) {
  ConpFamilyInstance out;
  LabelId r = pool->Intern("r");
  LabelId u = pool->Intern("u");
  LabelId c = pool->Intern("c");

  out.p = Tpq(r);
  for (int32_t i = 0; i < n; ++i) {
    LabelId ai = pool->Intern("a" + std::to_string(i));
    LabelId bi = pool->Intern("b" + std::to_string(i));
    NodeId v = out.p.AddChild(0, u, EdgeKind::kChild);
    v = out.p.AddChild(v, ai, EdgeKind::kChild);
    v = out.p.AddChild(v, bi, EdgeKind::kDescendant);
    out.p.AddChild(v, c, EdgeKind::kChild);
  }

  auto star_path = [&](int32_t stars) {
    Tpq q(kWildcard);
    NodeId v = 0;
    for (int32_t i = 1; i < stars; ++i) {
      v = q.AddChild(v, kWildcard, EdgeKind::kChild);
    }
    q.AddChild(v, c, EdgeKind::kChild);
    return q;
  };
  out.q_yes = star_path(4);
  out.q_no = star_path(5);
  return out;
}

}  // namespace tpc
