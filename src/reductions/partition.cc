#include "reductions/partition.h"

#include <algorithm>
#include <cassert>
#include <numeric>

#include "regex/regex.h"

namespace tpc {

namespace {

/// Backtracking: assign numbers to `groups` buckets with target sums.
bool AssignGroups(const std::vector<int64_t>& numbers, size_t index,
                  std::vector<int64_t>* remaining) {
  if (index == numbers.size()) {
    return std::all_of(remaining->begin(), remaining->end(),
                       [](int64_t r) { return r == 0; });
  }
  int64_t x = numbers[index];
  for (size_t g = 0; g < remaining->size(); ++g) {
    if ((*remaining)[g] < x) continue;
    // Symmetry breaking: skip buckets with the same remaining capacity.
    bool duplicate = false;
    for (size_t h = 0; h < g && !duplicate; ++h) {
      duplicate = (*remaining)[h] == (*remaining)[g];
    }
    if (duplicate) continue;
    (*remaining)[g] -= x;
    if (AssignGroups(numbers, index + 1, remaining)) return true;
    (*remaining)[g] += x;
  }
  return false;
}

}  // namespace

bool SolveThreePartition(const ThreePartitionInstance& instance) {
  size_t n = instance.numbers.size();
  if (n == 0 || n % 3 != 0) return false;
  int64_t total =
      std::accumulate(instance.numbers.begin(), instance.numbers.end(),
                      int64_t{0});
  size_t groups = n / 3;
  if (total != instance.bound * static_cast<int64_t>(groups)) return false;
  std::vector<int64_t> numbers = instance.numbers;
  std::sort(numbers.begin(), numbers.end(), std::greater<>());
  std::vector<int64_t> remaining(groups, instance.bound);
  // Numbers in (B/4, B/2) force exactly three per group, so plain
  // sum-targeted backtracking decides the problem.
  return AssignGroups(numbers, 0, &remaining);
}

bool SolveFourPartition(const FourPartitionInstance& instance) {
  int64_t target = int64_t{1} << instance.log_target;
  size_t groups = size_t{1} << instance.log_groups4;
  if (instance.numbers.size() != 4 * groups) return false;
  int64_t total =
      std::accumulate(instance.numbers.begin(), instance.numbers.end(),
                      int64_t{0});
  if (total != target * static_cast<int64_t>(groups)) return false;
  std::vector<int64_t> numbers = instance.numbers;
  std::sort(numbers.begin(), numbers.end(), std::greater<>());
  std::vector<int64_t> remaining(groups, target);
  return AssignGroups(numbers, 0, &remaining);
}

FourPartitionInstance ThreeToFourPartition(
    const ThreePartitionInstance& instance) {
  int64_t sum =
      std::accumulate(instance.numbers.begin(), instance.numbers.end(),
                      int64_t{0});
  int32_t k = 2;
  while ((int64_t{1} << (k - 2)) <= sum) ++k;
  int64_t n = static_cast<int64_t>(instance.numbers.size());
  int32_t l = 0;
  while (4 * (int64_t{1} << l) < n + n / 3) ++l;
  FourPartitionInstance out;
  out.log_target = k;
  out.log_groups4 = l;
  out.numbers = instance.numbers;
  for (int64_t i = 0; i < n / 3; ++i) {
    out.numbers.push_back((int64_t{1} << k) - instance.bound);
  }
  int64_t padding = 4 * (int64_t{1} << l) - n - n / 3;
  for (int64_t i = 0; i < padding; ++i) {
    out.numbers.push_back(int64_t{1} << (k - 2));
  }
  return out;
}

std::vector<Tree> EnumerateBalancedTrees(int64_t count, LabelPool* pool) {
  // T_0: the four single-node trees.
  std::vector<Tree> current;
  for (const char* l : {"b", "c", "d", "e"}) {
    current.emplace_back(pool->Intern(l));
  }
  while (static_cast<int64_t>(current.size()) < count) {
    LabelId a = pool->Intern("a");
    std::vector<Tree> next;
    int64_t size = static_cast<int64_t>(current.size());
    // Stop early once `count` trees of the next level exist; |T_{i+1}| =
    // |T_i| (|T_i| - 1) / 2 grows doubly exponentially.
    for (int64_t i = 0; i < size; ++i) {
      for (int64_t j = i + 1; j < size; ++j) {
        Tree t(a);
        t.Graft(0, current[i]);
        t.Graft(0, current[j]);
        next.push_back(std::move(t));
        if (static_cast<int64_t>(next.size()) >= count) break;
      }
      if (static_cast<int64_t>(next.size()) >= count) break;
    }
    assert(next.size() > current.size() && "T_i must grow");
    current = std::move(next);
  }
  current.resize(count);
  return current;
}

PartitionSatInstance BuildPartitionReduction(
    const FourPartitionInstance& instance, LabelPool* pool) {
  PartitionSatInstance out;
  LabelId a = pool->Intern("a");
  // Fixed DTD: a -> (a|b|c|d|e)(a|b|c|d|e), others leaves; root a.
  std::vector<Regex> any;
  for (const char* l : {"a", "b", "c", "d", "e"}) {
    any.push_back(Regex::Letter(pool->Intern(l)));
  }
  Regex one = Regex::Union(std::move(any));
  std::vector<Regex> two;
  two.push_back(one);
  two.push_back(std::move(one));
  out.dtd.AddStart(a);
  out.dtd.SetRule(a, Regex::Concat(std::move(two)));
  for (const char* l : {"b", "c", "d", "e"}) {
    out.dtd.SetRule(pool->Intern(l), Regex::Epsilon());
  }

  int32_t k_len = instance.log_target;
  int32_t l_len = instance.log_groups4;
  int64_t total_leaves = int64_t{1} << (k_len + l_len);
  std::vector<Tree> balanced = EnumerateBalancedTrees(total_leaves, pool);

  // Pattern: root a; per number, an a-path of length L; below it, `number`
  // a-paths of length K; below each of those one distinct balanced tree.
  Tpq p(a);
  size_t next_tree = 0;
  for (int64_t number : instance.numbers) {
    NodeId v = 0;
    for (int32_t i = 0; i < l_len; ++i) {
      v = p.AddChild(v, a, EdgeKind::kChild);
    }
    for (int64_t j = 0; j < number; ++j) {
      // A path of K edges whose last node is the balanced tree's root, so
      // that the 2^{K+L} pairwise different trees all sit at depth exactly
      // K+L — the capacity of the binary DTD, which forces tightness.
      NodeId w = v;
      for (int32_t i = 0; i + 1 < k_len; ++i) {
        w = p.AddChild(w, a, EdgeKind::kChild);
      }
      assert(next_tree < balanced.size());
      const Tree& t = balanced[next_tree++];
      // Graft the balanced tree as a pattern with child edges.
      std::vector<std::pair<NodeId, NodeId>> queue = {{0, w}};
      for (size_t qi = 0; qi < queue.size(); ++qi) {
        auto [src, dst_parent] = queue[qi];
        NodeId dst = p.AddChild(dst_parent, t.Label(src), EdgeKind::kChild);
        for (NodeId c = t.FirstChild(src); c != kNoNode;
             c = t.NextSibling(c)) {
          queue.emplace_back(c, dst);
        }
      }
    }
  }
  assert(next_tree == balanced.size());
  out.p = std::move(p);
  return out;
}

}  // namespace tpc
