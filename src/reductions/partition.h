// The NP-hardness machinery of Theorem 4.2(2): satisfiability of TPQ(/)
// w.r.t. a *fixed* DTD, via 3-PARTITION → 4-PARTITION → satisfiability
// (Section 4 and Appendix C of the paper, pattern structure in Figure 3).
//
// The fixed DTD describes perfect binary branching: every a-node has exactly
// two children over {a,b,c,d,e}, every other label is a leaf.  The sets T_i
// of perfectly balanced trees with pairwise-different sibling subtrees grow
// doubly exponentially (|T_0| = 4, |T_{i+1}| = |T_i|(|T_i|-1)/2), and each
// such tree, viewed as a TPQ(/) pattern, strongly embeds into exactly one
// tree satisfying the DTD — itself.  Attaching 2^{K+L} pairwise different
// T_M trees under paths that spell the 4-PARTITION instance forces any
// satisfying tree to realize a partition.

#ifndef TPC_REDUCTIONS_PARTITION_H_
#define TPC_REDUCTIONS_PARTITION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "base/label.h"
#include "dtd/dtd.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// A 3-PARTITION instance: bound B and a multiset of integers strictly
/// between B/4 and B/2, |numbers| divisible by 3.
struct ThreePartitionInstance {
  int64_t bound = 0;
  std::vector<int64_t> numbers;
};

/// A 4-PARTITION instance (the paper's convenient intermediate form):
/// partition `numbers` (|numbers| = 4 * 2^log_groups4) into |numbers|/4
/// sub-multisets each summing to 2^log_target.
struct FourPartitionInstance {
  int32_t log_target = 0;   // K: groups must sum to 2^K
  int32_t log_groups4 = 0;  // L: |numbers| = 4 * 2^L
  std::vector<int64_t> numbers;
};

/// Brute-force solvers for ground truth on small instances.
bool SolveThreePartition(const ThreePartitionInstance& instance);
bool SolveFourPartition(const FourPartitionInstance& instance);

/// The polynomial reduction of Appendix C: K is the smallest number with
/// sum(S) < 2^{K-2}, L the smallest with |S| + |S|/3 <= 4 * 2^L; padding
/// numbers 2^K - B and 2^{K-2} complete the multiset.
FourPartitionInstance ThreeToFourPartition(
    const ThreePartitionInstance& instance);

/// A satisfiability-with-fixed-DTD instance.
struct PartitionSatInstance {
  Dtd dtd;  // the fixed binary DTD over {a,b,c,d,e}
  Tpq p;    // a TPQ(/) pattern; strongly satisfiable iff partition exists
};

/// Builds the Theorem 4.2(2) instance from a 4-PARTITION instance.
/// The pattern has |numbers| paths of length L, k paths of length K below
/// the path of each number k, and 2^{K+L} pairwise different T_M trees at
/// the bottom.  Pattern size is polynomial in the unary instance but grows
/// quickly; intended for small K+L.
PartitionSatInstance BuildPartitionReduction(
    const FourPartitionInstance& instance, LabelPool* pool);

/// Enumerates (at least) `count` pairwise different trees of the paper's
/// set T_m (perfectly balanced depth-m trees over the fixed alphabet with
/// different sibling subtrees), for the smallest sufficient m.
std::vector<Tree> EnumerateBalancedTrees(int64_t count, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_REDUCTIONS_PARTITION_H_
