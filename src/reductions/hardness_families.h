// Hardness-instance families for the lower-bound cells of the paper's
// tables: Wood's construction (Theorem 4.2(1)), the Figure 2/5 SAT gadgets
// of Theorem 3.3, and an engineered worst-case family for the coNP-complete
// containment cells of Table 1.

#ifndef TPC_REDUCTIONS_HARDNESS_FAMILIES_H_
#define TPC_REDUCTIONS_HARDNESS_FAMILIES_H_

#include <cstdint>
#include <vector>

#include "base/label.h"
#include "dtd/dtd.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Wood's NP-hardness setting (Theorem 4.2(1)): deciding whether L(e)
/// contains a word using *every* letter of Σ is NP-complete, hence
/// satisfiability of TPQ(/) w.r.t. the depth-one DTD r -> e is NP-hard.
struct WoodInstance {
  Dtd dtd;  // root r with content model e
  Tpq p;    // r[x_1][x_2]...[x_k]: "every letter occurs below the root"
};

/// Builds a Wood instance for the content model `e` over the letters
/// `sigma` (all interned in `pool`); `p` asks for all of them at depth one.
WoodInstance BuildWoodInstance(const Regex& e,
                               const std::vector<LabelId>& sigma,
                               LabelId root, LabelPool* pool);

/// The Figure 2/5 gadgets of Theorem 3.3.  For a variable with labels
/// (y, a, b):  Y = y/a//b ∈ TPQ(/,//),  T = y/a/b ∈ TPQ(/),
/// F = y/a/*/* ∈ PQ(/,*)  (the a-node's child on the way to b has a child).
/// They satisfy the three properties stated in the paper:
///   L_s(Y) ⊆ L_s(T) ∪ L_s(F);
///   t_true  = y(a(b))     ∈ L_s(Y) ∩ L_s(T) \ L_s(F);
///   t_false = y(a(z(b)))  ∈ L_s(Y) ∩ L_s(F) \ L_s(T).
struct Figure2Gadgets {
  Tpq y;       // Y gadget
  Tpq t;       // T(y) gadget
  Tpq f;       // F(y) gadget
  Tree t_true;
  Tree t_false;
};

Figure2Gadgets BuildFigure2Gadgets(LabelPool* pool);

/// An engineered worst-case family for the coNP-complete cells of Table 1
/// (left pattern in TPQ(/,//), right path in PQ(/,*) — the Theorem 3.3(2)
/// cell).
///
/// p_n = r[u/a_1//b_1/c]...[u/a_n//b_n/c]: the canonical chain length j_i of
/// each branch encodes a bit; the deepest c of a model sits at depth
/// 4 + max_i j_i.
///   q_yes = */*/*/*/c   ("some c at depth >= 4"): matched by every
///     canonical model, so p ⊆ q_yes holds — and a canonical-model
///     procedure must sweep the full exponential model space to certify it.
///   q_no  = */*/*/*/*/c ("some c at depth >= 5"): matched by a model iff
///     some chain is non-empty, so the all-zero model is the unique
///     counterexample shape and containment fails.
struct ConpFamilyInstance {
  Tpq p;
  Tpq q_yes;  // contained; certification requires a full sweep
  Tpq q_no;   // not contained; all-zero canonical model is the witness
};

ConpFamilyInstance BuildConpFamily(int32_t n, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_REDUCTIONS_HARDNESS_FAMILIES_H_
