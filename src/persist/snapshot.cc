#include "persist/snapshot.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cassert>
#include <cstdio>
#include <cstring>

namespace tpc {
namespace {

constexpr char kMagic[8] = {'T', 'P', 'C', 'S', 'N', 'A', 'P', '\0'};
constexpr uint32_t kEndianTag = 0x01020304;
constexpr uint64_t kHeaderBytes = 64;

// Header field offsets (see the layout comment in snapshot.h).
constexpr size_t kOffVersion = 8;
constexpr size_t kOffEndian = 12;
constexpr size_t kOffFileBytes = 16;
constexpr size_t kOffChecksum = 24;
constexpr size_t kOffLabelCount = 32;
constexpr size_t kOffTreeCount = 36;
constexpr size_t kOffPatternCount = 40;
constexpr size_t kOffVerdictCount = 44;
constexpr size_t kOffHotCount = 48;

void AppendU32(std::string* out, uint32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendU64(std::string* out, uint64_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

void AppendI32(std::string* out, int32_t v) {
  out->append(reinterpret_cast<const char*>(&v), sizeof(v));
}

/// Pads `out` with zero bytes to the next multiple of 8, so every entry —
/// and therefore every column inside it — lands on an aligned offset in the
/// mapped file.
void PadTo8(std::string* out) {
  while (out->size() % 8 != 0) out->push_back('\0');
}

/// FNV-1a 64-bit, streamed across the section buffers.
uint64_t Fnv1a(uint64_t h, const void* data, size_t n) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

constexpr uint64_t kFnvSeed = 0xcbf29ce484222325ULL;

void PutU32(std::string* buf, size_t off, uint32_t v) {
  std::memcpy(buf->data() + off, &v, sizeof(v));
}

void PutU64(std::string* buf, size_t off, uint64_t v) {
  std::memcpy(buf->data() + off, &v, sizeof(v));
}

/// Bounds-checked forward scanner over the mapped payload.  Every accessor
/// fails (returns false) instead of reading past `size`, so a truncated or
/// lying section table can never form an out-of-range pointer.
struct Cursor {
  const uint8_t* base;
  uint64_t size;
  uint64_t off = 0;

  bool U32(uint32_t* v) {
    if (size - off < 4) return false;
    std::memcpy(v, base + off, 4);
    off += 4;
    return true;
  }
  bool U64(uint64_t* v) {
    if (size - off < 8) return false;
    std::memcpy(v, base + off, 8);
    off += 8;
    return true;
  }
  /// Claims `count` elements of `elem_bytes` each; `*p` points into the
  /// mapping.  The caller guarantees 4-byte element types only start at
  /// 4-aligned offsets (the writer's padding discipline ensures it; the
  /// assert documents it).
  bool Array(uint64_t count, uint64_t elem_bytes, const uint8_t** p) {
    if (elem_bytes != 0 && count > (size - off) / elem_bytes) return false;
    assert(elem_bytes == 1 || off % 4 == 0);
    *p = base + off;
    off += count * elem_bytes;
    return true;
  }
  bool Align8() {
    const uint64_t target = (off + 7) & ~uint64_t{7};
    if (target > size) return false;
    off = target;
    return true;
  }
};

bool Fail(std::string* error, const std::string& reason) {
  if (error != nullptr) *error = "snapshot: " + reason;
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// SnapshotWriter

SnapshotWriter::SnapshotWriter(Budget* budget) : tracked_(budget) {}

bool SnapshotWriter::AppendEntry(std::string* section, const std::string& entry,
                                 uint32_t* count) {
  // Charge-then-append: a refused charge leaves the section byte-for-byte as
  // it was, so no partial entry can ever reach the file.
  if (!tracked_.TryCharge(static_cast<int64_t>(entry.size()))) return false;
  section->append(entry);
  ++*count;
  return true;
}

bool SnapshotWriter::SetLabels(const LabelPool& pool) {
  if (have_labels_) return false;
  std::string entry;
  const size_t n = pool.size();
  for (size_t id = 0; id < n; ++id) {
    const std::string& name = pool.Name(static_cast<LabelId>(id));
    AppendU32(&entry, static_cast<uint32_t>(name.size()));
    entry.append(name);
    PadTo8(&entry);
  }
  uint32_t ignored = 0;
  if (!AppendEntry(&labels_, entry, &ignored)) return false;
  label_count_ = static_cast<uint32_t>(n);
  have_labels_ = true;
  return true;
}

std::optional<uint32_t> SnapshotWriter::AddTree(const Tree& t) {
  if (t.empty()) return std::nullopt;
  const TreeView view = t.View();
  const int32_t n = view.size();
  std::string entry;
  entry.reserve(8 + static_cast<size_t>(n) * 24 + 8);
  AppendU32(&entry, static_cast<uint32_t>(n));
  AppendU32(&entry, 0);  // pad: keep the columns 8-aligned
  auto col = [&entry, n](const void* data, size_t elem) {
    entry.append(static_cast<const char*>(data), static_cast<size_t>(n) * elem);
  };
  col(view.labels(), sizeof(LabelId));
  col(view.parent(), sizeof(NodeId));
  col(view.post_of(), sizeof(int32_t));
  col(view.node_at_post(), sizeof(NodeId));
  col(view.size_at_post(), sizeof(int32_t));
  col(view.label_at_post(), sizeof(LabelId));
  PadTo8(&entry);
  if (!AppendEntry(&trees_, entry, &tree_count_)) return std::nullopt;
  return tree_count_ - 1;
}

std::optional<uint32_t> SnapshotWriter::AddPattern(const Tpq& p,
                                                   const TpqDigest& digest) {
  if (p.empty()) return std::nullopt;
  const int32_t n = p.size();
  std::string entry;
  AppendU32(&entry, static_cast<uint32_t>(n));
  AppendU32(&entry, 0);
  AppendU64(&entry, digest.lo);
  AppendU64(&entry, digest.hi);
  for (NodeId v = 0; v < n; ++v) AppendU32(&entry, p.Label(v));
  for (NodeId v = 0; v < n; ++v) AppendI32(&entry, p.Parent(v));
  entry.push_back('\0');  // edges[0] is unused (the root has no parent edge)
  for (NodeId v = 1; v < n; ++v) {
    entry.push_back(static_cast<char>(p.Edge(v)));
  }
  PadTo8(&entry);
  if (!AppendEntry(&patterns_, entry, &pattern_count_)) return std::nullopt;
  return pattern_count_ - 1;
}

bool SnapshotWriter::AddVerdict(const SnapshotVerdict& verdict) {
  assert(verdict.p_index < pattern_count_ && verdict.q_index < pattern_count_);
  assert(verdict.tree_index < static_cast<int32_t>(tree_count_));
  std::string entry;
  AppendU32(&entry, verdict.p_index);
  AppendU32(&entry, verdict.q_index);
  entry.push_back(static_cast<char>(verdict.mode_tag));
  entry.push_back(static_cast<char>(verdict.bound_tag));
  entry.push_back(verdict.contained ? 1 : 0);
  entry.push_back(static_cast<char>(verdict.algorithm_tag));
  AppendI32(&entry, verdict.tree_index);
  AppendU32(&entry, static_cast<uint32_t>(verdict.witness.size()));
  for (int32_t len : verdict.witness) AppendI32(&entry, len);
  PadTo8(&entry);
  return AppendEntry(&verdicts_, entry, &verdict_count_);
}

bool SnapshotWriter::AddHotProgram(const SnapshotHotProgram& hot) {
  assert(hot.pattern_index < pattern_count_);
  std::string entry;
  AppendU32(&entry, hot.pattern_index);
  AppendU32(&entry, hot.mode_tag);
  return AppendEntry(&hot_programs_, entry, &hot_program_count_);
}

bool SnapshotWriter::WriteTo(const std::string& path, std::string* error) {
  if (!have_labels_) {
    return Fail(error, "writer has no label section (SetLabels failed/missing)");
  }
  const std::string* sections[] = {&labels_, &trees_, &patterns_, &verdicts_,
                                   &hot_programs_};
  uint64_t payload_bytes = 0;
  uint64_t checksum = kFnvSeed;
  for (const std::string* s : sections) {
    payload_bytes += s->size();
    checksum = Fnv1a(checksum, s->data(), s->size());
  }

  std::string header(kHeaderBytes, '\0');
  std::memcpy(header.data(), kMagic, sizeof(kMagic));
  PutU32(&header, kOffVersion, kSnapshotFormatVersion);
  PutU32(&header, kOffEndian, kEndianTag);
  PutU64(&header, kOffFileBytes, kHeaderBytes + payload_bytes);
  PutU64(&header, kOffChecksum, checksum);
  PutU32(&header, kOffLabelCount, label_count_);
  PutU32(&header, kOffTreeCount, tree_count_);
  PutU32(&header, kOffPatternCount, pattern_count_);
  PutU32(&header, kOffVerdictCount, verdict_count_);
  PutU32(&header, kOffHotCount, hot_program_count_);

  // Temp file + rename: a reader either sees the previous snapshot or the
  // complete new one, never a prefix.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) return Fail(error, "cannot open temp file " + tmp);
  bool ok = std::fwrite(header.data(), 1, header.size(), f) == header.size();
  for (const std::string* s : sections) {
    ok = ok && std::fwrite(s->data(), 1, s->size(), f) == s->size();
  }
  ok = std::fclose(f) == 0 && ok;
  if (ok) ok = std::rename(tmp.c_str(), path.c_str()) == 0;
  if (!ok) {
    std::remove(tmp.c_str());
    return Fail(error, "write failed for " + path);
  }
  return true;
}

// ---------------------------------------------------------------------------
// SnapshotReader

SnapshotReader::~SnapshotReader() { Close(); }

void SnapshotReader::Close() {
  if (base_ != nullptr && is_mmap_) {
    ::munmap(const_cast<uint8_t*>(base_), static_cast<size_t>(mapped_bytes_));
  }
  base_ = nullptr;
  is_mmap_ = false;
  mapped_bytes_ = 0;
  heap_.clear();
  heap_.shrink_to_fit();
  tracked_.ReleaseAll();
  label_count_ = 0;
  labels_.clear();
  trees_.clear();
  patterns_.clear();
  verdicts_.clear();
  hot_programs_.clear();
}

bool SnapshotReader::Open(const std::string& path, Budget* budget,
                          std::string* error) {
  Close();
  tracked_.Attach(budget);

  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Fail(error, "cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Fail(error, "cannot stat " + path);
  }
  const int64_t file_bytes = static_cast<int64_t>(st.st_size);
  if (file_bytes < static_cast<int64_t>(kHeaderBytes)) {
    ::close(fd);
    return Fail(error, "truncated: file smaller than the 64-byte header");
  }
  if (!tracked_.TryCharge(file_bytes)) {
    ::close(fd);
    return Fail(error, "byte budget refused the mapping");
  }

  void* mapped = ::mmap(nullptr, static_cast<size_t>(file_bytes), PROT_READ,
                        MAP_PRIVATE, fd, 0);
  if (mapped != MAP_FAILED) {
    base_ = static_cast<const uint8_t*>(mapped);
    is_mmap_ = true;
    ::close(fd);
  } else {
    // Filesystems without mmap support: fall back to a heap image.  Same
    // validation, same accessors; only the zero-copy property is lost.
    heap_.resize(static_cast<size_t>(file_bytes));
    int64_t done = 0;
    while (done < file_bytes) {
      const ssize_t got = ::pread(fd, heap_.data() + done,
                                  static_cast<size_t>(file_bytes - done), done);
      if (got <= 0) {
        ::close(fd);
        Close();
        return Fail(error, "short read from " + path);
      }
      done += got;
    }
    ::close(fd);
    base_ = heap_.data();
    is_mmap_ = false;
  }
  mapped_bytes_ = file_bytes;

  if (!Validate(error)) {
    Close();
    return false;
  }
  return true;
}

bool SnapshotReader::Validate(std::string* error) {
  if (std::memcmp(base_, kMagic, sizeof(kMagic)) != 0) {
    return Fail(error, "bad magic (not a TPC snapshot)");
  }
  uint32_t version, endian, verdict_count, hot_count, tree_count, pat_count;
  uint64_t file_bytes, checksum;
  std::memcpy(&version, base_ + kOffVersion, 4);
  std::memcpy(&endian, base_ + kOffEndian, 4);
  std::memcpy(&file_bytes, base_ + kOffFileBytes, 8);
  std::memcpy(&checksum, base_ + kOffChecksum, 8);
  std::memcpy(&label_count_, base_ + kOffLabelCount, 4);
  std::memcpy(&tree_count, base_ + kOffTreeCount, 4);
  std::memcpy(&pat_count, base_ + kOffPatternCount, 4);
  std::memcpy(&verdict_count, base_ + kOffVerdictCount, 4);
  std::memcpy(&hot_count, base_ + kOffHotCount, 4);

  if (version != kSnapshotFormatVersion) {
    return Fail(error, "format version skew: file has v" +
                           std::to_string(version) + ", reader expects v" +
                           std::to_string(kSnapshotFormatVersion));
  }
  if (endian != kEndianTag) {
    return Fail(error, "endianness mismatch (foreign byte order)");
  }
  if (file_bytes != static_cast<uint64_t>(mapped_bytes_)) {
    return Fail(error, "truncated: header declares " +
                           std::to_string(file_bytes) + " bytes, file has " +
                           std::to_string(mapped_bytes_));
  }
  const uint64_t actual =
      Fnv1a(kFnvSeed, base_ + kHeaderBytes,
            static_cast<size_t>(mapped_bytes_) - kHeaderBytes);
  if (actual != checksum) {
    return Fail(error, "payload checksum mismatch (corrupt file)");
  }
  // Reserved header tail must be zero — it is the only region the payload
  // checksum does not cover, and a future version may assign it meaning.
  for (uint64_t i = kOffHotCount + 4; i < kHeaderBytes; ++i) {
    if (base_[i] != 0) {
      return Fail(error, "nonzero reserved header bytes (corrupt file)");
    }
  }
  if (label_count_ == 0) return Fail(error, "empty label section");

  Cursor cur{base_ + kHeaderBytes,
             static_cast<uint64_t>(mapped_bytes_) - kHeaderBytes};

  // Labels: spellings in id order; id 0 must be the wildcard.
  labels_.reserve(label_count_);
  for (uint32_t i = 0; i < label_count_; ++i) {
    uint32_t len;
    const uint8_t* bytes;
    if (!cur.U32(&len) || !cur.Array(len, 1, &bytes) || !cur.Align8()) {
      return Fail(error, "label section overruns the file");
    }
    labels_.emplace_back(reinterpret_cast<const char*>(bytes), len);
  }
  if (labels_[0] != "*") return Fail(error, "label id 0 is not the wildcard");

  // Trees: six columns each, then the full invariant check.
  trees_.reserve(tree_count);
  for (uint32_t i = 0; i < tree_count; ++i) {
    uint32_t n, pad;
    if (!cur.U32(&n) || !cur.U32(&pad) || n == 0 ||
        n > static_cast<uint32_t>(INT32_MAX)) {
      return Fail(error, "tree " + std::to_string(i) + ": bad node count");
    }
    TreeColumns t;
    t.n = static_cast<int32_t>(n);
    const uint8_t* p;
    auto take = [&cur, &p, n](const void** out) {
      if (!cur.Array(n, 4, &p)) return false;
      *out = p;
      return true;
    };
    const void* cols[6];
    for (auto& c : cols) {
      if (!take(&c)) {
        return Fail(error, "tree " + std::to_string(i) + " overruns the file");
      }
    }
    if (!cur.Align8()) return Fail(error, "tree section overruns the file");
    t.labels = static_cast<const LabelId*>(cols[0]);
    t.parent = static_cast<const NodeId*>(cols[1]);
    t.post_of = static_cast<const int32_t*>(cols[2]);
    t.node_at_post = static_cast<const NodeId*>(cols[3]);
    t.size_at_post = static_cast<const int32_t*>(cols[4]);
    t.label_at_post = static_cast<const LabelId*>(cols[5]);
    std::string why;
    if (!ValidateTree(t, &why)) {
      return Fail(error, "tree " + std::to_string(i) + ": " + why);
    }
    trees_.push_back(t);
  }

  // Patterns.
  patterns_.reserve(pat_count);
  for (uint32_t i = 0; i < pat_count; ++i) {
    uint32_t n, pad;
    PatternRecord rec;
    if (!cur.U32(&n) || !cur.U32(&pad) || !cur.U64(&rec.digest.lo) ||
        !cur.U64(&rec.digest.hi) || n == 0 ||
        n > static_cast<uint32_t>(INT32_MAX)) {
      return Fail(error, "pattern " + std::to_string(i) + ": bad header");
    }
    rec.n = static_cast<int32_t>(n);
    const uint8_t* p;
    if (!cur.Array(n, sizeof(LabelId), &p)) {
      return Fail(error, "pattern " + std::to_string(i) + " overruns the file");
    }
    rec.labels = reinterpret_cast<const LabelId*>(p);
    if (!cur.Array(n, sizeof(NodeId), &p)) {
      return Fail(error, "pattern " + std::to_string(i) + " overruns the file");
    }
    rec.parents = reinterpret_cast<const NodeId*>(p);
    if (!cur.Array(n, 1, &p) || !cur.Align8()) {
      return Fail(error, "pattern " + std::to_string(i) + " overruns the file");
    }
    rec.edges = p;
    if (rec.parents[0] != kNoNode) {
      return Fail(error, "pattern " + std::to_string(i) + ": root has parent");
    }
    for (int32_t v = 1; v < rec.n; ++v) {
      if (rec.parents[v] < 0 || rec.parents[v] >= v) {
        return Fail(error,
                    "pattern " + std::to_string(i) + ": parent out of order");
      }
      if (rec.edges[v] > 1) {
        return Fail(error, "pattern " + std::to_string(i) + ": bad edge kind");
      }
    }
    for (int32_t v = 0; v < rec.n; ++v) {
      if (rec.labels[v] >= label_count_) {
        return Fail(error,
                    "pattern " + std::to_string(i) + ": label out of range");
      }
    }
    patterns_.push_back(rec);
  }

  // Verdicts.
  verdicts_.reserve(verdict_count);
  for (uint32_t i = 0; i < verdict_count; ++i) {
    VerdictRecord rec;
    uint32_t witness_len;
    uint8_t raw[4];
    const uint8_t* p;
    if (!cur.U32(&rec.p_index) || !cur.U32(&rec.q_index) ||
        !cur.Array(4, 1, &p)) {
      return Fail(error, "verdict " + std::to_string(i) + " overruns the file");
    }
    std::memcpy(raw, p, 4);
    rec.mode_tag = raw[0];
    rec.bound_tag = raw[1];
    rec.contained = raw[2] != 0;
    rec.algorithm_tag = raw[3];
    uint32_t tree_index_raw;
    if (!cur.U32(&tree_index_raw) || !cur.U32(&witness_len)) {
      return Fail(error, "verdict " + std::to_string(i) + " overruns the file");
    }
    rec.tree_index = static_cast<int32_t>(tree_index_raw);
    if (!cur.Array(witness_len, sizeof(int32_t), &p) || !cur.Align8()) {
      return Fail(error, "verdict " + std::to_string(i) + " overruns the file");
    }
    rec.witness = reinterpret_cast<const int32_t*>(p);
    rec.witness_len = witness_len;
    if (rec.p_index >= pat_count || rec.q_index >= pat_count) {
      return Fail(error,
                  "verdict " + std::to_string(i) + ": pattern index oob");
    }
    if (rec.tree_index < -1 ||
        rec.tree_index >= static_cast<int32_t>(tree_count)) {
      return Fail(error, "verdict " + std::to_string(i) + ": tree index oob");
    }
    verdicts_.push_back(rec);
  }

  // Hot programs.
  hot_programs_.reserve(hot_count);
  for (uint32_t i = 0; i < hot_count; ++i) {
    SnapshotHotProgram rec;
    if (!cur.U32(&rec.pattern_index) || !cur.U32(&rec.mode_tag)) {
      return Fail(error, "hot-program section overruns the file");
    }
    if (rec.pattern_index >= pat_count) {
      return Fail(error, "hot program " + std::to_string(i) + ": index oob");
    }
    hot_programs_.push_back(rec);
  }

  if (cur.off != cur.size) {
    return Fail(error, "trailing bytes after the last section");
  }
  return true;
}

bool SnapshotReader::ValidateTree(const TreeColumns& t,
                                  std::string* error) const {
  const int32_t n = t.n;
  // 1. Parents precede children; node 0 is the root.
  if (t.parent[0] != kNoNode) return Fail(error, "root has a parent");
  for (int32_t v = 1; v < n; ++v) {
    if (t.parent[v] < 0 || t.parent[v] >= v) {
      return Fail(error, "parent does not precede child");
    }
  }
  // 2. Labels resolvable, postorder maps mutually inverse.
  for (int32_t v = 0; v < n; ++v) {
    if (t.labels[v] >= label_count_) return Fail(error, "label out of range");
    const int32_t pv = t.post_of[v];
    if (pv < 0 || pv >= n) return Fail(error, "postorder position oob");
    if (t.node_at_post[pv] != v) {
      return Fail(error, "post_of/node_at_post not inverse");
    }
    if (t.label_at_post[pv] != t.labels[v]) {
      return Fail(error, "label mirror mismatch");
    }
  }
  // 3. Subtree sizes recomputed from the parent column must match, and every
  //    span must stay inside [0, n).
  std::vector<int32_t> sz(n, 1);
  for (int32_t v = n - 1; v >= 1; --v) sz[t.parent[v]] += sz[v];
  for (int32_t v = 0; v < n; ++v) {
    const int32_t pv = t.post_of[v];
    if (t.size_at_post[pv] != sz[v]) return Fail(error, "subtree size wrong");
    if (pv - sz[v] + 1 < 0) return Fail(error, "subtree span underflows");
  }
  // 4. Child spans nest strictly inside the parent's span.
  for (int32_t v = 1; v < n; ++v) {
    const int32_t pv = t.post_of[v];
    const int32_t pp = t.post_of[t.parent[v]];
    if (pv >= pp || pv - sz[v] < pp - sz[t.parent[v]]) {
      return Fail(error, "subtree spans not nested");
    }
  }
  // 5. The sibling span-jump walk (TreeView::LastChild/PrevSibling) must
  //    visit exactly the children the parent column declares — this is what
  //    makes the postorder *real* and every matcher traversal in-bounds.
  std::vector<int32_t> nchild(n, 0);
  for (int32_t v = 1; v < n; ++v) ++nchild[t.parent[v]];
  for (int32_t i = 0; i < n; ++i) {
    const NodeId v = t.node_at_post[i];
    const int32_t begin = i - t.size_at_post[i] + 1;
    int32_t walked = 0;
    for (int32_t c = i - 1; c >= begin; c -= t.size_at_post[c]) {
      if (t.parent[t.node_at_post[c]] != v) {
        return Fail(error, "span walk crosses a foreign subtree");
      }
      ++walked;
    }
    if (walked != nchild[v]) return Fail(error, "span walk misses children");
  }
  return true;
}

// ---------------------------------------------------------------------------
// Helpers

std::optional<Tpq> BuildSnapshotTpq(const SnapshotReader::PatternRecord& rec,
                                    const std::vector<LabelId>& remap) {
  Tpq q;
  for (int32_t v = 0; v < rec.n; ++v) {
    if (rec.labels[v] >= remap.size()) return std::nullopt;
    const LabelId label = remap[rec.labels[v]];
    if (v == 0) {
      q.AddRoot(label);
    } else {
      q.AddChild(rec.parents[v], label, static_cast<EdgeKind>(rec.edges[v]));
    }
  }
  return q;
}

bool VerifySnapshotPatternDigest(const SnapshotReader::PatternRecord& rec) {
  Tpq q;
  for (int32_t v = 0; v < rec.n; ++v) {
    if (v == 0) {
      q.AddRoot(rec.labels[v]);
    } else {
      q.AddChild(rec.parents[v], rec.labels[v],
                 static_cast<EdgeKind>(rec.edges[v]));
    }
  }
  return CanonicalTpqDigest(q) == rec.digest;
}

}  // namespace tpc
