// Versioned, checksummed, mmap-able columnar snapshots — the persistent
// warm-start tier's file format.
//
// A snapshot is an on-disk image of the state the query service accumulates
// over a workload and loses on restart: cached containment verdicts, the
// minimized patterns they are keyed on, the canonical counterexample trees
// of cached refutations, and the hot keys of the compiled-program pool.
// Trees are stored as their postorder SoA columns (tree/tree.h) verbatim —
// the Bille–Gørtz-style layout is already a set of raw spans, so
// serialization is a header plus column dumps and *loading a tree is
// O(mmap)*: `SnapshotReader::TreeAt` returns a zero-copy `TreeView` aimed
// directly at the mapped file, validated once at open.
//
// Trust model: a snapshot is data, not authority.  The container is
// checksummed (FNV-1a over the payload) and versioned, every section is
// bounds-checked against the mapping before any pointer is formed, and
// every tree's columns are validated against the full `Tree` invariant set
// (parents precede children, post_of/node_at_post mutually inverse, subtree
// spans nested, sibling span-jumps reproduce the parent array, label
// mirrors consistent) so a corrupt, truncated or adversarially crafted file
// is rejected with a diagnostic — never undefined behaviour.  Above the
// container, the service re-derives all *semantic* trust at load: pattern
// digests are recomputed and compared (128-bit, pattern/tpq_hash.h), and
// refutation witnesses are only ever served through replay validation.
//
// Layout (all integers native-endian; a header tag rejects foreign
// endianness; every column offset is 4-byte aligned, sections 8-byte):
//
//   header (64 B): magic "TPCSNAP\0", format version, endian tag,
//                  total file bytes, payload checksum, section counts
//   labels:    count * (u32 len, bytes, pad4)       — pool spellings, id order
//   trees:     count * (u32 n, pad, 6 columns * n)  — postorder SoA columns
//   patterns:  count * (u32 n, pad, digest128, labels, parents, edges)
//   verdicts:  count * (p_idx, q_idx, mode, bound, contained, algorithm,
//                       tree_idx, witness length vector)
//   hot programs: count * (pattern_idx, mode_tag)
//
// Byte accounting is *soft* end to end (`TrackedBytes::TryCharge`): a
// memory limit or an injected allocation fault mid-write or mid-load
// refuses cleanly — the writer never emits a partial entry, the reader
// unmaps and reports failure — and the service degrades to a cold start.

#ifndef TPC_PERSIST_SNAPSHOT_H_
#define TPC_PERSIST_SNAPSHOT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "base/label.h"
#include "engine/tracked.h"
#include "pattern/tpq.h"
#include "pattern/tpq_hash.h"
#include "tree/tree.h"

namespace tpc {

/// Bumped on any incompatible layout change; readers reject other versions.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// One cached containment verdict, keyed by pattern-pool indices (exact —
/// no hash trust inside the file).
struct SnapshotVerdict {
  uint32_t p_index = 0;
  uint32_t q_index = 0;
  uint8_t mode_tag = 0;       // numeric value of contain/'s Mode
  uint8_t bound_tag = 0;      // numeric value of ContainmentOptions::Bound
  bool contained = false;
  uint8_t algorithm_tag = 0;  // numeric value of ContainmentAlgorithm
  /// Index of the refutation's canonical counterexample tree in the tree
  /// section, or -1.  Only refutations carry trees.
  int32_t tree_index = -1;
  /// Spine chain lengths of the counterexample (empty for containments).
  std::vector<int32_t> witness;
};

/// A hot compiled-program key: the pattern it compiles and the mode.
struct SnapshotHotProgram {
  uint32_t pattern_index = 0;
  uint32_t mode_tag = 0;
};

/// Accumulates sections in memory and writes the finished snapshot
/// atomically (temp file + rename), so readers never observe a partial
/// image.  All growth is soft-charged to `budget`; an `Add*` that returns
/// failure charged nothing for that entry and the writer remains usable
/// (the entry is simply not in the snapshot).
class SnapshotWriter {
 public:
  /// `budget` may be null (no accounting).
  explicit SnapshotWriter(Budget* budget = nullptr);

  /// Records every spelling of `pool`, in id order.  Call exactly once,
  /// before the first verdict consumer resolves label ids.  False on charge
  /// refusal (the writer is then label-less and `WriteTo` will refuse).
  bool SetLabels(const LabelPool& pool);

  /// Serializes the postorder columns of `t`.  Returns the tree's index, or
  /// nullopt when the charge was refused or `t` is empty.
  std::optional<uint32_t> AddTree(const Tree& t);

  /// Serializes `p` (labels, parents, edge kinds) plus its wide digest.
  /// Returns the pattern's index, or nullopt on refusal / empty pattern.
  std::optional<uint32_t> AddPattern(const Tpq& p, const TpqDigest& digest);

  /// Appends a verdict.  Precondition: the referenced pattern/tree indices
  /// were returned by this writer.  False on charge refusal.
  bool AddVerdict(const SnapshotVerdict& verdict);

  bool AddHotProgram(const SnapshotHotProgram& hot);

  uint32_t tree_count() const { return tree_count_; }
  uint32_t pattern_count() const { return pattern_count_; }
  uint32_t verdict_count() const { return verdict_count_; }

  /// Finalizes the header + checksum and writes `path` atomically.  On any
  /// failure the temp file is removed and `*error` explains; `path` is
  /// never left half-written.
  bool WriteTo(const std::string& path, std::string* error);

 private:
  bool AppendEntry(std::string* section, const std::string& entry,
                   uint32_t* count);

  TrackedBytes tracked_;
  bool have_labels_ = false;
  std::string labels_;
  std::string trees_;
  std::string patterns_;
  std::string verdicts_;
  std::string hot_programs_;
  uint32_t label_count_ = 0;
  uint32_t tree_count_ = 0;
  uint32_t pattern_count_ = 0;
  uint32_t verdict_count_ = 0;
  uint32_t hot_program_count_ = 0;
};

/// Maps a snapshot read-only and validates the whole container up front;
/// afterwards every accessor is a bounds-safe pointer into the mapping.
/// The mapping's bytes are soft-charged to the budget passed to `Open` and
/// released on `Close`/destruction.  Accessors must not be called unless
/// `Open` returned true; views returned by `TreeAt` die with the reader.
class SnapshotReader {
 public:
  SnapshotReader() = default;
  ~SnapshotReader();

  SnapshotReader(const SnapshotReader&) = delete;
  SnapshotReader& operator=(const SnapshotReader&) = delete;

  /// Maps and validates `path`.  False on I/O failure, version/endianness
  /// skew, truncation, checksum mismatch, malformed sections, or a refused
  /// byte charge — with `*error` naming the reason and nothing mapped.
  bool Open(const std::string& path, Budget* budget, std::string* error);

  /// Unmaps and releases the byte charge (idempotent).
  void Close();

  bool is_open() const { return base_ != nullptr; }
  int64_t mapped_bytes() const { return mapped_bytes_; }

  uint32_t label_count() const { return label_count_; }
  std::string_view LabelAt(uint32_t i) const { return labels_[i]; }

  uint32_t tree_count() const { return static_cast<uint32_t>(trees_.size()); }
  /// Zero-copy view over the mapped columns of tree `i` (validated at Open).
  TreeView TreeAt(uint32_t i) const {
    const TreeColumns& t = trees_[i];
    return TreeView::Adopt(t.labels, t.parent, t.post_of, t.node_at_post,
                           t.size_at_post, t.label_at_post, t.n);
  }

  struct PatternRecord {
    int32_t n = 0;
    const LabelId* labels = nullptr;  // snapshot-local (old pool) ids
    const NodeId* parents = nullptr;  // parents[0] == kNoNode
    const uint8_t* edges = nullptr;   // EdgeKind tags; edges[0] unused
    TpqDigest digest;                 // digest under the old pool's ids
  };
  uint32_t pattern_count() const {
    return static_cast<uint32_t>(patterns_.size());
  }
  const PatternRecord& PatternAt(uint32_t i) const { return patterns_[i]; }

  struct VerdictRecord {
    uint32_t p_index = 0;
    uint32_t q_index = 0;
    uint8_t mode_tag = 0;
    uint8_t bound_tag = 0;
    bool contained = false;
    uint8_t algorithm_tag = 0;
    int32_t tree_index = -1;
    const int32_t* witness = nullptr;
    uint32_t witness_len = 0;
  };
  uint32_t verdict_count() const {
    return static_cast<uint32_t>(verdicts_.size());
  }
  const VerdictRecord& VerdictAt(uint32_t i) const { return verdicts_[i]; }

  uint32_t hot_program_count() const {
    return static_cast<uint32_t>(hot_programs_.size());
  }
  const SnapshotHotProgram& HotProgramAt(uint32_t i) const {
    return hot_programs_[i];
  }

 private:
  struct TreeColumns {
    int32_t n = 0;
    const LabelId* labels = nullptr;
    const NodeId* parent = nullptr;
    const int32_t* post_of = nullptr;
    const NodeId* node_at_post = nullptr;
    const int32_t* size_at_post = nullptr;
    const LabelId* label_at_post = nullptr;
  };

  bool Validate(std::string* error);
  bool ValidateTree(const TreeColumns& t, std::string* error) const;

  const uint8_t* base_ = nullptr;
  int64_t mapped_bytes_ = 0;
  bool is_mmap_ = false;       // else heap fallback buffer
  std::vector<uint8_t> heap_;  // fallback storage when mmap is unavailable
  TrackedBytes tracked_;

  uint32_t label_count_ = 0;
  std::vector<std::string_view> labels_;
  std::vector<TreeColumns> trees_;
  std::vector<PatternRecord> patterns_;
  std::vector<VerdictRecord> verdicts_;
  std::vector<SnapshotHotProgram> hot_programs_;
};

/// Rebuilds a `Tpq` from a validated pattern record, mapping every stored
/// label id through `remap` (snapshot id -> live pool id).  Returns nullopt
/// only if a stored id is outside `remap` (rejected records never are).
std::optional<Tpq> BuildSnapshotTpq(const SnapshotReader::PatternRecord& rec,
                                    const std::vector<LabelId>& remap);

/// Recomputes the wide digest of `rec` in the snapshot's own id space and
/// compares it with the stored digest — the load-time equality re-check
/// that keeps a colliding or silently corrupted pattern record from ever
/// seeding a cache key.
bool VerifySnapshotPatternDigest(const SnapshotReader::PatternRecord& rec);

}  // namespace tpc

#endif  // TPC_PERSIST_SNAPSHOT_H_
