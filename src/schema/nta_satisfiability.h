// Satisfiability of a TPQ w.r.t. a nondeterministic tree automaton
// (Observation 6.5), and the Theorem 6.4 containment route built on it.
//
// Theorem 6.4 decides containment of a (branching) TPQ p in a right-hand
// side q with a polynomial complement automaton by:
//   1. building the NTA for L(d) ∩ ¬L(q)  (Observation 6.2 / Lemma E.1),
//   2. testing satisfiability of p w.r.t. that NTA (in NP, Obs. 6.5):
// containment holds iff p is unsatisfiable there.
//
// The satisfiability check mirrors the schema engine: reachable
// configurations are (NTA state, deterministic-pattern-automaton state)
// pairs; horizontal searches accumulate unions of children capabilities.

#ifndef TPC_SCHEMA_NTA_SATISFIABILITY_H_
#define TPC_SCHEMA_NTA_SATISFIABILITY_H_

#include "automata/nta.h"
#include "contain/containment.h"  // Mode
#include "dtd/dtd.h"
#include "pattern/tpq.h"
#include "schema/schema_engine.h"

namespace tpc {

/// Is some tree accepted by `nta` in L_s(p) / L_w(p)?  Worst-case
/// exponential (the problem is NP-complete), with a witness on success.
/// The ctx overload additionally honours the context budget (with
/// `EngineLimits::max_milliseconds` armed onto it for the call) and fills
/// its instrumentation counters; `options.antichain` prunes dominated
/// (NTA state, pattern state) configurations exactly as in the DTD engine.
SchemaDecision SatisfiableWithNta(const Tpq& p, Mode mode, const Nta& nta,
                                  LabelPool* pool, EngineContext* ctx,
                                  const EngineLimits& limits = {},
                                  const SchemaEngineOptions& options = {});
SchemaDecision SatisfiableWithNta(const Tpq& p, Mode mode, const Nta& nta,
                                  LabelPool* pool,
                                  const EngineLimits& limits = {});

/// The Theorem 6.4 route: L(p) ∩ L(d) ⊆ L(q) for a *path* right side q,
/// via NP-satisfiability of p w.r.t. the product of the DTD automaton and
/// the complement automaton of q.
SchemaDecision ContainedViaConpRoute(const Tpq& p, const Tpq& q, Mode mode,
                                     const Dtd& dtd, LabelPool* pool,
                                     EngineContext* ctx,
                                     const EngineLimits& limits = {},
                                     const SchemaEngineOptions& options = {});
SchemaDecision ContainedViaConpRoute(const Tpq& p, const Tpq& q, Mode mode,
                                     const Dtd& dtd, LabelPool* pool,
                                     const EngineLimits& limits = {});

}  // namespace tpc

#endif  // TPC_SCHEMA_NTA_SATISFIABILITY_H_
