#include "schema/schema_engine.h"

#include <chrono>

#include <algorithm>
#include <cassert>
#include <map>
#include <tuple>
#include <vector>

#include "automata/nta.h"
#include "automata/tpq_det.h"

namespace tpc {

namespace {

/// One realizable configuration: root symbol plus pattern-automata states
/// (state -1 when the corresponding pattern is absent), with a derivation
/// for witness reconstruction.
struct Config {
  LabelId symbol;
  int32_t p_state;
  int32_t q_state;
  std::vector<int32_t> children;  // indices of realizing child configs
};

class Engine {
 public:
  Engine(const Dtd& dtd, const Tpq* p, const Tpq* q, EngineContext* ctx,
         const EngineLimits& limits)
      : dtd_(dtd), ctx_(ctx), limits_(limits),
        deadline_(std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(limits.max_milliseconds)) {
    if (p != nullptr) p_det_.emplace(*p);
    if (q != nullptr) q_det_.emplace(*q);
  }

  bool PastDeadline() const {
    return (limits_.max_milliseconds > 0 &&
            std::chrono::steady_clock::now() > deadline_) ||
           ctx_->budget().Exhausted();
  }

  /// Runs the fixpoint until a configuration satisfying `accept` is found
  /// (returning its index), the reachable set is exhausted (-1), or a
  /// resource limit is hit (-2, undecided).  Legacy `EngineLimits` caps and
  /// the context budget both funnel into the -2 outcome.
  template <typename AcceptFn>
  int32_t Solve(AcceptFn accept) {
    bool changed = true;
    while (changed) {
      changed = false;
      for (LabelId a : dtd_.alphabet()) {
        if (ExpandSymbol(a, &changed, accept)) return goal_;
        if (num_configs() >= limits_.max_configurations) return -2;
        if (PastDeadline()) return -2;
      }
    }
    // A truncated horizontal search may have missed realizable
    // configurations: the fixpoint is then inconclusive.
    return truncated_ ? -2 : -1;
  }

  Tree BuildWitness(int32_t index) const {
    Tree t;
    // (config index, parent node in t); breadth-first materialization.
    std::vector<std::pair<int32_t, NodeId>> queue = {{index, kNoNode}};
    for (size_t i = 0; i < queue.size(); ++i) {
      auto [cfg_index, parent] = queue[i];
      const Config& cfg = configs_[cfg_index];
      NodeId v = parent == kNoNode ? t.AddRoot(cfg.symbol)
                                   : t.AddChild(parent, cfg.symbol);
      for (int32_t child : cfg.children) queue.emplace_back(child, v);
    }
    return t;
  }

  const Config& config(int32_t index) const { return configs_[index]; }
  int64_t num_configs() const { return static_cast<int64_t>(configs_.size()); }

  /// Deterministic pattern-automaton states materialized across p and q.
  int64_t det_states() const {
    int64_t n = 0;
    if (p_det_.has_value()) n += p_det_->num_materialized();
    if (q_det_.has_value()) n += q_det_->num_materialized();
    return n;
  }

  bool PAccepts(int32_t p_state, Mode mode) const {
    if (!p_det_.has_value()) return true;
    return mode == Mode::kStrong ? p_det_->AcceptsStrong(p_state)
                                 : p_det_->AcceptsWeak(p_state);
  }
  bool QAccepts(int32_t q_state, Mode mode) const {
    if (!q_det_.has_value()) return false;
    return mode == Mode::kStrong ? q_det_->AcceptsStrong(q_state)
                                 : q_det_->AcceptsWeak(q_state);
  }

 private:
  /// Key for the horizontal search: NFA state plus accumulated unions.
  using HKey = std::tuple<int32_t, NodeBitset, NodeBitset, NodeBitset,
                          NodeBitset>;

  struct HNode {
    int32_t nfa_state;
    NodeBitset p_sat, p_below, q_sat, q_below;
    int32_t from = -1;     // index of predecessor HNode
    int32_t via = -1;      // config index consumed on the way here
  };

  /// Explores all realizable configurations with root symbol `a`, adding new
  /// ones.  Returns true (and sets goal_) when an accepting one is found.
  template <typename AcceptFn>
  bool ExpandSymbol(LabelId a, bool* changed, AcceptFn accept) {
    const Nfa& nfa = dtd_.RuleNfa(a);
    int32_t pn = p_det_.has_value() ? p_det_->query().size() : 0;
    int32_t qn = q_det_.has_value() ? q_det_->query().size() : 0;

    std::vector<HNode> nodes;
    std::map<HKey, int32_t> seen;
    EngineStats& stats = ctx_->stats();
    auto intern = [&](HNode node) -> int32_t {
      HKey key{node.nfa_state, node.p_sat, node.p_below, node.q_sat,
               node.q_below};
      auto it = seen.find(key);
      if (it != seen.end()) return -1;
      int32_t id = static_cast<int32_t>(nodes.size());
      seen.emplace(std::move(key), id);
      nodes.push_back(std::move(node));
      stats.horizontal_nodes.fetch_add(1, std::memory_order_relaxed);
      return id;
    };
    HNode start;
    start.nfa_state = nfa.initial;
    start.p_sat = NodeBitset(pn);
    start.p_below = NodeBitset(pn);
    start.q_sat = NodeBitset(qn);
    start.q_below = NodeBitset(qn);
    intern(std::move(start));

    for (size_t i = 0; i < nodes.size(); ++i) {
      if (static_cast<int64_t>(nodes.size()) >= limits_.max_horizontal_nodes ||
          !ctx_->budget().Charge(1) ||
          ((i & 1023) == 0 && PastDeadline())) {
        truncated_ = true;
        break;
      }
      // Realize a configuration if the content model accepts here.
      if (nfa.accepting[nodes[i].nfa_state]) {
        int32_t ps = p_det_.has_value()
                         ? p_det_->StateForUnion(a, nodes[i].p_sat,
                                                 nodes[i].p_below)
                         : -1;
        int32_t qs = q_det_.has_value()
                         ? q_det_->StateForUnion(a, nodes[i].q_sat,
                                                 nodes[i].q_below)
                         : -1;
        auto key = std::make_tuple(a, ps, qs);
        if (config_ids_.find(key) == config_ids_.end()) {
          Config cfg{a, ps, qs, {}};
          for (int32_t n = static_cast<int32_t>(i); nodes[n].from >= 0;
               n = nodes[n].from) {
            cfg.children.push_back(nodes[n].via);
          }
          std::reverse(cfg.children.begin(), cfg.children.end());
          int32_t id = static_cast<int32_t>(configs_.size());
          configs_.push_back(std::move(cfg));
          config_ids_.emplace(key, id);
          stats.schema_configurations.fetch_add(1, std::memory_order_relaxed);
          *changed = true;
          if (accept(a, ps, qs)) {
            goal_ = id;
            return true;
          }
        }
      }
      // Extend with one more child drawn from the realized configurations.
      // Iterate by index: configs_ may grow, but new ones are picked up in a
      // later fixpoint round.
      size_t num_configs_now = configs_.size();
      const auto& transitions = nfa.transitions[nodes[i].nfa_state];
      for (size_t c = 0; c < num_configs_now; ++c) {
        const Config& child = configs_[c];
        for (const auto& [symbol, target] : transitions) {
          if (symbol != child.symbol) continue;
          HNode next = nodes[i];
          next.nfa_state = target;
          next.from = static_cast<int32_t>(i);
          next.via = static_cast<int32_t>(c);
          if (p_det_.has_value()) {
            next.p_sat.UnionWith(p_det_->Sat(child.p_state));
            next.p_below.UnionWith(p_det_->Below(child.p_state));
          }
          if (q_det_.has_value()) {
            next.q_sat.UnionWith(q_det_->Sat(child.q_state));
            next.q_below.UnionWith(q_det_->Below(child.q_state));
          }
          intern(std::move(next));
        }
      }
    }
    return false;
  }

  const Dtd& dtd_;
  EngineContext* ctx_;
  EngineLimits limits_;
  std::chrono::steady_clock::time_point deadline_;
  std::optional<TpqDetAutomaton> p_det_;
  std::optional<TpqDetAutomaton> q_det_;
  std::vector<Config> configs_;
  std::map<std::tuple<LabelId, int32_t, int32_t>, int32_t> config_ids_;
  int32_t goal_ = -1;
  bool truncated_ = false;
};

/// Folds the Engine result into a SchemaDecision, recording the
/// deterministic-state count in the context's instrumentation block.
SchemaDecision Finish(Engine* engine, EngineContext* ctx, int32_t goal,
                      bool yes_when_exhausted_reachable) {
  SchemaDecision out;
  out.configurations = engine->num_configs();
  out.decided = goal != -2;
  out.outcome = out.decided ? Outcome::kDecided : Outcome::kResourceExhausted;
  out.yes = yes_when_exhausted_reachable ? goal == -1 : goal >= 0;
  if (goal >= 0) out.witness = engine->BuildWitness(goal);
  ctx->stats().det_states_materialized.fetch_add(engine->det_states(),
                                                 std::memory_order_relaxed);
  return out;
}

}  // namespace

SchemaDecision SatisfiableWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                  EngineContext* ctx,
                                  const EngineLimits& limits) {
  Engine engine(dtd, &p, nullptr, ctx, limits);
  int32_t goal = engine.Solve([&](LabelId a, int32_t ps, int32_t qs) {
    (void)qs;
    return dtd.IsStart(a) && engine.PAccepts(ps, mode);
  });
  return Finish(&engine, ctx, goal, /*yes_when_exhausted_reachable=*/false);
}

SchemaDecision ValidWithDtd(const Tpq& q, Mode mode, const Dtd& dtd,
                            EngineContext* ctx, const EngineLimits& limits) {
  Engine engine(dtd, nullptr, &q, ctx, limits);
  int32_t goal = engine.Solve([&](LabelId a, int32_t ps, int32_t qs) {
    (void)ps;
    return dtd.IsStart(a) && !engine.QAccepts(qs, mode);
  });
  // Valid iff no counterexample.
  return Finish(&engine, ctx, goal, /*yes_when_exhausted_reachable=*/true);
}

SchemaDecision ContainedWithDtd(const Tpq& p, const Tpq& q, Mode mode,
                                const Dtd& dtd, EngineContext* ctx,
                                const EngineLimits& limits) {
  Engine engine(dtd, &p, &q, ctx, limits);
  int32_t goal = engine.Solve([&](LabelId a, int32_t ps, int32_t qs) {
    return dtd.IsStart(a) && engine.PAccepts(ps, mode) &&
           !engine.QAccepts(qs, mode);
  });
  // Contained iff no counterexample.
  return Finish(&engine, ctx, goal, /*yes_when_exhausted_reachable=*/true);
}

SchemaDecision SatisfiablePathWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                      EngineContext* ctx) {
  assert(IsPathQuery(p));
  Nta product = Nta::Intersect(Nta::FromDtd(dtd),
                               Nta::FromPathQuery(p, mode == Mode::kStrong));
  EngineStats& stats = ctx->stats();
  stats.nta_states_built.fetch_add(product.num_states(),
                                   std::memory_order_relaxed);
  stats.nta_transitions_built.fetch_add(
      static_cast<int64_t>(product.transitions().size()),
      std::memory_order_relaxed);
  SchemaDecision out;
  out.configurations = product.num_states();
  std::optional<Tree> witness = product.SmallestWitness();
  out.yes = witness.has_value();
  out.witness = std::move(witness);
  return out;
}

// Legacy entry points: same algorithms against the process-default context.

SchemaDecision SatisfiableWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                  const EngineLimits& limits) {
  return SatisfiableWithDtd(p, mode, dtd, &EngineContext::Default(), limits);
}

SchemaDecision ValidWithDtd(const Tpq& q, Mode mode, const Dtd& dtd,
                            const EngineLimits& limits) {
  return ValidWithDtd(q, mode, dtd, &EngineContext::Default(), limits);
}

SchemaDecision ContainedWithDtd(const Tpq& p, const Tpq& q, Mode mode,
                                const Dtd& dtd, const EngineLimits& limits) {
  return ContainedWithDtd(p, q, mode, dtd, &EngineContext::Default(), limits);
}

SchemaDecision SatisfiablePathWithDtd(const Tpq& p, Mode mode,
                                      const Dtd& dtd) {
  return SatisfiablePathWithDtd(p, mode, dtd, &EngineContext::Default());
}

}  // namespace tpc
