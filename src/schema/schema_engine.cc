#include "schema/schema_engine.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <cstdint>
#include <map>
#include <tuple>
#include <unordered_set>
#include <utility>
#include <vector>

#include "automata/nta.h"
#include "automata/state_interning.h"
#include "automata/tpq_det.h"
#include "engine/tracked.h"

namespace tpc {

namespace {

/// `config_ids_` value for a configuration that arrived dominated and was
/// never materialized.  Domination is transitive, so even if its dominator
/// is deactivated later, some active configuration still covers it.
constexpr int32_t kDroppedConfig = -2;

/// One realized configuration: root symbol, deterministic pattern states,
/// the interned ids of those states' Sat/Below sets (what the configuration
/// contributes to a parent's unions), and a derivation for witness
/// reconstruction.  The arena is append-only — antichain pruning only
/// clears `active` — so `children` indices of later derivations stay valid.
struct ConfigRec {
  LabelId symbol;
  int32_t p_state;
  int32_t q_state;
  int32_t p_sat_id, p_below_id;  // ids in the p-side interner
  int32_t q_sat_id, q_below_id;  // ids in the q-side interner
  std::vector<int32_t> children;  // indices of realizing child configs
  bool active = true;
};

/// A realization found by a horizontal search: the accumulated union ids at
/// an accepting content-model state, plus the children consumed to get
/// there.  In parallel rounds these are buffered per symbol and merged at
/// the round barrier (resolving det states mutates the lazy automata, which
/// is not thread-safe).
struct Candidate {
  int32_t p_sat_id, p_below_id, q_sat_id, q_below_id;
  std::vector<int32_t> children;
};

/// Horizontal-search node: content-model NFA state plus the interned union
/// ids of the children consumed so far — five small ints where the previous
/// engine carried four materialized bitsets.
struct HNode {
  int32_t nfa_state;
  int32_t p_sat_id, p_below_id, q_sat_id, q_below_id;
  int32_t from = -1;  // index of predecessor HNode
  int32_t via = -1;   // config index consumed on the way here
};

/// Per-symbol search state, persistent across rounds so one saturation
/// round allocates (almost) nothing.  In parallel rounds each symbol is
/// owned by exactly one worker; `realized` is written only by the
/// sequential merge phase.
struct SymbolScratch {
  std::vector<HNode> nodes;
  std::unordered_set<std::array<int32_t, 5>, IntArrayHash<5>> seen;
  std::vector<Candidate> candidates;
  /// Union tuples already merged (or found duplicate) in earlier rounds.
  std::unordered_set<std::array<int32_t, 4>, IntArrayHash<4>> realized;
  /// Union tuples already emitted during the current search.
  std::unordered_set<std::array<int32_t, 4>, IntArrayHash<4>> emitted;
  /// High-water byte accounting for this scratch's search frontier (the
  /// node vector plus its dedup-set entries); capacity is retained across
  /// rounds, so only growth beyond the previous peak is charged.
  TrackedBytes tracked;
  /// `nodes.capacity()` at the last `tracked.Reserve`, so the hot expansion
  /// loop re-charges only when the vector actually reallocates.
  size_t reserved_capacity = 0;
};

/// Approximate retained bytes of a search frontier holding `nodes` HNodes:
/// the vector storage plus one `seen` hash-set entry per node.  Accounting
/// is table-granular by design (DESIGN.md "Failure model") — the goal is
/// that a runaway frontier trips the memory budget, not byte-exact RSS.
int64_t FrontierBytes(size_t nodes) {
  return static_cast<int64_t>(nodes) *
         static_cast<int64_t>(sizeof(HNode) + 5 * sizeof(int32_t) +
                              2 * sizeof(void*));
}

class Engine {
 public:
  Engine(const Dtd& dtd, const Tpq* p, const Tpq* q, EngineContext* ctx,
         const EngineLimits& limits, const SchemaEngineOptions& options)
      : dtd_(dtd), ctx_(ctx), limits_(limits), options_(options),
        p_side_(p, &ctx->budget()), q_side_(q, &ctx->budget()),
        alphabet_(dtd.alphabet()), scratch_(dtd.alphabet().size()),
        active_by_symbol_(dtd.alphabet().size()),
        tracked_configs_(&ctx->budget()) {
    for (SymbolScratch& s : scratch_) s.tracked.Attach(&ctx->budget());
    // Compile every content model up front: `Dtd::RuleNfa` caches through a
    // non-thread-safe mutable map, and parallel rounds read it from workers.
    for (LabelId a : alphabet_) dtd_.RuleNfa(a);
  }

  /// Runs the fixpoint in saturation rounds until a configuration
  /// satisfying `accept` is found (returning its index), the reachable set
  /// is exhausted (-1), or a resource limit is hit (-2, undecided).  Legacy
  /// `EngineLimits` caps and the context budget both funnel into -2.
  template <typename AcceptFn>
  int32_t Solve(AcceptFn accept) {
    const bool parallel = ctx_->threads() > 1 && alphabet_.size() > 1;
    const int64_t num_symbols = static_cast<int64_t>(alphabet_.size());
    while (true) {
      changed_ = false;
      if (options_.antichain) CompactActiveLists();
      if (parallel) {
        // Search phase: each symbol's horizontal search on the pool, with
        // per-symbol scratch; workers only read configs_/active lists and
        // create set ids through the (thread-safe) interners.
        ctx_->pool().ParallelFor(num_symbols, [this](int64_t ai) {
          SearchSymbol(static_cast<int32_t>(ai), /*merge_inline=*/false,
                       [](LabelId, int32_t, int32_t) { return false; });
        });
        // Merge phase (sequential): resolve det states, prune, insert.
        for (int32_t ai = 0; ai < num_symbols; ++ai) {
          for (Candidate& cand : scratch_[ai].candidates) {
            MergeCandidate(ai, std::move(cand), accept);
            if (goal_ >= 0 || cap_hit_) break;
          }
          scratch_[ai].candidates.clear();
          if (goal_ >= 0 || cap_hit_) break;
        }
      } else {
        for (int32_t ai = 0; ai < num_symbols; ++ai) {
          SearchSymbol(ai, /*merge_inline=*/true, accept);
          if (goal_ >= 0 || cap_hit_) break;
        }
      }
      if (goal_ >= 0) return goal_;
      if (cap_hit_ || ctx_->budget().Exhausted()) return -2;
      if (!changed_) {
        // A truncated horizontal search may have missed realizable
        // configurations: the fixpoint is then inconclusive.
        return truncated_.load(std::memory_order_relaxed) ? -2 : -1;
      }
    }
  }

  Tree BuildWitness(int32_t index) const {
    Tree t;
    // (config index, parent node in t); breadth-first materialization.
    std::vector<std::pair<int32_t, NodeId>> queue = {{index, kNoNode}};
    for (size_t i = 0; i < queue.size(); ++i) {
      auto [cfg_index, parent] = queue[i];
      const ConfigRec& cfg = configs_[cfg_index];
      NodeId v = parent == kNoNode ? t.AddRoot(cfg.symbol)
                                   : t.AddChild(parent, cfg.symbol);
      for (int32_t child : cfg.children) queue.emplace_back(child, v);
    }
    return t;
  }

  int64_t num_configs() const { return static_cast<int64_t>(configs_.size()); }

  /// Deterministic pattern-automaton states materialized across p and q.
  int64_t det_states() const {
    return p_side_.num_materialized() + q_side_.num_materialized();
  }
  int64_t sets_interned() const {
    return p_side_.interner().num_interned() +
           q_side_.interner().num_interned();
  }
  int64_t unions_memoized() const {
    return p_side_.interner().unions_memoized() +
           q_side_.interner().unions_memoized();
  }

  bool PAccepts(int32_t p_state, Mode mode) const {
    if (!p_side_.present()) return true;
    return mode == Mode::kStrong ? p_side_.AcceptsStrong(p_state)
                                 : p_side_.AcceptsWeak(p_state);
  }
  bool QAccepts(int32_t q_state, Mode mode) const {
    if (!q_side_.present()) return false;
    return mode == Mode::kStrong ? q_side_.AcceptsStrong(q_state)
                                 : q_side_.AcceptsWeak(q_state);
  }

 private:
  int32_t SymbolIndex(LabelId a) const {
    auto it = std::lower_bound(alphabet_.begin(), alphabet_.end(), a);
    if (it == alphabet_.end() || *it != a) return -1;
    return static_cast<int32_t>(it - alphabet_.begin());
  }

  /// Does config A (same symbol) subsume config B?  The order is p-up,
  /// q-down: the goal predicates are monotone in P-acceptance and antitone
  /// in Q-acceptance, so a dominator must promise at least as much on the p
  /// side and at most as much on the q side.  (Superset on both coordinates
  /// — the naive reading of "bigger is better" — would prune exactly the
  /// small-q configurations that are the potential counterexamples.)
  bool Dominates(const ConfigRec& a, int32_t bp_sat, int32_t bp_below,
                 int32_t bq_sat, int32_t bq_below) const {
    const StateSetInterner& pi = p_side_.interner();
    const StateSetInterner& qi = q_side_.interner();
    return pi.Superset(a.p_sat_id, bp_sat) &&
           pi.Superset(a.p_below_id, bp_below) &&
           qi.Superset(bq_sat, a.q_sat_id) &&
           qi.Superset(bq_below, a.q_below_id);
  }
  bool DominatedByNew(int32_t ap_sat, int32_t ap_below, int32_t aq_sat,
                      int32_t aq_below, const ConfigRec& b) const {
    const StateSetInterner& pi = p_side_.interner();
    const StateSetInterner& qi = q_side_.interner();
    return pi.Superset(ap_sat, b.p_sat_id) &&
           pi.Superset(ap_below, b.p_below_id) &&
           qi.Superset(b.q_sat_id, aq_sat) &&
           qi.Superset(b.q_below_id, aq_below);
  }

  /// Drops deactivated ids from the per-symbol active lists.  Runs between
  /// rounds only — searches iterate these lists by index.
  void CompactActiveLists() {
    for (std::vector<int32_t>& actives : active_by_symbol_) {
      size_t kept = 0;
      for (int32_t id : actives) {
        if (configs_[id].active) actives[kept++] = id;
      }
      actives.resize(kept);
    }
  }

  /// Accounts the frontier at its new capacity; called only when the node
  /// vector reallocated, so the charge stays off the per-node hot path.
  bool ReserveFrontier(SymbolScratch* s) {
    s->reserved_capacity = s->nodes.capacity();
    return s->tracked.Reserve(
        FrontierBytes(s->reserved_capacity));
  }

  /// Explores all words of `a`'s content model over the currently active
  /// configurations.  With `merge_inline` (sequential mode) realizations
  /// are merged immediately, so later search nodes already see them — the
  /// same intra-round consumption the pre-interning engine had.  Without it
  /// (parallel mode) realizations are buffered as candidates.
  template <typename AcceptFn>
  void SearchSymbol(int32_t ai, bool merge_inline, AcceptFn accept) {
    const LabelId a = alphabet_[ai];
    const Nfa& nfa = dtd_.RuleNfa(a);
    SymbolScratch& s = scratch_[ai];
    s.nodes.clear();
    s.seen.clear();
    s.emitted.clear();
    s.candidates.clear();
    EngineStats& stats = ctx_->stats();
    StateSetInterner& pi = p_side_.interner();
    StateSetInterner& qi = q_side_.interner();

    auto push = [&](const HNode& node) {
      const std::array<int32_t, 5> key{node.nfa_state, node.p_sat_id,
                                       node.p_below_id, node.q_sat_id,
                                       node.q_below_id};
      if (!s.seen.insert(key).second) return;
      s.nodes.push_back(node);
      stats.horizontal_nodes.fetch_add(1, std::memory_order_relaxed);
    };
    constexpr int32_t kEmpty = StateSetInterner::kEmptySetId;
    push(HNode{nfa.initial, kEmpty, kEmpty, kEmpty, kEmpty, -1, -1});

    for (size_t i = 0; i < s.nodes.size(); ++i) {
      if (static_cast<int64_t>(s.nodes.size()) >=
              limits_.max_horizontal_nodes ||
          !ctx_->budget().Charge(1) ||
          (s.nodes.capacity() != s.reserved_capacity &&
           !ReserveFrontier(&s))) {
        truncated_.store(true, std::memory_order_relaxed);
        return;
      }
      if (merge_inline && (goal_ >= 0 || cap_hit_)) return;
      // Realize a configuration if the content model accepts here.
      if (nfa.accepting[s.nodes[i].nfa_state]) {
        const HNode& node = s.nodes[i];
        const std::array<int32_t, 4> tuple{node.p_sat_id, node.p_below_id,
                                           node.q_sat_id, node.q_below_id};
        if (s.realized.find(tuple) == s.realized.end() &&
            s.emitted.insert(tuple).second) {
          Candidate cand{node.p_sat_id, node.p_below_id, node.q_sat_id,
                         node.q_below_id, {}};
          for (int32_t n = static_cast<int32_t>(i); s.nodes[n].from >= 0;
               n = s.nodes[n].from) {
            cand.children.push_back(s.nodes[n].via);
          }
          std::reverse(cand.children.begin(), cand.children.end());
          if (merge_inline) {
            MergeCandidate(ai, std::move(cand), accept);
            if (goal_ >= 0 || cap_hit_) return;
          } else {
            s.candidates.push_back(std::move(cand));
          }
        }
      }
      // Extend with one more child drawn from the active configurations.
      // Index-based iteration: an inline merge may append to the list (and
      // this loop then picks the new configuration up immediately).
      const auto& transitions = nfa.transitions[s.nodes[i].nfa_state];
      for (const auto& [symbol, target] : transitions) {
        const int32_t ci = SymbolIndex(static_cast<LabelId>(symbol));
        if (ci < 0) continue;
        const std::vector<int32_t>& actives = active_by_symbol_[ci];
        for (size_t k = 0; k < actives.size(); ++k) {
          const ConfigRec& child = configs_[actives[k]];
          if (!child.active) continue;
          const HNode& cur = s.nodes[i];
          HNode next;
          next.nfa_state = target;
          next.p_sat_id = pi.Union(cur.p_sat_id, child.p_sat_id);
          next.p_below_id = pi.Union(cur.p_below_id, child.p_below_id);
          next.q_sat_id = qi.Union(cur.q_sat_id, child.q_sat_id);
          next.q_below_id = qi.Union(cur.q_below_id, child.q_below_id);
          if (next.p_sat_id < 0 || next.p_below_id < 0 ||
              next.q_sat_id < 0 || next.q_below_id < 0) {
            truncated_.store(true, std::memory_order_relaxed);
            return;
          }
          next.from = static_cast<int32_t>(i);
          next.via = actives[k];
          push(next);
        }
      }
    }
  }

  /// Resolves a candidate's det states, applies antichain pruning, and
  /// inserts the configuration.  Sequential (merge phase / inline mode).
  template <typename AcceptFn>
  void MergeCandidate(int32_t ai, Candidate cand, AcceptFn accept) {
    if (goal_ >= 0 || cap_hit_) return;
    SymbolScratch& s = scratch_[ai];
    const std::array<int32_t, 4> tuple{cand.p_sat_id, cand.p_below_id,
                                       cand.q_sat_id, cand.q_below_id};
    if (!s.realized.insert(tuple).second) return;
    const LabelId a = alphabet_[ai];
    const int32_t ps = p_side_.Resolve(a, cand.p_sat_id, cand.p_below_id);
    const int32_t qs = q_side_.Resolve(a, cand.q_sat_id, cand.q_below_id);
    const auto key = std::make_tuple(a, ps, qs);
    if (config_ids_.find(key) != config_ids_.end()) return;
    const auto [p_sat, p_below] = p_side_.StateSetIds(ps);
    const auto [q_sat, q_below] = q_side_.StateSetIds(qs);
    if (p_sat < 0 || p_below < 0 || q_sat < 0 || q_below < 0) {
      truncated_.store(true, std::memory_order_relaxed);
      return;
    }
    EngineStats& stats = ctx_->stats();
    std::vector<int32_t>& actives = active_by_symbol_[ai];
    if (options_.antichain) {
      for (int32_t id : actives) {
        const ConfigRec& c = configs_[id];
        if (!c.active) continue;
        if (Dominates(c, p_sat, p_below, q_sat, q_below)) {
          // `c` was goal-checked at its own insertion and acceptance is
          // monotone along the domination order, so dropping the newcomer
          // cannot lose a goal.
          stats.configs_subsumed.fetch_add(1, std::memory_order_relaxed);
          config_ids_.emplace(key, kDroppedConfig);
          return;
        }
      }
      for (int32_t id : actives) {
        ConfigRec& c = configs_[id];
        if (!c.active) continue;
        if (DominatedByNew(p_sat, p_below, q_sat, q_below, c)) {
          c.active = false;
          stats.configs_subsumed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    }
    const int32_t id = static_cast<int32_t>(configs_.size());
    if (!tracked_configs_.Charge(
            static_cast<int64_t>(sizeof(ConfigRec)) +
            static_cast<int64_t>(cand.children.size() * sizeof(int32_t)))) {
      truncated_.store(true, std::memory_order_relaxed);
      return;
    }
    configs_.push_back(ConfigRec{a, ps, qs, p_sat, p_below, q_sat, q_below,
                                 std::move(cand.children), true});
    actives.push_back(id);
    config_ids_.emplace(key, id);
    stats.schema_configurations.fetch_add(1, std::memory_order_relaxed);
    changed_ = true;
    if (accept(a, ps, qs)) {
      goal_ = id;
      return;
    }
    if (num_configs() >= limits_.max_configurations) cap_hit_ = true;
  }

  const Dtd& dtd_;
  EngineContext* ctx_;
  EngineLimits limits_;
  SchemaEngineOptions options_;
  DetSide p_side_;
  DetSide q_side_;
  std::vector<LabelId> alphabet_;  // sorted (Dtd keeps it sorted)
  std::vector<SymbolScratch> scratch_;
  std::vector<ConfigRec> configs_;
  /// Per symbol: arena indices of the configurations the searches may
  /// consume.  Antichain mode keeps each list an antichain of the
  /// domination order (deactivated entries are compacted between rounds).
  std::vector<std::vector<int32_t>> active_by_symbol_;
  /// (a, ps, qs) -> arena index, or kDroppedConfig for a pruned arrival.
  std::map<std::tuple<LabelId, int32_t, int32_t>, int32_t> config_ids_;
  /// Bytes of the configuration arena (records + derivation children),
  /// released with the engine.
  TrackedBytes tracked_configs_;
  int32_t goal_ = -1;
  bool changed_ = false;
  bool cap_hit_ = false;
  std::atomic<bool> truncated_{false};
};

/// Folds the Engine result into a SchemaDecision, recording the
/// deterministic-state and interner counters in the context's
/// instrumentation block.
SchemaDecision Finish(Engine* engine, EngineContext* ctx, int32_t goal,
                      bool yes_when_exhausted_reachable) {
  SchemaDecision out;
  out.configurations = engine->num_configs();
  out.decided = goal != -2;
  out.outcome = out.decided ? Outcome::kDecided : Outcome::kResourceExhausted;
  if (!out.decided) {
    // Read the budget's reason here, before the caller's ScopedDeadline
    // unwinds and clears transient exhaustion.  kNone means a legacy cap
    // (configuration / horizontal-node volume) tripped without the budget:
    // report it as the step-like work limit it is.
    const ExhaustionReason r = ctx->budget().reason();
    out.reason = r == ExhaustionReason::kNone ? ExhaustionReason::kSteps : r;
  }
  out.yes = yes_when_exhausted_reachable ? goal == -1 : goal >= 0;
  if (goal >= 0) out.witness = engine->BuildWitness(goal);
  EngineStats& stats = ctx->stats();
  stats.det_states_materialized.fetch_add(engine->det_states(),
                                          std::memory_order_relaxed);
  stats.state_sets_interned.fetch_add(engine->sets_interned(),
                                      std::memory_order_relaxed);
  stats.unions_memoized.fetch_add(engine->unions_memoized(),
                                  std::memory_order_relaxed);
  return out;
}

}  // namespace

SchemaDecision SatisfiableWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                  EngineContext* ctx,
                                  const EngineLimits& limits,
                                  const SchemaEngineOptions& options) {
  Budget::ScopedDeadline deadline(&ctx->budget(), limits.max_milliseconds);
  Engine engine(dtd, &p, nullptr, ctx, limits, options);
  int32_t goal = engine.Solve([&](LabelId a, int32_t ps, int32_t qs) {
    (void)qs;
    return dtd.IsStart(a) && engine.PAccepts(ps, mode);
  });
  return Finish(&engine, ctx, goal, /*yes_when_exhausted_reachable=*/false);
}

SchemaDecision ValidWithDtd(const Tpq& q, Mode mode, const Dtd& dtd,
                            EngineContext* ctx, const EngineLimits& limits,
                            const SchemaEngineOptions& options) {
  Budget::ScopedDeadline deadline(&ctx->budget(), limits.max_milliseconds);
  Engine engine(dtd, nullptr, &q, ctx, limits, options);
  int32_t goal = engine.Solve([&](LabelId a, int32_t ps, int32_t qs) {
    (void)ps;
    return dtd.IsStart(a) && !engine.QAccepts(qs, mode);
  });
  // Valid iff no counterexample.
  return Finish(&engine, ctx, goal, /*yes_when_exhausted_reachable=*/true);
}

SchemaDecision ContainedWithDtd(const Tpq& p, const Tpq& q, Mode mode,
                                const Dtd& dtd, EngineContext* ctx,
                                const EngineLimits& limits,
                                const SchemaEngineOptions& options) {
  Budget::ScopedDeadline deadline(&ctx->budget(), limits.max_milliseconds);
  Engine engine(dtd, &p, &q, ctx, limits, options);
  int32_t goal = engine.Solve([&](LabelId a, int32_t ps, int32_t qs) {
    return dtd.IsStart(a) && engine.PAccepts(ps, mode) &&
           !engine.QAccepts(qs, mode);
  });
  // Contained iff no counterexample.
  return Finish(&engine, ctx, goal, /*yes_when_exhausted_reachable=*/true);
}

SchemaDecision SatisfiablePathWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                      EngineContext* ctx) {
  assert(IsPathQuery(p));
  Nta product = Nta::Intersect(dtd.Automaton(),
                               Nta::FromPathQuery(p, mode == Mode::kStrong));
  EngineStats& stats = ctx->stats();
  stats.nta_states_built.fetch_add(product.num_states(),
                                   std::memory_order_relaxed);
  stats.nta_transitions_built.fetch_add(
      static_cast<int64_t>(product.transitions().size()),
      std::memory_order_relaxed);
  SchemaDecision out;
  out.configurations = product.num_states();
  std::optional<Tree> witness = product.SmallestWitness();
  out.yes = witness.has_value();
  out.witness = std::move(witness);
  return out;
}

// Legacy entry points: same algorithms against the process-default context.

SchemaDecision SatisfiableWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                  const EngineLimits& limits) {
  return SatisfiableWithDtd(p, mode, dtd, &EngineContext::Default(), limits);
}

SchemaDecision ValidWithDtd(const Tpq& q, Mode mode, const Dtd& dtd,
                            const EngineLimits& limits) {
  return ValidWithDtd(q, mode, dtd, &EngineContext::Default(), limits);
}

SchemaDecision ContainedWithDtd(const Tpq& p, const Tpq& q, Mode mode,
                                const Dtd& dtd, const EngineLimits& limits) {
  return ContainedWithDtd(p, q, mode, dtd, &EngineContext::Default(), limits);
}

SchemaDecision SatisfiablePathWithDtd(const Tpq& p, Mode mode,
                                      const Dtd& dtd) {
  return SatisfiablePathWithDtd(p, mode, dtd, &EngineContext::Default());
}

}  // namespace tpc
