// The schema-aware decision engine (Sections 4–6 of the paper).
//
// Satisfiability, validity and containment with respect to a DTD are all
// emptiness questions about one product language:
//
//     { t  :  t ⊨ d,   t ∈ L(p) (if p given),   t ∉ L(q) (if q given) }
//
//   * satisfiability of p w.r.t. d:   no q           — nonempty ⇔ satisfiable
//   * validity of q w.r.t. d:        no p           — nonempty ⇔ NOT valid
//   * containment of p in q w.r.t d: both           — nonempty ⇔ NOT contained
//
// The engine computes the reachable configurations (a, ps, qs) where `a` is
// a DTD symbol and ps/qs are states of the lazy deterministic bottom-up
// automata of p and q (`TpqDetAutomaton`).  A configuration is realizable if
// some tree with root label `a` satisfying d's rules drives the automata to
// (ps, qs).  Because the deterministic pattern states depend only on the
// *unions* of the children's Sat/Below sets, the per-symbol horizontal
// search runs over (content-model NFA state, accumulated unions).
//
// The procedure is worst-case exponential — unavoidably so: the paper proves
// the general problems EXPTIME-complete (Theorem 6.6) — but it is the exact
// decision procedure for *every* fragment, and it terminates with a witness
// derivation when the product is nonempty.

#ifndef TPC_SCHEMA_SCHEMA_ENGINE_H_
#define TPC_SCHEMA_SCHEMA_ENGINE_H_

#include <cstdint>
#include <optional>

#include "contain/containment.h"  // Mode
#include "dtd/dtd.h"
#include "engine/engine.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Resource limits for the engine.  The EXPTIME benchmarks use the
/// configuration cap to probe how the explored state space grows with the
/// instance while keeping wall-clock time bounded.
struct EngineLimits {
  int64_t max_configurations = INT64_MAX;
  /// Cap on the per-symbol horizontal search frontier; a single content
  /// model can otherwise blow up before the configuration cap triggers.
  int64_t max_horizontal_nodes = INT64_MAX;
  /// Wall-clock deadline; 0 means unlimited.  Armed onto the context budget
  /// (tightening any caller deadline) for the duration of one decision, so
  /// the engine observes a single deadline via `Budget::Charge`.  Benchmarks
  /// use this to probe EXPTIME instances under a fixed time budget.
  int64_t max_milliseconds = 0;
};

/// A/B switches for the schema engine's exploration core.
struct SchemaEngineOptions {
  /// Keep only subsumption-maximal configurations per symbol and drop
  /// dominated ones on insert (antichain pruning).  Sound and complete —
  /// see DESIGN.md "Schema engine internals" — and typically shrinks the
  /// materialized configuration count by an order of magnitude on the
  /// EXPTIME family.  Off explores the full reachable set, for A/B runs.
  bool antichain = true;
};

/// Outcome of a schema-aware decision.
struct SchemaDecision {
  /// False iff the engine hit a resource limit before the answer was
  /// certain; `yes` is then meaningless.
  bool decided = true;
  /// Same information as `decided`, phrased in the engine's vocabulary
  /// (`kResourceExhausted` covers legacy caps and ctx budgets alike).
  Outcome outcome = Outcome::kDecided;
  /// Which resource exhausted (kNone while decided).  Legacy caps
  /// (`max_configurations`/`max_horizontal_nodes`) report kSteps: they are
  /// work-volume limits that bypass the budget's own counters.
  ExhaustionReason reason = ExhaustionReason::kNone;
  /// Answer to the *decision problem* as phrased in the paper:
  /// satisfiable? / valid? / contained?
  bool yes = false;
  /// For satisfiability: a tree in L(p) ∩ L(d).
  /// For validity / containment: a counterexample tree.
  std::optional<Tree> witness;
  /// Number of (symbol, pattern-state) configurations materialized — the
  /// cost measure reported by the Table 4/5 benchmarks.
  int64_t configurations = 0;
};

/// Is L(p) ∩ L(d) nonempty?  (W-/S-Satisfiability w.r.t. a DTD, Section 4.)
/// The ctx overload additionally honours the context's step/deadline budget
/// and fills its instrumentation counters; with `ctx->threads() > 1` the
/// per-symbol horizontal searches of each saturation round run on the
/// context's thread pool.
SchemaDecision SatisfiableWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                  EngineContext* ctx,
                                  const EngineLimits& limits = {},
                                  const SchemaEngineOptions& options = {});
SchemaDecision SatisfiableWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                  const EngineLimits& limits = {});

/// Is L(d) ⊆ L(q)?  (W-/S-Validity w.r.t. a DTD, Section 5.)
SchemaDecision ValidWithDtd(const Tpq& q, Mode mode, const Dtd& dtd,
                            EngineContext* ctx,
                            const EngineLimits& limits = {},
                            const SchemaEngineOptions& options = {});
SchemaDecision ValidWithDtd(const Tpq& q, Mode mode, const Dtd& dtd,
                            const EngineLimits& limits = {});

/// Is L(p) ∩ L(d) ⊆ L(q)?  (W-/S-Containment w.r.t. a DTD, Section 6.)
SchemaDecision ContainedWithDtd(const Tpq& p, const Tpq& q, Mode mode,
                                const Dtd& dtd, EngineContext* ctx,
                                const EngineLimits& limits = {},
                                const SchemaEngineOptions& options = {});
SchemaDecision ContainedWithDtd(const Tpq& p, const Tpq& q, Mode mode,
                                const Dtd& dtd,
                                const EngineLimits& limits = {});

/// Polynomial-time satisfiability of a *path* query w.r.t. a DTD via tree
/// automata intersection (Theorem 4.1(1)); cross-checks the engine.
SchemaDecision SatisfiablePathWithDtd(const Tpq& p, Mode mode, const Dtd& dtd,
                                      EngineContext* ctx);
SchemaDecision SatisfiablePathWithDtd(const Tpq& p, Mode mode, const Dtd& dtd);

}  // namespace tpc

#endif  // TPC_SCHEMA_SCHEMA_ENGINE_H_
