#include "schema/nta_satisfiability.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <map>
#include <set>
#include <tuple>
#include <unordered_set>
#include <vector>

#include "automata/path_complement.h"
#include "automata/state_interning.h"
#include "automata/tpq_det.h"
#include "engine/tracked.h"

namespace tpc {

namespace {

/// `ids` value for a configuration that arrived dominated (see the schema
/// engine); domination is transitive, so the key never needs revisiting.
constexpr int32_t kDroppedConfig = -2;

/// One realized configuration of the product: an NTA state together with a
/// deterministic pattern state (plus its interned Sat/Below ids), a
/// concrete node label, and a derivation.  Append-only arena; antichain
/// pruning only clears `active`.
struct NtaConfig {
  int32_t nta_state;
  int32_t p_state;
  LabelId label;
  int32_t sat_id, below_id;
  std::vector<int32_t> children;
  bool active = true;
};

}  // namespace

SchemaDecision SatisfiableWithNta(const Tpq& p, Mode mode, const Nta& nta,
                                  LabelPool* pool, EngineContext* ctx,
                                  const EngineLimits& limits,
                                  const SchemaEngineOptions& options) {
  Budget::ScopedDeadline scoped_deadline(&ctx->budget(),
                                         limits.max_milliseconds);
  DetSide det(&p, &ctx->budget());
  StateSetInterner& interner = det.interner();
  // Configuration-arena and search-frontier byte accounting; released when
  // this decision returns.
  TrackedBytes tracked_configs(&ctx->budget());
  TrackedBytes tracked_frontier(&ctx->budget());
  EngineStats& stats = ctx->stats();
  // Candidate labels for wildcard-labelled transitions: the letters of p
  // plus one fresh letter (any label outside p behaves identically).
  std::set<LabelId> label_set(nta.alphabet().begin(), nta.alphabet().end());
  for (NodeId v = 0; v < p.size(); ++v) {
    if (!p.IsWildcard(v)) label_set.insert(p.Label(v));
  }
  LabelId fresh = pool->Fresh("_any");
  std::vector<LabelId> wildcard_labels(label_set.begin(), label_set.end());
  wildcard_labels.push_back(fresh);

  std::vector<NtaConfig> configs;
  /// Per NTA state: arena indices the horizontal searches may consume.
  std::vector<std::vector<int32_t>> active_by_state(nta.num_states());
  std::map<std::tuple<int32_t, int32_t, LabelId>, int32_t> ids;
  // Union tuples already processed, *per transition*: transitions on the
  // same state carry different label sets, so a shared memo would lose
  // labels.  (sat_id, below_id) packs into one uint64.
  std::vector<std::unordered_set<uint64_t>> realized(nta.transitions().size());
  bool truncated = false;
  int32_t goal = -1;

  auto accepts = [&](int32_t nta_state, int32_t p_state) {
    if (!nta.final_states()[nta_state]) return false;
    return mode == Mode::kStrong ? det.AcceptsStrong(p_state)
                                 : det.AcceptsWeak(p_state);
  };

  /// Horizontal-search node over (NFA state, interned union ids).
  struct HNode {
    int32_t h;
    int32_t sat_id, below_id;
    int32_t from = -1, via = -1;
  };
  std::vector<HNode> nodes;
  std::unordered_set<std::array<int32_t, 3>, IntArrayHash<3>> seen;
  std::vector<int32_t> children_scratch;
  // Frontier accounting fires only when `nodes` reallocates, keeping the
  // charge at table granularity rather than per search node.
  size_t reserved_capacity = 0;
  auto reserve_frontier = [&]() {
    reserved_capacity = nodes.capacity();
    return tracked_frontier.Reserve(static_cast<int64_t>(
        reserved_capacity * (sizeof(HNode) + 3 * sizeof(int32_t))));
  };

  bool changed = true;
  while (changed && goal < 0 && !truncated) {
    changed = false;
    for (size_t ti = 0; ti < nta.transitions().size(); ++ti) {
      if (goal >= 0 || truncated) break;
      const Nta::Transition& tr = nta.transitions()[ti];
      const std::vector<LabelId> labels =
          tr.label == kWildcard ? wildcard_labels
                                : std::vector<LabelId>{tr.label};
      // Horizontal search over (NFA state, accumulated unions), consuming
      // realized configurations whose NTA state feeds the transition.
      nodes.clear();
      seen.clear();
      auto push = [&](const HNode& n) {
        if (!seen.insert({n.h, n.sat_id, n.below_id}).second) return;
        nodes.push_back(n);
        stats.horizontal_nodes.fetch_add(1, std::memory_order_relaxed);
      };
      constexpr int32_t kEmpty = StateSetInterner::kEmptySetId;
      push(HNode{tr.horizontal.initial, kEmpty, kEmpty, -1, -1});
      for (size_t i = 0; i < nodes.size() && goal < 0; ++i) {
        if (static_cast<int64_t>(nodes.size()) >=
                limits.max_horizontal_nodes ||
            !ctx->budget().Charge(1) ||
            (nodes.capacity() != reserved_capacity && !reserve_frontier())) {
          truncated = true;
          break;
        }
        if (tr.horizontal.accepting[nodes[i].h]) {
          const uint64_t tuple =
              (static_cast<uint64_t>(
                   static_cast<uint32_t>(nodes[i].sat_id)) << 32) |
              static_cast<uint32_t>(nodes[i].below_id);
          if (realized[ti].insert(tuple).second) {
            children_scratch.clear();
            for (int32_t n = static_cast<int32_t>(i); nodes[n].from >= 0;
                 n = nodes[n].from) {
              children_scratch.push_back(nodes[n].via);
            }
            std::reverse(children_scratch.begin(), children_scratch.end());
            for (LabelId label : labels) {
              int32_t ps = det.Resolve(label, nodes[i].sat_id,
                                       nodes[i].below_id);
              auto key = std::make_tuple(tr.state, ps, label);
              if (ids.count(key)) continue;
              const auto [sat_id, below_id] = det.StateSetIds(ps);
              if (sat_id < 0 || below_id < 0) {
                truncated = true;
                break;
              }
              std::vector<int32_t>& actives = active_by_state[tr.state];
              if (options.antichain) {
                // p occurs only positively here (satisfiability), so the
                // domination order is plain superset on both components;
                // labels may differ — the horizontal languages consume NTA
                // states, never labels, so a dominator substitutes in any
                // derivation.
                bool dominated = false;
                for (int32_t id : actives) {
                  const NtaConfig& c = configs[id];
                  if (!c.active) continue;
                  if (interner.Superset(c.sat_id, sat_id) &&
                      interner.Superset(c.below_id, below_id)) {
                    dominated = true;
                    break;
                  }
                }
                if (dominated) {
                  stats.configs_subsumed.fetch_add(1,
                                                   std::memory_order_relaxed);
                  ids.emplace(key, kDroppedConfig);
                  continue;
                }
                for (int32_t id : actives) {
                  NtaConfig& c = configs[id];
                  if (!c.active) continue;
                  if (interner.Superset(sat_id, c.sat_id) &&
                      interner.Superset(below_id, c.below_id)) {
                    c.active = false;
                    stats.configs_subsumed.fetch_add(
                        1, std::memory_order_relaxed);
                  }
                }
              }
              int32_t id = static_cast<int32_t>(configs.size());
              if (!tracked_configs.Charge(static_cast<int64_t>(
                      sizeof(NtaConfig) +
                      children_scratch.size() * sizeof(int32_t)))) {
                truncated = true;
                break;
              }
              configs.push_back(NtaConfig{tr.state, ps, label, sat_id,
                                          below_id, children_scratch, true});
              actives.push_back(id);
              ids.emplace(key, id);
              stats.schema_configurations.fetch_add(1,
                                                    std::memory_order_relaxed);
              changed = true;
              if (accepts(tr.state, ps)) {
                goal = id;
                break;
              }
              if (static_cast<int64_t>(configs.size()) >=
                  limits.max_configurations) {
                truncated = true;
                break;
              }
            }
          }
          if (goal >= 0 || truncated) break;
        }
        const auto& ts = tr.horizontal.transitions[nodes[i].h];
        for (const auto& [sym, target] : ts) {
          if (sym >= static_cast<Symbol>(nta.num_states())) continue;
          const std::vector<int32_t>& actives = active_by_state[sym];
          for (size_t k = 0; k < actives.size(); ++k) {
            const NtaConfig& child = configs[actives[k]];
            if (!child.active) continue;
            HNode next;
            next.h = target;
            next.sat_id = interner.Union(nodes[i].sat_id, child.sat_id);
            next.below_id = interner.Union(nodes[i].below_id, child.below_id);
            if (next.sat_id < 0 || next.below_id < 0) {
              truncated = true;
              break;
            }
            next.from = static_cast<int32_t>(i);
            next.via = actives[k];
            push(next);
          }
          if (truncated) break;
        }
        if (truncated) break;
      }
    }
  }

  SchemaDecision out;
  out.configurations = static_cast<int64_t>(configs.size());
  out.decided = goal >= 0 || !truncated;
  out.outcome = out.decided ? Outcome::kDecided : Outcome::kResourceExhausted;
  if (!out.decided) {
    // Before the ScopedDeadline unwinds: legacy caps trip without a budget
    // reason and report as the work-volume (kSteps) limit they are.
    const ExhaustionReason r = ctx->budget().reason();
    out.reason = r == ExhaustionReason::kNone ? ExhaustionReason::kSteps : r;
  }
  out.yes = goal >= 0;
  stats.det_states_materialized.fetch_add(det.num_materialized(),
                                          std::memory_order_relaxed);
  stats.state_sets_interned.fetch_add(interner.num_interned(),
                                      std::memory_order_relaxed);
  stats.unions_memoized.fetch_add(interner.unions_memoized(),
                                  std::memory_order_relaxed);
  if (goal >= 0) {
    // Materialize the witness tree (the arena keeps deactivated configs, so
    // every derivation index stays valid).
    Tree t;
    std::vector<std::pair<int32_t, NodeId>> queue = {{goal, kNoNode}};
    for (size_t i = 0; i < queue.size(); ++i) {
      auto [cfg_index, parent] = queue[i];
      const NtaConfig& cfg = configs[cfg_index];
      NodeId v = parent == kNoNode ? t.AddRoot(cfg.label)
                                   : t.AddChild(parent, cfg.label);
      for (int32_t child : cfg.children) queue.emplace_back(child, v);
    }
    out.witness = std::move(t);
  }
  return out;
}

SchemaDecision ContainedViaConpRoute(const Tpq& p, const Tpq& q, Mode mode,
                                     const Dtd& dtd, LabelPool* pool,
                                     EngineContext* ctx,
                                     const EngineLimits& limits,
                                     const SchemaEngineOptions& options) {
  assert(IsPathQuery(q));
  std::set<LabelId> sigma_set(dtd.alphabet().begin(), dtd.alphabet().end());
  for (NodeId v = 0; v < q.size(); ++v) {
    if (!q.IsWildcard(v)) sigma_set.insert(q.Label(v));
  }
  for (NodeId v = 0; v < p.size(); ++v) {
    if (!p.IsWildcard(v)) sigma_set.insert(p.Label(v));
  }
  std::vector<LabelId> sigma(sigma_set.begin(), sigma_set.end());
  Nta product = Nta::Intersect(dtd.Automaton(),
                               ComplementOfPathQueryNta(q, sigma, mode));
  EngineStats& stats = ctx->stats();
  stats.nta_states_built.fetch_add(product.num_states(),
                                   std::memory_order_relaxed);
  stats.nta_transitions_built.fetch_add(
      static_cast<int64_t>(product.transitions().size()),
      std::memory_order_relaxed);
  SchemaDecision sat =
      SatisfiableWithNta(p, mode, product, pool, ctx, limits, options);
  SchemaDecision out;
  out.decided = sat.decided;
  out.outcome = sat.outcome;
  out.reason = sat.reason;
  out.yes = !sat.yes;  // contained iff no witness of p ∧ d ∧ ¬q
  out.witness = std::move(sat.witness);
  out.configurations = sat.configurations;
  return out;
}

// Legacy entry points: same algorithms against the process-default context.

SchemaDecision SatisfiableWithNta(const Tpq& p, Mode mode, const Nta& nta,
                                  LabelPool* pool,
                                  const EngineLimits& limits) {
  return SatisfiableWithNta(p, mode, nta, pool, &EngineContext::Default(),
                            limits);
}

SchemaDecision ContainedViaConpRoute(const Tpq& p, const Tpq& q, Mode mode,
                                     const Dtd& dtd, LabelPool* pool,
                                     const EngineLimits& limits) {
  return ContainedViaConpRoute(p, q, mode, dtd, pool,
                               &EngineContext::Default(), limits);
}

}  // namespace tpc
