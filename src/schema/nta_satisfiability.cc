#include "schema/nta_satisfiability.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "automata/path_complement.h"
#include "automata/tpq_det.h"

namespace tpc {

namespace {

/// One realizable configuration of the product: an NTA state together with
/// a deterministic pattern state, a concrete node label, and a derivation.
struct NtaConfig {
  int32_t nta_state;
  int32_t p_state;
  LabelId label;
  std::vector<int32_t> children;
};

}  // namespace

SchemaDecision SatisfiableWithNta(const Tpq& p, Mode mode, const Nta& nta,
                                  LabelPool* pool, EngineContext* ctx,
                                  const EngineLimits& limits) {
  TpqDetAutomaton det(p);
  EngineStats& stats = ctx->stats();
  // Candidate labels for wildcard-labelled transitions: the letters of p
  // plus one fresh letter (any label outside p behaves identically).
  std::set<LabelId> label_set(nta.alphabet().begin(), nta.alphabet().end());
  for (NodeId v = 0; v < p.size(); ++v) {
    if (!p.IsWildcard(v)) label_set.insert(p.Label(v));
  }
  LabelId fresh = pool->Fresh("_any");
  std::vector<LabelId> wildcard_labels(label_set.begin(), label_set.end());
  wildcard_labels.push_back(fresh);

  std::vector<NtaConfig> configs;
  std::map<std::tuple<int32_t, int32_t, LabelId>, int32_t> ids;
  bool truncated = false;
  int32_t goal = -1;

  auto accepts = [&](const NtaConfig& cfg) {
    if (!nta.final_states()[cfg.nta_state]) return false;
    return mode == Mode::kStrong ? det.AcceptsStrong(cfg.p_state)
                                 : det.AcceptsWeak(cfg.p_state);
  };

  bool changed = true;
  while (changed && goal < 0 && !truncated) {
    changed = false;
    for (const Nta::Transition& tr : nta.transitions()) {
      if (goal >= 0 || truncated) break;
      std::vector<LabelId> labels =
          tr.label == kWildcard ? wildcard_labels
                                : std::vector<LabelId>{tr.label};
      // Horizontal search over (NFA state, accumulated unions), consuming
      // realized configurations whose NTA state feeds the transition.
      struct HNode {
        int32_t h;
        NodeBitset sat, below;
        int32_t from = -1, via = -1;
      };
      std::vector<HNode> nodes;
      std::map<std::tuple<int32_t, NodeBitset, NodeBitset>, int32_t> seen;
      auto intern = [&](HNode n) {
        auto key = std::make_tuple(n.h, n.sat, n.below);
        if (seen.count(key)) return;
        seen.emplace(std::move(key), static_cast<int32_t>(nodes.size()));
        nodes.push_back(std::move(n));
        stats.horizontal_nodes.fetch_add(1, std::memory_order_relaxed);
      };
      HNode start;
      start.h = tr.horizontal.initial;
      start.sat = NodeBitset(p.size());
      start.below = NodeBitset(p.size());
      intern(std::move(start));
      for (size_t i = 0; i < nodes.size() && goal < 0; ++i) {
        if (static_cast<int64_t>(nodes.size()) >=
                limits.max_horizontal_nodes ||
            !ctx->budget().Charge(1)) {
          truncated = true;
          break;
        }
        if (tr.horizontal.accepting[nodes[i].h]) {
          for (LabelId label : labels) {
            int32_t ps = det.StateForUnion(label, nodes[i].sat,
                                           nodes[i].below);
            auto key = std::make_tuple(tr.state, ps, label);
            if (ids.count(key)) continue;
            NtaConfig cfg{tr.state, ps, label, {}};
            for (int32_t n = static_cast<int32_t>(i); nodes[n].from >= 0;
                 n = nodes[n].from) {
              cfg.children.push_back(nodes[n].via);
            }
            std::reverse(cfg.children.begin(), cfg.children.end());
            int32_t id = static_cast<int32_t>(configs.size());
            configs.push_back(cfg);
            ids.emplace(key, id);
            stats.schema_configurations.fetch_add(1,
                                                  std::memory_order_relaxed);
            changed = true;
            if (accepts(cfg)) {
              goal = id;
              break;
            }
            if (static_cast<int64_t>(configs.size()) >=
                limits.max_configurations) {
              truncated = true;
              break;
            }
          }
          if (goal >= 0 || truncated) break;
        }
        size_t num_now = configs.size();
        const auto& ts = tr.horizontal.transitions[nodes[i].h];
        for (size_t c = 0; c < num_now; ++c) {
          for (const auto& [sym, target] : ts) {
            if (static_cast<int32_t>(sym) != configs[c].nta_state) continue;
            HNode next = nodes[i];
            next.h = target;
            next.from = static_cast<int32_t>(i);
            next.via = static_cast<int32_t>(c);
            next.sat.UnionWith(det.Sat(configs[c].p_state));
            next.below.UnionWith(det.Below(configs[c].p_state));
            intern(std::move(next));
          }
        }
      }
    }
  }

  SchemaDecision out;
  out.configurations = static_cast<int64_t>(configs.size());
  out.decided = goal >= 0 || !truncated;
  out.outcome = out.decided ? Outcome::kDecided : Outcome::kResourceExhausted;
  out.yes = goal >= 0;
  stats.det_states_materialized.fetch_add(det.num_materialized(),
                                          std::memory_order_relaxed);
  if (goal >= 0) {
    // Materialize the witness tree.
    Tree t;
    std::vector<std::pair<int32_t, NodeId>> queue = {{goal, kNoNode}};
    for (size_t i = 0; i < queue.size(); ++i) {
      auto [cfg_index, parent] = queue[i];
      const NtaConfig& cfg = configs[cfg_index];
      NodeId v = parent == kNoNode ? t.AddRoot(cfg.label)
                                   : t.AddChild(parent, cfg.label);
      for (int32_t child : cfg.children) queue.emplace_back(child, v);
    }
    out.witness = std::move(t);
  }
  return out;
}

SchemaDecision ContainedViaConpRoute(const Tpq& p, const Tpq& q, Mode mode,
                                     const Dtd& dtd, LabelPool* pool,
                                     EngineContext* ctx,
                                     const EngineLimits& limits) {
  assert(IsPathQuery(q));
  std::set<LabelId> sigma_set(dtd.alphabet().begin(), dtd.alphabet().end());
  for (NodeId v = 0; v < q.size(); ++v) {
    if (!q.IsWildcard(v)) sigma_set.insert(q.Label(v));
  }
  for (NodeId v = 0; v < p.size(); ++v) {
    if (!p.IsWildcard(v)) sigma_set.insert(p.Label(v));
  }
  std::vector<LabelId> sigma(sigma_set.begin(), sigma_set.end());
  Nta product = Nta::Intersect(Nta::FromDtd(dtd),
                               ComplementOfPathQueryNta(q, sigma, mode));
  EngineStats& stats = ctx->stats();
  stats.nta_states_built.fetch_add(product.num_states(),
                                   std::memory_order_relaxed);
  stats.nta_transitions_built.fetch_add(
      static_cast<int64_t>(product.transitions().size()),
      std::memory_order_relaxed);
  SchemaDecision sat = SatisfiableWithNta(p, mode, product, pool, ctx, limits);
  SchemaDecision out;
  out.decided = sat.decided;
  out.outcome = sat.outcome;
  out.yes = !sat.yes;  // contained iff no witness of p ∧ d ∧ ¬q
  out.witness = std::move(sat.witness);
  out.configurations = sat.configurations;
  return out;
}

// Legacy entry points: same algorithms against the process-default context.

SchemaDecision SatisfiableWithNta(const Tpq& p, Mode mode, const Nta& nta,
                                  LabelPool* pool,
                                  const EngineLimits& limits) {
  return SatisfiableWithNta(p, mode, nta, pool, &EngineContext::Default(),
                            limits);
}

SchemaDecision ContainedViaConpRoute(const Tpq& p, const Tpq& q, Mode mode,
                                     const Dtd& dtd, LabelPool* pool,
                                     const EngineLimits& limits) {
  return ContainedViaConpRoute(p, q, mode, dtd, pool,
                               &EngineContext::Default(), limits);
}

}  // namespace tpc
