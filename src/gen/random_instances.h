// Seeded random generators for trees, patterns, and DTDs.
//
// Used by property tests (cross-checking independent implementations on
// random instances) and by the polynomial-scaling benchmarks.  All
// generators are deterministic given the RNG state.

#ifndef TPC_GEN_RANDOM_INSTANCES_H_
#define TPC_GEN_RANDOM_INSTANCES_H_

#include <random>
#include <vector>

#include "base/label.h"
#include "dtd/dtd.h"
#include "pattern/tpq.h"
#include "tree/tree.h"

namespace tpc {

/// Options for random generation.  `labels` is the set of letters to draw
/// from (must not contain the wildcard).
struct RandomTreeOptions {
  std::vector<LabelId> labels;
  int32_t size = 10;          // exact node count
  double branch_bias = 0.5;   // 0 = always deepen, 1 = always widen
};

/// A uniform-ish random tree with exactly `size` nodes.
Tree RandomTree(const RandomTreeOptions& options, std::mt19937* rng);

/// Adversarial shapes for layout/property tests: a root-to-leaf chain of
/// `size` nodes (maximum depth — worst case for ancestor walks and the
/// postorder index's span nesting) with labels drawn round-robin.
Tree ChainTree(const std::vector<LabelId>& labels, int32_t size);

/// A root with `size - 1` leaf children (maximum fan-out — worst case for
/// child folds), labels round-robin.
Tree StarTree(const std::vector<LabelId>& labels, int32_t size);

struct RandomTpqOptions {
  std::vector<LabelId> labels;
  int32_t size = 6;               // exact node count
  Fragment fragment;              // features the pattern may use
  double wildcard_prob = 0.3;     // used only if fragment.wildcard
  double descendant_prob = 0.4;   // used only if both edge kinds allowed
  double branch_bias = 0.4;       // used only if fragment.branching
};

/// A random pattern within the requested fragment.
///
/// Note: with `size >= 2`, at least one edge exists, so the result uses the
/// edge kind(s) the fragment allows; wildcard/branching presence is
/// probabilistic.
Tpq RandomTpq(const RandomTpqOptions& options, std::mt19937* rng);

struct RandomDtdOptions {
  std::vector<LabelId> labels;
  int32_t max_rule_size = 4;     // atoms per content model
  double star_prob = 0.4;        // chance an atom is starred
  double optional_prob = 0.3;    // chance an atom is optional
};

/// A random reduced DTD over `labels` with the first label as start symbol.
/// The construction only references labels at higher indices from lower
/// ones, which guarantees all symbols are generating; the result is then
/// reduced so every remaining symbol is also reachable.
Dtd RandomDtd(const RandomDtdOptions& options, std::mt19937* rng);

/// Interns `n` letters "l0".."l{n-1}" into `pool` and returns their ids.
std::vector<LabelId> MakeLabels(int32_t n, LabelPool* pool);

}  // namespace tpc

#endif  // TPC_GEN_RANDOM_INSTANCES_H_
