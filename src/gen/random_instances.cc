#include "gen/random_instances.h"

#include <cassert>
#include <string>

namespace tpc {

Tree RandomTree(const RandomTreeOptions& options, std::mt19937* rng) {
  assert(!options.labels.empty() && options.size >= 1);
  std::uniform_int_distribution<size_t> pick_label(0,
                                                   options.labels.size() - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Tree t(options.labels[pick_label(*rng)]);
  NodeId frontier = 0;  // the current "deep" node
  while (t.size() < options.size) {
    LabelId label = options.labels[pick_label(*rng)];
    if (coin(*rng) < options.branch_bias) {
      // Widen: attach to a uniformly random existing node.
      std::uniform_int_distribution<NodeId> pick_node(0, t.size() - 1);
      t.AddChild(pick_node(*rng), label);
    } else {
      // Deepen: extend the frontier chain.
      frontier = t.AddChild(frontier, label);
    }
  }
  return t;
}

Tree ChainTree(const std::vector<LabelId>& labels, int32_t size) {
  assert(!labels.empty() && size >= 1);
  Tree t(labels[0]);
  NodeId tip = 0;
  for (int32_t i = 1; i < size; ++i) {
    tip = t.AddChild(tip, labels[i % labels.size()]);
  }
  return t;
}

Tree StarTree(const std::vector<LabelId>& labels, int32_t size) {
  assert(!labels.empty() && size >= 1);
  Tree t(labels[0]);
  for (int32_t i = 1; i < size; ++i) {
    t.AddChild(0, labels[i % labels.size()]);
  }
  return t;
}

Tpq RandomTpq(const RandomTpqOptions& options, std::mt19937* rng) {
  assert(!options.labels.empty() && options.size >= 1);
  const Fragment& f = options.fragment;
  assert((f.child_edges || f.descendant_edges || options.size == 1) &&
         "a multi-node pattern needs at least one edge kind");
  std::uniform_int_distribution<size_t> pick_label(0,
                                                   options.labels.size() - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  auto pick = [&]() -> LabelId {
    if (f.wildcard && coin(*rng) < options.wildcard_prob) return kWildcard;
    return options.labels[pick_label(*rng)];
  };
  auto edge = [&]() -> EdgeKind {
    if (!f.descendant_edges) return EdgeKind::kChild;
    if (!f.child_edges) return EdgeKind::kDescendant;
    return coin(*rng) < options.descendant_prob ? EdgeKind::kDescendant
                                                : EdgeKind::kChild;
  };
  Tpq q(pick());
  NodeId frontier = 0;
  while (q.size() < options.size) {
    if (f.branching && coin(*rng) < options.branch_bias) {
      std::uniform_int_distribution<NodeId> pick_node(0, q.size() - 1);
      q.AddChild(pick_node(*rng), pick(), edge());
    } else {
      frontier = q.AddChild(frontier, pick(), edge());
    }
  }
  return q;
}

Dtd RandomDtd(const RandomDtdOptions& options, std::mt19937* rng) {
  assert(!options.labels.empty());
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  Dtd dtd;
  size_t n = options.labels.size();
  for (size_t i = 0; i < n; ++i) {
    // Content model: a concatenation of atoms over labels with index > i
    // (so the grammar is acyclic and every symbol generates), where each
    // atom may be starred/optional.  The last symbol always maps to ε.
    std::vector<Regex> parts;
    if (i + 1 < n) {
      std::uniform_int_distribution<int32_t> num_atoms(0,
                                                       options.max_rule_size);
      std::uniform_int_distribution<size_t> pick_ref(i + 1, n - 1);
      int32_t k = num_atoms(*rng);
      for (int32_t j = 0; j < k; ++j) {
        Regex atom = Regex::Letter(options.labels[pick_ref(*rng)]);
        if (coin(*rng) < options.star_prob) {
          atom = Regex::Star(std::move(atom));
        } else if (coin(*rng) < options.optional_prob) {
          atom = Regex::Optional(std::move(atom));
        }
        parts.push_back(std::move(atom));
      }
    }
    dtd.SetRule(options.labels[i], Regex::Concat(std::move(parts)));
  }
  dtd.AddStart(options.labels[0]);
  return dtd.Reduce();
}

std::vector<LabelId> MakeLabels(int32_t n, LabelPool* pool) {
  std::vector<LabelId> out;
  out.reserve(n);
  for (int32_t i = 0; i < n; ++i) {
    out.push_back(pool->Intern("l" + std::to_string(i)));
  }
  return out;
}

}  // namespace tpc
