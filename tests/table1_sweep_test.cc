// Parameterized sweep over the full Table 1 grid: for every pair of
// fragments (F1, F2) and both weak and strong containment, random instances
// from F1 × F2 are decided by the dispatcher and cross-validated against
// the fragment-oblivious canonical-model procedure.  This is the
// machine-checked counterpart of "every cell of Table 1 is decided
// correctly" — the complexity *classification* itself is reproduced by the
// benchmarks.

#include <gtest/gtest.h>

#include <random>
#include <string>
#include <tuple>

#include "base/label.h"
#include "contain/containment.h"
#include "gen/random_instances.h"

namespace tpc {
namespace {

struct Table1Cell {
  Fragment left;
  Fragment right;
  Mode mode;
};

std::string FragmentName(const Fragment& f) {
  std::string out = f.branching ? "Tpq" : "Pq";
  if (f.child_edges) out += "C";
  if (f.descendant_edges) out += "D";
  if (f.wildcard) out += "S";
  return out;
}

std::string CellName(const ::testing::TestParamInfo<Table1Cell>& info) {
  return FragmentName(info.param.left) + "_in_" +
         FragmentName(info.param.right) +
         (info.param.mode == Mode::kWeak ? "_weak" : "_strong");
}

class Table1SweepTest : public ::testing::TestWithParam<Table1Cell> {};

TEST_P(Table1SweepTest, DispatcherMatchesCanonicalEnumeration) {
  const Table1Cell& cell = GetParam();
  LabelPool pool;
  std::mt19937 rng(2718);
  std::vector<LabelId> labels = MakeLabels(2, &pool);
  ContainmentOptions forced;
  forced.force_canonical = true;
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    RandomTpqOptions popts;
    popts.labels = labels;
    popts.fragment = cell.left;
    popts.size = 2 + trial % 4;
    RandomTpqOptions qopts = popts;
    qopts.fragment = cell.right;
    qopts.size = 2 + (trial / 3) % 4;
    Tpq p = RandomTpq(popts, &rng);
    Tpq q = RandomTpq(qopts, &rng);
    ContainmentResult fast = Contains(p, q, cell.mode, &pool);
    ContainmentResult slow = Contains(p, q, cell.mode, &pool, forced);
    ASSERT_EQ(fast.contained, slow.contained)
        << p.ToString(pool) << " in " << q.ToString(pool) << " via "
        << static_cast<int>(fast.algorithm);
    ++checked;
  }
  EXPECT_EQ(checked, 30);
}

std::vector<Table1Cell> AllCells() {
  // The fragment lattice rows/columns of Table 1 (path and branching
  // variants of each feature combination that includes at least one edge
  // kind).
  const Fragment kFragments[] = {
      fragments::kPqChild,      fragments::kPqDesc,
      fragments::kPqChildStar,  fragments::kPqDescStar,
      fragments::kPqFull,       fragments::kTpqChild,
      fragments::kTpqDesc,      fragments::kTpqChildDesc,
      fragments::kTpqChildStar, fragments::kTpqDescStar,
      fragments::kTpqFull,
  };
  std::vector<Table1Cell> cells;
  for (const Fragment& left : kFragments) {
    for (const Fragment& right : kFragments) {
      for (Mode mode : {Mode::kWeak, Mode::kStrong}) {
        cells.push_back({left, right, mode});
      }
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(AllFragmentPairs, Table1SweepTest,
                         ::testing::ValuesIn(AllCells()), CellName);

}  // namespace
}  // namespace tpc
