// Unit tests of the query-service fast path: cache keying through
// minimization + canonical hashing, sound replay of cached refutations,
// prefilter accepts/refutes, batch dedup/fan-out, and the byte bound.

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "engine/engine.h"
#include "match/embedding.h"
#include "pattern/tpq.h"
#include "reductions/hardness_families.h"
#include "service/query_service.h"

namespace tpc {
namespace {

int64_t Stat(EngineContext* ctx, std::atomic<int64_t> EngineStats::*field) {
  return (ctx->stats().*field).load(std::memory_order_relaxed);
}

TEST(QueryServiceTest, RepeatedPairHitsTheCache) {
  LabelPool pool;
  EngineContext ctx;
  QueryService service(&pool, &ctx);
  ConpFamilyInstance inst = BuildConpFamily(3, &pool);

  ContainmentResult cold = service.Contains(inst.p, inst.q_yes, Mode::kWeak);
  ASSERT_EQ(cold.outcome, Outcome::kDecided);
  EXPECT_TRUE(cold.contained);
  EXPECT_EQ(Stat(&ctx, &EngineStats::cache_hits), 0);

  const int64_t trees_cold = Stat(&ctx, &EngineStats::canonical_trees_enumerated);
  ContainmentResult warm = service.Contains(inst.p, inst.q_yes, Mode::kWeak);
  ASSERT_EQ(warm.outcome, Outcome::kDecided);
  EXPECT_TRUE(warm.contained);
  EXPECT_EQ(Stat(&ctx, &EngineStats::cache_hits), 1);
  // The warm hit must not have re-run the sweep.
  EXPECT_EQ(Stat(&ctx, &EngineStats::canonical_trees_enumerated), trees_cold);
}

TEST(QueryServiceTest, ChildOrderVariantsShareOneEntry) {
  LabelPool pool;
  EngineContext ctx;
  QueryService service(&pool, &ctx);
  const LabelId a = pool.Intern("a");
  const LabelId b = pool.Intern("b");
  const LabelId c = pool.Intern("c");

  Tpq q(a);  // a[b][//c]
  q.AddChild(0, b, EdgeKind::kChild);
  q.AddChild(0, c, EdgeKind::kDescendant);

  Tpq p1(a);  // a[b/b][//c]
  NodeId p1b = p1.AddChild(0, b, EdgeKind::kChild);
  p1.AddChild(p1b, b, EdgeKind::kChild);
  p1.AddChild(0, c, EdgeKind::kDescendant);

  Tpq p2(a);  // a[//c][b/b]: p1 with siblings swapped
  p2.AddChild(0, c, EdgeKind::kDescendant);
  NodeId p2b = p2.AddChild(0, b, EdgeKind::kChild);
  p2.AddChild(p2b, b, EdgeKind::kChild);

  ContainmentResult r1 = service.Contains(p1, q, Mode::kWeak);
  ContainmentResult r2 = service.Contains(p2, q, Mode::kWeak);
  ASSERT_EQ(r1.outcome, Outcome::kDecided);
  ASSERT_EQ(r2.outcome, Outcome::kDecided);
  EXPECT_EQ(r1.contained, r2.contained);
  EXPECT_EQ(Stat(&ctx, &EngineStats::cache_hits), 1);
}

TEST(QueryServiceTest, MinimizationEquivalentVariantsShareOneEntry) {
  LabelPool pool;
  EngineContext ctx;
  QueryService service(&pool, &ctx);
  const LabelId a = pool.Intern("a");
  const LabelId b = pool.Intern("b");

  Tpq q(a);
  q.AddChild(0, b, EdgeKind::kDescendant);

  Tpq p1(a);  // a[b]
  p1.AddChild(0, b, EdgeKind::kChild);
  Tpq p2(a);  // a[b][b]: minimizes to a[b]
  p2.AddChild(0, b, EdgeKind::kChild);
  p2.AddChild(0, b, EdgeKind::kChild);

  ContainmentResult r1 = service.Contains(p1, q, Mode::kWeak);
  ContainmentResult r2 = service.Contains(p2, q, Mode::kWeak);
  ASSERT_EQ(r1.contained, r2.contained);
  EXPECT_EQ(Stat(&ctx, &EngineStats::cache_hits), 1);
}

TEST(QueryServiceTest, CachedRefutationReplaysAValidWitness) {
  LabelPool pool;
  EngineContext ctx;
  QueryService service(&pool, &ctx);
  ConpFamilyInstance inst = BuildConpFamily(3, &pool);

  ContainmentResult cold = service.Contains(inst.p, inst.q_no, Mode::kWeak);
  ASSERT_EQ(cold.outcome, Outcome::kDecided);
  ASSERT_FALSE(cold.contained);

  ContainmentResult warm = service.Contains(inst.p, inst.q_no, Mode::kWeak);
  ASSERT_EQ(warm.outcome, Outcome::kDecided);
  ASSERT_FALSE(warm.contained);
  EXPECT_GE(Stat(&ctx, &EngineStats::cache_hits), 1);
  // The served witness must be a genuine member of L_w(p) \ L_w(q).
  ASSERT_TRUE(warm.counterexample.has_value());
  EXPECT_TRUE(MatchesWeak(inst.p, *warm.counterexample));
  EXPECT_FALSE(MatchesWeak(inst.q_no, *warm.counterexample));
}

TEST(QueryServiceTest, HomomorphismPrefilterAcceptsWithoutSweeping) {
  LabelPool pool;
  EngineContext ctx;
  ServiceOptions options;
  options.use_cache = false;  // isolate the prefilter layer
  QueryService service(&pool, &ctx, options);
  ConpFamilyInstance inst = BuildConpFamily(3, &pool);

  // p ⊆ p accepts via the identity homomorphism; without the prefilter this
  // pair routes to the exponential canonical sweep (q = p has wildcards).
  ContainmentResult r = service.Contains(inst.p, inst.p, Mode::kWeak);
  ASSERT_EQ(r.outcome, Outcome::kDecided);
  EXPECT_TRUE(r.contained);
  EXPECT_EQ(r.algorithm, ContainmentAlgorithm::kHomomorphism);
  EXPECT_EQ(Stat(&ctx, &EngineStats::prefilter_accepts), 1);
  EXPECT_EQ(Stat(&ctx, &EngineStats::canonical_trees_enumerated), 0);
}

TEST(QueryServiceTest, ProbePrefilterRefutesWithoutSweeping) {
  LabelPool pool;
  EngineContext ctx;
  ServiceOptions options;
  options.use_cache = false;
  QueryService service(&pool, &ctx, options);
  ConpFamilyInstance inst = BuildConpFamily(3, &pool);

  // q_no's unique counterexample shape is the all-zero canonical model —
  // exactly the first probe — so the refutation must cost O(1) trees.
  ContainmentResult r = service.Contains(inst.p, inst.q_no, Mode::kWeak);
  ASSERT_EQ(r.outcome, Outcome::kDecided);
  EXPECT_FALSE(r.contained);
  EXPECT_EQ(Stat(&ctx, &EngineStats::prefilter_refutes), 1);
  EXPECT_LE(Stat(&ctx, &EngineStats::canonical_trees_enumerated), 2);
  ASSERT_TRUE(r.counterexample.has_value());
  EXPECT_TRUE(MatchesWeak(inst.p, *r.counterexample));
  EXPECT_FALSE(MatchesWeak(inst.q_no, *r.counterexample));
}

TEST(QueryServiceTest, VerdictsAgreeAcrossAllLayerCombinations) {
  LabelPool pool;
  ConpFamilyInstance inst = BuildConpFamily(3, &pool);
  const Tpq* qs[] = {&inst.q_yes, &inst.q_no};
  for (bool use_cache : {true, false}) {
    for (bool use_prefilters : {true, false}) {
      EngineContext ctx;
      ServiceOptions options;
      options.use_cache = use_cache;
      options.use_prefilters = use_prefilters;
      QueryService service(&pool, &ctx, options);
      for (const Tpq* q : qs) {
        ContainmentResult fast = service.Contains(inst.p, *q, Mode::kWeak);
        ContainmentResult reference = Contains(inst.p, *q, Mode::kWeak, &pool);
        ASSERT_EQ(fast.outcome, Outcome::kDecided);
        EXPECT_EQ(fast.contained, reference.contained)
            << "cache=" << use_cache << " prefilters=" << use_prefilters;
      }
    }
  }
}

TEST(QueryServiceTest, BatchFoldsDuplicatesAndKeepsOrder) {
  LabelPool pool;
  EngineContext ctx;
  QueryService service(&pool, &ctx);
  const LabelId a = pool.Intern("a");
  const LabelId b = pool.Intern("b");

  Tpq chain(a);  // a/b
  chain.AddChild(0, b, EdgeKind::kChild);
  Tpq deep(a);  // a//b
  deep.AddChild(0, b, EdgeKind::kDescendant);

  std::vector<QueryService::BatchItem> items;
  items.push_back({chain, deep, Mode::kWeak});   // contained
  items.push_back({deep, chain, Mode::kWeak});   // NOT contained
  items.push_back({chain, deep, Mode::kWeak});   // duplicate of 0
  items.push_back({chain, deep, Mode::kStrong});  // distinct: mode differs
  items.push_back({deep, chain, Mode::kWeak});   // duplicate of 1

  std::vector<ContainmentResult> results = service.ContainsBatch(items);
  ASSERT_EQ(results.size(), items.size());
  EXPECT_TRUE(results[0].contained);
  EXPECT_FALSE(results[1].contained);
  EXPECT_TRUE(results[2].contained);
  EXPECT_TRUE(results[3].contained);
  EXPECT_FALSE(results[4].contained);
  EXPECT_EQ(Stat(&ctx, &EngineStats::batch_deduped), 2);
}

TEST(QueryServiceTest, ParallelBatchMatchesSequential) {
  LabelPool pool;
  ConpFamilyInstance inst = BuildConpFamily(3, &pool);
  std::vector<QueryService::BatchItem> items;
  for (int i = 0; i < 12; ++i) {
    items.push_back({inst.p, i % 2 == 0 ? inst.q_yes : inst.q_no,
                     i % 3 == 0 ? Mode::kStrong : Mode::kWeak});
  }
  EngineContext seq_ctx;
  QueryService seq(&pool, &seq_ctx);
  std::vector<ContainmentResult> sequential = seq.ContainsBatch(items);

  EngineConfig config;
  config.threads = 4;
  EngineContext par_ctx(config);
  QueryService par(&pool, &par_ctx);
  std::vector<ContainmentResult> parallel = par.ContainsBatch(items);

  ASSERT_EQ(sequential.size(), parallel.size());
  for (size_t i = 0; i < sequential.size(); ++i) {
    ASSERT_EQ(sequential[i].outcome, Outcome::kDecided);
    ASSERT_EQ(parallel[i].outcome, Outcome::kDecided);
    EXPECT_EQ(sequential[i].contained, parallel[i].contained) << "item " << i;
  }
}

TEST(QueryServiceTest, TinyByteBoundForcesEvictions) {
  LabelPool pool;
  EngineContext ctx;
  ServiceOptions options;
  options.cache_shards = 1;
  options.cache_bytes = 256;  // roughly one entry per shard
  options.use_prefilters = false;
  QueryService service(&pool, &ctx, options);
  const LabelId a = pool.Intern("a");

  Tpq q(a);
  q.AddChild(0, pool.Intern("zzz"), EdgeKind::kDescendant);
  for (int i = 0; i < 8; ++i) {
    Tpq p(a);
    NodeId v = p.AddChild(0, pool.Intern("x" + std::to_string(i)),
                          EdgeKind::kChild);
    p.AddChild(v, pool.Intern("y" + std::to_string(i)),
               EdgeKind::kDescendant);
    ContainmentResult r = service.Contains(p, q, Mode::kWeak);
    ASSERT_EQ(r.outcome, Outcome::kDecided);
  }
  EXPECT_GT(Stat(&ctx, &EngineStats::cache_evictions), 0);
  // The bound keeps tracked bytes in check, visible through the budget.
  EXPECT_GT(ctx.budget().bytes_peak(), 0);
}

}  // namespace
}  // namespace tpc
