// Fault matrix for the query service: exhaustion, cancellation and failed
// allocations injected mid-batch must surface as structured
// `kResourceExhausted` results — never as flipped verdicts — and must never
// leave a partial verdict behind in the cache.  The recovery check is the
// sharp one: after `ResetBudget()` the SAME service object (same cache, same
// minimize memo, same probe book) re-decides the full batch correctly, so
// any entry absorbed from a faulted decision would be caught as a wrong or
// undecided warm answer.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "engine/engine.h"
#include "engine/fault_injection.h"
#include "reductions/hardness_families.h"
#include "service/query_service.h"

namespace tpc {
namespace {

struct Workload {
  std::vector<QueryService::BatchItem> items;
  std::vector<bool> expected;  // ground truth from the plain dispatcher
};

/// A small batch that exercises both verdicts, both modes, the coNP sweep
/// route and the duplicate-folding path.
Workload MakeWorkload(LabelPool* pool) {
  Workload w;
  ConpFamilyInstance inst = BuildConpFamily(3, pool);
  const LabelId a = pool->Intern("a");
  const LabelId b = pool->Intern("b");
  Tpq chain(a);  // a/b
  chain.AddChild(0, b, EdgeKind::kChild);
  Tpq deep(a);  // a//b
  deep.AddChild(0, b, EdgeKind::kDescendant);

  w.items.push_back({inst.p, inst.q_yes, Mode::kWeak});
  w.items.push_back({inst.p, inst.q_no, Mode::kWeak});
  w.items.push_back({chain, deep, Mode::kWeak});
  w.items.push_back({deep, chain, Mode::kWeak});
  w.items.push_back({chain, deep, Mode::kStrong});
  w.items.push_back({inst.p, inst.q_yes, Mode::kStrong});
  w.items.push_back({inst.p, inst.q_no, Mode::kWeak});  // duplicate of 1
  w.items.push_back({chain, chain, Mode::kStrong});

  EngineContext ref_ctx;
  for (const QueryService::BatchItem& item : w.items) {
    ContainmentResult r = Contains(item.p, item.q, item.mode, pool, &ref_ctx);
    EXPECT_EQ(r.outcome, Outcome::kDecided);
    w.expected.push_back(r.contained);
  }
  return w;
}

struct Probe {
  int64_t charges = 0;
  int64_t allocs = 0;
};

/// Runs the batch once under a never-firing counting plan to learn its total
/// charge/alloc volume, so fault points can be sampled across the whole run.
Probe ProbeBatch(const Workload& w, LabelPool* pool) {
  EngineConfig config;
  config.fault_plan.exhaust_at_charge = std::numeric_limits<int64_t>::max();
  EngineContext ctx(config);
  QueryService service(pool, &ctx);
  std::vector<ContainmentResult> results = service.ContainsBatch(w.items);
  for (const ContainmentResult& r : results) {
    EXPECT_EQ(r.outcome, Outcome::kDecided);
  }
  Probe probe;
  probe.charges = ctx.fault_injector()->charges_seen();
  probe.allocs = ctx.fault_injector()->allocs_seen();
  return probe;
}

/// Every point in [1, cap] plus seeded samples over the remaining range.
std::vector<int64_t> FaultPoints(int64_t total, int64_t cap, uint64_t seed) {
  std::vector<int64_t> points;
  for (int64_t n = 1; n <= total && n <= cap; ++n) points.push_back(n);
  if (total > cap) {
    for (int64_t i = 0; i < 10; ++i) {
      points.push_back(DeriveFaultPoint(seed, i, total));
    }
  }
  return points;
}

/// The shared matrix body.  Faulted pass: every decided verdict must match
/// the reference, every undecided one must carry `expected_reason`.
/// Recovery pass: same service, budget reset (the one-shot fault does not
/// re-arm) — everything must decide correctly, warm entries included.
void CheckFaultedBatch(const Workload& w, LabelPool* pool,
                       const FaultPlan& plan, int threads,
                       ExhaustionReason expected_reason) {
  EngineConfig config;
  config.fault_plan = plan;
  config.threads = threads;
  EngineContext ctx(config);
  QueryService service(pool, &ctx);

  std::vector<ContainmentResult> faulted = service.ContainsBatch(w.items);
  ASSERT_EQ(faulted.size(), w.items.size());
  for (size_t i = 0; i < faulted.size(); ++i) {
    if (faulted[i].outcome == Outcome::kDecided) {
      EXPECT_EQ(faulted[i].contained, w.expected[i])
          << "item " << i << " flipped its verdict under an injected fault";
    } else {
      EXPECT_EQ(faulted[i].outcome, Outcome::kResourceExhausted);
      EXPECT_EQ(faulted[i].reason, expected_reason) << "item " << i;
    }
  }

  ctx.ResetBudget();
  std::vector<ContainmentResult> recovered = service.ContainsBatch(w.items);
  ASSERT_EQ(recovered.size(), w.items.size());
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i].outcome, Outcome::kDecided)
        << "item " << i << " did not recover after ResetBudget";
    EXPECT_EQ(recovered[i].contained, w.expected[i])
        << "item " << i << " recovered to the wrong verdict — a faulted "
        << "decision leaked into the cache";
  }
}

TEST(ServiceFaultTest, ExhaustionAtEveryChargeNeverPoisonsTheCache) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  ASSERT_GT(probe.charges, 0);
  for (int64_t n : FaultPoints(probe.charges, 32, /*seed=*/0xBADCAB1E)) {
    FaultPlan plan;
    plan.exhaust_at_charge = n;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1,
                      ExhaustionReason::kSteps);
  }
}

TEST(ServiceFaultTest, CancellationMidBatchRecovers) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  for (int64_t n : FaultPoints(probe.charges, 16, /*seed=*/0x5EED5)) {
    FaultPlan plan;
    plan.cancel_at_charge = n;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1,
                      ExhaustionReason::kCancelled);
  }
}

TEST(ServiceFaultTest, FailedAllocationMidBatchRecovers) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  ASSERT_GT(probe.allocs, 0);
  for (int64_t k : FaultPoints(probe.allocs, 16, /*seed=*/0xA110C)) {
    FaultPlan plan;
    plan.fail_alloc_at = k;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1,
                      ExhaustionReason::kMemory);
  }
}

std::string SnapTempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/tpc_fault_" + tag + ".snap";
}

bool FileExists(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f != nullptr) std::fclose(f);
  return f != nullptr;
}

// Step faults and cancellations injected *during SaveSnapshot* must abort
// the save before any file exists — no partial snapshot, no stale temp file
// — and after ResetBudget the same service saves a file a fresh service can
// load.
TEST(ServiceFaultTest, FaultedSnapshotSaveNeverLeavesAFile) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  const std::string path = SnapTempPath("save");

  // Probe run: learn how many budget steps the batch and then the save
  // consume, so fault points can be pinned inside the save window.
  int64_t batch_charges = 0, save_charges = 0;
  {
    EngineConfig config;
    config.fault_plan.exhaust_at_charge = std::numeric_limits<int64_t>::max();
    EngineContext ctx(config);
    QueryService service(&pool, &ctx);
    service.ContainsBatch(w.items);
    batch_charges = ctx.fault_injector()->charges_seen();
    std::string error;
    ASSERT_TRUE(service.SaveSnapshot(path, &error)) << error;
    save_charges = ctx.fault_injector()->charges_seen() - batch_charges;
    std::remove(path.c_str());
  }
  ASSERT_GT(save_charges, 0);

  for (bool cancel : {false, true}) {
    for (int64_t k = 1; k <= save_charges; ++k) {
      FaultPlan plan;
      if (cancel) {
        plan.cancel_at_charge = batch_charges + k;
      } else {
        plan.exhaust_at_charge = batch_charges + k;
      }
      EngineConfig config;
      config.fault_plan = plan;
      EngineContext ctx(config);
      QueryService service(&pool, &ctx);
      std::vector<ContainmentResult> warmup = service.ContainsBatch(w.items);
      for (size_t i = 0; i < warmup.size(); ++i) {
        ASSERT_EQ(warmup[i].outcome, Outcome::kDecided) << i;
      }
      std::string error;
      EXPECT_FALSE(service.SaveSnapshot(path, &error))
          << "save survived a fault at step " << k;
      EXPECT_EQ(error.rfind("snapshot: ", 0), 0u) << error;
      EXPECT_FALSE(FileExists(path)) << "partial snapshot at step " << k;
      EXPECT_FALSE(FileExists(path + ".tmp")) << "temp leaked at step " << k;

      ctx.ResetBudget();
      error.clear();
      ASSERT_TRUE(service.SaveSnapshot(path, &error)) << error;
      EngineContext fresh_ctx;
      QueryService fresh(&pool, &fresh_ctx);
      ASSERT_TRUE(fresh.LoadSnapshot(path, &error)) << error;
      std::remove(path.c_str());
    }
  }
}

// Alloc faults during a save may refuse individual sections or entries; the
// contract is weaker but still sharp: either the save fails with no file at
// all, or it succeeds and the (possibly colder) file is fully loadable with
// unchanged verdicts.
TEST(ServiceFaultTest, AllocFaultedSnapshotSaveIsAllOrValid) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  const std::string path = SnapTempPath("savealloc");

  int64_t batch_allocs = 0, save_allocs = 0;
  {
    EngineConfig config;
    config.fault_plan.exhaust_at_charge = std::numeric_limits<int64_t>::max();
    EngineContext ctx(config);
    QueryService service(&pool, &ctx);
    service.ContainsBatch(w.items);
    batch_allocs = ctx.fault_injector()->allocs_seen();
    std::string error;
    ASSERT_TRUE(service.SaveSnapshot(path, &error)) << error;
    save_allocs = ctx.fault_injector()->allocs_seen() - batch_allocs;
    std::remove(path.c_str());
  }
  ASSERT_GT(save_allocs, 0);

  for (int64_t k = 1; k <= save_allocs; ++k) {
    EngineConfig config;
    config.fault_plan.fail_alloc_at = batch_allocs + k;
    EngineContext ctx(config);
    QueryService service(&pool, &ctx);
    std::vector<ContainmentResult> warmup = service.ContainsBatch(w.items);
    for (size_t i = 0; i < warmup.size(); ++i) {
      ASSERT_EQ(warmup[i].outcome, Outcome::kDecided) << i;
    }
    std::string error;
    const bool saved = service.SaveSnapshot(path, &error);
    EXPECT_FALSE(FileExists(path + ".tmp")) << "temp leaked at alloc " << k;
    if (!saved) {
      EXPECT_FALSE(FileExists(path)) << "failed save left a file, alloc " << k;
      continue;
    }
    // A colder-but-valid file: a fresh service must load it and keep every
    // verdict identical to the reference.
    EngineContext fresh_ctx;
    QueryService fresh(&pool, &fresh_ctx);
    ASSERT_TRUE(fresh.LoadSnapshot(path, &error)) << error << " alloc " << k;
    std::vector<ContainmentResult> warm = fresh.ContainsBatch(w.items);
    for (size_t i = 0; i < warm.size(); ++i) {
      ASSERT_EQ(warm[i].outcome, Outcome::kDecided) << i;
      EXPECT_EQ(warm[i].contained, w.expected[i])
          << "item " << i << " flipped after an alloc-faulted save";
    }
    std::remove(path.c_str());
  }
}

// Faults injected *during LoadSnapshot* must leave the service exactly as
// cold as a never-loaded one: the staged commit means no cache entry, no
// lattice node and no probe vector survives an aborted load.  Measured by
// comparing post-recovery cache hits against a genuinely cold baseline.
TEST(ServiceFaultTest, FaultedSnapshotLoadLeavesTheServiceCold) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  const std::string path = SnapTempPath("load");
  {
    EngineContext ctx;
    QueryService writer(&pool, &ctx);
    writer.ContainsBatch(w.items);
    std::string error;
    ASSERT_TRUE(writer.SaveSnapshot(path, &error)) << error;
  }

  // Baselines: the cold batch's cache-hit count, and a clean load's charge
  // volume plus its (strictly larger) warm hit count.
  int64_t cold_hits = 0;
  {
    EngineContext ctx;
    QueryService cold(&pool, &ctx);
    cold.ContainsBatch(w.items);
    cold_hits = ctx.stats().cache_hits.load(std::memory_order_relaxed);
  }
  int64_t load_charges = 0;
  {
    EngineConfig config;
    config.fault_plan.exhaust_at_charge = std::numeric_limits<int64_t>::max();
    EngineContext ctx(config);
    QueryService warm(&pool, &ctx);
    std::string error;
    ASSERT_TRUE(warm.LoadSnapshot(path, &error)) << error;
    load_charges = ctx.fault_injector()->charges_seen();
    warm.ContainsBatch(w.items);
    ASSERT_GT(ctx.stats().cache_hits.load(std::memory_order_relaxed),
              cold_hits)
        << "a clean warm start must out-hit the cold baseline";
  }
  ASSERT_GT(load_charges, 0);

  for (bool cancel : {false, true}) {
    for (int64_t k = 1; k <= load_charges; ++k) {
      FaultPlan plan;
      if (cancel) {
        plan.cancel_at_charge = k;
      } else {
        plan.exhaust_at_charge = k;
      }
      EngineConfig config;
      config.fault_plan = plan;
      EngineContext ctx(config);
      QueryService service(&pool, &ctx);
      std::string error;
      EXPECT_FALSE(service.LoadSnapshot(path, &error))
          << "load survived a fault at step " << k;
      EXPECT_EQ(error.rfind("snapshot: ", 0), 0u) << error;

      ctx.ResetBudget();
      std::vector<ContainmentResult> results = service.ContainsBatch(w.items);
      ASSERT_EQ(results.size(), w.items.size());
      for (size_t i = 0; i < results.size(); ++i) {
        ASSERT_EQ(results[i].outcome, Outcome::kDecided) << i;
        EXPECT_EQ(results[i].contained, w.expected[i])
            << "item " << i << " flipped after an aborted load";
      }
      EXPECT_EQ(ctx.stats().cache_hits.load(std::memory_order_relaxed),
                cold_hits)
          << "aborted load at step " << k << " left warm state behind";
    }
  }
  std::remove(path.c_str());
}

/// A stitch/borrow-heavy workload: one child-edge weakening chain whose
/// adjacent pairs seed contained edges, distant pairs stitch, reversals
/// refute and leave witnesses, and a shared-endpoint pair borrows them.
Workload MakeLatticeWorkload(LabelPool* pool) {
  Workload w;
  const LabelId a = pool->Intern("a");
  const LabelId b = pool->Intern("b");
  const LabelId c = pool->Intern("c");
  const LabelId d = pool->Intern("d");
  std::vector<Tpq> chain;
  const LabelId spine[] = {a, b, c, d};
  for (int len = 4; len >= 1; --len) {
    Tpq p(a);
    NodeId at = 0;
    for (int i = 1; i < len; ++i) {
      at = p.AddChild(at, spine[i], EdgeKind::kChild);
    }
    chain.push_back(std::move(p));
  }
  for (size_t i = 0; i + 1 < chain.size(); ++i) {
    w.items.push_back({chain[i], chain[i + 1], Mode::kWeak});
  }
  for (size_t i = 0; i < chain.size(); ++i) {
    for (size_t j = i + 2; j < chain.size(); ++j) {
      w.items.push_back({chain[i], chain[j], Mode::kWeak});
      w.items.push_back({chain[j], chain[i], Mode::kWeak});
    }
  }
  Tpq deep(a);  // a//b: refutations carry a nonempty witness vector
  deep.AddChild(0, b, EdgeKind::kDescendant);
  Tpq qc(c), qd(d);
  w.items.push_back({deep, qc, Mode::kWeak});
  w.items.push_back({deep, qd, Mode::kWeak});  // borrowable witness

  EngineContext ref_ctx;
  for (const QueryService::BatchItem& item : w.items) {
    ContainmentResult r = Contains(item.p, item.q, item.mode, pool, &ref_ctx);
    EXPECT_EQ(r.outcome, Outcome::kDecided);
    w.expected.push_back(r.contained);
  }
  return w;
}

// Faults landing inside the lattice layer itself — mid-stitch BFS, witness
// borrowing, replay validation — must degrade exactly like every other
// layer: structured exhaustion or the reference verdict, and clean recovery.
TEST(ServiceFaultTest, FaultsDuringStitchAndBorrowDegradeCleanly) {
  LabelPool pool;
  Workload w = MakeLatticeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  ASSERT_GT(probe.charges, 0);
  for (int64_t n : FaultPoints(probe.charges, 24, /*seed=*/0x5717C4)) {
    FaultPlan plan;
    plan.exhaust_at_charge = n;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1, ExhaustionReason::kSteps);
  }
  for (int64_t n : FaultPoints(probe.charges, 12, /*seed=*/0xB0440)) {
    FaultPlan plan;
    plan.cancel_at_charge = n;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1,
                      ExhaustionReason::kCancelled);
  }
}

TEST(ServiceFaultTest, ParallelBatchUnderFaultsRecovers) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  // With 2 worker threads the Nth charge lands on a nondeterministic item,
  // so this samples schedules rather than stages; the invariants checked
  // (no flipped verdict, correct reason, clean warm recovery) are
  // schedule-independent.
  for (int64_t i = 0; i < 6; ++i) {
    FaultPlan plan;
    plan.exhaust_at_charge = DeriveFaultPoint(0xF00D, i, probe.charges);
    CheckFaultedBatch(w, &pool, plan, /*threads=*/2,
                      ExhaustionReason::kSteps);
  }
  for (int64_t i = 0; i < 4; ++i) {
    FaultPlan plan;
    plan.cancel_at_charge = DeriveFaultPoint(0xCA4CE1, i, probe.charges);
    CheckFaultedBatch(w, &pool, plan, /*threads=*/2,
                      ExhaustionReason::kCancelled);
  }
}

}  // namespace
}  // namespace tpc
