// Fault matrix for the query service: exhaustion, cancellation and failed
// allocations injected mid-batch must surface as structured
// `kResourceExhausted` results — never as flipped verdicts — and must never
// leave a partial verdict behind in the cache.  The recovery check is the
// sharp one: after `ResetBudget()` the SAME service object (same cache, same
// minimize memo, same probe book) re-decides the full batch correctly, so
// any entry absorbed from a faulted decision would be caught as a wrong or
// undecided warm answer.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "engine/engine.h"
#include "engine/fault_injection.h"
#include "reductions/hardness_families.h"
#include "service/query_service.h"

namespace tpc {
namespace {

struct Workload {
  std::vector<QueryService::BatchItem> items;
  std::vector<bool> expected;  // ground truth from the plain dispatcher
};

/// A small batch that exercises both verdicts, both modes, the coNP sweep
/// route and the duplicate-folding path.
Workload MakeWorkload(LabelPool* pool) {
  Workload w;
  ConpFamilyInstance inst = BuildConpFamily(3, pool);
  const LabelId a = pool->Intern("a");
  const LabelId b = pool->Intern("b");
  Tpq chain(a);  // a/b
  chain.AddChild(0, b, EdgeKind::kChild);
  Tpq deep(a);  // a//b
  deep.AddChild(0, b, EdgeKind::kDescendant);

  w.items.push_back({inst.p, inst.q_yes, Mode::kWeak});
  w.items.push_back({inst.p, inst.q_no, Mode::kWeak});
  w.items.push_back({chain, deep, Mode::kWeak});
  w.items.push_back({deep, chain, Mode::kWeak});
  w.items.push_back({chain, deep, Mode::kStrong});
  w.items.push_back({inst.p, inst.q_yes, Mode::kStrong});
  w.items.push_back({inst.p, inst.q_no, Mode::kWeak});  // duplicate of 1
  w.items.push_back({chain, chain, Mode::kStrong});

  EngineContext ref_ctx;
  for (const QueryService::BatchItem& item : w.items) {
    ContainmentResult r = Contains(item.p, item.q, item.mode, pool, &ref_ctx);
    EXPECT_EQ(r.outcome, Outcome::kDecided);
    w.expected.push_back(r.contained);
  }
  return w;
}

struct Probe {
  int64_t charges = 0;
  int64_t allocs = 0;
};

/// Runs the batch once under a never-firing counting plan to learn its total
/// charge/alloc volume, so fault points can be sampled across the whole run.
Probe ProbeBatch(const Workload& w, LabelPool* pool) {
  EngineConfig config;
  config.fault_plan.exhaust_at_charge = std::numeric_limits<int64_t>::max();
  EngineContext ctx(config);
  QueryService service(pool, &ctx);
  std::vector<ContainmentResult> results = service.ContainsBatch(w.items);
  for (const ContainmentResult& r : results) {
    EXPECT_EQ(r.outcome, Outcome::kDecided);
  }
  Probe probe;
  probe.charges = ctx.fault_injector()->charges_seen();
  probe.allocs = ctx.fault_injector()->allocs_seen();
  return probe;
}

/// Every point in [1, cap] plus seeded samples over the remaining range.
std::vector<int64_t> FaultPoints(int64_t total, int64_t cap, uint64_t seed) {
  std::vector<int64_t> points;
  for (int64_t n = 1; n <= total && n <= cap; ++n) points.push_back(n);
  if (total > cap) {
    for (int64_t i = 0; i < 10; ++i) {
      points.push_back(DeriveFaultPoint(seed, i, total));
    }
  }
  return points;
}

/// The shared matrix body.  Faulted pass: every decided verdict must match
/// the reference, every undecided one must carry `expected_reason`.
/// Recovery pass: same service, budget reset (the one-shot fault does not
/// re-arm) — everything must decide correctly, warm entries included.
void CheckFaultedBatch(const Workload& w, LabelPool* pool,
                       const FaultPlan& plan, int threads,
                       ExhaustionReason expected_reason) {
  EngineConfig config;
  config.fault_plan = plan;
  config.threads = threads;
  EngineContext ctx(config);
  QueryService service(pool, &ctx);

  std::vector<ContainmentResult> faulted = service.ContainsBatch(w.items);
  ASSERT_EQ(faulted.size(), w.items.size());
  for (size_t i = 0; i < faulted.size(); ++i) {
    if (faulted[i].outcome == Outcome::kDecided) {
      EXPECT_EQ(faulted[i].contained, w.expected[i])
          << "item " << i << " flipped its verdict under an injected fault";
    } else {
      EXPECT_EQ(faulted[i].outcome, Outcome::kResourceExhausted);
      EXPECT_EQ(faulted[i].reason, expected_reason) << "item " << i;
    }
  }

  ctx.ResetBudget();
  std::vector<ContainmentResult> recovered = service.ContainsBatch(w.items);
  ASSERT_EQ(recovered.size(), w.items.size());
  for (size_t i = 0; i < recovered.size(); ++i) {
    ASSERT_EQ(recovered[i].outcome, Outcome::kDecided)
        << "item " << i << " did not recover after ResetBudget";
    EXPECT_EQ(recovered[i].contained, w.expected[i])
        << "item " << i << " recovered to the wrong verdict — a faulted "
        << "decision leaked into the cache";
  }
}

TEST(ServiceFaultTest, ExhaustionAtEveryChargeNeverPoisonsTheCache) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  ASSERT_GT(probe.charges, 0);
  for (int64_t n : FaultPoints(probe.charges, 32, /*seed=*/0xBADCAB1E)) {
    FaultPlan plan;
    plan.exhaust_at_charge = n;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1,
                      ExhaustionReason::kSteps);
  }
}

TEST(ServiceFaultTest, CancellationMidBatchRecovers) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  for (int64_t n : FaultPoints(probe.charges, 16, /*seed=*/0x5EED5)) {
    FaultPlan plan;
    plan.cancel_at_charge = n;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1,
                      ExhaustionReason::kCancelled);
  }
}

TEST(ServiceFaultTest, FailedAllocationMidBatchRecovers) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  ASSERT_GT(probe.allocs, 0);
  for (int64_t k : FaultPoints(probe.allocs, 16, /*seed=*/0xA110C)) {
    FaultPlan plan;
    plan.fail_alloc_at = k;
    CheckFaultedBatch(w, &pool, plan, /*threads=*/1,
                      ExhaustionReason::kMemory);
  }
}

TEST(ServiceFaultTest, ParallelBatchUnderFaultsRecovers) {
  LabelPool pool;
  Workload w = MakeWorkload(&pool);
  Probe probe = ProbeBatch(w, &pool);
  // With 2 worker threads the Nth charge lands on a nondeterministic item,
  // so this samples schedules rather than stages; the invariants checked
  // (no flipped verdict, correct reason, clean warm recovery) are
  // schedule-independent.
  for (int64_t i = 0; i < 6; ++i) {
    FaultPlan plan;
    plan.exhaust_at_charge = DeriveFaultPoint(0xF00D, i, probe.charges);
    CheckFaultedBatch(w, &pool, plan, /*threads=*/2,
                      ExhaustionReason::kSteps);
  }
  for (int64_t i = 0; i < 4; ++i) {
    FaultPlan plan;
    plan.cancel_at_charge = DeriveFaultPoint(0xCA4CE1, i, probe.charges);
    CheckFaultedBatch(w, &pool, plan, /*threads=*/2,
                      ExhaustionReason::kCancelled);
  }
}

}  // namespace
}  // namespace tpc
