// Property sweep: the postorder index exposed by `Tree::View()` against
// reference pointer traversals (FirstChild/NextSibling/Parent chains), on
// 1k random trees plus adversarial shapes — deep chains, wide stars, and
// DFS-built trees truncated mid-enumeration.

#include "tree/tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

#include "base/label.h"
#include "gen/random_instances.h"
#include "tree/tree_parser.h"

namespace tpc {
namespace {

/// Reference postorder via the sibling pointers.
void RefPostorder(const Tree& t, NodeId v, std::vector<NodeId>* out) {
  for (NodeId c = t.FirstChild(v); c != kNoNode; c = t.NextSibling(c)) {
    RefPostorder(t, c, out);
  }
  out->push_back(v);
}

int32_t RefSubtreeSize(const Tree& t, NodeId v) {
  int32_t n = 1;
  for (NodeId c = t.FirstChild(v); c != kNoNode; c = t.NextSibling(c)) {
    n += RefSubtreeSize(t, c);
  }
  return n;
}

bool RefAncestorOrSelf(const Tree& t, NodeId a, NodeId v) {
  for (NodeId u = v; u != kNoNode; u = t.Parent(u)) {
    if (u == a) return true;
  }
  return false;
}

/// Asserts every TreeView query agrees with the pointer traversals.
void CheckViewAgainstPointers(const Tree& t) {
  const TreeView view = t.View();
  ASSERT_EQ(view.size(), t.size());
  if (t.empty()) return;
  std::vector<NodeId> post;
  RefPostorder(t, 0, &post);
  ASSERT_EQ(static_cast<int32_t>(post.size()), t.size());
  for (int32_t i = 0; i < t.size(); ++i) {
    ASSERT_EQ(view.NodeAtPost(i), post[i]) << "position " << i;
    ASSERT_EQ(view.PostOf(post[i]), i);
    ASSERT_EQ(view.LabelAtPost(i), t.Label(post[i]));
    ASSERT_EQ(view.Label(post[i]), t.Label(post[i]));
    ASSERT_EQ(view.Parent(post[i]), t.Parent(post[i]));
    const int32_t size = RefSubtreeSize(t, post[i]);
    ASSERT_EQ(view.SubtreeSizeAtPost(i), size);
    ASSERT_EQ(view.SubtreeSize(post[i]), size);
    ASSERT_EQ(view.SpanBegin(i), i - size + 1);
    // Span-jump children, right-to-left, must be exactly Children reversed.
    std::vector<NodeId> span_children;
    for (int32_t c = view.LastChild(i); c >= view.SpanBegin(i);
         c = view.PrevSibling(c)) {
      span_children.push_back(view.NodeAtPost(c));
    }
    std::reverse(span_children.begin(), span_children.end());
    ASSERT_EQ(span_children, t.Children(post[i]));
  }
  // Ancestor queries: all pairs on small trees, a sample on larger ones.
  const int32_t n = t.size();
  const int32_t step = n <= 40 ? 1 : n / 37 + 1;
  for (NodeId a = 0; a < n; a += step) {
    for (NodeId v = 0; v < n; v += step) {
      ASSERT_EQ(view.IsAncestorOrSelf(a, v), RefAncestorOrSelf(t, a, v))
          << "a=" << a << " v=" << v;
      ASSERT_EQ(view.IsProperAncestor(a, v),
                a != v && RefAncestorOrSelf(t, a, v));
      ASSERT_EQ(t.IsProperAncestor(a, v),
                a != v && RefAncestorOrSelf(t, a, v));
    }
  }
}

TEST(TreeViewPropertyTest, RandomTrees) {
  LabelPool pool;
  std::mt19937 rng(20260809);
  RandomTreeOptions topts;
  topts.labels = MakeLabels(3, &pool);
  for (int trial = 0; trial < 1000; ++trial) {
    topts.size = 1 + trial % 40;
    topts.branch_bias = (trial % 10) / 10.0;
    Tree t = RandomTree(topts, &rng);
    CheckViewAgainstPointers(t);
    // A copied tree must serve an equally valid view of its own columns.
    if (trial % 97 == 0) {
      Tree copy = t;
      CheckViewAgainstPointers(copy);
    }
  }
}

TEST(TreeViewPropertyTest, DeepChain) {
  LabelPool pool;
  std::vector<LabelId> labels = MakeLabels(2, &pool);
  Tree chain = ChainTree(labels, 300);
  EXPECT_EQ(chain.depth(), 299);
  EXPECT_TRUE(chain.IsDfsOrdered());
  CheckViewAgainstPointers(chain);
  // In a chain, postorder is the exact reverse of the id order.
  TreeView view = chain.View();
  for (NodeId v = 0; v < chain.size(); ++v) {
    EXPECT_EQ(view.PostOf(v), chain.size() - 1 - v);
  }
}

TEST(TreeViewPropertyTest, WideStar) {
  LabelPool pool;
  std::vector<LabelId> labels = MakeLabels(2, &pool);
  Tree star = StarTree(labels, 300);
  EXPECT_EQ(star.depth(), 1);
  EXPECT_TRUE(star.IsDfsOrdered());
  CheckViewAgainstPointers(star);
  // All 299 leaves precede the root, in sibling order.
  TreeView view = star.View();
  EXPECT_EQ(view.PostOf(0), star.size() - 1);
  for (NodeId v = 1; v < star.size(); ++v) {
    EXPECT_EQ(view.PostOf(v), v - 1);
  }
}

/// Grows a DFS-ordered random tree below `parent` (children contiguous after
/// their parent — the TruncateTo precondition).
void GrowDfs(Tree* t, NodeId parent, int32_t* remaining, std::mt19937* rng,
             const std::vector<LabelId>& labels) {
  std::uniform_int_distribution<int> fanout(0, 3);
  std::uniform_int_distribution<size_t> pick(0, labels.size() - 1);
  int k = fanout(*rng);
  for (int i = 0; i < k && *remaining > 0; ++i) {
    --*remaining;
    NodeId c = t->AddChild(parent, labels[pick(*rng)]);
    GrowDfs(t, c, remaining, rng, labels);
  }
}

TEST(TreeViewPropertyTest, TruncatedTrees) {
  LabelPool pool;
  std::vector<LabelId> labels = MakeLabels(3, &pool);
  std::mt19937 rng(777);
  for (int trial = 0; trial < 200; ++trial) {
    Tree t(labels[0]);
    int32_t remaining = 5 + trial % 30;
    GrowDfs(&t, 0, &remaining, &rng, labels);
    ASSERT_TRUE(t.IsDfsOrdered());
    CheckViewAgainstPointers(t);
    std::uniform_int_distribution<int32_t> cut(1, t.size());
    t.TruncateTo(cut(rng));
    ASSERT_TRUE(t.IsDfsOrdered());
    CheckViewAgainstPointers(t);
    // Regrow after the cut: the view must track the new suffix.
    int32_t more = 1 + trial % 5;
    GrowDfs(&t, t.size() - 1, &more, &rng, labels);
    CheckViewAgainstPointers(t);
  }
}

TEST(TreeViewPropertyTest, ClearResetsView) {
  LabelPool pool;
  Tree t = MustParseTree("a(b,c)", &pool);
  EXPECT_EQ(t.View().size(), 3);
  t.Clear();
  EXPECT_EQ(t.View().size(), 0);
  t.AddRoot(pool.Intern("d"));
  EXPECT_EQ(t.View().size(), 1);
  EXPECT_EQ(t.View().PostOf(0), 0);
}

TEST(TreeViewPropertyTest, SetLabelInvalidatesLabelColumn) {
  LabelPool pool;
  Tree t = MustParseTree("a(b,c)", &pool);
  TreeView before = t.View();
  ASSERT_EQ(before.LabelAtPost(t.size() - 1), pool.Intern("a"));
  t.SetLabel(0, pool.Intern("z"));
  EXPECT_EQ(t.View().LabelAtPost(t.size() - 1), pool.Intern("z"));
}

}  // namespace
}  // namespace tpc
