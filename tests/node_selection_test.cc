#include "match/node_selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>

#include "base/label.h"
#include "contain/containment.h"
#include "gen/random_instances.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"
#include "tree/tree_parser.h"

namespace tpc {
namespace {

class NodeSelectionTest : public ::testing::Test {
 protected:
  LabelPool pool_;
};

TEST_F(NodeSelectionTest, SelectsAllImages) {
  Tree t = MustParseTree("a(b,a(b),c(a(b)))", &pool_);
  Tpq q = MustParseTpq("a/b", &pool_);
  // Output node = the b (node 1 of q); its images: every b whose parent is a.
  std::vector<NodeId> selected = SelectNodes(q, 1, t, /*strong=*/false);
  std::vector<NodeId> expected;
  for (NodeId v = 0; v < t.size(); ++v) {
    if (t.Label(v) == pool_.Find("b") && v != 0 &&
        t.Label(t.Parent(v)) == pool_.Find("a")) {
      expected.push_back(v);
    }
  }
  EXPECT_EQ(selected, expected);
  EXPECT_EQ(selected.size(), 3u);
}

TEST_F(NodeSelectionTest, StrongAnchorsRoot) {
  Tree t = MustParseTree("a(b,a(b))", &pool_);
  Tpq q = MustParseTpq("a/b", &pool_);
  std::vector<NodeId> weak = SelectNodes(q, 1, t, false);
  std::vector<NodeId> strong = SelectNodes(q, 1, t, true);
  EXPECT_EQ(weak.size(), 2u);
  ASSERT_EQ(strong.size(), 1u);
  EXPECT_EQ(t.Parent(strong[0]), 0);
}

TEST_F(NodeSelectionTest, DescendantEdgeSelection) {
  Tree t = MustParseTree("a(x(c),c)", &pool_);
  Tpq q = MustParseTpq("a//c", &pool_);
  std::vector<NodeId> selected = SelectNodes(q, 1, t, true);
  EXPECT_EQ(selected.size(), 2u);  // both c nodes are proper descendants
}

TEST_F(NodeSelectionTest, BranchConstrainsSelection) {
  // Select the c-child of an a that also has a b-child.
  Tree t = MustParseTree("r(a(b,c),a(c))", &pool_);
  Tpq q = MustParseTpq("a[b]/c", &pool_);
  std::vector<NodeId> kids = q.Children(0);
  NodeId c_node = kids[1];
  std::vector<NodeId> selected = SelectNodes(q, c_node, t, false);
  ASSERT_EQ(selected.size(), 1u);
  // The selected c is the one inside the first a (which has b).
  EXPECT_EQ(t.Label(selected[0]), pool_.Find("c"));
  NodeId a = t.Parent(selected[0]);
  bool has_b = false;
  for (NodeId ch = t.FirstChild(a); ch != kNoNode; ch = t.NextSibling(ch)) {
    has_b |= t.Label(ch) == pool_.Find("b");
  }
  EXPECT_TRUE(has_b);
}

TEST_F(NodeSelectionTest, EmptySelectionWhenNoMatch) {
  Tree t = MustParseTree("a(b)", &pool_);
  Tpq q = MustParseTpq("a/c", &pool_);
  EXPECT_TRUE(SelectNodes(q, 1, t, false).empty());
}

TEST_F(NodeSelectionTest, AgreesWithBruteForceOnRandomInstances) {
  std::mt19937 rng(1234);
  std::vector<LabelId> labels = MakeLabels(2, &pool_);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTpqOptions qopts;
    qopts.labels = labels;
    qopts.fragment = fragments::kTpqFull;
    qopts.size = 2 + trial % 4;
    Tpq q = RandomTpq(qopts, &rng);
    RandomTreeOptions topts;
    topts.labels = labels;
    topts.size = 3 + trial % 8;
    Tree t = RandomTree(topts, &rng);
    std::uniform_int_distribution<NodeId> pick(0, q.size() - 1);
    NodeId output = pick(rng);
    std::vector<NodeId> selected = SelectNodes(q, output, t, false);
    // Honest brute force: enumerate all assignments pattern node -> tree
    // node and keep those that are weak embeddings; instance sizes keep
    // |t|^|q| small.  (A marker-based oracle would be unsound here: the
    // marker node can also satisfy wildcard siblings of the output.)
    std::vector<NodeId> map(q.size(), kNoNode);
    std::vector<bool> hit(t.size(), false);
    auto enumerate = [&](auto&& self, NodeId v) -> void {
      if (v == q.size()) {
        hit[map[output]] = true;
        return;
      }
      for (NodeId x = 0; x < t.size(); ++x) {
        if (!q.IsWildcard(v) && q.Label(v) != t.Label(x)) continue;
        if (v != 0) {
          NodeId px = map[q.Parent(v)];
          if (q.Edge(v) == EdgeKind::kChild) {
            if (t.Parent(x) != px) continue;
          } else {
            if (!t.IsProperAncestor(px, x)) continue;
          }
        }
        map[v] = x;
        self(self, v + 1);
      }
    };
    enumerate(enumerate, 0);
    for (NodeId x = 0; x < t.size(); ++x) {
      bool got = std::binary_search(selected.begin(), selected.end(), x);
      EXPECT_EQ(got, hit[x])
          << q.ToString(pool_) << " output " << output << " at node " << x
          << " of " << t.ToString(pool_);
    }
  }
}

TEST_F(NodeSelectionTest, MarkedContainmentReflectsSelectionContainment) {
  // Proposition 1 of [34]: unary containment via markers.  q1 = a/b with
  // output b is contained in q2 = a//b with output b.
  LabelId marker = pool_.Fresh("_m");
  Tpq q1 = MarkOutputNode(MustParseTpq("a/b", &pool_), 1, marker);
  Tpq q2 = MarkOutputNode(MustParseTpq("a//b", &pool_), 1, marker);
  EXPECT_TRUE(Contains(q1, q2, Mode::kWeak, &pool_).contained);
  EXPECT_FALSE(Contains(q2, q1, Mode::kWeak, &pool_).contained);
}

}  // namespace
}  // namespace tpc
