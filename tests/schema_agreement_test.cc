// Randomized agreement suite for the schema engine's exploration variants.
//
// The antichain-pruned engine, the unpruned engine, and the parallel
// (round-based, multi-threaded) engine are three routes through the same
// reachable-configuration fixpoint; on every decidable instance they must
// return the same answer for all three decision problems, and any witness
// they produce must actually certify it.  Witness *trees* may legitimately
// differ between variants (different exploration orders find different
// goals), so we check witness validity, not equality.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "base/label.h"
#include "dtd/dtd.h"
#include "engine/engine.h"
#include "gen/random_instances.h"
#include "match/embedding.h"
#include "pattern/tpq.h"
#include "schema/schema_engine.h"

namespace tpc {
namespace {

struct Variant {
  const char* name;
  int threads;
  bool antichain;
};

constexpr Variant kVariants[] = {
    {"seq+antichain", 1, true},
    {"seq+unpruned", 1, false},
    {"par2+antichain", 2, true},
    {"par4+antichain", 4, true},
    {"par4+unpruned", 4, false},
};

SchemaDecision RunVariant(const Variant& v, int which, const Tpq& p, const Tpq& q,
                   Mode mode, const Dtd& d) {
  EngineConfig config;
  config.threads = v.threads;
  EngineContext ctx(config);
  SchemaEngineOptions options;
  options.antichain = v.antichain;
  switch (which) {
    case 0:
      return SatisfiableWithDtd(p, mode, d, &ctx, EngineLimits{}, options);
    case 1:
      return ValidWithDtd(q, mode, d, &ctx, EngineLimits{}, options);
    default:
      return ContainedWithDtd(p, q, mode, d, &ctx, EngineLimits{}, options);
  }
}

bool Matches(const Tpq& p, const Tree& t, Mode mode) {
  return mode == Mode::kStrong ? MatchesStrong(p, t) : MatchesWeak(p, t);
}

/// A witness must certify the decision, whichever variant found it.
void CheckWitness(int which, const SchemaDecision& r, const Tpq& p,
                  const Tpq& q, Mode mode, const Dtd& d) {
  if (!r.witness.has_value()) return;
  EXPECT_TRUE(d.Satisfies(*r.witness));
  switch (which) {
    case 0:  // satisfiability: a tree of L(p) ∩ L(d)
      EXPECT_TRUE(r.yes);
      EXPECT_TRUE(Matches(p, *r.witness, mode));
      break;
    case 1:  // validity: a counterexample in L(d) \ L(q)
      EXPECT_FALSE(r.yes);
      EXPECT_FALSE(Matches(q, *r.witness, mode));
      break;
    default:  // containment: a counterexample in L(p) ∩ L(d) \ L(q)
      EXPECT_FALSE(r.yes);
      EXPECT_TRUE(Matches(p, *r.witness, mode));
      EXPECT_FALSE(Matches(q, *r.witness, mode));
      break;
  }
}

TEST(SchemaAgreementTest, VariantsAgreeOn300RandomInstances) {
  LabelPool pool;
  std::mt19937 rng(20260805);
  int instances = 0;
  int yes_count[3] = {0, 0, 0};
  int no_count[3] = {0, 0, 0};
  while (instances < 300) {
    std::vector<LabelId> labels = MakeLabels(2 + instances % 3, &pool);
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions topts;
    topts.labels = labels;
    topts.fragment = fragments::kTpqFull;
    topts.size = 2 + instances % 4;
    Tpq p = RandomTpq(topts, &rng);
    Tpq q = RandomTpq(topts, &rng);
    Mode mode = instances % 2 ? Mode::kStrong : Mode::kWeak;
    ++instances;
    for (int which = 0; which < 3; ++which) {
      SchemaDecision baseline = RunVariant(kVariants[0], which, p, q, mode, d);
      ASSERT_TRUE(baseline.decided)
          << "instance " << instances << " problem " << which;
      (baseline.yes ? yes_count : no_count)[which]++;
      CheckWitness(which, baseline, p, q, mode, d);
      for (size_t v = 1; v < std::size(kVariants); ++v) {
        SchemaDecision r = RunVariant(kVariants[v], which, p, q, mode, d);
        ASSERT_TRUE(r.decided)
            << kVariants[v].name << " instance " << instances;
        EXPECT_EQ(baseline.yes, r.yes)
            << kVariants[v].name << " disagrees on problem " << which
            << ": " << p.ToString(pool) << " / " << q.ToString(pool)
            << (mode == Mode::kStrong ? " strong" : " weak") << " with\n"
            << d.ToString(pool);
        EXPECT_EQ(baseline.witness.has_value(), r.witness.has_value())
            << kVariants[v].name << " witness presence differs on problem "
            << which;
        CheckWitness(which, r, p, q, mode, d);
      }
    }
  }
  // The family must exercise both answers of every problem, or agreement
  // is vacuous.
  for (int which = 0; which < 3; ++which) {
    EXPECT_GT(yes_count[which], 10) << "problem " << which;
    EXPECT_GT(no_count[which], 10) << "problem " << which;
  }
}

TEST(SchemaAgreementTest, CapsNeverFlipAnswersAcrossVariants) {
  // Under a tight configuration cap the engine may come back undecided, but
  // whenever a variant *does* decide, it must agree with the uncapped run.
  LabelPool pool;
  std::mt19937 rng(515151);
  std::vector<LabelId> labels = MakeLabels(3, &pool);
  for (int trial = 0; trial < 30; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions topts;
    topts.labels = labels;
    topts.fragment = fragments::kTpqFull;
    topts.size = 3;
    Tpq p = RandomTpq(topts, &rng);
    Tpq q = RandomTpq(topts, &rng);
    SchemaDecision full = RunVariant(kVariants[0], 2, p, q, Mode::kWeak, d);
    ASSERT_TRUE(full.decided);
    EngineLimits tight;
    tight.max_configurations = 4;
    for (const Variant& v : kVariants) {
      EngineConfig config;
      config.threads = v.threads;
      EngineContext ctx(config);
      SchemaEngineOptions options;
      options.antichain = v.antichain;
      SchemaDecision capped =
          ContainedWithDtd(p, q, Mode::kWeak, d, &ctx, tight, options);
      if (capped.decided) {
        EXPECT_EQ(full.yes, capped.yes) << v.name;
      } else {
        EXPECT_EQ(capped.outcome, Outcome::kResourceExhausted) << v.name;
      }
    }
  }
}

}  // namespace
}  // namespace tpc
