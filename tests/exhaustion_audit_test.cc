// The exhaustion-masking audit (satellite of the failure-model work): a
// budget that stops a procedure early must never *mask* as a decision.  For
// every decision route we compute the ground truth with an unlimited
// context, then sweep tight step and memory limits and assert each run
// either reports kResourceExhausted or decides with the correct boolean —
// never kDecided with a flipped answer.
//
// The sweep covers step_limit = 1..64 on fixed adversarial-ish instances
// plus a randomized pass over generated instances, and a memory sweep over
// limits from 1 byte up past the routes' real peaks.

#include <gtest/gtest.h>

#include <functional>
#include <random>
#include <utility>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "dtd/dtd.h"
#include "engine/engine.h"
#include "gen/random_instances.h"
#include "graphdb/graph.h"
#include "graphdb/graph_dtd.h"
#include "graphdb/graph_match.h"
#include "pattern/tpq_parser.h"
#include "schema/nta_satisfiability.h"
#include "schema/schema_engine.h"

namespace tpc {
namespace {

/// One instance bound to a route, re-runnable under any context.
struct AuditCase {
  const char* name;
  std::function<std::pair<bool, bool>(EngineContext*)> run;  // decided, answer
};

std::vector<AuditCase> FixedCases() {
  std::vector<AuditCase> cases;
  // Schema-free containment: one case per dispatcher algorithm, driven by
  // the fragment shape of the operands (see ContainmentAlgorithm).
  struct ContainCase {
    const char* name;
    const char* p;
    const char* q;
    bool force_canonical;
  };
  const ContainCase contain_cases[] = {
      {"homomorphism", "a//b//c", "a//c//b", false},
      {"minimal-canonical", "a/b[c]/d", "a//*//d", false},
      {"single-canonical", "a/b/c[d]", "a/*/c", false},
      {"path-in-tpq", "a//b//c", "a//*[b]//c", false},
      {"child-free-in-tpq", "a[//b]//d", "a//*[b]//d", false},
      {"canonical-enumeration", "a//b[c]//d", "a//*[c]//d", true},
  };
  for (const ContainCase& c : contain_cases) {
    cases.push_back({c.name, [c](EngineContext* ctx) {
                       LabelPool pool;
                       Tpq p = MustParseTpq(c.p, &pool);
                       Tpq q = MustParseTpq(c.q, &pool);
                       ContainmentOptions options;
                       options.force_canonical = c.force_canonical;
                       ContainmentResult r =
                           Contains(p, q, Mode::kWeak, &pool, ctx, options);
                       return std::make_pair(r.outcome == Outcome::kDecided,
                                             r.contained);
                     }});
  }
  for (bool antichain : {true, false}) {
    cases.push_back(
        {antichain ? "schema-antichain" : "schema-full",
         [antichain](EngineContext* ctx) {
           LabelPool pool;
           Dtd d = MustParseDtd(
               "root: r; r -> a z; z -> z z | w | a; w -> w | b; "
               "b -> eps; a -> y1; y1 -> y2; y2 -> b;",
               &pool);
           Tpq q = MustParseTpq("r//a/*/*/b", &pool);
           SchemaEngineOptions options;
           options.antichain = antichain;
           SchemaDecision r =
               ValidWithDtd(q, Mode::kWeak, d, ctx, EngineLimits{}, options);
           return std::make_pair(r.decided, r.yes);
         }});
  }
  cases.push_back({"schema-contain", [](EngineContext* ctx) {
                     LabelPool pool;
                     Dtd d = MustParseDtd(
                         "root: a; a -> b c?; b -> eps; c -> eps;", &pool);
                     Tpq p = MustParseTpq("a//c", &pool);
                     Tpq q = MustParseTpq("a/b", &pool);
                     SchemaDecision r =
                         ContainedWithDtd(p, q, Mode::kWeak, d, ctx);
                     return std::make_pair(r.decided, r.yes);
                   }});
  cases.push_back({"conp-route", [](EngineContext* ctx) {
                     LabelPool pool;
                     Dtd d = MustParseDtd(
                         "root: a; a -> b c?; b -> eps; c -> eps;", &pool);
                     Tpq p = MustParseTpq("a//c", &pool);
                     Tpq q = MustParseTpq("a/b", &pool);
                     SchemaDecision r = ContainedViaConpRoute(
                         p, q, Mode::kWeak, d, &pool, ctx);
                     return std::make_pair(r.decided, r.yes);
                   }});
  cases.push_back({"graph-match", [](EngineContext* ctx) {
                     LabelPool pool;
                     Graph g;
                     NodeId n0 = g.AddNode(pool.Intern("a"));
                     NodeId n1 = g.AddNode(pool.Intern("b"));
                     NodeId n2 = g.AddNode(pool.Intern("c"));
                     g.AddEdge(n0, n1);
                     g.AddEdge(n1, n2);
                     g.AddEdge(n2, n1);
                     g.SetRoot(n0);
                     Tpq q = MustParseTpq("a//c//b//c", &pool);
                     GraphMatchResult r = MatchesWeakGraph(q, g, ctx);
                     return std::make_pair(r.outcome == Outcome::kDecided,
                                           r.matched);
                   }});
  cases.push_back({"graph-dtd", [](EngineContext* ctx) {
                     LabelPool pool;
                     Graph g;
                     NodeId n0 = g.AddNode(pool.Intern("a"));
                     NodeId n1 = g.AddNode(pool.Intern("b"));
                     NodeId n2 = g.AddNode(pool.Intern("c"));
                     g.AddEdge(n0, n1);
                     g.AddEdge(n1, n2);
                     g.AddEdge(n2, n1);
                     g.SetRoot(n0);
                     Dtd d = MustParseDtd("root: a; a -> b; b -> c; c -> b;",
                                          &pool);
                     GraphMatchResult r = GraphSatisfiesDtdNodesOnly(g, d, ctx);
                     return std::make_pair(r.outcome == Outcome::kDecided,
                                           r.matched);
                   }});
  return cases;
}

TEST(ExhaustionAuditTest, TightStepLimitsNeverFlipAnswers) {
  for (const AuditCase& c : FixedCases()) {
    EngineContext unlimited;
    auto [decided, truth] = c.run(&unlimited);
    ASSERT_TRUE(decided) << c.name << " did not decide unlimited";
    int undecided_runs = 0;
    for (int64_t steps = 1; steps <= 64; ++steps) {
      EngineConfig config;
      config.step_limit = steps;
      EngineContext ctx(config);
      auto [limited_decided, answer] = c.run(&ctx);
      if (limited_decided) {
        EXPECT_EQ(answer, truth)
            << c.name << " masked exhaustion at step_limit=" << steps;
      } else {
        ++undecided_runs;
      }
    }
    // The tightest limits must actually bite (a route that "decides"
    // everything at step_limit=1 is not charging its budget).
    EXPECT_GT(undecided_runs, 0) << c.name << " never reported exhaustion";
  }
}

TEST(ExhaustionAuditTest, TightMemoryLimitsNeverFlipAnswers) {
  for (const AuditCase& c : FixedCases()) {
    EngineContext unlimited;
    auto [decided, truth] = c.run(&unlimited);
    ASSERT_TRUE(decided) << c.name;
    for (int64_t limit : {int64_t{1}, int64_t{64}, int64_t{512},
                          int64_t{4096}, int64_t{1} << 16, int64_t{1} << 24}) {
      EngineConfig config;
      config.memory_limit = limit;
      EngineContext ctx(config);
      auto [limited_decided, answer] = c.run(&ctx);
      if (limited_decided) {
        EXPECT_EQ(answer, truth)
            << c.name << " masked exhaustion at memory_limit=" << limit;
      }
    }
  }
}

TEST(ExhaustionAuditTest, RandomizedInstancesNeverFlipUnderStepLimits) {
  LabelPool pool;
  std::mt19937 rng(1234);
  std::vector<LabelId> labels = MakeLabels(3, &pool);
  int undecided_runs = 0;
  for (int trial = 0; trial < 20; ++trial) {
    RandomTpqOptions opts;
    opts.labels = labels;
    opts.fragment = fragments::kTpqFull;
    opts.size = 3 + trial % 4;
    Tpq p = RandomTpq(opts, &rng);
    Tpq q = RandomTpq(opts, &rng);
    EngineContext unlimited;
    ContainmentResult truth = Contains(p, q, Mode::kWeak, &pool, &unlimited);
    ASSERT_EQ(truth.outcome, Outcome::kDecided);
    for (int64_t steps : {1, 2, 3, 5, 8, 13, 21, 34, 55}) {
      EngineConfig config;
      config.step_limit = steps;
      EngineContext ctx(config);
      ContainmentResult r = Contains(p, q, Mode::kWeak, &pool, &ctx);
      if (r.outcome == Outcome::kDecided) {
        EXPECT_EQ(r.contained, truth.contained)
            << p.ToString(pool) << " vs " << q.ToString(pool)
            << " at step_limit=" << steps;
      } else {
        ++undecided_runs;
        EXPECT_NE(r.reason, ExhaustionReason::kNone);
      }
    }
  }
  EXPECT_GT(undecided_runs, 0);
}

TEST(ExhaustionAuditTest, UndecidedRunsCarryAReason) {
  // Exhausted results must name the tripped resource.
  for (const AuditCase& c : FixedCases()) {
    EngineConfig config;
    config.step_limit = 1;
    EngineContext ctx(config);
    auto [decided, answer] = c.run(&ctx);
    (void)answer;
    if (!decided) {
      EXPECT_NE(ctx.budget().reason(), ExhaustionReason::kNone) << c.name;
    }
  }
}

}  // namespace
}  // namespace tpc
