// The engine layer: budgets (steps + deadline), instrumentation counters,
// the thread pool, and resource-exhaustion outcomes end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "engine/budget.h"
#include "engine/engine.h"
#include "engine/thread_pool.h"
#include "graphdb/graph.h"
#include "graphdb/graph_match.h"
#include "pattern/tpq_parser.h"
#include "reductions/hardness_families.h"
#include "schema/schema_engine.h"

namespace tpc {
namespace {

// -------------------------------------------------------------- Budget

TEST(BudgetTest, UnlimitedByDefault) {
  Budget b;
  EXPECT_FALSE(b.limited());
  EXPECT_TRUE(b.Charge(1'000'000));
  EXPECT_FALSE(b.Exhausted());
}

TEST(BudgetTest, StepLimitTripsAndSticks) {
  Budget b;
  b.Arm(/*step_limit=*/100, /*deadline_ms=*/0);
  EXPECT_TRUE(b.limited());
  EXPECT_TRUE(b.Charge(50));
  EXPECT_FALSE(b.Charge(100));  // 150 > 100
  EXPECT_TRUE(b.Exhausted());
  EXPECT_FALSE(b.Charge(1));  // sticky
}

TEST(BudgetTest, DeadlineTrips) {
  Budget b;
  b.Arm(/*step_limit=*/0, /*deadline_ms=*/1);
  // Spin until the deadline check (every 256 steps) fires.
  bool tripped = false;
  for (int i = 0; i < 1'000'000 && !tripped; ++i) {
    tripped = !b.Charge(256);
  }
  EXPECT_TRUE(tripped);
  EXPECT_TRUE(b.Exhausted());
}

// ---------------------------------------------------------- ThreadPool

TEST(ThreadPoolTest, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(1000, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ReusableAcrossJobs) {
  ThreadPool pool(3);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int64_t> sum{0};
    pool.ParallelFor(100, [&](int64_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 100 * 99 / 2);
  }
}

TEST(ThreadPoolTest, BackToBackTinyJobsNeverLoseOrDuplicateIndices) {
  // Regression test for the stale-generation race: with tiny jobs the caller
  // often drains every index before any worker wakes, returns, and
  // immediately publishes the next job — a late worker must neither invoke
  // the previous (destroyed) function nor steal indices from the new job.
  ThreadPool pool(4);
  for (int round = 0; round < 2000; ++round) {
    const int64_t n = 1 + round % 4;
    std::vector<std::atomic<int>> hits(static_cast<size_t>(n));
    pool.ParallelFor(n, [&](int64_t i) {
      hits[static_cast<size_t>(i)].fetch_add(1, std::memory_order_relaxed);
    });
    for (int64_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[static_cast<size_t>(i)].load(), 1)
          << "round " << round << " index " << i;
    }
  }
}

TEST(ThreadPoolTest, SingleThreadRunsInline) {
  ThreadPool pool(1);
  std::atomic<int> count{0};
  pool.ParallelFor(10, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 10);
}

// ------------------------------------------------------- EngineContext

TEST(EngineContextTest, StatsJsonHasCounterKeys) {
  EngineContext ctx;
  ctx.stats().canonical_trees_enumerated.store(7);
  std::string json = ctx.StatsJson();
  EXPECT_NE(json.find("\"canonical_trees_enumerated\": 7"), std::string::npos)
      << json;
  EXPECT_NE(json.find("\"embeddings_attempted\""), std::string::npos);
  EXPECT_NE(json.find("\"schema_configurations\""), std::string::npos);
  EXPECT_NE(json.find("\"dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"canonical_enumeration\""), std::string::npos);
}

TEST(EngineContextTest, DeadlineStopsAdversarialSweep) {
  // BuildConpFamily(12) has 12 descendant edges: the aggressive sweep must
  // visit 5^12 canonical models to certify containment — far beyond a 50ms
  // budget.  The engine must return kResourceExhausted instead of hanging,
  // with the stats showing the partial sweep.
  LabelPool pool;
  ConpFamilyInstance inst = BuildConpFamily(12, &pool);
  EngineConfig config;
  config.deadline_ms = 50;
  EngineContext ctx(config);
  ContainmentOptions aggressive;
  aggressive.bound = ContainmentOptions::Bound::kAggressive;
  ContainmentResult r =
      Contains(inst.p, inst.q_yes, Mode::kWeak, &pool, &ctx, aggressive);
  EXPECT_EQ(r.outcome, Outcome::kResourceExhausted);
  EXPECT_GT(ctx.stats().canonical_trees_enumerated.load(), 0);
  std::string json = ctx.StatsJson();
  EXPECT_NE(json.find("\"canonical_trees_enumerated\""), std::string::npos);
}

TEST(EngineContextTest, StepLimitStopsSweep) {
  LabelPool pool;
  ConpFamilyInstance inst = BuildConpFamily(10, &pool);
  EngineConfig config;
  config.step_limit = 10'000;
  EngineContext ctx(config);
  ContainmentOptions aggressive;
  aggressive.bound = ContainmentOptions::Bound::kAggressive;
  ContainmentResult r =
      Contains(inst.p, inst.q_yes, Mode::kWeak, &pool, &ctx, aggressive);
  EXPECT_EQ(r.outcome, Outcome::kResourceExhausted);
  EXPECT_LE(ctx.budget().steps_used(), 10'000 + 10'000);  // small overshoot
}

TEST(EngineContextTest, ResetBudgetAllowsReuse) {
  LabelPool pool;
  ConpFamilyInstance inst = BuildConpFamily(10, &pool);
  Tpq p = MustParseTpq("a/b", &pool);
  Tpq q = MustParseTpq("a//b", &pool);
  EngineConfig config;
  config.step_limit = 10'000;
  EngineContext ctx(config);
  ContainmentOptions aggressive;
  aggressive.bound = ContainmentOptions::Bound::kAggressive;
  // Exhaust the allowance on the adversarial instance...
  ContainmentResult r1 =
      Contains(inst.p, inst.q_yes, Mode::kWeak, &pool, &ctx, aggressive);
  EXPECT_EQ(r1.outcome, Outcome::kResourceExhausted);
  // ...then a re-armed context decides a small instance within the same
  // per-decision limit.
  ctx.ResetBudget();
  ContainmentResult r2 = Contains(p, q, Mode::kWeak, &pool, &ctx);
  EXPECT_EQ(r2.outcome, Outcome::kDecided);
  EXPECT_TRUE(r2.contained);
}

TEST(EngineContextTest, WrappersMatchExplicitDefaultContext) {
  LabelPool pool;
  Tpq p = MustParseTpq("a[b][//c]", &pool);
  Tpq q = MustParseTpq("a[*][//c]", &pool);
  ContainmentResult legacy = Contains(p, q, Mode::kWeak, &pool);
  ContainmentResult with_ctx =
      Contains(p, q, Mode::kWeak, &pool, &EngineContext::Default());
  EXPECT_EQ(legacy.contained, with_ctx.contained);
  EXPECT_EQ(legacy.algorithm, with_ctx.algorithm);
}

// ------------------------------------------- exhaustion across the layers

TEST(EngineContextTest, SchemaEngineReportsExhaustion) {
  LabelPool pool;
  Tpq q = MustParseTpq("r//a/*/*/*/b", &pool);
  Dtd dtd = MustParseDtd(
      "root: r; r -> a z; z -> z z | w | a; w -> w | b; b -> eps;"
      "a -> y1; y1 -> y2; y2 -> y3; y3 -> b;",
      &pool);
  EngineConfig config;
  config.step_limit = 50;
  EngineContext ctx(config);
  SchemaDecision r = ValidWithDtd(q, Mode::kWeak, dtd, &ctx);
  EXPECT_FALSE(r.decided);
  EXPECT_EQ(r.outcome, Outcome::kResourceExhausted);
}

TEST(EngineContextTest, GraphMatchReportsExhaustion) {
  LabelPool pool;
  LabelId a = pool.Intern("a");
  Graph g;
  for (int i = 0; i < 40; ++i) g.AddNode(a);
  for (NodeId u = 0; u + 1 < g.size(); ++u) g.AddEdge(u, u + 1);
  g.SetRoot(0);
  Tpq q = MustParseTpq("a//a//a", &pool);
  EngineConfig config;
  config.step_limit = 10;  // far below |q| * |g|
  EngineContext ctx(config);
  GraphMatchResult r = MatchesWeakGraph(q, g, &ctx);
  EXPECT_EQ(r.outcome, Outcome::kResourceExhausted);
}

TEST(EngineContextTest, CountersFlowFromSchemaEngine) {
  LabelPool pool;
  Tpq p = MustParseTpq("a/b", &pool);
  Dtd dtd = MustParseDtd("root: a; a -> b*; b -> eps;", &pool);
  EngineContext ctx;
  SchemaDecision r = SatisfiableWithDtd(p, Mode::kWeak, dtd, &ctx);
  EXPECT_TRUE(r.decided);
  EXPECT_TRUE(r.yes);
  EXPECT_GT(ctx.stats().schema_configurations.load(), 0);
  EXPECT_GT(ctx.stats().horizontal_nodes.load(), 0);
}

}  // namespace
}  // namespace tpc
