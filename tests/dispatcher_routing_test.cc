// Verifies that the dispatcher routes each Table 1 fragment pair to the
// algorithm the paper's classification prescribes, and that the chunked
// parallel canonical sweep agrees with the sequential one on random
// instances.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "engine/engine.h"
#include "gen/random_instances.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"

namespace tpc {
namespace {

// ------------------------------------------------- Table 1 routing table

struct RoutingCase {
  const char* name;
  const char* p;
  const char* q;
  ContainmentAlgorithm expected;
};

class DispatcherRoutingTest : public ::testing::TestWithParam<RoutingCase> {};

TEST_P(DispatcherRoutingTest, RoutesToExpectedAlgorithm) {
  const RoutingCase& c = GetParam();
  LabelPool pool;
  Tpq p = MustParseTpq(c.p, &pool);
  Tpq q = MustParseTpq(c.q, &pool);
  ContainmentResult r = Contains(p, q, Mode::kWeak, &pool);
  EXPECT_EQ(r.algorithm, c.expected)
      << "p = " << c.p << ", q = " << c.q;
  EXPECT_EQ(r.outcome, Outcome::kDecided);
}

INSTANTIATE_TEST_SUITE_P(
    Table1, DispatcherRoutingTest,
    ::testing::Values(
        // q wildcard-free: homomorphism region of Theorem 3.1.
        RoutingCase{"WildcardFreeRight", "a//b[c]", "a//b",
                    ContainmentAlgorithm::kHomomorphism},
        RoutingCase{"WildcardFreeRightPath", "a/b/c", "a//c",
                    ContainmentAlgorithm::kHomomorphism},
        // q child-edge-free with wildcards: Theorem 3.2(3).  Normalization
        // also lands here when every child edge of q points at a wildcard
        // island-leaf (such edges relax to descendant edges).
        RoutingCase{"ChildFreeRight", "a/b//c", "a//*//c",
                    ContainmentAlgorithm::kMinimalCanonical},
        RoutingCase{"NormalizedChildFreeRight", "a/b//c", "a/*//c",
                    ContainmentAlgorithm::kMinimalCanonical},
        // p descendant-free: Theorems 3.1(2) / 3.2(4).
        RoutingCase{"DescendantFreeLeft", "a/b/c", "a/*/c",
                    ContainmentAlgorithm::kSingleCanonical},
        // p a path query with descendant edges: Theorem 3.2(1).  q keeps an
        // interior wildcard (letter below it), so normalization preserves
        // its child edges.
        RoutingCase{"PathLeft", "a//c", "a/*/c",
                    ContainmentAlgorithm::kPathInTpq},
        RoutingCase{"PathLeftLong", "a//b/c", "a/*/c",
                    ContainmentAlgorithm::kPathInTpq},
        // p branching but child-edge-free: Theorem 3.2(2).
        RoutingCase{"ChildFreeLeft", "a[//b][//c]", "a/*/b",
                    ContainmentAlgorithm::kChildFreeInTpq},
        // General case: branching + both edge kinds on the left, wildcards
        // and surviving child edges on the right — the coNP cell
        // (Theorem 3.3).
        RoutingCase{"General", "a[b][//c]", "a[*/b][//c]",
                    ContainmentAlgorithm::kCanonicalEnumeration}),
    [](const ::testing::TestParamInfo<RoutingCase>& info) {
      return info.param.name;
    });

TEST(DispatcherRoutingTest, ForceCanonicalOverridesRouting) {
  LabelPool pool;
  Tpq p = MustParseTpq("a/b", &pool);
  Tpq q = MustParseTpq("a/b", &pool);
  ContainmentOptions options;
  options.force_canonical = true;
  ContainmentResult r = Contains(p, q, Mode::kWeak, &pool, options);
  EXPECT_EQ(r.algorithm, ContainmentAlgorithm::kCanonicalEnumeration);
  EXPECT_TRUE(r.contained);
}

TEST(DispatcherRoutingTest, DispatchCountersTrackRouting) {
  LabelPool pool;
  Tpq p = MustParseTpq("a//b[c]", &pool);
  Tpq q = MustParseTpq("a//b", &pool);
  EngineContext ctx;
  Contains(p, q, Mode::kWeak, &pool, &ctx);
  Contains(p, q, Mode::kWeak, &pool, &ctx);
  int idx = static_cast<int>(ContainmentAlgorithm::kHomomorphism);
  EXPECT_EQ(ctx.stats().dispatch[idx].load(), 2);
}

// --------------------------------- parallel vs sequential canonical sweep

TEST(ParallelCanonicalTest, AgreesWithSequentialOnRandomInstances) {
  LabelPool pool;
  std::mt19937 rng(20150531);
  RandomTpqOptions popts;
  popts.labels = MakeLabels(3, &pool);
  popts.fragment = fragments::kTpqFull;
  popts.size = 7;
  RandomTpqOptions qopts = popts;
  qopts.size = 5;

  EngineConfig seq_config;  // one thread: always the sequential sweep
  EngineContext seq_ctx(seq_config);
  EngineConfig par_config;
  par_config.threads = 4;
  par_config.parallel_threshold = 1;  // engage the parallel path always
  par_config.parallel_chunk = 4;      // many chunks even on small spaces
  EngineContext par_ctx(par_config);

  int disagreements = 0;
  for (int i = 0; i < 200; ++i) {
    Tpq p = RandomTpq(popts, &rng);
    Tpq q = RandomTpq(qopts, &rng);
    ContainmentResult seq =
        CanonicalContainment(p, q, Mode::kWeak, &pool, &seq_ctx);
    ContainmentResult par =
        CanonicalContainment(p, q, Mode::kWeak, &pool, &par_ctx);
    ASSERT_EQ(seq.outcome, Outcome::kDecided);
    ASSERT_EQ(par.outcome, Outcome::kDecided);
    if (seq.contained != par.contained) ++disagreements;
    // The parallel sweep may find a *different* counterexample than the
    // sequential one (chunks race to the first witness), but any witness it
    // reports must be genuine: in L_w(p) and not in L_w(q).
    if (par.counterexample.has_value()) {
      EXPECT_TRUE(MatchesWeak(p, *par.counterexample));
      EXPECT_FALSE(MatchesWeak(q, *par.counterexample));
    }
    if (seq.counterexample.has_value()) {
      EXPECT_TRUE(MatchesWeak(p, *seq.counterexample));
      EXPECT_FALSE(MatchesWeak(q, *seq.counterexample));
    }
  }
  EXPECT_EQ(disagreements, 0);
}

}  // namespace
}  // namespace tpc
