#include "schema/schema_engine.h"

#include <gtest/gtest.h>

#include <random>

#include "base/label.h"
#include "dtd/dtd.h"
#include "gen/random_instances.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"
#include "tree/tree_parser.h"

namespace tpc {
namespace {

class SchemaEngineTest : public ::testing::Test {
 protected:
  LabelPool pool_;
};

TEST_F(SchemaEngineTest, SatisfiabilityBasics) {
  Dtd d = MustParseDtd("root: a; a -> b c*; b -> eps; c -> b?;", &pool_);
  // a/b is satisfiable; b/b is not (b must be a leaf).
  SchemaDecision yes =
      SatisfiableWithDtd(MustParseTpq("a/b", &pool_), Mode::kWeak, d);
  EXPECT_TRUE(yes.yes);
  ASSERT_TRUE(yes.witness.has_value());
  EXPECT_TRUE(d.Satisfies(*yes.witness));
  EXPECT_TRUE(MatchesWeak(MustParseTpq("a/b", &pool_), *yes.witness));

  SchemaDecision no =
      SatisfiableWithDtd(MustParseTpq("b/b", &pool_), Mode::kWeak, d);
  EXPECT_FALSE(no.yes);
  EXPECT_FALSE(no.witness.has_value());
}

TEST_F(SchemaEngineTest, StrongSatisfiabilityNeedsRoot) {
  Dtd d = MustParseDtd("root: a; a -> b; b -> c?; c -> eps;", &pool_);
  // b/c matches inside trees but never at the root.
  Tpq p = MustParseTpq("b/c", &pool_);
  EXPECT_TRUE(SatisfiableWithDtd(p, Mode::kWeak, d).yes);
  EXPECT_FALSE(SatisfiableWithDtd(p, Mode::kStrong, d).yes);
}

TEST_F(SchemaEngineTest, SatisfiabilityBranching) {
  // a needs both a b-child and a c-child; the DTD allows only one of them.
  Dtd d = MustParseDtd("root: a; a -> b | c; b -> eps; c -> eps;", &pool_);
  EXPECT_FALSE(SatisfiableWithDtd(MustParseTpq("a[b][c]", &pool_),
                                  Mode::kWeak, d)
                   .yes);
  Dtd d2 = MustParseDtd("root: a; a -> b c; b -> eps; c -> eps;", &pool_);
  EXPECT_TRUE(SatisfiableWithDtd(MustParseTpq("a[b][c]", &pool_),
                                 Mode::kWeak, d2)
                  .yes);
}

TEST_F(SchemaEngineTest, ValidityBasics) {
  Dtd d = MustParseDtd("root: a; a -> b; b -> eps;", &pool_);
  // Every tree of L(d) is exactly a(b).
  EXPECT_TRUE(ValidWithDtd(MustParseTpq("a/b", &pool_), Mode::kWeak, d).yes);
  EXPECT_TRUE(ValidWithDtd(MustParseTpq("a/b", &pool_), Mode::kStrong, d).yes);
  EXPECT_TRUE(ValidWithDtd(MustParseTpq("*", &pool_), Mode::kWeak, d).yes);
  SchemaDecision not_valid =
      ValidWithDtd(MustParseTpq("a/c", &pool_), Mode::kWeak, d);
  EXPECT_FALSE(not_valid.yes);
  ASSERT_TRUE(not_valid.witness.has_value());
  EXPECT_TRUE(d.Satisfies(*not_valid.witness));
  EXPECT_FALSE(MatchesWeak(MustParseTpq("a/c", &pool_), *not_valid.witness));
}

TEST_F(SchemaEngineTest, ValidityWithRecursion) {
  // Paper's conclusion example: over trees, a//b is valid for the DTD
  // a -> a + b, b -> ε (every finite tree must eventually leave the a-spine).
  Dtd d = MustParseDtd("root: a; a -> a | b; b -> eps;", &pool_);
  EXPECT_TRUE(ValidWithDtd(MustParseTpq("a//b", &pool_), Mode::kWeak, d).yes);
  // Weakly, the innermost a always has a b child; strongly, the root only
  // does in the two-node tree a(b).
  EXPECT_TRUE(ValidWithDtd(MustParseTpq("a/b", &pool_), Mode::kWeak, d).yes);
  SchemaDecision strong =
      ValidWithDtd(MustParseTpq("a/b", &pool_), Mode::kStrong, d);
  EXPECT_FALSE(strong.yes);
  ASSERT_TRUE(strong.witness.has_value());
  EXPECT_TRUE(d.Satisfies(*strong.witness));
  EXPECT_FALSE(MatchesStrong(MustParseTpq("a/b", &pool_), *strong.witness));
}

TEST_F(SchemaEngineTest, ContainmentWithDtdBasics) {
  // Under d, every a has a b child, so a//c ⊆ a/b holds w.r.t. d
  // even though it fails without the schema.
  Dtd d = MustParseDtd("root: a; a -> b c?; b -> eps; c -> eps;", &pool_);
  Tpq p = MustParseTpq("a//c", &pool_);
  Tpq q = MustParseTpq("a/b", &pool_);
  EXPECT_TRUE(ContainedWithDtd(p, q, Mode::kWeak, d).yes);
  // Sanity: without schema this containment fails.
  EXPECT_FALSE(Contains(p, q, Mode::kWeak, &pool_).contained);
}

TEST_F(SchemaEngineTest, ContainmentCounterexampleIsValid) {
  Dtd d = MustParseDtd("root: a; a -> b* c*; b -> eps; c -> eps;", &pool_);
  Tpq p = MustParseTpq("a/c", &pool_);
  Tpq q = MustParseTpq("a/b", &pool_);
  SchemaDecision r = ContainedWithDtd(p, q, Mode::kWeak, d);
  EXPECT_FALSE(r.yes);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(d.Satisfies(*r.witness));
  EXPECT_TRUE(MatchesWeak(p, *r.witness));
  EXPECT_FALSE(MatchesWeak(q, *r.witness));
}

TEST_F(SchemaEngineTest, PathSatisfiabilityAgreesWithNtaProduct) {
  std::mt19937 rng(4242);
  std::vector<LabelId> labels = MakeLabels(4, &pool_);
  int nonempty = 0;
  for (int trial = 0; trial < 40; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions popts;
    popts.labels = labels;
    popts.fragment = fragments::kPqFull;
    popts.size = 1 + trial % 4;
    Tpq p = RandomTpq(popts, &rng);
    for (Mode mode : {Mode::kWeak, Mode::kStrong}) {
      SchemaDecision via_engine = SatisfiableWithDtd(p, mode, d);
      SchemaDecision via_nta = SatisfiablePathWithDtd(p, mode, d);
      EXPECT_EQ(via_engine.yes, via_nta.yes)
          << p.ToString(pool_) << " with\n" << d.ToString(pool_);
      if (via_engine.yes) {
        ++nonempty;
        EXPECT_TRUE(d.Satisfies(*via_engine.witness));
        EXPECT_TRUE(d.Satisfies(*via_nta.witness));
        bool strong = mode == Mode::kStrong;
        EXPECT_EQ(strong ? MatchesStrong(p, *via_engine.witness)
                         : MatchesWeak(p, *via_engine.witness),
                  true);
      }
    }
  }
  EXPECT_GT(nonempty, 5);
}

TEST_F(SchemaEngineTest, SatisfiabilityAgreesWithSampling) {
  // If a random sampled tree of L(d) matches p, the engine must say yes.
  std::mt19937 rng(777);
  std::vector<LabelId> labels = MakeLabels(3, &pool_);
  for (int trial = 0; trial < 30; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions popts;
    popts.labels = labels;
    popts.fragment = fragments::kTpqFull;
    popts.size = 2 + trial % 3;
    Tpq p = RandomTpq(popts, &rng);
    bool sampled_match = false;
    for (int i = 0; i < 20 && !sampled_match; ++i) {
      Tree t = d.SampleTree(&rng, 12);
      sampled_match = MatchesWeak(p, t);
    }
    if (sampled_match) {
      EXPECT_TRUE(SatisfiableWithDtd(p, Mode::kWeak, d).yes)
          << p.ToString(pool_) << " with\n" << d.ToString(pool_);
    }
  }
}

TEST_F(SchemaEngineTest, ValidityAgreesWithSampling) {
  std::mt19937 rng(888);
  std::vector<LabelId> labels = MakeLabels(3, &pool_);
  for (int trial = 0; trial < 30; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions qopts;
    qopts.labels = labels;
    qopts.fragment = fragments::kTpqFull;
    qopts.size = 2 + trial % 3;
    Tpq q = RandomTpq(qopts, &rng);
    SchemaDecision r = ValidWithDtd(q, Mode::kWeak, d);
    if (r.yes) {
      // No sampled tree may violate q.
      for (int i = 0; i < 20; ++i) {
        Tree t = d.SampleTree(&rng, 12);
        EXPECT_TRUE(MatchesWeak(q, t))
            << q.ToString(pool_) << " with\n" << d.ToString(pool_)
            << "\nviolated by " << t.ToString(pool_);
      }
    } else {
      ASSERT_TRUE(r.witness.has_value());
      EXPECT_TRUE(d.Satisfies(*r.witness));
      EXPECT_FALSE(MatchesWeak(q, *r.witness));
    }
  }
}

TEST_F(SchemaEngineTest, ContainmentAgreesWithSchemaFreeWhenDtdIsLoose) {
  // With a "universal-ish" DTD (any label, any children), containment with
  // schema over the DTD's alphabet implies schema-free containment whenever
  // the schema-free counterexample uses only alphabet labels; we check
  // one-directional consistency: schema-free containment implies containment
  // w.r.t. every DTD.
  std::mt19937 rng(991);
  std::vector<LabelId> labels = MakeLabels(2, &pool_);
  std::string dtd_src = "root: l0 | l1; l0 -> (l0 | l1)*; l1 -> (l0 | l1)*;";
  Dtd d = MustParseDtd(dtd_src, &pool_);
  for (int trial = 0; trial < 40; ++trial) {
    RandomTpqOptions opts;
    opts.labels = labels;
    opts.fragment = fragments::kTpqFull;
    opts.size = 2 + trial % 3;
    Tpq p = RandomTpq(opts, &rng);
    Tpq q = RandomTpq(opts, &rng);
    bool schema_free = Contains(p, q, Mode::kWeak, &pool_).contained;
    bool with_dtd = ContainedWithDtd(p, q, Mode::kWeak, d).yes;
    if (schema_free) {
      EXPECT_TRUE(with_dtd) << p.ToString(pool_) << " in " << q.ToString(pool_);
    }
    if (!with_dtd) {
      EXPECT_FALSE(schema_free)
          << p.ToString(pool_) << " in " << q.ToString(pool_);
    }
  }
}

TEST_F(SchemaEngineTest, FixedDtdWoodStyleCoverage) {
  // Wood's NP-hardness setting (Theorem 4.2(1)): depth-one trees, the TPQ(/)
  // asks for every letter below the root.  Here a tiny instance.
  Dtd d = MustParseDtd("root: r; r -> (x | y | z)*; x -> eps; y -> eps; "
                       "z -> eps;",
                       &pool_);
  EXPECT_TRUE(
      SatisfiableWithDtd(MustParseTpq("r[x][y][z]", &pool_), Mode::kWeak, d)
          .yes);
  Dtd d2 = MustParseDtd("root: r; r -> x y | y z; x -> eps; y -> eps; "
                        "z -> eps;",
                        &pool_);
  EXPECT_FALSE(
      SatisfiableWithDtd(MustParseTpq("r[x][y][z]", &pool_), Mode::kWeak, d2)
          .yes);
  EXPECT_TRUE(
      SatisfiableWithDtd(MustParseTpq("r[x][y]", &pool_), Mode::kWeak, d2)
          .yes);
}

}  // namespace
}  // namespace tpc
