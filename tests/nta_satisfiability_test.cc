#include "schema/nta_satisfiability.h"

#include <gtest/gtest.h>

#include <random>

#include "base/label.h"
#include "gen/random_instances.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"

namespace tpc {
namespace {

class NtaSatisfiabilityTest : public ::testing::Test {
 protected:
  LabelPool pool_;
};

TEST_F(NtaSatisfiabilityTest, AgreesWithDtdEngineOnPlainDtds) {
  // With the NTA being exactly a DTD automaton, SatisfiableWithNta must
  // agree with the schema engine.
  std::mt19937 rng(2026);
  std::vector<LabelId> labels = MakeLabels(3, &pool_);
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    Nta nta = Nta::FromDtd(d);
    RandomTpqOptions opts;
    opts.labels = labels;
    opts.fragment = fragments::kTpqFull;
    opts.size = 2 + trial % 4;
    Tpq p = RandomTpq(opts, &rng);
    for (Mode mode : {Mode::kWeak, Mode::kStrong}) {
      SchemaDecision via_nta = SatisfiableWithNta(p, mode, nta, &pool_);
      SchemaDecision via_engine = SatisfiableWithDtd(p, mode, d);
      ASSERT_EQ(via_nta.yes, via_engine.yes)
          << p.ToString(pool_) << " wrt\n" << d.ToString(pool_);
      if (via_nta.yes) {
        ASSERT_TRUE(via_nta.witness.has_value());
        EXPECT_TRUE(d.Satisfies(*via_nta.witness));
        EXPECT_TRUE(mode == Mode::kStrong
                        ? MatchesStrong(p, *via_nta.witness)
                        : MatchesWeak(p, *via_nta.witness));
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST_F(NtaSatisfiabilityTest, ConpRouteAgreesWithEngine) {
  // Theorem 6.4: containment of branching p in a path q w.r.t. a DTD via
  // the ¬q product, vs. the generic engine.
  std::mt19937 rng(2027);
  std::vector<LabelId> labels = MakeLabels(3, &pool_);
  int disagreements_possible = 0;
  for (int trial = 0; trial < 25; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions popts;
    popts.labels = labels;
    popts.fragment = fragments::kTpqChildDesc;
    popts.size = 2 + trial % 4;
    Tpq p = RandomTpq(popts, &rng);
    RandomTpqOptions qopts = popts;
    qopts.fragment = fragments::kPqFull;
    qopts.size = 1 + trial % 3;
    Tpq q = RandomTpq(qopts, &rng);
    for (Mode mode : {Mode::kWeak, Mode::kStrong}) {
      SchemaDecision via_route = ContainedViaConpRoute(p, q, mode, d, &pool_);
      SchemaDecision via_engine = ContainedWithDtd(p, q, mode, d);
      ASSERT_TRUE(via_route.decided);
      ASSERT_EQ(via_route.yes, via_engine.yes)
          << p.ToString(pool_) << " in " << q.ToString(pool_) << " wrt\n"
          << d.ToString(pool_);
      if (!via_route.yes) {
        ASSERT_TRUE(via_route.witness.has_value());
        const Tree& t = *via_route.witness;
        EXPECT_TRUE(d.Satisfies(t));
        EXPECT_TRUE(mode == Mode::kStrong ? MatchesStrong(p, t)
                                          : MatchesWeak(p, t));
        EXPECT_FALSE(mode == Mode::kStrong ? MatchesStrong(q, t)
                                           : MatchesWeak(q, t));
      }
      ++disagreements_possible;
    }
  }
  EXPECT_GT(disagreements_possible, 15);
}

TEST_F(NtaSatisfiabilityTest, WildcardTransitionsUseFreshLabels) {
  // An NTA built from a path query accepts over an open alphabet; the
  // satisfiability search must be able to pick labels outside p.
  Tpq path = MustParseTpq("a//b", &pool_);
  Nta nta = Nta::FromPathQuery(path, /*strong=*/true);
  Tpq p = MustParseTpq("a/*", &pool_);  // any child works
  SchemaDecision r = SatisfiableWithNta(p, Mode::kWeak, nta, &pool_);
  EXPECT_TRUE(r.yes);
  ASSERT_TRUE(r.witness.has_value());
  EXPECT_TRUE(MatchesStrong(path, *r.witness));
  EXPECT_TRUE(MatchesWeak(p, *r.witness));
}

}  // namespace
}  // namespace tpc
