// Fault isolation for the grouped canonical sweep: a member whose budget
// exhausts, cancels, or fails a tracked allocation mid-sweep retires ALONE.
// Its groupmates must still decide with the reference verdicts, the
// faulted member must either decide correctly anyway (e.g. an allocation
// failure mid-compile falls back to the generic DP) or report the injected
// reason, and a reset context must re-decide the same instance cleanly —
// at the contain level, under the chunked-parallel grouped sweep, and
// through the query service (whose cache must never absorb a faulted
// verdict).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "engine/engine.h"
#include "engine/fault_injection.h"
#include "reductions/hardness_families.h"
#include "service/query_service.h"

namespace tpc {
namespace {

enum class FaultKind { kExhaust, kCancel, kAlloc };

/// The same four equal-bound members as group_agreement_test: A, B, C
/// contained (full sweep each), D refuted at the first model.
struct GroupInstance {
  Tpq p;
  std::vector<Tpq> qs;
  std::vector<bool> reference;
};

GroupInstance MakeGroupInstance(LabelPool* pool) {
  GroupInstance out;
  ConpFamilyInstance inst = BuildConpFamily(3, pool);
  out.p = std::move(inst.p);
  const LabelId c = pool->Intern("c");
  const LabelId u = pool->Intern("u");

  Tpq a(kWildcard);
  NodeId v = 0;
  for (int i = 0; i < 3; ++i) v = a.AddChild(v, kWildcard, EdgeKind::kChild);
  a.AddChild(v, c, EdgeKind::kChild);

  Tpq b(kWildcard);
  v = b.AddChild(0, kWildcard, EdgeKind::kChild);
  v = b.AddChild(v, kWildcard, EdgeKind::kChild);
  b.AddChild(v, c, EdgeKind::kChild);
  b.AddChild(v, kWildcard, EdgeKind::kChild);

  Tpq cq(kWildcard);
  v = cq.AddChild(0, kWildcard, EdgeKind::kChild);
  cq.AddChild(v, kWildcard, EdgeKind::kChild);
  v = cq.AddChild(v, kWildcard, EdgeKind::kChild);
  cq.AddChild(v, c, EdgeKind::kChild);

  Tpq d(kWildcard);
  v = 0;
  for (int i = 0; i < 3; ++i) v = d.AddChild(v, kWildcard, EdgeKind::kChild);
  d.AddChild(v, u, EdgeKind::kChild);

  out.qs.push_back(std::move(a));
  out.qs.push_back(std::move(b));
  out.qs.push_back(std::move(cq));
  out.qs.push_back(std::move(d));
  for (const Tpq& q : out.qs) {
    ContainmentResult r = Contains(out.p, q, Mode::kWeak, pool);
    EXPECT_EQ(r.outcome, Outcome::kDecided);
    out.reference.push_back(r.contained);
  }
  return out;
}

/// Runs the group with a never-firing plan on `victim`'s context and
/// returns how many budget charges / tracked allocations that member saw —
/// the fault-point space for the matrices below.
struct ChargeSpace {
  int64_t charges = 0;
  int64_t allocs = 0;
};

ChargeSpace ProbeVictim(const GroupInstance& inst, size_t victim,
                        LabelPool* pool, const EngineConfig& group_config) {
  EngineConfig probe_config;
  probe_config.fault_plan.exhaust_at_charge = INT64_MAX;
  std::vector<std::unique_ptr<EngineContext>> ctxs;
  std::vector<GroupMember> members;
  for (size_t i = 0; i < inst.qs.size(); ++i) {
    ctxs.push_back(i == victim ? std::make_unique<EngineContext>(probe_config)
                               : std::make_unique<EngineContext>());
    members.push_back({&inst.qs[i], ctxs.back().get()});
  }
  EngineContext group_ctx(group_config);
  std::vector<ContainmentResult> results =
      ContainsGroup(inst.p, members, Mode::kWeak, pool, &group_ctx);
  for (size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].outcome, Outcome::kDecided);
    EXPECT_EQ(results[i].contained, inst.reference[i]);
  }
  ChargeSpace space;
  space.charges = ctxs[victim]->fault_injector()->charges_seen();
  space.allocs = ctxs[victim]->fault_injector()->allocs_seen();
  return space;
}

/// Every point up to `cap`, then `samples` pseudo-random points across the
/// rest of the space (service_fault_test's matrix shape).
std::vector<int64_t> FaultPoints(int64_t space, int64_t cap, int samples,
                                 uint64_t seed) {
  std::vector<int64_t> points;
  for (int64_t p = 1; p <= space && p <= cap; ++p) points.push_back(p);
  if (space > cap) {
    for (int i = 0; i < samples; ++i) {
      points.push_back(DeriveFaultPoint(seed, i, space));
    }
  }
  return points;
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kExhaust:
      return "exhaust";
    case FaultKind::kCancel:
      return "cancel";
    case FaultKind::kAlloc:
      return "alloc";
  }
  return "?";
}

ExhaustionReason ExpectedReason(FaultKind kind) {
  switch (kind) {
    case FaultKind::kExhaust:
      return ExhaustionReason::kSteps;
    case FaultKind::kCancel:
      return ExhaustionReason::kCancelled;
    case FaultKind::kAlloc:
      return ExhaustionReason::kMemory;
  }
  return ExhaustionReason::kNone;
}

EngineConfig VictimConfig(FaultKind kind, int64_t point) {
  EngineConfig config;
  switch (kind) {
    case FaultKind::kExhaust:
      config.fault_plan.exhaust_at_charge = point;
      break;
    case FaultKind::kCancel:
      config.fault_plan.cancel_at_charge = point;
      break;
    case FaultKind::kAlloc:
      config.fault_plan.fail_alloc_at = point;
      break;
  }
  return config;
}

/// The isolation contract, checked for one (kind, point) cell: groupmates
/// always decide with reference verdicts; the victim decides correctly or
/// carries the injected reason; the victim's reset context recovers.
void CheckFaultedGroup(const GroupInstance& inst, size_t victim,
                       FaultKind kind, int64_t point, LabelPool* pool,
                       const EngineConfig& group_config) {
  std::vector<std::unique_ptr<EngineContext>> ctxs;
  std::vector<GroupMember> members;
  for (size_t i = 0; i < inst.qs.size(); ++i) {
    ctxs.push_back(i == victim
                       ? std::make_unique<EngineContext>(
                             VictimConfig(kind, point))
                       : std::make_unique<EngineContext>());
    members.push_back({&inst.qs[i], ctxs.back().get()});
  }
  EngineContext group_ctx(group_config);
  std::vector<ContainmentResult> results =
      ContainsGroup(inst.p, members, Mode::kWeak, pool, &group_ctx);

  for (size_t i = 0; i < results.size(); ++i) {
    if (i == victim) continue;
    ASSERT_EQ(results[i].outcome, Outcome::kDecided)
        << "groupmate " << i << " poisoned by victim fault at " << FaultKindName(kind) << " point " << point;
    EXPECT_EQ(results[i].contained, inst.reference[i])
        << "groupmate " << i << ", " << FaultKindName(kind) << " point " << point;
  }
  const ContainmentResult& vr = results[victim];
  if (vr.outcome == Outcome::kDecided) {
    // Legitimate: the fault landed after the verdict was certain, or an
    // alloc failure mid-compile fell back to the generic DP.
    EXPECT_EQ(vr.contained, inst.reference[victim]) << FaultKindName(kind) << " point " << point;
  } else {
    EXPECT_EQ(vr.reason, ExpectedReason(kind)) << FaultKindName(kind) << " point " << point;
  }

  // Recovery: once the one-shot fault has fired, clearing the budget must
  // let the same context re-decide the instance it faulted on.  (If the
  // victim decided before its fault point, the plan is still pending and
  // would legitimately fire during a rerun — skip those cells.)
  if (vr.outcome == Outcome::kDecided) return;
  ctxs[victim]->ResetBudget();
  ContainmentResult again = Contains(inst.p, inst.qs[victim], Mode::kWeak,
                                     pool, ctxs[victim].get());
  ASSERT_EQ(again.outcome, Outcome::kDecided) << FaultKindName(kind) << " point " << point;
  EXPECT_EQ(again.contained, inst.reference[victim]) << FaultKindName(kind) << " point " << point;
}

TEST(GroupFaultTest, SequentialGroupIsolatesMemberFaults) {
  LabelPool pool;
  GroupInstance inst = MakeGroupInstance(&pool);
  const EngineConfig group_config;  // sequential grouped sweep
  // Victim 1 (pattern B): a full-sweep member, so every fault kind can
  // land mid-enumeration while groupmates are still live.
  const size_t victim = 1;
  ChargeSpace space = ProbeVictim(inst, victim, &pool, group_config);
  ASSERT_GT(space.charges, 0);
  ASSERT_GT(space.allocs, 0);

  for (int64_t point : FaultPoints(space.charges, 10, 8, 0xA11CE)) {
    CheckFaultedGroup(inst, victim, FaultKind::kExhaust, point, &pool,
                      group_config);
    CheckFaultedGroup(inst, victim, FaultKind::kCancel, point, &pool,
                      group_config);
  }
  for (int64_t point : FaultPoints(space.allocs, 6, 6, 0xB0B)) {
    CheckFaultedGroup(inst, victim, FaultKind::kAlloc, point, &pool,
                      group_config);
  }
  // The refuted member as victim: it leaves the sweep at the first model,
  // so faults race its own retirement — groupmates must not notice either
  // way.
  for (int64_t point : {int64_t{1}, int64_t{2}, int64_t{3}}) {
    CheckFaultedGroup(inst, 3, FaultKind::kExhaust, point, &pool,
                      group_config);
  }
}

TEST(GroupFaultTest, ParallelGroupIsolatesMemberFaults) {
  LabelPool pool;
  GroupInstance inst = MakeGroupInstance(&pool);
  EngineConfig group_config;
  group_config.threads = 2;
  group_config.parallel_threshold = 2;  // engage chunking on small spaces
  group_config.parallel_chunk = 4;
  const size_t victim = 1;
  ChargeSpace space = ProbeVictim(inst, victim, &pool, group_config);
  ASSERT_GT(space.charges, 0);

  for (int64_t point : FaultPoints(space.charges, 4, 6, 0xCAFE)) {
    CheckFaultedGroup(inst, victim, FaultKind::kExhaust, point, &pool,
                      group_config);
    CheckFaultedGroup(inst, victim, FaultKind::kCancel, point, &pool,
                      group_config);
  }
  for (int64_t point : FaultPoints(space.allocs, 3, 4, 0xD00D)) {
    CheckFaultedGroup(inst, victim, FaultKind::kAlloc, point, &pool,
                      group_config);
  }
}

// Service-level isolation: a faulted member of a ContainsGroupFor call
// neither disturbs its groupmates nor leaves anything behind — the same
// pair re-decided on a healthy context gets the right verdict, proving the
// cache never absorbed the faulted attempt.
TEST(GroupFaultTest, ServiceGroupNeverCachesFaultedMembers) {
  LabelPool pool;
  GroupInstance inst = MakeGroupInstance(&pool);
  const size_t victim = 1;

  for (int64_t point : {int64_t{1}, int64_t{5}, int64_t{50}, int64_t{5000}}) {
    EngineContext service_ctx;
    QueryService service(&pool, &service_ctx);
    std::vector<std::unique_ptr<EngineContext>> ctxs;
    std::vector<QueryService::GroupQuery> queries;
    for (size_t i = 0; i < inst.qs.size(); ++i) {
      ctxs.push_back(i == victim
                         ? std::make_unique<EngineContext>(
                               VictimConfig(FaultKind::kExhaust, point))
                         : std::make_unique<EngineContext>());
      queries.push_back({&inst.p, &inst.qs[i], Mode::kWeak, ctxs.back().get()});
    }
    std::vector<ContainmentResult> results = service.ContainsGroupFor(queries);
    for (size_t i = 0; i < results.size(); ++i) {
      if (i == victim) continue;
      ASSERT_EQ(results[i].outcome, Outcome::kDecided)
          << "member " << i << ", point " << point;
      EXPECT_EQ(results[i].contained, inst.reference[i])
          << "member " << i << ", point " << point;
    }
    if (results[victim].outcome == Outcome::kDecided) {
      EXPECT_EQ(results[victim].contained, inst.reference[victim])
          << "exhaust point " << point;
    } else {
      EXPECT_EQ(results[victim].reason, ExhaustionReason::kSteps)
          << "exhaust point " << point;
    }

    // Re-decide the victim's pair on the SAME service with a healthy
    // context: a cached faulted verdict would surface here.
    EngineContext healthy;
    ContainmentResult again = service.ContainsFor(
        inst.p, inst.qs[victim], Mode::kWeak, &healthy);
    ASSERT_EQ(again.outcome, Outcome::kDecided) << "exhaust point " << point;
    EXPECT_EQ(again.contained, inst.reference[victim])
        << "exhaust point " << point;
  }
}

}  // namespace
}  // namespace tpc
