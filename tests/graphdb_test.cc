#include <gtest/gtest.h>

#include <random>

#include "base/label.h"
#include "contain/containment.h"
#include "dtd/dtd.h"
#include "gen/random_instances.h"
#include "graphdb/graph.h"
#include "graphdb/graph_dtd.h"
#include "graphdb/graph_match.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"
#include "schema/schema_engine.h"
#include "tree/tree_parser.h"

namespace tpc {
namespace {

class GraphDbTest : public ::testing::Test {
 protected:
  /// A random node-labelled digraph (guaranteed at least one edge pattern).
  Graph RandomGraph(const std::vector<LabelId>& labels, int32_t nodes,
                    double edge_prob, std::mt19937* rng) {
    Graph g;
    std::uniform_int_distribution<size_t> pick(0, labels.size() - 1);
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (int32_t i = 0; i < nodes; ++i) g.AddNode(labels[pick(*rng)]);
    for (NodeId u = 0; u < nodes; ++u) {
      for (NodeId v = 0; v < nodes; ++v) {
        if (u != v && coin(*rng) < edge_prob) g.AddEdge(u, v);
      }
    }
    g.SetRoot(0);
    return g;
  }

  LabelPool pool_;
};

TEST_F(GraphDbTest, TreeAsGraphMatchesLikeTree) {
  std::mt19937 rng(17);
  std::vector<LabelId> labels = MakeLabels(3, &pool_);
  for (int trial = 0; trial < 50; ++trial) {
    RandomTreeOptions topts;
    topts.labels = labels;
    topts.size = 1 + trial % 10;
    Tree t = RandomTree(topts, &rng);
    Graph g = Graph::FromTree(t);
    RandomTpqOptions qopts;
    qopts.labels = labels;
    qopts.fragment = fragments::kTpqFull;
    qopts.size = 1 + trial % 5;
    Tpq q = RandomTpq(qopts, &rng);
    EXPECT_EQ(MatchesWeakGraph(q, g), MatchesWeak(q, t));
    EXPECT_EQ(MatchesStrongGraph(q, g), MatchesStrong(q, t));
  }
}

TEST_F(GraphDbTest, CycleSatisfiesDescendantLoops) {
  // A 2-cycle a <-> b: a//a holds on the graph but on no finite unfolding-
  // free tree interpretation of a 2-node structure.
  LabelId a = pool_.Intern("ga");
  LabelId b = pool_.Intern("gb");
  Graph g;
  NodeId na = g.AddNode(a);
  NodeId nb = g.AddNode(b);
  g.AddEdge(na, nb);
  g.AddEdge(nb, na);
  g.SetRoot(na);
  EXPECT_TRUE(MatchesWeakGraph(MustParseTpq("ga//ga", &pool_), g));
  EXPECT_TRUE(MatchesStrongGraph(MustParseTpq("ga//ga//ga", &pool_), g));
  EXPECT_FALSE(MatchesWeakGraph(MustParseTpq("ga/ga", &pool_), g));
}

TEST_F(GraphDbTest, UnfoldingPreservesMatching) {
  // Proposition 7.1 machinery: q matches G iff q matches a sufficiently
  // deep unfolding of G (depth |q| * |G| is ample).
  std::mt19937 rng(23);
  std::vector<LabelId> labels = MakeLabels(2, &pool_);
  for (int trial = 0; trial < 30; ++trial) {
    Graph g = RandomGraph(labels, 3 + trial % 3, 0.35, &rng);
    RandomTpqOptions qopts;
    qopts.labels = labels;
    qopts.fragment = fragments::kTpqFull;
    qopts.size = 1 + trial % 4;
    Tpq q = RandomTpq(qopts, &rng);
    Tree unfolding = g.Unfold(g.root(), q.size() * g.size());
    if (unfolding.size() > 300000) continue;  // keep the test fast
    EXPECT_EQ(MatchesStrongGraph(q, g), MatchesStrong(q, unfolding))
        << q.ToString(pool_);
  }
}

TEST_F(GraphDbTest, Proposition71ContainmentTransfersToGraphs) {
  // If L_w(p) ⊆ L_w(q) over trees then no graph can match p but not q.
  std::mt19937 rng(29);
  std::vector<LabelId> labels = MakeLabels(2, &pool_);
  int containments = 0;
  for (int trial = 0; trial < 60; ++trial) {
    RandomTpqOptions opts;
    opts.labels = labels;
    opts.fragment = fragments::kTpqFull;
    opts.size = 2 + trial % 3;
    Tpq p = RandomTpq(opts, &rng);
    Tpq q = RandomTpq(opts, &rng);
    if (!Contains(p, q, Mode::kWeak, &pool_).contained) continue;
    ++containments;
    for (int i = 0; i < 10; ++i) {
      Graph g = RandomGraph(labels, 4, 0.3, &rng);
      if (MatchesWeakGraph(p, g)) {
        EXPECT_TRUE(MatchesWeakGraph(q, g))
            << p.ToString(pool_) << " ⊆ " << q.ToString(pool_);
      }
    }
  }
  EXPECT_GT(containments, 3);
}

TEST_F(GraphDbTest, UnorderedRegexMembership) {
  LabelPool pool;
  LabelId x = pool.Intern("x");
  LabelId y = pool.Intern("y");
  Nfa nfa = Nfa::FromRegex(MustParseRegex("x y x", &pool));
  EXPECT_TRUE(UnorderedAccepts(nfa, {x, x, y}));
  EXPECT_TRUE(UnorderedAccepts(nfa, {y, x, x}));
  EXPECT_FALSE(UnorderedAccepts(nfa, {x, y}));
  EXPECT_FALSE(UnorderedAccepts(nfa, {x, y, y}));
  Nfa star = Nfa::FromRegex(MustParseRegex("(x y)*", &pool));
  EXPECT_TRUE(UnorderedAccepts(star, {}));
  EXPECT_TRUE(UnorderedAccepts(star, {y, y, x, x}));
  EXPECT_FALSE(UnorderedAccepts(star, {y, y, x}));
}

TEST_F(GraphDbTest, NodesOnlyDtdOnGraphs) {
  Dtd d = MustParseDtd("root: p; p -> m m | p; m -> eps;", &pool_);
  LabelId p = pool_.Find("p");
  LabelId m = pool_.Find("m");
  Graph g;
  NodeId p1 = g.AddNode(p);
  NodeId m1 = g.AddNode(m);
  NodeId m2 = g.AddNode(m);
  g.AddEdge(p1, m1);
  g.AddEdge(p1, m2);
  g.SetRoot(p1);
  EXPECT_TRUE(GraphSatisfiesDtdNodesOnly(g, d));
  // A p-node pointing to one message violates the content model.
  Graph g2;
  NodeId p2 = g2.AddNode(p);
  NodeId m3 = g2.AddNode(m);
  g2.AddEdge(p2, m3);
  g2.SetRoot(p2);
  EXPECT_FALSE(GraphSatisfiesDtdNodesOnly(g2, d));
  // Cycles are fine under nodes-only semantics: p -> p loop.
  Graph g3;
  NodeId p3 = g3.AddNode(p);
  g3.AddEdge(p3, p3);
  g3.SetRoot(p3);
  EXPECT_TRUE(GraphSatisfiesDtdNodesOnly(g3, d));
}

TEST_F(GraphDbTest, Proposition72SatisfiabilityTransfers) {
  // W-satisfiability w.r.t. a (reduced) DTD agrees between trees and graphs:
  // any satisfying graph yields a satisfying tree and vice versa.  We test
  // the direction "satisfying graph exists => engine says satisfiable" on
  // tree-shaped graphs and spot-check a cyclic graph.
  Dtd d = MustParseDtd("root: p; p -> m m | p; m -> eps;", &pool_);
  Tpq q = MustParseTpq("p//m", &pool_);
  SchemaDecision r = SatisfiableWithDtd(q, Mode::kWeak, d);
  EXPECT_TRUE(r.yes);
  // The cyclic single-node graph satisfies the DTD and matches p//p...
  Tpq loop = MustParseTpq("p//p//p", &pool_);
  Graph g3;
  NodeId p3 = g3.AddNode(pool_.Find("p"));
  g3.AddEdge(p3, p3);
  g3.SetRoot(p3);
  EXPECT_TRUE(MatchesWeakGraph(loop, g3));
  // ... and correspondingly p//p//p is satisfiable over trees too (via the
  // recursive rule p -> p).
  EXPECT_TRUE(SatisfiableWithDtd(loop, Mode::kWeak, d).yes);
}

TEST_F(GraphDbTest, Example73SocialNetwork) {
  // The typed graph of Figure 4 / Example 7.3.
  LabelPool pool;
  LabelId person = pool.Intern("person");
  LabelId message = pool.Intern("message");
  LabelId date = pool.Intern("date");
  LabelId pname = pool.Intern("pname");
  LabelId text = pool.Intern("text");
  LabelId born = pool.Intern("born");
  LabelId name = pool.Intern("name");
  LabelId posted = pool.Intern("posted");
  LabelId likes = pool.Intern("likes");
  LabelId content = pool.Intern("content");

  Dtd d;
  d.SetRule(person,
            Regex::Concat(
                {Regex::Letter(PairType(born, date, &pool)),
                 Regex::Letter(PairType(name, pname, &pool)),
                 Regex::Star(Regex::Letter(PairType(posted, message, &pool))),
                 Regex::Star(Regex::Letter(PairType(likes, message, &pool))),
                 Regex::Star(Regex::Letter(PairType(likes, person, &pool)))}));
  d.SetRule(PairType(born, date, &pool), Regex::Letter(date));
  d.SetRule(PairType(name, pname, &pool), Regex::Letter(pname));
  d.SetRule(PairType(posted, message, &pool), Regex::Letter(message));
  d.SetRule(PairType(likes, message, &pool), Regex::Letter(message));
  d.SetRule(PairType(likes, person, &pool), Regex::Letter(person));
  d.SetRule(message, Regex::Letter(PairType(content, text, &pool)));
  d.SetRule(PairType(content, text, &pool), Regex::Letter(text));
  d.AddStart(person);

  TypedGraph g;
  NodeId alice = g.AddNode(person);
  NodeId bob = g.AddNode(person);
  NodeId msg = g.AddNode(message);
  NodeId alice_date = g.AddNode(date);
  NodeId alice_name = g.AddNode(pname);
  NodeId bob_date = g.AddNode(date);
  NodeId bob_name = g.AddNode(pname);
  NodeId body = g.AddNode(text);
  g.AddEdge(alice, born, alice_date);
  g.AddEdge(alice, name, alice_name);
  g.AddEdge(alice, posted, msg);
  g.AddEdge(bob, born, bob_date);
  g.AddEdge(bob, name, bob_name);
  g.AddEdge(bob, likes, msg);
  g.AddEdge(bob, likes, alice);
  g.AddEdge(msg, content, body);
  g.SetRoot(alice);
  EXPECT_TRUE(TypedGraphSatisfiesDtd(g, d, &pool));

  // Queries on the node-labelled translation G^N.
  Graph gn = g.ToNodeLabelled(&pool);
  Tpq q = MustParseTpq("person/likes:person/person//text", &pool);
  EXPECT_TRUE(MatchesWeakGraph(q, gn));
  Tpq q2 = MustParseTpq("person/likes:person/person/likes:person", &pool);
  EXPECT_FALSE(MatchesWeakGraph(q2, gn));

  // Breaking the schema: a message with two content edges.
  TypedGraph bad = g;
  NodeId body2 = bad.AddNode(text);
  bad.AddEdge(msg, content, body2);
  EXPECT_FALSE(TypedGraphSatisfiesDtd(bad, d, &pool));
}

}  // namespace
}  // namespace tpc
