// Property sweeps over random DTDs: reduction, sampling, automata and
// witness extraction must agree with each other across alphabet sizes and
// rule complexities (parameterized gtest).

#include <gtest/gtest.h>

#include <random>
#include <tuple>

#include "automata/nta.h"
#include "base/label.h"
#include "dtd/dtd.h"
#include "gen/random_instances.h"

namespace tpc {
namespace {

using DtdSweepParam = std::tuple<int32_t /*labels*/, int32_t /*rule size*/,
                                 uint32_t /*seed*/>;

class DtdSweepTest : public ::testing::TestWithParam<DtdSweepParam> {
 protected:
  void SetUp() override {
    auto [num_labels, rule_size, seed] = GetParam();
    rng_.seed(seed);
    labels_ = MakeLabels(num_labels, &pool_);
    RandomDtdOptions opts;
    opts.labels = labels_;
    opts.max_rule_size = rule_size;
    dtd_ = RandomDtd(opts, &rng_);
  }

  LabelPool pool_;
  std::vector<LabelId> labels_;
  Dtd dtd_;
  std::mt19937 rng_;
};

TEST_P(DtdSweepTest, RandomDtdIsReduced) {
  if (dtd_.IsEmptyLanguage()) GTEST_SKIP();
  EXPECT_TRUE(dtd_.IsReduced());
}

TEST_P(DtdSweepTest, SamplesSatisfyAndStressMembership) {
  if (dtd_.IsEmptyLanguage()) GTEST_SKIP();
  for (int i = 0; i < 20; ++i) {
    Tree t = dtd_.SampleTree(&rng_, 20);
    ASSERT_TRUE(dtd_.Satisfies(t)) << t.ToString(pool_);
    // A random label flip is detected consistently by DTD and NTA.
    Tree t2 = t;
    std::uniform_int_distribution<NodeId> pick(0, t2.size() - 1);
    std::uniform_int_distribution<size_t> pick_label(0, labels_.size() - 1);
    t2.SetLabel(pick(rng_), labels_[pick_label(rng_)]);
    Nta nta = Nta::FromDtd(dtd_);
    EXPECT_EQ(nta.Accepts(t2), dtd_.Satisfies(t2));
  }
}

TEST_P(DtdSweepTest, SmallestTreeIsActuallySmallest) {
  if (dtd_.IsEmptyLanguage()) GTEST_SKIP();
  // The NTA-based smallest witness and the DTD's own smallest tree must
  // have equal size (both claim global minimality).
  Nta nta = Nta::FromDtd(dtd_);
  auto witness = nta.SmallestWitness();
  ASSERT_TRUE(witness.has_value());
  int32_t best = INT32_MAX;
  for (LabelId s : dtd_.start()) {
    Tree t = dtd_.SmallestTree(s);
    if (!t.empty()) best = std::min(best, t.size());
  }
  EXPECT_EQ(witness->size(), best);
  // And sampling never produces something smaller.
  for (int i = 0; i < 10; ++i) {
    EXPECT_GE(dtd_.SampleTree(&rng_, 5).size(), best);
  }
}

TEST_P(DtdSweepTest, ReduceIsIdempotent) {
  Dtd reduced = dtd_.Reduce();
  Dtd twice = reduced.Reduce();
  EXPECT_EQ(reduced.alphabet(), twice.alphabet());
  EXPECT_EQ(reduced.start(), twice.start());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DtdSweepTest,
    ::testing::Combine(::testing::Values(2, 4, 6, 8),
                       ::testing::Values(2, 4, 6),
                       ::testing::Values(1u, 2u, 3u)),
    [](const ::testing::TestParamInfo<DtdSweepParam>& info) {
      return "L" + std::to_string(std::get<0>(info.param)) + "_R" +
             std::to_string(std::get<1>(info.param)) + "_S" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace tpc
