// Randomized mutation tests for the checked parser entry points (satellite
// of the failure-model work).  The checked parsers promise: any input —
// truncated, token-garbled, bracket-unbalanced, or absurdly deep — either
// parses or is rejected with a meaningful line/column diagnostic.  Never a
// crash, never an abort, never unbounded recursion (ASan runs this file in
// the `faults` gate of scripts/check.sh).

#include <gtest/gtest.h>

#include <optional>
#include <random>
#include <string>
#include <vector>

#include "base/label.h"
#include "base/parse_result.h"
#include "dtd/dtd.h"
#include "pattern/tpq_parser.h"
#include "tree/tree_parser.h"

namespace tpc {
namespace {

const char* const kTpqSeeds[] = {
    "a/b//c",
    "a[b][c/d]//*[e]",
    "a//*//b[c//d]/e",
    "r//a/*/*/b[c]",
};

const char* const kTreeSeeds[] = {
    "a(b,c(d))",
    "r(a(b,b),c(d(e)),f)",
    "x(y(z),y(z,z))",
};

const char* const kDtdSeeds[] = {
    "root: a; a -> b c*; b -> eps;",
    "root: r; r -> a z; z -> z z | w | a; w -> w | b; b -> eps;",
    "root: a | b; a -> (b | c)* d?; b -> eps; c -> eps; d -> eps;",
};

/// Junk drawn from tokens of all three grammars plus genuinely foreign
/// bytes, so mutations produce near-miss inputs, not only line noise.
const char kJunk[] = "()[]{}/|*,;:->a b1_#?\t\n\\\"$%&^!@`~";

std::string Mutate(const std::string& base, std::mt19937* rng) {
  std::string s = base;
  std::uniform_int_distribution<int> op_dist(0, 4);
  std::uniform_int_distribution<size_t> junk_dist(0, sizeof(kJunk) - 2);
  int mutations = 1 + (*rng)() % 3;
  for (int i = 0; i < mutations && !s.empty(); ++i) {
    size_t pos = (*rng)() % s.size();
    switch (op_dist(*rng)) {
      case 0:  // truncate
        s.resize(pos);
        break;
      case 1:  // delete one char
        s.erase(pos, 1);
        break;
      case 2:  // replace with junk
        s[pos] = kJunk[junk_dist(*rng)];
        break;
      case 3:  // insert junk
        s.insert(pos, 1, kJunk[junk_dist(*rng)]);
        break;
      case 4:  // duplicate a span
        s.insert(pos, s.substr(pos, 1 + (*rng)() % 8));
        break;
    }
  }
  return s;
}

void ExpectDiagnosticSane(const ParseDiagnostic& diag,
                          const std::string& input) {
  EXPECT_FALSE(diag.message.empty());
  EXPECT_GE(diag.line, 1);
  EXPECT_GE(diag.column, 1);
  EXPECT_LE(diag.offset, input.size());
  EXPECT_FALSE(diag.ToString().empty());
}

TEST(ParserMutationTest, MutatedPatternsNeverCrash) {
  LabelPool pool;
  std::mt19937 rng(2026);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input = Mutate(kTpqSeeds[trial % 4], &rng);
    ParseDiagnostic diag;
    std::optional<Tpq> q = ParseTpqChecked(input, &pool, &diag);
    if (!q.has_value()) ExpectDiagnosticSane(diag, input);
  }
}

TEST(ParserMutationTest, MutatedTreesNeverCrash) {
  LabelPool pool;
  std::mt19937 rng(2027);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input = Mutate(kTreeSeeds[trial % 3], &rng);
    ParseDiagnostic diag;
    std::optional<Tree> t = ParseTreeChecked(input, &pool, &diag);
    if (!t.has_value()) ExpectDiagnosticSane(diag, input);
  }
}

TEST(ParserMutationTest, MutatedDtdsNeverCrash) {
  LabelPool pool;
  std::mt19937 rng(2028);
  for (int trial = 0; trial < 3000; ++trial) {
    std::string input = Mutate(kDtdSeeds[trial % 3], &rng);
    ParseDiagnostic diag;
    std::optional<Dtd> d = ParseDtdChecked(input, &pool, &diag);
    if (!d.has_value()) ExpectDiagnosticSane(diag, input);
  }
}

TEST(ParserMutationTest, DeepNestingIsRejectedNotOverflowed) {
  LabelPool pool;
  ParseDiagnostic diag;
  // 100k levels would overflow the stack without the parser depth caps.
  constexpr int kDepth = 100000;

  std::string deep_pattern = "a";
  for (int i = 0; i < kDepth; ++i) deep_pattern += "[a";
  deep_pattern.append(kDepth, ']');
  EXPECT_FALSE(ParseTpqChecked(deep_pattern, &pool, &diag).has_value());
  ExpectDiagnosticSane(diag, deep_pattern);

  std::string deep_tree;
  for (int i = 0; i < kDepth; ++i) deep_tree += "a(";
  deep_tree += "a";
  deep_tree.append(kDepth, ')');
  EXPECT_FALSE(ParseTreeChecked(deep_tree, &pool, &diag).has_value());
  ExpectDiagnosticSane(diag, deep_tree);

  std::string deep_dtd = "root: a; a -> ";
  deep_dtd.append(kDepth, '(');
  deep_dtd += "b";
  deep_dtd.append(kDepth, ')');
  deep_dtd += ";";
  EXPECT_FALSE(ParseDtdChecked(deep_dtd, &pool, &diag).has_value());
  ExpectDiagnosticSane(diag, deep_dtd);
}

TEST(ParserMutationTest, ModerateNestingStillParses) {
  // The caps must not reject reasonable inputs: depth 200 < 256 parses.
  LabelPool pool;
  ParseDiagnostic diag;
  constexpr int kDepth = 200;

  std::string pattern = "a";
  for (int i = 0; i < kDepth; ++i) pattern += "[a";
  pattern.append(kDepth, ']');
  EXPECT_TRUE(ParseTpqChecked(pattern, &pool, &diag).has_value())
      << diag.ToString();

  std::string tree;
  for (int i = 0; i < kDepth; ++i) tree += "a(";
  tree += "a";
  tree.append(kDepth, ')');
  EXPECT_TRUE(ParseTreeChecked(tree, &pool, &diag).has_value())
      << diag.ToString();

  std::string dtd = "root: a; a -> ";
  dtd.append(kDepth, '(');
  dtd += "b";
  dtd.append(kDepth, ')');
  dtd += ";";
  EXPECT_TRUE(ParseDtdChecked(dtd, &pool, &diag).has_value())
      << diag.ToString();
}

TEST(ParserMutationTest, DiagnosticsPointAtTheOffendingLineAndColumn) {
  LabelPool pool;
  ParseDiagnostic diag;
  EXPECT_FALSE(ParseTpqChecked("a/(b", &pool, &diag).has_value());
  EXPECT_EQ(diag.line, 1);
  EXPECT_EQ(diag.column, 3);

  // A DTD error on the second line reports line 2.
  EXPECT_FALSE(
      ParseDtdChecked("root: a;\na -> b |;", &pool, &diag).has_value());
  EXPECT_EQ(diag.line, 2);
  EXPECT_GT(diag.column, 1);
}

TEST(ParserMutationTest, EmptyAndWhitespaceInputsAreRejectedCleanly) {
  LabelPool pool;
  ParseDiagnostic diag;
  for (const char* input : {"", " ", "\n\n", "\t"}) {
    EXPECT_FALSE(ParseTpqChecked(input, &pool, &diag).has_value()) << input;
    EXPECT_FALSE(ParseTreeChecked(input, &pool, &diag).has_value()) << input;
  }
}

}  // namespace
}  // namespace tpc
