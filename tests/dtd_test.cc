#include "dtd/dtd.h"

#include <gtest/gtest.h>

#include <random>

#include "base/label.h"
#include "tree/tree_parser.h"

namespace tpc {
namespace {

class DtdTest : public ::testing::Test {
 protected:
  LabelPool pool_;
};

TEST_F(DtdTest, ParseAndMembership) {
  Dtd d = MustParseDtd("root: a; a -> b c*; b -> eps; c -> b?;", &pool_);
  EXPECT_TRUE(d.Satisfies(MustParseTree("a(b)", &pool_)));
  EXPECT_TRUE(d.Satisfies(MustParseTree("a(b,c,c)", &pool_)));
  EXPECT_TRUE(d.Satisfies(MustParseTree("a(b,c(b))", &pool_)));
  EXPECT_FALSE(d.Satisfies(MustParseTree("a(c)", &pool_)));      // missing b
  EXPECT_FALSE(d.Satisfies(MustParseTree("b", &pool_)));          // wrong root
  EXPECT_FALSE(d.Satisfies(MustParseTree("a(b,b)", &pool_)));     // bad word
  EXPECT_FALSE(d.Satisfies(MustParseTree("a(b,x)", &pool_)));     // foreign
}

TEST_F(DtdTest, MissingRuleMeansLeaf) {
  Dtd d = MustParseDtd("root: a; a -> b;", &pool_);
  EXPECT_TRUE(d.Satisfies(MustParseTree("a(b)", &pool_)));
  EXPECT_FALSE(d.Satisfies(MustParseTree("a(b(b))", &pool_)));
}

TEST_F(DtdTest, MultipleStartSymbols) {
  Dtd d = MustParseDtd("root: a | b; a -> eps; b -> eps;", &pool_);
  EXPECT_TRUE(d.Satisfies(MustParseTree("a", &pool_)));
  EXPECT_TRUE(d.Satisfies(MustParseTree("b", &pool_)));
}

TEST_F(DtdTest, SatisfiesRulesIgnoresRoot) {
  Dtd d = MustParseDtd("root: a; a -> b; b -> eps;", &pool_);
  EXPECT_FALSE(d.Satisfies(MustParseTree("b", &pool_)));
  EXPECT_TRUE(d.SatisfiesRules(MustParseTree("b", &pool_)));
}

TEST_F(DtdTest, GeneratingSymbols) {
  // c requires itself forever: not generating.
  Dtd d = MustParseDtd("root: a; a -> b | c; b -> eps; c -> c;", &pool_);
  std::vector<LabelId> gen = d.GeneratingSymbols();
  EXPECT_TRUE(std::binary_search(gen.begin(), gen.end(), pool_.Find("a")));
  EXPECT_TRUE(std::binary_search(gen.begin(), gen.end(), pool_.Find("b")));
  EXPECT_FALSE(std::binary_search(gen.begin(), gen.end(), pool_.Find("c")));
  EXPECT_FALSE(d.IsEmptyLanguage());
}

TEST_F(DtdTest, EmptyLanguage) {
  Dtd d = MustParseDtd("root: a; a -> a;", &pool_);
  EXPECT_TRUE(d.IsEmptyLanguage());
}

TEST_F(DtdTest, ReduceRemovesDeadSymbols) {
  // c is not generating; e is unreachable.
  Dtd d = MustParseDtd(
      "root: a; a -> b | c; b -> eps; c -> c; e -> b;", &pool_);
  EXPECT_FALSE(d.IsReduced());
  Dtd r = d.Reduce();
  EXPECT_TRUE(r.IsReduced());
  EXPECT_EQ(r.alphabet().size(), 2u);  // a, b
  EXPECT_FALSE(r.InAlphabet(pool_.Find("c")));
  EXPECT_FALSE(r.InAlphabet(pool_.Find("e")));
  // The reduced DTD accepts the same trees.
  EXPECT_TRUE(r.Satisfies(MustParseTree("a(b)", &pool_)));
  EXPECT_FALSE(r.Satisfies(MustParseTree("a(c)", &pool_)));
}

TEST_F(DtdTest, ReducePrunesRuleBodies) {
  // In `a -> b c`, c is dead, so the whole branch b c dies; only `a -> d`.
  Dtd d = MustParseDtd("root: a; a -> b c | d; b -> eps; c -> c; d -> eps;",
                       &pool_);
  Dtd r = d.Reduce();
  EXPECT_FALSE(r.InAlphabet(pool_.Find("c")));
  EXPECT_FALSE(r.InAlphabet(pool_.Find("b")));  // b only occurred next to c
  EXPECT_TRUE(r.Satisfies(MustParseTree("a(d)", &pool_)));
  EXPECT_FALSE(r.Satisfies(MustParseTree("a(b,c)", &pool_)));
}

TEST_F(DtdTest, SmallestTreeIsMinimal) {
  Dtd d = MustParseDtd("root: a; a -> b b | c; b -> c c; c -> eps;", &pool_);
  Tree t = d.SmallestTree(pool_.Find("a"));
  // Smallest: a(c) with 2 nodes (vs a(b,b) with 7).
  EXPECT_EQ(t.size(), 2);
  EXPECT_TRUE(d.Satisfies(t));
}

TEST_F(DtdTest, SmallestTreeOfNonGeneratingIsEmpty) {
  Dtd d = MustParseDtd("root: a; a -> a;", &pool_);
  EXPECT_TRUE(d.SmallestTree(pool_.Find("a")).empty());
}

TEST_F(DtdTest, SampleTreesSatisfyDtd) {
  Dtd d = MustParseDtd(
      "root: doc; doc -> sec sec*; sec -> title par*; title -> eps; "
      "par -> eps;",
      &pool_);
  std::mt19937 rng(42);
  for (int i = 0; i < 50; ++i) {
    Tree t = d.SampleTree(&rng, 30);
    EXPECT_TRUE(d.Satisfies(t)) << t.ToString(pool_);
    EXPECT_LE(t.size(), 200);  // budget is soft but bounded
  }
}

TEST_F(DtdTest, SampleTreeRecursiveDtd) {
  Dtd d = MustParseDtd("root: n; n -> n n | eps;", &pool_);
  std::mt19937 rng(7);
  for (int i = 0; i < 50; ++i) {
    Tree t = d.SampleTree(&rng, 25);
    EXPECT_TRUE(d.Satisfies(t));
  }
}

TEST_F(DtdTest, WithStartChangesRoot) {
  Dtd d = MustParseDtd("root: a; a -> b; b -> eps;", &pool_);
  Dtd db = d.WithStart(pool_.Find("b"));
  EXPECT_TRUE(db.Satisfies(MustParseTree("b", &pool_)));
  EXPECT_FALSE(db.Satisfies(MustParseTree("a(b)", &pool_)));
}

TEST_F(DtdTest, SizeAccounting) {
  Dtd d = MustParseDtd("root: a; a -> b c; b -> eps; c -> eps;", &pool_);
  EXPECT_GT(d.Size(), 4);
}

TEST_F(DtdTest, ParseErrors) {
  EXPECT_FALSE(ParseDtd("a -> b;", &pool_).ok());          // no root
  EXPECT_FALSE(ParseDtd("root: a", &pool_).ok());          // missing ';'
  EXPECT_FALSE(ParseDtd("root: a; a -> (b;", &pool_).ok()); // bad regex
  EXPECT_FALSE(ParseDtd("root: a; root: b;", &pool_).ok()); // dup root
  EXPECT_FALSE(ParseDtd("root: a; a = b;", &pool_).ok());   // bad arrow
}

}  // namespace
}  // namespace tpc
