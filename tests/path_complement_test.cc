#include "automata/path_complement.h"

#include <gtest/gtest.h>

#include <random>

#include "base/label.h"
#include "gen/random_instances.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"
#include "schema/schema_engine.h"
#include "tree/tree_parser.h"

namespace tpc {
namespace {

class PathComplementTest : public ::testing::Test {
 protected:
  LabelPool pool_;
};

TEST_F(PathComplementTest, ComplementNtaInvertsMembership) {
  std::mt19937 rng(64);
  std::vector<LabelId> sigma = MakeLabels(3, &pool_);
  for (int trial = 0; trial < 50; ++trial) {
    RandomTpqOptions qopts;
    qopts.labels = sigma;
    qopts.fragment = fragments::kPqFull;
    qopts.size = 1 + trial % 5;
    Tpq q = RandomTpq(qopts, &rng);
    for (Mode mode : {Mode::kWeak, Mode::kStrong}) {
      Nta complement = ComplementOfPathQueryNta(q, sigma, mode);
      RandomTreeOptions topts;
      topts.labels = sigma;
      for (int i = 0; i < 10; ++i) {
        topts.size = 1 + (i * 3) % 9;
        Tree t = RandomTree(topts, &rng);
        bool in_q = mode == Mode::kStrong ? MatchesStrong(q, t)
                                          : MatchesWeak(q, t);
        EXPECT_EQ(complement.Accepts(t), !in_q)
            << q.ToString(pool_) << " on " << t.ToString(pool_);
      }
    }
  }
}

TEST_F(PathComplementTest, AutomataContainmentAgreesWithEngine) {
  std::mt19937 rng(65);
  std::vector<LabelId> labels = MakeLabels(3, &pool_);
  int checked = 0;
  for (int trial = 0; trial < 30; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions popts;
    popts.labels = labels;
    popts.fragment = fragments::kPqFull;
    popts.size = 1 + trial % 4;
    Tpq p = RandomTpq(popts, &rng);
    Tpq q = RandomTpq(popts, &rng);
    for (Mode mode : {Mode::kWeak, Mode::kStrong}) {
      AutomataContainmentResult via_automata =
          ContainedPathInPathViaAutomata(p, q, mode, d);
      SchemaDecision via_engine = ContainedWithDtd(p, q, mode, d);
      ASSERT_EQ(via_automata.contained, via_engine.yes)
          << p.ToString(pool_) << " in " << q.ToString(pool_) << " wrt\n"
          << d.ToString(pool_);
      if (via_automata.counterexample.has_value()) {
        const Tree& t = *via_automata.counterexample;
        EXPECT_TRUE(d.Satisfies(t));
        EXPECT_TRUE(mode == Mode::kStrong ? MatchesStrong(p, t)
                                          : MatchesWeak(p, t));
        EXPECT_FALSE(mode == Mode::kStrong ? MatchesStrong(q, t)
                                           : MatchesWeak(q, t));
      }
      ++checked;
    }
  }
  EXPECT_GT(checked, 20);
}

TEST_F(PathComplementTest, AutomataValidityAgreesWithEngine) {
  std::mt19937 rng(66);
  std::vector<LabelId> labels = MakeLabels(3, &pool_);
  for (int trial = 0; trial < 30; ++trial) {
    RandomDtdOptions dopts;
    dopts.labels = labels;
    Dtd d = RandomDtd(dopts, &rng);
    if (d.IsEmptyLanguage()) continue;
    RandomTpqOptions qopts;
    qopts.labels = labels;
    qopts.fragment = fragments::kPqFull;
    qopts.size = 1 + trial % 4;
    Tpq q = RandomTpq(qopts, &rng);
    for (Mode mode : {Mode::kWeak, Mode::kStrong}) {
      EXPECT_EQ(ValidPathViaAutomata(q, mode, d).contained,
                ValidWithDtd(q, mode, d).yes)
          << q.ToString(pool_) << " wrt\n" << d.ToString(pool_);
    }
  }
}

TEST_F(PathComplementTest, HandExamples) {
  std::vector<LabelId> sigma = {pool_.Intern("a"), pool_.Intern("b")};
  Tpq q = MustParseTpq("a/b", &pool_);
  Nta weak_comp = ComplementOfPathQueryNta(q, sigma, Mode::kWeak);
  EXPECT_TRUE(weak_comp.Accepts(MustParseTree("a(a)", &pool_)));
  EXPECT_TRUE(weak_comp.Accepts(MustParseTree("b(a)", &pool_)));
  EXPECT_FALSE(weak_comp.Accepts(MustParseTree("b(a(b))", &pool_)));
  Nta strong_comp = ComplementOfPathQueryNta(q, sigma, Mode::kStrong);
  // b(a(b)) has a/b below the root but not at it.
  EXPECT_TRUE(strong_comp.Accepts(MustParseTree("b(a(b))", &pool_)));
  EXPECT_FALSE(strong_comp.Accepts(MustParseTree("a(b)", &pool_)));
}

}  // namespace
}  // namespace tpc
