// A/B agreement: the word-parallel DP fill (missing-bits scatter +
// branch-free leaf kernel) against the scalar per-candidate fill.  The two
// kernels share the postorder row layout and must produce bit-identical
// tables — checked cell by cell over 500 random instances — and identical
// containment verdicts (including counterexample length vectors) through
// `ContainmentOptions::word_parallel`, in both from-scratch and incremental
// sweeps.

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "base/label.h"
#include "contain/containment.h"
#include "engine/engine.h"
#include "gen/random_instances.h"
#include "match/embedding.h"
#include "pattern/tpq_parser.h"

namespace tpc {
namespace {

ContainmentOptions SweepOptions(bool word_parallel, bool incremental) {
  ContainmentOptions options;
  options.force_canonical = true;
  options.bound = ContainmentOptions::Bound::kAggressive;
  options.incremental = incremental;
  options.word_parallel = word_parallel;
  return options;
}

TEST(WordParallelAgreementTest, TablesIdenticalOver500Instances) {
  LabelPool pool;
  std::mt19937 rng(4242);
  std::vector<LabelId> labels = MakeLabels(2, &pool);
  EngineStats stats;
  RandomTpqOptions qopts;
  qopts.labels = labels;
  qopts.fragment = fragments::kTpqFull;
  RandomTreeOptions topts;
  topts.labels = labels;
  int weak_matches = 0;
  for (int trial = 0; trial < 500; ++trial) {
    qopts.size = 2 + trial % 6;
    topts.size = 1 + trial % 12;
    // Adversarial shapes every few trials; random otherwise.
    Tree t = trial % 11 == 0   ? ChainTree(labels, topts.size)
             : trial % 13 == 0 ? StarTree(labels, topts.size)
                               : RandomTree(topts, &rng);
    Tpq q = RandomTpq(qopts, &rng);
    Matcher word(q, t, &stats, /*word_parallel=*/true);
    Matcher scalar(q, t, nullptr, /*word_parallel=*/false);
    ASSERT_EQ(word.MatchesWeak(), scalar.MatchesWeak())
        << q.ToString(pool) << " on " << t.ToString(pool);
    ASSERT_EQ(word.MatchesStrong(), scalar.MatchesStrong())
        << q.ToString(pool) << " on " << t.ToString(pool);
    for (NodeId v = 0; v < q.size(); ++v) {
      for (NodeId x = 0; x < t.size(); ++x) {
        ASSERT_EQ(word.SatAt(v, x), scalar.SatAt(v, x))
            << "sat(" << v << "," << x << "): " << q.ToString(pool) << " on "
            << t.ToString(pool);
        ASSERT_EQ(word.SatBelow(v, x), scalar.SatBelow(v, x))
            << "below(" << v << "," << x << "): " << q.ToString(pool)
            << " on " << t.ToString(pool);
      }
    }
    if (word.MatchesWeak()) ++weak_matches;
  }
  // The sample must exercise both verdicts and both kernels' fast paths.
  EXPECT_GT(weak_matches, 20);
  EXPECT_LT(weak_matches, 480);
  EXPECT_GT(stats.dp_words_folded.load(std::memory_order_relaxed), 0);
  EXPECT_GT(stats.dp_rows_skipped.load(std::memory_order_relaxed), 0);
}

TEST(WordParallelAgreementTest, ContainmentVerdictsIdentical) {
  LabelPool pool;
  std::mt19937 rng(13579);
  std::vector<LabelId> labels = MakeLabels(3, &pool);
  int not_contained = 0;
  for (int trial = 0; trial < 250; ++trial) {
    RandomTpqOptions popts;
    popts.labels = labels;
    popts.fragment = fragments::kTpqFull;
    popts.size = 3 + trial % 5;
    RandomTpqOptions qopts = popts;
    qopts.size = 3 + (trial / 5) % 5;
    Tpq p = RandomTpq(popts, &rng);
    Tpq q = RandomTpq(qopts, &rng);
    Mode mode = trial % 4 == 0 ? Mode::kStrong : Mode::kWeak;
    bool incremental = trial % 2 == 0;
    ContainmentResult word =
        Contains(p, q, mode, &pool, SweepOptions(true, incremental));
    ContainmentResult scalar =
        Contains(p, q, mode, &pool, SweepOptions(false, incremental));
    ASSERT_EQ(word.outcome, Outcome::kDecided);
    ASSERT_EQ(scalar.outcome, Outcome::kDecided);
    ASSERT_EQ(word.contained, scalar.contained)
        << p.ToString(pool) << " in " << q.ToString(pool);
    // Both sweeps walk the length-vector space in the same order, so even
    // the counterexample must be the same model.
    ASSERT_EQ(word.counterexample_lengths.has_value(),
              scalar.counterexample_lengths.has_value());
    if (word.counterexample_lengths.has_value()) {
      EXPECT_EQ(*word.counterexample_lengths, *scalar.counterexample_lengths)
          << p.ToString(pool) << " in " << q.ToString(pool);
      ++not_contained;
    }
  }
  EXPECT_GT(not_contained, 10);
}

TEST(WordParallelAgreementTest, WordKernelReportsFoldAndSkipCounters) {
  LabelPool pool;
  Tpq p = MustParseTpq("a//b[c]//d", &pool);
  Tpq q = MustParseTpq("a//b//d", &pool);
  EngineContext word_ctx;
  ContainmentResult r =
      Contains(p, q, Mode::kWeak, &pool, &word_ctx, SweepOptions(true, true));
  ASSERT_EQ(r.outcome, Outcome::kDecided);
  EXPECT_GT(word_ctx.stats().dp_words_folded.load(std::memory_order_relaxed),
            0);
  EXPECT_GT(word_ctx.stats().dp_rows_skipped.load(std::memory_order_relaxed),
            0);
}

}  // namespace
}  // namespace tpc
