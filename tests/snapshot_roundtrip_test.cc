// Snapshot container property suite (src/persist/snapshot.h): random trees
// and patterns must survive a write → mmap → read round trip bit-exactly
// (the zero-copy `TreeView` over the mapped columns reproduces every
// traversal of the original), and damaged inputs — flipped bytes, truncated
// tails, version skew, foreign endianness tags — must be rejected with a
// diagnostic, never undefined behaviour or a silently wrong tree.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "base/label.h"
#include "gen/random_instances.h"
#include "pattern/tpq.h"
#include "pattern/tpq_hash.h"
#include "persist/snapshot.h"
#include "tree/tree.h"

namespace tpc {
namespace {

std::string TempPath(const char* tag) {
  return std::string(::testing::TempDir()) + "/tpc_snapshot_" + tag + ".snap";
}

std::vector<uint8_t> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::vector<uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// Asserts that the mapped view agrees with the original tree on every
/// column, every traversal primitive and the sibling span-jump walk.
void ExpectViewIdentity(const Tree& t, const TreeView& mapped) {
  const TreeView orig = t.View();
  ASSERT_EQ(mapped.size(), t.size());
  for (NodeId v = 0; v < t.size(); ++v) {
    EXPECT_EQ(mapped.Label(v), t.Label(v));
    EXPECT_EQ(mapped.Parent(v), t.Parent(v));
    EXPECT_EQ(mapped.PostOf(v), orig.PostOf(v));
    EXPECT_EQ(mapped.SubtreeSize(v), orig.SubtreeSize(v));
  }
  for (int32_t i = 0; i < t.size(); ++i) {
    EXPECT_EQ(mapped.NodeAtPost(i), orig.NodeAtPost(i));
    EXPECT_EQ(mapped.LabelAtPost(i), orig.LabelAtPost(i));
    EXPECT_EQ(mapped.SubtreeSizeAtPost(i), orig.SubtreeSizeAtPost(i));
    // The span-jump child walk must enumerate exactly the node's children.
    std::vector<NodeId> walked;
    for (int32_t c = mapped.LastChild(i); c >= mapped.SpanBegin(i);
         c = mapped.PrevSibling(c)) {
      walked.push_back(mapped.NodeAtPost(c));
    }
    std::vector<NodeId> expect = t.Children(t.View().NodeAtPost(i));
    // The walk is right-to-left.
    std::reverse(walked.begin(), walked.end());
    EXPECT_EQ(walked, expect) << "post " << i;
  }
}

TEST(SnapshotRoundTripTest, ThousandRandomTreesSurviveBitExactly) {
  LabelPool pool;
  std::vector<LabelId> labels = MakeLabels(5, &pool);
  std::mt19937 rng(20260809);

  std::vector<Tree> trees;
  for (int i = 0; i < 1000; ++i) {
    RandomTreeOptions topt;
    topt.labels = labels;
    topt.size = 1 + static_cast<int32_t>(rng() % 40);
    topt.branch_bias = (i % 10) / 10.0;
    trees.push_back(RandomTree(topt, &rng));
  }
  // Adversarial shapes ride along: maximum depth and maximum fan-out.
  trees.push_back(ChainTree(labels, 97));
  trees.push_back(StarTree(labels, 97));

  SnapshotWriter writer;
  ASSERT_TRUE(writer.SetLabels(pool));
  for (const Tree& t : trees) {
    ASSERT_TRUE(writer.AddTree(t).has_value());
  }
  const std::string path = TempPath("roundtrip");
  std::string error;
  ASSERT_TRUE(writer.WriteTo(path, &error)) << error;

  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, nullptr, &error)) << error;
  ASSERT_EQ(reader.tree_count(), trees.size());
  ASSERT_EQ(reader.label_count(), pool.size());
  for (uint32_t i = 0; i < reader.label_count(); ++i) {
    EXPECT_EQ(reader.LabelAt(i), pool.Name(static_cast<LabelId>(i)));
  }
  for (size_t i = 0; i < trees.size(); ++i) {
    ExpectViewIdentity(trees[i], reader.TreeAt(static_cast<uint32_t>(i)));
  }
  reader.Close();
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, PatternsRoundTripWithVerifiedDigests) {
  LabelPool pool;
  std::vector<LabelId> labels = MakeLabels(4, &pool);
  std::mt19937 rng(77);

  std::vector<Tpq> patterns;
  std::vector<TpqDigest> digests;
  SnapshotWriter writer;
  ASSERT_TRUE(writer.SetLabels(pool));
  for (int i = 0; i < 200; ++i) {
    RandomTpqOptions popt;
    popt.labels = labels;
    popt.fragment = fragments::kTpqFull;
    popt.size = 2 + static_cast<int32_t>(rng() % 8);
    Tpq p = RandomTpq(popt, &rng);
    TpqDigest d = CanonicalTpqDigest(p);
    ASSERT_TRUE(writer.AddPattern(p, d).has_value());
    patterns.push_back(std::move(p));
    digests.push_back(d);
  }
  const std::string path = TempPath("patterns");
  std::string error;
  ASSERT_TRUE(writer.WriteTo(path, &error)) << error;

  SnapshotReader reader;
  ASSERT_TRUE(reader.Open(path, nullptr, &error)) << error;
  ASSERT_EQ(reader.pattern_count(), patterns.size());
  // Identity remap: the same pool is live.
  std::vector<LabelId> remap(reader.label_count());
  for (uint32_t i = 0; i < reader.label_count(); ++i) {
    remap[i] = static_cast<LabelId>(i);
  }
  for (uint32_t i = 0; i < reader.pattern_count(); ++i) {
    const SnapshotReader::PatternRecord& rec = reader.PatternAt(i);
    // The wide stored digest must match bit-for-bit, and the load-time
    // recomputation check must accept every honestly written record.
    EXPECT_EQ(rec.digest.lo, digests[i].lo);
    EXPECT_EQ(rec.digest.hi, digests[i].hi);
    EXPECT_TRUE(VerifySnapshotPatternDigest(rec)) << i;
    std::optional<Tpq> rebuilt = BuildSnapshotTpq(rec, remap);
    ASSERT_TRUE(rebuilt.has_value()) << i;
    const TpqDigest again = CanonicalTpqDigest(*rebuilt);
    EXPECT_EQ(again.lo, digests[i].lo) << i;
    EXPECT_EQ(again.hi, digests[i].hi) << i;
  }
  reader.Close();
  std::remove(path.c_str());
}

/// Builds one small valid snapshot (labels + trees + patterns) and returns
/// its bytes.
std::vector<uint8_t> MakeValidSnapshotBytes(const std::string& path) {
  LabelPool pool;
  std::vector<LabelId> labels = MakeLabels(3, &pool);
  std::mt19937 rng(5);
  SnapshotWriter writer;
  EXPECT_TRUE(writer.SetLabels(pool));
  for (int i = 0; i < 8; ++i) {
    RandomTreeOptions topt;
    topt.labels = labels;
    topt.size = 3 + static_cast<int32_t>(rng() % 10);
    writer.AddTree(RandomTree(topt, &rng));
    RandomTpqOptions popt;
    popt.labels = labels;
    popt.fragment = fragments::kTpqFull;
    popt.size = 3;
    Tpq p = RandomTpq(popt, &rng);
    writer.AddPattern(p, CanonicalTpqDigest(p));
  }
  std::string error;
  EXPECT_TRUE(writer.WriteTo(path, &error)) << error;
  return ReadFile(path);
}

TEST(SnapshotRoundTripTest, SeededByteFlipsAreAlwaysRejected) {
  const std::string path = TempPath("corrupt");
  const std::vector<uint8_t> good = MakeValidSnapshotBytes(path);
  ASSERT_GT(good.size(), 64u);

  // The container must reject EVERY single-byte flip: header fields are
  // validated directly and the payload is checksummed, so no flip position
  // can slip through.  Sample positions across the whole file, seeded.
  std::mt19937 rng(0xC0DEC);
  std::vector<size_t> positions;
  for (size_t i = 0; i < 64; ++i) positions.push_back(i);  // all header bytes
  for (int i = 0; i < 200; ++i) positions.push_back(rng() % good.size());

  for (size_t pos : positions) {
    std::vector<uint8_t> bad = good;
    bad[pos] ^= 0x5A;
    WriteFile(path, bad);
    SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Open(path, nullptr, &error))
        << "flip at byte " << pos << " was accepted";
    EXPECT_FALSE(error.empty()) << "flip at byte " << pos;
    EXPECT_EQ(error.rfind("snapshot: ", 0), 0u) << error;
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, SeededTruncationsAreAlwaysRejected) {
  const std::string path = TempPath("trunc");
  const std::vector<uint8_t> good = MakeValidSnapshotBytes(path);

  std::mt19937 rng(0x7A11);
  std::vector<size_t> cuts = {0, 1, 63, 64, 65, good.size() - 1};
  for (int i = 0; i < 50; ++i) cuts.push_back(rng() % good.size());

  for (size_t cut : cuts) {
    std::vector<uint8_t> bad(good.begin(), good.begin() + cut);
    WriteFile(path, bad);
    SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Open(path, nullptr, &error))
        << "truncation to " << cut << " bytes was accepted";
    EXPECT_FALSE(error.empty());
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, VersionSkewAndForeignEndiannessAreRejected) {
  const std::string path = TempPath("skew");
  const std::vector<uint8_t> good = MakeValidSnapshotBytes(path);

  // Version field lives at byte 8 (u32).  A reader must name the skew even
  // without consulting the checksum.
  for (uint32_t v : {kSnapshotFormatVersion + 1, kSnapshotFormatVersion + 7,
                     0u, 0xFFFFFFFFu}) {
    std::vector<uint8_t> bad = good;
    std::memcpy(&bad[8], &v, sizeof(v));
    WriteFile(path, bad);
    SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Open(path, nullptr, &error)) << "version " << v;
    EXPECT_NE(error.find("version"), std::string::npos) << error;
  }

  // Endianness tag lives at byte 12 (u32): a byte-swapped tag simulates a
  // snapshot written on a foreign-endian machine.
  {
    std::vector<uint8_t> bad = good;
    std::swap(bad[12], bad[15]);
    std::swap(bad[13], bad[14]);
    WriteFile(path, bad);
    SnapshotReader reader;
    std::string error;
    EXPECT_FALSE(reader.Open(path, nullptr, &error));
    EXPECT_NE(error.find("endian"), std::string::npos) << error;
  }
  std::remove(path.c_str());
}

TEST(SnapshotRoundTripTest, BudgetRefusalIsACleanFailure) {
  const std::string path = TempPath("budget");
  const std::vector<uint8_t> good = MakeValidSnapshotBytes(path);

  Budget budget;
  budget.Arm(/*step_limit=*/0, /*deadline_ms=*/0, /*memory_limit=*/8);
  SnapshotReader reader;
  std::string error;
  EXPECT_FALSE(reader.Open(path, &budget, &error));
  EXPECT_NE(error.find("budget"), std::string::npos) << error;
  EXPECT_FALSE(reader.is_open());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpc
